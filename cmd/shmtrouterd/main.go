// Command shmtrouterd fronts a fleet of shmtserved backends: it shards
// incoming VOP requests across the cluster by consistent hashing on
// (tenant, op, shape) with bounded-load rebalancing, fails requests over to
// ring replicas when a backend dies, quarantines repeat offenders behind
// per-backend circuit breakers (periodic /healthz probes re-admit them), and
// scatter-gathers very large eligible VOPs across several backends at once.
//
// Usage:
//
//	shmtrouterd -addr :8090 -backends 127.0.0.1:8080,127.0.0.1:8081
//	shmtrouterd -addr 127.0.0.1:0 -max-attempts 3 -load-factor 1.25
//	shmtrouterd -scatter-threshold 2097152 -max-fanout 4
//
// Backends may also self-register at runtime:
//
//	curl -s localhost:8090/v1/register -d '{"addr":"127.0.0.1:8082"}'
//
// (shmtserved does this automatically when started with -register.)
//
// Endpoints: POST /v1/execute (proxied or scattered), POST /v1/register,
// GET /healthz ("degraded" while any backend breaker is open, "unavailable"
// with a 503 when none are healthy, "draining" during shutdown), GET
// /metrics (Prometheus, shmt_router_*), GET /statusz (backend and breaker
// snapshot). Responses carry X-SHMT-Trace-Id and X-SHMT-Backend (or
// X-SHMT-Scatter for scattered requests). SIGTERM/SIGINT drain gracefully:
// new work is refused with 503 + Retry-After, in-flight proxies finish, then
// the listener closes.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"shmt/internal/cluster"
	"shmt/internal/serve"
	"shmt/internal/telemetry"
)

// tenantLimitFlags parses repeatable -tenant-limit name:max-inflight values
// into the router's per-tenant concurrency caps.
type tenantLimitFlags struct {
	m map[string]int
}

func (t *tenantLimitFlags) String() string {
	parts := make([]string, 0, len(t.m))
	for name, limit := range t.m {
		parts = append(parts, fmt.Sprintf("%s:%d", name, limit))
	}
	return strings.Join(parts, ",")
}

func (t *tenantLimitFlags) Set(v string) error {
	name, lim, ok := strings.Cut(v, ":")
	if !ok || name == "" {
		return fmt.Errorf("want name:max-inflight, got %q", v)
	}
	if serve.SanitizeTenant(name) == "" {
		return fmt.Errorf("bad tenant name %q (want [A-Za-z0-9._:-], <= 64 bytes)", name)
	}
	n, err := strconv.Atoi(lim)
	if err != nil || n < 1 {
		return fmt.Errorf("bad max-inflight in %q (want integer >= 1)", v)
	}
	if t.m == nil {
		t.m = map[string]int{}
	}
	t.m[name] = n
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8090", "listen address (host:port; port 0 picks a free port)")
		backends     = flag.String("backends", "", "comma-separated seed backends (host:port); more may register via /v1/register")
		vnodes       = flag.Int("vnodes", cluster.DefaultVnodes, "virtual nodes per backend on the hash ring")
		loadFactor   = flag.Float64("load-factor", 1.25, "bounded-load ceiling factor (>= 1)")
		maxAttempts  = flag.Int("max-attempts", 3, "dispatch attempts per request: primary plus failovers")
		backendTO    = flag.Duration("backend-timeout", 30*time.Second, "per-backend round-trip bound")
		probeEvery   = flag.Duration("probe-interval", 500*time.Millisecond, "backend health-probe cadence")
		probeTO      = flag.Duration("probe-timeout", 2*time.Second, "health-probe round-trip bound")
		brThreshold  = flag.Int("breaker-threshold", 3, "consecutive failures that open a backend's breaker")
		brCooldown   = flag.Duration("breaker-cooldown", time.Second, "initial quarantine before the first re-admission probe")
		scatterElems = flag.Int("scatter-threshold", 1<<21, "first-input element count at which eligible VOPs scatter across backends (negative disables)")
		maxFanout    = flag.Int("max-fanout", 4, "max partitions per scattered VOP")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound after SIGTERM")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 503 responses")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
	)
	var tenantLimits tenantLimitFlags
	flag.Var(&tenantLimits, "tenant-limit", "per-tenant in-flight cap as name:max-inflight; repeatable (over-cap requests answer 429)")
	flag.Parse()

	// The router has no shmt.Session to flip the instrumentation gate the way
	// shmtserved does; /metrics is part of its contract, so enable it here.
	telemetry.Enable()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}

	var seeds []string
	for _, b := range strings.Split(*backends, ",") {
		if b = strings.TrimSpace(b); b != "" {
			seeds = append(seeds, b)
		}
	}

	rt, err := cluster.NewRouter(cluster.RouterConfig{
		Pool: cluster.PoolConfig{
			Vnodes:        *vnodes,
			LoadFactor:    *loadFactor,
			ProbeInterval: *probeEvery,
			ProbeTimeout:  *probeTO,
			Breaker: cluster.BreakerConfig{
				Threshold: *brThreshold,
				Cooldown:  *brCooldown,
			},
			Logger: logger,
		},
		Seeds:            seeds,
		MaxAttempts:      *maxAttempts,
		BackendTimeout:   *backendTO,
		ScatterThreshold: *scatterElems,
		MaxFanout:        *maxFanout,
		RetryAfter:       *retryAfter,
		TenantLimits:     tenantLimits.m,
		Logger:           logger,
	})
	if err != nil {
		fatal(err)
	}
	if err := rt.Listen(*addr); err != nil {
		fatal(err)
	}
	logger.Info("listening",
		"addr", rt.Addr(),
		"backends", len(seeds),
		"vnodes", *vnodes,
		"load_factor", *loadFactor,
		"max_attempts", *maxAttempts,
		"scatter_threshold", *scatterElems,
		"max_fanout", *maxFanout,
	)
	fmt.Printf("shmtrouterd listening on http://%s (backends %d, load-factor %.2f, max-attempts %d)\n",
		rt.Addr(), len(seeds), *loadFactor, *maxAttempts)

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- rt.Serve() }()

	select {
	case err := <-errc:
		if err != nil {
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := rt.Shutdown(dctx); err != nil {
			logger.Error("drain failed", "err", err)
			os.Exit(1)
		}
	}
	logger.Info("stopped")
}

// buildLogger assembles the process logger from the -log-format/-log-level
// flags; logs go to stderr so stdout stays clean for scripting.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shmtrouterd:", err)
	os.Exit(1)
}
