// Command shmtbench regenerates the paper's evaluation tables and figures
// (§5) from the SHMT library.
//
// Usage:
//
//	shmtbench -exp all                 # every experiment
//	shmtbench -exp fig6                # one experiment: fig2 fig6 fig7 fig8
//	                                   # fig9 fig10 fig11 fig12 table1 table2 table3
//	shmtbench -exp fig6 -side 1024     # smaller/faster inputs
//	shmtbench -exp fig12 -max64m       # include the paper's largest size
//
// Each experiment prints the same rows/series the paper reports; see
// EXPERIMENTS.md for the paper-vs-measured comparison.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"shmt/internal/bench"
	"shmt/internal/telemetry"
)

func main() {
	var (
		exp          = flag.String("exp", "all", "experiment id: all, fig1, fig2, fig6, fig7, fig8, fig9, fig10, fig11, fig12, table1, table2, table3, ablation, stability")
		side         = flag.Int("side", 2048, "input edge length (the harness virtually scales to the paper's 8192)")
		seed         = flag.Int64("seed", 1, "workload/sampling seed")
		partitions   = flag.Int("partitions", 64, "HLOPs per VOP")
		concurrent   = flag.Bool("concurrent", false, "use the goroutine engine instead of the deterministic one")
		max64m       = flag.Bool("max64m", false, "extend fig12 to the paper's 64M-element point (slow)")
		format       = flag.String("format", "text", "output format: text, csv, json")
		telemetryOut = flag.String("telemetry-out", "", "write per-experiment telemetry counter snapshots (JSON) to this file")
		metricsAddr  = flag.String("metrics-addr", "", "serve Prometheus metrics on this address while experiments run")
	)
	flag.Parse()
	var telSnaps map[string]telemetry.Snapshot
	if *telemetryOut != "" || *metricsAddr != "" {
		telemetry.Enable()
		telSnaps = map[string]telemetry.Snapshot{}
	}
	if *metricsAddr != "" {
		srv, err := telemetry.Serve(*metricsAddr)
		if err != nil {
			fatal(err)
		}
		defer srv.Close()
		fmt.Fprintf(os.Stderr, "serving Prometheus metrics on http://%s/metrics\n", srv.Addr())
	}
	emit = func(t *bench.Table) {
		if err := t.Write(os.Stdout, bench.Format(*format)); err != nil {
			fatal(err)
		}
	}

	o := bench.Options{Side: *side, Seed: *seed, Partitions: *partitions, Concurrent: *concurrent}
	ids := strings.Split(strings.ToLower(*exp), ",")
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table1", "table2", "fig1", "fig2", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "table3", "ablation", "stability"}
	}

	// fig6/7/8/10/11/table3 all derive from one policy matrix; build it once.
	var matrix *bench.Matrix
	needMatrix := false
	for _, id := range ids {
		switch id {
		case "fig6", "fig7", "fig8", "fig10", "fig11", "table3":
			needMatrix = true
		}
	}
	if needMatrix {
		start := time.Now()
		fmt.Fprintf(os.Stderr, "running policy matrix (%d policies x %d benchmarks at %dx%d)...\n",
			len(bench.EvalPolicies()), len(bench.Benchmarks), *side, *side)
		base := telemetryBase(telSnaps)
		var err error
		matrix, err = bench.RunMatrix(bench.EvalPolicies(), o)
		if err != nil {
			fatal(err)
		}
		telemetrySnap(telSnaps, "policy-matrix", base)
		fmt.Fprintf(os.Stderr, "policy matrix done in %v\n\n", time.Since(start).Round(time.Second))
	}

	for _, id := range ids {
		base := telemetryBase(telSnaps)
		switch id {
		case "table1":
			emit(bench.Table1())
		case "table2":
			emit(bench.Table2())
		case "fig1":
			rows, err := bench.Fig1(o)
			if err != nil {
				fatal(err)
			}
			emit(bench.Fig1Table(rows))
		case "fig2":
			rows, err := bench.Fig2(o)
			if err != nil {
				fatal(err)
			}
			emit(bench.Fig2Table(rows))
		case "fig6":
			emit(matrix.SpeedupTable())
		case "fig7":
			emit(matrix.MAPETable())
		case "fig8":
			emit(matrix.SSIMTable())
		case "fig9":
			rows, err := bench.Fig9(o)
			if err != nil {
				fatal(err)
			}
			emit(bench.Fig9Table(rows))
			emit(bench.Fig9DetailTable(rows))
		case "fig10":
			emit(bench.Fig10Table(matrix.Fig10()))
		case "fig11":
			emit(bench.Fig11Table(matrix.Fig11()))
		case "fig12":
			sides := bench.Fig12Sides
			if *max64m {
				sides = append(append([]int{}, sides...), 8192)
			}
			rows, err := bench.Fig12(o, sides)
			if err != nil {
				fatal(err)
			}
			emit(bench.Fig12Table(rows))
		case "table3":
			emit(bench.Table3Table(matrix.Table3()))
		case "stability":
			rows, err := bench.Stability(o, nil)
			if err != nil {
				fatal(err)
			}
			emit(bench.StabilityTable(rows))
		case "ablation":
			gran, err := bench.AblationGranularity(o, nil)
			if err != nil {
				fatal(err)
			}
			emit(bench.AblationGranularityTable(gran))
			db, err := bench.AblationDoubleBuffer(o)
			if err != nil {
				fatal(err)
			}
			emit(bench.AblationDoubleBufferTable(db))
			dc, err := bench.AblationDatacenter(o)
			if err != nil {
				fatal(err)
			}
			emit(bench.AblationDatacenterTable(dc))
			pfd, err := bench.AblationPrefetch(o, nil)
			if err != nil {
				fatal(err)
			}
			emit(bench.AblationPrefetchTable(pfd))
			dsp, err := bench.AblationDSP(o)
			if err != nil {
				fatal(err)
			}
			emit(bench.AblationDSPTable(dsp))
		default:
			fatal(fmt.Errorf("unknown experiment %q", id))
		}
		telemetrySnap(telSnaps, id, base)
	}

	if *telemetryOut != "" {
		f, err := os.Create(*telemetryOut)
		if err != nil {
			fatal(err)
		}
		enc := json.NewEncoder(f)
		enc.SetIndent("", " ")
		if err := enc.Encode(telSnaps); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote per-experiment telemetry snapshots to %s\n", *telemetryOut)
	}
}

// telemetryBase snapshots the registry before an experiment (nil when
// telemetry collection is off).
func telemetryBase(snaps map[string]telemetry.Snapshot) telemetry.Snapshot {
	if snaps == nil {
		return nil
	}
	return telemetry.Default.Snapshot()
}

// telemetrySnap stores the counter delta one experiment produced.
func telemetrySnap(snaps map[string]telemetry.Snapshot, id string, base telemetry.Snapshot) {
	if snaps == nil {
		return
	}
	snaps[id] = telemetry.Default.Snapshot().Delta(base)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shmtbench:", err)
	os.Exit(1)
}

// emit is set in main once the -format flag is parsed.
var emit = func(t *bench.Table) { t.Render(os.Stdout) }
