// Command shmtrun executes a single benchmark kernel under a chosen policy
// and prints the run's full accounting — the interactive counterpart of the
// shmtbench experiment harness.
//
// Usage:
//
//	shmtrun -bench Sobel -policy QAWS-TS
//	shmtrun -bench FFT -policy work-stealing -side 1024 -trace
//	shmtrun -bench Sobel --trace-out=run.json --metrics-addr=:9090
//	shmtrun -bench Sobel --chaos "tpu:die=5" --chaos-seed 42
//	shmtrun -list
//
// --trace-out writes the run's telemetry spans (virtual device lanes,
// wall-clock host lanes, steal flow arrows) as Chrome trace-event JSON —
// load it in ui.perfetto.dev or chrome://tracing. --metrics-addr serves
// Prometheus text exposition on ADDR/metrics while the run executes
// (SHMT_METRICS_ADDR works too); --report-out writes the structured JSON
// telemetry report.
//
// --chaos injects seeded reproducible faults per device
// ("device:key=value[,key=value];..."; keys: transient, failfirst, die,
// latmul, spike, spikemul, corrupt, corruptmag) and prints the degradation
// report — quarantines, reroutes, and the quality impact of work that fell
// back to a less accurate device.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"

	"shmt"
	"shmt/internal/bench"
	"shmt/internal/metrics"
)

func main() {
	var (
		name        = flag.String("bench", "Sobel", "benchmark name (see -list)")
		policy      = flag.String("policy", string(shmt.PolicyQAWSTS), "scheduling policy")
		side        = flag.Int("side", 2048, "input edge length")
		seed        = flag.Int64("seed", 1, "workload seed")
		partitions  = flag.Int("partitions", 64, "HLOPs per VOP")
		rate        = flag.Float64("rate", bench.PaperSamplingRate, "QAWS sampling rate")
		concurrent  = flag.Bool("concurrent", false, "use the goroutine engine")
		noScale     = flag.Bool("noscale", false, "disable virtual full-size scaling")
		trace       = flag.Bool("trace", false, "print the per-HLOP execution trace summary")
		traceOut    = flag.String("trace-out", "", "write Chrome trace-event JSON (Perfetto) to this file")
		metricsAddr = flag.String("metrics-addr", "", "serve Prometheus metrics on this address during the run (also SHMT_METRICS_ADDR)")
		reportOut   = flag.String("report-out", "", "write the structured JSON telemetry report to this file")
		chaosSpec   = flag.String("chaos", "", `fault-injection plan, e.g. "tpu:die=5;gpu:transient=0.2"`)
		chaosSeed   = flag.Int64("chaos-seed", 0, "fault-schedule seed (default: -seed)")
		planCache   = flag.Bool("plan-cache", false, "enable the memoized execution-plan cache (off by default: single-shot runs measure per-invocation planning)")
		prefetch    = flag.Int("prefetch", shmt.DefaultPrefetchDepth, "per-device async input-prefetch depth for private-memory devices (0 disables; results are bit-identical at every depth)")
		list        = flag.Bool("list", false, "list benchmarks and policies, then exit")
	)
	flag.Parse()

	if *list {
		fmt.Println("benchmarks:")
		for _, b := range bench.Benchmarks {
			fmt.Printf("  %-14s %-20s VOP %s\n", b.Name, b.Category, b.Op)
		}
		fmt.Println("policies:")
		for _, p := range shmt.AllPolicies() {
			fmt.Printf("  %s\n", p)
		}
		return
	}

	b, ok := bench.ByName(*name)
	if !ok {
		fatal(fmt.Errorf("unknown benchmark %q (see -list)", *name))
	}
	o := bench.Options{
		Side: *side, Seed: *seed, Partitions: *partitions,
		SamplingRate: *rate, NoVirtualScale: *noScale, Concurrent: *concurrent,
	}

	cfg := o.SessionConfig(b, shmt.PolicyName(*policy))
	cfg.RecordTrace = *trace
	cfg.PlanCache.Disabled = !*planCache
	if *prefetch <= 0 {
		cfg.Prefetch.Disabled = true
	} else {
		cfg.Prefetch.Depth = *prefetch
	}
	if *chaosSpec != "" {
		cs := *chaosSeed
		if cs == 0 {
			cs = *seed
		}
		plans, err := shmt.ParseChaosSpec(*chaosSpec, cs)
		if err != nil {
			fatal(err)
		}
		cfg.Chaos = plans
	}
	if *traceOut != "" || *reportOut != "" {
		cfg.Telemetry.Enabled = true
	}
	cfg.Telemetry.MetricsAddr = *metricsAddr
	s, err := shmt.NewSession(cfg)
	if err != nil {
		fatal(err)
	}
	defer s.Close()
	if addr := s.MetricsAddr(); addr != "" {
		fmt.Fprintf(os.Stderr, "serving Prometheus metrics on http://%s/metrics\n", addr)
	}

	inputs := b.Inputs(*side, *seed)
	rep, err := s.Execute(b.Op, inputs, b.Attrs)
	if err != nil {
		fatal(err)
	}
	if *traceOut != "" {
		if err := writeFile(*traceOut, s.WriteTrace); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote Perfetto trace to %s (open in ui.perfetto.dev)\n", *traceOut)
	}
	if *reportOut != "" {
		if err := writeFile(*reportOut, s.TelemetryReport().WriteJSON); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "wrote telemetry report to %s\n", *reportOut)
	}

	base, err := bench.Run(b, shmt.PolicyGPUBaseline, o)
	if err != nil {
		fatal(err)
	}
	ref, err := bench.Reference(b, o)
	if err != nil {
		fatal(err)
	}
	mape, _ := metrics.MAPE(ref.Data, rep.Output.Data)

	fmt.Printf("%s (%s) on %dx%d, policy %s\n", b.Name, b.Op, *side, *side, s.PolicyName())
	fmt.Printf("  virtual latency:   %.3f ms (GPU baseline %.3f ms -> %.2fx speedup)\n",
		rep.Makespan*1e3, base.Makespan*1e3, base.Makespan/rep.Makespan)
	fmt.Printf("  scheduling:        %d HLOPs, %.3f ms overhead\n", rep.HLOPs, rep.SchedOverhead*1e3)
	names := make([]string, 0, len(rep.Busy))
	for n := range rep.Busy {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("  busy %-4s          %.3f ms\n", n+":", rep.Busy[n]*1e3)
	}
	fmt.Printf("  quality:           MAPE %.3f%%", 100*mape)
	if b.ImageLike {
		ssim, _ := metrics.SSIM(ref.Rows, ref.Cols, ref.Data, rep.Output.Data)
		fmt.Printf(", SSIM %.4f", ssim)
	}
	fmt.Println()
	fmt.Printf("  energy:            %.3f J (baseline %.3f J, %.1f%% saved), EDP %.3g\n",
		rep.Energy.Total(), base.Energy.Total(),
		100*(1-rep.Energy.Total()/base.Energy.Total()),
		rep.Energy.Total()*rep.Makespan)
	fmt.Printf("  data movement:     %.1f MiB, %.3f ms raw, %.3f ms exposed\n",
		float64(rep.Comm.Bytes)/(1<<20), rep.Comm.TransferTime*1e3, rep.Comm.ExposedTime*1e3)
	fmt.Printf("  peak footprint:    %.1f MiB (baseline %.1f MiB)\n",
		float64(rep.PeakBytes)/(1<<20), float64(base.PeakBytes)/(1<<20))
	if d := rep.Degraded; d != nil {
		fmt.Printf("  degraded:          %d failed dispatches (%.3f ms charged, %.3f ms backoff)\n",
			d.FailedDispatches, d.FailedDispatchSeconds*1e3, d.BackoffSeconds*1e3)
		for _, q := range d.Quarantines {
			fmt.Printf("    quarantined %s at %.3f ms for %.3f ms (%d HLOPs redistributed)\n",
				q.Device, q.At*1e3, q.Cooldown*1e3, q.Rerouted)
		}
		fmt.Printf("    rerouted %d HLOPs (%d elems); %d downgraded to lower accuracy (%d elems)\n",
			d.Rerouted, d.ReroutedElems, d.Downgraded, d.DowngradedElems)
		if d.ProbeSuccesses+d.ProbeFailures > 0 {
			fmt.Printf("    re-admission probes: %d ok, %d failed\n", d.ProbeSuccesses, d.ProbeFailures)
		}
		if quar := s.QuarantinedDevices(); len(quar) > 0 {
			fmt.Printf("    still quarantined: %v\n", quar)
		}
	}
	if *trace && rep.Trace != nil {
		fmt.Printf("  trace:             %s\n", rep.Trace.Summary())
		fmt.Println()
		fmt.Print(rep.Trace.Gantt(64))
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shmtrun:", err)
	os.Exit(1)
}

// writeFile streams render into path.
func writeFile(path string, render func(io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := render(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
