// Command shmtinfo describes the simulated SHMT platform: the device set
// and its calibration, the VOP table (Table 1), the benchmark table
// (Table 2), and each device's HLOP coverage.
//
// Usage:
//
//	shmtinfo            # everything
//	shmtinfo -vops      # Table 1 only
//	shmtinfo -benchmarks
//	shmtinfo -devices
//	shmtinfo -calibration
package main

import (
	"flag"
	"fmt"
	"os"

	"shmt/internal/bench"
	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/dsp"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/energy"
	"shmt/internal/vop"
)

func main() {
	var (
		vops        = flag.Bool("vops", false, "print the VOP table (Table 1)")
		benchmarks  = flag.Bool("benchmarks", false, "print the benchmark table (Table 2)")
		devices     = flag.Bool("devices", false, "print the device inventory")
		calibration = flag.Bool("calibration", false, "print the cost-model calibration")
	)
	flag.Parse()
	all := !*vops && !*benchmarks && !*devices && !*calibration

	if all || *devices {
		printDevices()
	}
	if all || *vops {
		bench.Table1().Render(os.Stdout)
	}
	if all || *benchmarks {
		bench.Table2().Render(os.Stdout)
	}
	if all || *calibration {
		printCalibration()
	}
}

func printDevices() {
	devs := []device.Device{cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}), dsp.New(dsp.Config{})}
	model := energy.DefaultModel()
	fmt.Println("== Devices (the prototype platform of §4.1, plus the §2.1 DSP extension) ==")
	for _, d := range devs {
		supported := 0
		for _, op := range vop.All() {
			if d.Supports(op) {
				supported++
			}
		}
		mem := "shared host LPDDR4"
		if d.MemoryBytes() > 0 {
			mem = fmt.Sprintf("%d MiB private", d.MemoryBytes()>>20)
		}
		fmt.Printf("%-4s accuracy-rank %d, %2d/%d HLOPs, dispatch %6.0f µs, link %5.1f GB/s, mem %s, active +%.2f W\n",
			d.Name(), d.AccuracyRank(), supported, len(vop.All()),
			d.DispatchOverhead()*1e6, d.Link().BandwidthBps/1e9, mem,
			model.Devices[d.Name()].Active)
	}
	fmt.Printf("peak power: idle %.2f W, GPU baseline %.2f W, SHMT %.2f W (§5.5)\n\n",
		model.PeakPower(nil), model.PeakPower([]string{"gpu"}), model.PeakPower([]string{"gpu", "tpu"}))
}

func printCalibration() {
	fmt.Println("== Cost-model calibration (Fig. 2 ratios; see internal/device/calibration.go) ==")
	fmt.Printf("%-16s %14s %10s %10s %12s\n", "VOP", "GPU elems/s", "TPU ratio", "CPU ratio", "stage factor")
	for _, op := range vop.All() {
		c := device.Cost(op)
		fmt.Printf("%-16s %14.3g %10.2f %10.3f %12.2f\n",
			op, c.GPUThroughput, c.TPURatio, c.CPURatio, c.StageFactor)
	}
	fmt.Println()
}
