// Command shmtserved serves a shmt.Session over HTTP/JSON: concurrent VOP
// requests are admitted into a bounded queue, coalesced by the dynamic
// micro-batcher (flush on max batch size or max linger, whichever first) and
// executed as ExecuteBatch rounds, so simultaneous clients share one
// scheduling round the way §5.6's oversubscribed multi-tenant batches do.
//
// Usage:
//
//	shmtserved -addr :8080
//	shmtserved -addr 127.0.0.1:0 -max-batch 8 -max-linger 5ms -policy work-stealing
//	shmtserved -chaos "tpu:die=5" -chaos-seed 42
//	shmtserved -log-format json -slow-slo 50ms -trace-out serve.trace.json
//
//	curl -s localhost:8080/v1/execute -d '{"op":"add","inputs":[
//	  {"rows":2,"cols":2,"data":[1,2,3,4]},
//	  {"rows":2,"cols":2,"data":[5,6,7,8]}]}'
//
// Endpoints: POST /v1/execute, GET /healthz (reports "degraded" while any
// device breaker is open, "draining" with a 503 during shutdown), GET
// /metrics (Prometheus), GET /statusz (live process snapshot, JSON or
// ?format=html), GET /debug/requests (flight-recorder dump; ?slow=1 for SLO
// violations only), and — with -pprof — net/http/pprof under /debug/pprof/.
// Responses carry X-SHMT-Batch-Size, X-SHMT-Degraded, X-SHMT-Trace-Id and,
// when breakers are open, X-SHMT-Quarantined headers. A full admission queue
// answers 429 with Retry-After instead of queueing without bound.
// SIGTERM/SIGINT drain gracefully: new work is refused, queued rounds
// finish, then the session closes.
package main

import (
	"bytes"
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"shmt"
	"shmt/internal/serve"
	"shmt/internal/telemetry"
)

// tenantFlags parses repeatable -tenant name:weight[:queue-depth] values
// into the serving layer's per-tenant QoS config.
type tenantFlags struct {
	m map[string]serve.TenantConfig
}

func (t *tenantFlags) String() string {
	parts := make([]string, 0, len(t.m))
	for name, tc := range t.m {
		parts = append(parts, fmt.Sprintf("%s:%d:%d", name, tc.Weight, tc.QueueDepth))
	}
	return strings.Join(parts, ",")
}

func (t *tenantFlags) Set(v string) error {
	fields := strings.Split(v, ":")
	if len(fields) < 2 || len(fields) > 3 || fields[0] == "" {
		return fmt.Errorf("want name:weight[:queue-depth], got %q", v)
	}
	if serve.SanitizeTenant(fields[0]) == "" {
		return fmt.Errorf("bad tenant name %q (want [A-Za-z0-9._:-], <= 64 bytes)", fields[0])
	}
	tc := serve.TenantConfig{}
	w, err := strconv.Atoi(fields[1])
	if err != nil || w < 1 {
		return fmt.Errorf("bad weight in %q (want integer >= 1)", v)
	}
	tc.Weight = w
	if len(fields) == 3 {
		d, err := strconv.Atoi(fields[2])
		if err != nil || d < 1 {
			return fmt.Errorf("bad queue-depth in %q (want integer >= 1)", v)
		}
		tc.QueueDepth = d
	}
	if t.m == nil {
		t.m = map[string]serve.TenantConfig{}
	}
	t.m[fields[0]] = tc
	return nil
}

func main() {
	var (
		addr         = flag.String("addr", ":8080", "listen address (host:port; port 0 picks a free port)")
		policy       = flag.String("policy", string(shmt.PolicyQAWSTS), "scheduling policy")
		partitions   = flag.Int("partitions", 64, "HLOPs per VOP")
		seed         = flag.Int64("seed", 1, "session seed")
		workers      = flag.Int("workers", 0, "host worker-pool cap (0 = GOMAXPROCS/SHMT_WORKERS)")
		concurrent   = flag.Bool("concurrent", false, "use the goroutine engine")
		maxBatch     = flag.Int("max-batch", 16, "max requests coalesced per micro-batch round")
		maxLinger    = flag.Duration("max-linger", 2*time.Millisecond, "max wait for a round to fill before flushing")
		queueDepth   = flag.Int("queue-depth", 0, "admission queue bound (0 = 4x max-batch); overflow answers 429")
		reqTimeout   = flag.Duration("request-timeout", 30*time.Second, "default per-request deadline (overridable via timeout_ms)")
		drainTimeout = flag.Duration("drain-timeout", 10*time.Second, "graceful shutdown bound after SIGTERM")
		retryAfter   = flag.Duration("retry-after", time.Second, "Retry-After hint on 429/503 responses")
		metricsAddr  = flag.String("metrics-addr", "", "optional separate Prometheus listener (metrics are always on the serving mux at /metrics)")
		chaosSpec    = flag.String("chaos", "", `fault-injection plan, e.g. "tpu:die=5;gpu:transient=0.2"`)
		chaosSeed    = flag.Int64("chaos-seed", 0, "fault-schedule seed (default: -seed)")
		planEntries  = flag.Int("plan-cache-entries", 0, "execution-plan cache LRU capacity (0 = default, negative disables)")
		prefetch     = flag.Int("prefetch", shmt.DefaultPrefetchDepth, "per-device async input-prefetch depth for private-memory devices (0 disables; results are bit-identical at every depth)")
		tracing      = flag.Bool("tracing", true, "request-scoped tracing: trace IDs, stage breakdowns, flight recorder, request lanes")
		flightSize   = flag.Int("flight-recorder", telemetry.DefaultFlightRecorderSize, "flight-recorder ring capacity (traces retained)")
		slowSLO      = flag.Duration("slow-slo", 100*time.Millisecond, "latency SLO; slower requests are retained in the flight recorder's slow ring (0 disables)")
		logFormat    = flag.String("log-format", "text", "structured log format: text or json")
		logLevel     = flag.String("log-level", "info", "minimum log level: debug, info, warn, error")
		pprofOn      = flag.Bool("pprof", false, "mount net/http/pprof under /debug/pprof/ (opt-in)")
		traceOut     = flag.String("trace-out", "", "write the session's Perfetto trace here after drain")
		registerURL  = flag.String("register", "", "router base URL to self-register with (e.g. http://127.0.0.1:8090); retried in the background until acknowledged")
		advertise    = flag.String("advertise", "", "addr to announce when registering (default: the bound addr, with unspecified hosts rewritten to 127.0.0.1)")
		criticalDL   = flag.Duration("critical-deadline", 0, "deadlines tighter than this raise the request's QAWS criticality so it keeps high-accuracy devices (0 disables)")
	)
	var tenants tenantFlags
	flag.Var(&tenants, "tenant", "per-tenant QoS as name:weight[:queue-depth]; repeatable (unlisted tenants get weight 1 and the global queue depth)")
	flag.Parse()

	logger, err := buildLogger(*logFormat, *logLevel)
	if err != nil {
		fatal(err)
	}

	cfg := shmt.Config{
		Policy:           shmt.PolicyName(*policy),
		TargetPartitions: *partitions,
		Seed:             *seed,
		Workers:          *workers,
		Concurrent:       *concurrent,
	}
	if *planEntries < 0 {
		cfg.PlanCache.Disabled = true
	} else {
		cfg.PlanCache.Entries = *planEntries
	}
	if *prefetch <= 0 {
		cfg.Prefetch.Disabled = true
	} else {
		cfg.Prefetch.Depth = *prefetch
	}
	cfg.Telemetry.Enabled = true
	cfg.Telemetry.MetricsAddr = *metricsAddr
	if *chaosSpec != "" {
		cs := *chaosSeed
		if cs == 0 {
			cs = *seed
		}
		plans, err := shmt.ParseChaosSpec(*chaosSpec, cs)
		if err != nil {
			fatal(err)
		}
		cfg.Chaos = plans
		logger.Info("chaos enabled", "spec", *chaosSpec, "seed", cs)
	}
	sess, err := shmt.NewSession(cfg)
	if err != nil {
		fatal(err)
	}
	defer sess.Close()
	sess.OnBreakerEvent(func(device, event string) {
		switch event {
		case "open":
			logger.Warn("breaker open", "device", device)
		default:
			logger.Info("breaker "+event, "device", device)
		}
	})

	srv := serve.New(sess, serve.Config{
		MaxBatch:           *maxBatch,
		MaxLinger:          *maxLinger,
		QueueDepth:         *queueDepth,
		Tenants:            tenants.m,
		DefaultTimeout:     *reqTimeout,
		CriticalDeadline:   *criticalDL,
		RetryAfter:         *retryAfter,
		Spans:              sess.TelemetryRecorder(),
		Tracing:            *tracing,
		FlightRecorderSize: *flightSize,
		SlowSLO:            *slowSLO,
		Logger:             logger,
		EnablePprof:        *pprofOn,
	})
	if err := srv.Listen(*addr); err != nil {
		fatal(err)
	}
	logger.Info("listening",
		"addr", srv.Addr(),
		"policy", sess.PolicyName(),
		"devices", fmt.Sprint(sess.Devices()),
		"max_batch", *maxBatch,
		"max_linger", maxLinger.String(),
		"tracing", *tracing,
		"slow_slo", slowSLO.String(),
		"pprof", *pprofOn,
	)
	fmt.Printf("shmtserved listening on http://%s (policy %s, max-batch %d, linger %s)\n",
		srv.Addr(), sess.PolicyName(), *maxBatch, *maxLinger)
	if a := sess.MetricsAddr(); a != "" {
		logger.Info("metrics listener", "addr", a)
	}
	if *registerURL != "" {
		go register(*registerURL, advertiseAddr(*advertise, srv.Addr()), logger)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve() }()

	select {
	case err := <-errc:
		if err != nil {
			fatal(err)
		}
	case <-ctx.Done():
		stop()
		dctx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
		defer cancel()
		if err := srv.Shutdown(dctx); err != nil {
			logger.Error("drain failed", "err", err)
			os.Exit(1)
		}
	}
	if *traceOut != "" {
		if err := writeTrace(sess, *traceOut); err != nil {
			logger.Error("trace write failed", "path", *traceOut, "err", err)
		} else {
			logger.Info("trace written", "path", *traceOut)
		}
	}
	if err := sess.Close(); err != nil {
		fatal(err)
	}
	logger.Info("stopped")
}

// buildLogger assembles the process logger from the -log-format/-log-level
// flags; logs go to stderr so stdout stays clean for scripting.
func buildLogger(format, level string) (*slog.Logger, error) {
	var lv slog.Level
	if err := lv.UnmarshalText([]byte(level)); err != nil {
		return nil, fmt.Errorf("bad -log-level %q: %w", level, err)
	}
	opts := &slog.HandlerOptions{Level: lv}
	switch format {
	case "text":
		return slog.New(slog.NewTextHandler(os.Stderr, opts)), nil
	case "json":
		return slog.New(slog.NewJSONHandler(os.Stderr, opts)), nil
	default:
		return nil, fmt.Errorf("bad -log-format %q (want text or json)", format)
	}
}

// advertiseAddr picks the host:port to announce to the router: the explicit
// -advertise value when given, otherwise the bound addr with unspecified
// hosts (":8080", "0.0.0.0", "[::]") rewritten to 127.0.0.1 so the router
// registers a dialable endpoint on single-host clusters.
func advertiseAddr(explicit, bound string) string {
	if explicit != "" {
		return explicit
	}
	host, port, err := net.SplitHostPort(bound)
	if err != nil {
		return bound
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		host = "127.0.0.1"
	}
	return net.JoinHostPort(host, port)
}

// register announces addr to the router, retrying with backoff until the
// router acknowledges — the router may simply not be up yet, and a serving
// backend with no router is still useful, so registration never blocks or
// fails startup.
func register(routerURL, addr string, logger *slog.Logger) {
	body, _ := json.Marshal(map[string]string{"addr": addr})
	url := strings.TrimSuffix(routerURL, "/") + "/v1/register"
	backoff := 250 * time.Millisecond
	for {
		resp, err := http.Post(url, "application/json", bytes.NewReader(body))
		if err == nil {
			code := resp.StatusCode
			resp.Body.Close()
			if code == http.StatusOK {
				logger.Info("registered with router", "router", routerURL, "advertised", addr)
				return
			}
			logger.Warn("router refused registration", "router", routerURL, "status", code)
			if code == http.StatusBadRequest {
				return // malformed advertisement will not improve with retries
			}
		} else {
			logger.Debug("router not reachable yet", "router", routerURL, "err", err)
		}
		time.Sleep(backoff)
		if backoff < 5*time.Second {
			backoff *= 2
		}
	}
}

func writeTrace(sess *shmt.Session, path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := sess.WriteTrace(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "shmtserved:", err)
	os.Exit(1)
}
