// Command benchdiff guards the committed benchmark baselines: for every
// BENCH_*.json snapshot it re-runs the snapshot's suite with `go test
// -bench`, parses the fresh ns/op numbers, and compares them against the
// committed ones within a fractional tolerance. A fresh run slower than
// (1+tolerance)x the baseline — or a benchmark that vanished — is a
// regression and the exit status is nonzero.
//
// Usage:
//
//	benchdiff                          # diff every BENCH_*.json in the cwd
//	benchdiff -tolerance 0.3 BENCH_kernels.json
//	benchdiff -benchtime 1x -v
//
// Shared-runner timings are noisy, so the default tolerance is generous
// (0.5 = 1.5x) and CI runs this as a non-blocking job: it flags suspicious
// slowdowns without failing the pipeline on scheduler jitter.
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"sort"

	"shmt/internal/bench"
)

func main() {
	var (
		tolerance = flag.Float64("tolerance", 0.5, "allowed fractional slowdown (0.5 passes up to 1.5x the baseline)")
		benchtime = flag.String("benchtime", "0.3s", "per-benchmark time for the fresh run (go test -benchtime)")
		verbose   = flag.Bool("v", false, "print every benchmark, not just regressions")
	)
	flag.Parse()

	paths := flag.Args()
	if len(paths) == 0 {
		var err error
		paths, err = filepath.Glob("BENCH_*.json")
		if err != nil || len(paths) == 0 {
			fatal(fmt.Errorf("no BENCH_*.json snapshots found (run from the repo root or pass paths)"))
		}
		sort.Strings(paths)
	}

	regressions := 0
	var suites []bench.SuiteDeltas
	for _, path := range paths {
		snap, err := bench.LoadSnapshot(path)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %s in %s\n", filepath.Base(path), snap.Suite, snap.Package)
		fresh, err := runSuite(snap, *benchtime)
		if err != nil {
			fatal(err)
		}
		deltas := bench.Diff(snap, fresh, *tolerance)
		suites = append(suites, bench.SuiteDeltas{File: filepath.Base(path), Suite: snap.Suite, Deltas: deltas})
		for _, d := range deltas {
			switch {
			case d.Missing:
				regressions++
				fmt.Printf("  MISSING %-52s baseline %.0f ns/op, not in fresh run\n", d.Name, d.OldNs)
			case d.Regressed:
				regressions++
				fmt.Printf("  SLOWER  %-52s %.0f -> %.0f ns/op (%.2fx, tolerance %.2fx)\n",
					d.Name, d.OldNs, d.NewNs, d.Ratio, 1+*tolerance)
			case *verbose:
				fmt.Printf("  ok      %-52s %.0f -> %.0f ns/op (%.2fx)\n", d.Name, d.OldNs, d.NewNs, d.Ratio)
			}
		}
	}
	writeStepSummary(suites, *tolerance)
	if regressions > 0 {
		fmt.Printf("benchdiff: %d regression(s) beyond %.2fx\n", regressions, 1+*tolerance)
		os.Exit(1)
	}
	fmt.Println("benchdiff: all baselines within tolerance")
}

// writeStepSummary appends the full delta table to the GitHub Actions step
// summary when running in CI ($GITHUB_STEP_SUMMARY set); a failure to write
// it is reported but never fails the diff itself.
func writeStepSummary(suites []bench.SuiteDeltas, tolerance float64) {
	path := os.Getenv("GITHUB_STEP_SUMMARY")
	if path == "" || len(suites) == 0 {
		return
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: step summary:", err)
		return
	}
	defer f.Close()
	if err := bench.WriteMarkdownSummary(f, suites, tolerance); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff: step summary:", err)
	}
}

// runSuite benchmarks the snapshot's suite and returns name → ns/op.
func runSuite(snap *bench.Snapshot, benchtime string) (map[string]float64, error) {
	cmd := exec.Command("go", "test", "-run", "^$",
		"-bench", "^"+snap.Suite+"$", "-benchtime", benchtime, snap.Package)
	var out bytes.Buffer
	cmd.Stdout = &out
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("benchdiff: %s: %w", snap.Suite, err)
	}
	return bench.ParseBenchOutput(&out)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchdiff:", err)
	os.Exit(1)
}
