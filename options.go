package shmt

import (
	"fmt"

	"shmt/internal/sched"
)

// PolicyName selects the scheduling policy, matching the legends of the
// paper's Figs. 6–8.
type PolicyName string

const (
	// PolicyGPUBaseline delegates everything to the GPU with no
	// transfer/compute overlap: the conventional baseline every speedup in
	// the paper normalizes to.
	PolicyGPUBaseline PolicyName = "gpu-baseline"
	// PolicySWPipelining is the GPU baseline with software pipelining
	// (double-buffered staging) — the "SW pipelining" reference of Fig. 6.
	PolicySWPipelining PolicyName = "sw-pipelining"
	// PolicyTPUOnly delegates everything to the Edge TPU (the "edge TPU"
	// bars of Figs. 2 and 7).
	PolicyTPUOnly PolicyName = "tpu-only"
	// PolicyCPUOnly executes exactly on the host — the quality reference.
	PolicyCPUOnly PolicyName = "cpu-only"
	// PolicyEven statically splits HLOPs evenly across accelerators.
	PolicyEven PolicyName = "even-distribution"
	// PolicyWorkStealing is §3.4's basic scheduler: no quality control,
	// best speedup.
	PolicyWorkStealing PolicyName = "work-stealing"
	// PolicyQAWSTS … PolicyQAWSLR are the six QAWS variants (§3.5):
	// assignment ∈ {T: top-K, L: device limits} × sampling ∈ {S: striding,
	// U: uniform random, R: reduction}.
	PolicyQAWSTS PolicyName = "QAWS-TS"
	PolicyQAWSTU PolicyName = "QAWS-TU"
	PolicyQAWSTR PolicyName = "QAWS-TR"
	PolicyQAWSLS PolicyName = "QAWS-LS"
	PolicyQAWSLU PolicyName = "QAWS-LU"
	PolicyQAWSLR PolicyName = "QAWS-LR"
	// PolicyIRA is the IRA-sampling baseline: canary computation per
	// partition, excellent quality, net slowdown.
	PolicyIRA PolicyName = "IRA-sampling"
	// PolicyOracle assigns criticality from a free full scan — the quality
	// upper bound of Figs. 7–8.
	PolicyOracle PolicyName = "oracle"
)

// AllQAWSPolicies lists the six QAWS variants in the paper's order.
func AllQAWSPolicies() []PolicyName {
	return []PolicyName{PolicyQAWSTS, PolicyQAWSTU, PolicyQAWSTR, PolicyQAWSLS, PolicyQAWSLU, PolicyQAWSLR}
}

// Config configures a Session. The zero value enables all three devices
// with the QAWS-TS policy at the paper's defaults.
type Config struct {
	// Device selection; if none of UseCPU/UseGPU/UseTPU is set, all three
	// (the paper's prototype) are enabled. UseDSP is additive: it registers
	// the 24-bit image DSP extension device (§2.1) on top of whatever else
	// is selected.
	UseCPU, UseGPU, UseTPU bool
	UseDSP                 bool
	// Policy is the scheduling policy (default PolicyQAWSTS).
	Policy PolicyName
	// TargetPartitions is the HLOP count per VOP (default 64).
	TargetPartitions int
	// SamplingRate is QAWS's sampling rate (default 2^-15, Fig. 9's knee).
	SamplingRate float64
	// CriticalFraction is the application's top-K hint (default 0.25).
	CriticalFraction float64
	// Window is the top-K ranking window in partitions (default 16).
	Window int
	// TPULimit is the device-limits policy's criticality ceiling for the
	// Edge TPU, as a multiple of the VOP's median partition criticality
	// (default 1.5; see sched.QAWS.DefaultTPULimit).
	TPULimit float64
	// Seed drives sampling and the synthetic components (default 1).
	Seed int64
	// Concurrent runs the goroutine engine instead of the deterministic
	// discrete-event engine.
	Concurrent bool
	// RecordTrace keeps per-HLOP events in each Report.
	RecordTrace bool
	// GPUHalfPrecision switches the GPU to its FP16 AI/ML mode.
	GPUHalfPrecision bool
	// TPUQuantAware builds all Edge TPU NPU models quantization-aware.
	TPUQuantAware bool
	// VirtualScale ≥ 1 slows the simulated platform down by that factor
	// (device throughputs and link bandwidths divide by it, host sampling
	// costs multiply by it). Running an N-element input at VirtualScale =
	// Nfull/N reproduces the virtual timeline of the full-size run exactly
	// — same HLOP count, same per-HLOP costs, same overhead ratios — while
	// quality is measured on the smaller (size-invariant) data. Default 1.
	VirtualScale float64
	// Workers caps the host worker-pool size kernels fan out over (see
	// internal/parallel). 0 keeps the current setting — GOMAXPROCS, or the
	// SHMT_WORKERS environment variable when set. 1 forces sequential
	// execution. Results are bit-identical at every setting. The pool itself
	// is process-wide, but the setting is scoped to the session: it acquires
	// a cap released by Close, and with several live sessions the strictest
	// cap wins, so concurrent sessions compose deterministically instead of
	// racing last-write-wins.
	Workers int
	// Telemetry configures runtime observability (see internal/telemetry).
	Telemetry Telemetry
	// Chaos maps device names ("cpu", "gpu", "tpu", "dsp") to fault plans
	// (see internal/chaos): seeded, reproducible transient errors, latency
	// degradation, permanent death, and output corruption. A plan with a
	// zero Seed inherits Config.Seed. Unknown device names error.
	Chaos map[string]ChaosConfig
	// Resilience tunes the engines' graceful degradation: circuit-breaker
	// threshold and cooldown, exponential backoff, and the per-HLOP retry
	// bound. The zero value uses the defaults (see core.Resilience).
	Resilience Resilience
	// PlanCache configures the memoized execution-plan layer. The zero value
	// enables it with DefaultPlanCacheEntries — production traffic is
	// shape-repetitive, so repeated same-shape Execute calls replay the
	// captured partition geometry and device assignment instead of
	// re-planning. See PlanCacheConfig for the data-dependence caveat.
	PlanCache PlanCacheConfig
	// ExecTimeCacheEntries caps the engines' per-run cost-model memo (see
	// device.ExecTimeCache); on overflow the memo is flushed wholesale. 0
	// keeps the default (device.DefaultExecTimeEntries = 4096).
	ExecTimeCacheEntries int
	// Prefetch configures asynchronous input prefetch for private-memory
	// devices (TPU/NPU): while one HLOP executes, the host worker pool
	// pre-quantizes and pre-materializes the next HLOPs' operands. The zero
	// value enables it at DefaultPrefetchDepth whenever the policy double
	// buffers. Results are bit-identical at every depth.
	Prefetch PrefetchConfig
}

// DefaultPrefetchDepth is how many queued HLOPs per device the input
// prefetcher stages ahead of execution — matching the interconnect model's
// double-buffer slot count (interconnect.BufferDepth).
const DefaultPrefetchDepth = 2

// PrefetchConfig configures the asynchronous input-prefetch stage of
// double-buffered HLOP pipelining. Prefetch only changes *when* operands are
// staged, never *how*: staging runs the exact dispatch-path quantization, a
// staged set is cancelled (not reused) when a steal or breaker-open reroutes
// its HLOP, and operands shared across a run's HLOPs are staged once and
// kept device-resident. Outputs are therefore bit-identical with prefetch
// on or off, at any depth.
type PrefetchConfig struct {
	// Disabled turns prefetch off: every dispatch stages synchronously.
	Disabled bool
	// Depth is the per-device staged-ahead bound; ≤ 0 means
	// DefaultPrefetchDepth.
	Depth int
}

// depth resolves the engine-level prefetch depth (0 disables). Prefetch
// rides on the double-buffer pipeline, so policies that run without overlap
// also stage synchronously.
func (p PrefetchConfig) depth(doubleBuffer bool) int {
	if p.Disabled || !doubleBuffer {
		return 0
	}
	if p.Depth <= 0 {
		return DefaultPrefetchDepth
	}
	return p.Depth
}

// DefaultPlanCacheEntries is the plan cache's default LRU capacity: plans
// are a few hundred bytes each (geometry plus assignment, no data), so even
// a serving session streaming many distinct shapes stays small.
const DefaultPlanCacheEntries = 512

// PlanCacheConfig configures the memoized execution-plan layer: a plan —
// partition geometry, per-HLOP device assignment, criticality — is captured
// on first execution of a (opcode, input shapes, attrs, Spec, policy) key
// and replayed by later same-key executions, skipping partition geometry,
// sampling reads and the assignment pass. Plans are invalidated wholesale
// whenever the device-health epoch moves (a circuit breaker opens, or a
// quarantined device is re-admitted), so a replay can never route work to a
// device the engine has quarantined, and bounded by LRU eviction.
//
// Caveat: data-dependent policies (QAWS, IRA, oracle) sample input values
// for criticality, so a replayed plan reuses the criticality profile of the
// execution that captured it. Steady-state serving traffic overwhelmingly
// shares profiles across same-shaped requests; workloads where per-request
// criticality matters (or measurement runs reproducing the paper's figures,
// as internal/bench does) should set Disabled.
type PlanCacheConfig struct {
	// Disabled turns the plan cache off: every Execute plans from scratch.
	Disabled bool
	// Entries is the LRU capacity; ≤ 0 means DefaultPlanCacheEntries.
	Entries int
}

// entries resolves the engine-level capacity (0 disables).
func (p PlanCacheConfig) entries() int {
	if p.Disabled {
		return 0
	}
	if p.Entries <= 0 {
		return DefaultPlanCacheEntries
	}
	return p.Entries
}

// Telemetry configures the session's observability layer. The zero value
// leaves instrumentation disabled — the engine's instrumented paths then
// cost one atomic load each and allocate nothing.
type Telemetry struct {
	// Enabled turns on the instrumentation core: process-global counters,
	// per-run spans, and the Session.TelemetryReport / Session.WriteTrace
	// exporters. Setting MetricsAddr implies Enabled.
	Enabled bool
	// MetricsAddr, when non-empty, serves Prometheus text exposition on
	// http://ADDR/metrics for the session's lifetime (closed by
	// Session.Close). Empty falls back to the SHMT_METRICS_ADDR environment
	// variable; ":0" picks a free port (see Session.MetricsAddr).
	MetricsAddr string
}

func (c Config) withDefaults() Config {
	if !c.UseCPU && !c.UseGPU && !c.UseTPU {
		c.UseCPU, c.UseGPU, c.UseTPU = true, true, true
	}
	if c.Policy == "" {
		c.Policy = PolicyQAWSTS
	}
	if c.TargetPartitions <= 0 {
		c.TargetPartitions = 64
	}
	if c.SamplingRate <= 0 {
		c.SamplingRate = 1.0 / (1 << 15)
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.VirtualScale < 1 {
		c.VirtualScale = 1
	}
	return c
}

// policy materializes the named policy and reports whether the engine
// should double-buffer transfers (SHMT policies and software pipelining do;
// the conventional baselines do not).
func (c Config) policy() (sched.Policy, bool, error) {
	qaws := func(a sched.Assignment, m SamplingMethod) (sched.Policy, bool, error) {
		return sched.QAWS{
			Assignment:      a,
			Method:          m,
			Rate:            c.SamplingRate,
			K:               c.CriticalFraction,
			W:               c.Window,
			DefaultTPULimit: c.TPULimit,
		}, true, nil
	}
	switch c.Policy {
	case PolicyGPUBaseline:
		return sched.SingleDevice{Device: "gpu"}, false, nil
	case PolicySWPipelining:
		return sched.SingleDevice{Device: "gpu"}, true, nil
	case PolicyTPUOnly:
		return sched.SingleDevice{Device: "tpu"}, true, nil
	case PolicyCPUOnly:
		return sched.SingleDevice{Device: "cpu"}, false, nil
	case PolicyEven:
		return sched.EvenDistribution{}, false, nil
	case PolicyWorkStealing:
		return sched.WorkStealing{}, true, nil
	case PolicyQAWSTS:
		return qaws(sched.TopK, SamplingStriding)
	case PolicyQAWSTU:
		return qaws(sched.TopK, SamplingUniform)
	case PolicyQAWSTR:
		return qaws(sched.TopK, SamplingReduction)
	case PolicyQAWSLS:
		return qaws(sched.DeviceLimits, SamplingStriding)
	case PolicyQAWSLU:
		return qaws(sched.DeviceLimits, SamplingUniform)
	case PolicyQAWSLR:
		return qaws(sched.DeviceLimits, SamplingReduction)
	case PolicyIRA:
		return sched.IRASampling{K: c.CriticalFraction}, true, nil
	case PolicyOracle:
		return sched.Oracle{K: c.CriticalFraction}, true, nil
	default:
		return nil, false, fmt.Errorf("shmt: unknown policy %q", c.Policy)
	}
}

// AllPolicies lists every policy name this library implements, in the order
// Fig. 6 reports them.
func AllPolicies() []PolicyName {
	return []PolicyName{
		PolicyGPUBaseline, PolicyTPUOnly, PolicyCPUOnly, PolicyIRA,
		PolicySWPipelining, PolicyEven, PolicyWorkStealing,
		PolicyQAWSTS, PolicyQAWSTU, PolicyQAWSTR,
		PolicyQAWSLS, PolicyQAWSLU, PolicyQAWSLR, PolicyOracle,
	}
}
