package shmt_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"shmt"
	"shmt/internal/workload"
)

// TestSessionTelemetryEndToEnd covers the ISSUE acceptance path through the
// public API: an enabled session produces a non-nil report, a valid Perfetto
// trace, and a live Prometheus endpoint; Close tears the listener down.
func TestSessionTelemetryEndToEnd(t *testing.T) {
	s, err := shmt.NewSession(shmt.Config{
		Telemetry: shmt.Telemetry{Enabled: true, MetricsAddr: "127.0.0.1:0"},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	addr := s.MetricsAddr()
	if addr == "" {
		t.Fatal("MetricsAddr empty despite :0 listener")
	}

	img := workload.Mixed(64, 64, workload.Profile{TileSize: 16}, 7)
	if _, _, err := s.Sobel(img); err != nil {
		t.Fatal(err)
	}

	rep := s.TelemetryReport()
	if rep == nil {
		t.Fatal("TelemetryReport nil on an enabled session")
	}
	if rep.Spans == 0 || len(rep.Lanes) == 0 {
		t.Fatalf("report empty: %+v", rep)
	}
	var sawVirtual, sawWall bool
	for _, l := range rep.Lanes {
		switch l.Clock {
		case "virtual":
			sawVirtual = true
		case "wall":
			sawWall = true
		}
	}
	if !sawVirtual || !sawWall {
		t.Fatalf("report lacks both clock domains: %+v", rep.Lanes)
	}
	var moved bool
	for k := range rep.Counters {
		if strings.HasPrefix(k, "shmt_hlops_executed_total") {
			moved = true
		}
	}
	if !moved {
		t.Fatalf("no execution counters in report: %v", rep.Counters)
	}

	// Perfetto trace round-trips through JSON.
	var buf bytes.Buffer
	if err := s.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf struct {
		DisplayTimeUnit string           `json:"displayTimeUnit"`
		TraceEvents     []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("WriteTrace output is not valid JSON: %v", err)
	}
	if len(tf.TraceEvents) == 0 {
		t.Fatal("trace has no events")
	}

	// Live scrape while the session is open.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("scrape status = %d", resp.StatusCode)
	}
	for _, want := range []string{"shmt_runs_total", "shmt_queue_depth", "shmt_steal_attempts_total"} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("scrape missing %q", want)
		}
	}

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
		t.Fatal("metrics endpoint still serving after Close")
	}
}

func TestSessionTelemetryDisabled(t *testing.T) {
	s, err := shmt.NewSession(shmt.Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if rep := s.TelemetryReport(); rep != nil {
		t.Fatalf("TelemetryReport = %+v on a disabled session", rep)
	}
	if err := s.WriteTrace(io.Discard); err == nil {
		t.Fatal("WriteTrace must fail when telemetry is disabled")
	}
	if s.MetricsAddr() != "" {
		t.Fatal("MetricsAddr set without a listener")
	}
}

// TestSessionMetricsAddrImpliesEnabled: setting only MetricsAddr must turn
// the instrumentation core on.
func TestSessionMetricsAddrImpliesEnabled(t *testing.T) {
	s, err := shmt.NewSession(shmt.Config{Telemetry: shmt.Telemetry{MetricsAddr: "127.0.0.1:0"}})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if s.TelemetryReport() == nil {
		t.Fatal("MetricsAddr alone should imply Enabled")
	}
}
