module shmt

go 1.22
