#!/bin/sh
# clustersmoke drives the multi-node serving tier end to end: a shmtrouterd
# router fronting two shmtserved backends, all on ephemeral ports. It asserts
#
#   (1) concurrent request volleys through the router all answer 200, with
#       key affinity (same tenant/op/shape -> same X-SHMT-Backend),
#   (2) SIGKILLing one backend mid-volley loses zero client requests — the
#       router fails over to the surviving replica (at most one client retry
#       per request is allowed for the in-flight instant of the kill),
#   (3) the kill is visible in the exposition: shmt_router_rehash_total and
#       shmt_router_breaker_opens_total advance, healthy-backend count drops,
#   (4) restarting the dead backend on its original port re-admits it through
#       a half-open health probe (shmt_router_readmissions_total > 0),
#   (5) a fresh backend can join at runtime via -register (self-registration),
#   (6) a large eligible VOP scatter-gathers across backends
#       (X-SHMT-Scatter header, shmt_router_scatter_requests_total > 0) and
#       reassembles the right answer,
#   (7) a tenant over its -tenant-limit in-flight quota is shed with 429 at
#       the router (shmt_router_tenant_shed_total > 0) while uncapped tenants
#       stay all-200,
#   (8) SIGTERM drains router and backends to clean exits.
#
# Router /statusz and /metrics snapshots land in ARTIFACT_DIR for CI upload.
# Every scratch file lives in a private mktemp dir and every port is
# ephemeral, so this can run concurrently with servesmoke.sh on one host.
#
# Needs only a POSIX shell, curl and awk. Run via `make clustersmoke`.
set -eu

WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/clustersmoke.XXXXXX")
ARTIFACT_DIR=${ARTIFACT_DIR:-$WORKDIR}
CONCURRENCY=${CONCURRENCY:-6}
VOLLEYS=${VOLLEYS:-3}
SERVED="$WORKDIR/shmtserved"
ROUTERD="$WORKDIR/shmtrouterd"

mkdir -p "$ARTIFACT_DIR"
go build -o "$SERVED" ./cmd/shmtserved
go build -o "$ROUTERD" ./cmd/shmtrouterd

PIDS=""
cleanup() {
    for p in $PIDS; do kill "$p" 2>/dev/null || true; done
    rm -rf "$WORKDIR"
}
trap cleanup EXIT

# wait_listen LOG NAME -> prints the bound ADDR once the daemon logs it.
wait_listen() {
    log=$1; name=$2; addr=""
    for _ in $(seq 1 100); do
        addr=$(awk -v n="^$name listening on http://" \
            '$0 ~ n {sub(/^.*http:\/\//,""); print $1; exit}' "$log" || true)
        [ -n "$addr" ] && break
        sleep 0.1
    done
    [ -n "$addr" ] || { echo "FAIL: no listen line from $name:" >&2; cat "$log" >&2; exit 1; }
    echo "$addr"
}

start_backend() { # start_backend LOG [extra flags...]
    log=$1; shift
    "$SERVED" -addr 127.0.0.1:0 -max-batch 8 -max-linger 20ms -tracing=false \
        -log-format json "$@" >"$log" 2>&1 &
    echo $!
}

B1PID=$(start_backend "$WORKDIR/b1.log")
B2PID=$(start_backend "$WORKDIR/b2.log")
PIDS="$B1PID $B2PID"
B1=$(wait_listen "$WORKDIR/b1.log" shmtserved)
B2=$(wait_listen "$WORKDIR/b2.log" shmtserved)
echo "backends up on $B1 and $B2"

# Tight probe/breaker settings so the smoke sees quarantine and re-admission
# inside seconds; a scatter threshold small enough for a 64x64 add to fan out.
# The capped tenant gets one in-flight slot so the quota section below can
# observe router-side shedding without touching any backend.
"$ROUTERD" -addr 127.0.0.1:0 -backends "$B1,$B2" \
    -probe-interval 100ms -probe-timeout 1s \
    -breaker-threshold 2 -breaker-cooldown 300ms \
    -scatter-threshold 4096 -max-fanout 4 \
    -tenant-limit capped:1 \
    -log-format json >"$WORKDIR/router.log" 2>&1 &
RPID=$!
PIDS="$PIDS $RPID"
ROUTER=$(wait_listen "$WORKDIR/router.log" shmtrouterd)
echo "router up on $ROUTER"

for _ in $(seq 1 50); do
    curl -s "http://$ROUTER/healthz" | grep -q '"status":"ok"' && break
    sleep 0.1
done
curl -s "http://$ROUTER/healthz" | grep -q '"status":"ok"' || {
    echo "FAIL: router never became healthy"; curl -s "http://$ROUTER/healthz"; exit 1; }

BODY='{"op":"add","inputs":[{"rows":2,"cols":2,"data":[1,2,3,4]},{"rows":2,"cols":2,"data":[5,6,7,8]}]}'

# fire_volley TAG: CONCURRENCY concurrent requests, distinct tenants so keys
# spread over both backends. Each request may retry twice (covers the
# in-flight instant of a SIGKILL); a request with no 200 after retries fails
# the smoke — that would be a lost client request, which failover forbids.
fire_volley() {
    tag=$1
    i=0
    VPIDS=""
    while [ "$i" -lt "$CONCURRENCY" ]; do
        i=$((i + 1))
        (
            ok=""
            for _try in 1 2 3; do
                code=$(curl -s -o "$WORKDIR/v-$tag-$i.json" -w '%{http_code}' \
                    -H "X-SHMT-Tenant: tenant-$i" -d "$BODY" \
                    "http://$ROUTER/v1/execute" || echo 000)
                if [ "$code" = "200" ] && grep -q '"output"' "$WORKDIR/v-$tag-$i.json"; then
                    ok=1; break
                fi
                sleep 0.2
            done
            [ -n "$ok" ] || { echo "request $tag/$i failed (last HTTP $code)" >"$WORKDIR/v-$tag-$i.fail"; }
        ) &
        VPIDS="$VPIDS $!"
    done
    for vp in $VPIDS; do wait "$vp" || true; done
    if ls "$WORKDIR"/v-"$tag"-*.fail >/dev/null 2>&1; then
        echo "FAIL: lost client requests in volley $tag:"
        cat "$WORKDIR"/v-"$tag"-*.fail
        exit 1
    fi
}

# metric NAME -> summed value of the family (labelled series add up).
# Exact family match: "name value" or "name{...} value", never a prefix.
metric() {
    curl -s "http://$ROUTER/metrics" | awk -v m="$1" \
        '$1 == m || index($1, m "{") == 1 { s += $2 } END { printf "%d\n", s }'
}

v=0
while [ "$v" -lt "$VOLLEYS" ]; do
    v=$((v + 1))
    fire_volley "warm$v"
done
echo "warmup volleys clean"

# Key affinity: the same tenant/op/shape lands on the same backend. The
# header value is host:port, so strip up to the first ": " only.
backend_header() {
    awk 'tolower($0) ~ /^x-shmt-backend:/ {sub(/^[^:]*:[ \t]*/,""); sub(/\r$/,""); print; exit}'
}
A1=$(curl -s -D - -o /dev/null -H 'X-SHMT-Tenant: sticky' -d "$BODY" "http://$ROUTER/v1/execute" | backend_header)
A2=$(curl -s -D - -o /dev/null -H 'X-SHMT-Tenant: sticky' -d "$BODY" "http://$ROUTER/v1/execute" | backend_header)
[ -n "$A1" ] && [ "$A1" = "$A2" ] || {
    echo "FAIL: key affinity broken: '$A1' then '$A2'"; exit 1; }
echo "key affinity holds on $A1"

# --- tenant quota: the capped tenant (max 1 in flight) must shed with 429 ---
# Fire concurrent capped-tenant requests until two overlap at the router;
# the overflow answers 429 + Retry-After without touching a backend, and the
# shed shows up in shmt_router_tenant_shed_total. The uncapped tenant-$i
# volleys before and after stay all-200.
CAPPED_SHED=0
qr=0
while [ "$qr" -lt 10 ]; do
    qr=$((qr + 1))
    QPIDS=""
    i=0
    while [ "$i" -lt 8 ]; do
        i=$((i + 1))
        curl -s -o /dev/null -w '%{http_code}\n' -H 'X-SHMT-Tenant: capped' \
            -d "$BODY" "http://$ROUTER/v1/execute" >"$WORKDIR/qcode.$i" &
        QPIDS="$QPIDS $!"
    done
    for qp in $QPIDS; do wait "$qp" || true; done
    i=0
    while [ "$i" -lt 8 ]; do
        i=$((i + 1))
        qc=$(cat "$WORKDIR/qcode.$i")
        case "$qc" in
            200) ;;
            429) CAPPED_SHED=$((CAPPED_SHED + 1)) ;;
            *) echo "FAIL: capped request $i got HTTP $qc (want 200 or 429)"; exit 1 ;;
        esac
    done
    [ "$CAPPED_SHED" -gt 0 ] && break
done
rm -f "$WORKDIR"/qcode.*
[ "$CAPPED_SHED" -gt 0 ] || {
    echo "FAIL: capped tenant (limit 1) never shed a 429 in $qr volleys"; exit 1; }
[ "$(metric shmt_router_tenant_shed_total)" -ge 1 ] || {
    echo "FAIL: router tenant shed not counted in exposition"; exit 1; }
fire_volley postquota
echo "tenant quota: capped shed $CAPPED_SHED request(s) at the router, other tenants clean"

# Scatter-gather: a 64x64 add clears the 4096-element threshold; it must fan
# out (X-SHMT-Scatter >= 2) and still sum correctly.
BIGDATA=$(awk 'BEGIN{printf "["; for(i=0;i<4096;i++) printf "%s%d", (i?",":""), i%7; printf "]"}')
printf '{"op":"add","inputs":[{"rows":64,"cols":64,"data":%s},{"rows":64,"cols":64,"data":%s}]}' \
    "$BIGDATA" "$BIGDATA" >"$WORKDIR/big.json"
SC=$(curl -s -D - -o "$WORKDIR/bigout.json" -d @"$WORKDIR/big.json" "http://$ROUTER/v1/execute" |
    awk -F': *' 'tolower($1)=="x-shmt-scatter"{sub(/\r$/,"",$2); print $2; exit}')
[ -n "$SC" ] && [ "$SC" -ge 2 ] || {
    echo "FAIL: large VOP did not scatter (X-SHMT-Scatter='$SC')"
    cat "$WORKDIR/bigout.json"; echo; exit 1; }
grep -q '"output"' "$WORKDIR/bigout.json" || {
    echo "FAIL: scattered response has no output"; exit 1; }
# Spot-check the reassembly: element 5 must be 5+5=10 (data[i] = i%7 twice).
grep -q '\[0,2,4,6,8,10' "$WORKDIR/bigout.json" || {
    echo "FAIL: scattered output wrong:"; head -c 200 "$WORKDIR/bigout.json"; echo; exit 1; }
[ "$(metric shmt_router_scatter_requests_total)" -ge 1 ] || {
    echo "FAIL: scatter not counted in exposition"; exit 1; }
echo "scatter-gather fanned out over $SC partitions"

# --- failover: SIGKILL backend 2 mid-volley -------------------------------
B2PORT=${B2##*:}
fire_volley kill &
KVPID=$!
sleep 0.05
kill -9 "$B2PID"
wait "$KVPID" || exit 1
fire_volley after1
fire_volley after2
echo "zero lost requests across the SIGKILL"

# The breaker must have opened on the dead backend and keys rehashed to the
# survivor; fleet gauges reflect one healthy of two registered.
for _ in $(seq 1 50); do
    [ "$(metric shmt_router_breaker_opens_total)" -ge 1 ] && break
    sleep 0.1
done
[ "$(metric shmt_router_breaker_opens_total)" -ge 1 ] || {
    echo "FAIL: breaker never opened for the killed backend"; exit 1; }
[ "$(metric shmt_router_rehash_total)" -ge 1 ] || {
    echo "FAIL: no rehash recorded after backend death"; exit 1; }
HEALTHY=$(metric shmt_router_backends_healthy)
[ "$HEALTHY" = "1" ] || { echo "FAIL: backends_healthy=$HEALTHY, want 1"; exit 1; }
echo "breaker open + rehash visible in exposition"

# --- re-admission: restart the dead backend on its original port ----------
# Also exercises runtime self-registration (-register is idempotent for an
# already-known addr); the half-open probe is what must close the breaker.
B2PID=$(start_backend "$WORKDIR/b2b.log" -register "http://$ROUTER" -advertise "127.0.0.1:$B2PORT" -addr "127.0.0.1:$B2PORT")
PIDS="$PIDS $B2PID"
READMITTED=""
for _ in $(seq 1 100); do
    if [ "$(metric shmt_router_readmissions_total)" -ge 1 ] &&
        [ "$(metric shmt_router_backends_healthy)" = "2" ]; then
        READMITTED=1; break
    fi
    sleep 0.1
done
[ -n "$READMITTED" ] || {
    echo "FAIL: restarted backend never re-admitted"
    curl -s "http://$ROUTER/statusz"; echo; exit 1; }
fire_volley readmit
echo "killed backend re-admitted after restart"

# --- runtime self-registration of a brand-new backend ---------------------
B3PID=$(start_backend "$WORKDIR/b3.log" -register "http://$ROUTER")
PIDS="$PIDS $B3PID"
for _ in $(seq 1 100); do
    [ "$(metric shmt_router_backends)" = "3" ] && break
    sleep 0.1
done
[ "$(metric shmt_router_backends)" = "3" ] || {
    echo "FAIL: self-registered backend never joined"; exit 1; }
fire_volley grown
echo "fresh backend self-registered; fleet of 3 serving"

# Artifacts: router snapshots for CI upload.
curl -s "http://$ROUTER/statusz" >"$ARTIFACT_DIR/clustersmoke-statusz.json"
curl -s "http://$ROUTER/metrics" >"$ARTIFACT_DIR/clustersmoke-metrics.prom"
grep -q '"service":"shmtrouterd"' "$ARTIFACT_DIR/clustersmoke-statusz.json" || {
    echo "FAIL: statusz artifact malformed"; exit 1; }
echo "artifacts saved to $ARTIFACT_DIR"

# --- drain ----------------------------------------------------------------
kill -TERM "$RPID"
DEADLINE=$(( $(date +%s) + 15 ))
while kill -0 "$RPID" 2>/dev/null; do
    [ "$(date +%s)" -lt "$DEADLINE" ] || { echo "FAIL: router no exit within 15s of SIGTERM"; exit 1; }
    sleep 0.2
done
wait "$RPID" 2>/dev/null && rc=0 || rc=$?
[ "$rc" -eq 0 ] || { echo "FAIL: router exit status $rc:"; cat "$WORKDIR/router.log"; exit 1; }

for p in $B1PID $B2PID $B3PID; do
    kill -TERM "$p" 2>/dev/null || true
done
for p in $B1PID $B2PID $B3PID; do
    DEADLINE=$(( $(date +%s) + 15 ))
    while kill -0 "$p" 2>/dev/null; do
        [ "$(date +%s)" -lt "$DEADLINE" ] || { echo "FAIL: backend $p no exit within 15s"; exit 1; }
        sleep 0.2
    done
done
echo "router and backends drained cleanly"

echo "clustersmoke OK"
