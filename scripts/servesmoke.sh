#!/bin/sh
# servesmoke drives shmtserved end to end: boot on a free port, fire
# concurrent requests, and assert (1) every request got a 200 with a sane
# output, (2) the micro-batcher actually coalesced — some round held more
# than one request, proven from the Prometheus exposition alone
# (shmt_serve_batch_size_sum > shmt_serve_batch_size_count, since every
# round's size is >= 1), (3) /healthz answers ok, (4) SIGTERM drains to a
# clean exit.
#
# With tracing on (the default) it additionally asserts (5) an inbound
# X-SHMT-Trace-Id round-trips onto the response and into a non-empty stage
# breakdown retrievable from /debug/requests, and it leaves two artifacts in
# ARTIFACT_DIR for CI upload: a /statusz snapshot and the daemon's Perfetto
# trace (written at drain via -trace-out).
#
# Two tenant QoS checks ride along: (6) a quota-limited tenant (weight 1,
# queue depth 1) sheds 429s under concurrent overload while a premium tenant
# in the same volleys stays all-200, reconciled against the
# shmt_serve_tenant_* exposition; (7) a request whose timeout_ms is far
# inside -critical-deadline reports deadline pressure and a critical-majority
# HLOP placement in its trace block.
#
# The listen address comes from SHMT_SERVE_ADDR (default 127.0.0.1:0, an
# ephemeral port) and every scratch file lives in a private mktemp dir, so
# several smoke runs — this one and clustersmoke.sh included — can run on the
# same host at the same time without colliding.
#
# Needs only a POSIX shell, curl and awk. Run via `make servesmoke`.
set -eu

WORKDIR=$(mktemp -d "${TMPDIR:-/tmp}/servesmoke.XXXXXX")
BIN=${BIN:-$WORKDIR/shmtserved}
LOG=${LOG:-$WORKDIR/shmtserved.log}
ADDR_FLAG=${SHMT_SERVE_ADDR:-127.0.0.1:0}
CONCURRENCY=${CONCURRENCY:-8}
VOLLEYS=${VOLLEYS:-5}
ARTIFACT_DIR=${ARTIFACT_DIR:-$WORKDIR}
TRACE_OUT="$ARTIFACT_DIR/servesmoke-trace.json"
STATUSZ_OUT="$ARTIFACT_DIR/servesmoke-statusz.json"

mkdir -p "$ARTIFACT_DIR"
go build -o "$BIN" ./cmd/shmtserved

# A generous linger so one volley of concurrent curls lands in one round even
# on a slow CI runner. Two tenants exercise the weighted-fair queues: burst is
# quota-limited (weight 1, queue depth 1, so overload sheds), premium gets
# weight 4. A 2s critical-deadline lets the criticality check below drive QAWS
# with a tight timeout_ms.
"$BIN" -addr "$ADDR_FLAG" -max-batch 8 -max-linger 150ms \
    -tenant burst:1:1 -tenant premium:4 -critical-deadline 2s \
    -log-format json -trace-out "$TRACE_OUT" >"$LOG" 2>&1 &
PID=$!
trap 'kill "$PID" 2>/dev/null || true; rm -rf "$WORKDIR"' EXIT

# The daemon prints "shmtserved listening on http://ADDR (...)" once bound.
ADDR=""
for _ in $(seq 1 50); do
    ADDR=$(awk '/^shmtserved listening on http:\/\//{sub(/^.*http:\/\//,""); print $1; exit}' "$LOG" || true)
    [ -n "$ADDR" ] && break
    kill -0 "$PID" 2>/dev/null || { echo "FAIL: shmtserved died:"; cat "$LOG"; exit 1; }
    sleep 0.1
done
[ -n "$ADDR" ] || { echo "FAIL: no listen line in log:"; cat "$LOG"; exit 1; }
echo "shmtserved up on $ADDR"

BODY='{"op":"add","inputs":[{"rows":2,"cols":2,"data":[1,2,3,4]},{"rows":2,"cols":2,"data":[5,6,7,8]}]}'

# Several volleys of concurrent requests; each volley fires CONCURRENCY curls
# at once so the linger window can coalesce them.
v=0
while [ "$v" -lt "$VOLLEYS" ]; do
    v=$((v + 1))
    i=0
    CURL_PIDS=""
    while [ "$i" -lt "$CONCURRENCY" ]; do
        i=$((i + 1))
        curl -s -o "$WORKDIR/resp.$i" -w '%{http_code}\n' \
            -d "$BODY" "http://$ADDR/v1/execute" >"$WORKDIR/code.$i" &
        CURL_PIDS="$CURL_PIDS $!"
    done
    for cp in $CURL_PIDS; do
        wait "$cp" || true
    done
    i=0
    while [ "$i" -lt "$CONCURRENCY" ]; do
        i=$((i + 1))
        code=$(cat "$WORKDIR/code.$i")
        if [ "$code" != "200" ]; then
            echo "FAIL: volley $v request $i: HTTP $code"
            cat "$WORKDIR/resp.$i"; echo
            exit 1
        fi
        grep -q '"output"' "$WORKDIR/resp.$i" || {
            echo "FAIL: volley $v request $i: no output in response"
            cat "$WORKDIR/resp.$i"; echo
            exit 1
        }
    done
done
rm -f "$WORKDIR"/resp.* "$WORKDIR"/code.*
echo "all $((VOLLEYS * CONCURRENCY)) requests answered 200"

# Tenant QoS: the burst tenant (queue depth 1) must shed under concurrent
# overload while every premium request in the same volley still answers 200.
# Shedding needs the dispatcher busy with a burst request already queued, so
# premium's wedge requests are 256x256 GEMMs — heavy enough (~50ms rounds)
# that the burst volley piles into its one-slot queue. Retry a few times to
# absorb timing variance on slow runners.
GEMM_BODY="$WORKDIR/gemm.json"
awk 'BEGIN{
    printf "{\"op\":\"gemm\",\"inputs\":["
    for (m = 0; m < 2; m++) {
        printf "%s{\"rows\":256,\"cols\":256,\"data\":[", (m ? "," : "")
        for (i = 0; i < 65536; i++) printf "%s1", (i ? "," : "")
        printf "]}"
    }
    printf "]}"
}' >"$GEMM_BODY"
BURST_SHED=0
qos_round=0
while [ "$qos_round" -lt 10 ]; do
    qos_round=$((qos_round + 1))
    CURL_PIDS=""
    i=0
    while [ "$i" -lt 4 ]; do
        i=$((i + 1))
        curl -s -o /dev/null -w '%{http_code}\n' -H 'X-SHMT-Tenant: premium' \
            -d @"$GEMM_BODY" "http://$ADDR/v1/execute" >"$WORKDIR/pcode.$i" &
        CURL_PIDS="$CURL_PIDS $!"
    done
    sleep 0.05 # let a premium round occupy the dispatcher first
    i=0
    while [ "$i" -lt 16 ]; do
        i=$((i + 1))
        curl -s -o /dev/null -w '%{http_code}\n' -H 'X-SHMT-Tenant: burst' \
            -d "$BODY" "http://$ADDR/v1/execute" >"$WORKDIR/bcode.$i" &
        CURL_PIDS="$CURL_PIDS $!"
    done
    for cp in $CURL_PIDS; do
        wait "$cp" || true
    done
    i=0
    while [ "$i" -lt 4 ]; do
        i=$((i + 1))
        pc=$(cat "$WORKDIR/pcode.$i")
        [ "$pc" = "200" ] || {
            echo "FAIL: premium request $i got HTTP $pc during burst overload"; exit 1; }
    done
    i=0
    while [ "$i" -lt 16 ]; do
        i=$((i + 1))
        bc=$(cat "$WORKDIR/bcode.$i")
        case "$bc" in
            200) ;;
            429) BURST_SHED=$((BURST_SHED + 1)) ;;
            *) echo "FAIL: burst request $i got HTTP $bc (want 200 or 429)"; exit 1 ;;
        esac
    done
    [ "$BURST_SHED" -gt 0 ] && break
done
rm -f "$WORKDIR"/pcode.* "$WORKDIR"/bcode.*
[ "$BURST_SHED" -gt 0 ] || {
    echo "FAIL: burst tenant (queue depth 1) never shed a 429 in $qos_round overload volleys"; exit 1; }
echo "tenant QoS: burst shed $BURST_SHED request(s), premium unaffected ($qos_round volley(s))"

# Deadline-driven criticality: a timeout_ms far inside the 2s critical
# deadline must surface as deadline pressure in the trace block, with at
# least half the request's HLOPs flagged critical (kept on high-accuracy
# devices). A 64x64 input partitions into many HLOPs, so the critical
# majority is a real scheduling outcome, not a single-partition tautology.
TIGHT="$WORKDIR/tight.json"
awk 'BEGIN{
    printf "{\"op\":\"add\",\"timeout_ms\":200,\"inputs\":["
    for (m = 0; m < 2; m++) {
        printf "%s{\"rows\":64,\"cols\":64,\"data\":[", (m ? "," : "")
        for (i = 0; i < 4096; i++) printf "%s%d", (i ? "," : ""), i % 5
        printf "]}"
    }
    printf "]}"
}' >"$WORKDIR/tightbody.json"
TCODE=$(curl -s -o "$TIGHT" -w '%{http_code}' \
    -d @"$WORKDIR/tightbody.json" "http://$ADDR/v1/execute")
[ "$TCODE" = "200" ] || { echo "FAIL: tight-deadline request: HTTP $TCODE"; cat "$TIGHT"; exit 1; }
awk '
    {
        if (match($0, /"deadline_pressure":[0-9.]+/))
            pressure = substr($0, RSTART + 20, RLENGTH - 20) + 0
        if (match($0, /"critical_hlops":[0-9]+/))
            critical = substr($0, RSTART + 17, RLENGTH - 17) + 0
        if (match($0, /"hlops":[0-9]+/))
            hlops = substr($0, RSTART + 8, RLENGTH - 8) + 0
    }
    END {
        if (pressure < 0.8) { printf "FAIL: deadline_pressure %s, want >= 0.8\n", pressure; exit 1 }
        if (hlops < 1) { print "FAIL: no hlops in response"; exit 1 }
        if (critical * 2 < hlops) {
            printf "FAIL: only %d of %d HLOPs critical under deadline pressure\n", critical, hlops; exit 1 }
        printf "deadline pressure %.2f: %d of %d HLOPs critical\n", pressure, critical, hlops
    }' "$TIGHT"
rm -f "$TIGHT"

EXPO=$(curl -s "http://$ADDR/metrics")
echo "$EXPO" | grep -q '^shmt_serve_batches_total' || {
    echo "FAIL: /metrics not scrapeable or missing serve metrics"; exit 1; }
echo "$EXPO" | awk '
    /^shmt_serve_batch_size_sum/   { sum = $2 }
    /^shmt_serve_batch_size_count/ { count = $2 }
    END {
        if (count == "" || sum == "") { print "FAIL: batch-size series missing"; exit 1 }
        printf "batch rounds: %d, requests batched: %d (mean %.2f)\n", count, sum, sum / count
        if (sum + 0 <= count + 0) { print "FAIL: no round coalesced more than one request"; exit 1 }
    }'

# Tenant accounting must reconcile with the volley outcomes above: burst's
# shed counter matches its 429s, and premium shed nothing.
echo "$EXPO" | awk -v shed="$BURST_SHED" '
    /^shmt_serve_tenant_shed_total\{tenant="burst"\}/    { bshed = $2 }
    /^shmt_serve_tenant_shed_total\{tenant="premium"\}/  { pshed = $2 }
    /^shmt_serve_tenant_requests_total\{tenant="premium"\}/ { preq = $2 }
    END {
        if (bshed + 0 < 1) { print "FAIL: shmt_serve_tenant_shed_total{tenant=\"burst\"} missing or zero"; exit 1 }
        if (bshed + 0 != shed + 0) { printf "FAIL: burst shed counter %d != observed 429s %d\n", bshed, shed; exit 1 }
        if (pshed + 0 != 0) { printf "FAIL: premium shed %d requests\n", pshed; exit 1 }
        if (preq + 0 < 1) { print "FAIL: no shmt_serve_tenant_requests_total{tenant=\"premium\"} series"; exit 1 }
        printf "tenant metrics: burst shed %d, premium %d requests none shed\n", bshed, preq
    }'

# Trace round-trip: an inbound X-SHMT-Trace-Id must come back on the
# response header and in a trace block whose stage breakdown is non-empty
# (encoding/json renders a zero stage as exactly ":0", so its absence on
# execute_seconds proves a real measurement).
TRACED="$WORKDIR/traced.json"
THDR=$(curl -s -o "$TRACED" -D - -H 'X-SHMT-Trace-Id: smoke-trace-1' \
    -d "$BODY" "http://$ADDR/v1/execute" |
    awk -F': *' 'tolower($1)=="x-shmt-trace-id"{sub(/\r$/,"",$2); print $2; exit}')
[ "$THDR" = "smoke-trace-1" ] || {
    echo "FAIL: trace header did not round-trip (got '$THDR')"; exit 1; }
grep -q '"trace_id":"smoke-trace-1"' "$TRACED" || {
    echo "FAIL: no trace block in response:"; cat "$TRACED"; echo; exit 1; }
grep -q '"stages"' "$TRACED" || {
    echo "FAIL: no stage breakdown in trace block:"; cat "$TRACED"; echo; exit 1; }
if grep -q '"execute_seconds":0[,}]' "$TRACED"; then
    echo "FAIL: execute stage is zero:"; cat "$TRACED"; echo; exit 1
fi
rm -f "$TRACED"

# The flight recorder must serve the trace back on /debug/requests.
DEBUGREQ=$(curl -s "http://$ADDR/debug/requests")
echo "$DEBUGREQ" | grep -q '"trace_id":"smoke-trace-1"' || {
    echo "FAIL: trace missing from /debug/requests: $DEBUGREQ"; exit 1; }
echo "trace smoke-trace-1 round-tripped with stage breakdown"

# Artifact: live /statusz snapshot.
curl -s "http://$ADDR/statusz" >"$STATUSZ_OUT"
grep -q '"status":"ok"' "$STATUSZ_OUT" || {
    echo "FAIL: statusz: $(cat "$STATUSZ_OUT")"; exit 1; }
echo "statusz snapshot saved to $STATUSZ_OUT"

HEALTH=$(curl -s "http://$ADDR/healthz")
echo "$HEALTH" | grep -q '"status":"ok"' || { echo "FAIL: healthz: $HEALTH"; exit 1; }

kill -TERM "$PID"
DEADLINE=$(( $(date +%s) + 15 ))
while kill -0 "$PID" 2>/dev/null; do
    [ "$(date +%s)" -lt "$DEADLINE" ] || { echo "FAIL: no exit within 15s of SIGTERM"; exit 1; }
    sleep 0.2
done
wait "$PID" 2>/dev/null && rc=0 || rc=$?
[ "$rc" -eq 0 ] || { echo "FAIL: exit status $rc after SIGTERM:"; cat "$LOG"; exit 1; }

# Artifact: the daemon wrote its Perfetto trace at drain; the request lane
# for the traced request must be in it.
[ -s "$TRACE_OUT" ] || { echo "FAIL: no Perfetto trace at $TRACE_OUT:"; cat "$LOG"; exit 1; }
grep -q '"traceEvents"' "$TRACE_OUT" || {
    echo "FAIL: $TRACE_OUT is not a Chrome trace file"; exit 1; }
grep -q 'smoke-trace-1' "$TRACE_OUT" || {
    echo "FAIL: request lane smoke-trace-1 missing from $TRACE_OUT"; exit 1; }
echo "Perfetto trace saved to $TRACE_OUT"

echo "servesmoke OK"
