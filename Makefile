# SHMT reproduction — common entry points. Stdlib-only Go; no other deps.

GO ?= go

.PHONY: all build test race bench experiments examples fmt vet clean

all: build vet test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/core/ .

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every table and figure of the paper's evaluation (plus the
# ablations and the seed-stability study). Takes several minutes.
experiments:
	$(GO) run ./cmd/shmtbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagepipeline
	$(GO) run ./examples/finance
	$(GO) run ./examples/medical
	$(GO) run ./examples/multifunction
	$(GO) run ./examples/multitenant

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
