# SHMT reproduction — common entry points. Stdlib-only Go; no other deps.

GO ?= go

.PHONY: all check build test race bench benchsmoke experiments examples fmt vet clean

all: check

# check is the pre-merge gate: build, vet, tests, the race detector over the
# whole module (the host worker pool runs everywhere now), and a one-shot
# benchmark pass so the bench suites can't silently rot.
check: build vet test race benchsmoke

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchmem ./...

benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...

# Regenerate every table and figure of the paper's evaluation (plus the
# ablations and the seed-stability study). Takes several minutes.
experiments:
	$(GO) run ./cmd/shmtbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagepipeline
	$(GO) run ./examples/finance
	$(GO) run ./examples/medical
	$(GO) run ./examples/multifunction
	$(GO) run ./examples/multitenant

fmt:
	gofmt -l -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
