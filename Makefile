# SHMT reproduction — common entry points. Stdlib-only Go; no other deps.

GO ?= go

.PHONY: all check build test race bench benchsmoke benchtelemetry benchdatapath benchplan benchoverlap benchserve benchdiff servesmoke clustersmoke experiments examples fmt fmt-check vet clean

all: check

# check is the pre-merge gate: formatting, build, vet, tests, the race
# detector over the whole module (the host worker pool runs everywhere now),
# a one-shot benchmark pass so the bench suites can't silently rot, the
# telemetry overhead benchmark so instrumentation cost stays visible, the
# datapath benchmark so the zero-copy partition/aggregate path can't regress
# silently, the planning-overhead benchmark so plan-cache replay keeps paying
# for itself, the staging-overlap benchmark so async input prefetch keeps
# beating dispatch-time staging, the serving smoke test so shmtserved's
# coalescing/drain path stays live, and the cluster smoke test so the router
# tier's failover/re-admission path stays live. CI (.github/workflows/ci.yml)
# runs exactly these stages.
check: fmt-check build vet test race benchsmoke benchtelemetry benchdatapath benchplan benchoverlap benchserve servesmoke clustersmoke

build:
	$(GO) build ./...

# TESTFLAGS lets CI pass extra flags (e.g. -shuffle=on) without forking the
# target.
TESTFLAGS ?=

test:
	$(GO) test $(TESTFLAGS) ./...

race:
	$(GO) test -race $(TESTFLAGS) ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# benchsmoke also drives shmtrun's telemetry exporters end to end: the run
# must produce a loadable Perfetto trace and a JSON report.
benchsmoke:
	$(GO) test -run='^$$' -bench=. -benchtime=1x ./...
	$(GO) run ./cmd/shmtrun -bench Sobel -side 256 -partitions 8 \
		-trace-out /tmp/shmt-smoke-trace.json -report-out /tmp/shmt-smoke-report.json
	@rm -f /tmp/shmt-smoke-trace.json /tmp/shmt-smoke-report.json

# benchtelemetry measures the instrumentation overhead (enabled vs disabled
# engine run); BENCH_telemetry.json snapshots the result.
benchtelemetry:
	$(GO) test -run='^$$' -bench=BenchmarkTelemetryOverhead -benchmem \
		-benchtime=0.3s ./internal/core/

# benchdatapath compares the zero-copy view partition/aggregate path against
# the materialized copy path (copied_B/op must be 0 on the view side);
# BENCH_datapath.json snapshots the result.
benchdatapath:
	$(GO) test -run='^$$' -bench=BenchmarkDatapath -benchmem \
		-benchtime=0.3s ./internal/core/

# benchplan isolates host-side planning (partition + assign) and compares
# cold planning against plan-cache replay; BENCH_plan.json snapshots the
# result. Only the plan/* rows run here — the execute/* rows are
# kernel-dominated and covered by the one-shot pass in benchsmoke.
benchplan:
	$(GO) test -run='^$$' -bench='BenchmarkPlanningOverhead/plan' -benchmem \
		-benchtime=0.3s ./internal/core/

# benchoverlap compares the Edge TPU staging path with asynchronous input
# prefetch off (staged) vs on (prefetched); BENCH_overlap.json snapshots the
# result. The prefetched row must stay faster: it is the wall-clock half of
# the double-buffer story (the virtual-time half lives in the lane model).
benchoverlap:
	$(GO) test -run='^$$' -bench=BenchmarkOverlap -benchmem \
		-benchtime=0.3s ./internal/core/

# benchserve measures the serving layer's per-request tracing cost
# (Batcher.Submit, tracing off vs on); BENCH_serve.json snapshots the
# result. The disabled row is the contract: tracing must add zero
# allocations to the untraced request path.
benchserve:
	$(GO) test -run='^$$' -bench=BenchmarkServeTraceOverhead -benchmem \
		-benchtime=0.3s ./internal/serve/

# servesmoke boots shmtserved on a free port, fires concurrent request
# volleys, and asserts every request succeeds, the micro-batcher coalesced
# (batch_size_sum > batch_size_count in the exposition), /healthz is ok, and
# SIGTERM drains to a clean exit.
servesmoke:
	sh scripts/servesmoke.sh

# clustersmoke boots shmtrouterd fronting two shmtserved backends, fires
# concurrent volleys through the router, SIGKILLs one backend mid-volley and
# asserts zero lost client requests, that the breaker/rehash counters moved,
# that restarting the backend gets it re-admitted by a health probe, that a
# new backend can self-register, that a large VOP scatter-gathers, and that
# SIGTERM drains all three processes cleanly.
clustersmoke:
	sh scripts/clustersmoke.sh

# benchdiff re-runs every committed BENCH_*.json suite and fails on ns/op
# regressions beyond the tolerance; CI runs it as a non-blocking job.
benchdiff:
	$(GO) run ./cmd/benchdiff

# Regenerate every table and figure of the paper's evaluation (plus the
# ablations and the seed-stability study). Takes several minutes.
experiments:
	$(GO) run ./cmd/shmtbench -exp all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/imagepipeline
	$(GO) run ./examples/finance
	$(GO) run ./examples/medical
	$(GO) run ./examples/multifunction
	$(GO) run ./examples/multitenant

fmt:
	gofmt -l -w .

# fmt-check fails (and lists the files) if anything is not gofmt-clean.
fmt-check:
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
