package shmt_test

import (
	"math"
	"testing"

	"shmt"
	"shmt/internal/metrics"
	"shmt/internal/workload"
)

// TestEveryVOPEndToEnd executes every opcode of Table 1 through the public
// API under QAWS-TS and checks the result against the exact reference: the
// INT8 share of the work bounds the error, and shapes must match.
func TestEveryVOPEndToEnd(t *testing.T) {
	const side = 64
	pos := workload.Uniform(side, side, 0.1, 1, 1)
	anyv := workload.Uniform(side, side, -1, 1, 2)
	small := workload.Uniform(side, side, -0.9, 0.9, 3) // tanh-friendly
	kernel3, _ := shmt.FromSlice(3, 3, []float64{0, 0.1, 0, 0.1, 0.6, 0.1, 0, 0.1, 0})

	cases := []struct {
		op     shmt.Op
		inputs []*shmt.Matrix
		attrs  map[string]float64
		// tol is the acceptable MAPE given INT8 participation.
		tol float64
	}{
		{shmt.OpAdd, []*shmt.Matrix{pos, anyv}, nil, 0.2},
		{shmt.OpSub, []*shmt.Matrix{pos, anyv}, nil, 0.2},
		{shmt.OpMultiply, []*shmt.Matrix{pos, anyv}, nil, 0.3},
		{shmt.OpLog, []*shmt.Matrix{pos}, nil, 0.3},
		{shmt.OpSqrt, []*shmt.Matrix{pos}, nil, 0.1},
		{shmt.OpRsqrt, []*shmt.Matrix{pos}, nil, 0.2},
		{shmt.OpTanh, []*shmt.Matrix{small}, nil, 0.1},
		{shmt.OpRelu, []*shmt.Matrix{anyv}, nil, 0.3},
		{shmt.OpMax, []*shmt.Matrix{pos, anyv}, nil, 0.1},
		{shmt.OpMin, []*shmt.Matrix{pos, anyv}, nil, 0.3},
		{shmt.OpReduceSum, []*shmt.Matrix{pos}, nil, 0.05},
		{shmt.OpReduceAverage, []*shmt.Matrix{pos}, nil, 0.05},
		{shmt.OpReduceMax, []*shmt.Matrix{pos}, nil, 0.05},
		{shmt.OpReduceMin, []*shmt.Matrix{pos}, nil, 0.25},
		{shmt.OpReduceHist256, []*shmt.Matrix{pos}, map[string]float64{"hist_lo": 0, "hist_hi": 1}, 2.0},
		{shmt.OpParabolicPDE, []*shmt.Matrix{workload.Uniform(side, side, 80, 120, 4), workload.Uniform(side, side, 90, 110, 5)}, nil, 0.3},
		{shmt.OpConv, []*shmt.Matrix{pos, kernel3}, nil, 0.1},
		{shmt.OpGEMM, []*shmt.Matrix{anyv, pos}, nil, 0.3},
		{shmt.OpDCT8x8, []*shmt.Matrix{pos}, nil, 1.0},
		{shmt.OpFDWT97, []*shmt.Matrix{pos}, nil, 1.5},
		{shmt.OpFFT, []*shmt.Matrix{pos}, nil, 0.5},
		{shmt.OpLaplacian, []*shmt.Matrix{pos}, nil, 2.0},
		{shmt.OpMeanFilter, []*shmt.Matrix{pos}, nil, 0.1},
		{shmt.OpSobel, []*shmt.Matrix{pos}, nil, 0.5},
		{shmt.OpSRAD, []*shmt.Matrix{pos}, map[string]float64{"lambda": 0.5, "q0sqr": 0.05}, 0.1},
		{shmt.OpStencil, []*shmt.Matrix{workload.Uniform(side, side, 70, 90, 6), pos}, nil, 0.05},
	}
	if len(cases) != 26 {
		t.Fatalf("case table covers %d opcodes, want all 26", len(cases))
	}

	s, err := shmt.NewSession(shmt.Config{Policy: shmt.PolicyQAWSTS, TargetPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	for _, c := range cases {
		rep, err := s.Execute(c.op, c.inputs, c.attrs)
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		ref, err := s.Reference(c.op, c.inputs, c.attrs)
		if err != nil {
			t.Fatalf("%s reference: %v", c.op, err)
		}
		if rep.Output.Rows != ref.Rows || rep.Output.Cols != ref.Cols {
			t.Fatalf("%s shape %dx%d want %dx%d", c.op, rep.Output.Rows, rep.Output.Cols, ref.Rows, ref.Cols)
		}
		mape, err := metrics.MAPE(ref.Data, rep.Output.Data)
		if err != nil {
			t.Fatalf("%s mape: %v", c.op, err)
		}
		if math.IsNaN(mape) || mape > c.tol {
			t.Errorf("%s MAPE %.4f exceeds tolerance %.4f", c.op, mape, c.tol)
		}
	}
}
