package shmt_test

import (
	"errors"
	"math"
	"net/http"
	"sync"
	"testing"

	"shmt"
	"shmt/internal/telemetry"
	"shmt/internal/workload"
)

func mustSession(t *testing.T, cfg shmt.Config) *shmt.Session {
	t.Helper()
	s, err := shmt.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func addInputs(base float64) []*shmt.Matrix {
	a := shmt.NewMatrix(4, 4)
	b := shmt.NewMatrix(4, 4)
	for i := range a.Data {
		a.Data[i] = base + float64(i)
		b.Data[i] = 100
	}
	return []*shmt.Matrix{a, b}
}

func checkAdd(t *testing.T, out *shmt.Matrix, base float64) {
	t.Helper()
	if out == nil {
		t.Fatal("nil output")
	}
	for i := range out.Data {
		want := base + float64(i) + 100
		if math.Abs(out.Data[i]-want)/want > 0.02 {
			t.Fatalf("out[%d] = %v, want ≈%v (base %v) — result mixed across requests?",
				i, out.Data[i], want, base)
		}
	}
}

// TestReferenceWithMetricsEnv is the listener-inheritance regression: with
// SHMT_METRICS_ADDR pointing at an address that is already bound (the
// parent's own listener — exactly what the env gives every process-wide
// session), Reference and the conventional pipeline mode build internal
// sub-sessions. Those must not re-read the env and re-bind, or they fail
// with "address already in use".
func TestReferenceWithMetricsEnv(t *testing.T) {
	s := mustSession(t, shmt.Config{
		Telemetry: shmt.Telemetry{Enabled: true, MetricsAddr: "127.0.0.1:0"},
	})
	addr := s.MetricsAddr()
	if addr == "" {
		t.Fatal("no metrics listener")
	}
	t.Setenv("SHMT_METRICS_ADDR", addr)

	inputs := addInputs(1)
	ref, err := s.Reference(shmt.OpAdd, inputs, nil)
	if err != nil {
		t.Fatalf("Reference with SHMT_METRICS_ADDR set: %v", err)
	}
	checkAdd(t, ref, 1)

	img := workload.Mixed(32, 32, workload.Profile{TileSize: 8}, 3)
	stages := []shmt.Stage{
		{Name: "edge", Op: shmt.OpSobel},
		{Name: "blur", Op: shmt.OpMeanFilter},
	}
	if _, err := s.ExecutePipeline(img, stages, shmt.PipelineConventional); err != nil {
		t.Fatalf("conventional pipeline with SHMT_METRICS_ADDR set: %v", err)
	}

	// The parent's listener is still the only one and still alive.
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		t.Fatalf("parent metrics listener gone: %v", err)
	}
	resp.Body.Close()
}

// TestPipelineChaosAppliedOnce is the fault-plan-inheritance regression: a
// conventional pipeline builds one sub-session per stage, and each used to
// copy cfg.Chaos — restarting every fault schedule per stage, so a
// FailFirstOps outage re-fired on stage after stage. Sub-sessions must run
// chaos-free; the plan belongs to the parent session's own engine.
func TestPipelineChaosAppliedOnce(t *testing.T) {
	s := mustSession(t, shmt.Config{
		Telemetry: shmt.Telemetry{Enabled: true},
		Chaos:     map[string]shmt.ChaosConfig{"gpu": {FailFirstOps: 3}},
	})
	img := workload.Mixed(32, 32, workload.Profile{TileSize: 8}, 5)
	stages := []shmt.Stage{
		{Name: "edge", Op: shmt.OpSobel},
		{Name: "blur", Op: shmt.OpMeanFilter},
		{Name: "lap", Op: shmt.OpLaplacian},
	}

	base := telemetry.Default.Snapshot()
	if _, err := s.ExecutePipeline(img, stages, shmt.PipelineConventional); err != nil {
		t.Fatal(err)
	}
	if d := telemetry.Default.Snapshot().Delta(base); d[`shmt_chaos_injected_total{mode="transient"}`] != 0 {
		t.Fatalf("conventional pipeline stages saw injected faults: %v — sub-sessions inherited cfg.Chaos", d)
	}

	// The plan is still live on the parent: a direct SHMT-mode run hits it.
	base = telemetry.Default.Snapshot()
	if _, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil); err != nil {
		t.Fatal(err)
	}
	if d := telemetry.Default.Snapshot().Delta(base); d[`shmt_chaos_injected_total{mode="transient"}`] == 0 {
		t.Fatalf("parent session lost its fault plan: %v", d)
	}
}

// TestConcurrentExecuteStress hammers one session from many goroutines with a
// mix of Execute and ExecuteBatch and checks every result is the caller's own
// (run under -race in CI).
func TestConcurrentExecuteStress(t *testing.T) {
	s := mustSession(t, shmt.Config{TargetPartitions: 8})
	const goroutines = 8
	const iters = 4

	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				base := float64(g*100 + i)
				if i%2 == 0 {
					rep, err := s.Execute(shmt.OpAdd, addInputs(base), nil)
					if err != nil {
						t.Errorf("goroutine %d: Execute: %v", g, err)
						return
					}
					checkAdd(t, rep.Output, base)
				} else {
					res, err := s.ExecuteBatch([]shmt.BatchRequest{
						{Op: shmt.OpAdd, Inputs: addInputs(base)},
						{Op: shmt.OpAdd, Inputs: addInputs(base + 50)},
					})
					if err != nil {
						t.Errorf("goroutine %d: ExecuteBatch: %v", g, err)
						return
					}
					checkAdd(t, res.Reports[0].Output, base)
					checkAdd(t, res.Reports[1].Output, base+50)
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestConcurrentSessionsWithWorkers builds and tears down sessions with
// different Workers settings from many goroutines at once — the per-session
// worker cap must compose instead of racing on a process-global (run under
// -race in CI).
func TestConcurrentSessionsWithWorkers(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			s, err := shmt.NewSession(shmt.Config{Workers: g + 1, TargetPartitions: 8})
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			defer s.Close()
			base := float64(g * 10)
			rep, err := s.Execute(shmt.OpAdd, addInputs(base), nil)
			if err != nil {
				t.Errorf("session %d: %v", g, err)
				return
			}
			checkAdd(t, rep.Output, base)
		}(g)
	}
	wg.Wait()
}

// TestCloseSemantics: Close is idempotent, and a closed session refuses every
// execution entry point with ErrSessionClosed.
func TestCloseSemantics(t *testing.T) {
	s, err := shmt.NewSession(shmt.Config{TargetPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}

	if _, err := s.Execute(shmt.OpAdd, addInputs(0), nil); !errors.Is(err, shmt.ErrSessionClosed) {
		t.Fatalf("Execute after Close: %v, want ErrSessionClosed", err)
	}
	if _, err := s.ExecuteBatch([]shmt.BatchRequest{{Op: shmt.OpAdd, Inputs: addInputs(0)}}); !errors.Is(err, shmt.ErrSessionClosed) {
		t.Fatalf("ExecuteBatch after Close: %v, want ErrSessionClosed", err)
	}
	img := workload.Mixed(16, 16, workload.Profile{TileSize: 8}, 1)
	if _, err := s.ExecutePipeline(img, []shmt.Stage{{Name: "e", Op: shmt.OpSobel}}, shmt.PipelineSHMT); !errors.Is(err, shmt.ErrSessionClosed) {
		t.Fatalf("ExecutePipeline after Close: %v, want ErrSessionClosed", err)
	}
}

// TestCloseDrainsOrRefuses: Close racing a running Execute has exactly two
// legal outcomes — the run completes first (Close waited) or the run lost the
// lock race and was refused with ErrSessionClosed. Never a torn run.
func TestCloseDrainsOrRefuses(t *testing.T) {
	for round := 0; round < 8; round++ {
		s, err := shmt.NewSession(shmt.Config{TargetPartitions: 8})
		if err != nil {
			t.Fatal(err)
		}
		done := make(chan error, 1)
		go func() {
			rep, err := s.Execute(shmt.OpAdd, addInputs(7), nil)
			if err == nil {
				checkAdd(t, rep.Output, 7)
			}
			done <- err
		}()
		if err := s.Close(); err != nil {
			t.Fatal(err)
		}
		if err := <-done; err != nil && !errors.Is(err, shmt.ErrSessionClosed) {
			t.Fatalf("round %d: Execute racing Close: %v", round, err)
		}
	}
}
