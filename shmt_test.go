package shmt_test

import (
	"math"
	"testing"

	"shmt"
	"shmt/internal/metrics"
	"shmt/internal/workload"
)

func newSession(t *testing.T, cfg shmt.Config) *shmt.Session {
	t.Helper()
	s, err := shmt.NewSession(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { s.Close() })
	return s
}

func TestSessionDefaults(t *testing.T) {
	s := newSession(t, shmt.Config{})
	devs := s.Devices()
	if len(devs) != 3 || devs[0] != "cpu" || devs[1] != "gpu" || devs[2] != "tpu" {
		t.Fatalf("devices = %v", devs)
	}
	if s.PolicyName() != "QAWS-TS" {
		t.Fatalf("default policy = %q", s.PolicyName())
	}
}

func TestSessionDeviceSelection(t *testing.T) {
	s := newSession(t, shmt.Config{UseGPU: true, Policy: shmt.PolicyGPUBaseline})
	if devs := s.Devices(); len(devs) != 1 || devs[0] != "gpu" {
		t.Fatalf("devices = %v", devs)
	}
}

func TestSessionUnknownPolicy(t *testing.T) {
	if _, err := shmt.NewSession(shmt.Config{Policy: "bogus"}); err == nil {
		t.Fatal("unknown policy should fail")
	}
}

func TestSessionPolicyNeedsDevice(t *testing.T) {
	s := newSession(t, shmt.Config{UseGPU: true, Policy: shmt.PolicyTPUOnly})
	img := workload.Uniform(64, 64, 0, 1, 1)
	if _, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil); err == nil {
		t.Fatal("tpu-only without a TPU should fail at execution")
	}
}

func TestExecuteAllPolicies(t *testing.T) {
	img := workload.Mixed(128, 128, workload.Profile{TileSize: 32}, 2)
	for _, pol := range shmt.AllPolicies() {
		s := newSession(t, shmt.Config{Policy: pol, TargetPartitions: 8})
		rep, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
		if err != nil {
			t.Fatalf("%s: %v", pol, err)
		}
		if rep.Output == nil || rep.Makespan <= 0 {
			t.Fatalf("%s: degenerate report", pol)
		}
	}
	if len(shmt.AllQAWSPolicies()) != 6 {
		t.Fatal("six QAWS variants expected")
	}
}

func TestExecuteValidation(t *testing.T) {
	s := newSession(t, shmt.Config{})
	if _, err := s.Execute(shmt.OpAdd, []*shmt.Matrix{shmt.NewMatrix(4, 4)}, nil); err == nil {
		t.Fatal("arity error should surface")
	}
}

func TestMatMulCorrectness(t *testing.T) {
	s := newSession(t, shmt.Config{Policy: shmt.PolicyCPUOnly, TargetPartitions: 4})
	a := workload.Uniform(16, 8, 0, 1, 3)
	b := workload.Uniform(8, 12, 0, 1, 4)
	c, rep, err := s.MatMul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HLOPs == 0 {
		t.Fatal("no HLOPs reported")
	}
	for i := 0; i < 16; i++ {
		for j := 0; j < 12; j++ {
			var want float64
			for k := 0; k < 8; k++ {
				want += a.At(i, k) * b.At(k, j)
			}
			if math.Abs(c.At(i, j)-want) > 1e-9 {
				t.Fatalf("C(%d,%d) = %g want %g", i, j, c.At(i, j), want)
			}
		}
	}
	if _, _, err := s.MatMul(nil, b); err == nil {
		t.Fatal("nil input should fail")
	}
}

func TestConvenienceKernels(t *testing.T) {
	s := newSession(t, shmt.Config{Policy: shmt.PolicyWorkStealing, TargetPartitions: 4})
	img := workload.Image(128, 128, 5)

	if out, rep, err := s.Sobel(img); err != nil || out == nil || rep == nil {
		t.Fatalf("Sobel: %v", err)
	}
	if _, _, err := s.Laplacian(img); err != nil {
		t.Fatalf("Laplacian: %v", err)
	}
	if _, _, err := s.MeanFilter(img); err != nil {
		t.Fatalf("MeanFilter: %v", err)
	}
	if _, _, err := s.DCT8x8(img); err != nil {
		t.Fatalf("DCT8x8: %v", err)
	}
	if _, _, err := s.DWT97(img); err != nil {
		t.Fatalf("DWT97: %v", err)
	}
	if _, _, err := s.FFT(img); err != nil {
		t.Fatalf("FFT: %v", err)
	}
	pos := img.Clone()
	for i := range pos.Data {
		if pos.Data[i] < 1 {
			pos.Data[i] = 1
		}
	}
	if _, _, err := s.SRAD(pos, 0.5, 0.05); err != nil {
		t.Fatalf("SRAD: %v", err)
	}
	if _, _, err := s.Sobel(nil); err == nil {
		t.Fatal("nil image should fail")
	}

	hist, _, err := s.Histogram256(img, 0, 256)
	if err != nil {
		t.Fatal(err)
	}
	var total float64
	for _, v := range hist.Data {
		total += v
	}
	if total != float64(img.Len()) {
		t.Fatalf("histogram total = %g want %d", total, img.Len())
	}

	temp := workload.Uniform(64, 64, 70, 90, 6)
	power := workload.Uniform(64, 64, 0, 1, 7)
	if _, _, err := s.Hotspot(temp, power); err != nil {
		t.Fatalf("Hotspot: %v", err)
	}
	if _, _, err := s.Hotspot(nil, power); err == nil {
		t.Fatal("nil temperature should fail")
	}

	spot := workload.Uniform(32, 32, 80, 120, 8)
	strike := workload.Uniform(32, 32, 90, 110, 9)
	if _, _, err := s.BlackScholes(spot, strike, 0.02, 0.3, 1); err != nil {
		t.Fatalf("BlackScholes: %v", err)
	}
}

func TestReferenceIsExact(t *testing.T) {
	s := newSession(t, shmt.Config{TargetPartitions: 4})
	img := workload.Uniform(64, 64, 0, 1, 10)
	ref, err := s.Reference(shmt.OpSobel, []*shmt.Matrix{img}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Running the same reference twice is bit-identical.
	ref2, _ := s.Reference(shmt.OpSobel, []*shmt.Matrix{img}, nil)
	if !ref.Equal(ref2) {
		t.Fatal("reference not deterministic")
	}
}

func TestQualityOrderingEndToEnd(t *testing.T) {
	// TPU-only must be least accurate; QAWS must improve on plain work
	// stealing; the GPU baseline is exact up to FP32.
	img := workload.Mixed(256, 256, workload.Profile{TileSize: 64}, 11)
	s0 := newSession(t, shmt.Config{Policy: shmt.PolicyCPUOnly, TargetPartitions: 16})
	refRep, err := s0.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
	if err != nil {
		t.Fatal(err)
	}
	mapeOf := func(pol shmt.PolicyName) float64 {
		s := newSession(t, shmt.Config{Policy: pol, TargetPartitions: 16, SamplingRate: 0.01})
		rep, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
		if err != nil {
			t.Fatal(err)
		}
		m, _ := metrics.MAPE(refRep.Output.Data, rep.Output.Data)
		return m
	}
	tpu := mapeOf(shmt.PolicyTPUOnly)
	ws := mapeOf(shmt.PolicyWorkStealing)
	qaws := mapeOf(shmt.PolicyQAWSTS)
	gpuBase := mapeOf(shmt.PolicyGPUBaseline)
	if !(gpuBase < qaws && qaws < ws && ws < tpu) {
		t.Fatalf("quality ordering violated: gpu=%g qaws=%g ws=%g tpu=%g", gpuBase, qaws, ws, tpu)
	}
}

func TestVirtualScaleTimelineInvariance(t *testing.T) {
	// The same virtual platform at half the data size and 4x slowdown must
	// produce (nearly) the same virtual makespan.
	mk := func(side int) float64 {
		scale := float64(512*512) / float64(side*side)
		s := newSession(t, shmt.Config{Policy: shmt.PolicyWorkStealing,
			TargetPartitions: 16, VirtualScale: scale})
		img := workload.Mixed(side, side, workload.Profile{TileSize: side / 8}, 12)
		rep, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	full, scaled := mk(512), mk(256)
	if math.Abs(full-scaled)/full > 0.05 {
		t.Fatalf("virtual scaling drifted: %g vs %g", full, scaled)
	}
}

func TestConcurrentSessionWorks(t *testing.T) {
	s := newSession(t, shmt.Config{Policy: shmt.PolicyQAWSTS, TargetPartitions: 8, Concurrent: true})
	img := workload.Mixed(128, 128, workload.Profile{TileSize: 32}, 13)
	rep, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output.Rows != 128 {
		t.Fatal("concurrent output malformed")
	}
}

func TestRecordTrace(t *testing.T) {
	s := newSession(t, shmt.Config{Policy: shmt.PolicyWorkStealing, TargetPartitions: 8, RecordTrace: true})
	img := workload.Uniform(128, 128, 0, 1, 14)
	rep, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Trace == nil || rep.Trace.Len() == 0 {
		t.Fatal("trace not recorded")
	}
	s2 := newSession(t, shmt.Config{Policy: shmt.PolicyWorkStealing, TargetPartitions: 8})
	rep2, _ := s2.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
	if rep2.Trace != nil {
		t.Fatal("trace recorded without opting in")
	}
}

func TestFromSliceHelper(t *testing.T) {
	m, err := shmt.FromSlice(2, 2, []float64{1, 2, 3, 4})
	if err != nil || m.At(1, 1) != 4 {
		t.Fatalf("FromSlice: %v", err)
	}
	if _, err := shmt.FromSlice(2, 2, []float64{1}); err == nil {
		t.Fatal("bad FromSlice should fail")
	}
}

func TestFourDeviceSession(t *testing.T) {
	s := newSession(t, shmt.Config{UseCPU: true, UseGPU: true, UseTPU: true, UseDSP: true,
		Policy: shmt.PolicyQAWSTS, TargetPartitions: 16, SamplingRate: 0.01, RecordTrace: true})
	devs := s.Devices()
	if len(devs) != 4 || devs[3] != "dsp" {
		t.Fatalf("devices = %v", devs)
	}
	img := workload.Image(256, 256, 20)
	rep, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// All three accelerators should participate on a home-domain kernel.
	counts := rep.Trace.CountByDevice()
	if counts["gpu"] == 0 || counts["tpu"] == 0 || counts["dsp"] == 0 {
		t.Fatalf("not all accelerators participated: %v", counts)
	}
	// The DSP must not see out-of-domain work.
	rep2, err := s.Execute(shmt.OpParabolicPDE,
		[]*shmt.Matrix{workload.Uniform(256, 256, 80, 120, 21), workload.Uniform(256, 256, 90, 110, 22)}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Trace.CountByDevice()["dsp"] != 0 {
		t.Fatal("DSP executed an opcode outside its home domain")
	}
}

// TestParseOpWireNames: the public ParseOp round-trips every opcode the way
// wire formats spell them (the HTTP server lowercases, CLIs copy Table 1).
func TestParseOpWireNames(t *testing.T) {
	for _, op := range []shmt.Op{shmt.OpSobel, shmt.OpGEMM, shmt.OpAdd} {
		got, ok := shmt.ParseOp(op.String())
		if !ok || got != op {
			t.Fatalf("ParseOp(%q) = %v, %v", op.String(), got, ok)
		}
	}
	if got, ok := shmt.ParseOp("gemm"); !ok || got != shmt.OpGEMM {
		t.Fatalf("ParseOp is not case-insensitive: %v, %v", got, ok)
	}
	if _, ok := shmt.ParseOp("not-an-op"); ok {
		t.Fatal("ParseOp accepted an unknown name")
	}
}

// TestSessionPlanCacheDefaultOn: repeated same-shape Execute calls replay
// the memoized plan by default, and the stats surface through the Session.
func TestSessionPlanCacheDefaultOn(t *testing.T) {
	s := newSession(t, shmt.Config{TargetPartitions: 8})
	img := workload.Mixed(128, 128, workload.Profile{TileSize: 32}, 5)
	var last *shmt.Report
	for i := 0; i < 3; i++ {
		rep, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil)
		if err != nil {
			t.Fatal(err)
		}
		if last != nil && !rep.Output.Equal(last.Output) {
			t.Fatalf("run %d: replayed plan changed the output", i)
		}
		last = rep
	}
	st := s.PlanCacheStats()
	if st.Hits != 2 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("plan cache stats = %+v, want 2 hits / 1 miss / 1 entry", st)
	}
	// A replayed run charges zero scheduling overhead.
	if last.SchedOverhead != 0 {
		t.Fatalf("replayed run charged %g scheduling overhead", last.SchedOverhead)
	}
}

// TestSessionPlanCacheDisabled: Config.PlanCache.Disabled opts out entirely.
func TestSessionPlanCacheDisabled(t *testing.T) {
	s := newSession(t, shmt.Config{TargetPartitions: 8,
		PlanCache: shmt.PlanCacheConfig{Disabled: true}})
	img := workload.Mixed(128, 128, workload.Profile{TileSize: 32}, 5)
	for i := 0; i < 2; i++ {
		if _, err := s.Execute(shmt.OpSobel, []*shmt.Matrix{img}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.PlanCacheStats(); st != (shmt.PlanCacheStats{}) {
		t.Fatalf("disabled plan cache recorded activity: %+v", st)
	}
}
