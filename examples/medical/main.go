// Medical imaging: iterative SRAD despeckling (the paper's medical-imaging
// benchmark, from the Rodinia/CUDA SRAD ultrasound pipeline). Each diffusion
// iteration is one VOP co-executed across the GPU and the Edge TPU; the
// example tracks speckle reduction and result quality per iteration.
//
//	go run ./examples/medical
package main

import (
	"fmt"
	"log"

	"shmt"
	"shmt/internal/metrics"
	"shmt/internal/tensor"
	"shmt/internal/workload"
)

func main() {
	const side = 512
	const iters = 4
	const lambda, q0sqr = 0.5, 0.05

	// A synthetic ultrasound frame: anatomy-like structure under
	// multiplicative speckle.
	img := workload.Image(side, side, 99)
	for i, v := range img.Data {
		if v < 1 {
			img.Data[i] = 1 // SRAD needs strictly positive intensities
		}
	}

	shmtSession, err := shmt.NewSession(shmt.Config{
		Policy:           shmt.PolicyQAWSTS,
		TargetPartitions: 32,
		VirtualScale:     float64(8192*8192) / float64(side*side),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer shmtSession.Close()
	exact, err := shmt.NewSession(shmt.Config{Policy: shmt.PolicyCPUOnly, TargetPartitions: 32})
	if err != nil {
		log.Fatal(err)
	}
	defer exact.Close()

	// Speckle is judged inside a homogeneous patch (structural edges would
	// otherwise dominate the global deviation).
	patch := func(m *shmt.Matrix) float64 {
		blk, err := tensor.CopyOut(m, tensor.Region{Row: 8, Col: 8, Height: 48, Width: 48})
		if err != nil {
			log.Fatal(err)
		}
		return tensor.Summarize(blk.Data).Std
	}

	cur, refCur := img.Clone(), img.Clone()
	var totalVirtual, totalEnergy float64
	fmt.Printf("%-5s %10s %12s %10s %10s\n", "iter", "latency", "patch-std", "mape", "ssim")
	fmt.Printf("%-5s %10s %12.3f %10s %10s\n", "0", "-", patch(cur), "-", "-")
	for it := 1; it <= iters; it++ {
		out, rep, err := shmtSession.SRAD(cur, lambda, q0sqr)
		if err != nil {
			log.Fatal(err)
		}
		refRep, err := exact.Execute(shmt.OpSRAD, []*shmt.Matrix{refCur},
			map[string]float64{"lambda": lambda, "q0sqr": q0sqr})
		if err != nil {
			log.Fatal(err)
		}
		mape, _ := metrics.MAPE(refRep.Output.Data, out.Data)
		ssim, _ := metrics.SSIM(out.Rows, out.Cols, refRep.Output.Data, out.Data)
		fmt.Printf("%-5d %8.2fms %12.3f %9.3f%% %10.4f\n",
			it, rep.Makespan*1e3, patch(out), 100*mape, ssim)
		totalVirtual += rep.Makespan
		totalEnergy += rep.Energy.Total()
		cur, refCur = out, refRep.Output
	}
	fmt.Printf("\n%d diffusion iterations in %.2f ms virtual, %.3f J, patch speckle %.3f -> %.3f\n",
		iters, totalVirtual*1e3, totalEnergy, patch(img), patch(cur))
}
