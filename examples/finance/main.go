// Finance: Black-Scholes option pricing (the paper's parabolic_PDE VOP) over
// a synthetic options book, comparing the conventional GPU-only execution
// against SHMT across all QAWS variants — speedup, MAPE, and energy, the
// three axes of the paper's evaluation.
//
//	go run ./examples/finance
package main

import (
	"fmt"
	"log"

	"shmt"
	"shmt/internal/metrics"
	"shmt/internal/workload"
)

func main() {
	const side = 1024 // ~1M options
	// Spot prices with regionally volatile clusters (the critical regions
	// QAWS protects); strikes skew out of the money, so much of the book
	// prices near zero — the hard case for reduced precision (§5.3).
	spot := workload.Mixed(side, side, workload.Profile{Lo: 80, Hi: 120, CriticalScale: 6}, 7)
	for i, v := range spot.Data {
		if v < 1 {
			spot.Data[i] = 1
		}
	}
	strike := workload.Uniform(side, side, 100, 150, 8)
	const r, sigma, t = 0.02, 0.30, 1.0

	scale := float64(8192*8192) / float64(side*side)
	baseline, err := shmt.NewSession(shmt.Config{Policy: shmt.PolicyGPUBaseline, VirtualScale: scale})
	if err != nil {
		log.Fatal(err)
	}
	defer baseline.Close()
	_, baseRep, err := baseline.BlackScholes(spot, strike, r, sigma, t)
	if err != nil {
		log.Fatal(err)
	}
	ref, err := baseline.Reference(shmt.OpParabolicPDE, []*shmt.Matrix{spot, strike},
		map[string]float64{"r": r, "sigma": sigma, "t": t})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("pricing %d options; GPU baseline %.2f ms, %.3f J\n\n",
		spot.Len(), baseRep.Makespan*1e3, baseRep.Energy.Total())
	fmt.Printf("%-10s %9s %9s %9s\n", "policy", "speedup", "mape", "energy")
	policies := append([]shmt.PolicyName{shmt.PolicyWorkStealing}, shmt.AllQAWSPolicies()...)
	for _, pol := range policies {
		s, err := shmt.NewSession(shmt.Config{Policy: pol, VirtualScale: scale})
		if err != nil {
			log.Fatal(err)
		}
		prices, rep, err := s.BlackScholes(spot, strike, r, sigma, t)
		if err != nil {
			log.Fatal(err)
		}
		mape, err := metrics.MAPE(ref.Data, prices.Data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-10s %8.2fx %8.2f%% %8.3fJ\n",
			pol, baseRep.Makespan/rep.Makespan, 100*mape, rep.Energy.Total())
		s.Close()
	}
}
