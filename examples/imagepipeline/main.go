// Image pipeline: the paper's image-processing workloads (Table 2) chained
// on one synthetic photograph — mean-filter denoise, Sobel edge extraction,
// Laplacian sharpening detail — each kernel co-executed by the GPU and the
// Edge TPU, with SSIM against the exact reference after every stage (the
// paper's Fig. 8 metric).
//
//	go run ./examples/imagepipeline
package main

import (
	"fmt"
	"log"

	"shmt"
	"shmt/internal/metrics"
	"shmt/internal/workload"
)

func main() {
	const side = 1024
	img := workload.Image(side, side, 42)

	session, err := shmt.NewSession(shmt.Config{
		Policy:           shmt.PolicyQAWSTS,
		TargetPartitions: 32,
		// Report paper-scale virtual latencies for this reduced-size frame.
		VirtualScale: float64(8192*8192) / float64(side*side),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	type stage struct {
		name string
		run  func(*shmt.Matrix) (*shmt.Matrix, *shmt.Report, error)
		op   shmt.Op
	}
	stages := []stage{
		{"mean-filter", session.MeanFilter, shmt.OpMeanFilter},
		{"sobel", session.Sobel, shmt.OpSobel},
		{"laplacian", session.Laplacian, shmt.OpLaplacian},
	}

	cur := img
	var totalVirtual float64
	fmt.Printf("%-12s %10s %10s %8s %8s\n", "stage", "latency", "ssim", "gpu", "tpu")
	for _, st := range stages {
		out, rep, err := st.run(cur)
		if err != nil {
			log.Fatalf("%s: %v", st.name, err)
		}
		ref, err := session.Reference(st.op, []*shmt.Matrix{cur}, nil)
		if err != nil {
			log.Fatal(err)
		}
		ssim, err := metrics.SSIM(out.Rows, out.Cols, ref.Data, out.Data)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s %8.2fms %10.4f %6.1fms %6.1fms\n",
			st.name, rep.Makespan*1e3, ssim, rep.Busy["gpu"]*1e3, rep.Busy["tpu"]*1e3)
		totalVirtual += rep.Makespan
		cur = out
	}
	fmt.Printf("\npipeline virtual latency: %.2f ms across %d stages\n",
		totalVirtual*1e3, len(stages))
	fmt.Println("(SSIM ≥ 0.95 is the generally agreed 'very good quality' bar, §5.3)")
}
