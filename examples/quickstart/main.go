// Quickstart: the paper's running example (Fig. 4) — a general matrix
// multiplication submitted through the SHMT virtual device.
//
// A conventional framework would delegate tf.matmul to one device; here the
// GEMM VOP is decomposed into HLOPs that the GPU and the Edge TPU execute
// concurrently under quality-aware work stealing.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"math/rand"

	"shmt"
)

func main() {
	// A 512x512 GEMM (the paper's Fig. 4 uses 2Kx2K chunks; smaller here so
	// the example runs in moments).
	const n = 512
	rng := rand.New(rand.NewSource(1))
	a := shmt.NewMatrix(n, n)
	b := shmt.NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.Float64()
		b.Data[i] = rng.Float64()
	}

	// The session is SHMT's virtual hardware device: CPU + GPU + Edge TPU
	// behind one queue-based runtime, scheduled by QAWS-TS.
	// VirtualScale maps this reduced-size run onto the full-size platform
	// timeline (see Config.VirtualScale), so the latency/energy numbers are
	// what the paper-scale run would report.
	scale := float64(8192*8192) / float64(n*n)
	session, err := shmt.NewSession(shmt.Config{
		Policy:           shmt.PolicyQAWSTS,
		TargetPartitions: 32,
		VirtualScale:     scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	c, rep, err := session.MatMul(a, b)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("devices:          %v (policy %s)\n", session.Devices(), session.PolicyName())
	fmt.Printf("C[0,0]:           %.4f\n", c.At(0, 0))
	fmt.Printf("HLOPs executed:   %d\n", rep.HLOPs)
	fmt.Printf("virtual latency:  %.2f ms\n", rep.Makespan*1e3)
	fmt.Printf("device busy time: gpu %.2f ms, tpu %.2f ms\n",
		rep.Busy["gpu"]*1e3, rep.Busy["tpu"]*1e3)
	fmt.Printf("energy:           %.3f J (active %.3f J + idle %.3f J)\n",
		rep.Energy.Total(), rep.Energy.Active, rep.Energy.Idle)

	// Compare against the GPU-only baseline the paper normalizes to.
	baseline, err := shmt.NewSession(shmt.Config{
		Policy:           shmt.PolicyGPUBaseline,
		TargetPartitions: 32,
		VirtualScale:     scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer baseline.Close()
	_, baseRep, err := baseline.MatMul(a, b)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("speedup over GPU: %.2fx (baseline %.2f ms)\n",
		baseRep.Makespan/rep.Makespan, baseRep.Makespan*1e3)
}
