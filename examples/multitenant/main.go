// Multi-tenant batch: several independent applications submit VOPs to the
// same SHMT virtual device in one round. Their HLOPs share the device queues
// and the stealing pool, so devices never idle between requests — the
// oversubscription §5.6 credits for hiding data-exchange latency.
//
//	go run ./examples/multitenant
package main

import (
	"fmt"
	"log"

	"shmt"
	"shmt/internal/workload"
)

func main() {
	const side = 1024
	scale := float64(8192*8192) / float64(side*side)

	img := workload.Image(side, side, 5)
	signal := workload.Mixed(side, side, workload.Profile{}, 6)
	spot := workload.Mixed(side, side, workload.Profile{Lo: 80, Hi: 120, CriticalScale: 6}, 7)
	for i, v := range spot.Data {
		if v < 1 {
			spot.Data[i] = 1
		}
	}
	strike := workload.Uniform(side, side, 100, 150, 8)

	reqs := []shmt.BatchRequest{
		{Op: shmt.OpSobel, Inputs: []*shmt.Matrix{img}},
		{Op: shmt.OpFFT, Inputs: []*shmt.Matrix{signal}},
		{Op: shmt.OpParabolicPDE, Inputs: []*shmt.Matrix{spot, strike},
			Attrs: map[string]float64{"r": 0.02, "sigma": 0.3, "t": 1}},
		{Op: shmt.OpReduceHist256, Inputs: []*shmt.Matrix{signal},
			Attrs: map[string]float64{"hist_lo": -5, "hist_hi": 6}},
	}
	names := []string{"Sobel", "FFT", "Blackscholes", "Histogram"}

	s, err := shmt.NewSession(shmt.Config{
		Policy:           shmt.PolicyQAWSTS,
		TargetPartitions: 8, // a few HLOPs per request: the sharing regime
		VirtualScale:     scale,
	})
	if err != nil {
		log.Fatal(err)
	}
	defer s.Close()

	// Sequential submission: each request waits for the previous one.
	var sequential float64
	for _, r := range reqs {
		rep, err := s.Execute(r.Op, r.Inputs, r.Attrs)
		if err != nil {
			log.Fatal(err)
		}
		sequential += rep.Makespan
	}

	// One co-scheduled batch.
	batch, err := s.ExecuteBatch(reqs)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-14s %12s\n", "request", "finished at")
	for i, rep := range batch.Reports {
		fmt.Printf("%-14s %9.1f ms  (%d HLOPs)\n", names[i], rep.Makespan*1e3, rep.HLOPs)
	}
	fmt.Printf("\nbatch makespan:      %8.1f ms (%.3f J)\n", batch.Makespan*1e3, batch.Energy.Total())
	fmt.Printf("sequential makespan: %8.1f ms\n", sequential*1e3)
	fmt.Printf("aggregate ratio:     %8.2fx\n", sequential/batch.Makespan)
	fmt.Println("\n(co-scheduling keeps every device busy across tenants and finishes the")
	fmt.Println(" whole group at roughly the back-to-back cost; with the paper's even")
	fmt.Println(" initial plan, per-opcode device affinity only re-balances via stealing,")
	fmt.Println(" so mixed pools trade a few percent of throughput for group fairness)")
}
