// Multi-function program: the paper's Fig. 1 scenario — a program of five
// functions (A…E here: despeckle, denoise, thermal-like smoothing, edge
// extraction, transform) executed under the three execution models the
// figure contrasts:
//
//	(a) conventional  — each function delegated to its best single device
//	(b) SW pipelining — functions stream chunk-by-chunk across devices
//	(c) SHMT          — every function co-executed by all devices
//
//	go run ./examples/multifunction
package main

import (
	"fmt"
	"log"

	"shmt"
	"shmt/internal/workload"
)

func main() {
	const side = 1024
	img := workload.Image(side, side, 77)
	for i, v := range img.Data {
		if v < 1 {
			img.Data[i] = 1 // SRAD needs positive intensities
		}
	}

	session, err := shmt.NewSession(shmt.Config{
		Policy:           shmt.PolicyQAWSTS,
		TargetPartitions: 64,
		VirtualScale:     float64(8192*8192) / float64(side*side),
	})
	if err != nil {
		log.Fatal(err)
	}
	defer session.Close()

	stages := []shmt.Stage{
		{Name: "A despeckle", Op: shmt.OpSRAD, Attrs: map[string]float64{"lambda": 0.5, "q0sqr": 0.05}},
		{Name: "B denoise", Op: shmt.OpMeanFilter},
		{Name: "C sharpen", Op: shmt.OpLaplacian},
		{Name: "D edges", Op: shmt.OpSobel},
		{Name: "E transform", Op: shmt.OpDCT8x8},
	}

	var conventional float64
	for _, mode := range []shmt.PipelineMode{
		shmt.PipelineConventional, shmt.PipelineSoftware, shmt.PipelineSHMT,
	} {
		res, err := session.ExecutePipeline(img, stages, mode)
		if err != nil {
			log.Fatal(err)
		}
		if mode == shmt.PipelineConventional {
			conventional = res.Makespan
		}
		fmt.Printf("%-20s makespan %8.1f ms  energy %6.2f J  speedup %.2fx\n",
			mode, res.Makespan*1e3, res.EnergyJoules, conventional/res.Makespan)
		for _, st := range res.Stages {
			fmt.Printf("    %-13s on %-4s  %7.1f ms\n", st.Name, st.Device, st.Latency*1e3)
		}
	}
	fmt.Println("\n(the Fig. 1 story: pipelining overlaps functions across devices;")
	fmt.Println(" SHMT additionally lets every device work on the *same* function)")
}
