package shmt

import (
	"errors"
	"fmt"

	"shmt/internal/device"
	"shmt/internal/vop"
)

// Stage is one function of a multi-function program (the A…E of the paper's
// Fig. 1). Each stage consumes the previous stage's output as its first
// input.
type Stage struct {
	// Name labels the stage in reports.
	Name string
	// Op is the stage's VOP.
	Op Op
	// Attrs are the stage's kernel parameters.
	Attrs map[string]float64
	// Extra supplies any inputs beyond the previous stage's output (e.g.
	// Hotspot's power grid as the second operand).
	Extra []*Matrix
}

// PipelineMode selects the execution model of Fig. 1.
type PipelineMode int

const (
	// PipelineConventional is Fig. 1(a): each function delegated wholesale
	// to its most efficient device; functions execute back-to-back, all
	// other devices idle.
	PipelineConventional PipelineMode = iota
	// PipelineSoftware is Fig. 1(b): the same per-function device choice,
	// but functions stream partial results so stages on different devices
	// overlap chunk-by-chunk; stages mapped to the same device serialize.
	PipelineSoftware
	// PipelineSHMT is Fig. 1(c): every function co-executed by all devices
	// under the session's SHMT policy; functions remain sequential, but each
	// finishes sooner.
	PipelineSHMT
)

func (m PipelineMode) String() string {
	switch m {
	case PipelineConventional:
		return "conventional"
	case PipelineSoftware:
		return "software-pipelined"
	case PipelineSHMT:
		return "SHMT"
	default:
		return fmt.Sprintf("PipelineMode(%d)", int(m))
	}
}

// StageResult is one stage's outcome within a pipeline run.
type StageResult struct {
	Name string
	// Device names the executor under the conventional/pipelined modes
	// ("shmt" under PipelineSHMT).
	Device string
	// Latency is the stage's stand-alone virtual latency in seconds.
	Latency float64
	// Report is the underlying run report.
	Report *Report
}

// PipelineResult is the outcome of a multi-function program execution.
type PipelineResult struct {
	Mode PipelineMode
	// Output is the final stage's result (computed for real — data flows
	// through the stages in every mode).
	Output *Matrix
	// Makespan is the end-to-end virtual latency under the mode's overlap
	// structure.
	Makespan float64
	// EnergyJoules integrates the platform power over the makespan with the
	// per-stage device activity.
	EnergyJoules float64
	// Stages holds the per-stage breakdown.
	Stages []StageResult
}

// ExecutePipeline runs a multi-function program (Fig. 1) over the input
// under the given execution model and returns the final output with the
// modelled end-to-end latency.
//
// All three modes compute identical real data flow; they differ in which
// devices execute each stage and how stage timelines compose:
//
//   - conventional: Σ stage latencies on each stage's best single device;
//   - software-pipelined: stages chunk into the session's TargetPartitions
//     pieces and stream, so stages bound to different devices overlap — the
//     makespan is the per-device serialized load plus one chunk's ramp
//     through the remaining stages;
//   - SHMT: Σ stage latencies with every stage co-executed under the
//     session's policy.
func (s *Session) ExecutePipeline(input *Matrix, stages []Stage, mode PipelineMode) (*PipelineResult, error) {
	if input == nil {
		return nil, errNilInput
	}
	if len(stages) == 0 {
		return nil, errors.New("shmt: pipeline needs at least one stage")
	}
	res := &PipelineResult{Mode: mode}
	cur := input

	for _, st := range stages {
		inputs := append([]*Matrix{cur}, st.Extra...)
		var rep *Report
		var devName string
		var err error
		switch mode {
		case PipelineSHMT:
			rep, err = s.Execute(st.Op, inputs, st.Attrs)
			devName = "shmt"
		case PipelineConventional, PipelineSoftware:
			devName = bestConventionalDevice(st.Op)
			rep, err = s.executeOn(devName, st.Op, inputs, st.Attrs)
		default:
			return nil, fmt.Errorf("shmt: unknown pipeline mode %d", int(mode))
		}
		if err != nil {
			return nil, fmt.Errorf("shmt: pipeline stage %q: %w", st.Name, err)
		}
		res.Stages = append(res.Stages, StageResult{
			Name: st.Name, Device: devName, Latency: rep.Makespan, Report: rep,
		})
		res.EnergyJoules += rep.Energy.Total()
		cur = rep.Output
	}
	res.Output = cur
	res.Makespan = composeMakespan(mode, res.Stages, s.cfg.TargetPartitions)
	return res, nil
}

// executeOn runs one VOP wholly on the named device, reusing the session's
// virtual scale and partitioning. The copied config goes through the
// sub-session constructor, which strips the metrics listener and the chaos
// plan: the stage must neither re-bind the parent's (or SHMT_METRICS_ADDR's)
// already-bound address nor restart the parent's fault schedule per stage.
func (s *Session) executeOn(devName string, op Op, inputs []*Matrix, attrs map[string]float64) (*Report, error) {
	cfg := s.cfg
	cfg.Policy = PolicyGPUBaseline
	if devName == "tpu" {
		cfg.Policy = PolicyTPUOnly
	}
	sub, err := newSession(cfg, true)
	if err != nil {
		return nil, err
	}
	defer sub.Close()
	return sub.Execute(op, inputs, attrs)
}

// bestConventionalDevice picks the device a conventional framework would
// delegate the whole function to: the one the calibrated cost model says is
// fastest end-to-end.
func bestConventionalDevice(op Op) string {
	if device.Cost(vop.Opcode(op)).TPURatio > 1 {
		return "tpu"
	}
	return "gpu"
}

// composeMakespan folds per-stage latencies into the mode's end-to-end
// latency.
func composeMakespan(mode PipelineMode, stages []StageResult, chunks int) float64 {
	switch mode {
	case PipelineSoftware:
		if chunks <= 0 {
			chunks = 64
		}
		// Streaming pipeline: each device serializes the stages bound to it
		// (that sum bounds the steady-state rate); the first chunk must
		// still ramp through every stage once.
		perDevice := map[string]float64{}
		var bottleneck, ramp float64
		for _, st := range stages {
			perDevice[st.Device] += st.Latency
			ramp += st.Latency / float64(chunks)
		}
		for _, t := range perDevice {
			if t > bottleneck {
				bottleneck = t
			}
		}
		return bottleneck + ramp
	default:
		var total float64
		for _, st := range stages {
			total += st.Latency
		}
		return total
	}
}
