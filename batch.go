package shmt

import (
	"fmt"
	"math"

	"shmt/internal/core"
	"shmt/internal/vop"
)

// BatchRequest is one VOP within a multi-tenant batch submission.
type BatchRequest struct {
	// Op is the request's VOP.
	Op Op
	// Inputs are the request's input tensors.
	Inputs []*Matrix
	// Attrs are the request's kernel parameters.
	Attrs map[string]float64
	// TraceID, when set, tags the engine spans this request produces so the
	// Perfetto export can stitch them to the serving layer's request lane.
	TraceID string
	// Tenant is the admission queue the request arrived through; it rides
	// along for attribution (the engine schedules by VOP, not tenant).
	Tenant string
	// DeadlinePressure (0..1) encodes how tight the request's deadline is:
	// QAWS raises the request's critical fraction with it, steering more
	// partitions to high-accuracy devices. 0 means no deadline pressure.
	// Values are quantized to 1/16 steps so the plan cache's key space
	// stays bounded.
	DeadlinePressure float64
}

// BatchResult carries the per-request reports and the batch-wide accounting
// of one ExecuteBatch round.
type BatchResult = core.BatchResult

// ExecuteBatch co-schedules several independent VOPs in one round: their
// HLOPs share the device queues and the stealing pool, so a device that
// finishes one request's partitions immediately continues with another's —
// the oversubscription behaviour §5.6 credits for hiding data-exchange
// latency. Results return per request, with batch-wide latency and energy.
func (s *Session) ExecuteBatch(reqs []BatchRequest) (*BatchResult, error) {
	if len(reqs) == 0 {
		return nil, fmt.Errorf("shmt: empty batch")
	}
	vops := make([]*vop.VOP, len(reqs))
	for i, r := range reqs {
		v, err := vop.New(r.Op, r.Inputs...)
		if err != nil {
			return nil, fmt.Errorf("shmt: batch request %d: %w", i, err)
		}
		for k, x := range r.Attrs {
			v.SetAttr(k, x)
		}
		if s.cfg.CriticalFraction > 0 {
			v.CriticalFraction = s.cfg.CriticalFraction
		}
		if p := r.DeadlinePressure; p > 0 {
			if p > 1 {
				p = 1
			}
			v.DeadlinePressure = math.Round(p*16) / 16
		}
		v.TraceID = r.TraceID
		vops[i] = v
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil, ErrSessionClosed
	}
	return s.eng.RunBatch(vops)
}
