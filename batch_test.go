package shmt_test

import (
	"math"
	"testing"

	"shmt"
	"shmt/internal/workload"
)

func batchRequests() []shmt.BatchRequest {
	img := workload.Image(128, 128, 70)
	noise := workload.Mixed(128, 128, workload.Profile{TileSize: 32}, 71)
	return []shmt.BatchRequest{
		{Op: shmt.OpSobel, Inputs: []*shmt.Matrix{img}},
		{Op: shmt.OpFFT, Inputs: []*shmt.Matrix{noise}},
		{Op: shmt.OpReduceSum, Inputs: []*shmt.Matrix{noise}},
	}
}

func TestExecuteBatch(t *testing.T) {
	s := newSession(t, shmt.Config{Policy: shmt.PolicyWorkStealing, TargetPartitions: 8})
	res, err := s.ExecuteBatch(batchRequests())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	if res.Reports[0].Output.Rows != 128 || res.Reports[1].Output.Rows != 128 {
		t.Fatal("map outputs malformed")
	}
	if res.Reports[2].Output.Len() != 1 {
		t.Fatal("reduction output malformed")
	}
	// Each request finishes no later than the batch.
	for i, rep := range res.Reports {
		if rep.Makespan <= 0 || rep.Makespan > res.Makespan+1e-12 {
			t.Fatalf("request %d makespan %g vs batch %g", i, rep.Makespan, res.Makespan)
		}
	}
	if res.Energy.Total() <= 0 || res.Comm.Bytes <= 0 {
		t.Fatal("batch accounting missing")
	}
}

func TestExecuteBatchResultsMatchSoloRuns(t *testing.T) {
	// Co-scheduling must not change the computed data on an exact device.
	s := newSession(t, shmt.Config{UseCPU: true, Policy: shmt.PolicyCPUOnly, TargetPartitions: 4})
	reqs := batchRequests()
	res, err := s.ExecuteBatch(reqs)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		solo, err := s.Execute(r.Op, r.Inputs, r.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reports[i].Output.Equal(solo.Output) {
			t.Fatalf("request %d batch output differs from solo run", i)
		}
	}
}

func TestExecuteBatchSharesCapacity(t *testing.T) {
	// Two identical requests batched together should finish faster than
	// running them back-to-back (the second request's HLOPs fill the idle
	// tail of the first), and never slower.
	s := newSession(t, shmt.Config{Policy: shmt.PolicyWorkStealing, TargetPartitions: 8})
	img := workload.Image(128, 128, 72)
	req := shmt.BatchRequest{Op: shmt.OpSobel, Inputs: []*shmt.Matrix{img}}
	batch, err := s.ExecuteBatch([]shmt.BatchRequest{req, req})
	if err != nil {
		t.Fatal(err)
	}
	solo, err := s.Execute(shmt.OpSobel, req.Inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	sequential := 2 * solo.Makespan
	if batch.Makespan > sequential*1.05 {
		t.Fatalf("batch %g slower than sequential %g", batch.Makespan, sequential)
	}
}

func TestExecuteBatchValidation(t *testing.T) {
	s := newSession(t, shmt.Config{})
	if _, err := s.ExecuteBatch(nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	bad := []shmt.BatchRequest{{Op: shmt.OpAdd, Inputs: []*shmt.Matrix{shmt.NewMatrix(4, 4)}}}
	if _, err := s.ExecuteBatch(bad); err == nil {
		t.Fatal("arity error should surface")
	}
}

func TestExecuteBatchQAWS(t *testing.T) {
	s := newSession(t, shmt.Config{Policy: shmt.PolicyQAWSTS, TargetPartitions: 8, SamplingRate: 0.01})
	res, err := s.ExecuteBatch(batchRequests())
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(res.Makespan) || res.Makespan <= 0 {
		t.Fatal("QAWS batch degenerate")
	}
}
