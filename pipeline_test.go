package shmt_test

import (
	"testing"

	"shmt"
	"shmt/internal/workload"
)

func pipelineStages() []shmt.Stage {
	return []shmt.Stage{
		{Name: "denoise", Op: shmt.OpMeanFilter},
		{Name: "edges", Op: shmt.OpSobel},
		{Name: "transform", Op: shmt.OpDCT8x8},
	}
}

func TestPipelineModes(t *testing.T) {
	s := newSession(t, shmt.Config{Policy: shmt.PolicyQAWSTS, TargetPartitions: 16, VirtualScale: 64})
	img := workload.Image(256, 256, 30)

	var results [3]*shmt.PipelineResult
	for i, mode := range []shmt.PipelineMode{shmt.PipelineConventional, shmt.PipelineSoftware, shmt.PipelineSHMT} {
		res, err := s.ExecutePipeline(img, pipelineStages(), mode)
		if err != nil {
			t.Fatalf("%s: %v", mode, err)
		}
		if res.Output == nil || res.Output.Rows != 256 {
			t.Fatalf("%s: malformed output", mode)
		}
		if len(res.Stages) != 3 {
			t.Fatalf("%s: stages = %d", mode, len(res.Stages))
		}
		if res.Makespan <= 0 || res.EnergyJoules <= 0 {
			t.Fatalf("%s: degenerate accounting", mode)
		}
		results[i] = res
	}

	conv, pipe, sh := results[0], results[1], results[2]
	// Fig. 1's qualitative claim: SHMT < pipelined < conventional latency.
	if !(pipe.Makespan < conv.Makespan) {
		t.Fatalf("software pipelining (%g) should beat conventional (%g)", pipe.Makespan, conv.Makespan)
	}
	if !(sh.Makespan < conv.Makespan) {
		t.Fatalf("SHMT (%g) should beat conventional (%g)", sh.Makespan, conv.Makespan)
	}
	// Data flow is real: all three modes produce results of the same kernel
	// chain (modest numeric differences only, from device precisions).
	var diff float64
	for i := range conv.Output.Data {
		d := conv.Output.Data[i] - sh.Output.Data[i]
		if d < 0 {
			d = -d
		}
		diff += d
	}
	if diff/float64(conv.Output.Len()) > 10 {
		t.Fatalf("modes diverged numerically: mean |diff| = %g", diff/float64(conv.Output.Len()))
	}
}

func TestPipelineConventionalDeviceChoice(t *testing.T) {
	s := newSession(t, shmt.Config{TargetPartitions: 8})
	img := workload.Image(128, 128, 31)
	// SRAD's Fig. 2 ratio is 2.30: a conventional framework delegates it to
	// the TPU; Sobel's is 0.71: it stays on the GPU.
	res, err := s.ExecutePipeline(img, []shmt.Stage{
		{Name: "despeckle", Op: shmt.OpSRAD, Attrs: map[string]float64{"lambda": 0.5, "q0sqr": 0.05}},
		{Name: "edges", Op: shmt.OpSobel},
	}, shmt.PipelineConventional)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stages[0].Device != "tpu" || res.Stages[1].Device != "gpu" {
		t.Fatalf("device choices = %s/%s, want tpu/gpu", res.Stages[0].Device, res.Stages[1].Device)
	}
}

func TestPipelineMultiInputStage(t *testing.T) {
	s := newSession(t, shmt.Config{TargetPartitions: 8})
	temp := workload.Uniform(64, 64, 70, 90, 32)
	power := workload.Uniform(64, 64, 0, 1, 33)
	res, err := s.ExecutePipeline(temp, []shmt.Stage{
		{Name: "thermal", Op: shmt.OpStencil, Extra: []*shmt.Matrix{power}},
		{Name: "edges", Op: shmt.OpSobel},
	}, shmt.PipelineSHMT)
	if err != nil {
		t.Fatal(err)
	}
	if res.Output.Rows != 64 {
		t.Fatal("pipeline output malformed")
	}
}

func TestPipelineValidation(t *testing.T) {
	s := newSession(t, shmt.Config{})
	if _, err := s.ExecutePipeline(nil, pipelineStages(), shmt.PipelineSHMT); err == nil {
		t.Fatal("nil input should fail")
	}
	img := workload.Image(64, 64, 34)
	if _, err := s.ExecutePipeline(img, nil, shmt.PipelineSHMT); err == nil {
		t.Fatal("empty pipeline should fail")
	}
	if _, err := s.ExecutePipeline(img, pipelineStages(), shmt.PipelineMode(99)); err == nil {
		t.Fatal("unknown mode should fail")
	}
	if shmt.PipelineSHMT.String() != "SHMT" || shmt.PipelineConventional.String() == "" {
		t.Fatal("mode names wrong")
	}
}
