package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Chrome trace-event JSON export (the "JSON Array/Object Format" Perfetto and
// chrome://tracing load). Virtual device lanes and wall-clock host lanes are
// emitted as two separate processes so their timebases stay side by side
// without being compared; steals become flow arrows from the victim's lane to
// the stolen HLOP's execution slice.

// pids for the two clock domains plus the request-lane process.
const (
	perfettoVirtualPID = 1
	perfettoWallPID    = 2
	perfettoRequestPID = 3
)

// TraceEvent is one entry of the Chrome trace-event format. Exported so the
// format tests can unmarshal what WritePerfetto produced.
type TraceEvent struct {
	Name string  `json:"name"`
	Ph   string  `json:"ph"`
	Ts   float64 `json:"ts"` // microseconds
	Dur  float64 `json:"dur,omitempty"`
	PID  int     `json:"pid"`
	TID  int     `json:"tid"`
	ID   int     `json:"id,omitempty"`
	BP   string  `json:"bp,omitempty"`
	// Cname is the Chrome trace-viewer colour name; fault spans use
	// "terrible" so failed dispatches stand out on the device lanes.
	Cname string         `json:"cname,omitempty"`
	Args  map[string]any `json:"args,omitempty"`
}

// TraceFile is the top-level trace-event JSON object.
type TraceFile struct {
	DisplayTimeUnit string       `json:"displayTimeUnit"`
	TraceEvents     []TraceEvent `json:"traceEvents"`
}

// WritePerfetto renders the recorder's spans as Chrome trace-event JSON.
// Output is deterministic: lanes are sorted by name, spans by (start, id,
// name), so golden-file tests can compare bytes.
func (r *Recorder) WritePerfetto(w io.Writer) error {
	spans := r.Spans()
	sort.SliceStable(spans, func(a, b int) bool {
		if spans[a].Start != spans[b].Start {
			return spans[a].Start < spans[b].Start
		}
		if spans[a].ID != spans[b].ID {
			return spans[a].ID < spans[b].ID
		}
		return spans[a].Name < spans[b].Name
	})

	// Assign one tid per (clock, track), tracks sorted by name within each
	// clock domain so lane order is stable.
	tids := map[Clock]map[string]int{ClockVirtual: {}, ClockWall: {}}
	for _, clock := range []Clock{ClockVirtual, ClockWall} {
		seen := map[string]bool{}
		var names []string
		for _, s := range spans {
			if s.Clock != clock || s.Root {
				continue
			}
			if !seen[s.Track] {
				seen[s.Track] = true
				names = append(names, s.Track)
			}
			// A steal's victim lane must exist even if the victim never
			// executed anything itself.
			if s.StealFrom != "" && !seen[s.StealFrom] {
				seen[s.StealFrom] = true
				names = append(names, s.StealFrom)
			}
		}
		sort.Strings(names)
		for i, n := range names {
			tids[clock][n] = i
		}
	}

	pid := func(c Clock) int {
		if c == ClockWall {
			return perfettoWallPID
		}
		return perfettoVirtualPID
	}

	// Request lanes: root spans group into one lane per trace ID under a
	// dedicated process. Lane order follows first appearance in the sorted
	// span list (i.e. admission order), which is deterministic.
	reqTIDs := map[string]int{}
	var reqOrder []string
	for _, s := range spans {
		if s.Root {
			if _, ok := reqTIDs[s.TraceID]; !ok {
				reqTIDs[s.TraceID] = len(reqOrder)
				reqOrder = append(reqOrder, s.TraceID)
			}
		}
	}

	var events []TraceEvent
	events = append(events,
		TraceEvent{Name: "process_name", Ph: "M", PID: perfettoVirtualPID,
			Args: map[string]any{"name": "shmt virtual devices"}},
		TraceEvent{Name: "process_name", Ph: "M", PID: perfettoWallPID,
			Args: map[string]any{"name": "shmt host (wall clock)"}},
	)
	if len(reqOrder) > 0 {
		events = append(events, TraceEvent{Name: "process_name", Ph: "M",
			PID: perfettoRequestPID, Args: map[string]any{"name": "shmt requests (wall clock)"}})
	}
	for _, clock := range []Clock{ClockVirtual, ClockWall} {
		names := make([]string, 0, len(tids[clock]))
		for n := range tids[clock] {
			names = append(names, n)
		}
		sort.Strings(names)
		for _, n := range names {
			events = append(events, TraceEvent{Name: "thread_name", Ph: "M",
				PID: pid(clock), TID: tids[clock][n],
				Args: map[string]any{"name": n}})
		}
	}
	for _, id := range reqOrder {
		events = append(events, TraceEvent{Name: "thread_name", Ph: "M",
			PID: perfettoRequestPID, TID: reqTIDs[id],
			Args: map[string]any{"name": id}})
	}

	flowID := 0
	for _, s := range spans {
		if s.Root {
			events = append(events, TraceEvent{
				Name: s.Name, Ph: "X",
				Ts:  s.Start * 1e6,
				Dur: (s.End - s.Start) * 1e6,
				PID: perfettoRequestPID, TID: reqTIDs[s.TraceID],
				Args: map[string]any{"trace_id": s.TraceID},
			})
			continue
		}
		ev := TraceEvent{
			Name: s.Name, Ph: "X",
			Ts:  s.Start * 1e6,
			Dur: (s.End - s.Start) * 1e6,
			PID: pid(s.Clock), TID: tids[s.Clock][s.Track],
		}
		args := map[string]any{}
		if s.Clock == ClockVirtual {
			args["hlop"] = s.ID
		}
		if s.Critical {
			args["critical"] = true
		}
		if s.Fault {
			args["fault"] = true
			ev.Cname = "terrible"
		}
		if s.StealFrom != "" {
			args["stolen_from"] = s.StealFrom
		}
		if s.TraceID != "" {
			args["trace_id"] = s.TraceID
		}
		if len(args) > 0 {
			ev.Args = args
		}
		events = append(events, ev)
		if s.StealFrom != "" {
			flowID++
			events = append(events,
				TraceEvent{Name: "steal", Ph: "s", Ts: s.Start * 1e6, ID: flowID,
					PID: pid(s.Clock), TID: tids[s.Clock][s.StealFrom]},
				TraceEvent{Name: "steal", Ph: "f", BP: "e", Ts: s.Start * 1e6, ID: flowID,
					PID: pid(s.Clock), TID: tids[s.Clock][s.Track]},
			)
		}
	}

	// Flow arrows request → engine: one arrow from each request lane to every
	// engine span that carries its trace ID, anchored at the request's
	// earliest root span. The arrows cross clock domains (wall → virtual), so
	// they express causality, not elapsed time.
	for _, id := range reqOrder {
		rootTs := 0.0
		for _, s := range spans {
			if s.Root && s.TraceID == id {
				rootTs = s.Start * 1e6
				break
			}
		}
		for _, s := range spans {
			if s.Root || s.TraceID != id {
				continue
			}
			flowID++
			events = append(events,
				TraceEvent{Name: "request", Ph: "s", Ts: rootTs, ID: flowID,
					PID: perfettoRequestPID, TID: reqTIDs[id]},
				TraceEvent{Name: "request", Ph: "f", BP: "e", Ts: s.Start * 1e6, ID: flowID,
					PID: pid(s.Clock), TID: tids[s.Clock][s.Track]},
			)
		}
	}

	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(TraceFile{DisplayTimeUnit: "ms", TraceEvents: events})
}
