package telemetry

import (
	"encoding/json"
	"io"
	"sort"
)

// Report is the structured JSON run report: counter deltas since the
// recorder was attached, absolute process totals, and a per-lane span digest.
type Report struct {
	// WallSeconds is how long the recorder has been attached.
	WallSeconds float64 `json:"wall_seconds"`
	// Counters holds the series that changed while the recorder was
	// attached (value = delta).
	Counters map[string]float64 `json:"counters"`
	// Totals holds the absolute process-wide values of every series.
	Totals map[string]float64 `json:"totals"`
	// Lanes summarises recorded spans per lane.
	Lanes []LaneSummary `json:"lanes"`
	// Spans is the total span count.
	Spans int `json:"spans"`
}

// LaneSummary aggregates one lane's spans.
type LaneSummary struct {
	Track   string  `json:"track"`
	Clock   string  `json:"clock"` // "virtual" or "wall"
	Spans   int     `json:"spans"`
	Busy    float64 `json:"busy_seconds"`
	Stolen  int     `json:"stolen"`
	LastEnd float64 `json:"last_end_seconds"`
}

// Report builds the structured run report from the recorder's spans and the
// Default registry's counter deltas since the recorder was created.
func (r *Recorder) Report() *Report {
	now := Default.Snapshot()
	spans := r.Spans()

	type laneKey struct {
		track string
		clock Clock
	}
	lanes := map[laneKey]*LaneSummary{}
	for _, s := range spans {
		k := laneKey{s.Track, s.Clock}
		l := lanes[k]
		if l == nil {
			clock := "virtual"
			if s.Clock == ClockWall {
				clock = "wall"
			}
			l = &LaneSummary{Track: s.Track, Clock: clock}
			lanes[k] = l
		}
		l.Spans++
		l.Busy += s.End - s.Start
		if s.StealFrom != "" {
			l.Stolen++
		}
		if s.End > l.LastEnd {
			l.LastEnd = s.End
		}
	}
	out := make([]LaneSummary, 0, len(lanes))
	for _, l := range lanes {
		out = append(out, *l)
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Clock != out[b].Clock {
			return out[a].Clock < out[b].Clock
		}
		return out[a].Track < out[b].Track
	})

	return &Report{
		WallSeconds: r.Now(),
		Counters:    now.Delta(r.base),
		Totals:      now,
		Lanes:       out,
		Spans:       len(spans),
	}
}

// WriteJSON renders the report as indented JSON.
func (rep *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(rep)
}
