package telemetry

import (
	"bytes"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

// goldenRegistry builds a private registry with one family of each kind and
// deterministic values, so the exposition output is stable for golden
// comparison.
func goldenRegistry(t *testing.T) *Registry {
	t.Helper()
	withTelemetry(t)
	r := NewRegistry()
	runs := r.NewCounterVec("demo_runs_total", "Completed runs by policy.", "policy")
	runs.With("QAWS-TS").Add(3)
	runs.With("work-stealing").Inc()
	steals := r.NewCounter("demo_steals_total", "Successful work steals.")
	steals.Add(17)
	depth := r.NewGaugeVec("demo_queue_depth", "Task-queue depth by device.", "device")
	depth.With("gpu").Set(2)
	depth.With("tpu").Set(0)
	wait := r.NewHistogram("demo_wait_seconds", "Queue wait time.", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 2} {
		wait.Observe(v)
	}
	return r
}

func TestPrometheusGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(t).WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "prometheus.golden.txt", buf.Bytes())
}

func TestPrometheusExpositionStructure(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(t).WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	// Every family gets HELP and TYPE lines with the right type.
	for _, want := range []string{
		"# HELP demo_runs_total Completed runs by policy.",
		"# TYPE demo_runs_total counter",
		"# TYPE demo_queue_depth gauge",
		"# TYPE demo_wait_seconds histogram",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	// Labelled series use the name{key="value"} value form.
	for _, want := range []string{
		`demo_runs_total{policy="QAWS-TS"} 3`,
		`demo_runs_total{policy="work-stealing"} 1`,
		"demo_steals_total 17",
		`demo_queue_depth{device="gpu"} 2`,
		`demo_queue_depth{device="tpu"} 0`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing series %q in:\n%s", want, out)
		}
	}
	// Histogram buckets are cumulative and end at +Inf == count.
	for _, want := range []string{
		`demo_wait_seconds_bucket{le="0.001"} 1`,
		`demo_wait_seconds_bucket{le="0.01"} 3`,
		`demo_wait_seconds_bucket{le="0.1"} 4`,
		`demo_wait_seconds_bucket{le="+Inf"} 5`,
		"demo_wait_seconds_count 5",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing bucket %q in:\n%s", want, out)
		}
	}
}

// TestExemplarExposition: an ObserveExemplar annotates the matching bucket
// with an OpenMetrics exemplar suffix in the OpenMetrics rendering only;
// the classic 0.0.4 exposition stays exemplar-free (a trailing '# {...}' is
// a parse error for real Prometheus and would fail the whole scrape).
func TestExemplarExposition(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	h := r.NewHistogram("ex_wait_seconds", "w", []float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.ObserveExemplar(0.05, "abcd1234-7")
	h.ObserveExemplar(2, "abcd1234-9")

	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		`ex_wait_seconds_bucket{le="0.1"} 2 # {trace_id="abcd1234-7"} 0.05`,
		`ex_wait_seconds_bucket{le="+Inf"} 3 # {trace_id="abcd1234-9"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing exemplar line %q in:\n%s", want, out)
		}
	}
	// The un-exemplared bucket keeps the plain form.
	if !strings.Contains(out, "ex_wait_seconds_bucket{le=\"0.001\"} 1\n") {
		t.Fatalf("plain bucket line altered:\n%s", out)
	}
	// OpenMetrics output must be terminated.
	if !strings.HasSuffix(out, "# EOF\n") {
		t.Fatalf("OpenMetrics output missing '# EOF' terminator:\n%s", out)
	}

	// The classic exposition of the same registry carries no exemplars.
	buf.Reset()
	if err := r.WriteExposition(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("classic exposition leaked an exemplar:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "# EOF") {
		t.Fatalf("classic exposition carries an OpenMetrics terminator:\n%s", buf.String())
	}
}

// TestOpenMetricsCounterNaming: OpenMetrics counter metadata drops the
// '_total' suffix while the sample lines keep it.
func TestOpenMetricsCounterNaming(t *testing.T) {
	var buf bytes.Buffer
	if err := goldenRegistry(t).WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"# TYPE demo_runs counter",
		"# TYPE demo_steals counter",
		`demo_runs_total{policy="QAWS-TS"} 3`,
		"demo_steals_total 17",
		"# TYPE demo_queue_depth gauge",
		"# TYPE demo_wait_seconds histogram",
	} {
		if !strings.Contains(out, want+"\n") {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
	if strings.Contains(out, "# TYPE demo_runs_total") {
		t.Fatalf("OpenMetrics counter metadata kept '_total':\n%s", out)
	}
}

// TestExpositionNegotiation: the /metrics handler serves classic 0.0.4 by
// default and switches to OpenMetrics (content type, exemplars, '# EOF')
// only when the client's Accept header asks for it.
func TestExpositionNegotiation(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	h := r.NewHistogram("neg_wait_seconds", "w", []float64{0.1})
	h.ObserveExemplar(0.05, "neg-trace-1")
	handler := ExpositionHandler(r)

	get := func(accept string) (string, string) {
		req := httptest.NewRequest("GET", "/metrics", nil)
		if accept != "" {
			req.Header.Set("Accept", accept)
		}
		rec := httptest.NewRecorder()
		handler(rec, req)
		return rec.Header().Get("Content-Type"), rec.Body.String()
	}

	// Default (and explicit text/plain) scrapes are classic and clean.
	for _, accept := range []string{"", "text/plain;version=0.0.4;q=0.5,*/*;q=0.1"} {
		ct, body := get(accept)
		if ct != ContentTypeClassic {
			t.Fatalf("Accept=%q: content-type = %q, want classic", accept, ct)
		}
		if strings.Contains(body, "trace_id") || strings.Contains(body, "# EOF") {
			t.Fatalf("Accept=%q: classic scrape carries OpenMetrics syntax:\n%s", accept, body)
		}
	}

	// An OpenMetrics-negotiating scraper gets exemplars and the terminator.
	ct, body := get("application/openmetrics-text;version=1.0.0;q=0.75,text/plain;version=0.0.4;q=0.5")
	if ct != ContentTypeOpenMetrics {
		t.Fatalf("content-type = %q, want OpenMetrics", ct)
	}
	if !strings.Contains(body, `# {trace_id="neg-trace-1"} 0.05`) {
		t.Fatalf("OpenMetrics scrape missing exemplar:\n%s", body)
	}
	if !strings.HasSuffix(body, "# EOF\n") {
		t.Fatalf("OpenMetrics scrape missing '# EOF':\n%s", body)
	}
}

// TestObserveExemplarDisabledAllocatesNothing extends the disabled-path
// contract to the exemplar variant.
func TestObserveExemplarDisabledAllocatesNothing(t *testing.T) {
	Disable()
	r := NewRegistry()
	h := r.NewHistogram("exd_wait_seconds", "w", ExpBuckets(1e-6, 4, 12))
	if n := testing.AllocsPerRun(1000, func() {
		h.ObserveExemplar(0.5, "some-trace-id")
	}); n != 0 {
		t.Fatalf("disabled ObserveExemplar allocated %v times per op", n)
	}
}

// TestObserveExemplarEmptyTraceID: an empty trace ID degrades to a plain
// observation without storing an exemplar (checked via the OpenMetrics
// rendering, the only one that would show it).
func TestObserveExemplarEmptyTraceID(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	h := r.NewHistogram("exe_wait_seconds", "w", []float64{1})
	h.ObserveExemplar(0.5, "")
	var buf bytes.Buffer
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "trace_id") {
		t.Fatalf("empty trace ID stored an exemplar:\n%s", buf.String())
	}
	if h.Count() != 1 {
		t.Fatalf("observation lost: count = %d", h.Count())
	}
}

func TestFormatValue(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		3:      "3",
		-2:     "-2",
		0.0545: "0.0545",
		1e18:   "1e+18",
	}
	for v, want := range cases {
		if got := formatValue(v); got != want {
			t.Fatalf("formatValue(%g) = %q, want %q", v, got, want)
		}
	}
}

// TestServeEndToEnd binds the metrics listener on a free port and scrapes it
// over real HTTP: the Default registry's standard schema must be exposed.
func TestServeEndToEnd(t *testing.T) {
	withTelemetry(t)
	StealAttempts.Inc()

	srv, err := Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	resp, err := http.Get("http://" + srv.Addr() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status = %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content-type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	// The standard schema appears even for series that have never moved;
	// these are the acceptance-criterion families.
	for _, want := range []string{
		"# TYPE shmt_steal_attempts_total counter",
		"# TYPE shmt_queue_depth gauge",
		"# TYPE shmt_arena_hits_total counter",
		"# TYPE shmt_exec_cache_hits_total counter",
		"shmt_steal_attempts_total",
	} {
		if !strings.Contains(string(body), want) {
			t.Fatalf("scrape missing %q in:\n%s", want, body)
		}
	}

	root, err := http.Get("http://" + srv.Addr() + "/")
	if err != nil {
		t.Fatal(err)
	}
	defer root.Body.Close()
	hint, _ := io.ReadAll(root.Body)
	if !strings.Contains(string(hint), "/metrics") {
		t.Fatalf("liveness page should point at /metrics: %q", hint)
	}
}
