// Package telemetry is the runtime's always-compiled instrumentation core.
// It provides atomic counters, gauges and fixed-bucket histograms behind a
// process-wide enable gate, a span recorder that captures both the virtual
// device timeline and wall-clock host activity, and three exporters: Chrome
// trace-event JSON (loadable in Perfetto), Prometheus text exposition over an
// optional HTTP listener, and a structured JSON run report.
//
// Design rules, in priority order:
//
//  1. Near-zero overhead when disabled. Every hot-path operation first loads
//     one atomic bool; when telemetry is off that load is the entire cost and
//     nothing allocates. The engine, scheduler, queues, arena and worker pool
//     are instrumented unconditionally — there is no build tag.
//  2. No hot-path allocations when enabled. Counters and gauges are plain
//     atomics; histograms index a fixed bucket array; label lookups
//     (CounterVec.With) are resolved once at setup time and the returned
//     pointer is held across the hot loop.
//  3. Metrics are process-global and cumulative (the Prometheus model); a
//     Recorder snapshots the registry when attached so per-run reports are
//     deltas, and collects that run's spans.
package telemetry

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// on is the process-wide enable gate. All instrumentation is inert until
// Enable; the single atomic load is the entire disabled-path cost.
var on atomic.Bool

// Enable turns instrumentation on process-wide.
func Enable() { on.Store(true) }

// Disable turns instrumentation off. Metric values are retained.
func Disable() { on.Store(false) }

// On reports whether instrumentation is enabled. Call sites with non-trivial
// setup (timestamps, per-item bookkeeping) gate on this; simple counter
// increments just call Inc/Add, which check internally.
func On() bool { return on.Load() }

// Counter is a monotonically increasing metric.
type Counter struct {
	v atomic.Int64
}

// Inc adds one when telemetry is enabled.
func (c *Counter) Inc() {
	if on.Load() {
		c.v.Add(1)
	}
}

// Add adds n when telemetry is enabled.
func (c *Counter) Add(n int64) {
	if on.Load() {
		c.v.Add(n)
	}
}

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down (queue depth, live bytes).
type Gauge struct {
	v atomic.Int64
}

// Set stores v when telemetry is enabled.
func (g *Gauge) Set(v int64) {
	if on.Load() {
		g.v.Store(v)
	}
}

// Add adds delta when telemetry is enabled.
func (g *Gauge) Add(delta int64) {
	if on.Load() {
		g.v.Add(delta)
	}
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Exemplar ties a sampled observation to the request trace that produced it,
// OpenMetrics-style: the OpenMetrics exposition (negotiated via Accept;
// see WriteOpenMetrics) renders it as a bucket annotation so a dashboard can
// jump from a latency bucket straight to /debug/requests. The classic 0.0.4
// exposition never carries it — the format has no exemplar syntax.
type Exemplar struct {
	TraceID string
	Value   float64
}

// Histogram counts observations into fixed upper-bound buckets
// (Prometheus-style cumulative export; storage is per-bucket).
type Histogram struct {
	bounds    []float64 // ascending upper bounds; implicit +Inf bucket follows
	buckets   []atomic.Int64
	count     atomic.Int64
	sumBits   atomic.Uint64 // float64 bits, CAS-updated
	exemplars []atomic.Pointer[Exemplar]
}

// Observe records v when telemetry is enabled.
func (h *Histogram) Observe(v float64) {
	if !on.Load() {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveExemplar records v and attaches an exemplar carrying traceID to the
// bucket v lands in (last write wins). The Exemplar allocation happens only
// on the enabled path; disabled, this is one atomic load like Observe.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if !on.Load() {
		return
	}
	h.Observe(v)
	if h.exemplars != nil && traceID != "" {
		h.exemplars[sort.SearchFloat64s(h.bounds, v)].Store(&Exemplar{TraceID: traceID, Value: v})
	}
}

// exemplar returns bucket i's latest exemplar, or nil.
func (h *Histogram) exemplar(i int) *Exemplar {
	if h.exemplars == nil {
		return nil
	}
	return h.exemplars[i].Load()
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// ExpBuckets returns n exponential bucket bounds starting at start and
// multiplying by factor — the standard latency/size bucket ladder.
func ExpBuckets(start, factor float64, n int) []float64 {
	if n < 1 || start <= 0 || factor <= 1 {
		return []float64{start}
	}
	b := make([]float64, n)
	v := start
	for i := range b {
		b[i] = v
		v *= factor
	}
	return b
}

// metricKind discriminates exposition rendering.
type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

func (k metricKind) String() string {
	switch k {
	case kindGauge:
		return "gauge"
	case kindHistogram:
		return "histogram"
	default:
		return "counter"
	}
}

// child is one labelled instance within a family. The exposition series keys
// are rendered once at creation so snapshot/exposition walks never format
// strings — a Recorder re-based per request would otherwise pay ~100
// transient keys per Snapshot.
type child struct {
	labelValue string // empty for unlabelled metrics
	key        string // exposition series key: name or name{label="value"}
	keyCount   string // histogram-only: name_count series key
	keySum     string // histogram-only: name_sum series key
	counter    *Counter
	gauge      *Gauge
	hist       *Histogram
}

// family is one named metric and its labelled children.
type family struct {
	name     string
	help     string
	kind     metricKind
	labelKey string // empty for unlabelled metrics
	bounds   []float64

	mu       sync.Mutex
	children []*child
	index    map[string]*child
}

func (f *family) get(labelValue string) *child {
	f.mu.Lock()
	defer f.mu.Unlock()
	if c, ok := f.index[labelValue]; ok {
		return c
	}
	c := &child{labelValue: labelValue, key: seriesKey(f.name, f.labelKey, labelValue)}
	switch f.kind {
	case kindCounter:
		c.counter = &Counter{}
	case kindGauge:
		c.gauge = &Gauge{}
	case kindHistogram:
		c.keyCount = seriesKey(f.name+"_count", f.labelKey, labelValue)
		c.keySum = seriesKey(f.name+"_sum", f.labelKey, labelValue)
		c.hist = &Histogram{
			bounds:    f.bounds,
			buckets:   make([]atomic.Int64, len(f.bounds)+1),
			exemplars: make([]atomic.Pointer[Exemplar], len(f.bounds)+1),
		}
	}
	f.index[labelValue] = c
	f.children = append(f.children, c)
	sort.Slice(f.children, func(a, b int) bool { return f.children[a].labelValue < f.children[b].labelValue })
	return c
}

// Registry holds metric families for exposition and snapshots. The package
// Default registry backs every standard shmt_* metric; tests may build
// private registries for deterministic golden output.
type Registry struct {
	mu       sync.Mutex
	families []*family
	byName   map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: map[string]*family{}}
}

// Default is the process-wide registry all standard metrics register into.
var Default = NewRegistry()

func (r *Registry) register(name, help, labelKey string, kind metricKind, bounds []float64) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		panic(fmt.Sprintf("telemetry: duplicate metric %q", name))
	}
	f := &family{name: name, help: help, kind: kind, labelKey: labelKey, bounds: bounds, index: map[string]*child{}}
	r.byName[name] = f
	r.families = append(r.families, f)
	sort.Slice(r.families, func(a, b int) bool { return r.families[a].name < r.families[b].name })
	return f
}

// NewCounter registers an unlabelled counter.
func (r *Registry) NewCounter(name, help string) *Counter {
	return r.register(name, help, "", kindCounter, nil).get("").counter
}

// NewGauge registers an unlabelled gauge.
func (r *Registry) NewGauge(name, help string) *Gauge {
	return r.register(name, help, "", kindGauge, nil).get("").gauge
}

// NewHistogram registers an unlabelled histogram with the given ascending
// bucket upper bounds (an implicit +Inf bucket is appended).
func (r *Registry) NewHistogram(name, help string, bounds []float64) *Histogram {
	return r.register(name, help, "", kindHistogram, bounds).get("").hist
}

// CounterVec is a counter family with one label dimension.
type CounterVec struct{ f *family }

// With returns the counter for the label value, creating it on first use.
// Resolve once at setup time and hold the pointer across hot loops.
func (v *CounterVec) With(labelValue string) *Counter { return v.f.get(labelValue).counter }

// GaugeVec is a gauge family with one label dimension.
type GaugeVec struct{ f *family }

// With returns the gauge for the label value, creating it on first use.
func (v *GaugeVec) With(labelValue string) *Gauge { return v.f.get(labelValue).gauge }

// HistogramVec is a histogram family with one label dimension.
type HistogramVec struct{ f *family }

// With returns the histogram for the label value, creating it on first use.
func (v *HistogramVec) With(labelValue string) *Histogram { return v.f.get(labelValue).hist }

// NewCounterVec registers a labelled counter family.
func (r *Registry) NewCounterVec(name, help, labelKey string) *CounterVec {
	return &CounterVec{f: r.register(name, help, labelKey, kindCounter, nil)}
}

// NewGaugeVec registers a labelled gauge family.
func (r *Registry) NewGaugeVec(name, help, labelKey string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, labelKey, kindGauge, nil)}
}

// NewHistogramVec registers a labelled histogram family.
func (r *Registry) NewHistogramVec(name, help, labelKey string, bounds []float64) *HistogramVec {
	return &HistogramVec{f: r.register(name, help, labelKey, kindHistogram, bounds)}
}

// Snapshot is a point-in-time reading of every series in a registry, keyed by
// the exposition series name (name, or name{label="value"}; histograms
// contribute _count and _sum series).
type Snapshot map[string]float64

// Snapshot reads every series. It allocates and is meant for report/export
// time, never the hot path.
func (r *Registry) Snapshot() Snapshot {
	s := Snapshot{}
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		f.mu.Lock()
		children := append([]*child(nil), f.children...)
		f.mu.Unlock()
		for _, c := range children {
			switch f.kind {
			case kindCounter:
				s[c.key] = float64(c.counter.Value())
			case kindGauge:
				s[c.key] = float64(c.gauge.Value())
			case kindHistogram:
				s[c.keyCount] = float64(c.hist.Count())
				s[c.keySum] = c.hist.Sum()
			}
		}
	}
	return s
}

// Delta returns now minus base, keeping only series that changed (or are new).
func (now Snapshot) Delta(base Snapshot) Snapshot {
	d := Snapshot{}
	for k, v := range now {
		if dv := v - base[k]; dv != 0 {
			d[k] = dv
		}
	}
	return d
}

func seriesKey(name, labelKey, labelValue string) string {
	if labelKey == "" {
		return name
	}
	return fmt.Sprintf("%s{%s=%q}", name, labelKey, labelValue)
}
