package telemetry

import (
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// Request-scoped tracing: one RequestTrace follows a serving-layer request
// end to end — admission, micro-batch gather, planning, execution,
// aggregation — and the FlightRecorder keeps a bounded in-memory window of
// them (the last N, plus every trace slower than the SLO threshold) for
// post-hoc "why was THIS request slow?" introspection via /debug/requests.
//
// Everything here is enabled-path only: the serving layer constructs traces
// only when tracing is configured, so the disabled request path stays
// allocation-free like the rest of the package.

// StageBreakdown attributes one request's wall-clock latency to the serving
// pipeline's stages. All values are seconds; a stage the request never
// entered is zero. The stages are disjoint and consecutive, so their sum
// approximates the request's total latency (the remainder is handler
// overhead: JSON decode/encode and goroutine wakeup).
type StageBreakdown struct {
	// QueueWait is time spent in the admission queue before the dispatcher
	// picked the request up.
	QueueWait float64 `json:"queue_wait_seconds"`
	// BatchLinger is time spent gathered into a round but waiting for the
	// round to fill (or its linger window to expire) plus dispatch overhead.
	BatchLinger float64 `json:"batch_linger_seconds"`
	// Plan is the round's partition + assignment (or plan-cache replay) time.
	Plan float64 `json:"plan_seconds"`
	// Transfer is the round's quantize/transfer staging time: output
	// allocation and view binding before execution.
	Transfer float64 `json:"quantize_transfer_seconds"`
	// Execute is the round's engine execution time.
	Execute float64 `json:"execute_seconds"`
	// Aggregate is the round's result-aggregation time.
	Aggregate float64 `json:"aggregate_seconds"`
}

// Sum returns the total attributed seconds across all stages.
func (s StageBreakdown) Sum() float64 {
	return s.QueueWait + s.BatchLinger + s.Plan + s.Transfer + s.Execute + s.Aggregate
}

// RequestTrace is one request's end-to-end record.
type RequestTrace struct {
	// TraceID identifies the request across the serving layer, the engine
	// spans, the Perfetto export and the exposition exemplars. Inbound
	// X-SHMT-Trace-Id headers propagate it across tiers.
	TraceID string `json:"trace_id"`
	// Op is the request's opcode name.
	Op string `json:"op"`
	// Tenant is the queue the request was admitted under ("default" when the
	// request carried no X-SHMT-Tenant header).
	Tenant string `json:"tenant,omitempty"`
	// Status is the request outcome ("ok", "shed", "timeout", ...), the same
	// label set as shmt_serve_requests_total.
	Status string `json:"status"`
	// BatchSize is how many requests the round coalesced (0 when the request
	// never reached a round).
	BatchSize int `json:"batch_size"`
	// Start is the wall-clock admission time.
	Start time.Time `json:"start"`
	// TotalSeconds is the end-to-end wall latency.
	TotalSeconds float64 `json:"total_seconds"`
	// Stages attributes the latency to pipeline stages.
	Stages StageBreakdown `json:"stages"`
	// Slow marks traces at or above the flight recorder's SLO threshold.
	Slow bool `json:"slow,omitempty"`
	// Error carries the failure message for non-ok outcomes.
	Error string `json:"error,omitempty"`
}

// FlightRecorder is a bounded in-memory store of recent request traces: a
// ring of the last N requests, plus a second ring that retains only traces
// at or above the SLO threshold — so a slow request stays inspectable after
// the recent window has churned past it. Safe for concurrent use.
type FlightRecorder struct {
	slo float64 // seconds; <= 0 disables slow retention

	mu       sync.Mutex
	recent   []RequestTrace // ring, len == cap once full
	recentAt int
	slow     []RequestTrace // ring of SLO violations
	slowAt   int

	recorded atomic.Int64
	slowSeen atomic.Int64
}

// DefaultFlightRecorderSize is the default per-ring capacity.
const DefaultFlightRecorderSize = 256

// NewFlightRecorder returns a recorder keeping the last size traces (and up
// to size slow traces). size <= 0 selects DefaultFlightRecorderSize; slo <= 0
// disables slow retention.
func NewFlightRecorder(size int, slo time.Duration) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	return &FlightRecorder{
		slo:    slo.Seconds(),
		recent: make([]RequestTrace, 0, size),
		slow:   make([]RequestTrace, 0, size),
	}
}

// SLO returns the slow-trace threshold (0 when disabled).
func (f *FlightRecorder) SLO() time.Duration {
	if f.slo <= 0 {
		return 0
	}
	return time.Duration(f.slo * float64(time.Second))
}

// Record stores one trace, marking it Slow when it breaches the SLO.
func (f *FlightRecorder) Record(t RequestTrace) {
	if f.slo > 0 && t.TotalSeconds >= f.slo {
		t.Slow = true
	}
	f.recorded.Add(1)
	f.mu.Lock()
	f.recentAt = ringPush(&f.recent, f.recentAt, t)
	if t.Slow {
		f.slowSeen.Add(1)
		f.slowAt = ringPush(&f.slow, f.slowAt, t)
	}
	f.mu.Unlock()
}

// ringPush appends t to a fixed-capacity ring, overwriting the oldest entry
// once full, and returns the next write index.
func ringPush(ring *[]RequestTrace, at int, t RequestTrace) int {
	r := *ring
	if len(r) < cap(r) {
		*ring = append(r, t)
		return 0
	}
	r[at] = t
	return (at + 1) % len(r)
}

// Snapshot returns the retained traces, newest first. With slowOnly it dumps
// only the SLO-violation ring.
func (f *FlightRecorder) Snapshot(slowOnly bool) []RequestTrace {
	f.mu.Lock()
	defer f.mu.Unlock()
	if slowOnly {
		return ringSnapshot(f.slow, f.slowAt)
	}
	return ringSnapshot(f.recent, f.recentAt)
}

func ringSnapshot(ring []RequestTrace, at int) []RequestTrace {
	out := make([]RequestTrace, 0, len(ring))
	// at is the oldest entry once the ring is full; walk backwards from the
	// newest so callers see recent traces first.
	for i := 0; i < len(ring); i++ {
		out = append(out, ring[(at-1-i+2*len(ring))%len(ring)])
	}
	return out
}

// FlightRecorderStats summarises the recorder for /statusz.
type FlightRecorderStats struct {
	// Recorded counts every trace ever recorded.
	Recorded int64 `json:"recorded"`
	// Slow counts traces that breached the SLO.
	Slow int64 `json:"slow"`
	// Retained and RetainedSlow are the current ring populations.
	Retained     int `json:"retained"`
	RetainedSlow int `json:"retained_slow"`
	// Capacity is the per-ring capacity.
	Capacity int `json:"capacity"`
	// SLOMillis is the slow threshold in milliseconds (0 = disabled).
	SLOMillis float64 `json:"slo_ms"`
}

// Stats returns the recorder's counters.
func (f *FlightRecorder) Stats() FlightRecorderStats {
	f.mu.Lock()
	retained, retainedSlow, capacity := len(f.recent), len(f.slow), cap(f.recent)
	f.mu.Unlock()
	return FlightRecorderStats{
		Recorded:     f.recorded.Load(),
		Slow:         f.slowSeen.Load(),
		Retained:     retained,
		RetainedSlow: retainedSlow,
		Capacity:     capacity,
		SLOMillis:    f.slo * 1e3,
	}
}

// Trace-ID generation: a per-process random prefix plus a counter, so IDs
// are unique across restarts without per-request entropy reads.
var (
	traceIDPrefix = func() uint32 {
		var b [4]byte
		if _, err := rand.Read(b[:]); err != nil {
			return uint32(time.Now().UnixNano())
		}
		return binary.LittleEndian.Uint32(b[:])
	}()
	traceIDCounter atomic.Uint64
)

// NewTraceID returns a fresh process-unique trace ID ("xxxxxxxx-n").
func NewTraceID() string {
	return fmt.Sprintf("%08x-%d", traceIDPrefix, traceIDCounter.Add(1))
}
