package telemetry

// The standard SHMT metric set. Everything registers into Default at init so
// the Prometheus endpoint and run reports always expose the full schema;
// series appear with zero values until the instrumented path runs.
var (
	// Engine lifecycle.

	// Runs counts completed VOP executions per scheduling policy.
	Runs = Default.NewCounterVec("shmt_runs_total",
		"Completed VOP executions by scheduling policy.", "policy")
	// HLOPsExecuted counts HLOP executions per device.
	HLOPsExecuted = Default.NewCounterVec("shmt_hlops_executed_total",
		"HLOP executions by device.", "device")
	// HLOPsAssigned counts the policy's initial HLOP→queue assignments per
	// device (before any stealing rebalances them).
	HLOPsAssigned = Default.NewCounterVec("shmt_hlops_assigned_total",
		"Initial HLOP queue assignments by device.", "device")
	// CriticalHLOPs counts partitions the policy classified critical.
	CriticalHLOPs = Default.NewCounter("shmt_hlops_critical_total",
		"HLOPs classified critical by the active policy.")
	// HLOPSplits counts HLOPs re-partitioned after overflowing device memory.
	HLOPSplits = Default.NewCounter("shmt_hlop_splits_total",
		"HLOPs split after exceeding device memory.")
	// HLOPRetries counts failed dispatches requeued on a fallback device.
	HLOPRetries = Default.NewCounter("shmt_hlop_retries_total",
		"Failed HLOP dispatches requeued on a fallback device.")
	// PhaseSeconds observes wall-clock durations of the four VOP lifecycle
	// phases (partition, schedule, execute, aggregate).
	PhaseSeconds = Default.NewHistogramVec("shmt_vop_phase_seconds",
		"Wall-clock duration of VOP lifecycle phases.", "phase",
		ExpBuckets(1e-6, 4, 12))

	// Scheduler decisions.

	// StealAttempts counts victim-selection scans by idle devices.
	StealAttempts = Default.NewCounter("shmt_steal_attempts_total",
		"Work-steal victim scans by idle devices.")
	// Steals counts successful steals per thief device.
	Steals = Default.NewCounterVec("shmt_steals_total",
		"Successful work steals by thief device.", "device")
	// StealRejected counts steals vetoed by the policy's quality constraint
	// (CanSteal returned false for an otherwise available item).
	StealRejected = Default.NewCounter("shmt_steals_rejected_total",
		"Steal candidates vetoed by the policy's quality constraint.")
	// SampledPartitions counts partitions whose criticality QAWS sampled.
	SampledPartitions = Default.NewCounter("shmt_sampling_partitions_total",
		"Partitions sampled for criticality by QAWS.")
	// SampleTouches counts the elements those samples touched.
	SampleTouches = Default.NewCounter("shmt_sampling_touches_total",
		"Elements touched by QAWS criticality sampling.")
	// Criticality observes the sampled per-partition criticality values.
	Criticality = Default.NewHistogram("shmt_sampling_criticality",
		"Sampled partition criticality distribution.",
		ExpBuckets(1e-3, 4, 10))

	// Device queues (concurrent engine).

	// QueueDepth gauges the incoming-queue depth per device.
	QueueDepth = Default.NewGaugeVec("shmt_queue_depth",
		"Incoming task-queue depth by device.", "device")
	// QueueWaitSeconds observes wall-clock queue residency per device: the
	// time from Push to Pop/Steal in the concurrent engine.
	QueueWaitSeconds = Default.NewHistogramVec("shmt_queue_wait_seconds",
		"Wall-clock time tasks wait in a device's incoming queue.", "device",
		ExpBuckets(1e-6, 4, 12))

	// Host execution (internal/parallel).

	// WorkerBusyNanos accumulates wall nanoseconds host workers spent running
	// kernel chunks (utilization = rate over wall time × workers).
	WorkerBusyNanos = Default.NewCounter("shmt_worker_busy_nanoseconds_total",
		"Wall nanoseconds host pool workers spent executing kernel chunks.")
	// WorkerChunks counts kernel chunks executed by the host pool.
	WorkerChunks = Default.NewCounter("shmt_worker_chunks_total",
		"Kernel chunks executed by the host worker pool.")

	// Tensor arena.

	// ArenaHits counts scratch-buffer requests served from the arena, by
	// buffer kind (float64, complex128, matrix).
	ArenaHits = Default.NewCounterVec("shmt_arena_hits_total",
		"Scratch-buffer requests served from the arena.", "kind")
	// ArenaMisses counts requests that fell through to the allocator.
	ArenaMisses = Default.NewCounterVec("shmt_arena_misses_total",
		"Scratch-buffer requests that allocated fresh memory.", "kind")
	// ArenaHitBytes accumulates bytes served from pooled buffers.
	ArenaHitBytes = Default.NewCounter("shmt_arena_hit_bytes_total",
		"Bytes served from pooled arena buffers.")
	// ArenaMissBytes accumulates bytes that had to be freshly allocated.
	ArenaMissBytes = Default.NewCounter("shmt_arena_miss_bytes_total",
		"Bytes freshly allocated on arena miss.")

	// Data path (zero-copy partitioning).

	// DatapathBytesAliased accumulates logical bytes served zero-copy through
	// strided views instead of staging copies, on both the partition (input)
	// and aggregate (output) sides.
	DatapathBytesAliased = Default.NewCounter("shmt_datapath_bytes_aliased_total",
		"Partition/aggregate bytes aliased through strided views instead of copied.")
	// DatapathBytesCopied accumulates bytes moved by materialized partition
	// gathers and aggregate scatters (the cudaMemcpy2D-style path).
	DatapathBytesCopied = Default.NewCounter("shmt_datapath_bytes_copied_total",
		"Partition/aggregate bytes moved by strided staging copies.")
	// DatapathCopiesAvoided counts individual staging copies (one gather or
	// scatter each) eliminated by view aliasing.
	DatapathCopiesAvoided = Default.NewCounter("shmt_datapath_copies_avoided_total",
		"Staging copies eliminated by view aliasing.")

	// Fault handling & graceful degradation.

	// BreakerState gauges each device's circuit-breaker state
	// (0 closed, 1 open/quarantined, 2 half-open/probing).
	BreakerState = Default.NewGaugeVec("shmt_breaker_state",
		"Per-device circuit-breaker state (0 closed, 1 open, 2 half-open).", "device")
	// BreakerOpens counts breaker open transitions (quarantines) per device.
	BreakerOpens = Default.NewCounterVec("shmt_breaker_opens_total",
		"Circuit-breaker open transitions (device quarantines).", "device")
	// BreakerProbeSuccess counts half-open probes that re-admitted a device.
	BreakerProbeSuccess = Default.NewCounter("shmt_breaker_probe_success_total",
		"Half-open probes that re-admitted a quarantined device.")
	// BreakerProbeFailure counts half-open probes that re-opened the breaker.
	BreakerProbeFailure = Default.NewCounter("shmt_breaker_probe_failure_total",
		"Half-open probes that failed and re-opened the breaker.")
	// FailedDispatches counts failed HLOP dispatches per device (both engines
	// charge the dispatch overhead for these; see DESIGN.md "Fault model").
	FailedDispatches = Default.NewCounterVec("shmt_failed_dispatches_total",
		"Failed HLOP dispatches by device.", "device")
	// FailedDispatchVirtualNanos accumulates the virtual nanoseconds charged
	// for failed dispatches (dispatch overhead plus retry backoff).
	FailedDispatchVirtualNanos = Default.NewCounter("shmt_failed_dispatch_virtual_nanoseconds_total",
		"Virtual nanoseconds charged to devices for failed dispatches (overhead + backoff).")
	// Backoffs counts exponential-backoff waits after transient errors.
	Backoffs = Default.NewCounter("shmt_backoffs_total",
		"Exponential-backoff waits charged after transient dispatch errors.")
	// BackoffVirtualNanos accumulates virtual nanoseconds spent backing off.
	BackoffVirtualNanos = Default.NewCounter("shmt_backoff_virtual_nanoseconds_total",
		"Virtual nanoseconds devices spent in exponential backoff.")
	// HLOPsRerouted counts HLOPs redistributed off a failing or quarantined
	// device, labelled by the device the work was moved away from.
	HLOPsRerouted = Default.NewCounterVec("shmt_hlops_rerouted_total",
		"HLOPs redistributed off a failing or quarantined device.", "device")

	// Chaos (fault injection; see internal/chaos).

	// ChaosInjected counts injected faults by mode (transient, dead, spike,
	// corrupt).
	ChaosInjected = Default.NewCounterVec("shmt_chaos_injected_total",
		"Faults injected by the chaos layer, by mode.", "mode")

	// Serving layer (internal/serve).

	// ServeRequests counts serving-layer requests by outcome (ok, shed,
	// timeout, canceled, draining, invalid, error).
	ServeRequests = Default.NewCounterVec("shmt_serve_requests_total",
		"Serving-layer requests by outcome.", "outcome")
	// ServeQueueDepth gauges the admission queue's current depth.
	ServeQueueDepth = Default.NewGauge("shmt_serve_queue_depth",
		"Requests waiting in the serving layer's admission queue.")
	// ServeBatchRounds counts dispatched micro-batch rounds.
	ServeBatchRounds = Default.NewCounter("shmt_serve_batches_total",
		"Micro-batch rounds dispatched to the engine.")
	// ServeBatchSize observes how many requests each round coalesced
	// (sum > count in the exposition means multi-request rounds happened).
	ServeBatchSize = Default.NewHistogram("shmt_serve_batch_size",
		"Requests coalesced per micro-batch round.",
		ExpBuckets(1, 2, 8))
	// ServeRequestSeconds observes end-to-end wall latency per request
	// (admission wait + batch execution + response).
	ServeRequestSeconds = Default.NewHistogram("shmt_serve_request_seconds",
		"End-to-end wall-clock request latency in the serving layer.",
		ExpBuckets(1e-4, 4, 12))

	// Multi-tenant QoS (per-tenant admission queues; requests without an
	// X-SHMT-Tenant header count under "default").

	// ServeTenantRequests counts serving-layer requests per tenant.
	ServeTenantRequests = Default.NewCounterVec("shmt_serve_tenant_requests_total",
		"Serving-layer requests by tenant.", "tenant")
	// ServeTenantShed counts requests refused because their tenant's
	// admission queue was at its configured depth.
	ServeTenantShed = Default.NewCounterVec("shmt_serve_tenant_shed_total",
		"Requests shed at admission because the tenant's queue was full.", "tenant")
	// ServeTenantDispatched counts requests the deficit-weighted round-robin
	// dispatcher popped per tenant — under backlog the per-tenant rates
	// track the configured weights.
	ServeTenantDispatched = Default.NewCounterVec("shmt_serve_tenant_dispatched_total",
		"Requests dispatched into micro-batch rounds, by tenant.", "tenant")
	// ServeTenantQueueDepth gauges each tenant queue's current depth.
	ServeTenantQueueDepth = Default.NewGaugeVec("shmt_serve_tenant_queue_depth",
		"Requests waiting in each tenant's admission queue.", "tenant")

	// Router tier (internal/cluster, cmd/shmtrouterd).

	// RouterRequests counts routed requests by outcome (ok, failover_ok —
	// answered after at least one backend failover —, invalid, unavailable,
	// error, draining).
	RouterRequests = Default.NewCounterVec("shmt_router_requests_total",
		"Router-tier requests by outcome.", "outcome")
	// RouterBackendRequests counts dispatch attempts per backend.
	RouterBackendRequests = Default.NewCounterVec("shmt_router_backend_requests_total",
		"Router dispatch attempts by backend.", "backend")
	// RouterBackendErrors counts failed dispatch attempts per backend
	// (transport errors and 5xx refusals that trigger failover).
	RouterBackendErrors = Default.NewCounterVec("shmt_router_backend_errors_total",
		"Failed router dispatch attempts by backend.", "backend")
	// RouterFailovers counts requests re-dispatched to a replica after their
	// first-choice backend failed mid-request.
	RouterFailovers = Default.NewCounter("shmt_router_failovers_total",
		"Requests re-dispatched to a replica backend after a dispatch failure.")
	// RouterRehashes counts requests whose key landed off its primary ring
	// position because the primary was quarantined or over the bounded-load
	// ceiling.
	RouterRehashes = Default.NewCounter("shmt_router_rehash_total",
		"Requests rehashed off their primary backend (quarantine or bounded-load overflow).")
	// RouterBreakerState gauges each backend's circuit-breaker state
	// (0 closed, 1 open/quarantined, 2 half-open/probing).
	RouterBreakerState = Default.NewGaugeVec("shmt_router_breaker_state",
		"Per-backend circuit-breaker state (0 closed, 1 open, 2 half-open).", "backend")
	// RouterBreakerOpens counts breaker open transitions per backend.
	RouterBreakerOpens = Default.NewCounterVec("shmt_router_breaker_opens_total",
		"Circuit-breaker open transitions (backend quarantines).", "backend")
	// RouterReadmissions counts quarantined backends returned to service by a
	// successful health probe.
	RouterReadmissions = Default.NewCounter("shmt_router_readmissions_total",
		"Quarantined backends re-admitted by a successful health probe.")
	// RouterProbes counts backend health probes by result (ok, fail).
	RouterProbes = Default.NewCounterVec("shmt_router_probes_total",
		"Backend health probes by result.", "result")
	// RouterBackends gauges the currently registered backend count.
	RouterBackends = Default.NewGauge("shmt_router_backends",
		"Backends currently registered with the router.")
	// RouterBackendsHealthy gauges the registered backends whose breaker is
	// not open.
	RouterBackendsHealthy = Default.NewGauge("shmt_router_backends_healthy",
		"Registered backends whose circuit breaker is closed or half-open.")
	// RouterScatterRequests counts requests the router executed scatter-gather
	// across multiple backends.
	RouterScatterRequests = Default.NewCounter("shmt_router_scatter_requests_total",
		"Requests partitioned and scatter-gathered across multiple backends.")
	// RouterScatterFanout observes how many partitions each scatter-gathered
	// request fanned out into.
	RouterScatterFanout = Default.NewHistogram("shmt_router_scatter_fanout",
		"Partitions dispatched per scatter-gathered request.",
		ExpBuckets(1, 2, 6))
	// RouterScatterTransferVirtualNanos accumulates the modelled
	// network-transfer time the interconnect cost model priced for
	// scatter-gather payloads.
	RouterScatterTransferVirtualNanos = Default.NewCounter("shmt_router_scatter_transfer_virtual_nanoseconds_total",
		"Modelled cluster-network transfer virtual nanoseconds priced for scatter-gather payloads.")
	// RouterRequestSeconds observes end-to-end wall latency per routed request.
	RouterRequestSeconds = Default.NewHistogram("shmt_router_request_seconds",
		"End-to-end wall-clock request latency at the router tier.",
		ExpBuckets(1e-4, 4, 12))
	// RouterTenantRequests counts routed requests per tenant (requests
	// without an X-SHMT-Tenant header count under "default").
	RouterTenantRequests = Default.NewCounterVec("shmt_router_tenant_requests_total",
		"Router-tier requests by tenant.", "tenant")
	// RouterTenantShed counts requests the router refused because the tenant
	// was over its configured in-flight cap.
	RouterTenantShed = Default.NewCounterVec("shmt_router_tenant_shed_total",
		"Requests shed at the router because the tenant exceeded its in-flight cap.", "tenant")

	// Input prefetch (double-buffered staging pipeline).

	// PrefetchIssued counts asynchronous input-prestage jobs issued ahead of
	// execution for private-memory devices.
	PrefetchIssued = Default.NewCounter("shmt_prefetch_issued_total",
		"Asynchronous input-prestage jobs issued ahead of HLOP execution.")
	// PrefetchHits counts HLOP executions that consumed a prestaged input
	// set instead of staging at dispatch.
	PrefetchHits = Default.NewCounter("shmt_prefetch_hits_total",
		"HLOP executions that consumed a prestaged input set.")
	// PrefetchCancelled counts prestaged input sets discarded because a
	// steal, split, reroute or end-of-run drain invalidated them.
	PrefetchCancelled = Default.NewCounter("shmt_prefetch_cancelled_total",
		"Prestaged input sets discarded after a steal or reroute invalidated them.")
	// PrefetchBufferBytes gauges the bytes currently pinned by prestaged
	// input buffers (the wall-clock side of the double-buffer staging slots).
	PrefetchBufferBytes = Default.NewGauge("shmt_prefetch_buffer_bytes",
		"Bytes currently held in prestaged (double-buffer) input staging.")

	// Execution-time cache.

	// ExecCacheHits counts memoized cost-model lookups.
	ExecCacheHits = Default.NewCounter("shmt_exec_cache_hits_total",
		"ExecTimeCache lookups served from memory.")
	// ExecCacheMisses counts lookups that ran the cost model.
	ExecCacheMisses = Default.NewCounter("shmt_exec_cache_misses_total",
		"ExecTimeCache lookups that evaluated the cost model.")
	// ExecCacheEvictions counts entries dropped by the growth cap.
	ExecCacheEvictions = Default.NewCounter("shmt_exec_cache_evictions_total",
		"ExecTimeCache entries evicted by the size cap.")

	// Execution-plan cache (internal/core plan memoization).

	// PlanCacheHits counts Execute calls that replayed a cached plan.
	PlanCacheHits = Default.NewCounter("shmt_plan_cache_hits_total",
		"VOP executions that replayed a memoized execution plan.")
	// PlanCacheMisses counts Execute calls that planned from scratch.
	PlanCacheMisses = Default.NewCounter("shmt_plan_cache_misses_total",
		"VOP executions that ran partitioning and assignment from scratch.")
	// PlanCacheEvictions counts plans dropped by the LRU size cap.
	PlanCacheEvictions = Default.NewCounter("shmt_plan_cache_evictions_total",
		"Cached execution plans evicted by the LRU size cap.")
	// PlanCacheInvalidations counts plans dropped because the device-health
	// epoch moved (a breaker opened or a device was re-admitted).
	PlanCacheInvalidations = Default.NewCounter("shmt_plan_cache_invalidations_total",
		"Cached execution plans invalidated by a device-health epoch change.")
)

// Phase label values for PhaseSeconds and host-lane spans.
const (
	PhasePartition = "partition"
	PhaseSchedule  = "schedule"
	PhaseExecute   = "execute"
	PhaseAggregate = "aggregate"
)
