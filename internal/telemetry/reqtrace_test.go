package telemetry

import (
	"strings"
	"testing"
	"time"
)

func TestFlightRecorderRingWrapNewestFirst(t *testing.T) {
	f := NewFlightRecorder(4, 0)
	for i := 0; i < 7; i++ {
		f.Record(RequestTrace{TraceID: string(rune('a' + i))})
	}
	got := f.Snapshot(false)
	if len(got) != 4 {
		t.Fatalf("retained %d traces, want ring capacity 4", len(got))
	}
	// Recorded a..g; the ring keeps the last 4 (d e f g), newest first.
	want := []string{"g", "f", "e", "d"}
	for i, tr := range got {
		if tr.TraceID != want[i] {
			t.Fatalf("snapshot[%d] = %q, want %q (full: %+v)", i, tr.TraceID, want[i], got)
		}
	}
}

func TestFlightRecorderSlowRing(t *testing.T) {
	f := NewFlightRecorder(2, 100*time.Millisecond)
	f.Record(RequestTrace{TraceID: "fast", TotalSeconds: 0.01})
	f.Record(RequestTrace{TraceID: "slow1", TotalSeconds: 0.25})
	f.Record(RequestTrace{TraceID: "fast2", TotalSeconds: 0.02})
	f.Record(RequestTrace{TraceID: "fast3", TotalSeconds: 0.03})

	// The recent ring (capacity 2) has churned past slow1, but the slow ring
	// still holds it — that is the whole point of the second ring.
	for _, tr := range f.Snapshot(false) {
		if tr.TraceID == "slow1" {
			t.Fatal("slow1 should have churned out of the recent ring")
		}
	}
	slow := f.Snapshot(true)
	if len(slow) != 1 || slow[0].TraceID != "slow1" || !slow[0].Slow {
		t.Fatalf("slow ring = %+v, want just slow1 marked Slow", slow)
	}

	st := f.Stats()
	if st.Recorded != 4 || st.Slow != 1 || st.Retained != 2 || st.RetainedSlow != 1 {
		t.Fatalf("stats = %+v", st)
	}
	if st.Capacity != 2 || st.SLOMillis != 100 {
		t.Fatalf("stats capacity/slo = %+v", st)
	}
}

func TestFlightRecorderNoSLODisablesSlowRetention(t *testing.T) {
	f := NewFlightRecorder(2, 0)
	f.Record(RequestTrace{TraceID: "x", TotalSeconds: 3600})
	if got := f.Snapshot(true); len(got) != 0 {
		t.Fatalf("slow ring with slo=0 holds %+v", got)
	}
	if f.SLO() != 0 {
		t.Fatalf("SLO() = %v, want 0", f.SLO())
	}
}

func TestNewTraceIDUnique(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
		if !strings.Contains(id, "-") {
			t.Fatalf("trace ID %q missing prefix-counter form", id)
		}
	}
}

func TestStageBreakdownSum(t *testing.T) {
	s := StageBreakdown{QueueWait: 1, BatchLinger: 2, Plan: 3, Transfer: 4, Execute: 5, Aggregate: 6}
	if s.Sum() != 21 {
		t.Fatalf("Sum() = %g, want 21", s.Sum())
	}
}
