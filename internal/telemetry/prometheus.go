package telemetry

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"strings"
	"time"
)

// Prometheus text exposition and the optional scrape endpoint. Two formats
// are rendered straight off the registry's atomics — no intermediate
// collection pass — so a scrape never blocks the runtime:
//
//   - Classic text format (version 0.0.4): the default, and what plain
//     Prometheus expects. Never carries exemplars — in 0.0.4 a '#' is only a
//     comment at line start, so a trailing exemplar annotation is a parse
//     error that fails the whole scrape.
//   - OpenMetrics (application/openmetrics-text): served when the client
//     negotiates it via Accept; carries histogram bucket exemplars and the
//     mandatory '# EOF' terminator.

// ContentType values for the two exposition formats.
const (
	ContentTypeClassic     = "text/plain; version=0.0.4; charset=utf-8"
	ContentTypeOpenMetrics = "application/openmetrics-text; version=1.0.0; charset=utf-8"
)

// WriteExposition renders every family in the registry in classic Prometheus
// text format (version 0.0.4), families and children in sorted order.
// Exemplars are never emitted here; they are OpenMetrics-only (see
// WriteOpenMetrics).
func (r *Registry) WriteExposition(w io.Writer) error {
	return r.write(w, false)
}

// WriteOpenMetrics renders the registry in OpenMetrics text format:
// histogram buckets carry their exemplars and the output ends with the
// mandatory '# EOF' terminator. Counter metadata drops the '_total' suffix
// per the OpenMetrics naming rules (samples keep it).
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	if err := r.write(w, true); err != nil {
		return err
	}
	_, err := io.WriteString(w, "# EOF\n")
	return err
}

func (r *Registry) write(w io.Writer, openMetrics bool) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		metaName := f.name
		if openMetrics && f.kind == kindCounter {
			// OpenMetrics counter families are named without the '_total'
			// suffix; the sample lines keep it.
			metaName = strings.TrimSuffix(f.name, "_total")
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", metaName, f.help, metaName, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		children := append([]*child(nil), f.children...)
		f.mu.Unlock()
		for _, c := range children {
			if err := writeChild(w, f, c, openMetrics); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child, openMetrics bool) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %s\n", c.key, formatValue(float64(c.counter.Value())))
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", c.key, formatValue(float64(c.gauge.Value())))
		return err
	case kindHistogram:
		h := c.hist
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			if err := writeBucket(w, f, c, formatValue(b), cum, h.exemplar(i), openMetrics); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if err := writeBucket(w, f, c, "+Inf", cum, h.exemplar(len(h.bounds)), openMetrics); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", c.keySum, formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", c.keyCount, h.Count())
		return err
	}
	return nil
}

func writeBucket(w io.Writer, f *family, c *child, le string, cum int64, ex *Exemplar, openMetrics bool) error {
	// Exemplar annotations are valid OpenMetrics only; the classic 0.0.4
	// format has no exemplar syntax and real Prometheus rejects the line.
	suffix := ""
	if openMetrics && ex != nil {
		suffix = fmt.Sprintf(" # {trace_id=%q} %s", ex.TraceID, formatValue(ex.Value))
	}
	if f.labelKey == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", f.name, le, cum, suffix)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d%s\n", f.name, f.labelKey, c.labelValue, le, cum, suffix)
	return err
}

// ExpositionHandler returns an http.HandlerFunc that serves the registry
// with content negotiation: clients whose Accept header names
// application/openmetrics-text get the OpenMetrics rendering (exemplars,
// '# EOF'); everyone else gets the classic 0.0.4 text format, which stays
// free of exemplar annotations so plain Prometheus scrapes never break.
func ExpositionHandler(reg *Registry) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		if acceptsOpenMetrics(r.Header.Get("Accept")) {
			w.Header().Set("Content-Type", ContentTypeOpenMetrics)
			_ = reg.WriteOpenMetrics(w)
			return
		}
		w.Header().Set("Content-Type", ContentTypeClassic)
		_ = reg.WriteExposition(w)
	}
}

// acceptsOpenMetrics reports whether an Accept header value negotiates the
// OpenMetrics exposition. A plain substring scan over the media ranges is
// enough here: a client that lists application/openmetrics-text at all is a
// Prometheus-lineage scraper that can parse it.
func acceptsOpenMetrics(accept string) bool {
	for _, part := range strings.Split(accept, ",") {
		mt := strings.TrimSpace(part)
		if i := strings.IndexByte(mt, ';'); i >= 0 {
			mt = strings.TrimSpace(mt[:i])
		}
		if mt == "application/openmetrics-text" {
			return true
		}
	}
	return false
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Server is the optional metrics HTTP listener (SHMT_METRICS_ADDR /
// Config.Telemetry.MetricsAddr). It serves the Default registry on /metrics
// and a liveness line on /.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts a metrics listener on addr (host:port; port 0 picks a free
// port). It returns once the listener is bound; scraping runs in the
// background until Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", ExpositionHandler(Default))
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "shmt telemetry; scrape /metrics")
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
