package telemetry

import (
	"fmt"
	"io"
	"math"
	"net"
	"net/http"
	"strconv"
	"time"
)

// Prometheus text exposition (version 0.0.4) and the optional scrape
// endpoint. The writer renders straight off the registry's atomics — no
// intermediate collection pass — so a scrape never blocks the runtime.

// WriteExposition renders every family in the registry in Prometheus text
// format, families and children in sorted order.
func (r *Registry) WriteExposition(w io.Writer) error {
	r.mu.Lock()
	fams := append([]*family(nil), r.families...)
	r.mu.Unlock()
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, f.kind); err != nil {
			return err
		}
		f.mu.Lock()
		children := append([]*child(nil), f.children...)
		f.mu.Unlock()
		for _, c := range children {
			if err := writeChild(w, f, c); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeChild(w io.Writer, f *family, c *child) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s %s\n", c.key, formatValue(float64(c.counter.Value())))
		return err
	case kindGauge:
		_, err := fmt.Fprintf(w, "%s %s\n", c.key, formatValue(float64(c.gauge.Value())))
		return err
	case kindHistogram:
		h := c.hist
		cum := int64(0)
		for i, b := range h.bounds {
			cum += h.buckets[i].Load()
			if err := writeBucket(w, f, c, formatValue(b), cum, h.exemplar(i)); err != nil {
				return err
			}
		}
		cum += h.buckets[len(h.bounds)].Load()
		if err := writeBucket(w, f, c, "+Inf", cum, h.exemplar(len(h.bounds))); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s %s\n", c.keySum, formatValue(h.Sum())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s %d\n", c.keyCount, h.Count())
		return err
	}
	return nil
}

func writeBucket(w io.Writer, f *family, c *child, le string, cum int64, ex *Exemplar) error {
	// OpenMetrics-style exemplar annotation; plain-text Prometheus parsers
	// treat everything after '#' as a comment, so the suffix is additive.
	suffix := ""
	if ex != nil {
		suffix = fmt.Sprintf(" # {trace_id=%q} %s", ex.TraceID, formatValue(ex.Value))
	}
	if f.labelKey == "" {
		_, err := fmt.Fprintf(w, "%s_bucket{le=%q} %d%s\n", f.name, le, cum, suffix)
		return err
	}
	_, err := fmt.Fprintf(w, "%s_bucket{%s=%q,le=%q} %d%s\n", f.name, f.labelKey, c.labelValue, le, cum, suffix)
	return err
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatInt(int64(v), 10)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// Server is the optional metrics HTTP listener (SHMT_METRICS_ADDR /
// Config.Telemetry.MetricsAddr). It serves the Default registry on /metrics
// and a liveness line on /.
type Server struct {
	ln  net.Listener
	srv *http.Server
}

// Serve starts a metrics listener on addr (host:port; port 0 picks a free
// port). It returns once the listener is bound; scraping runs in the
// background until Close.
func Serve(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("telemetry: metrics listener: %w", err)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = Default.WriteExposition(w)
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "shmt telemetry; scrape /metrics")
	})
	s := &Server{ln: ln, srv: &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}}
	go func() { _ = s.srv.Serve(ln) }()
	return s, nil
}

// Addr returns the bound listen address (useful with port 0).
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Close shuts the listener down.
func (s *Server) Close() error { return s.srv.Close() }
