package telemetry

import (
	"bytes"
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// fixedRecorder builds a recorder with a deterministic span set covering all
// export features: two virtual device lanes, a transfer sub-lane whose in:
// span hides under the previous HLOP's compute, a steal (with flow arrow), a
// critical HLOP, and wall-clock host phases.
func fixedRecorder() *Recorder {
	rec := &Recorder{}
	rec.RecordSpan(Span{Track: "gpu", Name: "Sobel", Clock: ClockVirtual, Start: 0, End: 0.004, ID: 0})
	rec.RecordSpan(Span{Track: "gpu xfer", Name: "in:Sobel", Clock: ClockVirtual, Start: 0.002, End: 0.004, ID: 2})
	rec.RecordSpan(Span{Track: "gpu", Name: "Sobel", Clock: ClockVirtual, Start: 0.004, End: 0.007, ID: 2, Critical: true})
	rec.RecordSpan(Span{Track: "tpu", Name: "Sobel", Clock: ClockVirtual, Start: 0, End: 0.005, ID: 1})
	rec.RecordSpan(Span{Track: "tpu", Name: "Sobel", Clock: ClockVirtual, Start: 0.005, End: 0.009, ID: 3, StealFrom: "gpu"})
	rec.RecordSpan(Span{Track: "host", Name: PhasePartition, Clock: ClockWall, Start: 0, End: 0.001})
	rec.RecordSpan(Span{Track: "host", Name: PhaseSchedule, Clock: ClockWall, Start: 0.001, End: 0.002})
	rec.RecordSpan(Span{Track: "host", Name: PhaseExecute, Clock: ClockWall, Start: 0.002, End: 0.010})
	rec.RecordSpan(Span{Track: "host", Name: PhaseAggregate, Clock: ClockWall, Start: 0.010, End: 0.011})
	return rec
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name)
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run go test -run %s -update): %v", t.Name(), err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("output differs from %s (re-run with -update after intentional changes)\ngot:\n%s", path, got)
	}
}

func TestPerfettoGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedRecorder().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "perfetto.golden.json", buf.Bytes())
}

// TestPerfettoSchema round-trips the export through the trace-event schema
// and checks the structural guarantees Perfetto relies on: two processes
// (virtual/wall), named lanes, complete events, and paired steal flows.
func TestPerfettoSchema(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedRecorder().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("export is not valid trace-event JSON: %v", err)
	}
	if tf.DisplayTimeUnit != "ms" {
		t.Fatalf("displayTimeUnit = %q", tf.DisplayTimeUnit)
	}

	procs := map[int]string{}
	lanes := map[int]map[string]int{} // pid -> lane name -> tid
	var complete, flowStarts, flowEnds []TraceEvent
	for _, ev := range tf.TraceEvents {
		switch ev.Ph {
		case "M":
			switch ev.Name {
			case "process_name":
				procs[ev.PID] = ev.Args["name"].(string)
			case "thread_name":
				if lanes[ev.PID] == nil {
					lanes[ev.PID] = map[string]int{}
				}
				lanes[ev.PID][ev.Args["name"].(string)] = ev.TID
			}
		case "X":
			complete = append(complete, ev)
		case "s":
			flowStarts = append(flowStarts, ev)
		case "f":
			flowEnds = append(flowEnds, ev)
		default:
			t.Fatalf("unexpected phase %q", ev.Ph)
		}
	}

	if procs[perfettoVirtualPID] != "shmt virtual devices" || procs[perfettoWallPID] != "shmt host (wall clock)" {
		t.Fatalf("process metadata wrong: %v", procs)
	}
	for _, lane := range []string{"gpu", "gpu xfer", "tpu"} {
		if _, ok := lanes[perfettoVirtualPID][lane]; !ok {
			t.Fatalf("virtual process missing %s lane: %v", lane, lanes)
		}
	}
	if _, ok := lanes[perfettoWallPID]["host"]; !ok {
		t.Fatalf("wall process missing host lane: %v", lanes)
	}
	if len(complete) != 9 {
		t.Fatalf("complete events = %d, want 9 (one per span)", len(complete))
	}
	for _, ev := range complete {
		if ev.Dur <= 0 {
			t.Fatalf("non-positive duration: %+v", ev)
		}
		if ev.PID == perfettoVirtualPID {
			if _, ok := ev.Args["hlop"]; !ok {
				t.Fatalf("virtual span missing hlop id: %+v", ev)
			}
		}
	}

	// Exactly one steal in the fixture: one s/f pair, same flow id, victim
	// lane (gpu) -> thief lane (tpu), binding point "e".
	if len(flowStarts) != 1 || len(flowEnds) != 1 {
		t.Fatalf("steal flows = %d starts, %d ends; want 1 each", len(flowStarts), len(flowEnds))
	}
	s, f := flowStarts[0], flowEnds[0]
	if s.ID != f.ID || s.ID == 0 {
		t.Fatalf("flow ids unpaired: s=%d f=%d", s.ID, f.ID)
	}
	if s.TID != lanes[perfettoVirtualPID]["gpu"] || f.TID != lanes[perfettoVirtualPID]["tpu"] {
		t.Fatalf("flow lanes wrong: s.tid=%d f.tid=%d lanes=%v", s.TID, f.TID, lanes)
	}
	if f.BP != "e" {
		t.Fatalf("flow end binding point = %q, want \"e\"", f.BP)
	}

	// The stolen span itself carries the victim name.
	var found bool
	for _, ev := range complete {
		if ev.Args["stolen_from"] == "gpu" {
			found = true
			if ev.Args["hlop"] != float64(3) {
				t.Fatalf("stolen span has hlop %v, want 3", ev.Args["hlop"])
			}
		}
	}
	if !found {
		t.Fatal("no span carries stolen_from")
	}
}

// TestPerfettoStealCreatesVictimLane checks that the victim lane exists even
// when the victim never executed anything itself — the flow arrow needs a
// source lane to bind to.
func TestPerfettoStealCreatesVictimLane(t *testing.T) {
	rec := &Recorder{}
	rec.RecordSpan(Span{Track: "tpu", Name: "FFT", Clock: ClockVirtual, Start: 0, End: 1, ID: 0, StealFrom: "cpu"})
	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	var hasVictimLane bool
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.Args["name"] == "cpu" {
			hasVictimLane = true
		}
	}
	if !hasVictimLane {
		t.Fatal("victim lane not materialized for steal flow")
	}
}

func TestPerfettoDeterministic(t *testing.T) {
	render := func() string {
		var buf bytes.Buffer
		if err := fixedRecorder().WritePerfetto(&buf); err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	if render() != render() {
		t.Fatal("export is not byte-deterministic")
	}
}

// TestPerfettoRequestLanes: root spans sharing a trace ID form one lane per
// request under the dedicated pid-3 process, with stage slices on the lane
// and flow arrows from the request to every engine span carrying its ID.
func TestPerfettoRequestLanes(t *testing.T) {
	rec := &Recorder{}
	// Request lane: root request span plus two stage slices.
	rec.RecordSpan(Span{Name: "request sobel", Clock: ClockWall, Start: 0, End: 0.010, TraceID: "t-1", Root: true})
	rec.RecordSpan(Span{Name: "queue_wait", Clock: ClockWall, Start: 0.001, End: 0.002, TraceID: "t-1", Root: true})
	rec.RecordSpan(Span{Name: "execute", Clock: ClockWall, Start: 0.002, End: 0.009, TraceID: "t-1", Root: true})
	// A second request on its own lane.
	rec.RecordSpan(Span{Name: "request add", Clock: ClockWall, Start: 0.003, End: 0.008, TraceID: "t-2", Root: true})
	// Engine spans attributed to the first request.
	rec.RecordSpan(Span{Track: "gpu", Name: "Sobel", Clock: ClockVirtual, Start: 0, End: 0.004, ID: 0, TraceID: "t-1"})
	rec.RecordSpan(Span{Track: "tpu", Name: "Sobel", Clock: ClockVirtual, Start: 0, End: 0.005, ID: 1, TraceID: "t-1"})
	// Untraced engine span: no arrow, no trace_id arg.
	rec.RecordSpan(Span{Track: "host", Name: PhaseExecute, Clock: ClockWall, Start: 0, End: 0.01})

	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("invalid trace-event JSON: %v", err)
	}

	lanes := map[string]int{} // request lane name -> tid
	slicesByTID := map[int][]string{}
	var starts, finishes int
	for _, ev := range tf.TraceEvents {
		switch {
		case ev.Ph == "M" && ev.Name == "thread_name" && ev.PID == 3:
			lanes[ev.Args["name"].(string)] = ev.TID
		case ev.Ph == "X" && ev.PID == 3:
			slicesByTID[ev.TID] = append(slicesByTID[ev.TID], ev.Name)
			if ev.Args["trace_id"] == nil {
				t.Fatalf("request slice without trace_id arg: %+v", ev)
			}
		case ev.Ph == "s" && ev.Name == "request":
			if ev.PID != 3 {
				t.Fatalf("request flow must start on the request process: %+v", ev)
			}
			starts++
		case ev.Ph == "f" && ev.Name == "request":
			if ev.PID != 1 {
				t.Fatalf("request flow must finish on an engine lane: %+v", ev)
			}
			finishes++
		}
	}
	if len(lanes) != 2 {
		t.Fatalf("request lanes = %v, want one per trace ID", lanes)
	}
	t1 := slicesByTID[lanes["t-1"]]
	if len(t1) != 3 {
		t.Fatalf("t-1 lane slices = %v, want request + 2 stages", t1)
	}
	if got := slicesByTID[lanes["t-2"]]; len(got) != 1 || got[0] != "request add" {
		t.Fatalf("t-2 lane slices = %v", got)
	}
	// Two engine spans carry t-1, none carry t-2: two arrow pairs total.
	if starts != 2 || finishes != 2 {
		t.Fatalf("request flow arrows: %d starts, %d finishes, want 2/2", starts, finishes)
	}
}

// TestPerfettoNoRequestsOmitsRequestProcess: without root spans the export
// must not mention pid 3 at all — the golden file guards the byte layout,
// this guards the semantic.
func TestPerfettoNoRequestsOmitsRequestProcess(t *testing.T) {
	var buf bytes.Buffer
	if err := fixedRecorder().WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var tf TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	for _, ev := range tf.TraceEvents {
		if ev.PID == 3 {
			t.Fatalf("request process emitted without any root spans: %+v", ev)
		}
	}
}
