package telemetry

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

// withTelemetry enables the gate for one test and restores the disabled
// default afterwards. Tests in this package must not run in parallel: the
// gate is process-wide.
func withTelemetry(t *testing.T) {
	t.Helper()
	Enable()
	t.Cleanup(Disable)
}

func TestGateDisabledIsInert(t *testing.T) {
	Disable()
	r := NewRegistry()
	c := r.NewCounter("t_c", "c")
	g := r.NewGauge("t_g", "g")
	h := r.NewHistogram("t_h", "h", []float64{1, 10})

	c.Inc()
	c.Add(5)
	g.Set(7)
	g.Add(3)
	h.Observe(0.5)

	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatalf("disabled instrumentation mutated state: c=%d g=%d h=%d/%g",
			c.Value(), g.Value(), h.Count(), h.Sum())
	}
}

func TestCounterGaugeEnabled(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := r.NewCounter("t_c", "c")
	g := r.NewGauge("t_g", "g")

	c.Inc()
	c.Add(41)
	if c.Value() != 42 {
		t.Fatalf("counter = %d, want 42", c.Value())
	}
	g.Set(10)
	g.Add(-3)
	if g.Value() != 7 {
		t.Fatalf("gauge = %d, want 7", g.Value())
	}
}

func TestHistogramBucketsAndSum(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	h := r.NewHistogram("t_h", "h", []float64{1, 10, 100})

	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if h.Sum() != 556.5 {
		t.Fatalf("sum = %g, want 556.5", h.Sum())
	}
	// Bucket semantics are le (inclusive upper bound): 0.5 and 1 land in the
	// le=1 bucket, 5 in le=10, 50 in le=100, 500 in +Inf.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if got := h.buckets[i].Load(); got != w {
			t.Fatalf("bucket[%d] = %d, want %d", i, got, w)
		}
	}
}

func TestVecResolvesStableChildren(t *testing.T) {
	r := NewRegistry()
	v := r.NewCounterVec("t_v", "v", "device")
	a1, a2, b := v.With("gpu"), v.With("gpu"), v.With("tpu")
	if a1 != a2 {
		t.Fatal("With must return the same child for the same label")
	}
	if a1 == b {
		t.Fatal("distinct labels must get distinct children")
	}
	gv := r.NewGaugeVec("t_gv", "gv", "device")
	if gv.With("x") != gv.With("x") {
		t.Fatal("gauge vec children not stable")
	}
	hv := r.NewHistogramVec("t_hv", "hv", "device", []float64{1})
	if hv.With("x") != hv.With("x") {
		t.Fatal("histogram vec children not stable")
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1e-6, 4, 5)
	if len(b) != 5 {
		t.Fatalf("len = %d", len(b))
	}
	for i := 1; i < len(b); i++ {
		if b[i] <= b[i-1] {
			t.Fatalf("bounds not ascending: %v", b)
		}
		if got, want := b[i]/b[i-1], 4.0; got < want*0.999 || got > want*1.001 {
			t.Fatalf("ratio %g, want 4", got)
		}
	}
	// Degenerate parameters collapse to a single bucket rather than panicking.
	if got := ExpBuckets(0, 4, 5); len(got) != 1 {
		t.Fatalf("degenerate start: %v", got)
	}
	if got := ExpBuckets(1, 1, 5); len(got) != 1 {
		t.Fatalf("degenerate factor: %v", got)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("dup", "first")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate metric name must panic")
		}
	}()
	r.NewGauge("dup", "second")
}

func TestSnapshotDelta(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := r.NewCounter("s_c", "c")
	v := r.NewCounterVec("s_v", "v", "device")
	h := r.NewHistogram("s_h", "h", []float64{1})
	c.Add(3)
	v.With("gpu").Inc()

	base := r.Snapshot()
	c.Add(2)
	v.With("tpu").Add(7)
	h.Observe(0.5)
	d := r.Snapshot().Delta(base)

	want := Snapshot{
		"s_c":               2,
		`s_v{device="tpu"}`: 7,
		"s_h_count":         1,
		"s_h_sum":           0.5,
	}
	if len(d) != len(want) {
		t.Fatalf("delta = %v, want %v", d, want)
	}
	for k, v := range want {
		if d[k] != v {
			t.Fatalf("delta[%s] = %g, want %g", k, d[k], v)
		}
	}
	if _, ok := d[`s_v{device="gpu"}`]; ok {
		t.Fatal("unchanged series must not appear in the delta")
	}
}

func TestSeriesKeyFormat(t *testing.T) {
	if got := seriesKey("m", "", ""); got != "m" {
		t.Fatalf("unlabelled key = %q", got)
	}
	if got, want := seriesKey("m", "device", "gpu"), `m{device="gpu"}`; got != want {
		t.Fatalf("labelled key = %q, want %q", got, want)
	}
}

// TestDisabledPathAllocatesNothing is the observability contract: with the
// gate off, every hot-path instrument op costs one atomic load and zero
// allocations (ISSUE acceptance criterion).
func TestDisabledPathAllocatesNothing(t *testing.T) {
	Disable()
	r := NewRegistry()
	c := r.NewCounter("a_c", "c")
	g := r.NewGauge("a_g", "g")
	h := r.NewHistogram("a_h", "h", ExpBuckets(1e-6, 4, 12))
	vc := r.NewCounterVec("a_v", "v", "device").With("gpu") // resolved at setup

	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		g.Add(-1)
		h.Observe(0.5)
		vc.Add(2)
	}); n != 0 {
		t.Fatalf("disabled instrumentation allocated %v times per op", n)
	}
}

// TestEnabledHotPathAllocatesNothing checks design rule 2: even enabled,
// counters/gauges/histograms never allocate on the hot path (label lookups
// are resolved at setup time).
func TestEnabledHotPathAllocatesNothing(t *testing.T) {
	withTelemetry(t)
	r := NewRegistry()
	c := r.NewCounter("e_c", "c")
	g := r.NewGauge("e_g", "g")
	h := r.NewHistogram("e_h", "h", ExpBuckets(1e-6, 4, 12))
	vc := r.NewCounterVec("e_v", "v", "device").With("gpu")

	if n := testing.AllocsPerRun(1000, func() {
		c.Inc()
		g.Add(1)
		h.Observe(3e-4)
		vc.Add(2)
	}); n != 0 {
		t.Fatalf("enabled hot path allocated %v times per op", n)
	}
}

// TestRecorderResetRelease: Reset truncates the span log and re-bases the
// epoch; Release recycles the slab through the pool so a fresh recorder
// starts with capacity.
func TestRecorderResetRelease(t *testing.T) {
	rec := NewRecorder()
	for i := 0; i < 64; i++ {
		rec.RecordSpan(Span{Track: "gpu", Name: "s", Clock: ClockVirtual, Start: float64(i), End: float64(i) + 1})
	}
	rec.Reset()
	if rec.SpanCount() != 0 {
		t.Fatalf("count after Reset = %d", rec.SpanCount())
	}
	// The slab survives the reset: recording within the retained capacity
	// must not allocate.
	if n := testing.AllocsPerRun(50, func() {
		rec.RecordSpan(Span{Track: "gpu", Name: "s", Clock: ClockVirtual})
	}); n != 0 {
		t.Fatalf("record after Reset allocated %v times per op", n)
	}
	rec.Release()
	if rec.SpanCount() != 0 {
		t.Fatal("Release must clear the span log")
	}
}

func TestRecorderSpans(t *testing.T) {
	rec := NewRecorder()
	rec.RecordSpan(Span{Track: "gpu", Name: "Sobel", Clock: ClockVirtual, Start: 0, End: 1, ID: 0})
	rec.RecordSpan(Span{Track: "tpu", Name: "Sobel", Clock: ClockVirtual, Start: 0.5, End: 2, ID: 1, StealFrom: "gpu"})
	if rec.SpanCount() != 2 {
		t.Fatalf("count = %d", rec.SpanCount())
	}
	spans := rec.Spans()
	spans[0].Track = "mutated"
	if rec.Spans()[0].Track != "gpu" {
		t.Fatal("Spans must return a copy")
	}
}

func TestReportLanesAndDeltas(t *testing.T) {
	withTelemetry(t)
	rec := NewRecorder()
	StealAttempts.Add(4) // standard Default-registry metric

	rec.RecordSpan(Span{Track: "gpu", Name: "Sobel", Clock: ClockVirtual, Start: 0, End: 1, ID: 0})
	rec.RecordSpan(Span{Track: "gpu", Name: "Sobel", Clock: ClockVirtual, Start: 1, End: 3, ID: 1})
	rec.RecordSpan(Span{Track: "tpu", Name: "Sobel", Clock: ClockVirtual, Start: 0, End: 2, ID: 2, StealFrom: "gpu"})
	rec.RecordSpan(Span{Track: "host", Name: "execute", Clock: ClockWall, Start: 0, End: 0.25})

	rep := rec.Report()
	if rep.Spans != 4 {
		t.Fatalf("spans = %d", rep.Spans)
	}
	if rep.Counters["shmt_steal_attempts_total"] != 4 {
		t.Fatalf("counter delta missing: %v", rep.Counters)
	}
	if len(rep.Lanes) != 3 {
		t.Fatalf("lanes = %+v", rep.Lanes)
	}
	// Sorted by (clock, track): virtual gpu, virtual tpu, wall host.
	if rep.Lanes[0].Track != "gpu" || rep.Lanes[0].Clock != "virtual" ||
		rep.Lanes[1].Track != "tpu" || rep.Lanes[2].Clock != "wall" {
		t.Fatalf("lane order wrong: %+v", rep.Lanes)
	}
	if rep.Lanes[0].Spans != 2 || rep.Lanes[0].Busy != 3 || rep.Lanes[0].LastEnd != 3 {
		t.Fatalf("gpu lane: %+v", rep.Lanes[0])
	}
	if rep.Lanes[1].Stolen != 1 {
		t.Fatalf("tpu lane should count 1 stolen span: %+v", rep.Lanes[1])
	}

	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report JSON does not round-trip: %v\n%s", err, buf.String())
	}
	if back.Spans != rep.Spans || len(back.Lanes) != len(rep.Lanes) {
		t.Fatal("round-tripped report lost data")
	}
	for _, field := range []string{"wall_seconds", "counters", "totals", "lanes"} {
		if !strings.Contains(buf.String(), field) {
			t.Fatalf("report JSON missing %q:\n%s", field, buf.String())
		}
	}
}
