package telemetry

import (
	"sync"
	"time"
)

// Clock identifies a span's time domain. The runtime has two: the simulated
// platform's virtual clock (device lanes, seconds of modelled time) and the
// host's wall clock (lifecycle phases, worker activity). The Perfetto export
// keeps them in separate process groups so the timebases never mix.
type Clock uint8

const (
	// ClockVirtual is the engine's modelled device timeline.
	ClockVirtual Clock = iota
	// ClockWall is host wall time, in seconds since the Recorder's epoch.
	ClockWall
)

// Span is one closed interval on a named lane.
type Span struct {
	// Track is the lane name: a device name for virtual spans, a host lane
	// ("host") for lifecycle phases.
	Track string
	// Name labels the interval (opcode, phase name).
	Name string
	// Clock is the span's time domain.
	Clock Clock
	// Start and End are seconds in the span's clock domain.
	Start, End float64
	// ID carries the HLOP id for virtual-clock device spans.
	ID int
	// StealFrom names the victim lane when this span is a stolen HLOP's
	// execution; the Perfetto export draws a flow arrow victim → thief.
	StealFrom string
	// Critical marks spans whose HLOP the policy classified critical.
	Critical bool
	// Fault marks failed-dispatch intervals (dispatch overhead + backoff
	// charged to the device for an HLOP that errored); the Perfetto export
	// colours them as errors.
	Fault bool
	// TraceID links the span to a serving-layer request trace. On engine
	// spans it attributes device work to the originating request; combined
	// with Root it defines the request lanes in the Perfetto export.
	TraceID string
	// Root marks a request-lane span (the request's end-to-end interval and
	// its stage slices). The Perfetto export groups root spans into one lane
	// per TraceID under a dedicated "shmt requests" process and draws flow
	// arrows from the request to every engine span sharing its TraceID.
	Root bool
}

// Recorder collects one run's (or session's) spans and remembers the
// registry snapshot taken when it was attached, so Report can compute
// per-run counter deltas against the process-global metrics.
type Recorder struct {
	mu    sync.Mutex
	epoch time.Time
	base  Snapshot
	spans []Span
}

// spanSlabPool recycles span backing arrays between recorders so short-lived
// recorders (one per run in benchmarks and tools) don't re-grow their slab
// from scratch each time.
var spanSlabPool = sync.Pool{New: func() any { return new([]Span) }}

// NewRecorder returns a recorder with its wall epoch at now and its counter
// baseline at the Default registry's current values.
func NewRecorder() *Recorder {
	slab := *spanSlabPool.Get().(*[]Span)
	return &Recorder{epoch: time.Now(), base: Default.Snapshot(), spans: slab[:0]}
}

// Reset discards recorded spans (retaining their backing array) and re-bases
// the wall epoch and counter snapshot, so one long-lived recorder can scope
// per-interval reports without reallocating. The epoch/base swap happens
// under the recorder's lock, so concurrent Now/RecordSpan calls see either
// the old or the new timebase, never a torn mix — though spans recorded
// while Reset runs land in whichever interval wins the race.
func (r *Recorder) Reset() {
	// Snapshot outside the lock: it walks the registry and must not hold up
	// concurrent RecordSpan calls.
	base := Default.Snapshot()
	r.mu.Lock()
	r.spans = r.spans[:0]
	r.epoch = time.Now()
	r.base = base
	r.mu.Unlock()
}

// Release returns the recorder's span slab to the shared pool. The caller
// must have exclusive ownership: no RecordSpan, Spans, Now or Reset may be
// running or follow — another goroutine holding a stale reference could
// otherwise append into a slab a fresh recorder has already adopted.
// Typically called once at session close, after all runs have drained.
func (r *Recorder) Release() {
	r.mu.Lock()
	slab := r.spans[:0]
	r.spans = nil
	r.mu.Unlock()
	if slab != nil {
		spanSlabPool.Put(&slab)
	}
}

// Now returns wall seconds since the recorder's epoch.
func (r *Recorder) Now() float64 {
	r.mu.Lock()
	epoch := r.epoch
	r.mu.Unlock()
	return time.Since(epoch).Seconds()
}

// RecordSpan appends a span. Safe for concurrent use.
func (r *Recorder) RecordSpan(s Span) {
	r.mu.Lock()
	r.spans = append(r.spans, s)
	r.mu.Unlock()
}

// Spans returns a copy of the recorded spans.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Span(nil), r.spans...)
}

// SpanCount returns how many spans have been recorded.
func (r *Recorder) SpanCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.spans)
}

// Base returns the counter snapshot taken when the recorder was created (or
// last Reset).
func (r *Recorder) Base() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.base
}
