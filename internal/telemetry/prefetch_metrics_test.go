package telemetry

import (
	"bytes"
	"strings"
	"testing"
)

// TestPrefetchMetricsExposition: the prefetch instrumentation registers on
// the Default registry and renders in both exposition formats. Counter
// values accumulate across the process, so series lines are matched by name
// while the value-independent metadata is pinned by golden file (including
// the OpenMetrics rule that counter metadata drops the '_total' suffix).
func TestPrefetchMetricsExposition(t *testing.T) {
	withTelemetry(t)
	PrefetchIssued.Inc()
	PrefetchHits.Inc()
	PrefetchCancelled.Inc()
	PrefetchBufferBytes.Set(4096)

	render := func(openMetrics bool) string {
		var buf bytes.Buffer
		var err error
		if openMetrics {
			err = Default.WriteOpenMetrics(&buf)
		} else {
			err = Default.WriteExposition(&buf)
		}
		if err != nil {
			t.Fatal(err)
		}
		return buf.String()
	}
	classic, open := render(false), render(true)

	for _, format := range []struct{ name, out string }{
		{"classic", classic},
		{"openmetrics", open},
	} {
		for _, series := range []string{
			"shmt_prefetch_issued_total ",
			"shmt_prefetch_hits_total ",
			"shmt_prefetch_cancelled_total ",
			"shmt_prefetch_buffer_bytes 4096",
		} {
			if !strings.Contains(format.out, "\n"+series) {
				t.Fatalf("%s exposition missing series %q in:\n%s", format.name, series, format.out)
			}
		}
	}

	var golden strings.Builder
	golden.WriteString("# format: classic\n")
	golden.WriteString(prefetchMetaLines(classic))
	golden.WriteString("# format: openmetrics\n")
	golden.WriteString(prefetchMetaLines(open))
	checkGolden(t, "prefetch_metrics.golden.txt", []byte(golden.String()))
}

// prefetchMetaLines extracts the HELP/TYPE lines of the prefetch families.
func prefetchMetaLines(out string) string {
	var sb strings.Builder
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "#") && strings.Contains(line, "shmt_prefetch") {
			sb.WriteString(line)
			sb.WriteString("\n")
		}
	}
	return sb.String()
}
