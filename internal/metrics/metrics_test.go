package metrics

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMAPEKnown(t *testing.T) {
	got, err := MAPE([]float64{2, 4}, []float64{1, 5})
	if err != nil {
		t.Fatal(err)
	}
	// |1-2|/2 = 0.5, |5-4|/4 = 0.25 -> mean 0.375.
	if math.Abs(got-0.375) > 1e-12 {
		t.Fatalf("MAPE = %g want 0.375", got)
	}
}

func TestMAPEIdenticalIsZero(t *testing.T) {
	x := []float64{1, -2, 0, 7}
	got, err := MAPE(x, x)
	if err != nil || got != 0 {
		t.Fatalf("MAPE = %g err %v", got, err)
	}
}

func TestMAPENearZeroGuard(t *testing.T) {
	got, err := MAPE([]float64{0}, []float64{1e-7})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsInf(got, 0) || math.IsNaN(got) {
		t.Fatalf("MAPE not guarded: %g", got)
	}
	// Near-zero references still blow the metric up, as in the paper (§5.3).
	if got < 0.05 {
		t.Fatalf("near-zero reference should penalize heavily, got %g", got)
	}
}

func TestMAPEErrors(t *testing.T) {
	if _, err := MAPE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch should error")
	}
	if got, err := MAPE(nil, nil); err != nil || got != 0 {
		t.Fatalf("empty MAPE = %g err %v", got, err)
	}
}

func TestMAPENonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 + r.Intn(32)
		ref := make([]float64, n)
		ap := make([]float64, n)
		for i := range ref {
			ref[i] = r.NormFloat64() * 10
			ap[i] = r.NormFloat64() * 10
		}
		got, err := MAPE(ref, ap)
		return err == nil && got >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	want := math.Sqrt(12.5)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("RMSE = %g want %g", got, want)
	}
	if _, err := RMSE([]float64{1}, nil); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestMaxAbsErr(t *testing.T) {
	got, err := MaxAbsErr([]float64{1, 2, 3}, []float64{1, 5, 2})
	if err != nil || got != 3 {
		t.Fatalf("MaxAbsErr = %g err %v", got, err)
	}
}

func TestSSIMIdenticalIsOne(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	img := make([]float64, 32*32)
	for i := range img {
		img[i] = rng.Float64() * 255
	}
	got, err := SSIM(32, 32, img, img)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-1) > 1e-9 {
		t.Fatalf("SSIM(x,x) = %g want 1", got)
	}
}

func TestSSIMDegradesWithNoise(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	ref := make([]float64, 64*64)
	for i := range ref {
		ref[i] = 128 + 64*math.Sin(float64(i)/50)
	}
	mild := make([]float64, len(ref))
	heavy := make([]float64, len(ref))
	for i := range ref {
		n := rng.NormFloat64()
		mild[i] = ref[i] + 2*n
		heavy[i] = ref[i] + 40*n
	}
	sMild, _ := SSIM(64, 64, ref, mild)
	sHeavy, _ := SSIM(64, 64, ref, heavy)
	if !(sHeavy < sMild && sMild < 1) {
		t.Fatalf("SSIM ordering violated: mild=%g heavy=%g", sMild, sHeavy)
	}
}

func TestSSIMBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 16
		ref := make([]float64, n*n)
		ap := make([]float64, n*n)
		for i := range ref {
			ref[i] = r.Float64() * 100
			ap[i] = r.Float64() * 100
		}
		s, err := SSIM(n, n, ref, ap)
		return err == nil && s >= -1-1e-9 && s <= 1+1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestSSIMSmallImage(t *testing.T) {
	// Images smaller than one window fall back to a single-window SSIM.
	ref := []float64{1, 2, 3, 4}
	got, err := SSIM(2, 2, ref, ref)
	if err != nil || math.Abs(got-1) > 1e-9 {
		t.Fatalf("small SSIM = %g err %v", got, err)
	}
}

func TestSSIMErrors(t *testing.T) {
	if _, err := SSIM(2, 2, []float64{1}, []float64{1}); err == nil {
		t.Fatal("shape mismatch should error")
	}
	if _, err := SSIM(2, 2, make([]float64, 4), make([]float64, 3)); err == nil {
		t.Fatal("length mismatch should error")
	}
}

func TestSpeedup(t *testing.T) {
	if Speedup(2, 1) != 2 {
		t.Fatal("speedup wrong")
	}
	if Speedup(0, 1) != 0 || Speedup(1, 0) != 0 {
		t.Fatal("degenerate speedups should be 0")
	}
}

func TestGeoMean(t *testing.T) {
	got := GeoMean([]float64{1, 4})
	if math.Abs(got-2) > 1e-12 {
		t.Fatalf("geomean = %g want 2", got)
	}
	// Zero/negative entries are skipped.
	got = GeoMean([]float64{0, -1, 4})
	if math.Abs(got-4) > 1e-12 {
		t.Fatalf("geomean with skips = %g want 4", got)
	}
	if GeoMean(nil) != 0 {
		t.Fatal("empty geomean should be 0")
	}
}

func TestMean(t *testing.T) {
	if Mean([]float64{1, 2, 3}) != 2 {
		t.Fatal("mean wrong")
	}
	if Mean(nil) != 0 {
		t.Fatal("empty mean should be 0")
	}
}
