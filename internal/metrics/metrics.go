// Package metrics implements the result-quality and performance measures the
// paper evaluates with: Mean Absolute Percentage Error (MAPE, Fig. 7), the
// Structural Similarity Index Measure (SSIM, Fig. 8), plus RMSE, speedup and
// geometric means for the summary rows.
package metrics

import (
	"errors"
	"fmt"
	"math"
)

// ErrShapeMismatch is returned when two series being compared differ in length.
var ErrShapeMismatch = errors.New("metrics: series lengths differ")

// mapeEpsilon guards the per-element denominator. The paper notes MAPE's
// known weakness on near-zero references (§5.3, citing Kim & Kim 2016); the
// guard keeps single zero-reference elements from producing infinities while
// still letting near-zero-heavy outputs (Sobel, Laplacian) blow the metric
// up, matching the paper's observation.
const mapeEpsilon = 1e-6

// MAPE returns mean(|approx-ref| / max(|ref|, eps)) as a fraction (0.05 =
// 5%).
func MAPE(ref, approx []float64) (float64, error) {
	if len(ref) != len(approx) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrShapeMismatch, len(ref), len(approx))
	}
	if len(ref) == 0 {
		return 0, nil
	}
	var sum float64
	for i := range ref {
		den := math.Abs(ref[i])
		if den < mapeEpsilon {
			den = mapeEpsilon
		}
		sum += math.Abs(approx[i]-ref[i]) / den
	}
	return sum / float64(len(ref)), nil
}

// RMSE returns the root-mean-square error between the two series.
func RMSE(ref, approx []float64) (float64, error) {
	if len(ref) != len(approx) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrShapeMismatch, len(ref), len(approx))
	}
	if len(ref) == 0 {
		return 0, nil
	}
	var ss float64
	for i := range ref {
		d := approx[i] - ref[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(ref))), nil
}

// MaxAbsErr returns the largest element-wise absolute error.
func MaxAbsErr(ref, approx []float64) (float64, error) {
	if len(ref) != len(approx) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrShapeMismatch, len(ref), len(approx))
	}
	var m float64
	for i := range ref {
		if d := math.Abs(approx[i] - ref[i]); d > m {
			m = d
		}
	}
	return m, nil
}

// SSIM computes the global structural similarity index between a reference
// image and an approximation, both given as rows×cols row-major data. It
// uses the standard Wang et al. constants with the dynamic range L taken
// from the reference image. Identical images score exactly 1; the value is
// bounded by [-1, 1].
//
// Following common practice (and sufficient for reproducing Fig. 8's
// orderings), SSIM is computed over 8×8 windows with a stride of 4 and the
// per-window indices averaged.
func SSIM(rows, cols int, ref, approx []float64) (float64, error) {
	if len(ref) != len(approx) {
		return 0, fmt.Errorf("%w: %d vs %d", ErrShapeMismatch, len(ref), len(approx))
	}
	if rows*cols != len(ref) {
		return 0, fmt.Errorf("metrics: %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(ref))
	}
	if len(ref) == 0 {
		return 1, nil
	}

	// Dynamic range of the reference signal.
	lo, hi := ref[0], ref[0]
	for _, v := range ref {
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	L := hi - lo
	if L == 0 {
		L = 1
	}
	c1 := (0.01 * L) * (0.01 * L)
	c2 := (0.03 * L) * (0.03 * L)

	const win, stride = 8, 4
	if rows < win || cols < win {
		return ssimWindow(ref, approx, c1, c2), nil
	}

	var total float64
	var n int
	bufR := make([]float64, win*win)
	bufA := make([]float64, win*win)
	for r := 0; r+win <= rows; r += stride {
		for c := 0; c+win <= cols; c += stride {
			k := 0
			for i := 0; i < win; i++ {
				off := (r+i)*cols + c
				copy(bufR[k:k+win], ref[off:off+win])
				copy(bufA[k:k+win], approx[off:off+win])
				k += win
			}
			total += ssimWindow(bufR, bufA, c1, c2)
			n++
		}
	}
	return total / float64(n), nil
}

func ssimWindow(x, y []float64, c1, c2 float64) float64 {
	n := float64(len(x))
	var mx, my float64
	for i := range x {
		mx += x[i]
		my += y[i]
	}
	mx /= n
	my /= n
	var vx, vy, cov float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		vx += dx * dx
		vy += dy * dy
		cov += dx * dy
	}
	vx /= n
	vy /= n
	cov /= n
	num := (2*mx*my + c1) * (2*cov + c2)
	den := (mx*mx + my*my + c1) * (vx + vy + c2)
	return num / den
}

// Speedup returns baseline/measured; both must be positive.
func Speedup(baseline, measured float64) float64 {
	if measured <= 0 || baseline <= 0 {
		return 0
	}
	return baseline / measured
}

// GeoMean returns the geometric mean of strictly positive values; zero or
// negative entries are skipped (matching how the paper's GMEAN columns treat
// missing bars). An empty input yields 0.
func GeoMean(vals []float64) float64 {
	var logSum float64
	var n int
	for _, v := range vals {
		if v > 0 {
			logSum += math.Log(v)
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return math.Exp(logSum / float64(n))
}

// Mean returns the arithmetic mean; an empty input yields 0.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var s float64
	for _, v := range vals {
		s += v
	}
	return s / float64(len(vals))
}
