package core

import (
	"errors"
	"fmt"

	"shmt/internal/energy"
	"shmt/internal/hlop"
	"shmt/internal/interconnect"
	"shmt/internal/sched"
	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/trace"
	"shmt/internal/vop"
)

// BatchResult is the outcome of co-scheduling several independent VOPs over
// the same device queues.
type BatchResult struct {
	// Reports holds one report per submitted VOP, in submission order. Each
	// report's Makespan is that VOP's own completion time; Busy, Comm,
	// Energy and PeakBytes on the individual reports describe only that
	// VOP's HLOPs.
	Reports []*Report
	// Makespan is the batch's end-to-end virtual latency.
	Makespan float64
	// Busy is the per-device busy time across the whole batch.
	Busy map[string]float64
	// Energy integrates the platform power over the batch makespan.
	Energy energy.Breakdown
	// Comm is the batch-wide data-movement accounting.
	Comm interconnect.Tracker
	// Degraded quantifies batch-wide fault handling (quarantines, reroutes,
	// quality impact); nil when the batch saw no device failures.
	Degraded *Degraded
	// StageWall is the batch's host wall-clock stage durations; the serving
	// layer splits them across the coalesced requests' trace records. Zero
	// when telemetry was inactive for the run (no clock reads on the
	// disabled path).
	StageWall StageWall
}

// StageWall attributes a batch's host wall-clock time to pipeline stages,
// in seconds.
type StageWall struct {
	// Plan covers per-VOP partitioning and device assignment (or plan-cache
	// replay).
	Plan float64
	// Transfer covers quantize/transfer staging: output allocation and
	// view binding before execution.
	Transfer float64
	// Execute covers the engine run.
	Execute float64
	// Aggregate covers result aggregation back into per-VOP outputs.
	Aggregate float64
}

// RunBatch executes several independent VOPs in one scheduling round: every
// VOP's HLOPs share the device queues (interleaved round-robin so the VOPs
// progress together), stealing operates across the whole pool, and each
// VOP's partitions aggregate into its own output. This is the
// oversubscription §5.6 leans on — "the amount of HLOPs from each
// application allows the SHMT runtime system to easily oversubscribe
// available processing resources".
func (e *Engine) RunBatch(vops []*vop.VOP) (*BatchResult, error) {
	if e.Reg == nil {
		return nil, errors.New("core: engine has no device registry")
	}
	if len(vops) == 0 {
		return nil, errors.New("core: empty batch")
	}
	pol := e.Policy
	if pol == nil {
		pol = sched.WorkStealing{}
	}
	fx := e.newFaultState()
	ctx := &sched.Context{Reg: e.Reg, Seed: e.Seed, HostScale: maxf(e.HostScale, 1),
		Quarantined: fx.quarantined}
	rt := e.newRunTel(pol.Name())
	var phaseT, planStart float64
	if rt != nil {
		phaseT = rt.now()
		planStart = phaseT
	}
	var sw StageWall

	// Partition and assign per VOP (window semantics stay per VOP), then
	// interleave into one pool with globally unique IDs.
	perVOP := make([][]*hlop.HLOP, len(vops))
	owner := map[*hlop.HLOP]int{}
	var overhead float64
	nextID := 0
	for i, v := range vops {
		// Plan (or replay a cached plan) per VOP; phase telemetry stays
		// lumped into the batch-level schedule phase below, so no runTel is
		// passed down.
		hs, ovh, _, err := e.planVOP(ctx, pol, v, nil, 0)
		if err != nil {
			return nil, fmt.Errorf("core: batch vop %d: %w", i, err)
		}
		overhead += ovh
		if rt != nil {
			rt.noteAssignments(hs)
		}
		for _, h := range hs {
			h.ID = nextID
			nextID++
			owner[h] = i
		}
		perVOP[i] = hs
	}
	pool := interleave(perVOP)
	if rt != nil {
		// Batch partitioning and assignment interleave per VOP; account them
		// as one scheduling phase.
		phaseT = rt.phase(telemetry.PhaseSchedule, phaseT)
		sw.Plan = phaseT - planStart
	}

	tr := trace.New()
	outs := make([]*tensor.Matrix, len(vops))
	for i, v := range vops {
		e.accountFootprint(tr, v, perVOP[i])
		if !v.Op.IsReduction() {
			rows, cols := v.OutputShape()
			outs[i] = tensor.NewMatrix(rows, cols)
			if v.HaloWidth() == 0 && !e.Spec.ForceCopy {
				if err := bindOutputViews(outs[i], perVOP[i]); err != nil {
					return nil, fmt.Errorf("core: batch vop %d: %w", i, err)
				}
			}
		}
	}

	// The staging interval (output allocation + view binding above) sits
	// inside the execute phase span; split it out for the per-request stage
	// breakdown without disturbing the phase telemetry.
	var xferEnd float64
	if rt != nil {
		xferEnd = rt.now()
		sw.Transfer = xferEnd - phaseT
	}

	var res *runResult
	var err error
	if e.Concurrent {
		res, err = e.runConcurrent(ctx, pol, pool, overhead, tr, rt, fx)
	} else {
		res, err = e.runDeterministic(ctx, pol, pool, overhead, tr, rt, fx)
	}
	if err != nil {
		return nil, err
	}
	if rt != nil {
		phaseT = rt.phase(telemetry.PhaseExecute, phaseT)
		sw.Execute = phaseT - xferEnd
	}

	// Split completions by owning VOP. Splits inherit their parent pointer,
	// so ownership resolves through Parent when the HLOP was re-created.
	parentIdx := map[*vop.VOP]int{}
	for i, v := range vops {
		parentIdx[v] = i
	}
	doneBy := make([][]doneHLOP, len(vops))
	for _, d := range res.done {
		i, ok := owner[d.h]
		if !ok {
			i, ok = parentIdx[d.h.Parent]
			if !ok {
				return nil, fmt.Errorf("core: completed HLOP %d has no owning VOP", d.h.ID)
			}
		}
		doneBy[i] = append(doneBy[i], d)
	}

	batch := &BatchResult{Busy: res.busy, Comm: res.comm,
		Degraded: fx.deg.finish(e.Reg, res.done)}
	copyBw := interconnect.HostDRAM.BandwidthBps
	aggT := overhead
	var aggBusy float64
	for i, v := range vops {
		// Timeline first: aggregate releases the per-HLOP buffers, and the
		// aliased-output check needs Result/Out intact.
		var finish float64
		for _, d := range doneBy[i] {
			if d.finish > finish {
				finish = d.finish
			}
			if aggT < d.finish {
				aggT = d.finish
			}
			if d.h.Out == nil || d.h.Result != d.h.Out {
				aggT += float64(d.h.OutputBytes(tensor.ElemSize)) / copyBw
			}
		}
		out, aggBytes, err := aggregate(v, doneBy[i], outs[i])
		if err != nil {
			return nil, fmt.Errorf("core: batch vop %d: %w", i, err)
		}
		aggBusy += float64(aggBytes) / copyBw
		rep := &Report{
			Output:        out,
			HLOPs:         len(doneBy[i]),
			Makespan:      finish + float64(aggBytes)/copyBw,
			SchedOverhead: overhead,
		}
		rep.CriticalHLOPs, rep.DeviceHLOPs = e.execProfile(doneBy[i])
		batch.Reports = append(batch.Reports, rep)
	}
	batch.Makespan = res.deviceMakespan
	if aggT > batch.Makespan {
		batch.Makespan = aggT
	}
	for _, rep := range batch.Reports {
		if rep.Makespan > batch.Makespan {
			batch.Makespan = rep.Makespan
		}
	}
	batch.Busy["cpu"] += overhead + aggBusy
	batch.Energy = energy.DefaultModel().Energy(energy.Usage{Makespan: batch.Makespan, Busy: batch.Busy})
	if rt != nil {
		aggEnd := rt.phase(telemetry.PhaseAggregate, phaseT)
		sw.Aggregate = aggEnd - phaseT
		rt.runs.Inc()
		batch.StageWall = sw
	}
	return batch, nil
}

// interleave merges per-VOP HLOP lists round-robin.
func interleave(groups [][]*hlop.HLOP) []*hlop.HLOP {
	var out []*hlop.HLOP
	for i := 0; ; i++ {
		appended := false
		for _, g := range groups {
			if i < len(g) {
				out = append(out, g[i])
				appended = true
			}
		}
		if !appended {
			return out
		}
	}
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}
