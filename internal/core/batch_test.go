package core

import (
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

func batchVOPs(t *testing.T) []*vop.VOP {
	t.Helper()
	a := workload.Mixed(64, 64, workload.Profile{TileSize: 16}, 80)
	b := workload.Uniform(64, 64, 0.1, 1, 81)
	v1, err := vop.New(vop.OpSobel, a)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := vop.New(vop.OpSqrt, b)
	if err != nil {
		t.Fatal(err)
	}
	v3, err := vop.New(vop.OpReduceSum, b)
	if err != nil {
		t.Fatal(err)
	}
	return []*vop.VOP{v1, v2, v3}
}

func TestRunBatchBasics(t *testing.T) {
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8, MinVectorElems: 64}, DoubleBuffer: true}
	res, err := e.RunBatch(batchVOPs(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
	if res.Makespan <= 0 || res.Energy.Total() <= 0 {
		t.Fatal("batch accounting degenerate")
	}
	for i, rep := range res.Reports {
		if rep.Output == nil || rep.HLOPs == 0 {
			t.Fatalf("report %d empty", i)
		}
		if rep.Makespan > res.Makespan+1e-12 {
			t.Fatalf("report %d outlives the batch", i)
		}
	}
}

func TestRunBatchExactness(t *testing.T) {
	reg, _ := device.NewRegistry(cpu.New(1))
	e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "cpu"},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8, MinVectorElems: 64}}
	vops := batchVOPs(t)
	res, err := e.RunBatch(vops)
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range vops {
		solo, err := e.Run(v)
		if err != nil {
			t.Fatal(err)
		}
		if !res.Reports[i].Output.Equal(solo.Output) {
			t.Fatalf("vop %d batch output differs from solo", i)
		}
	}
}

// TestRunBatchSplitOwnership forces TPU-memory splits inside a batch and
// checks every re-created HLOP still aggregates into the right VOP.
func TestRunBatchSplitOwnership(t *testing.T) {
	tiny := tpu.New(tpu.Config{MemoryBytes: 6 << 10})
	reg, _ := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tiny)
	e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "tpu"},
		Spec: hlop.Spec{TargetPartitions: 2, MinTile: 8}}
	a := workload.Uniform(96, 96, 0, 1, 82)
	b := workload.Uniform(96, 96, 0, 1, 83)
	v1, _ := vop.New(vop.OpSobel, a)
	v2, _ := vop.New(vop.OpMeanFilter, b)
	res, err := e.RunBatch([]*vop.VOP{v1, v2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Reports[0].HLOPs <= 2 || res.Reports[1].HLOPs <= 2 {
		t.Fatalf("expected splits: %d/%d HLOPs", res.Reports[0].HLOPs, res.Reports[1].HLOPs)
	}
	for i, rep := range res.Reports {
		if rep.Output.Rows != 96 || rep.Output.Cols != 96 {
			t.Fatalf("vop %d output shape wrong after splits", i)
		}
	}
}

func TestRunBatchConcurrent(t *testing.T) {
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8, MinVectorElems: 64}, Concurrent: true}
	res, err := e.RunBatch(batchVOPs(t))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Reports) != 3 {
		t.Fatalf("reports = %d", len(res.Reports))
	}
}

func TestRunBatchValidation(t *testing.T) {
	e := &Engine{Reg: stdRegistry(t)}
	if _, err := e.RunBatch(nil); err == nil {
		t.Fatal("empty batch should fail")
	}
	if _, err := (&Engine{}).RunBatch(batchVOPs(t)); err == nil {
		t.Fatal("missing registry should fail")
	}
}

func TestInterleaveRoundRobin(t *testing.T) {
	a := []*hlop.HLOP{{ID: 0}, {ID: 1}}
	b := []*hlop.HLOP{{ID: 10}, {ID: 11}, {ID: 12}}
	got := interleave([][]*hlop.HLOP{a, b})
	want := []int{0, 10, 1, 11, 12}
	if len(got) != len(want) {
		t.Fatalf("len = %d", len(got))
	}
	for i, h := range got {
		if h.ID != want[i] {
			t.Fatalf("interleave[%d] = %d want %d", i, h.ID, want[i])
		}
	}
}

func TestEngineEvenDistributionBoundedBySlowerDevice(t *testing.T) {
	// Even distribution's makespan is bounded below by half the work on the
	// slower device (the paper's §5.2 observation). Using an op where the
	// TPU is much slower (MF, ratio 0.31), even must trail work stealing.
	m := workload.Image(128, 128, 84)
	v, _ := vop.New(vop.OpMeanFilter, m)
	run := func(pol sched.Policy) float64 {
		e := &Engine{Reg: stdRegistry(t), Policy: pol,
			Spec: hlop.Spec{TargetPartitions: 16, MinTile: 8}, DoubleBuffer: pol.StealingEnabled()}
		rep, err := e.Run(v)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	even := run(sched.EvenDistribution{})
	ws := run(sched.WorkStealing{})
	if ws >= even {
		t.Fatalf("work stealing (%g) should beat even distribution (%g) on a TPU-hostile kernel", ws, even)
	}
}
