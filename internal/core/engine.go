// Package core is the SHMT runtime system — the paper's primary
// contribution (§3.3): the virtual-device driver that accepts VOPs,
// partitions them into HLOPs, distributes HLOPs across per-device queue
// pairs, balances load by work stealing under the active policy's quality
// constraints, moves and casts data, and aggregates completed partitions
// back into the application's result.
//
// Two engines share this logic:
//
//   - the deterministic engine (this file): a sequential discrete-event loop
//     over virtual time, used by every experiment so results are exactly
//     reproducible;
//   - the concurrent engine (concurrent.go): one worker goroutine per
//     device draining real queue pairs — the paper's "thread monitoring the
//     queue" structure — validated against the same invariants.
package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"shmt/internal/device"
	"shmt/internal/energy"
	"shmt/internal/hlop"
	"shmt/internal/interconnect"
	"shmt/internal/sched"
	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/trace"
	"shmt/internal/vop"
)

// Engine executes VOPs over a device registry under a scheduling policy.
type Engine struct {
	// Reg is the device set (queue index order).
	Reg *device.Registry
	// Policy is the scheduling policy; nil defaults to work stealing.
	Policy sched.Policy
	// Spec configures the VOP→HLOP partitioner.
	Spec hlop.Spec
	// DoubleBuffer overlaps data movement with computation (§5.6). The
	// conventional GPU baseline runs without it; SHMT policies and the
	// software-pipelining baseline run with it. In the virtual-time model
	// each device lane splits into a transfer stage and a compute stage
	// (interconnect.Lane); without DoubleBuffer the stages serialize.
	DoubleBuffer bool
	// Prefetch is the wall-clock side of double buffering: the per-device
	// depth of asynchronous input prestaging for private-memory devices
	// (TPU/NPU modes) — while HLOP k executes, up to Prefetch queued HLOPs
	// have their operands pre-materialized and pre-quantized on the worker
	// pool, and operands shared across HLOPs stay device-resident. Results
	// are bit-identical at any depth; 0 disables.
	Prefetch int
	// Seed drives every randomized component (sampling, concurrent
	// validation).
	Seed int64
	// HostScale ≥ 1 is the virtual-platform slowdown applied to host-side
	// constant costs (sampling touches); the devices carry their own
	// slowdown. Default 1.
	HostScale float64
	// RecordTrace keeps per-HLOP events in the report's Trace.
	RecordTrace bool
	// Concurrent switches to the goroutine engine.
	Concurrent bool
	// Telemetry, when non-nil, receives lifecycle and device-lane spans for
	// every run (see internal/telemetry); process-global counters are
	// maintained whenever telemetry is enabled, recorder or not.
	Telemetry *telemetry.Recorder
	// Resilience tunes the graceful-degradation machinery (circuit breakers,
	// backoff, retry bounds — see degrade.go). The zero value uses defaults.
	Resilience Resilience
	// PlanCacheEntries, when positive, enables the memoized execution-plan
	// layer with that LRU capacity: repeated same-shape VOPs replay the
	// captured partition geometry and device assignment instead of
	// re-planning (see plancache.go). 0 (the default) plans every run from
	// scratch.
	PlanCacheEntries int
	// ExecTimeCacheEntries caps the per-run cost-model memo
	// (device.ExecTimeCache); ≤ 0 selects device.DefaultExecTimeEntries.
	ExecTimeCacheEntries int
	// breakerNotify holds the circuit-breaker transition callback (see
	// SetBreakerNotify). Atomic so registration may race with the execution
	// path reading it — a session wiring its observer while requests are in
	// flight is safe, it just may miss transitions that were already firing.
	breakerNotify atomic.Pointer[func(device, event string)]

	// Per-device circuit breakers, lazily sized to Reg and persistent across
	// runs so a dead device stays quarantined between batches.
	brMu sync.Mutex
	brs  []*breaker

	// Cached metric handles (see telHandles); rebuilt when the policy or
	// device set changes.
	thMu sync.Mutex
	th   *telHandles

	// Memoized execution plans (plancache.go), guarded by the device-health
	// epoch: breaker transitions advance planEpoch, so plans captured against
	// a different eligible device set miss instead of replaying.
	pcMu      sync.Mutex
	pc        *planCache
	planEpoch atomic.Uint64
}

// SetBreakerNotify registers fn to be called on circuit-breaker transitions
// with the device name and event ("open" or "readmitted"). It runs on the
// engine's execution path, so it must be quick and must not call back into
// the engine. nil removes the callback. Safe to call while runs are in
// flight: the execution path reads the registration atomically.
func (e *Engine) SetBreakerNotify(fn func(device, event string)) {
	if fn == nil {
		e.breakerNotify.Store(nil)
		return
	}
	e.breakerNotify.Store(&fn)
}

// notifyBreaker invokes the registered breaker callback, if any.
func (e *Engine) notifyBreaker(device, event string) {
	if fn := e.breakerNotify.Load(); fn != nil {
		(*fn)(device, event)
	}
}

// Report is the outcome of one VOP execution.
type Report struct {
	// Output is the computed result, restored to float64.
	Output *tensor.Matrix
	// HLOPs is how many HLOPs ultimately executed (splits included).
	HLOPs int
	// Makespan is the end-to-end virtual latency in seconds, including
	// scheduling overhead and exposed aggregation.
	Makespan float64
	// SchedOverhead is the policy's pre-dispatch cost (sampling, canary
	// computation) in seconds.
	SchedOverhead float64
	// Busy maps device name to busy seconds (the energy model's input).
	Busy map[string]float64
	// Comm is the data-movement accounting (Table 3).
	Comm interconnect.Tracker
	// Energy is the integrated platform energy for the run.
	Energy energy.Breakdown
	// PeakBytes is the peak host-memory footprint (Fig. 11).
	PeakBytes int64
	// Trace holds per-HLOP events when RecordTrace was set.
	Trace *trace.Trace
	// Degraded quantifies fault handling (quarantines, reroutes, quality
	// impact); nil when the run saw no device failures.
	Degraded *Degraded
	// CriticalHLOPs counts the HLOPs the policy marked critical (routed to
	// the most accurate device for quality); with deadline pressure applied
	// this fraction rises, which is how a tight-deadline request's report
	// shows it kept high-accuracy devices.
	CriticalHLOPs int
	// DeviceHLOPs counts executed HLOPs per device name (where partitions
	// actually ran, stealing included).
	DeviceHLOPs map[string]int
}

// execProfile summarizes where a run's HLOPs executed: how many were
// criticality-marked, and the per-device execution counts.
func (e *Engine) execProfile(done []doneHLOP) (critical int, byDevice map[string]int) {
	byDevice = make(map[string]int, 4)
	for _, d := range done {
		if d.h.Critical {
			critical++
		}
		byDevice[e.Reg.Get(d.h.ExecQueue).Name()]++
	}
	return critical, byDevice
}

// maxExecuteRetries bounds how many devices one HLOP may fail on before the
// run errors out.
const maxExecuteRetries = 4

// splitCost is the host-side cost of re-partitioning an HLOP that
// overflowed a device's memory.
const splitCost = 50e-6

// Run executes one VOP end-to-end and reports the result and accounting.
func (e *Engine) Run(v *vop.VOP) (*Report, error) {
	if e.Reg == nil {
		return nil, errors.New("core: engine has no device registry")
	}
	pol := e.Policy
	if pol == nil {
		pol = sched.WorkStealing{}
	}
	rt := e.newRunTel(pol.Name())
	var phaseT float64
	if rt != nil {
		phaseT = rt.now()
	}
	hostScale := e.HostScale
	if hostScale < 1 {
		hostScale = 1
	}
	fx := e.newFaultState()
	ctx := &sched.Context{Reg: e.Reg, Seed: e.Seed, HostScale: hostScale,
		Quarantined: fx.quarantined}
	hs, overhead, phaseT, err := e.planVOP(ctx, pol, v, rt, phaseT)
	if err != nil {
		return nil, err
	}
	if rt != nil {
		rt.noteAssignments(hs)
		phaseT = rt.phase(telemetry.PhaseSchedule, phaseT)
	}
	tr := trace.New()
	e.accountFootprint(tr, v, hs)

	// Pre-allocate the output and hand each halo-free partition a strided
	// view into it. Shared-memory devices write results through the view, so
	// aggregation has nothing left to scatter for them.
	var out *tensor.Matrix
	if !v.Op.IsReduction() {
		rows, cols := v.OutputShape()
		out = tensor.NewMatrix(rows, cols)
		if v.HaloWidth() == 0 && !e.Spec.ForceCopy {
			if err := bindOutputViews(out, hs); err != nil {
				return nil, err
			}
		}
	}

	var res *runResult
	if e.Concurrent {
		res, err = e.runConcurrent(ctx, pol, hs, overhead, tr, rt, fx)
	} else {
		res, err = e.runDeterministic(ctx, pol, hs, overhead, tr, rt, fx)
	}
	if err != nil {
		return nil, err
	}
	if rt != nil {
		phaseT = rt.phase(telemetry.PhaseExecute, phaseT)
	}

	// Aggregation timeline: the host drains completion queues while devices
	// still run (§3.3.1), so each copy starts at max(previous copy end,
	// HLOP completion). Only the tail beyond device completion is exposed.
	// Results that aliased the output through a view have no copy to charge.
	// (Computed before aggregate, which releases the per-HLOP buffers.)
	aggT := overhead
	copyBw := interconnect.HostDRAM.BandwidthBps
	for _, d := range res.done {
		if d.finish > aggT {
			aggT = d.finish
		}
		if d.h.Out == nil || d.h.Result != d.h.Out {
			aggT += float64(d.h.OutputBytes(tensor.ElemSize)) / copyBw
		}
	}

	var aggBytes int64
	out, aggBytes, err = aggregate(v, res.done, out)
	if err != nil {
		return nil, err
	}
	if rt != nil {
		rt.phase(telemetry.PhaseAggregate, phaseT)
		rt.runs.Inc()
	}

	makespan := res.deviceMakespan
	if aggT > makespan {
		makespan = aggT
	}

	rep := &Report{
		Output:        out,
		HLOPs:         len(res.done),
		Makespan:      makespan,
		SchedOverhead: overhead,
		Busy:          res.busy,
		Comm:          res.comm,
		PeakBytes:     tr.PeakBytes(),
		Degraded:      fx.deg.finish(e.Reg, res.done),
	}
	rep.CriticalHLOPs, rep.DeviceHLOPs = e.execProfile(res.done)
	// The host is busy for sampling and aggregation.
	rep.Busy["cpu"] += overhead + float64(aggBytes)/copyBw
	rep.Energy = energy.DefaultModel().Energy(energy.Usage{Makespan: makespan, Busy: rep.Busy})
	if e.RecordTrace {
		rep.Trace = tr
	}
	return rep, nil
}

// doneHLOP pairs an executed HLOP with its virtual completion time.
type doneHLOP struct {
	h      *hlop.HLOP
	finish float64
}

// runResult is what either engine hands back to Run.
type runResult struct {
	done           []doneHLOP
	busy           map[string]float64
	comm           interconnect.Tracker
	deviceMakespan float64
}

// runDeterministic is the sequential discrete-event loop: repeatedly pick
// the device with the earliest virtual clock that can obtain work (own
// queue, then stealing under the policy), execute the HLOP for real, and
// advance that device's clock by the modelled dispatch, exposed transfer,
// and execution costs.
//
// Failure handling (see degrade.go): a failed dispatch charges dispatch
// overhead plus exponential backoff, then reroutes the HLOP to the best
// healthy fallback (or requeues it locally when there is none). Crossing the
// breaker threshold quarantines the device — its clock jumps past the
// cooldown and its backlog is redistributed — and its next own-queue HLOP
// after the cooldown runs as the re-admission probe.
func (e *Engine) runDeterministic(ctx *sched.Context, pol sched.Policy,
	hs []*hlop.HLOP, overhead float64, tr *trace.Trace, rt *runTel, fx *faultState) (*runResult, error) {

	n := e.Reg.Len()
	queues := make([][]*hlop.HLOP, n)
	for _, h := range hs {
		h.ReadyAt = overhead
		queues[h.AssignedQueue] = append(queues[h.AssignedQueue], h)
	}
	lanes := make([]interconnect.Lane, n)
	ran := make([]bool, n)
	for i := range lanes {
		lanes[i].Reset(overhead)
	}
	pf := e.newPrefetcher(hs)
	defer pf.drain()
	nextID := len(hs)
	remaining := len(hs)
	res := &runResult{busy: map[string]float64{}}
	retries := make(map[*hlop.HLOP]int)
	etc := device.NewExecTimeCacheSized(e.ExecTimeCacheEntries)

	for remaining > 0 {
		// Choose the earliest device that can obtain work. A quarantined
		// device serves only its own queue (the probe path); it neither
		// steals nor is handed new work.
		pick, victim := -1, -1
		for i := 0; i < n; i++ {
			var ok bool
			var vict int
			if len(queues[i]) > 0 {
				ok, vict = true, -1
			} else if pol.StealingEnabled() && !fx.brs[i].quarantined() {
				vict = e.pickVictim(ctx, pol, queues, i, etc)
				ok = vict >= 0
			}
			if ok && (pick < 0 || lanes[i].Makespan() < lanes[pick].Makespan()) {
				pick, victim = i, vict
			}
		}
		if pick < 0 {
			return nil, fmt.Errorf("core: %d HLOPs unschedulable (no device may take them)", remaining)
		}

		var h *hlop.HLOP
		stolen := false
		if victim < 0 {
			h, queues[pick] = queues[pick][0], queues[pick][1:]
		} else {
			last := len(queues[victim]) - 1
			h = queues[victim][last]
			queues[victim] = queues[victim][:last]
			stolen = true
		}

		dev := e.Reg.Get(pick)
		wasProbe := victim < 0 && fx.brs[pick].beginProbe()
		// Stage ahead: while h executes, the pool pre-quantizes the operands
		// of the next HLOPs still queued behind it (a stolen h left the
		// thief's queue empty, so there is nothing to stage for).
		for i := 0; i < pf.peekDepth() && i < len(queues[pick]); i++ {
			pf.issue(pick, dev, queues[pick][i])
		}
		result, execErr := e.executeHLOP(pf, pick, dev, h)
		if execErr != nil {
			pf.cancel(h)
			if errors.Is(execErr, device.ErrTooLarge) {
				a, b, splitErr := hlop.Split(h, nextID)
				if splitErr != nil {
					return nil, fmt.Errorf("core: HLOP %d overflows %s and cannot split: %w", h.ID, dev.Name(), splitErr)
				}
				telemetry.HLOPSplits.Inc()
				nextID++
				remaining++ // one HLOP became two
				lanes[pick].Compute += splitCost
				a.ReadyAt, b.ReadyAt = lanes[pick].Compute, lanes[pick].Compute
				queues[pick] = append([]*hlop.HLOP{a, b}, queues[pick]...)
				continue
			}
			retries[h]++
			busy, idle, opened := e.noteFault(fx.rz, fx.brs[pick], fx.deg, rt, pick, dev, h, lanes[pick].Compute, wasProbe)
			lanes[pick].Compute += busy
			res.busy[dev.Name()] += busy
			if retries[h] >= fx.rz.MaxRetries {
				return nil, fmt.Errorf("core: HLOP %d failed on %s after retries: %w", h.ID, dev.Name(), execErr)
			}
			if opened {
				openAt := lanes[pick].Compute
				lanes[pick].Compute += idle // quarantine is idle virtual time
				moved, kept := 0, 0
				backlog := queues[pick]
				queues[pick] = nil
				for bi, b := range backlog {
					// Hold the last backlog item back as the re-admission
					// probe: an emptied queue would leave a recovered
					// device quarantined forever with nothing to probe.
					if bi == len(backlog)-1 && kept == 0 {
						queues[pick] = append(queues[pick], b)
						continue
					}
					alt := e.fallbackQueue(ctx, pick, b)
					if alt < 0 {
						queues[pick] = append(queues[pick], b) // probe fodder
						kept++
						continue
					}
					pf.cancel(b) // a prestage for this queue will never be consumed
					fx.deg.noteReroute(b, b.AssignedQueue)
					telemetry.HLOPsRerouted.With(dev.Name()).Inc()
					b.AssignedQueue = alt
					b.ReadyAt = openAt
					queues[alt] = append(queues[alt], b)
					moved++
				}
				fx.deg.noteQuarantine(Quarantine{Device: dev.Name(), At: openAt, Cooldown: idle, Rerouted: moved})
			}
			// Reroute the failed HLOP to the best healthy fallback; with no
			// fallback it stays at the front of the owner's queue and the
			// retry bound decides between recovery and surfacing the error.
			if alt := e.fallbackQueue(ctx, pick, h); alt >= 0 {
				fx.deg.noteReroute(h, h.AssignedQueue)
				telemetry.HLOPsRerouted.With(dev.Name()).Inc()
				h.AssignedQueue = alt
				h.ReadyAt = lanes[pick].Compute
				queues[alt] = append(queues[alt], h)
			} else {
				h.ReadyAt = lanes[pick].Compute
				queues[pick] = append([]*hlop.HLOP{h}, queues[pick]...)
			}
			continue
		}
		e.noteRecovery(fx.brs[pick], fx.deg, rt, pick, dev)

		stageB := e.stagingBytes(dev, h)
		tr.AllocStaging(stageB)
		exec, inT, outT, bytes := e.hlopParts(dev, h, etc)
		exec += takeInjectedDelay(dev)
		ready := h.ReadyAt
		if stolen {
			// The prefetched input belonged to the victim's queue: the
			// thief's transfer cannot predate its steal decision.
			ready = lanes[pick].Compute
		}
		adm := lanes[pick].Admit(ready, dev.DispatchOverhead(), inT, exec, outT, e.DoubleBuffer)
		ran[pick] = true
		res.busy[dev.Name()] += adm.End - adm.Start
		res.comm.Add(bytes, inT+outT, adm.Exposed)

		h.Result = result
		h.ExecQueue = pick
		res.done = append(res.done, doneHLOP{h: h, finish: adm.OutEnd})
		remaining--
		if rt != nil {
			rt.hlopDone(pick, victim, h, adm.Start, adm.End)
			rt.hlopXfer(pick, h, adm)
		}
		tr.Record(trace.Event{
			HLOP: h.ID, Device: dev.Name(), Op: h.Op.String(),
			Start: adm.Start, End: adm.End,
			BytesIn: h.InputBytes(dev.ElemBytes()), BytesOut: h.OutputBytes(dev.ElemBytes()),
			Stolen: stolen || h.AssignedQueue != pick, Critical: h.Critical,
		})
		tr.FreeStaging(stageB)
	}

	for i := 0; i < n; i++ {
		if !ran[i] {
			continue
		}
		// The outbound tail no compute follows is the one transfer cost the
		// pipeline cannot hide.
		res.comm.Add(0, 0, lanes[i].Drain())
		if m := lanes[i].Makespan(); m > res.deviceMakespan {
			res.deviceMakespan = m
		}
	}
	if res.deviceMakespan == 0 {
		res.deviceMakespan = overhead
	}
	return res, nil
}

// pickVictim returns the queue index the thief should steal from. Victims
// are scored by how well the thief suits the stealable (tail) HLOP's opcode
// relative to its current owner — with queue depth as the tiebreak — so in
// mixed-opcode pools (ExecuteBatch) a device gravitates toward work it is
// relatively fast at. For single-opcode runs every victim scores equally and
// this reduces to the paper's steal-from-the-deepest-queue rule.
func (e *Engine) pickVictim(ctx *sched.Context, pol sched.Policy, queues [][]*hlop.HLOP, thief int, etc *device.ExecTimeCache) int {
	telemetry.StealAttempts.Inc()
	thiefDev := e.Reg.Get(thief)
	best, bestLen := -1, 0
	bestScore := 0.0
	for vq := range queues {
		if vq == thief || len(queues[vq]) == 0 || !ctx.StealableVictim(vq) {
			continue
		}
		tail := queues[vq][len(queues[vq])-1]
		if !pol.CanSteal(ctx, thief, vq, tail) {
			telemetry.StealRejected.Inc()
			continue
		}
		// Relative affinity: how much faster the thief runs this opcode
		// than the queue's owner would.
		score := etc.ExecTime(e.Reg.Get(vq), tail.Op, tail.Elems) / etc.ExecTime(thiefDev, tail.Op, tail.Elems)
		if best < 0 || score > bestScore*1.001 ||
			(score > bestScore*0.999 && len(queues[vq]) > bestLen) {
			best, bestLen, bestScore = vq, len(queues[vq]), score
		}
	}
	return best
}

// fallbackQueue picks the most accurate other eligible device for a failed
// HLOP.
func (e *Engine) fallbackQueue(ctx *sched.Context, failed int, h *hlop.HLOP) int {
	best := -1
	for _, i := range ctx.Eligible() {
		if i == failed || !e.Reg.Get(i).Supports(h.Op) {
			continue
		}
		if best < 0 || e.Reg.Get(i).AccuracyRank() < e.Reg.Get(best).AccuracyRank() {
			best = i
		}
	}
	return best
}

// hlopParts models one HLOP's cost components on a device: execution time
// plus the input and output transfer times the two-stage lane schedules.
// Devices with private memory (Edge TPU) move raw payload over their link;
// host-memory devices (CPU, GPU) stage the opcode's calibrated traffic
// through LPDDR4. How much of the transfer time is exposed is no longer
// decided here — interconnect.Lane.Admit serializes the transfer stage
// against the compute stage and reports the true stall.
func (e *Engine) hlopParts(dev device.Device, h *hlop.HLOP, etc *device.ExecTimeCache) (exec, inT, outT float64, bytes int64) {
	exec = etc.ExecTime(dev, h.Op, h.Elems)
	inB := h.InputBytes(dev.ElemBytes())
	outB := h.OutputBytes(dev.ElemBytes())
	if dev.MemoryBytes() == 0 {
		inB = device.StageBytes(h.Op, inB)
		outB = device.StageBytes(h.Op, outB)
	}
	link := dev.Link()
	return exec, link.TransferTime(inB), link.TransferTime(outB), inB + outB
}

// accountFootprint registers the run's long-lived memory: application input
// and output buffers. Per-HLOP staging (device-precision copies, double
// buffers) is accounted live in the execution loop, so PeakBytes reflects
// what is actually resident at once — Edge TPU HLOPs stage INT8 copies, a
// quarter of the FP32 the GPU keeps, which is how SHMT's footprint stays
// near (or below) the baseline despite the extra buffers (Fig. 11).
func (e *Engine) accountFootprint(tr *trace.Trace, v *vop.VOP, hs []*hlop.HLOP) {
	for _, in := range v.Inputs {
		tr.AddBase(in.Bytes(tensor.ElemSize))
	}
	rows, cols := v.OutputShape()
	tr.AddBase(int64(rows*cols) * tensor.ElemSize)
}

// bindOutputViews attaches to every HLOP a strided view of the VOP output
// covering its region, through which shared-memory devices write results
// directly.
func bindOutputViews(out *tensor.Matrix, hs []*hlop.HLOP) error {
	for _, h := range hs {
		vw, err := out.View(h.Region)
		if err != nil {
			return fmt.Errorf("core: binding output view for HLOP %d: %w", h.ID, err)
		}
		h.Out = vw
	}
	return nil
}

// stagingBytes returns the transient host bytes an HLOP pins while executing
// on dev: the device-precision input and output copies, doubled when double
// buffering prefetches the next partition, plus the kernel's intermediate
// stage buffers. On shared-memory devices, inputs aliased through views and
// results written through the output view pin nothing beyond the base
// tensors, so they drop out of the staging footprint.
func (e *Engine) stagingBytes(dev device.Device, h *hlop.HLOP) int64 {
	elem := dev.ElemBytes()
	shared := dev.MemoryBytes() == 0
	var stage int64
	for _, in := range h.Inputs {
		if shared && in.IsView() {
			continue // reads the parent tensor in place
		}
		stage += in.Bytes(elem)
	}
	if !shared || h.Out == nil {
		stage += h.OutputBytes(elem)
	}
	if e.DoubleBuffer {
		stage *= 2
	}
	return stage
}
