package core

import (
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

// BenchmarkEngineSteadyState measures the full partition→schedule→execute→
// aggregate path at steady state. With the tensor arena recycling HLOP
// blocks and the ExecTime memo replacing the O(devices²)-per-step cost-model
// calls, allocs/op should stay bounded by per-run bookkeeping (queues,
// report) plus the one escaping output matrix — not grow with bytes
// processed.
func BenchmarkEngineSteadyState(b *testing.B) {
	reg, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		b.Fatal(err)
	}
	m := workload.Mixed(256, 256, workload.Profile{TileSize: 64}, 1)
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 16, MinTile: 8}}
	b.SetBytes(int64(m.Len() * 8))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v, err := vop.New(vop.OpSobel, m)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := e.Run(v); err != nil {
			b.Fatal(err)
		}
	}
}
