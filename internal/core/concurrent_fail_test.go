package core

import (
	"testing"
	"time"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
)

// TestConcurrentPermanentFailureTerminates is the regression test for the
// concurrent engine's failure path. A worker that hits a terminal error
// while holding a popped HLOP never decrements outstanding for it, so
// draining the queues alone left outstanding > 0 and every other worker spun
// in its obtain loop forever. With the CPU hosting the runtime, the only
// kernel-eligible device here is the permanently failing GPU: its worker
// fails terminally with an HLOP in hand while the CPU worker idles — the
// exact livelock shape. The run must surface the injected error promptly.
func TestConcurrentPermanentFailureTerminates(t *testing.T) {
	flaky := &flakyDevice{Device: gpu.New(gpu.Config{})}
	flaky.failures.Store(1 << 20) // never recovers
	reg, err := device.NewRegistry(cpu.New(1), flaky)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Concurrent: true,
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}}

	done := make(chan error, 1)
	go func() {
		_, err := e.Run(sobelVOP(t, 64, 21))
		done <- err
	}()
	select {
	case err := <-done:
		if err == nil {
			t.Fatal("permanent failure with no fallback must surface")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent engine livelocked after a terminal device failure")
	}
}
