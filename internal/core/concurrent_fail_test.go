package core

import (
	"testing"
	"time"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
)

// TestConcurrentPermanentFailureTerminates is the regression test for the
// concurrent engine's failure path. A worker that hits a terminal error
// while holding a popped HLOP never decrements outstanding for it, so
// draining the queues alone left outstanding > 0 and every other worker spun
// in its obtain loop forever. With the CPU hosting the runtime, the only
// kernel-eligible device here is the permanently failing GPU: its worker
// fails with an HLOP in hand while the CPU worker idles — the exact livelock
// shape. The run must terminate promptly; with graceful degradation the
// GPU's breaker opens and the whole workload reroutes to the CPU, so the
// batch now completes instead of aborting.
func TestConcurrentPermanentFailureTerminates(t *testing.T) {
	flaky := &flakyDevice{Device: gpu.New(gpu.Config{})}
	flaky.failures.Store(1 << 20) // never recovers
	reg, err := device.NewRegistry(cpu.New(1), flaky)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Concurrent: true,
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}}

	type outcome struct {
		rep *Report
		err error
	}
	done := make(chan outcome, 1)
	go func() {
		rep, err := e.Run(sobelVOP(t, 64, 21))
		done <- outcome{rep, err}
	}()
	select {
	case o := <-done:
		if o.err != nil {
			t.Fatalf("dead GPU should degrade onto the CPU, got error: %v", o.err)
		}
		if o.rep.Degraded == nil || len(o.rep.Degraded.Quarantines) == 0 {
			t.Fatalf("Degraded report missing after a permanent device failure: %+v", o.rep.Degraded)
		}
		if o.rep.Degraded.Rerouted == 0 {
			t.Fatal("dead device's HLOPs were not rerouted")
		}
		if quar := e.QuarantinedDevices(); len(quar) != 1 || quar[0] != "gpu" {
			t.Fatalf("quarantined devices = %v, want [gpu]", quar)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("concurrent engine livelocked after a terminal device failure")
	}
}
