package core

import (
	"math"
	"sync"

	"shmt/internal/device"
	"shmt/internal/hlop"
	"shmt/internal/telemetry"
)

// This file is the engines' graceful-degradation layer: instead of "retry
// then abort", a device that keeps failing is quarantined behind a per-device
// circuit breaker, its backlog is redistributed to healthy devices, transient
// errors are retried under exponential backoff, and the whole episode is
// quantified in Report.Degraded. The breaker state machine:
//
//	closed --(threshold consecutive failures)--> open
//	open   --(cooldown elapses on the device's virtual clock, next own-queue
//	          HLOP becomes a probe)--> half-open
//	half-open --(probe succeeds)--> closed (re-admitted)
//	half-open --(probe fails)--> open, cooldown doubled
//
// Quarantine is modelled as idle virtual time: when the breaker opens, the
// device's clock jumps past the cooldown, so healthy devices (whose clocks
// are earlier) drain its queue through the existing steal path before the
// probe window arrives. Breaker state persists across an Engine's runs, so a
// device that died in one batch is not re-assigned work in the next.

// Resilience tunes the engines' fault handling. The zero value selects the
// defaults below; it is always active — a run with no failures pays nothing.
type Resilience struct {
	// BreakerThreshold is the consecutive-failure count that opens a
	// device's breaker (default 3).
	BreakerThreshold int
	// BreakerCooldown is the initial quarantine length in virtual seconds
	// (default 5ms). Each failed re-admission probe doubles it, up to
	// CooldownCap.
	BreakerCooldown float64
	// CooldownCap bounds the doubled cooldown (default 1s).
	CooldownCap float64
	// BackoffBase is the first retry backoff in virtual seconds (default
	// 200µs); consecutive failures double it up to BackoffCap.
	BackoffBase float64
	// BackoffCap bounds the exponential backoff (default 20ms).
	BackoffCap float64
	// MaxRetries bounds how many dispatches one HLOP may fail before the
	// run errors out (default 4, the historical maxExecuteRetries).
	MaxRetries int
}

func (r Resilience) withDefaults() Resilience {
	if r.BreakerThreshold <= 0 {
		r.BreakerThreshold = 3
	}
	if r.BreakerCooldown <= 0 {
		r.BreakerCooldown = 5e-3
	}
	if r.CooldownCap <= 0 {
		r.CooldownCap = 1.0
	}
	if r.BackoffBase <= 0 {
		r.BackoffBase = 200e-6
	}
	if r.BackoffCap <= 0 {
		r.BackoffCap = 20e-3
	}
	if r.MaxRetries <= 0 {
		r.MaxRetries = maxExecuteRetries
	}
	return r
}

// Breaker states, also the values of the shmt_breaker_state gauge.
const (
	brClosed int32 = iota
	brOpen
	brHalfOpen
)

// breaker is one device's circuit breaker. All methods are safe for
// concurrent use (the concurrent engine's workers consult each other's
// breakers through fallbackQueue and the scheduler's quarantine filter).
type breaker struct {
	mu          sync.Mutex
	state       int32
	consecFails int
	opens       int
	cooldown    float64
}

// quarantined reports whether the device is refusing regular work.
func (b *breaker) quarantined() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state == brOpen
}

// beginProbe turns an open breaker half-open; the caller executes the next
// HLOP as the re-admission probe. Returns whether this dispatch is a probe.
func (b *breaker) beginProbe() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == brOpen {
		b.state = brHalfOpen
		return true
	}
	return false
}

// onFailure records a failed dispatch: it computes the exponential backoff to
// charge and decides whether the breaker opens (threshold reached, or a
// failed probe re-opening with doubled cooldown).
func (b *breaker) onFailure(rz Resilience) (backoff float64, opened bool, cooldown float64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails++
	exp := b.consecFails - 1
	if exp > 16 {
		exp = 16
	}
	backoff = rz.BackoffBase * math.Pow(2, float64(exp))
	if backoff > rz.BackoffCap {
		backoff = rz.BackoffCap
	}
	switch {
	case b.state == brHalfOpen:
		b.opens++
		b.cooldown *= 2
		if b.cooldown > rz.CooldownCap {
			b.cooldown = rz.CooldownCap
		}
		b.state = brOpen
		opened, cooldown = true, b.cooldown
	case b.state == brClosed && b.consecFails >= rz.BreakerThreshold:
		b.opens++
		b.cooldown = rz.BreakerCooldown
		b.state = brOpen
		opened, cooldown = true, b.cooldown
	}
	return backoff, opened, cooldown
}

// onSuccess closes the breaker; readmitted reports whether this success was a
// half-open probe (a quarantined device returning to service).
func (b *breaker) onSuccess() (readmitted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	readmitted = b.state == brHalfOpen
	b.state = brClosed
	b.consecFails = 0
	return readmitted
}

// breakerSet lazily builds the engine's persistent per-device breakers.
func (e *Engine) breakerSet() []*breaker {
	e.brMu.Lock()
	defer e.brMu.Unlock()
	if len(e.brs) != e.Reg.Len() {
		e.brs = make([]*breaker, e.Reg.Len())
		for i := range e.brs {
			e.brs[i] = &breaker{}
		}
		// A new breaker set means a new (or resized) device set: any plan
		// captured against the old queue indices is meaningless.
		e.planEpoch.Add(1)
	}
	return e.brs
}

// QuarantinedDevices returns the names of devices whose breaker is currently
// open — work submitted now will not be assigned to them.
func (e *Engine) QuarantinedDevices() []string {
	if e.Reg == nil {
		return nil
	}
	var names []string
	for i, b := range e.breakerSet() {
		if b.quarantined() {
			names = append(names, e.Reg.Get(i).Name())
		}
	}
	return names
}

// Quarantine is one breaker-open event.
type Quarantine struct {
	// Device is the quarantined device's name.
	Device string
	// At is the virtual time the breaker opened.
	At float64
	// Cooldown is the quarantine length in virtual seconds.
	Cooldown float64
	// Rerouted is how many backlog HLOPs were redistributed when the
	// breaker opened.
	Rerouted int
}

// Degraded quantifies a run's graceful-degradation activity: which devices
// were quarantined, how much work was rerouted, and the quality impact when
// rerouted work executed at lower accuracy. Nil when the run saw no faults.
type Degraded struct {
	// Quarantines lists breaker-open events in occurrence order.
	Quarantines []Quarantine
	// FailedDispatches counts dispatches that returned an error.
	FailedDispatches int
	// FailedDispatchSeconds is the virtual time charged for them (dispatch
	// overhead plus backoff).
	FailedDispatchSeconds float64
	// BackoffSeconds is the portion of that spent in exponential backoff.
	BackoffSeconds float64
	// Rerouted counts HLOPs the failure path moved off their assigned
	// device (steals are not degradation and are not counted).
	Rerouted int
	// ReroutedElems is those HLOPs' total element count.
	ReroutedElems int
	// Downgraded counts rerouted HLOPs that ultimately executed on a device
	// with a worse accuracy rank than originally assigned — e.g. exact work
	// that fell back to the INT8 NPU.
	Downgraded int
	// DowngradedElems is the element count computed at reduced accuracy;
	// relative to the VOP size it bounds the quality impact.
	DowngradedElems int
	// ProbeSuccesses counts re-admissions (quarantined device recovered).
	ProbeSuccesses int
	// ProbeFailures counts probes that re-opened the breaker.
	ProbeFailures int
}

// degTracker accumulates one run's Degraded report. Safe for concurrent use.
type degTracker struct {
	mu        sync.Mutex
	d         Degraded
	origQueue map[*hlop.HLOP]int // first pre-reroute queue, per moved HLOP
}

func newDegTracker() *degTracker {
	return &degTracker{origQueue: map[*hlop.HLOP]int{}}
}

func (t *degTracker) noteFailure(charge, backoff float64) {
	t.mu.Lock()
	t.d.FailedDispatches++
	t.d.FailedDispatchSeconds += charge
	t.d.BackoffSeconds += backoff
	t.mu.Unlock()
}

func (t *degTracker) noteQuarantine(q Quarantine) {
	t.mu.Lock()
	t.d.Quarantines = append(t.d.Quarantines, q)
	t.mu.Unlock()
}

func (t *degTracker) noteReroute(h *hlop.HLOP, from int) {
	t.mu.Lock()
	if _, seen := t.origQueue[h]; !seen {
		t.origQueue[h] = from
	}
	t.d.Rerouted++
	t.mu.Unlock()
}

func (t *degTracker) noteProbe(ok bool) {
	t.mu.Lock()
	if ok {
		t.d.ProbeSuccesses++
	} else {
		t.d.ProbeFailures++
	}
	t.mu.Unlock()
}

// finish resolves quality impact — rerouted HLOPs that executed on a device
// less accurate than originally assigned — and returns the report, or nil
// when the run saw no degradation at all.
func (t *degTracker) finish(reg *device.Registry, done []doneHLOP) *Degraded {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.d.FailedDispatches == 0 && len(t.d.Quarantines) == 0 && t.d.Rerouted == 0 {
		return nil
	}
	for _, dn := range done {
		orig, moved := t.origQueue[dn.h]
		if !moved {
			continue
		}
		t.d.ReroutedElems += dn.h.Elems
		if reg.Get(dn.h.ExecQueue).AccuracyRank() > reg.Get(orig).AccuracyRank() {
			t.d.Downgraded++
			t.d.DowngradedElems += dn.h.Elems
		}
	}
	d := t.d
	return &d
}

// faultState bundles one run's degradation machinery: the resolved tuning,
// the engine's persistent breakers, and the run-scoped degradation tracker.
type faultState struct {
	rz  Resilience
	brs []*breaker
	deg *degTracker
}

func (e *Engine) newFaultState() *faultState {
	return &faultState{rz: e.Resilience.withDefaults(), brs: e.breakerSet(), deg: newDegTracker()}
}

// quarantined is the sched.Context hook: policies route new work around
// devices whose breaker is open.
func (f *faultState) quarantined(i int) bool { return f.brs[i].quarantined() }

// injectedDelayer is implemented by the chaos wrapper (and any future
// instrumented device) to surface injected virtual latency; asserting the
// interface here keeps core from importing internal/chaos.
type injectedDelayer interface {
	TakeInjectedDelay() float64
}

// takeInjectedDelay drains a device's pending injected delay, if any.
func takeInjectedDelay(dev device.Device) float64 {
	if d, ok := dev.(injectedDelayer); ok {
		return d.TakeInjectedDelay()
	}
	return 0
}

// noteFault centralizes both engines' failed-dispatch bookkeeping so the
// accounting cannot drift between them again: the returned busy charge is the
// dispatch overhead plus exponential backoff (charged to the device's clock
// AND its busy time), idle is the quarantine cooldown to advance the clock by
// when the breaker opened, and the telemetry counters and device-lane fault
// span are recorded here.
func (e *Engine) noteFault(rz Resilience, br *breaker, deg *degTracker, rt *runTel,
	qi int, dev device.Device, h *hlop.HLOP, now float64, wasProbe bool) (busy, idle float64, opened bool) {

	telemetry.HLOPRetries.Inc()
	telemetry.FailedDispatches.With(dev.Name()).Inc()
	backoff, opened, cooldown := br.onFailure(rz)
	busy = dev.DispatchOverhead() + backoff
	telemetry.FailedDispatchVirtualNanos.Add(int64(busy * 1e9))
	telemetry.Backoffs.Inc()
	telemetry.BackoffVirtualNanos.Add(int64(backoff * 1e9))
	deg.noteFailure(busy, backoff)
	if wasProbe {
		deg.noteProbe(false)
		telemetry.BreakerProbeFailure.Inc()
	}
	if opened {
		idle = cooldown
		telemetry.BreakerOpens.With(dev.Name()).Inc()
		// The eligible device set shrank: cached execution plans may route
		// work to the quarantined device, so invalidate them all.
		e.planEpoch.Add(1)
		e.notifyBreaker(dev.Name(), "open")
	}
	if rt != nil {
		rt.dispatchFailed(qi, h, now, now+busy)
		if opened {
			rt.breakerState(qi, int64(brOpen))
		}
	}
	return busy, idle, opened
}

// noteRecovery records a successful dispatch's breaker bookkeeping; true when
// the device was just re-admitted from quarantine.
func (e *Engine) noteRecovery(br *breaker, deg *degTracker, rt *runTel, qi int, dev device.Device) bool {
	if !br.onSuccess() {
		return false
	}
	deg.noteProbe(true)
	telemetry.BreakerProbeSuccess.Inc()
	// The re-admitted device widens the eligible set; plans captured while it
	// was quarantined would keep routing around it, so invalidate them.
	e.planEpoch.Add(1)
	e.notifyBreaker(dev.Name(), "readmitted")
	if rt != nil {
		rt.breakerState(qi, int64(brClosed))
	}
	return true
}
