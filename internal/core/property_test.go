package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/hlop"
	"shmt/internal/kernels"
	"shmt/internal/sched"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Property: for every opcode, exact partitioned execution through the full
// engine equals whole-matrix exact execution (halos, aggregation, reduction
// merging and the GEMM band path are all exercised), at random sizes and
// partition counts.
func TestPropertyEngineExactness(t *testing.T) {
	ops := []vop.Opcode{
		vop.OpSqrt, vop.OpTanh, vop.OpRelu,
		vop.OpSobel, vop.OpLaplacian, vop.OpMeanFilter, vop.OpSRAD,
		vop.OpDCT8x8, vop.OpFFT,
		vop.OpReduceSum, vop.OpReduceMax, vop.OpReduceAverage,
		vop.OpGEMM, vop.OpStencil, vop.OpConv,
	}
	reg, err := device.NewRegistry(cpu.New(1))
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := ops[r.Intn(len(ops))]

		rows := 8 * (1 + r.Intn(8))
		cols := rows
		if op == vop.OpFFT {
			cols = 1 << (3 + r.Intn(4))
		}
		mk := func(lo, hi float64) *tensor.Matrix {
			m := tensor.NewMatrix(rows, cols)
			for i := range m.Data {
				m.Data[i] = lo + (hi-lo)*r.Float64()
			}
			return m
		}

		var inputs []*tensor.Matrix
		attrs := map[string]float64{}
		switch op {
		case vop.OpGEMM:
			inner := 4 + r.Intn(12)
			a := tensor.NewMatrix(rows, inner)
			b := tensor.NewMatrix(inner, 4+r.Intn(12))
			for i := range a.Data {
				a.Data[i] = r.NormFloat64()
			}
			for i := range b.Data {
				b.Data[i] = r.NormFloat64()
			}
			inputs = []*tensor.Matrix{a, b}
		case vop.OpConv:
			k := tensor.NewMatrix(3, 3)
			for i := range k.Data {
				k.Data[i] = r.NormFloat64()
			}
			inputs = []*tensor.Matrix{mk(-1, 1), k}
		case vop.OpStencil:
			inputs = []*tensor.Matrix{mk(70, 90), mk(0, 1)}
			attrs["steps"] = float64(1 + r.Intn(3))
		case vop.OpSqrt, vop.OpSRAD:
			inputs = []*tensor.Matrix{mk(0.1, 2)}
		default:
			inputs = []*tensor.Matrix{mk(-1, 1)}
		}

		v, err := vop.New(op, inputs...)
		if err != nil {
			return false
		}
		for k, x := range attrs {
			v.SetAttr(k, x)
		}

		e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "cpu"},
			Spec: hlop.Spec{TargetPartitions: 1 + r.Intn(12), MinTile: 8, MinVectorElems: 32}}
		rep, err := e.Run(v)
		if err != nil {
			return false
		}
		want, err := cpu.New(1).Execute(op, inputs, attrs)
		if err != nil {
			return false
		}
		if op.IsReduction() {
			// Raw device execution yields the canonical partial (e.g.
			// reduce_average's [sum, count]); finalize it the way the
			// engine's aggregator does.
			want, err = kernels.MergePartials(op, []*tensor.Matrix{want}, inputs[0].Len())
			if err != nil {
				return false
			}
		}
		if rep.Output.Rows != want.Rows || rep.Output.Cols != want.Cols {
			return false
		}
		for i := range want.Data {
			d := rep.Output.Data[i] - want.Data[i]
			if d > 1e-9 || d < -1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
