package core

import (
	"sync"

	"shmt/internal/device"
	"shmt/internal/hlop"
	"shmt/internal/parallel"
	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// prefetcher is the wall-clock half of double-buffered HLOP pipelining:
// while HLOP k executes, it pre-quantizes and pre-materializes HLOP k+1's
// operands for private-memory devices (the boundary-staging cost the
// zero-copy datapath could not eliminate), bounded to Engine.Prefetch
// staged-ahead HLOPs per device. Staging runs on internal/parallel's worker
// pool, so it needs no goroutines of its own and can never deadlock against
// kernel fan-out.
//
// Two rules keep results bit-identical with prefetch off:
//
//   - staging goes through the exact dispatch path (device.Prestager is
//     implemented as the first half of ExecuteInto), and
//   - a staged set is only consumed by the device it was staged for — a
//     steal or reroute that moves the HLOP cancels the prestage instead.
//
// Operands shared by several HLOPs of a run (a GEMM right-hand matrix, a
// convolution kernel) are staged once and kept device-resident for every
// consumer, instead of being re-quantized per HLOP.
type prefetcher struct {
	depth int

	mu       sync.Mutex
	jobs     map[*hlop.HLOP]*prestageJob
	inflight []int // async jobs outstanding per queue index
	shared   map[*tensor.Matrix]bool
	resident map[residentKey]*tensor.Matrix
	resBytes int64
}

// prestageJob is one in-flight asynchronous staging of an HLOP's operands.
type prestageJob struct {
	qi   int // queue index the set was staged for
	done chan struct{}
	st   *device.Staged
}

// residentKey identifies a device-resident shared operand: the same matrix
// staged for a different device or opcode quantizes differently, so both
// are part of the key.
type residentKey struct {
	qi int
	op vop.Opcode
	in *tensor.Matrix
}

// newPrefetcher returns the run's prefetcher, or nil when Engine.Prefetch
// disables it. hs is scanned for operands shared across HLOPs — only those
// are worth keeping device-resident.
func (e *Engine) newPrefetcher(hs []*hlop.HLOP) *prefetcher {
	if e.Prefetch <= 0 {
		return nil
	}
	seen := make(map[*tensor.Matrix]int)
	for _, h := range hs {
		for _, in := range h.Inputs {
			seen[in]++
		}
	}
	shared := make(map[*tensor.Matrix]bool)
	for in, n := range seen {
		if n > 1 {
			shared[in] = true
		}
	}
	return &prefetcher{
		depth:    e.Prefetch,
		jobs:     make(map[*hlop.HLOP]*prestageJob),
		inflight: make([]int, e.Reg.Len()),
		shared:   shared,
		resident: make(map[residentKey]*tensor.Matrix),
	}
}

// peekDepth is how many queue-head HLOPs the engines offer to issue; 0 when
// prefetch is off (nil-safe).
func (pf *prefetcher) peekDepth() int {
	if pf == nil {
		return 0
	}
	return pf.depth
}

// issue starts staging h's operands for the device at queue index qi, if the
// device prestages, the per-device depth allows it, and the operand set fits
// device memory (oversized HLOPs are left for the dispatch path, whose
// ErrTooLarge drives the split logic). Idempotent per HLOP. Nil-safe.
func (pf *prefetcher) issue(qi int, dev device.Device, h *hlop.HLOP) {
	if pf == nil {
		return
	}
	ps, ok := dev.(device.Prestager)
	if !ok {
		return
	}
	pf.mu.Lock()
	if _, dup := pf.jobs[h]; dup || pf.inflight[qi] >= pf.depth || !ps.CanStage(h.Op, h.Inputs) {
		pf.mu.Unlock()
		return
	}
	job := &prestageJob{qi: qi, done: make(chan struct{})}
	pf.jobs[h] = job
	pf.inflight[qi]++
	pf.mu.Unlock()

	telemetry.PrefetchIssued.Inc()
	run := func() {
		job.st = pf.stageSet(ps, qi, h)
		telemetry.PrefetchBufferBytes.Add(job.st.Bytes)
		close(job.done)
	}
	if !parallel.Try(run) {
		run() // pool saturated: stage on the caller, the set is still reusable
	}
}

// stageSet stages every operand of h for the device at qi: shared operands
// come from (or populate) the resident cache, the rest are staged fresh and
// owned by the returned set.
func (pf *prefetcher) stageSet(ps device.Prestager, qi int, h *hlop.HLOP) *device.Staged {
	st := &device.Staged{
		Inputs: make([]*tensor.Matrix, len(h.Inputs)),
		Keep:   make([]bool, len(h.Inputs)),
	}
	for i, in := range h.Inputs {
		if pf.isShared(in) {
			st.Inputs[i] = pf.residentFor(ps, qi, h.Op, in)
			st.Keep[i] = true
			continue
		}
		b := ps.StageInput(h.Op, in)
		st.Inputs[i] = b
		st.Bytes += b.Bytes(tensor.ElemSize)
	}
	return st
}

func (pf *prefetcher) isShared(in *tensor.Matrix) bool {
	pf.mu.Lock()
	defer pf.mu.Unlock()
	return pf.shared[in]
}

// wantsStaged reports whether the synchronous dispatch path should stage h
// through the prefetcher anyway: true when a shared operand is resident (or
// residentable), so consecutive HLOPs reuse one staging instead of
// re-quantizing it each. Nil-safe.
func (pf *prefetcher) wantsStaged(h *hlop.HLOP) bool {
	if pf == nil {
		return false
	}
	pf.mu.Lock()
	defer pf.mu.Unlock()
	for _, in := range h.Inputs {
		if pf.shared[in] {
			return true
		}
	}
	return false
}

// residentFor returns the device-resident staging of a shared operand,
// staging and installing it on first use. Concurrent first uses may stage
// twice; the loser's copy is released and the winner is shared.
func (pf *prefetcher) residentFor(ps device.Prestager, qi int, op vop.Opcode, in *tensor.Matrix) *tensor.Matrix {
	key := residentKey{qi: qi, op: op, in: in}
	pf.mu.Lock()
	if m, ok := pf.resident[key]; ok {
		pf.mu.Unlock()
		return m
	}
	pf.mu.Unlock()
	m := ps.StageInput(op, in)
	pf.mu.Lock()
	if winner, ok := pf.resident[key]; ok {
		pf.mu.Unlock()
		tensor.PutMatrix(m)
		return winner
	}
	pf.resident[key] = m
	b := m.Bytes(tensor.ElemSize)
	pf.resBytes += b
	pf.mu.Unlock()
	telemetry.PrefetchBufferBytes.Add(b)
	return m
}

// take claims h's prestaged operand set for the device at queue index qi.
// It returns nil on a miss; a set staged for a different device — the HLOP
// was stolen or rerouted after the prestage was issued — is cancelled and
// released, since the new device quantizes (or doesn't) differently.
// Nil-safe.
func (pf *prefetcher) take(qi int, h *hlop.HLOP) *device.Staged {
	if pf == nil {
		return nil
	}
	pf.mu.Lock()
	job, ok := pf.jobs[h]
	if !ok {
		pf.mu.Unlock()
		return nil
	}
	delete(pf.jobs, h)
	pf.mu.Unlock()
	<-job.done
	pf.mu.Lock()
	pf.inflight[job.qi]--
	pf.mu.Unlock()
	telemetry.PrefetchBufferBytes.Add(-job.st.Bytes)
	if job.qi != qi {
		job.st.Release()
		telemetry.PrefetchCancelled.Inc()
		return nil
	}
	telemetry.PrefetchHits.Inc()
	return job.st
}

// cancel invalidates h's prestage, if any: a breaker-open redistribution or
// failure reroute moved the HLOP, so the staged set will never be consumed
// where it was staged. Waits for an in-flight staging to finish (staging is
// short and arena buffers must not leak). Nil-safe.
func (pf *prefetcher) cancel(h *hlop.HLOP) {
	if pf == nil {
		return
	}
	pf.mu.Lock()
	job, ok := pf.jobs[h]
	if !ok {
		pf.mu.Unlock()
		return
	}
	delete(pf.jobs, h)
	pf.mu.Unlock()
	<-job.done
	pf.mu.Lock()
	pf.inflight[job.qi]--
	pf.mu.Unlock()
	telemetry.PrefetchBufferBytes.Add(-job.st.Bytes)
	job.st.Release()
	telemetry.PrefetchCancelled.Inc()
}

// drain releases every unconsumed prestage and the resident-operand cache.
// Called once when the run loop exits, before aggregation releases the
// HLOP result buffers. Nil-safe.
func (pf *prefetcher) drain() {
	if pf == nil {
		return
	}
	pf.mu.Lock()
	jobs := pf.jobs
	pf.jobs = make(map[*hlop.HLOP]*prestageJob)
	pf.mu.Unlock()
	for _, job := range jobs {
		<-job.done
		telemetry.PrefetchBufferBytes.Add(-job.st.Bytes)
		job.st.Release()
		telemetry.PrefetchCancelled.Inc()
	}
	pf.mu.Lock()
	resident := pf.resident
	resBytes := pf.resBytes
	pf.resident = make(map[residentKey]*tensor.Matrix)
	pf.resBytes = 0
	pf.mu.Unlock()
	for _, m := range resident {
		tensor.PutMatrix(m)
	}
	telemetry.PrefetchBufferBytes.Add(-resBytes)
}

// executeHLOP dispatches h on dev, consuming a prestaged operand set when
// one is ready for this device, staging through the resident-operand cache
// when a shared operand makes that worthwhile, and falling back to the
// device's plain dispatch path otherwise. All three paths are bit-identical
// by construction (see device.Prestager).
func (e *Engine) executeHLOP(pf *prefetcher, qi int, dev device.Device, h *hlop.HLOP) (*tensor.Matrix, error) {
	if st := pf.take(qi, h); st != nil {
		// take only returns sets staged for this queue's device, which
		// therefore implements Prestager.
		return dev.(device.Prestager).ExecuteStaged(h.Op, st, h.Attrs)
	}
	if pf.wantsStaged(h) {
		if ps, ok := dev.(device.Prestager); ok && ps.CanStage(h.Op, h.Inputs) {
			return ps.ExecuteStaged(h.Op, pf.stageSet(ps, qi, h), h.Attrs)
		}
	}
	return dev.ExecuteInto(h.Op, h.Inputs, h.Out, h.Attrs)
}
