package core

// Tests for the memoized execution-plan layer (plancache.go + hlop.Replay):
// replayed plans must be bit-identical to cold-planned runs across the whole
// opcode × partitioner × device-mix × worker-count space, the LRU bound and
// key composition must behave, and — the correctness-critical part — a
// circuit-breaker transition must invalidate cached plans so a replay can
// never dispatch to a quarantined device.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shmt/internal/chaos"
	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/parallel"
	"shmt/internal/sched"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// runPlanned executes op on e (building a fresh VOP over the shared input
// matrices, as runSpec does) and returns the output.
func runPlanned(t testing.TB, e *Engine, op vop.Opcode,
	inputs []*tensor.Matrix, attrs map[string]float64) *tensor.Matrix {
	t.Helper()
	v, err := vop.New(op, inputs...)
	if err != nil {
		t.Fatalf("vop.New(%s): %v", op, err)
	}
	for k, x := range attrs {
		v.SetAttr(k, x)
	}
	rep, err := e.Run(v)
	if err != nil {
		t.Fatalf("run %s: %v", op, err)
	}
	return rep.Output
}

// Property: replaying a memoized plan is bit-identical to planning from
// scratch, for every opcode, partitioner geometry, device mix, scheduling
// policy, and host worker count. The cached engine runs the same VOP twice
// (the second run replays); a cache-less engine provides the fresh baseline.
// The deterministic engine gives all runs the same schedule, so any output
// difference can only come from the plan capture/replay path.
func TestPropertyPlanReplayBitIdentity(t *testing.T) {
	ops := []vop.Opcode{
		vop.OpSqrt, vop.OpTanh, vop.OpRelu, vop.OpAdd, vop.OpMultiply,
		vop.OpSobel, vop.OpLaplacian, vop.OpMeanFilter, vop.OpSRAD,
		vop.OpDCT8x8, vop.OpFDWT97, vop.OpFFT, vop.OpParabolicPDE,
		vop.OpReduceSum, vop.OpReduceMax, vop.OpReduceAverage,
		vop.OpGEMM, vop.OpStencil, vop.OpConv,
	}
	cpuOnly, err := device.NewRegistry(cpu.New(1))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := ops[r.Intn(len(ops))]
		inputs, attrs := randVOP(t, r, op)

		var reg *device.Registry
		var pol sched.Policy
		switch r.Intn(3) {
		case 0:
			reg, pol = cpuOnly, sched.SingleDevice{Device: "cpu"}
		case 1:
			reg, pol = mixed, sched.WorkStealing{}
		default:
			// Data-dependent policy: with identical inputs the captured
			// criticality must equal a fresh sampling pass.
			reg, pol = mixed, sched.QAWS{}
		}
		spec := hlop.Spec{
			TargetPartitions: 1 + r.Intn(12),
			MinTile:          8,
			MinVectorElems:   32,
			ForceCopy:        r.Intn(4) == 0, // exercise the non-view replay path too
		}
		prev := parallel.SetWorkers(1 + r.Intn(8))
		defer parallel.SetWorkers(prev)

		cached := &Engine{Reg: reg, Policy: pol, Spec: spec, Seed: 7, PlanCacheEntries: 8}
		fresh := &Engine{Reg: reg, Policy: pol, Spec: spec, Seed: 7}
		cold := runPlanned(t, cached, op, inputs, attrs)
		replay := runPlanned(t, cached, op, inputs, attrs)
		base := runPlanned(t, fresh, op, inputs, attrs)
		if st := cached.PlanCacheStats(); st.Hits < 1 {
			t.Logf("op=%s seed=%d: second run did not replay (stats %+v)", op, seed, st)
			return false
		}
		if !replay.Equal(cold) || !replay.Equal(base) {
			t.Logf("op=%s seed=%d parts=%d forceCopy=%v: replay diverged",
				op, seed, spec.TargetPartitions, spec.ForceCopy)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// TestPlanCacheChaosDeathInvalidates warms the plan cache, kills a device so
// its breaker opens mid-run, and checks the epoch guard end to end in both
// engines: the next lookup must drop the stale plan (it assigns work to the
// now-quarantined device) and re-plan around the dead device — the replayed
// run must show zero failed dispatches — and the re-plan must re-warm the
// cache for the runs after it.
func TestPlanCacheChaosDeathInvalidates(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		wrapped := chaos.Wrap(gpu.New(gpu.Config{}), chaos.Config{Seed: 7, DieAfterOps: 2})
		reg, err := device.NewRegistry(cpu.New(1), wrapped)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Concurrent: concurrent,
			Spec: chaosHLOPSpec, PlanCacheEntries: 8}

		// Run 1 populates the cache and kills the GPU mid-run: the stored
		// plan routes HLOPs to a device that is quarantined by the time the
		// run ends, and the breaker transition advanced the health epoch.
		rep1, err := e.Run(sobelVOP(t, 64, 90))
		if err != nil {
			t.Fatalf("concurrent=%v: death run failed: %v", concurrent, err)
		}
		if rep1.Degraded == nil || len(rep1.Degraded.Quarantines) == 0 {
			t.Fatalf("concurrent=%v: GPU death not quarantined: %+v", concurrent, rep1.Degraded)
		}
		if quar := e.QuarantinedDevices(); len(quar) != 1 || quar[0] != "gpu" {
			t.Fatalf("concurrent=%v: want gpu quarantined, got %v", concurrent, quar)
		}

		// Run 2 must invalidate (epoch moved), not replay the stale plan: a
		// fresh planning pass sees the quarantine and routes around the dead
		// GPU, so nothing is dispatched to it and nothing degrades.
		rep2, err := e.Run(sobelVOP(t, 64, 90))
		if err != nil {
			t.Fatalf("concurrent=%v: post-death run failed: %v", concurrent, err)
		}
		st := e.PlanCacheStats()
		if st.Invalidations != 1 {
			t.Fatalf("concurrent=%v: invalidations = %d, want 1 (stats %+v)", concurrent, st.Invalidations, st)
		}
		if st.Hits != 0 {
			t.Fatalf("concurrent=%v: stale plan replayed: %+v", concurrent, st)
		}
		if d := rep2.Degraded; d != nil {
			t.Fatalf("concurrent=%v: re-planned run still touched the dead device: %+v", concurrent, d)
		}

		// Run 3 replays the re-warmed plan — and still avoids the dead GPU.
		rep3, err := e.Run(sobelVOP(t, 64, 90))
		if err != nil {
			t.Fatalf("concurrent=%v: replay run failed: %v", concurrent, err)
		}
		if st := e.PlanCacheStats(); st.Hits != 1 {
			t.Fatalf("concurrent=%v: re-warmed plan not replayed: %+v", concurrent, st)
		}
		if d := rep3.Degraded; d != nil {
			t.Fatalf("concurrent=%v: replayed plan touched the dead device: %+v", concurrent, d)
		}
		if !rep3.Output.Equal(rep2.Output) {
			t.Fatalf("concurrent=%v: replay diverged from the re-planned run", concurrent)
		}
	}
}

// TestPlanCacheChaosReadmitInvalidates drives a transient outage: the
// breaker opens and the probe re-admits the device within one run, each
// advancing the health epoch. The cached plan must be invalidated (it was
// captured before the outage), and the re-plan — against the recovered,
// full-strength device set — re-warms the cache.
func TestPlanCacheChaosReadmitInvalidates(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		wrapped := chaos.Wrap(tpu.New(tpu.Config{}), chaos.Config{Seed: 5, FailFirstOps: 3})
		reg, err := device.NewRegistry(cpu.New(1), wrapped)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Concurrent: concurrent,
			Spec: chaosHLOPSpec, Resilience: Resilience{MaxRetries: 16},
			PlanCacheEntries: 8}

		rep1, err := e.Run(sobelVOP(t, 128, 94))
		if err != nil {
			t.Fatalf("concurrent=%v: outage run failed: %v", concurrent, err)
		}
		d := rep1.Degraded
		if d == nil || len(d.Quarantines) == 0 || d.ProbeSuccesses == 0 {
			t.Fatalf("concurrent=%v: want quarantine + re-admission, got %+v", concurrent, d)
		}
		if quar := e.QuarantinedDevices(); len(quar) != 0 {
			t.Fatalf("concurrent=%v: device not re-admitted: %v", concurrent, quar)
		}

		// The open->probe->re-admit cycle moved the epoch (twice); the plan
		// captured before the outage must not replay.
		rep2, err := e.Run(sobelVOP(t, 128, 94))
		if err != nil {
			t.Fatalf("concurrent=%v: post-outage run failed: %v", concurrent, err)
		}
		st := e.PlanCacheStats()
		if st.Invalidations != 1 || st.Hits != 0 {
			t.Fatalf("concurrent=%v: want 1 invalidation and no hits, got %+v", concurrent, st)
		}
		if rep2.Degraded != nil {
			t.Fatalf("concurrent=%v: recovered device faulted again: %+v", concurrent, rep2.Degraded)
		}

		// Steady state after recovery: the re-warmed plan replays.
		rep3, err := e.Run(sobelVOP(t, 128, 94))
		if err != nil {
			t.Fatalf("concurrent=%v: replay run failed: %v", concurrent, err)
		}
		if st := e.PlanCacheStats(); st.Hits != 1 {
			t.Fatalf("concurrent=%v: re-warmed plan not replayed: %+v", concurrent, st)
		}
		if !rep3.Output.Equal(rep2.Output) {
			t.Fatalf("concurrent=%v: replay diverged after re-admission", concurrent)
		}
	}
}

// TestPlanCacheLRUEviction bounds the cache at two entries and streams three
// distinct shapes: the oldest plan must be evicted, and re-running its shape
// must miss (not resurrect stale state).
func TestPlanCacheLRUEviction(t *testing.T) {
	reg, err := device.NewRegistry(cpu.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "cpu"},
		Spec:             hlop.Spec{TargetPartitions: 4, MinTile: 8, MinVectorElems: 32},
		PlanCacheEntries: 2}
	shape := func(rows int) []*tensor.Matrix {
		m := tensor.NewMatrix(rows, 16)
		for i := range m.Data {
			m.Data[i] = float64(i % 13)
		}
		return []*tensor.Matrix{m}
	}
	s16, s24, s32 := shape(16), shape(24), shape(32)

	runPlanned(t, e, vop.OpRelu, s16, nil) // miss, cache {16}
	runPlanned(t, e, vop.OpRelu, s24, nil) // miss, cache {16,24}
	runPlanned(t, e, vop.OpRelu, s32, nil) // miss, evicts 16
	st := e.PlanCacheStats()
	if st.Entries != 2 || st.Evictions != 1 {
		t.Fatalf("after 3 shapes: %+v, want 2 entries / 1 eviction", st)
	}
	runPlanned(t, e, vop.OpRelu, s16, nil) // miss again: 16 was evicted
	st = e.PlanCacheStats()
	if st.Hits != 0 || st.Misses != 4 || st.Evictions != 2 {
		t.Fatalf("evicted shape must re-miss: %+v", st)
	}
	runPlanned(t, e, vop.OpRelu, s16, nil) // now a hit
	if st = e.PlanCacheStats(); st.Hits != 1 {
		t.Fatalf("re-warmed shape must hit: %+v", st)
	}
}

// TestPlanKeyComposition checks that every component the plan is a function
// of changes the key — and that irrelevant differences (fresh matrices of
// the same shape) do not.
func TestPlanKeyComposition(t *testing.T) {
	mk := func(rows, cols int) *tensor.Matrix { return tensor.NewMatrix(rows, cols) }
	newVOP := func(op vop.Opcode, ins ...*tensor.Matrix) *vop.VOP {
		v, err := vop.New(op, ins...)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	base := &Engine{Seed: 1, Spec: hlop.Spec{TargetPartitions: 8}}
	pol := sched.WorkStealing{}
	key := base.planKey(newVOP(vop.OpAdd, mk(32, 32), mk(32, 32)), pol)

	if got := base.planKey(newVOP(vop.OpAdd, mk(32, 32), mk(32, 32)), pol); got != key {
		t.Fatalf("same shape, fresh matrices: key changed\n%s\n%s", key, got)
	}
	distinct := map[string]string{"base": key}
	add := func(name, k string) {
		for prev, pk := range distinct {
			if pk == k {
				t.Fatalf("%s collides with %s: %s", name, prev, k)
			}
		}
		distinct[name] = k
	}
	add("opcode", base.planKey(newVOP(vop.OpMultiply, mk(32, 32), mk(32, 32)), pol))
	add("shape", base.planKey(newVOP(vop.OpAdd, mk(48, 32), mk(48, 32)), pol))
	add("policy", base.planKey(newVOP(vop.OpAdd, mk(32, 32), mk(32, 32)), sched.QAWS{}))
	seeded := &Engine{Seed: 2, Spec: base.Spec}
	add("seed", seeded.planKey(newVOP(vop.OpAdd, mk(32, 32), mk(32, 32)), pol))
	respec := &Engine{Seed: 1, Spec: hlop.Spec{TargetPartitions: 16}}
	add("spec", respec.planKey(newVOP(vop.OpAdd, mk(32, 32), mk(32, 32)), pol))
	forced := &Engine{Seed: 1, Spec: hlop.Spec{TargetPartitions: 8, ForceCopy: true}}
	add("forcecopy", forced.planKey(newVOP(vop.OpAdd, mk(32, 32), mk(32, 32)), pol))
	attred := newVOP(vop.OpStencil, mk(32, 32), mk(32, 32))
	attred.SetAttr("steps", 2)
	attred2 := newVOP(vop.OpStencil, mk(32, 32), mk(32, 32))
	attred2.SetAttr("steps", 3)
	add("attrs", base.planKey(attred, pol))
	add("attrs-value", base.planKey(attred2, pol))
	critical := newVOP(vop.OpAdd, mk(32, 32), mk(32, 32))
	critical.CriticalFraction = 0.5
	add("critical-fraction", base.planKey(critical, pol))
	pressured := newVOP(vop.OpAdd, mk(32, 32), mk(32, 32))
	pressured.DeadlinePressure = 0.5
	add("deadline-pressure", base.planKey(pressured, pol))
	pressured2 := newVOP(vop.OpAdd, mk(32, 32), mk(32, 32))
	pressured2.DeadlinePressure = 0.75
	add("deadline-pressure-value", base.planKey(pressured2, pol))
}

// TestPlanCacheBatchReplay runs the same micro-batch twice through RunBatch:
// the second round must replay every VOP's plan and produce bit-identical
// outputs. Identical VOPs inside one batch share a key, so the second VOP of
// the first round already replays the first's plan.
func TestPlanCacheBatchReplay(t *testing.T) {
	reg, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	mk := func(seed int64) *tensor.Matrix {
		r := rand.New(rand.NewSource(seed))
		m := tensor.NewMatrix(64, 64)
		for i := range m.Data {
			m.Data[i] = r.NormFloat64()
		}
		return m
	}
	batch := func() []*vop.VOP {
		v1, _ := vop.New(vop.OpRelu, mk(1))
		v2, _ := vop.New(vop.OpRelu, mk(2)) // same shape+op as v1: same plan key
		v3, _ := vop.New(vop.OpSqrt, mk(3))
		return []*vop.VOP{v1, v2, v3}
	}
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{},
		Spec:             hlop.Spec{TargetPartitions: 8, MinTile: 8, MinVectorElems: 32},
		PlanCacheEntries: 8}
	r1, err := e.RunBatch(batch())
	if err != nil {
		t.Fatal(err)
	}
	st := e.PlanCacheStats()
	if st.Hits != 1 || st.Misses != 2 {
		t.Fatalf("first round: %+v, want the twin VOP to replay (1 hit, 2 misses)", st)
	}
	r2, err := e.RunBatch(batch())
	if err != nil {
		t.Fatal(err)
	}
	if st = e.PlanCacheStats(); st.Hits != 4 {
		t.Fatalf("second round must replay all three: %+v", st)
	}
	for i := range r1.Reports {
		if !r2.Reports[i].Output.Equal(r1.Reports[i].Output) {
			t.Fatalf("vop %d: batch replay diverged", i)
		}
	}
}

// TestPlanCacheDisabledByDefault: a zero-value core Engine plans every run
// from scratch and reports zero stats — the cache is a session-level opt-in.
func TestPlanCacheDisabledByDefault(t *testing.T) {
	reg, err := device.NewRegistry(cpu.New(1))
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "cpu"},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8, MinVectorElems: 32}}
	in := tensor.NewMatrix(32, 32)
	runPlanned(t, e, vop.OpRelu, []*tensor.Matrix{in}, nil)
	runPlanned(t, e, vop.OpRelu, []*tensor.Matrix{in}, nil)
	if st := e.PlanCacheStats(); st != (PlanCacheStats{}) {
		t.Fatalf("disabled cache recorded activity: %+v", st)
	}
}
