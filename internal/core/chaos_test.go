package core

// Integration tests for the chaos layer (internal/chaos) driving the
// engines' graceful degradation end to end: seeded device death mid-batch,
// reproducible fault schedules, quantified quality loss, and breaker
// re-admission after a transient outage — in both engines.

import (
	"testing"

	"shmt/internal/chaos"
	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/metrics"
	"shmt/internal/sched"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

// chaosSpec is the partitioning every test here uses.
var chaosHLOPSpec = hlop.Spec{TargetPartitions: 8, MinTile: 8, MinVectorElems: 64}

// TestChaosDeviceDeathMidBatchCompletes kills the GPU after two operations
// in the middle of a three-VOP batch. The batch must still complete, every
// output must stay numerically correct (the CPU absorbs the dead device's
// work at equal-or-better accuracy), and the Degraded report must quantify
// the event.
func TestChaosDeviceDeathMidBatchCompletes(t *testing.T) {
	a := workload.Mixed(64, 64, workload.Profile{TileSize: 16}, 90)
	b := workload.Uniform(64, 64, 0.1, 1, 91)
	v1, _ := vop.New(vop.OpSobel, a)
	v2, _ := vop.New(vop.OpSqrt, b)
	v3, _ := vop.New(vop.OpMeanFilter, a)
	vops := []*vop.VOP{v1, v2, v3}

	wrapped := chaos.Wrap(gpu.New(gpu.Config{}), chaos.Config{Seed: 7, DieAfterOps: 2})
	reg, err := device.NewRegistry(cpu.New(1), wrapped)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Spec: chaosHLOPSpec}
	res, err := e.RunBatch(vops)
	if err != nil {
		t.Fatalf("batch with a dying GPU must degrade, not fail: %v", err)
	}
	d := res.Degraded
	if d == nil {
		t.Fatal("a device death must produce a Degraded report")
	}
	if len(d.Quarantines) == 0 || d.Rerouted == 0 {
		t.Fatalf("death not quantified: %+v", d)
	}
	if d.Downgraded != 0 {
		t.Fatalf("rerouting onto the exact CPU is not a downgrade: %+v", d)
	}
	if quar := e.QuarantinedDevices(); len(quar) != 1 || quar[0] != "gpu" {
		t.Fatalf("dead GPU should stay quarantined, got %v", quar)
	}
	// Numerical correctness: each output within FP32 rounding of the exact
	// single-device result (the surviving work ran on CPU or pre-death GPU).
	host := cpu.New(1)
	for i, v := range vops {
		ref, err := host.Execute(v.Op, v.Inputs, v.Attrs)
		if err != nil {
			t.Fatal(err)
		}
		mape, err := metrics.MAPE(ref.Data, res.Reports[i].Output.Data)
		if err != nil {
			t.Fatal(err)
		}
		if mape > 1e-5 {
			t.Fatalf("vop %d: MAPE %g after degradation (want FP32-rounding only)", i, mape)
		}
	}
}

// TestChaosSameSeedReproduces runs the deterministic engine twice under the
// same fault schedule: outputs must be bit-identical and the degradation
// accounting must match exactly. A different seed must produce a different
// schedule.
func TestChaosSameSeedReproduces(t *testing.T) {
	run := func(seed int64) (*Report, *Engine) {
		wrapped := chaos.Wrap(tpu.New(tpu.Config{}), chaos.Config{Seed: seed, TransientRate: 0.4})
		reg, err := device.NewRegistry(cpu.New(1), wrapped)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Spec: chaosHLOPSpec}
		rep, err := e.Run(sobelVOP(t, 64, 92))
		if err != nil {
			t.Fatal(err)
		}
		return rep, e
	}
	r1, _ := run(11)
	r2, _ := run(11)
	if !r1.Output.Equal(r2.Output) {
		t.Fatal("same chaos seed must reproduce bit-identical output")
	}
	if r1.Makespan != r2.Makespan {
		t.Fatalf("same seed, different makespan: %g vs %g", r1.Makespan, r2.Makespan)
	}
	d1, d2 := r1.Degraded, r2.Degraded
	if (d1 == nil) != (d2 == nil) {
		t.Fatalf("degradation reports diverge: %+v vs %+v", d1, d2)
	}
	if d1 != nil && (d1.FailedDispatches != d2.FailedDispatches || d1.Rerouted != d2.Rerouted) {
		t.Fatalf("same seed, different fault schedule: %+v vs %+v", d1, d2)
	}
	// A 40% transient rate over ≥8 dispatches virtually guarantees faults;
	// if this ever flakes the rate below is wrong, not the determinism.
	if d1 == nil || d1.FailedDispatches == 0 {
		t.Fatal("transient rate 0.4 produced no faults to reproduce")
	}
	r3, _ := run(12)
	if r3.Degraded != nil && d1.FailedDispatches == r3.Degraded.FailedDispatches &&
		r3.Makespan == r1.Makespan && r3.Output.Equal(r1.Output) {
		t.Fatal("different seeds produced an identical run — schedule not seeded")
	}
}

// TestChaosDowngradeQuantified kills the GPU with the Edge TPU as the only
// healthy accelerator: rerouted HLOPs land on a less accurate device and the
// report must say so, in HLOPs and elements.
func TestChaosDowngradeQuantified(t *testing.T) {
	wrapped := chaos.Wrap(gpu.New(gpu.Config{}), chaos.Config{Seed: 3, DieAfterOps: 1})
	reg, err := device.NewRegistry(cpu.New(1), wrapped, tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Spec: chaosHLOPSpec}
	rep, err := e.Run(sobelVOP(t, 64, 93))
	if err != nil {
		t.Fatal(err)
	}
	d := rep.Degraded
	if d == nil || d.Rerouted == 0 {
		t.Fatalf("dead GPU must reroute work: %+v", d)
	}
	if d.Downgraded == 0 || d.DowngradedElems == 0 {
		t.Fatalf("FP32→INT8 reroute must be reported as a downgrade: %+v", d)
	}
	if d.Downgraded > d.Rerouted || d.DowngradedElems > d.ReroutedElems {
		t.Fatalf("downgrades exceed reroutes: %+v", d)
	}
}

// TestChaosOutageBreakerReadmits drives a transient outage (the first ops
// fail, then the device recovers): the breaker must open, probe, and
// re-admit the device, leaving nothing quarantined at the end.
func TestChaosOutageBreakerReadmits(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		wrapped := chaos.Wrap(tpu.New(tpu.Config{}), chaos.Config{Seed: 5, FailFirstOps: 3})
		reg, err := device.NewRegistry(cpu.New(1), wrapped)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Concurrent: concurrent,
			Spec: chaosHLOPSpec, Resilience: Resilience{MaxRetries: 16}}
		rep, err := e.Run(sobelVOP(t, 128, 94))
		if err != nil {
			t.Fatalf("concurrent=%v: outage should be survivable: %v", concurrent, err)
		}
		d := rep.Degraded
		if d == nil || len(d.Quarantines) == 0 {
			t.Fatalf("concurrent=%v: three consecutive failures must quarantine: %+v", concurrent, d)
		}
		if d.ProbeSuccesses == 0 {
			t.Fatalf("concurrent=%v: recovered device must pass a re-admission probe: %+v", concurrent, d)
		}
		if quar := e.QuarantinedDevices(); len(quar) != 0 {
			t.Fatalf("concurrent=%v: device should be re-admitted, still quarantined: %v", concurrent, quar)
		}
	}
}

// TestChaosConcurrentDeathCompletes is the concurrent-engine counterpart of
// the mid-batch death test; it runs under -race in CI.
func TestChaosConcurrentDeathCompletes(t *testing.T) {
	wrapped := chaos.Wrap(gpu.New(gpu.Config{}), chaos.Config{Seed: 13, DieAfterOps: 2})
	reg, err := device.NewRegistry(cpu.New(1), wrapped)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Concurrent: true, Spec: chaosHLOPSpec}
	rep, err := e.Run(sobelVOP(t, 64, 95))
	if err != nil {
		t.Fatalf("concurrent engine must survive a device death: %v", err)
	}
	if rep.Degraded == nil || len(rep.Degraded.Quarantines) == 0 {
		t.Fatalf("death not reported: %+v", rep.Degraded)
	}
	if quar := e.QuarantinedDevices(); len(quar) != 1 || quar[0] != "gpu" {
		t.Fatalf("dead GPU should stay quarantined, got %v", quar)
	}
}

// TestChaosCorruptionIsQuantifiableQualityLoss: silent output corruption
// does not fail the run; it shows up as measurable quality loss against the
// clean run, deterministically for a fixed seed.
func TestChaosCorruptionIsQuantifiableQualityLoss(t *testing.T) {
	v := sobelVOP(t, 64, 96)
	run := func(corrupt bool) *Report {
		g := device.Device(gpu.New(gpu.Config{}))
		if corrupt {
			g = chaos.Wrap(g, chaos.Config{Seed: 17, CorruptRate: 1})
		}
		reg, err := device.NewRegistry(cpu.New(1), g)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Spec: chaosHLOPSpec}
		rep, err := e.Run(v)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	clean, dirty := run(false), run(true)
	if dirty.Output.Equal(clean.Output) {
		t.Fatal("corruption rate 1 left the run's output untouched")
	}
	mape, err := metrics.MAPE(clean.Output.Data, dirty.Output.Data)
	if err != nil {
		t.Fatal(err)
	}
	if mape <= 0 {
		t.Fatalf("corruption must be quantifiable, MAPE = %g", mape)
	}
	again := run(true)
	if !again.Output.Equal(dirty.Output) {
		t.Fatal("corruption is not reproducible for a fixed seed")
	}
}

// TestChaosLatencyShiftsSchedule: a latency-degraded accelerator changes the
// virtual timeline (work shifts away from it) without affecting success.
func TestChaosLatencyShiftsSchedule(t *testing.T) {
	run := func(mult float64) float64 {
		g := device.Device(gpu.New(gpu.Config{}))
		if mult > 0 {
			g = chaos.Wrap(g, chaos.Config{Seed: 19, LatencyMultiplier: mult})
		}
		reg, err := device.NewRegistry(cpu.New(1), g)
		if err != nil {
			t.Fatal(err)
		}
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Spec: chaosHLOPSpec}
		rep, err := e.Run(sobelVOP(t, 128, 97))
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	healthy, degraded := run(0), run(8)
	if degraded <= healthy {
		t.Fatalf("an 8x slower GPU cannot speed the run up: %g vs %g", degraded, healthy)
	}
}
