package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/parallel"
	"shmt/internal/sched"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// randVOP builds a random VOP for op (sizes and values derived from r) and
// returns it with its raw inputs and attrs, so a second VOP over the same
// matrices can be built for the comparison run.
func randVOP(t testing.TB, r *rand.Rand, op vop.Opcode) ([]*tensor.Matrix, map[string]float64) {
	rows := 8 * (1 + r.Intn(8))
	cols := rows
	if op == vop.OpFFT {
		cols = 1 << (3 + r.Intn(4))
	}
	mk := func(lo, hi float64) *tensor.Matrix {
		m := tensor.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = lo + (hi-lo)*r.Float64()
		}
		return m
	}
	attrs := map[string]float64{}
	switch op {
	case vop.OpGEMM:
		inner := 4 + r.Intn(12)
		a := tensor.NewMatrix(rows, inner)
		b := tensor.NewMatrix(inner, 4+r.Intn(12))
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
		}
		for i := range b.Data {
			b.Data[i] = r.NormFloat64()
		}
		return []*tensor.Matrix{a, b}, attrs
	case vop.OpConv:
		k := tensor.NewMatrix(3, 3)
		for i := range k.Data {
			k.Data[i] = r.NormFloat64()
		}
		return []*tensor.Matrix{mk(-1, 1), k}, attrs
	case vop.OpStencil:
		attrs["steps"] = float64(1 + r.Intn(3))
		return []*tensor.Matrix{mk(70, 90), mk(0, 1)}, attrs
	case vop.OpParabolicPDE:
		return []*tensor.Matrix{mk(20, 120), mk(40, 100)}, attrs
	case vop.OpSqrt, vop.OpSRAD:
		return []*tensor.Matrix{mk(0.1, 2)}, attrs
	case vop.OpAdd, vop.OpMultiply:
		return []*tensor.Matrix{mk(-1, 1), mk(-1, 1)}, attrs
	default:
		return []*tensor.Matrix{mk(-1, 1)}, attrs
	}
}

// runSpec executes op over inputs with the given spec and returns the output.
// Each run gets its own VOP over the shared (never mutated) input matrices.
func runSpec(t testing.TB, reg *device.Registry, pol sched.Policy,
	op vop.Opcode, inputs []*tensor.Matrix, attrs map[string]float64,
	spec hlop.Spec) *tensor.Matrix {
	t.Helper()
	v, err := vop.New(op, inputs...)
	if err != nil {
		t.Fatalf("vop.New(%s): %v", op, err)
	}
	for k, x := range attrs {
		v.SetAttr(k, x)
	}
	e := &Engine{Reg: reg, Policy: pol, Spec: spec, Seed: 7}
	rep, err := e.Run(v)
	if err != nil {
		t.Fatalf("run %s (ForceCopy=%v): %v", op, spec.ForceCopy, err)
	}
	return rep.Output
}

// Property: the zero-copy view datapath is bit-identical to the materialized
// copy datapath for every opcode, partitioner geometry, device mix, and host
// worker count. The deterministic engine gives both runs the same schedule,
// so any output difference can only come from the data representation.
func TestPropertyViewCopyBitIdentity(t *testing.T) {
	ops := []vop.Opcode{
		vop.OpSqrt, vop.OpTanh, vop.OpRelu, vop.OpAdd, vop.OpMultiply,
		vop.OpSobel, vop.OpLaplacian, vop.OpMeanFilter, vop.OpSRAD,
		vop.OpDCT8x8, vop.OpFDWT97, vop.OpFFT, vop.OpParabolicPDE,
		vop.OpReduceSum, vop.OpReduceMax, vop.OpReduceAverage,
		vop.OpGEMM, vop.OpStencil, vop.OpConv,
	}
	cpuOnly, err := device.NewRegistry(cpu.New(1))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := ops[r.Intn(len(ops))]
		inputs, attrs := randVOP(t, r, op)

		reg, pol := cpuOnly, sched.Policy(sched.SingleDevice{Device: "cpu"})
		if r.Intn(2) == 0 {
			reg, pol = mixed, sched.WorkStealing{}
		}
		spec := hlop.Spec{
			TargetPartitions: 1 + r.Intn(12),
			MinTile:          8,
			MinVectorElems:   32,
		}
		prev := parallel.SetWorkers(1 + r.Intn(8))
		defer parallel.SetWorkers(prev)

		viewSpec, copySpec := spec, spec
		copySpec.ForceCopy = true
		got := runSpec(t, reg, pol, op, inputs, attrs, viewSpec)
		want := runSpec(t, reg, pol, op, inputs, attrs, copySpec)
		if !got.Equal(want) {
			t.Logf("op=%s seed=%d parts=%d: view path diverged from copy path",
				op, seed, spec.TargetPartitions)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

// Uneven tails: partition counts that do not divide the row count leave a
// short final band; the view path must cover it exactly.
func TestViewPathUnevenTail(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	in := tensor.NewMatrix(37, 19)
	for i := range in.Data {
		in.Data[i] = r.NormFloat64()
	}
	reg, err := device.NewRegistry(cpu.New(1))
	if err != nil {
		t.Fatal(err)
	}
	for _, parts := range []int{2, 5, 8, 36, 37, 40} {
		spec := hlop.Spec{TargetPartitions: parts, MinVectorElems: 8, MinTile: 8}
		copySpec := spec
		copySpec.ForceCopy = true
		got := runSpec(t, reg, sched.SingleDevice{Device: "cpu"}, vop.OpRelu,
			[]*tensor.Matrix{in}, nil, spec)
		want := runSpec(t, reg, sched.SingleDevice{Device: "cpu"}, vop.OpRelu,
			[]*tensor.Matrix{in}, nil, copySpec)
		if !got.Equal(want) {
			t.Fatalf("parts=%d: uneven tail diverged", parts)
		}
	}
}

// Degenerate shapes: single-row and single-column matrices partition into
// views with extreme aspect ratios (a 1×N view is always contiguous, an N×1
// view is maximally strided).
func TestViewPathDegenerateShapes(t *testing.T) {
	reg, err := device.NewRegistry(cpu.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(13))
	for _, shape := range []struct{ rows, cols int }{{1, 4096}, {4096, 1}, {1, 1}, {3, 1}} {
		a := tensor.NewMatrix(shape.rows, shape.cols)
		b := tensor.NewMatrix(shape.rows, shape.cols)
		for i := range a.Data {
			a.Data[i] = r.NormFloat64()
			b.Data[i] = r.NormFloat64()
		}
		spec := hlop.Spec{TargetPartitions: 6, MinVectorElems: 16, MinTile: 8}
		copySpec := spec
		copySpec.ForceCopy = true
		got := runSpec(t, reg, sched.SingleDevice{Device: "cpu"}, vop.OpAdd,
			[]*tensor.Matrix{a, b}, nil, spec)
		want := runSpec(t, reg, sched.SingleDevice{Device: "cpu"}, vop.OpAdd,
			[]*tensor.Matrix{a, b}, nil, copySpec)
		if !got.Equal(want) {
			t.Fatalf("%dx%d: view path diverged", shape.rows, shape.cols)
		}
		for i := range a.Data {
			if got.Data[i] != a.Data[i]+b.Data[i] {
				t.Fatalf("%dx%d: wrong sum at %d", shape.rows, shape.cols, i)
			}
		}
	}
}

// Halo border clamp: stencil partitions whose halos clamp at the matrix edge
// must agree with the whole-matrix run through the view-era plumbing (halo
// blocks stay materialized, but their aggregation shares the new scatter).
func TestViewPathHaloBorderClamp(t *testing.T) {
	reg, err := device.NewRegistry(cpu.New(1))
	if err != nil {
		t.Fatal(err)
	}
	r := rand.New(rand.NewSource(17))
	in := tensor.NewMatrix(24, 24)
	for i := range in.Data {
		in.Data[i] = r.NormFloat64()
	}
	spec := hlop.Spec{TargetPartitions: 9, MinTile: 8, MinVectorElems: 8}
	got := runSpec(t, reg, sched.SingleDevice{Device: "cpu"}, vop.OpSobel,
		[]*tensor.Matrix{in}, nil, spec)
	want, err := cpu.New(1).Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(want) {
		t.Fatal("partitioned sobel diverged from whole-matrix run at clamped borders")
	}
}

// Regression: aggregating a fully aliased run — every HLOP wrote through its
// output view — must perform no copies and no allocations at all.
func TestAggregateAliasedZeroAllocs(t *testing.T) {
	a := tensor.NewMatrix(64, 64)
	b := tensor.NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = float64(i)
		b.Data[i] = 1
	}
	v, err := vop.New(vop.OpAdd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := hlop.Partition(v, hlop.Spec{TargetPartitions: 8, MinVectorElems: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewMatrix(64, 64)
	if err := bindOutputViews(out, hs); err != nil {
		t.Fatal(err)
	}
	done := make([]doneHLOP, len(hs))
	views := make([]*tensor.Matrix, len(hs))
	saved := make([][]*tensor.Matrix, len(hs))
	for i, h := range hs {
		done[i] = doneHLOP{h: h}
		views[i] = h.Out
		saved[i] = h.Inputs
	}
	var aggErr error
	allocs := testing.AllocsPerRun(50, func() {
		// aggregate releases per-HLOP state; restore it so every iteration
		// measures the same aliased fast path (restores are plain stores).
		for i, h := range hs {
			h.Out = views[i]
			h.Result = views[i]
			h.Inputs = saved[i]
		}
		var bytes int64
		_, bytes, aggErr = aggregate(v, done, out)
		if bytes != 0 {
			panic("aliased aggregation copied bytes")
		}
	})
	if aggErr != nil {
		t.Fatal(aggErr)
	}
	if allocs != 0 {
		t.Fatalf("aliased aggregation allocated %.1f times per run; want 0", allocs)
	}
}
