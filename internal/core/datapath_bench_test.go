package core

import (
	"fmt"
	"testing"

	"shmt/internal/hlop"
	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// BenchmarkDatapath isolates the partition → aggregate data movement for a
// full-width row-band workload on a shared-memory device, comparing the
// zero-copy view path against the materialized copy path. Execution itself is
// simulated as an in-place write (view mode: the device returned its output
// view; copy mode: a fresh arena buffer, as PR-2-era devices did), so the
// measured work is exactly the staging traffic the views eliminate. The
// copied_B/op and aliased_B/op metrics come from the runtime's own datapath
// counters; on the view path copied_B/op must be zero.
func BenchmarkDatapath(b *testing.B) {
	telemetry.Enable()
	defer telemetry.Disable()
	for _, bc := range []struct {
		op   vop.Opcode
		side int
	}{
		{vop.OpAdd, 1024},
		{vop.OpGEMM, 256},
	} {
		for _, forceCopy := range []bool{false, true} {
			mode := "view"
			if forceCopy {
				mode = "copy"
			}
			b.Run(fmt.Sprintf("%s/%s", bc.op, mode), func(b *testing.B) {
				benchDatapath(b, bc.op, bc.side, forceCopy)
			})
		}
	}
}

func benchDatapath(b *testing.B, op vop.Opcode, side int, forceCopy bool) {
	mk := func() *tensor.Matrix {
		m := tensor.NewMatrix(side, side)
		for i := range m.Data {
			m.Data[i] = float64(i%97) * 0.25
		}
		return m
	}
	var inputs []*tensor.Matrix
	if op.NumInputs() == 2 {
		inputs = []*tensor.Matrix{mk(), mk()}
	} else {
		inputs = []*tensor.Matrix{mk()}
	}
	v, err := vop.New(op, inputs...)
	if err != nil {
		b.Fatal(err)
	}
	spec := hlop.Spec{TargetPartitions: 16, MinVectorElems: 32, ForceCopy: forceCopy}
	rows, cols := v.OutputShape()
	b.SetBytes(int64(rows*cols) * tensor.ElemSize)
	copied0 := telemetry.DatapathBytesCopied.Value()
	aliased0 := telemetry.DatapathBytesAliased.Value()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hs, err := hlop.Partition(v, spec)
		if err != nil {
			b.Fatal(err)
		}
		out := tensor.GetMatrixUninit(rows, cols)
		if !forceCopy {
			if err := bindOutputViews(out, hs); err != nil {
				b.Fatal(err)
			}
		}
		done := make([]doneHLOP, len(hs))
		for j, h := range hs {
			if h.Out != nil {
				// Shared-memory device: the kernel wrote through the view.
				h.Result = h.Out
			} else {
				// Copy-era device: results land in a staging buffer that
				// aggregation scatters back.
				h.Result = tensor.GetMatrixUninit(h.Region.Height, h.Region.Width)
			}
			done[j] = doneHLOP{h: h}
		}
		res, _, err := aggregate(v, done, out)
		if err != nil {
			b.Fatal(err)
		}
		tensor.PutMatrix(res)
	}
	b.StopTimer()
	n := float64(b.N)
	b.ReportMetric(float64(telemetry.DatapathBytesCopied.Value()-copied0)/n, "copied_B/op")
	b.ReportMetric(float64(telemetry.DatapathBytesAliased.Value()-aliased0)/n, "aliased_B/op")
}
