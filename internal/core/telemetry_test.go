package core

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
	"shmt/internal/telemetry"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

// TestEngineTelemetrySpansAndCounters runs the deterministic engine with a
// recorder attached and checks the full observability contract: virtual
// device spans, wall-clock host phase spans, and counter deltas consistent
// with the run report.
func TestEngineTelemetrySpansAndCounters(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	base := telemetry.Default.Snapshot()

	rec := telemetry.NewRecorder()
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, DoubleBuffer: true,
		Telemetry: rec}
	rep, err := e.Run(sobelVOP(t, 128, 21))
	if err != nil {
		t.Fatal(err)
	}

	var virtual, wall, xfer int
	phases := map[string]bool{}
	hlops := map[int]int{}
	for _, s := range rec.Spans() {
		switch s.Clock {
		case telemetry.ClockVirtual:
			if s.End <= s.Start {
				t.Fatalf("empty virtual span: %+v", s)
			}
			// Transfer-stage spans live on the "<device> xfer" sub-lanes and
			// don't count against the one-compute-span-per-HLOP contract.
			if strings.HasSuffix(s.Track, " xfer") {
				xfer++
				continue
			}
			virtual++
			hlops[s.ID]++
		case telemetry.ClockWall:
			wall++
			if s.Track != "host" {
				t.Fatalf("wall span off the host lane: %+v", s)
			}
			phases[s.Name] = true
		}
	}
	if virtual != rep.HLOPs {
		t.Fatalf("virtual spans = %d, report HLOPs = %d", virtual, rep.HLOPs)
	}
	if xfer == 0 {
		t.Fatal("no transfer-stage spans on the xfer sub-lanes")
	}
	for id, n := range hlops {
		if n != 1 {
			t.Fatalf("HLOP %d has %d spans", id, n)
		}
	}
	for _, p := range []string{telemetry.PhasePartition, telemetry.PhaseSchedule,
		telemetry.PhaseExecute, telemetry.PhaseAggregate} {
		if !phases[p] {
			t.Fatalf("missing host phase span %q (have %v)", p, phases)
		}
	}
	if wall != 4 {
		t.Fatalf("wall spans = %d, want the 4 lifecycle phases", wall)
	}

	d := telemetry.Default.Snapshot().Delta(base)
	if d[`shmt_runs_total{policy="work-stealing"}`] != 1 {
		t.Fatalf("runs counter: %v", d)
	}
	var executed, assigned float64
	for _, dev := range []string{"cpu", "gpu", "tpu"} {
		executed += d[`shmt_hlops_executed_total{device="`+dev+`"}`]
		assigned += d[`shmt_hlops_assigned_total{device="`+dev+`"}`]
	}
	if int(executed) != rep.HLOPs {
		t.Fatalf("executed counters = %g, report HLOPs = %d", executed, rep.HLOPs)
	}
	if assigned == 0 {
		t.Fatal("no initial assignments counted")
	}
	if d["shmt_vop_phase_seconds_count{phase=\"execute\"}"] != 1 {
		t.Fatalf("phase histogram not observed: %v", d)
	}

	// Steal bookkeeping is consistent: every stolen span names a victim lane
	// and is counted in shmt_steals_total.
	var stolenSpans float64
	for _, s := range rec.Spans() {
		if s.StealFrom != "" {
			stolenSpans++
			if s.StealFrom == s.Track {
				t.Fatalf("span stolen from itself: %+v", s)
			}
		}
	}
	var steals float64
	for _, dev := range []string{"cpu", "gpu", "tpu"} {
		steals += d[`shmt_steals_total{device="`+dev+`"}`]
	}
	if steals != stolenSpans {
		t.Fatalf("steal counters = %g, stolen spans = %g", steals, stolenSpans)
	}
}

// TestConcurrentEngineTelemetry runs the goroutine engine with telemetry and
// checks spans plus the queue instrumentation only that engine exercises.
func TestConcurrentEngineTelemetry(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	base := telemetry.Default.Snapshot()

	rec := telemetry.NewRecorder()
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, DoubleBuffer: true,
		Concurrent: true, Telemetry: rec}
	rep, err := e.Run(sobelVOP(t, 128, 22))
	if err != nil {
		t.Fatal(err)
	}

	var virtual int
	for _, s := range rec.Spans() {
		if s.Clock == telemetry.ClockVirtual && !strings.HasSuffix(s.Track, " xfer") {
			virtual++
		}
	}
	if virtual != rep.HLOPs {
		t.Fatalf("virtual spans = %d, report HLOPs = %d", virtual, rep.HLOPs)
	}

	d := telemetry.Default.Snapshot().Delta(base)
	var waits float64
	for _, dev := range []string{"cpu", "gpu", "tpu"} {
		waits += d[`shmt_queue_wait_seconds_count{device="`+dev+`"}`]
	}
	if int(waits) == 0 {
		t.Fatalf("queue wait histogram never observed: %v", d)
	}
}

// TestEngineTelemetryPerfettoEndToEnd is the acceptance check: a real run's
// recorder must render valid Chrome trace-event JSON with device lanes and
// host lanes.
func TestEngineTelemetryPerfettoEndToEnd(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	rec := telemetry.NewRecorder()
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, DoubleBuffer: true,
		Telemetry: rec}
	if _, err := e.Run(sobelVOP(t, 128, 23)); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := rec.WritePerfetto(&buf); err != nil {
		t.Fatal(err)
	}
	var tf telemetry.TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatalf("trace is not valid trace-event JSON: %v", err)
	}
	lanes := map[int]map[string]bool{}
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" {
			if lanes[ev.PID] == nil {
				lanes[ev.PID] = map[string]bool{}
			}
			lanes[ev.PID][ev.Args["name"].(string)] = true
		}
	}
	if len(lanes[1]) == 0 {
		t.Fatal("no virtual device lanes in the trace")
	}
	if !lanes[2]["host"] {
		t.Fatalf("no wall-clock host lane in the trace: %v", lanes)
	}
}

// TestEngineNoTelemetryRecordsNothing checks the disabled path end to end:
// with the gate off and no recorder, a run moves no counters.
func TestEngineNoTelemetryRecordsNothing(t *testing.T) {
	telemetry.Disable()
	base := telemetry.Default.Snapshot()
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}}
	if _, err := e.Run(sobelVOP(t, 64, 24)); err != nil {
		t.Fatal(err)
	}
	if d := telemetry.Default.Snapshot().Delta(base); len(d) != 0 {
		t.Fatalf("disabled run moved counters: %v", d)
	}
}

// TestBatchTelemetry checks RunBatch wires the same bundle: one run counter,
// per-VOP assignments, spans for every HLOP in the pool.
func TestBatchTelemetry(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	base := telemetry.Default.Snapshot()

	rec := telemetry.NewRecorder()
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}, DoubleBuffer: true,
		Telemetry: rec}
	batch, err := e.RunBatch([]*vop.VOP{sobelVOP(t, 64, 25), sobelVOP(t, 64, 26)})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, r := range batch.Reports {
		total += r.HLOPs
	}
	var virtual int
	for _, s := range rec.Spans() {
		if s.Clock == telemetry.ClockVirtual && !strings.HasSuffix(s.Track, " xfer") {
			virtual++
		}
	}
	if virtual != total {
		t.Fatalf("virtual spans = %d, batch HLOPs = %d", virtual, total)
	}
	d := telemetry.Default.Snapshot().Delta(base)
	if d[`shmt_runs_total{policy="work-stealing"}`] != 1 {
		t.Fatalf("batch should count as one run: %v", d)
	}
}

// BenchmarkTelemetryOverhead measures a full engine run with instrumentation
// disabled vs enabled (gate on, recorder attached) — the numbers behind
// BENCH_telemetry.json and DESIGN.md's overhead claim. The engine and
// recorder live across iterations, mirroring how a serving Session reuses
// one engine for every request: the enabled path therefore exercises the
// cached counter handles (telHandles) and the recycled span slab
// (Recorder.Reset) rather than paying family lookups and slab growth on
// every run.
func BenchmarkTelemetryOverhead(b *testing.B) {
	run := func(b *testing.B, enabled bool) {
		reg, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
		if err != nil {
			b.Fatal(err)
		}
		m := workload.Mixed(128, 128, workload.Profile{TileSize: 32}, 20)
		v, err := vop.New(vop.OpSobel, m)
		if err != nil {
			b.Fatal(err)
		}
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{},
			Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, DoubleBuffer: true}
		if enabled {
			telemetry.Enable()
			defer telemetry.Disable()
			e.Telemetry = telemetry.NewRecorder()
			defer e.Telemetry.Release()
		} else {
			telemetry.Disable()
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if enabled {
				e.Telemetry.Reset()
			}
			if _, err := e.Run(v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}
