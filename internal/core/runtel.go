package core

import (
	"time"

	"shmt/internal/device"
	"shmt/internal/hlop"
	"shmt/internal/telemetry"
)

// runTel bundles one run's telemetry state: the per-device counter pointers
// (resolved once so the hot loops never take the registry locks) and the
// optional span recorder. A nil *runTel disables everything; the engines
// test it once per event.
type runTel struct {
	rec   *telemetry.Recorder
	start time.Time
	names []string // device name per queue index

	runs     *telemetry.Counter
	executed []*telemetry.Counter
	steals   []*telemetry.Counter
	assigned []*telemetry.Counter
	depth    []*telemetry.Gauge
	wait     []*telemetry.Histogram
	breaker  []*telemetry.Gauge
	phases   map[string]*telemetry.Histogram
}

// newRunTel returns the run's telemetry bundle, or nil when telemetry is
// disabled and no recorder is attached.
func (e *Engine) newRunTel(policy string) *runTel {
	if !telemetry.On() && e.Telemetry == nil {
		return nil
	}
	n := e.Reg.Len()
	rt := &runTel{
		rec:    e.Telemetry,
		start:  time.Now(),
		names:  make([]string, n),
		runs:   telemetry.Runs.With(policy),
		phases: make(map[string]*telemetry.Histogram, 4),
	}
	rt.executed = make([]*telemetry.Counter, n)
	rt.steals = make([]*telemetry.Counter, n)
	rt.assigned = make([]*telemetry.Counter, n)
	rt.depth = make([]*telemetry.Gauge, n)
	rt.wait = make([]*telemetry.Histogram, n)
	rt.breaker = make([]*telemetry.Gauge, n)
	for i := 0; i < n; i++ {
		name := e.Reg.Get(i).Name()
		rt.names[i] = name
		rt.executed[i] = telemetry.HLOPsExecuted.With(name)
		rt.steals[i] = telemetry.Steals.With(name)
		rt.assigned[i] = telemetry.HLOPsAssigned.With(name)
		rt.depth[i] = telemetry.QueueDepth.With(name)
		rt.wait[i] = telemetry.QueueWaitSeconds.With(name)
		rt.breaker[i] = telemetry.BreakerState.With(name)
	}
	for _, p := range []string{telemetry.PhasePartition, telemetry.PhaseSchedule,
		telemetry.PhaseExecute, telemetry.PhaseAggregate} {
		rt.phases[p] = telemetry.PhaseSeconds.With(p)
	}
	return rt
}

// now returns wall seconds on the run's telemetry timeline (the recorder's
// epoch when one is attached, the run start otherwise).
func (rt *runTel) now() float64 {
	if rt.rec != nil {
		return rt.rec.Now()
	}
	return time.Since(rt.start).Seconds()
}

// phase closes one VOP lifecycle phase: it observes the duration histogram,
// records a wall-clock host-lane span, and returns the end time as the next
// phase's start.
func (rt *runTel) phase(name string, startRel float64) float64 {
	end := rt.now()
	rt.phases[name].Observe(end - startRel)
	if rt.rec != nil {
		rt.rec.RecordSpan(telemetry.Span{
			Track: "host", Name: name, Clock: telemetry.ClockWall,
			Start: startRel, End: end,
		})
	}
	return end
}

// noteAssignments records the policy's initial HLOP→queue outcomes.
func (rt *runTel) noteAssignments(hs []*hlop.HLOP) {
	for _, h := range hs {
		rt.assigned[h.AssignedQueue].Inc()
		if h.Critical {
			telemetry.CriticalHLOPs.Inc()
		}
	}
}

// hlopDone records one HLOP execution: the per-device counter, the steal
// counter when the HLOP was taken from another queue, and a virtual-clock
// device-lane span.
func (rt *runTel) hlopDone(qi, victim int, h *hlop.HLOP, start, end float64) {
	rt.executed[qi].Inc()
	stealFrom := ""
	if victim >= 0 && victim != qi {
		rt.steals[qi].Inc()
		stealFrom = rt.names[victim]
	}
	if rt.rec != nil {
		rt.rec.RecordSpan(telemetry.Span{
			Track: rt.names[qi], Name: h.Op.String(), Clock: telemetry.ClockVirtual,
			Start: start, End: end, ID: h.ID,
			StealFrom: stealFrom, Critical: h.Critical,
		})
	}
}

// dispatchFailed records a failed dispatch's device-lane fault span — the
// interval of dispatch overhead plus backoff charged for an HLOP that
// errored. The Perfetto export colours fault spans as errors.
func (rt *runTel) dispatchFailed(qi int, h *hlop.HLOP, start, end float64) {
	if rt.rec != nil {
		rt.rec.RecordSpan(telemetry.Span{
			Track: rt.names[qi], Name: "fault:" + h.Op.String(), Clock: telemetry.ClockVirtual,
			Start: start, End: end, ID: h.ID, Fault: true,
		})
	}
}

// breakerState publishes a device's circuit-breaker state transition.
func (rt *runTel) breakerState(qi int, state int64) {
	rt.breaker[qi].Set(state)
}

// instrumentQueues attaches depth gauges and wait histograms to the
// concurrent engine's task queues.
func (rt *runTel) instrumentQueues(queues []*device.TaskQueue[*hlop.HLOP]) {
	for i, q := range queues {
		q.Instrument(rt.depth[i], rt.wait[i])
	}
}
