package core

import (
	"time"

	"shmt/internal/device"
	"shmt/internal/hlop"
	"shmt/internal/interconnect"
	"shmt/internal/telemetry"
)

// telHandles holds the registry-resolved metric pointers a run's telemetry
// needs: per-device counters, gauges and histograms plus the phase
// histograms. Resolving a handle takes the registry's family locks and
// allocates on first use, so the Engine caches one telHandles per (policy,
// device set) and rebuilds it only when either changes — per-run telemetry
// setup is then a single runTel allocation instead of ~a dozen slices and a
// map (the "~225 allocs/run" BENCH_telemetry.json used to note).
type telHandles struct {
	policy string
	names  []string // device name per queue index

	runs     *telemetry.Counter
	executed []*telemetry.Counter
	steals   []*telemetry.Counter
	assigned []*telemetry.Counter
	depth    []*telemetry.Gauge
	wait     []*telemetry.Histogram
	breaker  []*telemetry.Gauge
	phases   [4]*telemetry.Histogram // indexed by phaseIndex
}

// phaseIndex maps a phase name to its slot in telHandles.phases.
func phaseIndex(name string) int {
	switch name {
	case telemetry.PhasePartition:
		return 0
	case telemetry.PhaseSchedule:
		return 1
	case telemetry.PhaseExecute:
		return 2
	default: // telemetry.PhaseAggregate
		return 3
	}
}

// telHandlesFor returns the engine's cached handle bundle, rebuilding it when
// the policy or device set changed since the last run.
func (e *Engine) telHandlesFor(policy string) *telHandles {
	n := e.Reg.Len()
	e.thMu.Lock()
	defer e.thMu.Unlock()
	if th := e.th; th != nil && th.policy == policy && len(th.names) == n {
		fresh := true
		for i := 0; i < n; i++ {
			if th.names[i] != e.Reg.Get(i).Name() {
				fresh = false
				break
			}
		}
		if fresh {
			return th
		}
	}
	th := &telHandles{
		policy:   policy,
		names:    make([]string, n),
		runs:     telemetry.Runs.With(policy),
		executed: make([]*telemetry.Counter, n),
		steals:   make([]*telemetry.Counter, n),
		assigned: make([]*telemetry.Counter, n),
		depth:    make([]*telemetry.Gauge, n),
		wait:     make([]*telemetry.Histogram, n),
		breaker:  make([]*telemetry.Gauge, n),
	}
	for i := 0; i < n; i++ {
		name := e.Reg.Get(i).Name()
		th.names[i] = name
		th.executed[i] = telemetry.HLOPsExecuted.With(name)
		th.steals[i] = telemetry.Steals.With(name)
		th.assigned[i] = telemetry.HLOPsAssigned.With(name)
		th.depth[i] = telemetry.QueueDepth.With(name)
		th.wait[i] = telemetry.QueueWaitSeconds.With(name)
		th.breaker[i] = telemetry.BreakerState.With(name)
	}
	for _, p := range []string{telemetry.PhasePartition, telemetry.PhaseSchedule,
		telemetry.PhaseExecute, telemetry.PhaseAggregate} {
		th.phases[phaseIndex(p)] = telemetry.PhaseSeconds.With(p)
	}
	e.th = th
	return th
}

// runTel bundles one run's telemetry state: the cached metric handles and the
// optional span recorder. A nil *runTel disables everything; the engines
// test it once per event.
type runTel struct {
	rec   *telemetry.Recorder
	start time.Time
	*telHandles
}

// newRunTel returns the run's telemetry bundle, or nil when telemetry is
// disabled and no recorder is attached.
func (e *Engine) newRunTel(policy string) *runTel {
	if !telemetry.On() && e.Telemetry == nil {
		return nil
	}
	return &runTel{rec: e.Telemetry, start: time.Now(), telHandles: e.telHandlesFor(policy)}
}

// now returns wall seconds on the run's telemetry timeline (the recorder's
// epoch when one is attached, the run start otherwise).
func (rt *runTel) now() float64 {
	if rt.rec != nil {
		return rt.rec.Now()
	}
	return time.Since(rt.start).Seconds()
}

// phase closes one VOP lifecycle phase: it observes the duration histogram,
// records a wall-clock host-lane span, and returns the end time as the next
// phase's start.
func (rt *runTel) phase(name string, startRel float64) float64 {
	end := rt.now()
	rt.phases[phaseIndex(name)].Observe(end - startRel)
	if rt.rec != nil {
		rt.rec.RecordSpan(telemetry.Span{
			Track: "host", Name: name, Clock: telemetry.ClockWall,
			Start: startRel, End: end,
		})
	}
	return end
}

// noteAssignments records the policy's initial HLOP→queue outcomes.
func (rt *runTel) noteAssignments(hs []*hlop.HLOP) {
	for _, h := range hs {
		rt.assigned[h.AssignedQueue].Inc()
		if h.Critical {
			telemetry.CriticalHLOPs.Inc()
		}
	}
}

// traceID resolves the serving-layer trace the HLOP belongs to, if any.
func traceID(h *hlop.HLOP) string {
	if h.Parent != nil {
		return h.Parent.TraceID
	}
	return ""
}

// hlopDone records one HLOP execution: the per-device counter, the steal
// counter when the HLOP was taken from another queue, and a virtual-clock
// device-lane span carrying the originating request's trace ID.
func (rt *runTel) hlopDone(qi, victim int, h *hlop.HLOP, start, end float64) {
	rt.executed[qi].Inc()
	stealFrom := ""
	if victim >= 0 && victim != qi {
		rt.steals[qi].Inc()
		stealFrom = rt.names[victim]
	}
	if rt.rec != nil {
		rt.rec.RecordSpan(telemetry.Span{
			Track: rt.names[qi], Name: h.Op.String(), Clock: telemetry.ClockVirtual,
			Start: start, End: end, ID: h.ID,
			StealFrom: stealFrom, Critical: h.Critical, TraceID: traceID(h),
		})
	}
}

// hlopXfer records the HLOP's transfer-stage spans on the device's "xfer"
// sub-lane: the inbound staging window and the outbound result transfer.
// Zero-length transfers (devices sharing host memory over the zero-copy
// datapath) draw nothing.
func (rt *runTel) hlopXfer(qi int, h *hlop.HLOP, adm interconnect.Admission) {
	if rt.rec == nil {
		return
	}
	track := rt.names[qi] + " xfer"
	if adm.XferEnd > adm.XferStart {
		rt.rec.RecordSpan(telemetry.Span{
			Track: track, Name: "in:" + h.Op.String(), Clock: telemetry.ClockVirtual,
			Start: adm.XferStart, End: adm.XferEnd, ID: h.ID, TraceID: traceID(h),
		})
	}
	if adm.OutEnd > adm.OutStart {
		rt.rec.RecordSpan(telemetry.Span{
			Track: track, Name: "out:" + h.Op.String(), Clock: telemetry.ClockVirtual,
			Start: adm.OutStart, End: adm.OutEnd, ID: h.ID, TraceID: traceID(h),
		})
	}
}

// dispatchFailed records a failed dispatch's device-lane fault span — the
// interval of dispatch overhead plus backoff charged for an HLOP that
// errored. The Perfetto export colours fault spans as errors.
func (rt *runTel) dispatchFailed(qi int, h *hlop.HLOP, start, end float64) {
	if rt.rec != nil {
		rt.rec.RecordSpan(telemetry.Span{
			Track: rt.names[qi], Name: "fault:" + h.Op.String(), Clock: telemetry.ClockVirtual,
			Start: start, End: end, ID: h.ID, Fault: true, TraceID: traceID(h),
		})
	}
}

// breakerState publishes a device's circuit-breaker state transition.
func (rt *runTel) breakerState(qi int, state int64) {
	rt.breaker[qi].Set(state)
}

// instrumentQueues attaches depth gauges and wait histograms to the
// concurrent engine's task queues.
func (rt *runTel) instrumentQueues(queues []*device.TaskQueue[*hlop.HLOP]) {
	for i, q := range queues {
		q.Instrument(rt.depth[i], rt.wait[i])
	}
}
