package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"shmt/internal/hlop"
	"shmt/internal/kernels"
	"shmt/internal/parallel"
	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// aggregate merges completed HLOP results into the VOP's output tensor: the
// data-aggregation/synchronization step the runtime performs from the
// completion queues (§3.3.1). Reduction partials merge semantically. For
// every other opcode the caller pre-allocates out and (view mode) binds each
// HLOP a strided view into it: results written through their view are
// already in place and only need release bookkeeping, while the rest —
// forced copies, halo interiors, private-memory devices that ignored the
// view — scatter back with strided copies fanned out over the host pool
// (each HLOP owns a disjoint output region, so the copies are race-free).
// It returns the output and the total bytes physically copied (for the
// host-time accounting; aliased results cost nothing).
//
// Aggregation is also where HLOP staging buffers die: each partition's
// result and its non-shared input blocks return to the tensor arena here, so
// the partition → execute → aggregate loop recycles its buffers instead of
// growing the heap. Inputs aliased from the parent VOP (views, GEMM's whole
// B matrix, the convolution kernel) stay untouched — PutMatrix refuses
// views, so releasing is safe either way.
func aggregate(v *vop.VOP, done []doneHLOP, out *tensor.Matrix) (*tensor.Matrix, int64, error) {
	if len(done) == 0 {
		return nil, 0, fmt.Errorf("core: no completed HLOPs to aggregate")
	}
	if v.Op.IsReduction() {
		ordered := make([]doneHLOP, len(done))
		copy(ordered, done)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].h.ID < ordered[b].h.ID })
		partials := make([]*tensor.Matrix, len(ordered))
		var bytes int64
		for i, d := range ordered {
			partials[i] = d.h.Result
			bytes += d.h.Result.Bytes(tensor.ElemSize)
		}
		merged, err := kernels.MergePartials(v.Op, partials, v.Inputs[0].Len())
		if err != nil {
			return nil, 0, err
		}
		for _, d := range ordered {
			releaseHLOPBuffers(v, d.h)
		}
		return merged, bytes, nil
	}

	if out == nil {
		rows, cols := v.OutputShape()
		out = tensor.NewMatrix(rows, cols)
	}
	// Pass 1 (sequential, allocation-free): results that aliased the output
	// through their view are already in place — release bookkeeping only.
	aliased := 0
	var aliasedBytes int64
	for i := range done {
		h := done[i].h
		if h.Out != nil && h.Result == h.Out {
			aliasedBytes += h.Region.Bytes(tensor.ElemSize)
			releaseHLOPBuffers(v, h)
			aliased++
		}
	}
	if aliased > 0 {
		telemetry.DatapathBytesAliased.Add(aliasedBytes)
		telemetry.DatapathCopiesAvoided.Add(int64(aliased))
	}
	if aliased == len(done) {
		return out, 0, nil
	}
	// Pass 2: scatter everything that still lives in a private buffer.
	var bytes atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	parallel.For(len(done), 1, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			h := done[x].h
			if h.Result == nil {
				continue // aliased, handled in pass 1
			}
			block := h.Result
			if h.Op.Halo() > 0 {
				interior, err := tensor.CopyOut(block, h.Interior)
				if err != nil {
					setErr(fmt.Errorf("core: extracting interior of HLOP %d: %w", h.ID, err))
					continue
				}
				block = interior
			}
			err := tensor.CopyIn(out, h.Region, block)
			if block != h.Result {
				tensor.PutMatrix(block)
			}
			if err != nil {
				setErr(fmt.Errorf("core: aggregating HLOP %d: %w", h.ID, err))
				continue
			}
			bytes.Add(h.Region.Bytes(tensor.ElemSize))
			releaseHLOPBuffers(v, h)
		}
	})
	if firstErr != nil {
		return nil, 0, firstErr
	}
	telemetry.DatapathBytesCopied.Add(bytes.Load())
	return out, bytes.Load(), nil
}

// releaseHLOPBuffers returns an aggregated HLOP's result and its private
// input blocks to the tensor arena. Inputs that alias the parent VOP's
// matrices are skipped; everything else was CopyOut-extracted for this HLOP
// alone and is dead once its region has been scattered.
func releaseHLOPBuffers(v *vop.VOP, h *hlop.HLOP) {
	tensor.PutMatrix(h.Result) // no-op when Result is the output view
	h.Result = nil
	h.Out = nil
	for _, in := range h.Inputs {
		shared := false
		for _, vin := range v.Inputs {
			if in == vin {
				shared = true
				break
			}
		}
		if !shared {
			tensor.PutMatrix(in)
		}
	}
	h.Inputs = nil
}

// coverageError verifies that completed HLOPs tile the output exactly once;
// the engines assert this invariant under -race test runs and the property
// tests exercise it directly.
func coverageError(v *vop.VOP, done []doneHLOP) error {
	if v.Op.IsReduction() {
		return nil
	}
	rows, cols := v.OutputShape()
	seen := make([]bool, rows*cols)
	for _, d := range done {
		r := d.h.Region
		for i := r.Row; i < r.Row+r.Height; i++ {
			for j := r.Col; j < r.Col+r.Width; j++ {
				idx := i*cols + j
				if seen[idx] {
					return fmt.Errorf("core: output cell (%d,%d) covered twice", i, j)
				}
				seen[idx] = true
			}
		}
	}
	for idx, ok := range seen {
		if !ok {
			return fmt.Errorf("core: output cell (%d,%d) never covered", idx/cols, idx%cols)
		}
	}
	return nil
}

// CheckCoverage exposes the tiling invariant for tests: it partitions the
// VOP with spec and verifies disjoint, complete coverage of the output.
func CheckCoverage(v *vop.VOP, spec hlop.Spec) error {
	hs, err := hlop.Partition(v, spec)
	if err != nil {
		return err
	}
	done := make([]doneHLOP, len(hs))
	for i, h := range hs {
		done[i] = doneHLOP{h: h}
	}
	return coverageError(v, done)
}
