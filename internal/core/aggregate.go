package core

import (
	"fmt"
	"sort"

	"shmt/internal/hlop"
	"shmt/internal/kernels"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// aggregate merges completed HLOP results into the VOP's output tensor: the
// data-aggregation/synchronization step the runtime performs from the
// completion queues (§3.3.1). Reduction partials merge semantically; every
// other opcode scatters each partition's interior back with strided copies.
// It returns the output and the total bytes copied (for the host-time
// accounting).
func aggregate(v *vop.VOP, done []doneHLOP) (*tensor.Matrix, int64, error) {
	if len(done) == 0 {
		return nil, 0, fmt.Errorf("core: no completed HLOPs to aggregate")
	}
	if v.Op.IsReduction() {
		ordered := make([]doneHLOP, len(done))
		copy(ordered, done)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].h.ID < ordered[b].h.ID })
		partials := make([]*tensor.Matrix, len(ordered))
		var bytes int64
		for i, d := range ordered {
			partials[i] = d.h.Result
			bytes += d.h.Result.Bytes(8)
		}
		out, err := kernels.MergePartials(v.Op, partials, v.Inputs[0].Len())
		return out, bytes, err
	}

	rows, cols := v.OutputShape()
	out := tensor.NewMatrix(rows, cols)
	var bytes int64
	for _, d := range done {
		h := d.h
		block := h.Result
		if h.Op.Halo() > 0 {
			interior, err := tensor.CopyOut(block, h.Interior)
			if err != nil {
				return nil, 0, fmt.Errorf("core: extracting interior of HLOP %d: %w", h.ID, err)
			}
			block = interior
		}
		if err := tensor.CopyIn(out, h.Region, block); err != nil {
			return nil, 0, fmt.Errorf("core: aggregating HLOP %d: %w", h.ID, err)
		}
		bytes += h.Region.Bytes(8)
	}
	return out, bytes, nil
}

// coverageError verifies that completed HLOPs tile the output exactly once;
// the engines assert this invariant under -race test runs and the property
// tests exercise it directly.
func coverageError(v *vop.VOP, done []doneHLOP) error {
	if v.Op.IsReduction() {
		return nil
	}
	rows, cols := v.OutputShape()
	seen := make([]bool, rows*cols)
	for _, d := range done {
		r := d.h.Region
		for i := r.Row; i < r.Row+r.Height; i++ {
			for j := r.Col; j < r.Col+r.Width; j++ {
				idx := i*cols + j
				if seen[idx] {
					return fmt.Errorf("core: output cell (%d,%d) covered twice", i, j)
				}
				seen[idx] = true
			}
		}
	}
	for idx, ok := range seen {
		if !ok {
			return fmt.Errorf("core: output cell (%d,%d) never covered", idx/cols, idx%cols)
		}
	}
	return nil
}

// CheckCoverage exposes the tiling invariant for tests: it partitions the
// VOP with spec and verifies disjoint, complete coverage of the output.
func CheckCoverage(v *vop.VOP, spec hlop.Spec) error {
	hs, err := hlop.Partition(v, spec)
	if err != nil {
		return err
	}
	done := make([]doneHLOP, len(hs))
	for i, h := range hs {
		done[i] = doneHLOP{h: h}
	}
	return coverageError(v, done)
}
