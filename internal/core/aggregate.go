package core

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"shmt/internal/hlop"
	"shmt/internal/kernels"
	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// aggregate merges completed HLOP results into the VOP's output tensor: the
// data-aggregation/synchronization step the runtime performs from the
// completion queues (§3.3.1). Reduction partials merge semantically; every
// other opcode scatters each partition's interior back with strided copies,
// fanned out over the host pool (each HLOP owns a disjoint output region, so
// the copies are race-free). It returns the output and the total bytes
// copied (for the host-time accounting).
//
// Aggregation is also where HLOP staging buffers die: each partition's
// result and its non-shared input blocks return to the tensor arena here, so
// the partition → execute → aggregate loop recycles its buffers instead of
// growing the heap. Inputs aliased from the parent VOP (GEMM's whole B
// matrix, the convolution kernel) stay untouched.
func aggregate(v *vop.VOP, done []doneHLOP) (*tensor.Matrix, int64, error) {
	if len(done) == 0 {
		return nil, 0, fmt.Errorf("core: no completed HLOPs to aggregate")
	}
	if v.Op.IsReduction() {
		ordered := make([]doneHLOP, len(done))
		copy(ordered, done)
		sort.Slice(ordered, func(a, b int) bool { return ordered[a].h.ID < ordered[b].h.ID })
		partials := make([]*tensor.Matrix, len(ordered))
		var bytes int64
		for i, d := range ordered {
			partials[i] = d.h.Result
			bytes += d.h.Result.Bytes(8)
		}
		out, err := kernels.MergePartials(v.Op, partials, v.Inputs[0].Len())
		if err != nil {
			return nil, 0, err
		}
		for _, d := range ordered {
			releaseHLOPBuffers(v, d.h)
		}
		return out, bytes, nil
	}

	rows, cols := v.OutputShape()
	out := tensor.NewMatrix(rows, cols)
	var bytes atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	setErr := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	parallel.For(len(done), 1, func(lo, hi int) {
		for x := lo; x < hi; x++ {
			h := done[x].h
			block := h.Result
			if h.Op.Halo() > 0 {
				interior, err := tensor.CopyOut(block, h.Interior)
				if err != nil {
					setErr(fmt.Errorf("core: extracting interior of HLOP %d: %w", h.ID, err))
					continue
				}
				block = interior
			}
			err := tensor.CopyIn(out, h.Region, block)
			if block != h.Result {
				tensor.PutMatrix(block)
			}
			if err != nil {
				setErr(fmt.Errorf("core: aggregating HLOP %d: %w", h.ID, err))
				continue
			}
			bytes.Add(h.Region.Bytes(8))
			releaseHLOPBuffers(v, h)
		}
	})
	if firstErr != nil {
		return nil, 0, firstErr
	}
	return out, bytes.Load(), nil
}

// releaseHLOPBuffers returns an aggregated HLOP's result and its private
// input blocks to the tensor arena. Inputs that alias the parent VOP's
// matrices are skipped; everything else was CopyOut-extracted for this HLOP
// alone and is dead once its region has been scattered.
func releaseHLOPBuffers(v *vop.VOP, h *hlop.HLOP) {
	tensor.PutMatrix(h.Result)
	h.Result = nil
	for _, in := range h.Inputs {
		shared := false
		for _, vin := range v.Inputs {
			if in == vin {
				shared = true
				break
			}
		}
		if !shared {
			tensor.PutMatrix(in)
		}
	}
	h.Inputs = nil
}

// coverageError verifies that completed HLOPs tile the output exactly once;
// the engines assert this invariant under -race test runs and the property
// tests exercise it directly.
func coverageError(v *vop.VOP, done []doneHLOP) error {
	if v.Op.IsReduction() {
		return nil
	}
	rows, cols := v.OutputShape()
	seen := make([]bool, rows*cols)
	for _, d := range done {
		r := d.h.Region
		for i := r.Row; i < r.Row+r.Height; i++ {
			for j := r.Col; j < r.Col+r.Width; j++ {
				idx := i*cols + j
				if seen[idx] {
					return fmt.Errorf("core: output cell (%d,%d) covered twice", i, j)
				}
				seen[idx] = true
			}
		}
	}
	for idx, ok := range seen {
		if !ok {
			return fmt.Errorf("core: output cell (%d,%d) never covered", idx/cols, idx%cols)
		}
	}
	return nil
}

// CheckCoverage exposes the tiling invariant for tests: it partitions the
// VOP with spec and verifies disjoint, complete coverage of the output.
func CheckCoverage(v *vop.VOP, spec hlop.Spec) error {
	hs, err := hlop.Partition(v, spec)
	if err != nil {
		return err
	}
	done := make([]doneHLOP, len(hs))
	for i, h := range hs {
		done[i] = doneHLOP{h: h}
	}
	return coverageError(v, done)
}
