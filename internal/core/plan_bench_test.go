package core

import (
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/sampling"
	"shmt/internal/sched"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// BenchmarkPlanningOverhead isolates the host-side planning phase —
// hlop.Partition plus Policy.Assign — and compares cold planning against
// replaying a memoized plan, then repeats the comparison end-to-end through
// Engine.Run. The plan/* sub-benchmarks measure exactly what the plan cache
// short-circuits: cold runs partition geometry, criticality sampling and the
// assignment pass every iteration; replay runs the key lookup plus data
// re-extraction (views must rebind to the new inputs) and nothing else.
// BENCH_plan.json snapshots the result; benchdiff re-runs this suite.
func BenchmarkPlanningOverhead(b *testing.B) {
	reg, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		b.Fatal(err)
	}
	// 2048 is the serving-realistic shape (the paper's full-size inputs are
	// 8192²); sampling cost scales with elements while replay cost scales
	// with partition count, so small inputs understate what replay saves.
	side := 2048
	a := tensor.NewMatrix(side, side)
	c := tensor.NewMatrix(side, side)
	for i := range a.Data {
		a.Data[i] = float64(i%97) * 0.25
		c.Data[i] = float64(i%89) * 0.5
	}
	v, err := vop.New(vop.OpAdd, a, c)
	if err != nil {
		b.Fatal(err)
	}

	policies := []struct {
		name string
		pol  sched.Policy
	}{
		// Shape-only planning: the floor for what replay can save.
		{"worksteal", sched.WorkStealing{}},
		// The paper-default QAWS variant (top-K, striding, rate 2^-15).
		{"qaws_ts", sched.QAWS{}},
		// The highest-overhead sampler at a quality-leaning rate (Fig. 9
		// sweeps rates; denser sampling is where planning cost concentrates).
		{"qaws_tr_dense", sched.QAWS{Method: sampling.Reduction, Rate: 1.0 / (1 << 8)}},
	}

	planOnce := func(b *testing.B, e *Engine) {
		b.Helper()
		fx := e.newFaultState()
		ctx := &sched.Context{Reg: e.Reg, Seed: e.Seed, HostScale: 1, Quarantined: fx.quarantined}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, _, _, err := e.planVOP(ctx, e.Policy, v, nil, 0); err != nil {
				b.Fatal(err)
			}
		}
	}

	for _, p := range policies {
		b.Run("plan/"+p.name+"/cold", func(b *testing.B) {
			planOnce(b, &Engine{Reg: reg, Policy: p.pol, Seed: 1})
		})
		b.Run("plan/"+p.name+"/replay", func(b *testing.B) {
			e := &Engine{Reg: reg, Policy: p.pol, Seed: 1, PlanCacheEntries: 64}
			fx := e.newFaultState()
			ctx := &sched.Context{Reg: reg, Seed: 1, HostScale: 1, Quarantined: fx.quarantined}
			if _, _, _, err := e.planVOP(ctx, p.pol, v, nil, 0); err != nil {
				b.Fatal(err) // warm the cache
			}
			planOnce(b, e)
		})
	}

	// End-to-end: the same VOP through Engine.Run with and without replay.
	// Kernel execution and aggregation dominate here; the delta is the
	// planning phase the cache eliminates.
	run := func(b *testing.B, e *Engine) {
		b.Helper()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := e.Run(v); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("execute/qaws_tr_dense/fresh", func(b *testing.B) {
		run(b, &Engine{Reg: reg, Policy: sched.QAWS{Method: sampling.Reduction, Rate: 1.0 / (1 << 8)}, Seed: 1})
	})
	b.Run("execute/qaws_tr_dense/replay", func(b *testing.B) {
		e := &Engine{Reg: reg, Policy: sched.QAWS{Method: sampling.Reduction, Rate: 1.0 / (1 << 8)},
			Seed: 1, PlanCacheEntries: 64}
		if _, err := e.Run(v); err != nil {
			b.Fatal(err) // warm the cache
		}
		run(b, e)
	})
}
