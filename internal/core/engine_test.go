package core

import (
	"errors"
	"math"
	"sync/atomic"
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
	"shmt/internal/tensor"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

func stdRegistry(t *testing.T) *device.Registry {
	t.Helper()
	reg, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	return reg
}

func sobelVOP(t *testing.T, side int, seed int64) *vop.VOP {
	t.Helper()
	m := workload.Mixed(side, side, workload.Profile{TileSize: side / 4}, seed)
	v, err := vop.New(vop.OpSobel, m)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestEngineRequiresRegistry(t *testing.T) {
	e := &Engine{}
	if _, err := e.Run(sobelVOP(t, 32, 1)); err == nil {
		t.Fatal("engine without registry should error")
	}
}

func TestEngineDefaultsToWorkStealing(t *testing.T) {
	e := &Engine{Reg: stdRegistry(t), Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}}
	rep, err := e.Run(sobelVOP(t, 64, 2))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Output == nil || rep.Makespan <= 0 || rep.HLOPs == 0 {
		t.Fatalf("report = %+v", rep)
	}
}

func TestEngineExactWhenCPUOnly(t *testing.T) {
	v := sobelVOP(t, 64, 3)
	e := &Engine{Reg: stdRegistry(t), Policy: sched.SingleDevice{Device: "cpu"},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}}
	rep, err := e.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	// Partitioned exact execution must equal whole-matrix exact execution:
	// the halos make stencil partitions exact.
	ref, err := cpu.New(1).Execute(vop.OpSobel, v.Inputs, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Output.Equal(ref) {
		t.Fatal("partitioned exact run differs from whole-matrix run")
	}
}

func TestEngineDeterministicReproducible(t *testing.T) {
	run := func() *Report {
		e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
			Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, DoubleBuffer: true, Seed: 7}
		rep, err := e.Run(sobelVOP(t, 64, 4))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.Makespan != b.Makespan {
		t.Fatalf("makespans differ: %g vs %g", a.Makespan, b.Makespan)
	}
	if !a.Output.Equal(b.Output) {
		t.Fatal("outputs differ across identical runs")
	}
}

func TestEngineConservation(t *testing.T) {
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, RecordTrace: true}
	rep, err := e.Run(sobelVOP(t, 64, 5))
	if err != nil {
		t.Fatal(err)
	}
	// Every HLOP executes exactly once.
	seen := map[int]int{}
	for _, ev := range rep.Trace.Events() {
		seen[ev.HLOP]++
	}
	if len(seen) != rep.HLOPs {
		t.Fatalf("trace has %d distinct HLOPs, report says %d", len(seen), rep.HLOPs)
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("HLOP %d executed %d times", id, n)
		}
	}
}

func TestEngineQAWSNeverRunsCriticalOnTPU(t *testing.T) {
	e := &Engine{Reg: stdRegistry(t),
		Policy:       sched.QAWS{Assignment: sched.TopK, Method: 0, Rate: 0.02, K: 0.25, W: 8},
		Spec:         hlop.Spec{TargetPartitions: 16, MinTile: 8},
		DoubleBuffer: true, RecordTrace: true}
	rep, err := e.Run(sobelVOP(t, 128, 6))
	if err != nil {
		t.Fatal(err)
	}
	for _, ev := range rep.Trace.Events() {
		if ev.Critical && ev.Device == "tpu" {
			t.Fatal("critical HLOP executed on the TPU despite QAWS")
		}
	}
}

func TestEngineReductionAggregation(t *testing.T) {
	m := workload.Uniform(64, 64, 0, 1, 7)
	v, _ := vop.New(vop.OpReduceSum, m)
	e := &Engine{Reg: stdRegistry(t), Policy: sched.SingleDevice{Device: "cpu"},
		Spec: hlop.Spec{TargetPartitions: 8}}
	rep, err := e.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, x := range m.Data {
		want += x
	}
	if math.Abs(rep.Output.Data[0]-want) > 1e-6 {
		t.Fatalf("sum = %g want %g", rep.Output.Data[0], want)
	}
}

func TestEngineGEMMEndToEnd(t *testing.T) {
	a := workload.Uniform(32, 16, 0, 1, 8)
	b := workload.Uniform(16, 24, 0, 1, 9)
	v, _ := vop.New(vop.OpGEMM, a, b)
	e := &Engine{Reg: stdRegistry(t), Policy: sched.SingleDevice{Device: "cpu"},
		Spec: hlop.Spec{TargetPartitions: 4}}
	rep, err := e.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := cpu.New(1).Execute(vop.OpGEMM, []*tensor.Matrix{a, b}, nil)
	if !rep.Output.Equal(want) {
		t.Fatal("partitioned GEMM differs from whole-matrix GEMM")
	}
}

// TestEngineSplitsOversizedHLOPs shrinks the TPU's memory so partitions
// overflow it and the runtime must split (§3.4's granularity adjustment).
func TestEngineSplitsOversizedHLOPs(t *testing.T) {
	tiny := tpu.New(tpu.Config{MemoryBytes: 6 << 10}) // 6 KiB
	reg, _ := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tiny)
	e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "tpu"},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}, RecordTrace: true}
	v := sobelVOP(t, 128, 10) // 4 partitions of ~64x64 > 6 KiB working set
	rep, err := e.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HLOPs <= 4 {
		t.Fatalf("expected splits beyond the initial 4 partitions, got %d", rep.HLOPs)
	}
	// Result must still be complete and correct within INT8 error.
	ref, _ := cpu.New(1).Execute(vop.OpSobel, v.Inputs, nil)
	var worst float64
	for i := range ref.Data {
		if d := math.Abs(rep.Output.Data[i] - ref.Data[i]); d > worst {
			worst = d
		}
	}
	if worst > 1.0 {
		t.Fatalf("split execution produced wild error %g", worst)
	}
}

// flakyDevice wraps a Device and fails the first N Execute calls.
type flakyDevice struct {
	device.Device
	failures atomic.Int32
}

var errInjected = errors.New("injected device failure")

func (f *flakyDevice) Execute(op vop.Opcode, in []*tensor.Matrix, at map[string]float64) (*tensor.Matrix, error) {
	return f.ExecuteInto(op, in, nil, at)
}

func (f *flakyDevice) ExecuteInto(op vop.Opcode, in []*tensor.Matrix, dst *tensor.Matrix, at map[string]float64) (*tensor.Matrix, error) {
	if f.failures.Add(-1) >= 0 {
		return nil, errInjected
	}
	return f.Device.ExecuteInto(op, in, dst, at)
}

func TestEngineFailureFallback(t *testing.T) {
	flaky := &flakyDevice{Device: tpu.New(tpu.Config{})}
	flaky.failures.Store(2)
	reg, _ := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), flaky)
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}, RecordTrace: true}
	rep, err := e.Run(sobelVOP(t, 64, 11))
	if err != nil {
		t.Fatalf("engine should survive transient device failures: %v", err)
	}
	if rep.HLOPs != 4 {
		t.Fatalf("HLOPs = %d", rep.HLOPs)
	}
}

func TestEnginePermanentFailureSurfaces(t *testing.T) {
	flaky := &flakyDevice{Device: gpu.New(gpu.Config{})}
	flaky.failures.Store(1 << 20)       // never recovers
	reg, _ := device.NewRegistry(flaky) // the only device
	e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "gpu"},
		Spec: hlop.Spec{TargetPartitions: 2, MinTile: 8}}
	if _, err := e.Run(sobelVOP(t, 32, 12)); err == nil {
		t.Fatal("permanent failure with no fallback must surface")
	}
}

func TestEngineUnschedulableWork(t *testing.T) {
	// Even distribution never steals; if a policy mis-assigns to a dead
	// queue... not constructible through public policies, so instead check
	// the nil-VOP validation path.
	e := &Engine{Reg: stdRegistry(t)}
	bad := &vop.VOP{Op: vop.OpAdd, Inputs: []*tensor.Matrix{tensor.NewMatrix(4, 4)}}
	if _, err := e.Run(bad); err == nil {
		t.Fatal("invalid VOP should fail")
	}
}

func TestEngineEnergyAndComm(t *testing.T) {
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, DoubleBuffer: true}
	rep, err := e.Run(sobelVOP(t, 128, 13))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Energy.Total() <= 0 {
		t.Fatal("energy not integrated")
	}
	if rep.Comm.Bytes <= 0 || rep.Comm.TransferTime <= 0 {
		t.Fatal("communication not tracked")
	}
	if rep.Comm.ExposedTime > rep.Comm.TransferTime {
		t.Fatal("exposed time cannot exceed raw transfer time")
	}
	if rep.PeakBytes <= 0 {
		t.Fatal("footprint not tracked")
	}
}

func TestEngineDoubleBufferReducesMakespan(t *testing.T) {
	run := func(dev string, db bool) *Report {
		e := &Engine{Reg: stdRegistry(t), Policy: sched.SingleDevice{Device: dev},
			Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, DoubleBuffer: db}
		rep, err := e.Run(sobelVOP(t, 128, 14))
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	for _, dev := range []string{"gpu", "tpu"} {
		pipelined, baseline := run(dev, true), run(dev, false)
		if pipelined.Makespan >= baseline.Makespan {
			t.Fatalf("%s: double buffering should shorten the run: %g vs %g",
				dev, pipelined.Makespan, baseline.Makespan)
		}
		// Without overlap every transfer second is exposed; the two-stage
		// lane hides part of it but can never hide more than there is.
		if baseline.Comm.ExposedTime != baseline.Comm.TransferTime {
			t.Fatalf("%s: serial run should expose all transfer time: %g vs %g",
				dev, baseline.Comm.ExposedTime, baseline.Comm.TransferTime)
		}
		if pipelined.Comm.ExposedTime >= baseline.Comm.ExposedTime {
			t.Fatalf("%s: overlap did not hide any transfer time: %g vs %g",
				dev, pipelined.Comm.ExposedTime, baseline.Comm.ExposedTime)
		}
		if pipelined.Comm.ExposedTime > pipelined.Comm.TransferTime+1e-12 {
			t.Fatalf("%s: exposed %g exceeds raw transfer %g",
				dev, pipelined.Comm.ExposedTime, pipelined.Comm.TransferTime)
		}
	}
}

func TestConcurrentEngineMatchesInvariants(t *testing.T) {
	v := sobelVOP(t, 128, 15)
	e := &Engine{Reg: stdRegistry(t), Policy: sched.QAWS{Assignment: sched.TopK, Rate: 0.02},
		Spec: hlop.Spec{TargetPartitions: 8, MinTile: 8}, DoubleBuffer: true,
		Concurrent: true, RecordTrace: true}
	rep, err := e.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	if rep.HLOPs < 8 {
		t.Fatalf("HLOPs = %d", rep.HLOPs)
	}
	seen := map[int]int{}
	for _, ev := range rep.Trace.Events() {
		seen[ev.HLOP]++
		if ev.Critical && ev.Device == "tpu" {
			t.Fatal("concurrent engine violated the QAWS stealing constraint")
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("HLOP %d executed %d times", id, n)
		}
	}
	// Output completeness: same shape, no zero holes (input is positive).
	ref, _ := cpu.New(1).Execute(vop.OpSobel, v.Inputs, nil)
	if rep.Output.Rows != ref.Rows || rep.Output.Cols != ref.Cols {
		t.Fatal("output shape wrong")
	}
}

func TestConcurrentEngineCPUOnlyMatchesDeterministic(t *testing.T) {
	v := sobelVOP(t, 64, 16)
	mk := func(concurrent bool) *tensor.Matrix {
		e := &Engine{Reg: stdRegistry(t), Policy: sched.SingleDevice{Device: "cpu"},
			Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}, Concurrent: concurrent}
		rep, err := e.Run(v)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Output
	}
	if !mk(false).Equal(mk(true)) {
		t.Fatal("single-device runs must be engine-independent")
	}
}

func TestConcurrentEngineFailureFallback(t *testing.T) {
	flaky := &flakyDevice{Device: tpu.New(tpu.Config{})}
	flaky.failures.Store(2)
	reg, _ := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), flaky)
	e := &Engine{Reg: reg, Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}, Concurrent: true}
	if _, err := e.Run(sobelVOP(t, 64, 17)); err != nil {
		t.Fatalf("concurrent engine should survive transient failures: %v", err)
	}
}

func TestCheckCoverage(t *testing.T) {
	v := sobelVOP(t, 64, 18)
	if err := CheckCoverage(v, hlop.Spec{TargetPartitions: 8, MinTile: 8}); err != nil {
		t.Fatal(err)
	}
}

func TestHostScalePreservesTimelineShape(t *testing.T) {
	// A quarter-size run at 4x slowdown should land near the full-size
	// makespan (same HLOP structure, same per-HLOP virtual costs).
	big := sobelVOP(t, 256, 19)
	small := sobelVOP(t, 128, 19)
	mk := func(v *vop.VOP, scale float64) float64 {
		reg, _ := device.NewRegistry(cpu.New(scale),
			gpu.New(gpu.Config{Slowdown: scale}), tpu.New(tpu.Config{Slowdown: scale}))
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, HostScale: scale,
			Spec: hlop.Spec{TargetPartitions: 16, MinTile: 8}, DoubleBuffer: true}
		rep, err := e.Run(v)
		if err != nil {
			t.Fatal(err)
		}
		return rep.Makespan
	}
	full := mk(big, 1)
	scaled := mk(small, 4)
	if math.Abs(full-scaled)/full > 0.05 {
		t.Fatalf("virtual scaling drifted: full=%g scaled=%g", full, scaled)
	}
}

// Multi-step Hotspot partitions stay exact because the partitioner widens
// the halo to the step count (vop.VOP.HaloWidth).
func TestEngineMultiStepStencilExact(t *testing.T) {
	temp := workload.Uniform(64, 64, 70, 90, 50)
	power := workload.Uniform(64, 64, 0, 1, 51)
	v, err := vop.New(vop.OpStencil, temp, power)
	if err != nil {
		t.Fatal(err)
	}
	v.SetAttr("steps", 3)
	e := &Engine{Reg: stdRegistry(t), Policy: sched.SingleDevice{Device: "cpu"},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}}
	rep, err := e.Run(v)
	if err != nil {
		t.Fatal(err)
	}
	want, err := cpu.New(1).Execute(vop.OpStencil, []*tensor.Matrix{temp, power},
		map[string]float64{"steps": 3})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Output.Equal(want) {
		t.Fatal("multi-step partitioned stencil differs from whole-matrix run")
	}
}
