package core

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"shmt/internal/device"
	"shmt/internal/hlop"
	"shmt/internal/interconnect"
	"shmt/internal/sched"
	"shmt/internal/telemetry"
	"shmt/internal/trace"
)

// runConcurrent is the goroutine engine: one worker per device drains its
// TaskQueue — the paper's "thread monitoring the queue will work with the
// target device's kernel module and execute the HLOP implementation whenever
// the device is available" (§3.3.1). Idle workers steal from the most-loaded
// permitted victim. Virtual time is still used for cost accounting (each
// worker owns its device clock), but scheduling order is decided by real
// concurrent execution, so this engine validates that the runtime's
// invariants do not depend on the deterministic event ordering.
func (e *Engine) runConcurrent(ctx *sched.Context, pol sched.Policy,
	hs []*hlop.HLOP, overhead float64, tr *trace.Trace, rt *runTel, fx *faultState) (*runResult, error) {

	n := e.Reg.Len()
	queues := make([]*device.TaskQueue[*hlop.HLOP], n)
	for i := 0; i < n; i++ {
		queues[i] = device.NewTaskQueue[*hlop.HLOP]()
	}
	if rt != nil {
		rt.instrumentQueues(queues)
	}
	for _, h := range hs {
		h.ReadyAt = overhead
		queues[h.AssignedQueue].Push(h)
	}
	pf := e.newPrefetcher(hs)
	defer pf.drain()

	var outstanding atomic.Int64
	outstanding.Store(int64(len(hs)))
	var nextID atomic.Int64
	nextID.Store(int64(len(hs)))

	var mu sync.Mutex // guards retries, firstErr (the trace locks internally)
	retries := map[*hlop.HLOP]int{}
	var firstErr error

	// aborted makes failure terminal for every worker. Draining the queues
	// alone is not enough: a worker holding a popped-but-unfinished HLOP
	// keeps outstanding above zero after the queues empty, and the surviving
	// workers would spin on outstanding.Load() forever.
	var aborted atomic.Bool

	fail := func(err error) {
		mu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		mu.Unlock()
		aborted.Store(true)
	}

	type workerState struct {
		lane interconnect.Lane
		busy float64
		ran  bool
		comm struct {
			bytes         int64
			xfer, exposed float64
		}
	}
	states := make([]*workerState, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		st := &workerState{}
		st.lane.Reset(overhead)
		states[i] = st
		wg.Add(1)
		go func(qi int, st *workerState) {
			defer wg.Done()
			dev := e.Reg.Get(qi)
			br := fx.brs[qi]
			etc := device.NewExecTimeCacheSized(e.ExecTimeCacheEntries) // per-worker: the cache is not concurrency-safe
			for outstanding.Load() > 0 && !aborted.Load() {
				// A quarantined worker serves only its own queue: whatever the
				// open-time redistribution could not place stays behind as
				// probe fodder, so no HLOP is ever stranded.
				var h *hlop.HLOP
				victim := -1
				if br.quarantined() {
					h, _ = queues[qi].Pop()
				} else {
					h, victim = e.obtainConcurrent(ctx, pol, queues, qi)
				}
				if h == nil {
					runtime.Gosched()
					continue
				}
				stolen := victim >= 0
				wasProbe := !stolen && br.beginProbe()
				// Stage ahead for the HLOPs still queued behind h (a stolen h
				// left this worker's own queue empty).
				if d := pf.peekDepth(); d > 0 && !stolen {
					for _, nh := range queues[qi].Peek(d) {
						pf.issue(qi, dev, nh)
					}
				}
				result, execErr := e.executeHLOP(pf, qi, dev, h)
				if execErr != nil {
					pf.cancel(h)
					if errors.Is(execErr, device.ErrTooLarge) {
						a, b, splitErr := hlop.Split(h, int(nextID.Add(1)-1))
						if splitErr != nil {
							fail(fmt.Errorf("core: HLOP %d overflows %s and cannot split: %w", h.ID, dev.Name(), splitErr))
							return
						}
						telemetry.HLOPSplits.Inc()
						st.lane.Compute += splitCost
						a.ReadyAt, b.ReadyAt = st.lane.Compute, st.lane.Compute
						outstanding.Add(1)
						queues[qi].PushFront(b)
						queues[qi].PushFront(a)
						continue
					}
					mu.Lock()
					retries[h]++
					r := retries[h]
					mu.Unlock()
					busy, idle, opened := e.noteFault(fx.rz, br, fx.deg, rt, qi, dev, h, st.lane.Compute, wasProbe)
					st.lane.Compute += busy
					st.busy += busy
					if r >= fx.rz.MaxRetries {
						fail(fmt.Errorf("core: HLOP %d failed on %s after retries: %w", h.ID, dev.Name(), execErr))
						return
					}
					if opened {
						openAt := st.lane.Compute
						st.lane.Compute += idle // quarantine is idle virtual time
						moved, kept := 0, 0
						backlog := queues[qi].DrainPending()
						for bi, b := range backlog {
							// Hold the last backlog item back as the
							// re-admission probe (see runDeterministic).
							if bi == len(backlog)-1 && kept == 0 {
								queues[qi].Push(b)
								continue
							}
							alt := e.fallbackQueue(ctx, qi, b)
							if alt < 0 {
								queues[qi].Push(b) // probe fodder
								kept++
								continue
							}
							pf.cancel(b) // its prestage will never be consumed here
							fx.deg.noteReroute(b, b.AssignedQueue)
							telemetry.HLOPsRerouted.With(dev.Name()).Inc()
							b.AssignedQueue = alt
							b.ReadyAt = openAt
							queues[alt].Push(b)
							moved++
						}
						fx.deg.noteQuarantine(Quarantine{Device: dev.Name(), At: openAt, Cooldown: idle, Rerouted: moved})
					}
					if alt := e.fallbackQueue(ctx, qi, h); alt >= 0 {
						fx.deg.noteReroute(h, h.AssignedQueue)
						telemetry.HLOPsRerouted.With(dev.Name()).Inc()
						h.AssignedQueue = alt
						h.ReadyAt = st.lane.Compute
						queues[alt].Push(h)
					} else {
						// No healthy fallback: keep it ours and let the retry
						// bound decide between recovery and surfacing.
						h.ReadyAt = st.lane.Compute
						queues[qi].PushFront(h)
					}
					continue
				}
				e.noteRecovery(br, fx.deg, rt, qi, dev)

				exec, inT, outT, bytes := e.hlopParts(dev, h, etc)
				exec += takeInjectedDelay(dev)
				ready := h.ReadyAt
				if stolen {
					// The prefetched input belonged to the victim's queue: the
					// thief's transfer cannot predate its steal decision.
					ready = st.lane.Compute
				}
				adm := st.lane.Admit(ready, dev.DispatchOverhead(), inT, exec, outT, e.DoubleBuffer)
				st.busy += adm.End - adm.Start
				st.ran = true
				st.comm.bytes += bytes
				st.comm.xfer += inT + outT
				st.comm.exposed += adm.Exposed

				h.Result = result
				h.ExecQueue = qi
				// Finished HLOPs move to the device's completion queue, which
				// the runtime drains for aggregation (§3.3.1).
				h.Finish = adm.OutEnd
				queues[qi].Complete(h)
				if rt != nil {
					rt.hlopDone(qi, victim, h, adm.Start, adm.End)
					rt.hlopXfer(qi, h, adm)
				}
				tr.Record(trace.Event{
					HLOP: h.ID, Device: dev.Name(), Op: h.Op.String(),
					Start: adm.Start, End: adm.End,
					BytesIn: h.InputBytes(dev.ElemBytes()), BytesOut: h.OutputBytes(dev.ElemBytes()),
					Stolen: stolen || h.AssignedQueue != qi, Critical: h.Critical,
				})
				outstanding.Add(-1)
			}
		}(i, st)
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}

	res := &runResult{busy: map[string]float64{}}
	for _, q := range queues {
		for _, h := range q.DrainCompleted() {
			res.done = append(res.done, doneHLOP{h: h, finish: h.Finish})
		}
	}
	for i, st := range states {
		name := e.Reg.Get(i).Name()
		if st.busy > 0 {
			res.busy[name] += st.busy
		}
		if st.ran {
			// The outbound tail no compute follows is the one transfer cost
			// the pipeline cannot hide.
			st.comm.exposed += st.lane.Drain()
			if m := st.lane.Makespan(); m > res.deviceMakespan {
				res.deviceMakespan = m
			}
		}
		res.comm.Add(st.comm.bytes, st.comm.xfer, st.comm.exposed)
	}
	if res.deviceMakespan == 0 {
		res.deviceMakespan = overhead
	}
	return res, nil
}

// obtainConcurrent pops from the worker's own queue, then steals from the
// most-loaded permitted victim. The second return is the victim queue index
// for a stolen HLOP, -1 when the worker's own queue supplied the work.
func (e *Engine) obtainConcurrent(ctx *sched.Context, pol sched.Policy,
	queues []*device.TaskQueue[*hlop.HLOP], qi int) (*hlop.HLOP, int) {

	if h, ok := queues[qi].Pop(); ok {
		return h, -1
	}
	if !pol.StealingEnabled() {
		return nil, -1
	}
	telemetry.StealAttempts.Inc()
	// Try victims in descending queue-depth order; re-check CanSteal on the
	// actually stolen item (the depth snapshot races with other workers, so
	// validate after the fact and put forbidden items back).
	type cand struct{ q, depth int }
	var cands []cand
	for vq := range queues {
		if vq == qi || !ctx.StealableVictim(vq) {
			continue
		}
		if l := queues[vq].Pending(); l > 0 {
			cands = append(cands, cand{vq, l})
		}
	}
	sort.Slice(cands, func(a, b int) bool { return cands[a].depth > cands[b].depth })
	for _, c := range cands {
		h, ok := queues[c.q].Steal()
		if !ok {
			continue
		}
		if !pol.CanSteal(ctx, qi, c.q, h) || !ctx.StealableVictim(c.q) {
			telemetry.StealRejected.Inc()
			queues[c.q].Push(h) // put it back; not ours to take
			continue
		}
		return h, c.q
	}
	return nil, -1
}
