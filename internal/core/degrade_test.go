package core

import (
	"errors"
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/dsp"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
	"shmt/internal/vop"
)

func TestBreakerStateMachine(t *testing.T) {
	rz := Resilience{}.withDefaults()
	b := &breaker{}

	// Closed absorbs failures below the threshold.
	for i := 0; i < rz.BreakerThreshold-1; i++ {
		if _, opened, _ := b.onFailure(rz); opened {
			t.Fatalf("breaker opened after %d failures (threshold %d)", i+1, rz.BreakerThreshold)
		}
	}
	if b.quarantined() {
		t.Fatal("breaker should still be closed")
	}
	// The threshold failure opens it.
	_, opened, cd := b.onFailure(rz)
	if !opened || cd != rz.BreakerCooldown {
		t.Fatalf("opened=%v cooldown=%g", opened, cd)
	}
	if !b.quarantined() {
		t.Fatal("open breaker must quarantine")
	}
	// Probe: open -> half-open; a failed probe re-opens with doubled cooldown.
	if !b.beginProbe() {
		t.Fatal("beginProbe on an open breaker must start a probe")
	}
	if b.quarantined() {
		t.Fatal("half-open is not quarantined (the probe is in flight)")
	}
	_, opened, cd = b.onFailure(rz)
	if !opened || cd != 2*rz.BreakerCooldown {
		t.Fatalf("failed probe: opened=%v cooldown=%g want %g", opened, cd, 2*rz.BreakerCooldown)
	}
	// A successful probe re-admits.
	if !b.beginProbe() {
		t.Fatal("second probe")
	}
	if !b.onSuccess() {
		t.Fatal("probe success must report re-admission")
	}
	if b.quarantined() || b.consecFails != 0 {
		t.Fatal("breaker must be closed and reset after re-admission")
	}
	// Ordinary successes are not re-admissions.
	if b.onSuccess() {
		t.Fatal("a success on a closed breaker is not a re-admission")
	}
}

func TestBackoffIsExponentialAndCapped(t *testing.T) {
	rz := Resilience{BreakerThreshold: 100}.withDefaults()
	b := &breaker{}
	prev := 0.0
	for i := 0; i < 12; i++ {
		backoff, _, _ := b.onFailure(rz)
		if backoff < prev {
			t.Fatalf("backoff shrank: %g after %g", backoff, prev)
		}
		if backoff > rz.BackoffCap {
			t.Fatalf("backoff %g exceeds cap %g", backoff, rz.BackoffCap)
		}
		prev = backoff
	}
	if prev != rz.BackoffCap {
		t.Fatalf("backoff should saturate at the cap, got %g", prev)
	}
}

// fallbackQueue edge cases.

func TestFallbackQueueNoOtherDevice(t *testing.T) {
	reg, _ := device.NewRegistry(gpu.New(gpu.Config{}))
	e := &Engine{Reg: reg}
	ctx := &sched.Context{Reg: reg}
	h := &hlop.HLOP{Op: vop.OpSobel}
	if alt := e.fallbackQueue(ctx, 0, h); alt != -1 {
		t.Fatalf("sole device must have no fallback, got %d", alt)
	}
}

func TestFallbackQueuePrefersAccuracyAndSkipsQuarantined(t *testing.T) {
	reg, _ := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	e := &Engine{Reg: reg}
	fx := e.newFaultState()
	ctx := &sched.Context{Reg: reg, Quarantined: fx.quarantined}
	h := &hlop.HLOP{Op: vop.OpSobel}

	// TPU fails: the GPU (more accurate accelerator) is the fallback.
	gpuIdx, tpuIdx := reg.Index("gpu"), reg.Index("tpu")
	if alt := e.fallbackQueue(ctx, tpuIdx, h); alt != gpuIdx {
		t.Fatalf("fallback = %d want gpu (%d)", alt, gpuIdx)
	}

	// Quarantine the GPU: the healthy-accelerator tier holds only the failing
	// TPU itself, so there is no fallback yet — the CPU is not drafted while
	// another accelerator is merely failing, only once it quarantines too.
	for i := 0; i < fx.rz.BreakerThreshold; i++ {
		fx.brs[gpuIdx].onFailure(fx.rz)
	}
	if alt := e.fallbackQueue(ctx, tpuIdx, h); alt != -1 {
		t.Fatalf("fallback with gpu quarantined = %d want -1 (no healthy accelerator)", alt)
	}

	// Quarantine the TPU too: with every accelerator out, the tier drops to
	// any healthy device and the CPU absorbs the work.
	for i := 0; i < fx.rz.BreakerThreshold; i++ {
		fx.brs[tpuIdx].onFailure(fx.rz)
	}
	if alt := e.fallbackQueue(ctx, tpuIdx, h); alt != reg.Index("cpu") {
		t.Fatalf("fallback with both accelerators quarantined = %d want cpu (%d)", alt, reg.Index("cpu"))
	}
}

func TestFallbackQueueUnsupportedOp(t *testing.T) {
	// No other device supports the op: no fallback. The image DSP's home
	// domain has no GEMM, so a GPU failure has nowhere to send it.
	reg, _ := device.NewRegistry(gpu.New(gpu.Config{}), dsp.New(dsp.Config{}))
	e := &Engine{Reg: reg}
	ctx := &sched.Context{Reg: reg}
	h := &hlop.HLOP{Op: vop.OpGEMM}
	if alt := e.fallbackQueue(ctx, reg.Index("gpu"), h); alt != -1 {
		t.Fatalf("fallback for unsupported op = %d want -1", alt)
	}
}

// TestRetriesExhaustedSurfaces drives one HLOP through MaxRetries failures
// and checks the surfaced error wraps the device's.
func TestRetriesExhaustedSurfaces(t *testing.T) {
	flaky := &flakyDevice{Device: gpu.New(gpu.Config{})}
	flaky.failures.Store(1 << 20)
	reg, _ := device.NewRegistry(flaky)
	e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "gpu"},
		Spec: hlop.Spec{TargetPartitions: 2, MinTile: 8}}
	_, err := e.Run(sobelVOP(t, 32, 31))
	if err == nil {
		t.Fatal("exhausted retries must surface")
	}
	if !errors.Is(err, errInjected) {
		t.Fatalf("surfaced error should wrap the device error, got %v", err)
	}
}

// TestRetryBoundConfigurable checks Resilience.MaxRetries is honored: with a
// huge bound and a device that recovers late, the run succeeds.
func TestRetryBoundConfigurable(t *testing.T) {
	flaky := &flakyDevice{Device: gpu.New(gpu.Config{})}
	flaky.failures.Store(6) // more than the default bound of 4
	reg, _ := device.NewRegistry(flaky)
	e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "gpu"},
		Spec:       hlop.Spec{TargetPartitions: 2, MinTile: 8},
		Resilience: Resilience{MaxRetries: 32}}
	rep, err := e.Run(sobelVOP(t, 32, 32))
	if err != nil {
		t.Fatalf("raised retry bound should let the run recover: %v", err)
	}
	if rep.Degraded == nil || rep.Degraded.FailedDispatches != 6 {
		t.Fatalf("Degraded = %+v, want 6 failed dispatches", rep.Degraded)
	}
	if len(rep.Degraded.Quarantines) == 0 {
		t.Fatal("six consecutive failures must have opened the breaker")
	}
	if rep.Degraded.ProbeSuccesses == 0 {
		t.Fatal("recovery after quarantine must count a probe success")
	}
	if quar := e.QuarantinedDevices(); len(quar) != 0 {
		t.Fatalf("device should be re-admitted, still quarantined: %v", quar)
	}
}

// TestFailedDispatchAccountingSymmetry: both engines charge the same failed
// dispatches to busy time and the Degraded report.
func TestFailedDispatchAccountingSymmetry(t *testing.T) {
	for _, concurrent := range []bool{false, true} {
		// The flaky TPU is the sole accelerator, so exactly its first two
		// dispatches fail in both engines regardless of interleaving.
		flaky := &flakyDevice{Device: tpu.New(tpu.Config{})}
		flaky.failures.Store(2)
		reg, _ := device.NewRegistry(cpu.New(1), flaky)
		e := &Engine{Reg: reg, Policy: sched.WorkStealing{}, Concurrent: concurrent,
			Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}}
		rep, err := e.Run(sobelVOP(t, 64, 33))
		if err != nil {
			t.Fatalf("concurrent=%v: %v", concurrent, err)
		}
		d := rep.Degraded
		if d == nil || d.FailedDispatches != 2 {
			t.Fatalf("concurrent=%v: Degraded = %+v, want 2 failed dispatches", concurrent, d)
		}
		if d.FailedDispatchSeconds <= 0 || d.BackoffSeconds <= 0 {
			t.Fatalf("concurrent=%v: failed dispatch time not charged: %+v", concurrent, d)
		}
		if d.FailedDispatchSeconds <= d.BackoffSeconds {
			t.Fatalf("concurrent=%v: charge must include dispatch overhead beyond backoff", concurrent)
		}
	}
}

// TestDegradedNilWhenHealthy: a clean run must not allocate a report.
func TestDegradedNilWhenHealthy(t *testing.T) {
	e := &Engine{Reg: stdRegistry(t), Policy: sched.WorkStealing{},
		Spec: hlop.Spec{TargetPartitions: 4, MinTile: 8}}
	rep, err := e.Run(sobelVOP(t, 64, 34))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Degraded != nil {
		t.Fatalf("healthy run has Degraded = %+v", rep.Degraded)
	}
}
