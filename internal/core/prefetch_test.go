package core

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// prefetchEngine builds a fresh engine over reg with the given prefetch
// depth; every call gets its own VOP over the shared (never mutated) inputs.
func runPrefetch(t testing.TB, reg *device.Registry, pol sched.Policy,
	op vop.Opcode, inputs []*tensor.Matrix, attrs map[string]float64,
	parts, depth int, concurrent bool) *Report {
	t.Helper()
	v, err := vop.New(op, inputs...)
	if err != nil {
		t.Fatalf("vop.New(%s): %v", op, err)
	}
	for k, x := range attrs {
		v.SetAttr(k, x)
	}
	e := &Engine{Reg: reg, Policy: pol,
		Spec:         hlop.Spec{TargetPartitions: parts, MinTile: 8, MinVectorElems: 32},
		DoubleBuffer: true, Prefetch: depth, Concurrent: concurrent, Seed: 7}
	rep, err := e.Run(v)
	if err != nil {
		t.Fatalf("run %s (prefetch=%d concurrent=%v): %v", op, depth, concurrent, err)
	}
	return rep
}

// Property (ISSUE 8 acceptance): asynchronous input prefetch only changes
// *when* operands are staged, never *how*. For random opcodes, partition
// counts, device mixes, engines, and prefetch depths 1..4:
//
//   - outputs are bit-identical to the prefetch-off run,
//   - exposed communication time never exceeds raw transfer time, and
//   - the deterministic engine's virtual timeline is untouched (prefetch is
//     a wall-clock optimization; makespans match exactly).
func TestPropertyPrefetchBitIdentity(t *testing.T) {
	ops := []vop.Opcode{
		vop.OpSqrt, vop.OpTanh, vop.OpRelu, vop.OpAdd, vop.OpMultiply,
		vop.OpSobel, vop.OpLaplacian, vop.OpMeanFilter, vop.OpSRAD,
		vop.OpDCT8x8, vop.OpFDWT97, vop.OpFFT, vop.OpParabolicPDE,
		vop.OpReduceSum, vop.OpReduceMax, vop.OpReduceAverage,
		vop.OpGEMM, vop.OpStencil, vop.OpConv,
	}
	tpuOnly, err := device.NewRegistry(cpu.New(1), tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	mixed, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}

	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := ops[r.Intn(len(ops))]
		inputs, attrs := randVOP(t, r, op)

		parts := 1 + r.Intn(12)
		depth := 1 + r.Intn(4)
		concurrent := r.Intn(2) == 0
		reg, pol := tpuOnly, sched.Policy(sched.SingleDevice{Device: "tpu"})
		if !concurrent && r.Intn(2) == 0 {
			// The goroutine engine's steal order is racy, so a multi-device
			// mix places HLOPs differently run to run — pinning the device
			// is what makes its outputs comparable at all. The deterministic
			// engine exercises the full mix.
			reg, pol = mixed, sched.WorkStealing{}
		}

		base := runPrefetch(t, reg, pol, op, inputs, attrs, parts, 0, concurrent)
		pref := runPrefetch(t, reg, pol, op, inputs, attrs, parts, depth, concurrent)
		if !pref.Output.Equal(base.Output) {
			t.Logf("op=%s seed=%d parts=%d depth=%d concurrent=%v: prefetch changed the output",
				op, seed, parts, depth, concurrent)
			return false
		}
		for _, rep := range []*Report{base, pref} {
			if rep.Comm.ExposedTime > rep.Comm.TransferTime+1e-12 {
				t.Logf("op=%s seed=%d: exposed %g > transfer %g",
					op, seed, rep.Comm.ExposedTime, rep.Comm.TransferTime)
				return false
			}
		}
		if !concurrent && pref.Makespan != base.Makespan {
			t.Logf("op=%s seed=%d depth=%d: prefetch moved the virtual makespan %g -> %g",
				op, seed, depth, base.Makespan, pref.Makespan)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Fatal(err)
	}
}

// prefetchFixture builds a prefetcher over a CPU+TPU registry and a set of
// small GEMM HLOPs that share one right-hand operand (the band partitioner's
// layout).
func prefetchFixture(t *testing.T, depth, n int) (*Engine, *prefetcher, *tpu.Device, []*hlop.HLOP) {
	t.Helper()
	tp := tpu.New(tpu.Config{})
	reg, err := device.NewRegistry(cpu.New(1), tp)
	if err != nil {
		t.Fatal(err)
	}
	e := &Engine{Reg: reg, Prefetch: depth}
	r := rand.New(rand.NewSource(3))
	b := tensor.NewMatrix(6, 6)
	for i := range b.Data {
		b.Data[i] = r.NormFloat64()
	}
	hs := make([]*hlop.HLOP, n)
	for i := range hs {
		a := tensor.NewMatrix(4, 6)
		for j := range a.Data {
			a.Data[j] = r.NormFloat64()
		}
		hs[i] = &hlop.HLOP{ID: i, Op: vop.OpGEMM, Inputs: []*tensor.Matrix{a, b}, AssignedQueue: 1}
	}
	return e, e.newPrefetcher(hs), tp, hs
}

func TestPrefetcherHitAndDepthBound(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	base := telemetry.Default.Snapshot()
	_, pf, tp, hs := prefetchFixture(t, 2, 4)
	for _, h := range hs {
		pf.issue(1, tp, h)
	}
	pf.mu.Lock()
	inflight := pf.inflight[1]
	pf.mu.Unlock()
	if inflight != 2 {
		t.Fatalf("inflight = %d, want the depth bound 2", inflight)
	}
	st := pf.take(1, hs[0])
	if st == nil {
		t.Fatal("issued prestage not taken as a hit")
	}
	if len(st.Inputs) != 2 || st.Inputs[0] == hs[0].Inputs[0] {
		t.Fatalf("staged set not materialized: %+v", st)
	}
	// The shared right-hand operand is device-resident: the same staged
	// buffer serves every HLOP of the run.
	if !st.Keep[1] {
		t.Fatal("shared operand not marked resident")
	}
	st2 := pf.stageSet(tp, 1, hs[2])
	if st2.Inputs[1] != st.Inputs[1] {
		t.Fatal("shared operand staged twice instead of reused")
	}
	if pf.take(1, hs[3]) != nil {
		t.Fatal("beyond-depth HLOP should not have been staged")
	}
	pf.drain()
	d := telemetry.Default.Snapshot().Delta(base)
	if d["shmt_prefetch_issued_total"] != 2 || d["shmt_prefetch_hits_total"] != 1 {
		t.Fatalf("prefetch counters: %v", d)
	}
	if g := d["shmt_prefetch_buffer_bytes"]; g != 0 {
		t.Fatalf("buffer gauge leaked %g bytes after drain", g)
	}
}

func TestPrefetcherStealCancelsStaging(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	base := telemetry.Default.Snapshot()
	_, pf, tp, hs := prefetchFixture(t, 2, 2)
	pf.issue(1, tp, hs[0])
	// The HLOP was stolen by queue 0's device: the set staged for the TPU
	// must not be consumed there.
	if st := pf.take(0, hs[0]); st != nil {
		t.Fatal("steal consumed a set staged for the victim's device")
	}
	d := telemetry.Default.Snapshot().Delta(base)
	if d["shmt_prefetch_cancelled_total"] != 1 || d["shmt_prefetch_hits_total"] != 0 {
		t.Fatalf("steal-cancel counters: %v", d)
	}
	pf.issue(1, tp, hs[1])
	pf.cancel(hs[1]) // breaker-open reroute path
	if pf.take(1, hs[1]) != nil {
		t.Fatal("cancelled prestage still takeable")
	}
	pf.drain()
	d = telemetry.Default.Snapshot().Delta(base)
	if d["shmt_prefetch_cancelled_total"] != 2 {
		t.Fatalf("cancel counters: %v", d)
	}
	if g := d["shmt_prefetch_buffer_bytes"]; g != 0 {
		t.Fatalf("buffer gauge leaked %g bytes", g)
	}
}

func TestPrefetcherDisabledIsNilSafe(t *testing.T) {
	e := &Engine{Prefetch: 0}
	pf := e.newPrefetcher(nil)
	if pf != nil {
		t.Fatal("Prefetch=0 should disable the prefetcher")
	}
	pf.issue(0, nil, nil)
	if pf.take(0, nil) != nil || pf.peekDepth() != 0 || pf.wantsStaged(nil) {
		t.Fatal("nil prefetcher not inert")
	}
	pf.cancel(nil)
	pf.drain()
}
