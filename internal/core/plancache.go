package core

import (
	"container/list"
	"sort"
	"strconv"
	"sync"

	"shmt/internal/hlop"
	"shmt/internal/sched"
	"shmt/internal/telemetry"
	"shmt/internal/vop"
)

// This file is the memoized execution-plan layer: production traffic is
// shape-repetitive, yet a fresh Execute re-runs partitioning, criticality
// sampling and device assignment before a single kernel fires. The plan
// cache captures the outcome of that planning phase — partition geometry
// plus the policy's per-HLOP decisions (hlop.Planned) — keyed by everything
// the outcome is a function of except the input *data*:
//
//	opcode | input shapes | scalar attrs | partitioner Spec |
//	policy name + seed | VOP critical-fraction hint
//
// and guarded by the engine's device-health epoch. A replayed plan
// re-extracts data blocks from the new inputs (so zero-copy views alias the
// right tensors) but skips geometry computation, sampling reads, and the
// assignment pass entirely.
//
// Data-dependent policies (QAWS, IRA, Oracle) sample input values for
// criticality, so a replayed plan reuses the criticality of the run that
// populated the cache. That is the deliberate steady-state-serving
// approximation: same-shaped requests in a stream overwhelmingly share a
// criticality profile, and anything that changes the *eligible device set*
// (the part correctness depends on) invalidates through the health epoch.
// Callers that need per-input fidelity — the paper-reproduction experiment
// harness — run with the cache disabled (Engine.PlanCacheEntries = 0, the
// core default).
//
// Epoch semantics: Engine.planEpoch advances whenever a circuit breaker
// opens or a quarantined device is re-admitted (degrade.go), and when the
// breaker set is rebuilt for a new registry. A plan is stored with the epoch
// read before planning began, so a fault during the very run that populated
// the cache already makes the entry stale; lookup drops entries from other
// epochs and counts an invalidation.

// planCache is an LRU-bounded map from plan key to captured plan. Safe for
// concurrent use; the engines consult it once per VOP, outside the hot
// dispatch loops.
type planCache struct {
	mu      sync.Mutex
	max     int
	entries map[string]*list.Element
	order   *list.List // front = most recently used

	hits, misses, evictions, invalidations uint64
}

type planEntry struct {
	key   string
	epoch uint64
	parts []hlop.Planned
}

func newPlanCache(max int) *planCache {
	return &planCache{max: max, entries: map[string]*list.Element{}, order: list.New()}
}

// lookup returns the plan cached under key, provided it was captured in the
// current device-health epoch. Entries from older epochs are dropped and
// counted as invalidations (plus the miss the caller experiences).
func (c *planCache) lookup(key string, epoch uint64) ([]hlop.Planned, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.entries[key]
	if !ok {
		c.misses++
		telemetry.PlanCacheMisses.Inc()
		return nil, false
	}
	en := el.Value.(*planEntry)
	if en.epoch != epoch {
		c.order.Remove(el)
		delete(c.entries, key)
		c.invalidations++
		c.misses++
		telemetry.PlanCacheInvalidations.Inc()
		telemetry.PlanCacheMisses.Inc()
		return nil, false
	}
	c.order.MoveToFront(el)
	c.hits++
	telemetry.PlanCacheHits.Inc()
	return en.parts, true
}

// store caches a freshly captured plan under key, evicting the
// least-recently-used plans beyond the size cap.
func (c *planCache) store(key string, epoch uint64, parts []hlop.Planned) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.entries[key]; ok {
		en := el.Value.(*planEntry)
		en.epoch, en.parts = epoch, parts
		c.order.MoveToFront(el)
		return
	}
	c.entries[key] = c.order.PushFront(&planEntry{key: key, epoch: epoch, parts: parts})
	for len(c.entries) > c.max {
		back := c.order.Back()
		c.order.Remove(back)
		delete(c.entries, back.Value.(*planEntry).key)
		c.evictions++
		telemetry.PlanCacheEvictions.Inc()
	}
}

// PlanCacheStats is a point-in-time snapshot of the engine's plan cache.
type PlanCacheStats struct {
	// Hits counts VOP plannings served by replaying a cached plan.
	Hits uint64
	// Misses counts plannings that ran partition+assign from scratch
	// (invalidations are also misses).
	Misses uint64
	// Evictions counts plans dropped by the LRU size cap.
	Evictions uint64
	// Invalidations counts plans dropped because the device-health epoch
	// moved between capture and lookup.
	Invalidations uint64
	// Entries is the current cache population.
	Entries int
}

// PlanCacheStats returns the engine's plan-cache counters; zero when the
// cache is disabled.
func (e *Engine) PlanCacheStats() PlanCacheStats {
	e.pcMu.Lock()
	pc := e.pc
	e.pcMu.Unlock()
	if pc == nil {
		return PlanCacheStats{}
	}
	pc.mu.Lock()
	defer pc.mu.Unlock()
	return PlanCacheStats{
		Hits:          pc.hits,
		Misses:        pc.misses,
		Evictions:     pc.evictions,
		Invalidations: pc.invalidations,
		Entries:       len(pc.entries),
	}
}

// planCache lazily builds the engine's cache; nil when disabled
// (PlanCacheEntries ≤ 0, the core-level default).
func (e *Engine) planCache() *planCache {
	if e.PlanCacheEntries <= 0 {
		return nil
	}
	e.pcMu.Lock()
	defer e.pcMu.Unlock()
	if e.pc == nil {
		e.pc = newPlanCache(e.PlanCacheEntries)
	}
	return e.pc
}

// planKey fingerprints everything a captured plan is a function of, except
// input data and device health (the epoch guards the latter). The policy
// contributes its Name — which encodes type and variant (assignment ×
// sampling for QAWS) — and the engine seed that drives its randomized
// sampling; an Engine's policy parameters are fixed for its lifetime, like
// its registry.
// The key is rebuilt on every cache consult, so it avoids fmt and builds into
// one stack-seeded buffer with strconv appends.
func (e *Engine) planKey(v *vop.VOP, pol sched.Policy) string {
	var buf [128]byte
	b := strconv.AppendInt(buf[:0], int64(v.Op), 10)
	b = append(b, '|')
	b = append(b, pol.Name()...)
	b = append(b, '|')
	b = strconv.AppendInt(b, e.Seed, 10)
	for _, in := range v.Inputs {
		b = append(b, '|')
		b = strconv.AppendInt(b, int64(in.Rows), 10)
		b = append(b, 'x')
		b = strconv.AppendInt(b, int64(in.Cols), 10)
	}
	b = append(b, '|', 's')
	b = strconv.AppendInt(b, int64(e.Spec.TargetPartitions), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.Spec.MinVectorElems), 10)
	b = append(b, ',')
	b = strconv.AppendInt(b, int64(e.Spec.MinTile), 10)
	b = append(b, ',')
	b = strconv.AppendBool(b, e.Spec.ForceCopy)
	b = append(b, '|', 'k')
	b = strconv.AppendFloat(b, v.CriticalFraction, 'g', -1, 64)
	b = append(b, '|', 'p')
	b = strconv.AppendFloat(b, v.DeadlinePressure, 'g', -1, 64)
	if len(v.Attrs) > 0 {
		names := make([]string, 0, len(v.Attrs))
		for name := range v.Attrs {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			b = append(b, '|', 'a')
			b = append(b, name...)
			b = append(b, '=')
			b = strconv.AppendFloat(b, v.Attrs[name], 'g', -1, 64)
		}
	}
	return string(b)
}

// planVOP produces the HLOPs and scheduling overhead for one VOP: it replays
// a cached plan captured in the current device-health epoch when one exists,
// and plans from scratch (then caches the outcome) otherwise. A replay
// charges zero scheduling overhead — that is the point. The partition phase
// span is observed here (rt may be nil; RunBatch lumps its planning into one
// schedule phase and passes nil); the caller observes the schedule phase.
func (e *Engine) planVOP(ctx *sched.Context, pol sched.Policy, v *vop.VOP,
	rt *runTel, phaseT float64) ([]*hlop.HLOP, float64, float64, error) {

	pc := e.planCache()
	var key string
	var epoch uint64
	if pc != nil {
		epoch = e.planEpoch.Load()
		key = e.planKey(v, pol)
		if parts, ok := pc.lookup(key, epoch); ok {
			hs, err := hlop.Replay(v, e.Spec, parts)
			if err == nil {
				if rt != nil {
					phaseT = rt.phase(telemetry.PhasePartition, phaseT)
				}
				return hs, 0, phaseT, nil
			}
			// The key pins opcode, shapes and Spec, so a replay cannot
			// normally fail; if it somehow does, fall through and re-plan.
		}
	}
	hs, err := hlop.Partition(v, e.Spec)
	if err != nil {
		return nil, 0, phaseT, err
	}
	if rt != nil {
		phaseT = rt.phase(telemetry.PhasePartition, phaseT)
	}
	overhead, err := pol.Assign(ctx, hs)
	if err != nil {
		return nil, 0, phaseT, err
	}
	if pc != nil {
		pc.store(key, epoch, hlop.Capture(hs))
	}
	return hs, overhead, phaseT, nil
}
