package core

import (
	"math/rand"
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sched"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// BenchmarkOverlap measures the wall-clock cost of the Edge TPU's
// private-memory staging path with the asynchronous input prefetcher off
// ("staged": every operand materialized and quantized at dispatch) versus on
// ("prefetched": HLOP k+1's operands prestaged on the worker pool while HLOP
// k executes, with shared operands held device-resident). The banded GEMM
// partitioning gives every HLOP the same right-hand matrix, so the
// prefetched path quantizes it once per run instead of once per HLOP —
// that resident reuse plus the overlapped staging is the wall-clock win;
// outputs are bit-identical either way (TestPropertyPrefetchBitIdentity).
func BenchmarkOverlap(b *testing.B) {
	const side = 512
	r := rand.New(rand.NewSource(42))
	a := tensor.NewMatrix(side, side)
	bm := tensor.NewMatrix(side, side)
	for i := range a.Data {
		a.Data[i] = r.NormFloat64()
	}
	for i := range bm.Data {
		bm.Data[i] = r.NormFloat64()
	}

	for _, bc := range []struct {
		name  string
		depth int
	}{
		{"staged", 0},
		{"prefetched", 2},
	} {
		b.Run(bc.name, func(b *testing.B) {
			reg, err := device.NewRegistry(cpu.New(1), tpu.New(tpu.Config{}))
			if err != nil {
				b.Fatal(err)
			}
			e := &Engine{Reg: reg, Policy: sched.SingleDevice{Device: "tpu"},
				Spec:         hlop.Spec{TargetPartitions: 16, MinTile: 8},
				DoubleBuffer: true, Prefetch: bc.depth}
			b.SetBytes(2 * side * side * 8)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				v, err := vop.New(vop.OpGEMM, a, bm)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := e.Run(v); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
