// Package chaos is the runtime's deterministic fault-injection layer: it
// wraps any device.Device with seeded, reproducible failure modes so the
// engines' graceful-degradation machinery (circuit breakers, exponential
// backoff, queue redistribution — see internal/core) can be exercised and
// tested against realistic device behaviour.
//
// Four failure modes compose freely:
//
//   - transient execution errors, injected with a configurable probability
//     (plus a deterministic "outage": the first FailFirstOps dispatches fail);
//   - latency degradation: a constant multiplier on modelled dispatch and
//     execution time, plus probabilistic per-op latency spikes surfaced to the
//     engine as injected virtual delay;
//   - permanent death after DieAfterOps dispatches — every later call fails
//     with ErrDead until the process exits (the breaker quarantines the
//     device and the engines redistribute its queue);
//   - output corruption: a deterministic perturbation of a result stripe, for
//     exercising the quality path without any device erroring.
//
// Determinism: every decision is a pure function of (Seed, fault mode, op
// index). Op indices are assigned atomically per wrapped device, so the fault
// schedule — which dispatch indices fail, spike, or corrupt — is identical
// for a given seed regardless of which engine runs or how goroutines
// interleave. Under the deterministic engine the whole run is bit-for-bit
// reproducible.
package chaos

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"shmt/internal/device"
	"shmt/internal/interconnect"
	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// ErrTransient is the injected recoverable execution error; the engines
// retry/reroute it like any other device failure.
var ErrTransient = errors.New("chaos: injected transient failure")

// ErrDead is returned by every dispatch after the device died permanently
// (DieAfterOps). Retries cannot succeed; only quarantine and redistribution
// make progress.
var ErrDead = errors.New("chaos: device is dead")

// Config is one device's fault plan. The zero value injects nothing.
type Config struct {
	// Seed drives every injection decision; the same seed reproduces the
	// same fault schedule (as a function of dispatch index).
	Seed int64
	// TransientRate is the per-dispatch probability of a transient error.
	TransientRate float64
	// FailFirstOps fails the first N dispatches deterministically — a
	// bounded outage the breaker should absorb and recover from.
	FailFirstOps int
	// DieAfterOps kills the device permanently after N dispatches (0 =
	// never): dispatch N and every later one return ErrDead.
	DieAfterOps int
	// LatencyMultiplier ≥ 1 scales the device's modelled dispatch and
	// execution time (a persistently degraded device). 0 or 1 = off.
	LatencyMultiplier float64
	// SpikeRate is the per-dispatch probability of a latency spike.
	SpikeRate float64
	// SpikeMultiplier sizes a spike: the op's modelled latency is multiplied
	// by this factor (default 10 when a spike fires with no multiplier set).
	SpikeMultiplier float64
	// CorruptRate is the per-dispatch probability of output corruption.
	CorruptRate float64
	// CorruptMagnitude is the relative perturbation applied to a corrupted
	// result stripe (default 0.05).
	CorruptMagnitude float64
}

// enabled reports whether the config injects anything at all.
func (c Config) enabled() bool {
	return c.TransientRate > 0 || c.FailFirstOps > 0 || c.DieAfterOps > 0 ||
		c.LatencyMultiplier > 1 || c.SpikeRate > 0 || c.CorruptRate > 0
}

// Device wraps an inner device.Device with the fault plan. It satisfies
// device.Device; the engines see a normal device whose name, supported ops
// and accuracy class are unchanged.
type Device struct {
	inner device.Device
	cfg   Config

	ops  atomic.Int64 // dispatch index counter
	dead atomic.Bool

	mu      sync.Mutex
	pending float64 // injected virtual delay awaiting collection
}

// Wrap returns dev wrapped with the fault plan cfg. A config that injects
// nothing returns dev unchanged.
func Wrap(dev device.Device, cfg Config) device.Device {
	if !cfg.enabled() {
		return dev
	}
	if cfg.SpikeRate > 0 && cfg.SpikeMultiplier <= 1 {
		cfg.SpikeMultiplier = 10
	}
	if cfg.CorruptRate > 0 && cfg.CorruptMagnitude <= 0 {
		cfg.CorruptMagnitude = 0.05
	}
	return &Device{inner: dev, cfg: cfg}
}

// Unwrap returns the inner device (for tests and introspection).
func (c *Device) Unwrap() device.Device { return c.inner }

// Dead reports whether the device has died permanently.
func (c *Device) Dead() bool { return c.dead.Load() }

// Ops returns how many dispatches the wrapper has seen.
func (c *Device) Ops() int64 { return c.ops.Load() }

// Delegated identity and cost model.

func (c *Device) Name() string                { return c.inner.Name() }
func (c *Device) Kind() device.Kind           { return c.inner.Kind() }
func (c *Device) AccuracyRank() int           { return c.inner.AccuracyRank() }
func (c *Device) Supports(op vop.Opcode) bool { return c.inner.Supports(op) }
func (c *Device) Link() interconnect.Link     { return c.inner.Link() }
func (c *Device) ElemBytes() int              { return c.inner.ElemBytes() }
func (c *Device) MemoryBytes() int64          { return c.inner.MemoryBytes() }

// ExecTime applies the constant latency degradation to the cost model. The
// scaled value is a pure function of (op, n), so ExecTimeCache memoization
// stays valid.
func (c *Device) ExecTime(op vop.Opcode, n int) float64 {
	t := c.inner.ExecTime(op, n)
	if c.cfg.LatencyMultiplier > 1 {
		t *= c.cfg.LatencyMultiplier
	}
	return t
}

// DispatchOverhead applies the constant latency degradation to the fixed
// per-HLOP invocation cost.
func (c *Device) DispatchOverhead() float64 {
	t := c.inner.DispatchOverhead()
	if c.cfg.LatencyMultiplier > 1 {
		t *= c.cfg.LatencyMultiplier
	}
	return t
}

// Execute routes through ExecuteInto so fault decisions see every dispatch.
func (c *Device) Execute(op vop.Opcode, inputs []*tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	return c.ExecuteInto(op, inputs, nil, attrs)
}

// ExecuteInto draws this dispatch's fault decisions from the seeded schedule
// and then delegates. Order of evaluation: death, deterministic outage,
// transient error, latency spike, execution, output corruption.
func (c *Device) ExecuteInto(op vop.Opcode, inputs []*tensor.Matrix, dst *tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	k := c.ops.Add(1) - 1
	if c.cfg.DieAfterOps > 0 && k >= int64(c.cfg.DieAfterOps) {
		c.dead.Store(true)
		telemetry.ChaosInjected.With("dead").Inc()
		return nil, fmt.Errorf("%s op %d: %w", c.Name(), k, ErrDead)
	}
	if k < int64(c.cfg.FailFirstOps) ||
		(c.cfg.TransientRate > 0 && roll(c.cfg.Seed, streamTransient, k) < c.cfg.TransientRate) {
		telemetry.ChaosInjected.With("transient").Inc()
		return nil, fmt.Errorf("%s op %d: %w", c.Name(), k, ErrTransient)
	}
	if c.cfg.SpikeRate > 0 && roll(c.cfg.Seed, streamSpike, k) < c.cfg.SpikeRate {
		n := 0
		if len(inputs) > 0 {
			n = inputs[0].Rows * inputs[0].Cols
		}
		extra := (c.cfg.SpikeMultiplier - 1) * (c.inner.ExecTime(op, n) + c.inner.DispatchOverhead())
		c.mu.Lock()
		c.pending += extra
		c.mu.Unlock()
		telemetry.ChaosInjected.With("spike").Inc()
	}
	res, err := c.inner.ExecuteInto(op, inputs, dst, attrs)
	if err != nil {
		return res, err
	}
	if c.cfg.CorruptRate > 0 && roll(c.cfg.Seed, streamCorrupt, k) < c.cfg.CorruptRate {
		corrupt(res, c.cfg.Seed, k, c.cfg.CorruptMagnitude)
		telemetry.ChaosInjected.With("corrupt").Inc()
	}
	return res, nil
}

// TakeInjectedDelay drains the accumulated spike delay in virtual seconds.
// The engines call it (through an interface assertion, so core never imports
// chaos) after each successful dispatch and charge the delay to the device's
// clock.
func (c *Device) TakeInjectedDelay() float64 {
	c.mu.Lock()
	d := c.pending
	c.pending = 0
	c.mu.Unlock()
	return d
}

// corrupt perturbs a deterministic stripe of the result: a contiguous run of
// rows starting at a seeded offset is scaled by (1 + magnitude). It writes
// through the matrix's stride, so views into a shared output tensor are
// corrupted only within their own region.
func corrupt(m *tensor.Matrix, seed int64, k int64, magnitude float64) {
	if m == nil || m.Rows == 0 || m.Cols == 0 {
		return
	}
	rows := m.Rows/8 + 1
	start := int(roll(seed, streamCorruptAt, k) * float64(m.Rows))
	if start+rows > m.Rows {
		start = m.Rows - rows
	}
	stride := m.RowStride()
	for r := start; r < start+rows; r++ {
		row := m.Data[r*stride : r*stride+m.Cols]
		for i := range row {
			row[i] *= 1 + magnitude
		}
	}
}

// Decision streams keep the fault modes' schedules independent: transient
// errors, spikes and corruption each draw from their own sequence.
const (
	streamTransient uint64 = 0xA076_1D64_78BD_642F
	streamSpike     uint64 = 0xE703_7ED1_A0B4_28DB
	streamCorrupt   uint64 = 0x8EBC_6AF0_9C88_C6E3
	streamCorruptAt uint64 = 0x5899_65CC_7537_4CC3
)

// roll returns a uniform [0,1) draw that is a pure function of (seed,
// stream, op index) — splitmix64 finalization over the mixed key.
func roll(seed int64, stream uint64, k int64) float64 {
	x := uint64(seed)*0x9E37_79B9_7F4A_7C15 ^ stream ^ uint64(k)*0xBF58_476D_1CE4_E5B9
	x ^= x >> 30
	x *= 0xBF58_476D_1CE4_E5B9
	x ^= x >> 27
	x *= 0x94D0_49BB_1331_11EB
	x ^= x >> 31
	return float64(x>>11) / float64(1<<53)
}
