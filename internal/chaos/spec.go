package chaos

import (
	"fmt"
	"strconv"
	"strings"
)

// ParseSpec parses the CLI fault-plan syntax into per-device configs:
//
//	device:key=value[,key=value...][;device:...]
//
// e.g. "tpu:die=5;gpu:transient=0.2,latmul=4". Keys:
//
//	transient=P   transient error probability per dispatch
//	failfirst=N   fail the first N dispatches deterministically
//	die=N         permanent death after N dispatches
//	latmul=X      constant latency multiplier (≥ 1)
//	spike=P       latency-spike probability per dispatch
//	spikemul=X    spike size multiplier (default 10)
//	corrupt=P     output-corruption probability per dispatch
//	corruptmag=X  relative corruption magnitude (default 0.05)
//
// seed is applied to every parsed config so one flag reproduces one schedule.
func ParseSpec(spec string, seed int64) (map[string]Config, error) {
	out := map[string]Config{}
	for _, devSpec := range strings.Split(spec, ";") {
		devSpec = strings.TrimSpace(devSpec)
		if devSpec == "" {
			continue
		}
		name, plan, ok := strings.Cut(devSpec, ":")
		name = strings.TrimSpace(name)
		if !ok || name == "" {
			return nil, fmt.Errorf("chaos: spec %q needs device:key=value[,...]", devSpec)
		}
		if _, dup := out[name]; dup {
			return nil, fmt.Errorf("chaos: device %q specified twice", name)
		}
		cfg := Config{Seed: seed}
		for _, kv := range strings.Split(plan, ",") {
			kv = strings.TrimSpace(kv)
			if kv == "" {
				continue
			}
			key, val, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("chaos: %s: %q is not key=value", name, kv)
			}
			x, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
			if err != nil || x < 0 {
				return nil, fmt.Errorf("chaos: %s: bad value %q for %s", name, val, key)
			}
			switch strings.TrimSpace(key) {
			case "transient":
				cfg.TransientRate = x
			case "failfirst":
				cfg.FailFirstOps = int(x)
			case "die":
				cfg.DieAfterOps = int(x)
			case "latmul":
				cfg.LatencyMultiplier = x
			case "spike":
				cfg.SpikeRate = x
			case "spikemul":
				cfg.SpikeMultiplier = x
			case "corrupt":
				cfg.CorruptRate = x
			case "corruptmag":
				cfg.CorruptMagnitude = x
			default:
				return nil, fmt.Errorf("chaos: %s: unknown key %q", name, key)
			}
		}
		if !cfg.enabled() {
			return nil, fmt.Errorf("chaos: %s: plan injects nothing", name)
		}
		out[name] = cfg
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty spec")
	}
	return out, nil
}
