package chaos

import (
	"errors"
	"testing"

	"shmt/internal/device/cpu"
	"shmt/internal/tensor"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

func mat(t *testing.T, side int, seed int64) *tensor.Matrix {
	t.Helper()
	return workload.Uniform(side, side, 0, 1, seed)
}

func TestWrapDisabledReturnsInner(t *testing.T) {
	inner := cpu.New(1)
	if Wrap(inner, Config{Seed: 7}) != inner {
		t.Fatal("a config that injects nothing must not wrap")
	}
}

func TestDeterministicSchedule(t *testing.T) {
	// The same seed must reproduce the same per-op-index fault decisions
	// regardless of wrapper instance.
	run := func() []bool {
		d := Wrap(cpu.New(1), Config{Seed: 42, TransientRate: 0.3}).(*Device)
		outcomes := make([]bool, 64)
		in := []*tensor.Matrix{mat(t, 8, 1)}
		for i := range outcomes {
			_, err := d.Execute(vop.OpSobel, in, nil)
			outcomes[i] = err != nil
		}
		return outcomes
	}
	a, b := run(), run()
	var fails int
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("fault schedules diverge at op %d", i)
		}
		if a[i] {
			fails++
		}
	}
	if fails == 0 || fails == len(a) {
		t.Fatalf("transient rate 0.3 produced %d/%d failures", fails, len(a))
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	sched := func(seed int64) []bool {
		d := Wrap(cpu.New(1), Config{Seed: seed, TransientRate: 0.5}).(*Device)
		in := []*tensor.Matrix{mat(t, 8, 1)}
		out := make([]bool, 64)
		for i := range out {
			_, err := d.Execute(vop.OpSobel, in, nil)
			out[i] = err != nil
		}
		return out
	}
	a, b := sched(1), sched(2)
	same := true
	for i := range a {
		if a[i] != b[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

func TestFailFirstOpsOutage(t *testing.T) {
	d := Wrap(cpu.New(1), Config{Seed: 1, FailFirstOps: 3}).(*Device)
	in := []*tensor.Matrix{mat(t, 8, 2)}
	for i := 0; i < 3; i++ {
		if _, err := d.Execute(vop.OpSobel, in, nil); !errors.Is(err, ErrTransient) {
			t.Fatalf("op %d: want ErrTransient, got %v", i, err)
		}
	}
	if _, err := d.Execute(vop.OpSobel, in, nil); err != nil {
		t.Fatalf("op 3 after the outage: %v", err)
	}
}

func TestDieAfterOps(t *testing.T) {
	d := Wrap(cpu.New(1), Config{Seed: 1, DieAfterOps: 2}).(*Device)
	in := []*tensor.Matrix{mat(t, 8, 3)}
	for i := 0; i < 2; i++ {
		if _, err := d.Execute(vop.OpSobel, in, nil); err != nil {
			t.Fatalf("op %d before death: %v", i, err)
		}
	}
	for i := 0; i < 4; i++ {
		if _, err := d.Execute(vop.OpSobel, in, nil); !errors.Is(err, ErrDead) {
			t.Fatalf("op after death: want ErrDead, got %v", err)
		}
	}
	if !d.Dead() {
		t.Fatal("Dead() should report the permanent death")
	}
}

func TestLatencyMultiplierScalesCostModel(t *testing.T) {
	inner := cpu.New(1)
	d := Wrap(inner, Config{Seed: 1, LatencyMultiplier: 4})
	if got, want := d.ExecTime(vop.OpSobel, 1<<16), 4*inner.ExecTime(vop.OpSobel, 1<<16); got != want {
		t.Fatalf("ExecTime = %g want %g", got, want)
	}
	if got, want := d.DispatchOverhead(), 4*inner.DispatchOverhead(); got != want {
		t.Fatalf("DispatchOverhead = %g want %g", got, want)
	}
}

func TestSpikeAccumulatesInjectedDelay(t *testing.T) {
	d := Wrap(cpu.New(1), Config{Seed: 5, SpikeRate: 1, SpikeMultiplier: 3}).(*Device)
	in := []*tensor.Matrix{mat(t, 16, 4)}
	if _, err := d.Execute(vop.OpSobel, in, nil); err != nil {
		t.Fatal(err)
	}
	got := d.TakeInjectedDelay()
	want := 2 * (cpu.New(1).ExecTime(vop.OpSobel, 16*16) + cpu.New(1).DispatchOverhead())
	if got != want {
		t.Fatalf("injected delay = %g want %g", got, want)
	}
	if d.TakeInjectedDelay() != 0 {
		t.Fatal("TakeInjectedDelay must drain")
	}
}

func TestCorruptionPerturbsOutputDeterministically(t *testing.T) {
	in := []*tensor.Matrix{mat(t, 32, 5)}
	clean, err := cpu.New(1).Execute(vop.OpSobel, in, nil)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *tensor.Matrix {
		d := Wrap(cpu.New(1), Config{Seed: 9, CorruptRate: 1}).(*Device)
		out, err := d.Execute(vop.OpSobel, in, nil)
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := run(), run()
	if a.Equal(clean) {
		t.Fatal("corruption rate 1 left the output untouched")
	}
	if !a.Equal(b) {
		t.Fatal("corruption is not deterministic for a fixed seed")
	}
	// Only a stripe is perturbed; most of the output must survive intact.
	var diff int
	for i := range a.Data {
		if a.Data[i] != clean.Data[i] {
			diff++
		}
	}
	if diff == 0 || diff > len(a.Data)/2 {
		t.Fatalf("corruption touched %d/%d elements", diff, len(a.Data))
	}
}

func TestCorruptionThroughViewStaysInRegion(t *testing.T) {
	parent := tensor.NewMatrix(32, 32)
	view, err := parent.View(tensor.Region{Row: 8, Col: 0, Height: 8, Width: 32})
	if err != nil {
		t.Fatal(err)
	}
	// Fill the view's region with ones through the parent, then corrupt the
	// view; rows outside [8,16) must stay zero.
	for r := 8; r < 16; r++ {
		for c := 0; c < 32; c++ {
			parent.Data[r*32+c] = 1
		}
	}
	corrupt(view, 3, 0, 0.5)
	for r := 0; r < 32; r++ {
		for c := 0; c < 32; c++ {
			v := parent.Data[r*32+c]
			if r < 8 || r >= 16 {
				if v != 0 {
					t.Fatalf("corruption escaped the view at (%d,%d)", r, c)
				}
			} else if v != 1 && v != 1.5 {
				t.Fatalf("unexpected value %g inside the view at (%d,%d)", v, r, c)
			}
		}
	}
}

func TestParseSpec(t *testing.T) {
	plans, err := ParseSpec("tpu:die=5;gpu:transient=0.2,latmul=4", 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(plans) != 2 {
		t.Fatalf("parsed %d plans", len(plans))
	}
	if p := plans["tpu"]; p.DieAfterOps != 5 || p.Seed != 7 {
		t.Fatalf("tpu plan = %+v", p)
	}
	if p := plans["gpu"]; p.TransientRate != 0.2 || p.LatencyMultiplier != 4 {
		t.Fatalf("gpu plan = %+v", p)
	}

	for _, bad := range []string{
		"",                    // empty
		"tpu",                 // no plan
		"tpu:die",             // not key=value
		"tpu:die=x",           // bad value
		"tpu:die=-1",          // negative
		"tpu:bogus=1",         // unknown key
		"tpu:die=1;tpu:die=2", // duplicate device
		"tpu:latmul=0",        // injects nothing
	} {
		if _, err := ParseSpec(bad, 1); err == nil {
			t.Fatalf("ParseSpec(%q) should fail", bad)
		}
	}
}
