// Package npu implements the NPU execution mode of the Edge TPU (§2.2.2 and
// §4.2): out-of-domain kernels run on the accelerator as pre-built
// quantized approximators, one "model" per HLOP opcode.
//
// The paper trains MLPs per kernel, quantizes them with the TFLite/Edge-TPU
// compiler, and optionally re-trains quantization-aware (QAT) when accuracy
// drops too far. This reproduction keeps the same pipeline but replaces
// gradient training with the kernel's own math executed under INT8
// arithmetic constraints: the model's "layers" are the kernel's stage
// boundaries, each of which requantizes its activations — exactly the error
// structure a compiled Edge TPU model exhibits. The Build step mirrors the
// paper's four-step workflow, including the accuracy-gated QAT fallback.
package npu

import (
	"fmt"

	"shmt/internal/kernels"
	"shmt/internal/metrics"
	"shmt/internal/parallel"
	"shmt/internal/quant"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Model is one HLOP's Edge-TPU-compatible approximator.
type Model struct {
	Op vop.Opcode
	// Layers is the model depth: the number of requantization boundaries.
	Layers int
	// QuantAware marks models re-trained in quantization-aware mode (step 4
	// of §4.2), which calibrate activations per 64-element block instead of
	// per tensor and so lose less precision.
	QuantAware bool
}

// Rounder returns the kernels.Rounder realizing this model's arithmetic.
func (m Model) Rounder() kernels.Rounder {
	if m.QuantAware {
		return BlockInt8{Block: 64}
	}
	return kernels.Int8{}
}

// Stage materializes one input activation and quantizes it at the host/TPU
// boundary — the per-operand half of Run, split out so the runtime's input
// prefetcher can stage ahead of execution. The caller owns the result.
func (m Model) Stage(in *tensor.Matrix) *tensor.Matrix {
	c := tensor.Materialize(in) // stride-aware gather: inputs may be views
	m.Rounder().Round(c.Data)   // input quantization at the host/TPU boundary
	return c
}

// RunStaged executes the model over activations already staged to device
// precision (see Stage): every layer requantizes and the result is restored
// to float64. The staged inputs are read-only — kernels never retain,
// return, or mutate them — so a staged operand may be shared across calls.
func (m Model) RunStaged(staged []*tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	return kernels.Exec(m.Op, staged, attrs, m.Rounder())
}

// Run executes the model on inputs: input activations are quantized at the
// accelerator boundary, every layer requantizes, and the result is restored
// to float64.
func (m Model) Run(inputs []*tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	q := make([]*tensor.Matrix, len(inputs))
	for i, in := range inputs {
		q[i] = m.Stage(in)
	}
	out, err := m.RunStaged(q, attrs)
	for _, c := range q {
		tensor.PutMatrix(c)
	}
	return out, err
}

// BlockInt8 quantizes per fixed-size block, the finer calibration QAT
// delivers.
type BlockInt8 struct{ Block int }

// Round implements kernels.Rounder. Each block calibrates and requantizes
// independently, and parallel.For's chunks at grain Block are exactly the
// blocks, so the fan-out reproduces the sequential result bit for bit.
func (b BlockInt8) Round(data []float64) {
	blk := b.Block
	if blk <= 0 {
		blk = 64
	}
	// Grain is a multiple of the block size, so chunk edges always land on
	// block boundaries and every block is calibrated over exactly the same
	// elements as the sequential loop.
	grain := (4096 + blk - 1) / blk * blk
	parallel.For(len(data), grain, func(lo, hi int) {
		for off := lo; off < hi; off += blk {
			end := off + blk
			if end > hi {
				end = hi
			}
			p := quant.CalibrateAffine(data[off:end])
			for i := off; i < end; i++ {
				data[i] = p.DequantizeOne(p.QuantizeOne(data[i]))
			}
		}
	})
}

// Name implements kernels.Rounder.
func (BlockInt8) Name() string { return "int8-qat" }

// BuildOptions configures the model-construction workflow.
type BuildOptions struct {
	// ValidationInputs is the randomly generated validation set (step 1 of
	// §4.2). Each entry is one input tuple for the opcode.
	ValidationInputs [][]*tensor.Matrix
	// Attrs are passed through to the kernel.
	Attrs map[string]float64
	// MAPEThreshold gates the QAT fallback: if the post-training-quantized
	// model's MAPE on the validation set exceeds this, re-train
	// quantization-aware (default 0.05 = 5%).
	MAPEThreshold float64
}

// Build constructs the NPU model for op following §4.2's workflow:
// post-training quantization first, validation against the full-precision
// reference, and quantization-aware refinement when the accuracy drop is
// significant. An empty validation set yields the plain PTQ model.
func Build(op vop.Opcode, opts BuildOptions) (Model, error) {
	if op.Model() == vop.Tile && op == vop.OpGEMM {
		// GEMM is the TPU's native domain (§2.2.1) — depth 1, no NPU needed.
		return Model{Op: op, Layers: 1}, nil
	}
	m := Model{Op: op, Layers: kernels.Stages(op)}
	if len(opts.ValidationInputs) == 0 {
		return m, nil
	}
	thr := opts.MAPEThreshold
	if thr <= 0 {
		thr = 0.05
	}
	mape, err := Validate(m, opts.ValidationInputs, opts.Attrs)
	if err != nil {
		return Model{}, err
	}
	if mape > thr {
		m.QuantAware = true
	}
	return m, nil
}

// Validate measures the model's MAPE against the exact kernel over the
// validation set (step 4 of §4.2, "Test the Edge TPU-compatible model with
// validation dataset").
func Validate(m Model, valInputs [][]*tensor.Matrix, attrs map[string]float64) (float64, error) {
	if len(valInputs) == 0 {
		return 0, fmt.Errorf("npu: empty validation set")
	}
	var total float64
	for _, inputs := range valInputs {
		ref, err := kernels.Exec(m.Op, inputs, attrs, kernels.Exact{})
		if err != nil {
			return 0, fmt.Errorf("npu: reference run: %w", err)
		}
		got, err := m.Run(inputs, attrs)
		if err != nil {
			return 0, fmt.Errorf("npu: model run: %w", err)
		}
		mape, err := metrics.MAPE(ref.Data, got.Data)
		if err != nil {
			return 0, err
		}
		total += mape
	}
	return total / float64(len(valInputs)), nil
}
