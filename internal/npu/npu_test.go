package npu

import (
	"math"
	"testing"

	"shmt/internal/kernels"
	"shmt/internal/tensor"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

func TestModelRunApproximates(t *testing.T) {
	m := Model{Op: vop.OpSobel, Layers: kernels.Stages(vop.OpSobel)}
	in := workload.Uniform(32, 32, 0, 1, 1)
	got, err := m.Run([]*tensor.Matrix{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ref, _ := kernels.Exec(vop.OpSobel, []*tensor.Matrix{in}, nil, kernels.Exact{})
	var sum float64
	for i := range got.Data {
		sum += math.Abs(got.Data[i] - ref.Data[i])
	}
	if sum == 0 {
		t.Fatal("NPU model should approximate, not match exactly")
	}
	if sum/float64(len(got.Data)) > 0.2 {
		t.Fatalf("mean error %g too large", sum/float64(len(got.Data)))
	}
}

func TestQATRounderFiner(t *testing.T) {
	// BlockInt8 calibrates per 64-element block, so error on locally-narrow,
	// globally-wide data must be smaller than tensor-wide Int8.
	in := workload.Mixed(64, 64, workload.Profile{CriticalFraction: 0.9, TileSize: 32}, 2)
	a := append([]float64(nil), in.Data...)
	b := append([]float64(nil), in.Data...)
	kernels.Int8{}.Round(a)
	BlockInt8{Block: 64}.Round(b)
	var ea, eb float64
	for i := range in.Data {
		ea += math.Abs(a[i] - in.Data[i])
		eb += math.Abs(b[i] - in.Data[i])
	}
	if eb >= ea {
		t.Fatalf("block-calibrated error %g should undercut tensor-wide %g", eb, ea)
	}
}

func TestBlockInt8DefaultsBlock(t *testing.T) {
	data := []float64{1, 2, 3}
	var r BlockInt8 // Block 0 -> default 64; must not panic
	r.Round(data)
	if r.Name() == "" {
		t.Fatal("rounder name empty")
	}
}

func TestModelRounderSelection(t *testing.T) {
	ptq := Model{}
	if _, ok := ptq.Rounder().(kernels.Int8); !ok {
		t.Fatal("PTQ model should use tensor-wide Int8")
	}
	qat := Model{QuantAware: true}
	if _, ok := qat.Rounder().(BlockInt8); !ok {
		t.Fatal("QAT model should use BlockInt8")
	}
}

func TestBuildWorkflowGatesQAT(t *testing.T) {
	// Validation data with wide local swings makes PTQ miss the threshold,
	// which per §4.2 step 4 triggers quantization-aware re-training.
	wide := workload.Mixed(64, 64, workload.Profile{CriticalFraction: 0.95, CriticalScale: 30, TileSize: 16}, 3)
	m, err := Build(vop.OpSobel, BuildOptions{
		ValidationInputs: [][]*tensor.Matrix{{wide}},
		MAPEThreshold:    0.001, // strict: force the QAT path
	})
	if err != nil {
		t.Fatal(err)
	}
	if !m.QuantAware {
		t.Fatal("strict threshold should gate into QAT mode")
	}

	// A generous threshold keeps plain post-training quantization.
	narrow := workload.Uniform(64, 64, 0.4, 0.6, 4)
	m2, err := Build(vop.OpSobel, BuildOptions{
		ValidationInputs: [][]*tensor.Matrix{{narrow}},
		MAPEThreshold:    0.9,
	})
	if err != nil {
		t.Fatal(err)
	}
	if m2.QuantAware {
		t.Fatal("loose threshold should keep the PTQ model")
	}
}

func TestBuildWithoutValidationSet(t *testing.T) {
	m, err := Build(vop.OpSRAD, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Layers != kernels.Stages(vop.OpSRAD) || m.QuantAware {
		t.Fatalf("default model = %+v", m)
	}
}

func TestBuildGEMMIsNative(t *testing.T) {
	m, err := Build(vop.OpGEMM, BuildOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if m.Layers != 1 {
		t.Fatal("GEMM should be a depth-1 native op")
	}
}

func TestValidateErrors(t *testing.T) {
	if _, err := Validate(Model{Op: vop.OpSobel}, nil, nil); err == nil {
		t.Fatal("empty validation set should error")
	}
	bad := [][]*tensor.Matrix{{tensor.NewMatrix(4, 4), tensor.NewMatrix(4, 4)}} // wrong arity
	if _, err := Validate(Model{Op: vop.OpSobel}, bad, nil); err == nil {
		t.Fatal("arity error should surface")
	}
}
