package parallel

import (
	"sync"
	"testing"
)

func TestAcquireCapClampsEffectiveWidth(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)

	c1 := AcquireCap(4)
	if Workers() != 4 {
		t.Fatalf("Workers() = %d with cap 4, want 4", Workers())
	}
	c2 := AcquireCap(2)
	if Workers() != 2 {
		t.Fatalf("Workers() = %d with caps {4,2}, want 2 (strictest wins)", Workers())
	}
	c2.Release()
	if Workers() != 4 {
		t.Fatalf("Workers() = %d after releasing cap 2, want 4", Workers())
	}
	c1.Release()
	if Workers() != 8 {
		t.Fatalf("Workers() = %d after releasing all caps, want base 8", Workers())
	}
}

func TestCapReleaseIdempotentAndNilSafe(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)

	c := AcquireCap(3)
	c.Release()
	c.Release() // second release must be a no-op
	var nilCap *Cap
	nilCap.Release()
	if Workers() != 8 {
		t.Fatalf("Workers() = %d after double release, want 8", Workers())
	}
}

func TestCapNeverWidensBase(t *testing.T) {
	prev := SetWorkers(2)
	defer SetWorkers(prev)

	c := AcquireCap(16)
	defer c.Release()
	if Workers() != 2 {
		t.Fatalf("Workers() = %d, a cap above the base must not widen the pool", Workers())
	}
}

// TestCapConcurrent exercises acquire/release from many goroutines while For
// runs, so `go test -race` covers the session-configures-workers path.
func TestCapConcurrent(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				c := AcquireCap(1 + (g+i)%4)
				out := make([]int, 64)
				For(len(out), 8, func(lo, hi int) {
					for j := lo; j < hi; j++ {
						out[j] = j
					}
				})
				for j, v := range out {
					if v != j {
						t.Errorf("out[%d] = %d", j, v)
						break
					}
				}
				c.Release()
			}
		}(g)
	}
	wg.Wait()
	if Workers() != 4 {
		t.Fatalf("Workers() = %d after all caps released, want 4", Workers())
	}
}
