package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func TestForCoversRangeOnce(t *testing.T) {
	for _, w := range []int{1, 2, 4, runtime.NumCPU()} {
		prev := SetWorkers(w)
		n := 10_001
		hits := make([]int32, n)
		For(n, 97, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		SetWorkers(prev)
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", w, i, h)
			}
		}
	}
}

func TestForChunkBoundariesIndependentOfWorkers(t *testing.T) {
	collect := func(w int) map[[2]int]bool {
		prev := SetWorkers(w)
		defer SetWorkers(prev)
		got := make(chan [2]int, 64)
		For(1000, 64, func(lo, hi int) { got <- [2]int{lo, hi} })
		close(got)
		set := map[[2]int]bool{}
		for c := range got {
			set[c] = true
		}
		return set
	}
	a, b := collect(1), collect(4)
	if len(a) != len(b) {
		t.Fatalf("chunk count differs: %d vs %d", len(a), len(b))
	}
	for c := range a {
		if !b[c] {
			t.Fatalf("chunk %v missing with 4 workers", c)
		}
	}
}

func TestForEmptyAndSingle(t *testing.T) {
	ran := false
	For(0, 8, func(lo, hi int) { ran = true })
	if ran {
		t.Fatal("For(0) must not invoke fn")
	}
	For(1, 8, func(lo, hi int) {
		if lo != 0 || hi != 1 {
			t.Fatalf("got [%d,%d)", lo, hi)
		}
		ran = true
	})
	if !ran {
		t.Fatal("For(1) must invoke fn once")
	}
}

func TestForPanicPropagates(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	For(1000, 10, func(lo, hi int) {
		if lo == 500 {
			panic("boom")
		}
	})
	t.Fatal("unreachable: panic must propagate")
}

func TestSetWorkersClampsAndRestores(t *testing.T) {
	prev := SetWorkers(0)
	if Workers() != 1 {
		t.Fatalf("SetWorkers(0) -> %d, want clamp to 1", Workers())
	}
	SetWorkers(prev)
	if Workers() != prev {
		t.Fatalf("restore failed: %d != %d", Workers(), prev)
	}
}

func TestRowGrain(t *testing.T) {
	if g := RowGrain(1 << 20); g != 1 {
		t.Fatalf("huge cols grain = %d, want 1", g)
	}
	if g := RowGrain(0); g < 1 {
		t.Fatalf("zero cols grain = %d", g)
	}
	if g := RowGrain(1024); g != targetChunkElems/1024 {
		t.Fatalf("1024-col grain = %d", g)
	}
}

// TestPoolTaskCallingForDoesNotDeadlock reproduces the prefetch-path hang:
// standalone pool tasks (Try) that themselves call For. Pre-fix, every pool
// worker could end up parked in For's wait while that For's helpers sat
// queued behind the very tasks occupying the workers — a cycle nobody could
// break, deterministic on GOMAXPROCS=1. For now helps drain the queue while
// it waits, so this must complete no matter how tasks and helpers interleave.
func TestPoolTaskCallingForDoesNotDeadlock(t *testing.T) {
	prev := SetWorkers(8)
	defer SetWorkers(prev)
	var total atomic.Int64
	var wg sync.WaitGroup
	launched := 0
	for i := 0; i < 64; i++ {
		wg.Add(1)
		if !Try(func() {
			defer wg.Done()
			For(64, 1, func(lo, hi int) { total.Add(int64(hi - lo)) })
		}) {
			wg.Done()
			break
		}
		launched++
	}
	// The engine thread piles on concurrently, like Execute does.
	For(64, 1, func(lo, hi int) { total.Add(int64(hi - lo)) })
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("pool tasks calling For deadlocked")
	}
	if want := int64((launched + 1) * 64); total.Load() != want {
		t.Fatalf("total = %d, want %d", total.Load(), want)
	}
}

func TestNestedForDoesNotDeadlock(t *testing.T) {
	prev := SetWorkers(4)
	defer SetWorkers(prev)
	var total atomic.Int64
	For(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			For(100, 7, func(l, h int) { total.Add(int64(h - l)) })
		}
	})
	if total.Load() != 800 {
		t.Fatalf("nested total = %d, want 800", total.Load())
	}
}
