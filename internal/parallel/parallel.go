// Package parallel provides the host-side execution pool the SHMT runtime
// uses to keep every core of the *host* machine busy while the virtual-time
// cost model keeps describing the simulated platform. The two layers are
// deliberately independent: virtual time is computed from the calibrated
// device models and never observes host concurrency, while the actual kernel
// arithmetic fans out over a bounded worker pool.
//
// Determinism contract: For splits [0, n) into fixed chunks derived only
// from n and grain — never from the worker count or from scheduling order —
// and every chunk writes a disjoint output range. A kernel whose sequential
// loop is independent per element (or per row) therefore produces
// bit-identical results with 1, 2, or GOMAXPROCS workers; the property
// tests in internal/kernels assert exactly that.
package parallel

import (
	"context"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"shmt/internal/telemetry"
)

// workers is the effective fan-out width For reads on every call: the
// configured base (GOMAXPROCS, overridden by the SHMT_WORKERS environment
// variable or SetWorkers) clamped by every active Cap. It is recomputed
// under capMu whenever the base or the cap set changes; the atomic keeps the
// hot-path read free of the lock.
var workers atomic.Int64

var (
	capMu sync.Mutex
	baseW int
	caps  = map[*Cap]int{}
)

func init() {
	n := runtime.GOMAXPROCS(0)
	if s := os.Getenv("SHMT_WORKERS"); s != "" {
		if v, err := strconv.Atoi(s); err == nil && v > 0 {
			n = v
		}
	}
	if n < 1 {
		n = 1
	}
	baseW = n
	workers.Store(int64(n))
}

// Workers returns the current effective fan-out width.
func Workers() int { return int(workers.Load()) }

// SetWorkers sets the base fan-out width (clamped to ≥ 1) and returns the
// previous base, so tests and options can save/restore it. Active caps still
// bound the effective width from above.
func SetWorkers(n int) int {
	if n < 1 {
		n = 1
	}
	capMu.Lock()
	defer capMu.Unlock()
	prev := baseW
	baseW = n
	recomputeWorkers()
	return prev
}

// Cap is a scoped ceiling on the pool width, owned by whoever acquired it
// (a shmt.Session holds one for its Config.Workers). The effective width is
// the base clamped by every live cap, so concurrent sessions with different
// Workers settings compose deterministically (the strictest wins) instead of
// racing last-write-wins on a process global. Release returns the width to
// whatever the remaining caps allow.
type Cap struct{ n int } // non-zero size so every handle has a unique address

// AcquireCap registers a ceiling of n workers (clamped to ≥ 1) and returns
// the handle that releases it.
func AcquireCap(n int) *Cap {
	if n < 1 {
		n = 1
	}
	c := &Cap{n: n}
	capMu.Lock()
	caps[c] = n
	recomputeWorkers()
	capMu.Unlock()
	return c
}

// Release removes the cap. Safe to call more than once and on nil.
func (c *Cap) Release() {
	if c == nil {
		return
	}
	capMu.Lock()
	delete(caps, c)
	recomputeWorkers()
	capMu.Unlock()
}

// recomputeWorkers publishes min(base, caps...) to the atomic. capMu held.
func recomputeWorkers() {
	eff := baseW
	for _, n := range caps {
		if n < eff {
			eff = n
		}
	}
	if eff < 1 {
		eff = 1
	}
	workers.Store(int64(eff))
}

// The pool: GOMAXPROCS long-lived helper goroutines fed through a bounded
// channel. Helpers are an accelerator, never a dependency — if the pool is
// saturated (e.g. the concurrent engine's per-device workers all fan out at
// once), For degrades to running every chunk on the calling goroutine, and
// while waiting for submitted helpers For drains the task queue itself, so
// nested or concurrent use cannot deadlock (a For inside a pool task would
// otherwise wait forever on helpers queued behind its own worker).
var (
	poolOnce sync.Once
	tasks    chan func()
)

func startPool() {
	n := runtime.GOMAXPROCS(0)
	if n < 1 {
		n = 1
	}
	tasks = make(chan func(), 4*n)
	for i := 0; i < n; i++ {
		id := strconv.Itoa(i)
		go pprof.Do(context.Background(),
			pprof.Labels("shmt", "pool-worker", "shmt_worker", id),
			func(context.Context) {
				for f := range tasks {
					f()
				}
			})
	}
}

// submit hands f to a pool helper if one can accept it without blocking.
func submit(f func()) bool {
	poolOnce.Do(startPool)
	select {
	case tasks <- f:
		return true
	default:
		return false
	}
}

// Try hands f to a pool helper without blocking and reports whether one
// accepted it. Like For's helpers, the pool is an accelerator, never a
// dependency: callers that get false must run f themselves (or skip the
// optimization f implements) rather than wait — the engines' input
// prefetcher uses this so staging ahead can never deadlock against kernel
// fan-out on the same pool.
func Try(f func()) bool { return submit(f) }

// For runs fn over [0, n) split into chunks of grain elements (the last
// chunk may be shorter). Chunk boundaries depend only on n and grain, and
// chunks are claimed from an atomic counter, so the set of (lo, hi) calls is
// identical for every worker count — only their interleaving varies. fn must
// treat [lo, hi) as its exclusive output range.
//
// With one worker the same chunks run in order on the calling goroutine;
// that is the "sequential path" the determinism contract is stated against.
// A panic in any chunk is re-raised on the caller.
func For(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	chunks := (n + grain - 1) / grain
	w := Workers()
	if w > chunks {
		w = chunks
	}
	if w <= 1 {
		// Sequential path: same chunk sequence, in order, on the caller.
		for lo := 0; lo < n; lo += grain {
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
		return
	}

	var (
		next      atomic.Int64
		panicked  atomic.Bool
		panicOnce sync.Once
		panicVal  any
	)
	work := func() {
		// Worker-utilization accounting: one timestamp pair per drained
		// worker, not per chunk, so the enabled cost stays off the inner loop.
		var t0 time.Time
		var done int64
		if telemetry.On() {
			t0 = time.Now()
		}
		defer func() {
			if !t0.IsZero() {
				telemetry.WorkerBusyNanos.Add(time.Since(t0).Nanoseconds())
				telemetry.WorkerChunks.Add(done)
			}
			if r := recover(); r != nil {
				panicOnce.Do(func() {
					panicVal = r
					panicked.Store(true)
				})
			}
		}()
		for {
			c := int(next.Add(1)) - 1
			if c >= chunks || panicked.Load() {
				return
			}
			lo := c * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
			done++
		}
	}

	var pending atomic.Int64
	for i := 1; i < w; i++ {
		pending.Add(1)
		if !submit(func() {
			defer pending.Add(-1)
			work()
		}) {
			pending.Add(-1)
			break // pool saturated: the caller drains the counter alone
		}
	}
	work()
	// Wait for the submitted helpers — by helping. A helper that is still
	// queued may never start on its own: when this caller *is* a pool worker
	// (nested For, e.g. a kernel inside a prefetch task), or when every
	// worker is blocked in this same wait, the queue has no one to drain it
	// and a plain WaitGroup.Wait deadlocks. Executing queued tasks here
	// breaks that cycle — our own helpers run inline (and find the chunk
	// counter drained, exiting immediately), and foreign tasks make forward
	// progress for whoever is waiting on them. Tasks never block except in
	// this same helping wait, so the recursion terminates.
	for pending.Load() > 0 {
		select {
		case f := <-tasks:
			f()
		default:
			// Our helpers are running on real workers; let them finish.
			runtime.Gosched()
		}
	}
	if panicked.Load() {
		panic(panicVal)
	}
}

// targetChunkElems is the per-chunk work For aims at when a caller sizes
// grains from an element count: large enough to amortize chunk claiming,
// small enough to balance uneven rows.
const targetChunkElems = 1 << 15

// RowGrain returns the For grain (in rows) for a rows×cols sweep: enough
// rows per chunk to cover ~targetChunkElems elements. Deterministic in the
// shape alone.
func RowGrain(cols int) int {
	if cols < 1 {
		cols = 1
	}
	g := targetChunkElems / cols
	if g < 1 {
		g = 1
	}
	return g
}
