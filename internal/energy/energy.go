// Package energy models the prototype's power draw and integrates it over
// virtual time, reproducing Fig. 10's energy and energy-delay-product (EDP)
// comparison.
//
// The paper reports wall-plug measurements: platform idle 3.02 W, GPU
// baseline peak 4.67 W, SHMT (GPU + Edge TPU active) peak 5.23 W (§5.5).
// Decomposing: board idle 3.02 W, GPU active adds ~1.65 W, Edge TPU active
// adds ~0.56 W (the Coral M.2 module's ~0.5 W/TOPS envelope), CPU runtime
// activity adds ~0.3 W. Energy = Σ_device activePower×busyTime + boardIdle ×
// makespan, which reproduces the paper's observation that SHMT draws a
// higher peak but much less energy because the 1.95× speedup shortens the
// window during which anything draws power at all.
package energy

// Watts is power in watts.
type Watts = float64

// Joules is energy in joules.
type Joules = float64

// Profile is one device's power description.
type Profile struct {
	// Active is the incremental draw while executing an HLOP, above idle.
	Active Watts
	// Idle is the device's incremental standby draw above the board's base
	// (kept separate so removing a device from the system removes its idle).
	Idle Watts
}

// Model is the platform power model.
type Model struct {
	// BoardIdle is the base draw of the whole platform when nothing runs.
	BoardIdle Watts
	// Devices maps device name to its profile.
	Devices map[string]Profile
}

// DefaultModel returns the calibrated prototype model (see package comment).
func DefaultModel() Model {
	return Model{
		BoardIdle: 3.02,
		Devices: map[string]Profile{
			"cpu": {Active: 0.30, Idle: 0},
			"gpu": {Active: 1.65, Idle: 0},
			"tpu": {Active: 0.56, Idle: 0},
			// The DSP extension device (§2.1): on-SoC signal processors
			// draw well under a watt at full tilt.
			"dsp": {Active: 0.45, Idle: 0},
		},
	}
}

// Usage is one run's per-device busy time against a total makespan.
type Usage struct {
	Makespan float64            // end-to-end virtual latency, seconds
	Busy     map[string]float64 // device name -> busy seconds
}

// Breakdown splits a run's energy into active and idle parts, the stacking
// of Fig. 10's bars.
type Breakdown struct {
	Active Joules // device-active energy
	Idle   Joules // board + device idle energy over the makespan
}

// Total returns Active+Idle.
func (b Breakdown) Total() Joules { return b.Active + b.Idle }

// Energy integrates the model over a run.
func (m Model) Energy(u Usage) Breakdown {
	var b Breakdown
	b.Idle = m.BoardIdle * u.Makespan
	for name, busy := range u.Busy {
		p, ok := m.Devices[name]
		if !ok {
			continue
		}
		b.Active += p.Active * busy
		b.Idle += p.Idle * u.Makespan
	}
	return b
}

// PeakPower returns the draw when the given devices are simultaneously
// active — the paper's peak-power comparison (3.02 / 4.67 / 5.23 W).
func (m Model) PeakPower(activeDevices []string) Watts {
	p := m.BoardIdle
	for _, name := range activeDevices {
		if prof, ok := m.Devices[name]; ok {
			p += prof.Active + prof.Idle
		}
	}
	return p
}

// EDP returns the energy-delay product of a run under the model.
func (m Model) EDP(u Usage) float64 {
	return m.Energy(u).Total() * u.Makespan
}
