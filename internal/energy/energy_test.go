package energy

import (
	"math"
	"testing"
)

func TestPeakPowersMatchPaper(t *testing.T) {
	m := DefaultModel()
	// §5.5: idle 3.02 W, GPU baseline 4.67 W, SHMT (GPU+TPU) 5.23 W.
	if got := m.PeakPower(nil); math.Abs(got-3.02) > 1e-9 {
		t.Fatalf("idle peak = %g want 3.02", got)
	}
	if got := m.PeakPower([]string{"gpu"}); math.Abs(got-4.67) > 1e-9 {
		t.Fatalf("GPU baseline peak = %g want 4.67", got)
	}
	if got := m.PeakPower([]string{"gpu", "tpu"}); math.Abs(got-5.23) > 1e-9 {
		t.Fatalf("SHMT peak = %g want 5.23", got)
	}
}

func TestEnergyIntegration(t *testing.T) {
	m := DefaultModel()
	u := Usage{Makespan: 10, Busy: map[string]float64{"gpu": 10}}
	b := m.Energy(u)
	if math.Abs(b.Idle-30.2) > 1e-9 {
		t.Fatalf("idle energy = %g want 30.2", b.Idle)
	}
	if math.Abs(b.Active-16.5) > 1e-9 {
		t.Fatalf("active energy = %g want 16.5", b.Active)
	}
	if math.Abs(b.Total()-46.7) > 1e-9 {
		t.Fatalf("total = %g want 46.7", b.Total())
	}
}

func TestEnergyIgnoresUnknownDevices(t *testing.T) {
	m := DefaultModel()
	u := Usage{Makespan: 1, Busy: map[string]float64{"fpga": 1}}
	b := m.Energy(u)
	if b.Active != 0 {
		t.Fatalf("unknown device contributed %g J", b.Active)
	}
}

func TestFasterRunSavesEnergyDespiteHigherPeak(t *testing.T) {
	// The paper's core energy observation: SHMT draws a higher peak but
	// finishes ~2x sooner, so total energy drops (§5.5).
	m := DefaultModel()
	baseline := m.Energy(Usage{Makespan: 10, Busy: map[string]float64{"gpu": 10}})
	shmt := m.Energy(Usage{Makespan: 5, Busy: map[string]float64{"gpu": 5, "tpu": 5}})
	if shmt.Total() >= baseline.Total() {
		t.Fatalf("SHMT energy %g should undercut baseline %g", shmt.Total(), baseline.Total())
	}
	saved := 1 - shmt.Total()/baseline.Total()
	if saved < 0.3 || saved > 0.7 {
		t.Fatalf("saving %.2f out of the plausible band around the paper's 51%%", saved)
	}
}

func TestEDP(t *testing.T) {
	m := DefaultModel()
	u := Usage{Makespan: 2, Busy: map[string]float64{"gpu": 2}}
	if got := m.EDP(u); math.Abs(got-m.Energy(u).Total()*2) > 1e-12 {
		t.Fatalf("EDP = %g", got)
	}
}
