package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestSymmetricCalibration(t *testing.T) {
	p := CalibrateSymmetric([]float64{-3, 1, 2})
	if want := 3.0 / 127; math.Abs(p.Scale-want) > 1e-15 {
		t.Fatalf("scale = %g want %g", p.Scale, want)
	}
}

func TestSymmetricZeroRange(t *testing.T) {
	p := CalibrateSymmetric([]float64{0, 0, 0})
	if p.Scale != 1 {
		t.Fatalf("scale = %g want 1", p.Scale)
	}
	if got := p.RoundTrip([]float64{0, 0}); got[0] != 0 || got[1] != 0 {
		t.Fatal("zeros should round-trip exactly")
	}
}

func TestSymmetricSaturation(t *testing.T) {
	p := Int8Params{Scale: 1}
	if p.QuantizeOne(1000) != 127 {
		t.Fatalf("positive saturation = %d", p.QuantizeOne(1000))
	}
	if p.QuantizeOne(-1000) != -128 {
		t.Fatalf("negative saturation = %d", p.QuantizeOne(-1000))
	}
}

func TestSymmetricNaN(t *testing.T) {
	p := Int8Params{Scale: 1}
	if p.QuantizeOne(math.NaN()) != 0 {
		t.Fatal("NaN should quantize to 0")
	}
}

func TestSymmetricRoundTripBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]float64, 64)
		for i := range data {
			data[i] = (r.Float64() - 0.5) * 20
		}
		p := CalibrateSymmetric(data)
		rt := p.RoundTrip(data)
		bound := p.MaxRoundTripError() + 1e-12
		for i := range data {
			if math.Abs(rt[i]-data[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestAffineCoversRange(t *testing.T) {
	data := []float64{2, 5, 9} // all positive: range must still include 0
	p := CalibrateAffine(data)
	if p.DequantizeOne(p.QuantizeOne(0)) != 0 {
		t.Fatalf("zero not exactly representable: %g", p.DequantizeOne(p.QuantizeOne(0)))
	}
	rt := p.RoundTrip(data)
	for i := range data {
		if math.Abs(rt[i]-data[i]) > p.Scale/2+1e-12 {
			t.Fatalf("affine error %g > step/2 %g", math.Abs(rt[i]-data[i]), p.Scale/2)
		}
	}
}

func TestAffineEmptyAndConstant(t *testing.T) {
	if p := CalibrateAffine(nil); p.Scale != 1 {
		t.Fatalf("empty scale = %g", p.Scale)
	}
	p := CalibrateAffine([]float64{5, 5, 5})
	rt := p.RoundTrip([]float64{5})
	if math.Abs(rt[0]-5) > p.Scale/2+1e-12 {
		t.Fatalf("constant round trip = %g", rt[0])
	}
}

func TestAffineIgnoresNonFinite(t *testing.T) {
	p := CalibrateAffine([]float64{1, 2, math.Inf(1), math.NaN()})
	if math.IsInf(p.Scale, 0) || math.IsNaN(p.Scale) {
		t.Fatalf("scale corrupted by non-finite input: %g", p.Scale)
	}
}

func TestAffineRoundTripBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]float64, 48)
		for i := range data {
			data[i] = r.Float64()*100 - 30
		}
		p := CalibrateAffine(data)
		rt := p.RoundTrip(data)
		for i := range data {
			if math.Abs(rt[i]-data[i]) > p.Scale/2+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFP16KnownValues(t *testing.T) {
	cases := []struct {
		f    float64
		bits FP16
	}{
		{0, 0x0000},
		{1, 0x3c00},
		{-2, 0xc000},
		{0.5, 0x3800},
		{65504, 0x7bff},         // max finite half
		{65536, 0x7c00},         // overflow -> +Inf
		{-65536, 0xfc00},        // overflow -> -Inf
		{6.1035156e-05, 0x0400}, // smallest normal
	}
	for _, c := range cases {
		if got := FP16FromFloat(c.f); got != c.bits {
			t.Errorf("FP16FromFloat(%g) = %#04x want %#04x", c.f, uint16(got), uint16(c.bits))
		}
	}
}

func TestFP16SpecialValues(t *testing.T) {
	if !math.IsInf(FP16FromFloat(math.Inf(1)).Float(), 1) {
		t.Fatal("+Inf lost")
	}
	if !math.IsInf(FP16FromFloat(math.Inf(-1)).Float(), -1) {
		t.Fatal("-Inf lost")
	}
	if !math.IsNaN(FP16FromFloat(math.NaN()).Float()) {
		t.Fatal("NaN lost")
	}
	negZero := FP16FromFloat(math.Copysign(0, -1))
	if negZero != 0x8000 {
		t.Fatalf("-0 encodes to %#04x", uint16(negZero))
	}
}

func TestFP16Subnormals(t *testing.T) {
	// Smallest positive subnormal: 2^-24.
	tiny := math.Pow(2, -24)
	h := FP16FromFloat(tiny)
	if h != 0x0001 {
		t.Fatalf("2^-24 encodes to %#04x want 0x0001", uint16(h))
	}
	if h.Float() != tiny {
		t.Fatalf("subnormal decodes to %g want %g", h.Float(), tiny)
	}
	// Underflow to zero.
	if FP16FromFloat(math.Pow(2, -26)) != 0 {
		t.Fatal("2^-26 should underflow to +0")
	}
}

// Property: encode->decode->encode is stable (idempotent after one trip).
func TestFP16Idempotent(t *testing.T) {
	f := func(x float64) bool {
		if math.IsNaN(x) {
			return true
		}
		once := FP16FromFloat(x).Float()
		twice := FP16FromFloat(once).Float()
		return once == twice || (math.IsNaN(once) && math.IsNaN(twice))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

// Property: FP16 relative round-trip error for normal-range values is within
// the half-precision epsilon bound (2^-11).
func TestFP16RelativeError(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		x := (r.Float64()*2 - 1) * 1000
		if math.Abs(x) < 1e-3 {
			return true
		}
		y := FP16FromFloat(x).Float()
		return math.Abs(y-x)/math.Abs(x) <= math.Pow(2, -11)+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 2000}); err != nil {
		t.Fatal(err)
	}
}

func TestFloat32RoundTrip(t *testing.T) {
	in := []float64{1.0 / 3.0, math.Pi, -1e-10}
	out := Float32RoundTrip(in)
	for i := range in {
		if out[i] != float64(float32(in[i])) {
			t.Fatalf("fp32 round trip mismatch at %d", i)
		}
	}
}

func TestFP16RoundTripSlice(t *testing.T) {
	in := []float64{0.1, 100, -7}
	out := FP16RoundTrip(in)
	for i := range in {
		if out[i] != FP16FromFloat(in[i]).Float() {
			t.Fatalf("slice round trip mismatch at %d", i)
		}
	}
}
