package quant

import "math"

// FP16 is an IEEE 754 binary16 value stored in its 16-bit encoding. The
// simulated GPU exposes half precision for AI/ML-mode HLOPs, mirroring the
// FP16 support of the paper's Maxwell GPU.
type FP16 uint16

// FP16FromFloat converts a float64 to the nearest binary16 value
// (round-to-nearest-even), saturating to ±Inf beyond the representable range.
func FP16FromFloat(f float64) FP16 {
	f32 := float32(f)
	bits := math.Float32bits(f32)
	sign := uint16(bits>>16) & 0x8000
	exp := int32(bits>>23&0xff) - 127
	mant := bits & 0x7fffff

	switch {
	case exp == 128: // Inf or NaN
		if mant != 0 {
			return FP16(sign | 0x7e00) // quiet NaN
		}
		return FP16(sign | 0x7c00)
	case exp > 15: // overflow -> Inf
		return FP16(sign | 0x7c00)
	case exp >= -14: // normal
		// 10-bit mantissa; round to nearest even on the dropped 13 bits.
		m := mant >> 13
		rem := mant & 0x1fff
		if rem > 0x1000 || (rem == 0x1000 && m&1 == 1) {
			m++
		}
		e := uint32(exp+15)<<10 + m // mantissa carry can bump the exponent
		if e >= 0x7c00 {
			return FP16(sign | 0x7c00)
		}
		return FP16(sign | uint16(e))
	case exp >= -24: // subnormal
		shift := uint32(-exp - 1) // 14..24 -> 14 means shift 24 total below
		full := mant | 0x800000   // implicit leading 1
		// Align so that 10 mantissa bits remain: drop (14+shift) bits... derive:
		drop := 14 + shift // bits to discard from the 24-bit significand
		m := full >> drop
		rem := full & ((1 << drop) - 1)
		half := uint32(1) << (drop - 1)
		if rem > half || (rem == half && m&1 == 1) {
			m++
		}
		return FP16(sign | uint16(m))
	default: // underflow to signed zero
		return FP16(sign)
	}
}

// Float returns the float64 value of the half-precision number.
func (h FP16) Float() float64 {
	sign := uint32(h>>15) & 1
	exp := uint32(h>>10) & 0x1f
	mant := uint32(h) & 0x3ff

	var bits uint32
	switch {
	case exp == 0 && mant == 0:
		bits = sign << 31
	case exp == 0: // subnormal: normalize into binary32
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		bits = sign<<31 | e<<23 | mant<<13
	case exp == 0x1f:
		if mant == 0 {
			bits = sign<<31 | 0xff<<23
		} else {
			bits = sign<<31 | 0xff<<23 | mant<<13 | 1
		}
	default:
		bits = sign<<31 | (exp-15+127)<<23 | mant<<13
	}
	return float64(math.Float32frombits(bits))
}

// FP16RoundTrip converts every element through binary16 and back, the value
// degradation of executing in half precision.
func FP16RoundTrip(data []float64) []float64 {
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = FP16FromFloat(v).Float()
	}
	return out
}

// Float32RoundTrip converts every element through binary32 and back, the
// value degradation of the GPU's native single-precision path.
func Float32RoundTrip(data []float64) []float64 {
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = float64(float32(v))
	}
	return out
}
