// Package quant implements the reduced-precision data representations of the
// simulated accelerators: symmetric and affine INT8 quantization (Edge TPU)
// and software FP16 (half precision, the GPU's optional AI/ML mode).
//
// The paper's runtime system "perform[s] data type casting through the
// desired quantization method before distributing the input data" and
// restores the result precision afterwards (§3.3.2); this package is that
// casting layer. Because quantization here is real arithmetic, the quality
// degradation SHMT's QAWS policy manages (Figs. 7–9) is measured, not
// modelled.
package quant

import (
	"math"
)

// Int8Params describes a symmetric INT8 quantization: real = scale * q.
type Int8Params struct {
	Scale float64
}

// CalibrateSymmetric derives symmetric INT8 parameters from the data range,
// mapping max(|min|,|max|) to 127. A zero-range input yields scale 1 so that
// round-tripping zeros is exact.
func CalibrateSymmetric(data []float64) Int8Params {
	var absMax float64
	for _, v := range data {
		if a := math.Abs(v); a > absMax && !math.IsInf(a, 0) && !math.IsNaN(a) {
			absMax = a
		}
	}
	if absMax == 0 {
		return Int8Params{Scale: 1}
	}
	return Int8Params{Scale: absMax / 127}
}

// Quantize converts real values to INT8 codes with round-to-nearest and
// saturation.
func (p Int8Params) Quantize(data []float64) []int8 {
	out := make([]int8, len(data))
	for i, v := range data {
		out[i] = p.QuantizeOne(v)
	}
	return out
}

// QuantizeOne converts one value.
func (p Int8Params) QuantizeOne(v float64) int8 {
	if math.IsNaN(v) {
		return 0
	}
	q := math.RoundToEven(v / p.Scale)
	if q > 127 {
		q = 127
	}
	if q < -128 {
		q = -128
	}
	return int8(q)
}

// Dequantize converts INT8 codes back to real values.
func (p Int8Params) Dequantize(q []int8) []float64 {
	out := make([]float64, len(q))
	for i, v := range q {
		out[i] = float64(v) * p.Scale
	}
	return out
}

// DequantizeOne converts one code back to a real value.
func (p Int8Params) DequantizeOne(q int8) float64 { return float64(q) * p.Scale }

// RoundTrip pushes data through quantize→dequantize, the value degradation a
// tensor suffers crossing onto the Edge TPU. The maximum element-wise error
// is bounded by Scale/2 (plus saturation for outliers).
func (p Int8Params) RoundTrip(data []float64) []float64 {
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = p.DequantizeOne(p.QuantizeOne(v))
	}
	return out
}

// MaxRoundTripError returns the worst-case |x - roundtrip(x)| for in-range
// inputs: half a quantization step.
func (p Int8Params) MaxRoundTripError() float64 { return p.Scale / 2 }

// AffineParams describes an asymmetric (affine) INT8 quantization:
// real = scale * (q - zeroPoint). TFLite post-training quantization uses this
// form for activations.
type AffineParams struct {
	Scale     float64
	ZeroPoint int
}

// CalibrateAffine derives affine parameters covering [min,max] of the data.
func CalibrateAffine(data []float64) AffineParams {
	if len(data) == 0 {
		return AffineParams{Scale: 1}
	}
	lo, hi := data[0], data[0]
	for _, v := range data {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			continue
		}
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	// The representable range must include zero so that padding quantizes
	// exactly (TFLite convention).
	if lo > 0 {
		lo = 0
	}
	if hi < 0 {
		hi = 0
	}
	if hi == lo {
		return AffineParams{Scale: 1, ZeroPoint: 0}
	}
	scale := (hi - lo) / 255
	zp := int(math.RoundToEven(-128 - lo/scale))
	if zp < -128 {
		zp = -128
	}
	if zp > 127 {
		zp = 127
	}
	return AffineParams{Scale: scale, ZeroPoint: zp}
}

// Quantize converts real values to affine INT8 codes.
func (p AffineParams) Quantize(data []float64) []int8 {
	out := make([]int8, len(data))
	for i, v := range data {
		out[i] = p.QuantizeOne(v)
	}
	return out
}

// QuantizeOne converts one value.
func (p AffineParams) QuantizeOne(v float64) int8 {
	if math.IsNaN(v) {
		return int8(p.ZeroPoint)
	}
	q := math.RoundToEven(v/p.Scale) + float64(p.ZeroPoint)
	if q > 127 {
		q = 127
	}
	if q < -128 {
		q = -128
	}
	return int8(q)
}

// DequantizeOne converts one affine code back to a real value.
func (p AffineParams) DequantizeOne(q int8) float64 {
	return p.Scale * float64(int(q)-p.ZeroPoint)
}

// Dequantize converts affine codes back to real values.
func (p AffineParams) Dequantize(q []int8) []float64 {
	out := make([]float64, len(q))
	for i, v := range q {
		out[i] = p.DequantizeOne(v)
	}
	return out
}

// RoundTrip pushes data through affine quantize→dequantize.
func (p AffineParams) RoundTrip(data []float64) []float64 {
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = p.DequantizeOne(p.QuantizeOne(v))
	}
	return out
}
