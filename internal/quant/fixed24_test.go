package quant

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestFixed24Calibration(t *testing.T) {
	p := CalibrateFixed24([]float64{-3, 1, 2})
	if want := 3.0 / fixed24Max; math.Abs(p.Scale-want) > 1e-18 {
		t.Fatalf("scale = %g want %g", p.Scale, want)
	}
	if CalibrateFixed24(nil).Scale != 1 {
		t.Fatal("empty calibration should default")
	}
	if CalibrateFixed24([]float64{0}).Scale != 1 {
		t.Fatal("zero-range calibration should default")
	}
}

func TestFixed24Saturation(t *testing.T) {
	p := Fixed24Params{Scale: 1}
	if p.QuantizeOne(1e9) != fixed24Max {
		t.Fatal("positive saturation wrong")
	}
	if p.QuantizeOne(-1e9) != -fixed24Max-1 {
		t.Fatal("negative saturation wrong")
	}
	if p.QuantizeOne(math.NaN()) != 0 {
		t.Fatal("NaN should quantize to 0")
	}
}

func TestFixed24RoundTripBound(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		data := make([]float64, 32)
		for i := range data {
			data[i] = (r.Float64() - 0.5) * 2000
		}
		p := CalibrateFixed24(data)
		rt := p.RoundTrip(data)
		bound := p.MaxRoundTripError() + 1e-15
		for i := range data {
			if math.Abs(rt[i]-data[i]) > bound {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestFixed24MuchFinerThanInt8(t *testing.T) {
	data := make([]float64, 100)
	for i := range data {
		data[i] = float64(i) / 7
	}
	p24 := CalibrateFixed24(data)
	p8 := CalibrateAffine(data)
	if p24.MaxRoundTripError()*1000 > p8.Scale/2 {
		t.Fatalf("24-bit grid (%g) should be orders finer than INT8 (%g)",
			p24.MaxRoundTripError(), p8.Scale/2)
	}
}
