package quant

import "math"

// Fixed24Params describes the 24-bit fixed-point representation of an image
// DSP (§2.1: "most image DSPs only support computation in 24-bit"). Values
// quantize onto a signed 24-bit grid scaled to the calibrated range —
// far finer than INT8 (2^23 steps vs 2^7) but still inexact, which places a
// DSP between the FP32 GPU and the INT8 Edge TPU in SHMT's accuracy
// ordering.
type Fixed24Params struct {
	Scale float64
}

// fixed24Max is the largest signed 24-bit magnitude.
const fixed24Max = 1<<23 - 1

// CalibrateFixed24 derives the scale covering the data's absolute range.
// Zero-range input yields scale 1.
func CalibrateFixed24(data []float64) Fixed24Params {
	var absMax float64
	for _, v := range data {
		if a := math.Abs(v); a > absMax && !math.IsInf(a, 0) && !math.IsNaN(a) {
			absMax = a
		}
	}
	if absMax == 0 {
		return Fixed24Params{Scale: 1}
	}
	return Fixed24Params{Scale: absMax / fixed24Max}
}

// QuantizeOne converts one value to its 24-bit code with saturation.
func (p Fixed24Params) QuantizeOne(v float64) int32 {
	if math.IsNaN(v) {
		return 0
	}
	q := math.RoundToEven(v / p.Scale)
	if q > fixed24Max {
		q = fixed24Max
	}
	if q < -fixed24Max-1 {
		q = -fixed24Max - 1
	}
	return int32(q)
}

// DequantizeOne converts a 24-bit code back to a real value.
func (p Fixed24Params) DequantizeOne(q int32) float64 { return float64(q) * p.Scale }

// RoundTrip pushes data through the 24-bit grid.
func (p Fixed24Params) RoundTrip(data []float64) []float64 {
	out := make([]float64, len(data))
	for i, v := range data {
		out[i] = p.DequantizeOne(p.QuantizeOne(v))
	}
	return out
}

// MaxRoundTripError is half a quantization step for in-range values.
func (p Fixed24Params) MaxRoundTripError() float64 { return p.Scale / 2 }
