package vop

import (
	"strings"
	"testing"

	"shmt/internal/tensor"
)

func TestOpcodeNamesMatchTable1(t *testing.T) {
	want := map[Opcode]string{
		OpAdd: "add", OpSub: "sub", OpMultiply: "multiply", OpLog: "log",
		OpSqrt: "sqrt", OpRsqrt: "rsqrt", OpTanh: "tanh", OpRelu: "relu",
		OpMax: "max", OpMin: "min", OpReduceSum: "reduce_sum",
		OpReduceAverage: "reduce_average", OpReduceMax: "reduce_max",
		OpReduceMin: "reduce_min", OpReduceHist256: "reduce_hist256",
		OpParabolicPDE: "parabolic_PDE", OpConv: "conv", OpGEMM: "GEMM",
		OpDCT8x8: "DCT8x8", OpFDWT97: "FDWT97", OpFFT: "FFT",
		OpLaplacian: "Laplacian", OpMeanFilter: "Mean_Filter",
		OpSobel: "Sobel", OpSRAD: "SRAD", OpStencil: "stencil",
	}
	for op, name := range want {
		if op.String() != name {
			t.Errorf("%d String = %q want %q", int(op), op.String(), name)
		}
	}
	if !strings.Contains(OpInvalid.String(), "Opcode(") {
		t.Errorf("invalid opcode String = %q", OpInvalid.String())
	}
}

func TestAllCoversEveryOpcodeOnce(t *testing.T) {
	seen := map[Opcode]bool{}
	for _, op := range All() {
		if seen[op] {
			t.Fatalf("%s listed twice", op)
		}
		seen[op] = true
	}
	if len(seen) != 26 {
		t.Fatalf("All() has %d opcodes, want 26 (Table 1)", len(seen))
	}
}

// TestParseRoundTripsEveryOpcode: Parse(op.String()) must return op for all
// 26 opcodes, in printed, lower, and upper spellings — Parse is the wire
// format's entry point (shmt.ParseOp, the HTTP server, the CLIs).
func TestParseRoundTripsEveryOpcode(t *testing.T) {
	for _, op := range All() {
		name := op.String()
		for _, spelling := range []string{name, strings.ToLower(name), strings.ToUpper(name)} {
			got, ok := Parse(spelling)
			if !ok {
				t.Errorf("Parse(%q) not found", spelling)
				continue
			}
			if got != op {
				t.Errorf("Parse(%q) = %s, want %s", spelling, got, op)
			}
		}
	}
}

func TestParseRejectsUnknownNames(t *testing.T) {
	for _, bad := range []string{"", "nope", "add ", " add", "Opcode(3)", "gem", "addmultiply"} {
		if op, ok := Parse(bad); ok {
			t.Errorf("Parse(%q) = %s, want not-found", bad, op)
		}
	}
	// The not-found opcode must be the invalid zero value, so callers that
	// ignore ok still can't execute anything.
	if op, _ := Parse("nope"); op != OpInvalid {
		t.Errorf("Parse miss returned %s, want OpInvalid", op)
	}
}

func TestParallelizationModels(t *testing.T) {
	vectorOps := []Opcode{OpAdd, OpLog, OpReduceSum, OpReduceHist256, OpParabolicPDE}
	for _, op := range vectorOps {
		if op.Model() != Vector {
			t.Errorf("%s should be vector-model", op)
		}
	}
	tileOps := []Opcode{OpGEMM, OpConv, OpDCT8x8, OpFDWT97, OpFFT, OpSobel, OpSRAD, OpStencil}
	for _, op := range tileOps {
		if op.Model() != Tile {
			t.Errorf("%s should be tile-model", op)
		}
	}
	if Vector.String() != "vector" || Tile.String() != "tile" {
		t.Fatal("model names wrong")
	}
}

func TestReductionsAndHalos(t *testing.T) {
	for _, op := range []Opcode{OpReduceSum, OpReduceAverage, OpReduceMax, OpReduceMin, OpReduceHist256} {
		if !op.IsReduction() {
			t.Errorf("%s should be a reduction", op)
		}
	}
	if OpAdd.IsReduction() || OpGEMM.IsReduction() {
		t.Fatal("non-reduction reported as reduction")
	}
	for _, op := range []Opcode{OpSobel, OpLaplacian, OpMeanFilter, OpStencil, OpConv} {
		if op.Halo() != 1 {
			t.Errorf("%s halo = %d want 1", op, op.Halo())
		}
	}
	if OpSRAD.Halo() != 2 {
		t.Errorf("SRAD halo = %d want 2 (coefficient neighbourhood)", OpSRAD.Halo())
	}
	if OpAdd.Halo() != 0 || OpFFT.Halo() != 0 || OpGEMM.Halo() != 0 {
		t.Fatal("halo-less op reports a halo")
	}
}

func TestNumInputs(t *testing.T) {
	two := []Opcode{OpAdd, OpSub, OpMultiply, OpMax, OpMin, OpGEMM, OpConv, OpParabolicPDE, OpStencil}
	for _, op := range two {
		if op.NumInputs() != 2 {
			t.Errorf("%s NumInputs = %d want 2", op, op.NumInputs())
		}
	}
	one := []Opcode{OpLog, OpSobel, OpFFT, OpReduceSum, OpDCT8x8}
	for _, op := range one {
		if op.NumInputs() != 1 {
			t.Errorf("%s NumInputs = %d want 1", op, op.NumInputs())
		}
	}
}

func TestNewValidatesArity(t *testing.T) {
	m := tensor.NewMatrix(8, 8)
	if _, err := New(OpAdd, m); err == nil {
		t.Fatal("add with one input should fail")
	}
	if _, err := New(OpSobel, m, m); err == nil {
		t.Fatal("sobel with two inputs should fail")
	}
	if _, err := New(OpSobel, m); err != nil {
		t.Fatalf("valid sobel rejected: %v", err)
	}
}

func TestNewValidatesShapes(t *testing.T) {
	a := tensor.NewMatrix(8, 8)
	b := tensor.NewMatrix(8, 9)
	if _, err := New(OpAdd, a, b); err == nil {
		t.Fatal("shape mismatch should fail")
	}
	if _, err := New(OpAdd, a, nil); err == nil {
		t.Fatal("nil input should fail")
	}
	if _, err := New(OpSobel, tensor.NewMatrix(0, 0)); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestNewValidatesGEMM(t *testing.T) {
	a := tensor.NewMatrix(4, 6)
	b := tensor.NewMatrix(6, 3)
	v, err := New(OpGEMM, a, b)
	if err != nil {
		t.Fatal(err)
	}
	r, c := v.OutputShape()
	if r != 4 || c != 3 {
		t.Fatalf("GEMM output %dx%d", r, c)
	}
	if _, err := New(OpGEMM, a, tensor.NewMatrix(5, 3)); err == nil {
		t.Fatal("inner-dimension mismatch should fail")
	}
}

func TestNewValidatesConvKernel(t *testing.T) {
	img := tensor.NewMatrix(16, 16)
	if _, err := New(OpConv, img, tensor.NewMatrix(3, 3)); err != nil {
		t.Fatalf("odd square kernel rejected: %v", err)
	}
	if _, err := New(OpConv, img, tensor.NewMatrix(2, 2)); err == nil {
		t.Fatal("even kernel should fail")
	}
	if _, err := New(OpConv, img, tensor.NewMatrix(3, 5)); err == nil {
		t.Fatal("non-square kernel should fail")
	}
}

func TestNewValidatesDCTAlignment(t *testing.T) {
	if _, err := New(OpDCT8x8, tensor.NewMatrix(16, 16)); err != nil {
		t.Fatalf("aligned DCT rejected: %v", err)
	}
	if _, err := New(OpDCT8x8, tensor.NewMatrix(12, 16)); err == nil {
		t.Fatal("unaligned DCT should fail")
	}
}

func TestNewValidatesFFTPow2(t *testing.T) {
	if _, err := New(OpFFT, tensor.NewMatrix(4, 16)); err != nil {
		t.Fatalf("pow2 FFT rejected: %v", err)
	}
	if _, err := New(OpFFT, tensor.NewMatrix(4, 12)); err == nil {
		t.Fatal("non-pow2 FFT should fail")
	}
}

func TestOutputShapes(t *testing.T) {
	m := tensor.NewMatrix(8, 16)
	cases := []struct {
		op   Opcode
		r, c int
	}{
		{OpSobel, 8, 16},
		{OpReduceSum, 1, 1},
		{OpReduceAverage, 1, 1},
		{OpReduceHist256, 1, 256},
		{OpFFT, 8, 16},
	}
	for _, cse := range cases {
		v, err := New(cse.op, m)
		if err != nil {
			t.Fatalf("%s: %v", cse.op, err)
		}
		r, c := v.OutputShape()
		if r != cse.r || c != cse.c {
			t.Errorf("%s output %dx%d want %dx%d", cse.op, r, c, cse.r, cse.c)
		}
	}
}

func TestAttrs(t *testing.T) {
	v, err := New(OpSRAD, tensor.NewMatrix(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if v.Attr("lambda", 0.5) != 0.5 {
		t.Fatal("default attr wrong")
	}
	v.SetAttr("lambda", 0.1)
	if v.Attr("lambda", 0.5) != 0.1 {
		t.Fatal("set attr not returned")
	}
	var nilAttrs *VOP = &VOP{Op: OpSobel}
	if nilAttrs.Attr("x", 3) != 3 {
		t.Fatal("nil attrs default wrong")
	}
	nilAttrs.SetAttr("x", 4)
	if nilAttrs.Attr("x", 3) != 4 {
		t.Fatal("SetAttr on nil map failed")
	}
}

func TestValidateUnknownOpcode(t *testing.T) {
	v := &VOP{Op: Opcode(999), Inputs: []*tensor.Matrix{tensor.NewMatrix(2, 2)}}
	if err := v.Validate(); err == nil {
		t.Fatal("unknown opcode should fail validation")
	}
}

func TestHaloWidthAndWorkFactor(t *testing.T) {
	m := tensor.NewMatrix(8, 8)
	v, err := New(OpStencil, m, tensor.NewMatrix(8, 8))
	if err != nil {
		t.Fatal(err)
	}
	if v.HaloWidth() != 1 || v.WorkFactor() != 1 {
		t.Fatal("single-step stencil defaults wrong")
	}
	v.SetAttr("steps", 4)
	if v.HaloWidth() != 4 {
		t.Fatalf("halo = %d want 4", v.HaloWidth())
	}
	if v.WorkFactor() != 4 {
		t.Fatalf("work = %g want 4", v.WorkFactor())
	}

	d, err := New(OpFDWT97, m)
	if err != nil {
		t.Fatal(err)
	}
	d.SetAttr("levels", 3)
	// 1 + 1/4 + 1/16 = 1.3125
	if got := d.WorkFactor(); got < 1.31 || got > 1.32 {
		t.Fatalf("DWT work factor = %g", got)
	}
	if d.HaloWidth() != 0 {
		t.Fatal("DWT tiles transform independently; no halo")
	}
	s, _ := New(OpSobel, m)
	if s.WorkFactor() != 1 {
		t.Fatal("non-iterative ops have unit work factor")
	}
}
