// Package vop defines SHMT's virtual operations (VOPs): the
// hardware-independent opcode set through which programs offload computation
// to the virtual SHMT device (§3.2.1 and Table 1 of the paper).
//
// A VOP carries no assumption about input size; the runtime partitions it
// into device-sized HLOPs according to its parallelization model, which is
// either element-wise vector processing or tile-wise matrix processing.
package vop

import (
	"fmt"
	"strings"

	"shmt/internal/tensor"
)

// Model is a VOP's parallelization model (the two "tiling processing model
// types" of Table 1).
type Model int

const (
	// Vector VOPs partition element-wise into contiguous page-aligned chunks.
	Vector Model = iota
	// Tile VOPs partition into square (or row-band) matrix tiles.
	Tile
)

func (m Model) String() string {
	switch m {
	case Vector:
		return "vector"
	case Tile:
		return "tile"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// Opcode identifies a virtual operation.
type Opcode int

// The VOP set of Table 1. Vector-model opcodes first, then tile-model ones.
const (
	OpInvalid Opcode = iota

	// Vector processing model.
	OpAdd
	OpSub
	OpMultiply
	OpLog
	OpSqrt
	OpRsqrt
	OpTanh
	OpRelu
	OpMax
	OpMin
	OpReduceSum
	OpReduceAverage
	OpReduceMax
	OpReduceMin
	OpReduceHist256
	OpParabolicPDE // Black-Scholes parabolic PDE solve

	// Tile (matrix) processing model.
	OpConv
	OpGEMM
	OpDCT8x8
	OpFDWT97
	OpFFT
	OpLaplacian
	OpMeanFilter
	OpSobel
	OpSRAD
	OpStencil // Hotspot thermal stencil
)

var opNames = map[Opcode]string{
	OpAdd:           "add",
	OpSub:           "sub",
	OpMultiply:      "multiply",
	OpLog:           "log",
	OpSqrt:          "sqrt",
	OpRsqrt:         "rsqrt",
	OpTanh:          "tanh",
	OpRelu:          "relu",
	OpMax:           "max",
	OpMin:           "min",
	OpReduceSum:     "reduce_sum",
	OpReduceAverage: "reduce_average",
	OpReduceMax:     "reduce_max",
	OpReduceMin:     "reduce_min",
	OpReduceHist256: "reduce_hist256",
	OpParabolicPDE:  "parabolic_PDE",
	OpConv:          "conv",
	OpGEMM:          "GEMM",
	OpDCT8x8:        "DCT8x8",
	OpFDWT97:        "FDWT97",
	OpFFT:           "FFT",
	OpLaplacian:     "Laplacian",
	OpMeanFilter:    "Mean_Filter",
	OpSobel:         "Sobel",
	OpSRAD:          "SRAD",
	OpStencil:       "stencil",
}

func (op Opcode) String() string {
	if s, ok := opNames[op]; ok {
		return s
	}
	return fmt.Sprintf("Opcode(%d)", int(op))
}

// opsByLowerName inverts opNames for Parse, case-folded so wire formats can
// spell "gemm" or "GEMM" alike.
var opsByLowerName = func() map[string]Opcode {
	m := make(map[string]Opcode, len(opNames))
	for op, n := range opNames {
		m[strings.ToLower(n)] = op
	}
	return m
}()

// Parse returns the opcode whose String form is name (case-insensitive).
func Parse(name string) (Opcode, bool) {
	op, ok := opsByLowerName[strings.ToLower(name)]
	return op, ok
}

// Model returns the parallelization model of the opcode.
func (op Opcode) Model() Model {
	if op >= OpConv {
		return Tile
	}
	return Vector
}

// IsReduction reports whether the opcode aggregates its input into a small
// output (so its partitions combine by merging partial results rather than
// by strided copies).
func (op Opcode) IsReduction() bool {
	switch op {
	case OpReduceSum, OpReduceAverage, OpReduceMax, OpReduceMin, OpReduceHist256:
		return true
	}
	return false
}

// Halo returns the number of neighbouring cells each side of a tile the
// opcode needs (stencil radius). Zero means partitions are independent.
func (op Opcode) Halo() int {
	switch op {
	case OpLaplacian, OpSobel, OpStencil, OpMeanFilter, OpConv:
		return 1
	case OpSRAD:
		// SRAD's update reads the diffusion coefficient at south/east
		// neighbours, and the coefficient itself is a radius-1 function of
		// the intensities — an effective radius of 2.
		return 2
	}
	return 0
}

// NumInputs returns how many input tensors the opcode consumes.
func (op Opcode) NumInputs() int {
	switch op {
	case OpAdd, OpSub, OpMultiply, OpMax, OpMin, OpGEMM, OpConv:
		return 2
	case OpParabolicPDE:
		return 2 // spot prices, strike prices
	case OpStencil:
		return 2 // temperature, power
	}
	return 1
}

// All lists every opcode in Table 1 order (vector ops, then tile ops).
func All() []Opcode {
	return []Opcode{
		OpAdd, OpSub, OpMultiply, OpLog, OpSqrt, OpRsqrt, OpTanh, OpRelu,
		OpMax, OpMin, OpReduceSum, OpReduceAverage, OpReduceMax, OpReduceMin,
		OpReduceHist256, OpParabolicPDE,
		OpConv, OpGEMM, OpDCT8x8, OpFDWT97, OpFFT, OpLaplacian, OpMeanFilter,
		OpSobel, OpSRAD, OpStencil,
	}
}

// VOP is one virtual operation: an opcode applied to input tensors, with
// optional scalar attributes (e.g. SRAD's diffusion coefficient, Hotspot's
// time step). The output shape always matches Inputs[0] except for
// reductions.
type VOP struct {
	Op     Opcode
	Inputs []*tensor.Matrix
	Attrs  map[string]float64

	// CriticalFraction is the application-provided top-K% hint for QAWS's
	// application-dependent policy (§3.5): the fraction of input partitions
	// that are generally critical to the result. Zero means "use the policy
	// default".
	CriticalFraction float64

	// DeadlinePressure (0..1) is the serving layer's deadline urgency: how
	// close the request's timeout is to the server's critical-deadline
	// threshold. QAWS raises the effective critical fraction with it (and
	// tightens criticality ceilings), so tight-deadline work keeps
	// high-accuracy devices. It participates in the plan-cache key, so
	// callers should quantize it (the serving layer uses 1/16 steps).
	DeadlinePressure float64

	// TraceID, when set, links this VOP to a serving-layer request trace.
	// The engine stamps it onto the device-lane spans of every HLOP
	// partitioned from this VOP, so a request can be followed into the
	// engine in the Perfetto export.
	TraceID string
}

// New builds a VOP and validates its arity and shapes.
func New(op Opcode, inputs ...*tensor.Matrix) (*VOP, error) {
	v := &VOP{Op: op, Inputs: inputs, Attrs: map[string]float64{}}
	if err := v.Validate(); err != nil {
		return nil, err
	}
	return v, nil
}

// Validate checks arity and input-shape agreement.
func (v *VOP) Validate() error {
	if _, ok := opNames[v.Op]; !ok {
		return fmt.Errorf("vop: unknown opcode %d", int(v.Op))
	}
	want := v.Op.NumInputs()
	if len(v.Inputs) != want {
		return fmt.Errorf("vop: %s wants %d inputs, got %d", v.Op, want, len(v.Inputs))
	}
	for i, in := range v.Inputs {
		if in == nil {
			return fmt.Errorf("vop: %s input %d is nil", v.Op, i)
		}
		if in.Len() == 0 {
			return fmt.Errorf("vop: %s input %d is empty", v.Op, i)
		}
	}
	if v.Op == OpGEMM {
		a, b := v.Inputs[0], v.Inputs[1]
		if a.Cols != b.Rows {
			return fmt.Errorf("vop: GEMM inner dimensions %d and %d differ", a.Cols, b.Rows)
		}
		return nil
	}
	if v.Op == OpConv {
		k := v.Inputs[1]
		if k.Rows != k.Cols || k.Rows%2 == 0 {
			return fmt.Errorf("vop: conv kernel must be odd square, got %dx%d", k.Rows, k.Cols)
		}
		return nil
	}
	for i := 1; i < len(v.Inputs); i++ {
		if v.Inputs[i].Rows != v.Inputs[0].Rows || v.Inputs[i].Cols != v.Inputs[0].Cols {
			return fmt.Errorf("vop: %s input %d shape %dx%d differs from input 0 %dx%d",
				v.Op, i, v.Inputs[i].Rows, v.Inputs[i].Cols, v.Inputs[0].Rows, v.Inputs[0].Cols)
		}
	}
	if v.Op == OpDCT8x8 {
		if v.Inputs[0].Rows%8 != 0 || v.Inputs[0].Cols%8 != 0 {
			return fmt.Errorf("vop: DCT8x8 input %dx%d not a multiple of 8", v.Inputs[0].Rows, v.Inputs[0].Cols)
		}
	}
	if v.Op == OpFFT {
		if !isPow2(v.Inputs[0].Cols) {
			return fmt.Errorf("vop: FFT row length %d not a power of two", v.Inputs[0].Cols)
		}
	}
	return nil
}

// Attr returns the named attribute or def when absent.
func (v *VOP) Attr(name string, def float64) float64 {
	if v.Attrs == nil {
		return def
	}
	if x, ok := v.Attrs[name]; ok {
		return x
	}
	return def
}

// SetAttr stores a scalar attribute, allocating the map if needed.
func (v *VOP) SetAttr(name string, x float64) {
	if v.Attrs == nil {
		v.Attrs = map[string]float64{}
	}
	v.Attrs[name] = x
}

// HaloWidth returns the stencil halo this VOP's partitions must carry:
// the opcode's radius, widened by iterative attributes (the stencil VOP's
// "steps" needs a pyramid of `steps` halo rings for its partitions to stay
// independent).
func (v *VOP) HaloWidth() int {
	h := v.Op.Halo()
	if v.Op == OpStencil {
		if s := int(v.Attr("steps", 1)); s > 1 {
			h *= s
		}
	}
	return h
}

// WorkFactor returns the per-element work multiplier implied by iterative
// attributes: the stencil VOP's "steps" sweeps the grid that many times, and
// each extra DWT level re-transforms a quarter of the previous level. The
// cost model multiplies element counts by this factor.
func (v *VOP) WorkFactor() float64 {
	switch v.Op {
	case OpStencil:
		if s := v.Attr("steps", 1); s > 1 {
			return s
		}
	case OpFDWT97:
		if l := int(v.Attr("levels", 1)); l > 1 {
			f, scale := 0.0, 1.0
			for i := 0; i < l; i++ {
				f += scale
				scale /= 4
			}
			return f
		}
	}
	return 1
}

// OutputShape returns the rows and cols of the VOP's result.
func (v *VOP) OutputShape() (rows, cols int) {
	in := v.Inputs[0]
	switch {
	case v.Op == OpGEMM:
		return in.Rows, v.Inputs[1].Cols
	case v.Op == OpReduceHist256:
		return 1, 256
	case v.Op.IsReduction():
		return 1, 1
	default:
		return in.Rows, in.Cols
	}
}

func isPow2(n int) bool { return n > 0 && n&(n-1) == 0 }
