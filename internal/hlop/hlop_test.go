package hlop

import (
	"math/rand"
	"testing"
	"testing/quick"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

func mkVOP(t *testing.T, op vop.Opcode, inputs ...*tensor.Matrix) *vop.VOP {
	t.Helper()
	v, err := vop.New(op, inputs...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func filled(rows, cols int, seed int64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// coverage checks that HLOP regions tile the VOP's output space exactly once.
func coverage(t *testing.T, v *vop.VOP, hs []*HLOP) {
	t.Helper()
	rows, cols := v.OutputShape()
	if v.Op.IsReduction() {
		// Reductions cover the *input*: regions tile inputs[0].
		rows, cols = v.Inputs[0].Rows, v.Inputs[0].Cols
	}
	seen := make([]int, rows*cols)
	for _, h := range hs {
		for i := h.Region.Row; i < h.Region.Row+h.Region.Height; i++ {
			for j := h.Region.Col; j < h.Region.Col+h.Region.Width; j++ {
				seen[i*cols+j]++
			}
		}
	}
	for idx, n := range seen {
		if n != 1 {
			t.Fatalf("cell (%d,%d) covered %d times", idx/cols, idx%cols, n)
		}
	}
}

func TestVectorPartitioning(t *testing.T) {
	v := mkVOP(t, vop.OpSqrt, filled(256, 64, 1))
	hs, err := Partition(v, Spec{TargetPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	if len(hs) != 16 {
		t.Fatalf("partitions = %d want 16", len(hs))
	}
	coverage(t, v, hs)
	for _, h := range hs {
		if h.Region.Width != 64 {
			t.Fatal("vector partitions must be full-width row bands")
		}
		if h.Elems != h.Region.Len() {
			t.Fatal("elems should equal region size")
		}
	}
}

func TestVectorPageGranularity(t *testing.T) {
	// §3.4: vector partitions must contain at least 1024 elements.
	v := mkVOP(t, vop.OpSqrt, filled(128, 32, 2)) // 4096 elements total
	hs, err := Partition(v, Spec{TargetPartitions: 64})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs[:len(hs)-1] { // the final remainder band may be short
		if h.Elems < 1024 {
			t.Fatalf("partition with %d elements violates the page floor", h.Elems)
		}
	}
	coverage(t, v, hs)
}

func TestTilePartitioning(t *testing.T) {
	v := mkVOP(t, vop.OpSobel, filled(256, 256, 3))
	hs, err := Partition(v, Spec{TargetPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, v, hs)
	src := v.Inputs[0]
	for _, h := range hs {
		// Stencil partitions carry a 1-cell halo, truncated at the matrix
		// edges so block boundaries coincide with true boundaries.
		wantTop, wantLeft := 1, 1
		if h.Region.Row == 0 {
			wantTop = 0
		}
		if h.Region.Col == 0 {
			wantLeft = 0
		}
		wantBottom, wantRight := 1, 1
		if h.Region.Row+h.Region.Height == src.Rows {
			wantBottom = 0
		}
		if h.Region.Col+h.Region.Width == src.Cols {
			wantRight = 0
		}
		if h.Inputs[0].Rows != h.Region.Height+wantTop+wantBottom ||
			h.Inputs[0].Cols != h.Region.Width+wantLeft+wantRight {
			t.Fatalf("halo wrong: input %dx%d for region %v", h.Inputs[0].Rows, h.Inputs[0].Cols, h.Region)
		}
		if h.Interior.Row != wantTop || h.Interior.Col != wantLeft {
			t.Fatal("interior offset wrong")
		}
	}
}

func TestHaloContentMatchesSource(t *testing.T) {
	src := filled(64, 64, 4)
	v := mkVOP(t, vop.OpLaplacian, src)
	hs, err := Partition(v, Spec{TargetPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	// Every interior cell of every partition equals the source cell.
	for _, h := range hs {
		for i := 0; i < h.Region.Height; i++ {
			for j := 0; j < h.Region.Width; j++ {
				got := h.Inputs[0].At(h.Interior.Row+i, h.Interior.Col+j)
				want := src.At(h.Region.Row+i, h.Region.Col+j)
				if got != want {
					t.Fatalf("interior mismatch at %d,%d", i, j)
				}
			}
		}
	}
}

func TestDCTTilesAligned(t *testing.T) {
	v := mkVOP(t, vop.OpDCT8x8, filled(128, 128, 5))
	hs, err := Partition(v, Spec{TargetPartitions: 10})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, v, hs)
	for _, h := range hs {
		if h.Region.Row%8 != 0 || h.Region.Col%8 != 0 || h.Region.Height%8 != 0 || h.Region.Width%8 != 0 {
			t.Fatalf("DCT tile %v not 8-aligned", h.Region)
		}
	}
}

func TestFFTPartitionsKeepRows(t *testing.T) {
	v := mkVOP(t, vop.OpFFT, filled(64, 128, 6))
	hs, err := Partition(v, Spec{TargetPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, v, hs)
	for _, h := range hs {
		if h.Region.Width != 128 || h.Region.Col != 0 {
			t.Fatal("FFT partitions must keep whole rows")
		}
	}
}

func TestGEMMPartitioning(t *testing.T) {
	a := filled(64, 32, 7)
	b := filled(32, 48, 8)
	v := mkVOP(t, vop.OpGEMM, a, b)
	hs, err := Partition(v, Spec{TargetPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	coverage(t, v, hs)
	for _, h := range hs {
		if h.Inputs[1] != b {
			t.Fatal("GEMM partitions must share the full B matrix")
		}
		if h.Inputs[0].Cols != 32 {
			t.Fatal("A band has wrong width")
		}
		if h.Region.Width != 48 {
			t.Fatal("output band must span B's columns")
		}
	}
}

func TestPartitionInvalidVOP(t *testing.T) {
	v := &vop.VOP{Op: vop.OpAdd, Inputs: []*tensor.Matrix{filled(4, 4, 1)}}
	if _, err := Partition(v, Spec{}); err == nil {
		t.Fatal("invalid VOP should fail to partition")
	}
}

func TestSplitRowBand(t *testing.T) {
	src := filled(64, 64, 9)
	v := mkVOP(t, vop.OpSobel, src)
	hs, err := Partition(v, Spec{TargetPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := hs[0]
	h.Critical = true
	h.AssignedQueue = 2
	a, b, err := Split(h, 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.ID != h.ID || b.ID != 99 {
		t.Fatalf("split ids = %d/%d", a.ID, b.ID)
	}
	if a.Region.Len()+b.Region.Len() != h.Region.Len() {
		t.Fatal("split lost elements")
	}
	if !a.Critical || a.AssignedQueue != 2 || !b.Critical {
		t.Fatal("split must inherit policy decisions")
	}
	// Both halves re-extract valid data from the parent.
	for _, half := range []*HLOP{a, b} {
		got := half.Inputs[0].At(half.Interior.Row, half.Interior.Col)
		want := src.At(half.Region.Row, half.Region.Col)
		if got != want {
			t.Fatal("split half data wrong")
		}
	}
}

func TestSplitGEMM(t *testing.T) {
	a := filled(16, 8, 10)
	b := filled(8, 12, 11)
	v := mkVOP(t, vop.OpGEMM, a, b)
	hs, _ := Partition(v, Spec{TargetPartitions: 2})
	x, y, err := Split(hs[0], 50)
	if err != nil {
		t.Fatal(err)
	}
	if x.Region.Height+y.Region.Height != hs[0].Region.Height {
		t.Fatal("GEMM split lost rows")
	}
	one := filled(1, 8, 12)
	single := &HLOP{Op: vop.OpGEMM, Parent: v, Region: tensor.Region{Height: 1, Width: 12}, Inputs: []*tensor.Matrix{one, b}}
	if _, _, err := Split(single, 51); err == nil {
		t.Fatal("1-row GEMM band should refuse to split")
	}
}

func TestSplitSingleElementFails(t *testing.T) {
	v := mkVOP(t, vop.OpSobel, filled(8, 8, 13))
	h := &HLOP{Op: vop.OpSobel, Parent: v, Region: tensor.Region{Row: 0, Col: 0, Height: 1, Width: 1}}
	if _, _, err := Split(h, 1); err == nil {
		t.Fatal("unit region should refuse to split")
	}
}

func TestSplitFFTKeepsRows(t *testing.T) {
	v := mkVOP(t, vop.OpFFT, filled(8, 64, 14))
	hs, _ := Partition(v, Spec{TargetPartitions: 2})
	a, b, err := Split(hs[0], 20)
	if err != nil {
		t.Fatal(err)
	}
	if a.Region.Width != 64 || b.Region.Width != 64 {
		t.Fatal("FFT split must keep whole rows")
	}
	single := &HLOP{Op: vop.OpFFT, Parent: v, Region: tensor.Region{Height: 1, Width: 64}, Inputs: hs[0].Inputs}
	if _, _, err := Split(single, 21); err == nil {
		t.Fatal("single FFT row should refuse to split")
	}
}

func TestOutputBytes(t *testing.T) {
	v := mkVOP(t, vop.OpReduceHist256, filled(32, 32, 15))
	hs, _ := Partition(v, Spec{TargetPartitions: 2})
	if hs[0].OutputBytes(8) != 256*8 {
		t.Fatalf("histogram partial bytes = %d", hs[0].OutputBytes(8))
	}
	v2 := mkVOP(t, vop.OpSobel, filled(32, 32, 16))
	hs2, _ := Partition(v2, Spec{TargetPartitions: 2})
	if hs2[0].OutputBytes(4) != hs2[0].Region.Bytes(4) {
		t.Fatal("map-op output bytes should match the region")
	}
}

// Property: partitioning any supported op at any size yields exact coverage
// with positive element counts.
func TestPropertyPartitionCoverage(t *testing.T) {
	ops := []vop.Opcode{vop.OpSqrt, vop.OpSobel, vop.OpMeanFilter, vop.OpFFT, vop.OpDCT8x8, vop.OpReduceSum}
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		op := ops[r.Intn(len(ops))]
		rows := 8 * (1 + r.Intn(12))
		cols := rows
		if op == vop.OpFFT {
			cols = 1 << (3 + r.Intn(4))
		}
		m := filled(rows, cols, seed)
		if op == vop.OpSqrt {
			for i := range m.Data {
				if m.Data[i] < 0 {
					m.Data[i] = -m.Data[i]
				}
			}
		}
		v, err := vop.New(op, m)
		if err != nil {
			return false
		}
		hs, err := Partition(v, Spec{TargetPartitions: 1 + r.Intn(20), MinVectorElems: 64, MinTile: 8})
		if err != nil {
			return false
		}
		seen := make([]int, rows*cols)
		for _, h := range hs {
			if h.Elems <= 0 {
				return false
			}
			for i := h.Region.Row; i < h.Region.Row+h.Region.Height; i++ {
				for j := h.Region.Col; j < h.Region.Col+h.Region.Width; j++ {
					seen[i*cols+j]++
				}
			}
		}
		for _, n := range seen {
			if n != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiStepStencilHalo(t *testing.T) {
	src := filled(64, 64, 40)
	power := filled(64, 64, 41)
	v, err := vop.New(vop.OpStencil, src, power)
	if err != nil {
		t.Fatal(err)
	}
	v.SetAttr("steps", 3)
	hs, err := Partition(v, Spec{TargetPartitions: 4, MinTile: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		// 64x64 into 4 tiles: every tile touches two matrix edges, so the
		// 3-cell multi-step halo extends on exactly two sides.
		if h.Inputs[0].Rows != h.Region.Height+3 || h.Inputs[0].Cols != h.Region.Width+3 {
			t.Fatalf("halo wrong: input %dx%d for region %v", h.Inputs[0].Rows, h.Inputs[0].Cols, h.Region)
		}
		if got := h.Interior.Row; got != 0 && got != 3 {
			t.Fatalf("interior offset = %d want 0 or 3", got)
		}
	}
}

func TestInputRegionAndBytes(t *testing.T) {
	a := filled(16, 8, 60)
	b := filled(8, 24, 61)
	v := mkVOP(t, vop.OpGEMM, a, b)
	hs, err := Partition(v, Spec{TargetPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	h := hs[0]
	// GEMM samples the A band, not the (B-wide) output interior.
	reg := h.InputRegion()
	if reg.Width != 8 || reg.Height != h.Inputs[0].Rows {
		t.Fatalf("GEMM input region = %v", reg)
	}
	// Input payload covers the band plus the shared B matrix.
	wantBytes := int64(h.Inputs[0].Len()+b.Len()) * 4
	if h.InputBytes(4) != wantBytes {
		t.Fatalf("input bytes = %d want %d", h.InputBytes(4), wantBytes)
	}
	if h.String() == "" {
		t.Fatal("String should describe the HLOP")
	}

	s := mkVOP(t, vop.OpSobel, filled(16, 16, 62))
	sh, _ := Partition(s, Spec{TargetPartitions: 1, MinTile: 8})
	if sh[0].InputRegion() != sh[0].Interior {
		t.Fatal("non-GEMM input region should be the interior")
	}
}

func TestReducePartialBytes(t *testing.T) {
	avg := mkVOP(t, vop.OpReduceAverage, filled(16, 16, 63))
	hs, _ := Partition(avg, Spec{TargetPartitions: 2})
	if hs[0].OutputBytes(8) != 2*8 { // [sum, count]
		t.Fatalf("average partial bytes = %d", hs[0].OutputBytes(8))
	}
	sum := mkVOP(t, vop.OpReduceSum, filled(16, 16, 64))
	hs2, _ := Partition(sum, Spec{TargetPartitions: 2})
	if hs2[0].OutputBytes(8) != 8 {
		t.Fatalf("sum partial bytes = %d", hs2[0].OutputBytes(8))
	}
}

func TestAlignmentHelpers(t *testing.T) {
	if alignDown(13, 8) != 8 || alignDown(13, 1) != 13 {
		t.Fatal("alignDown wrong")
	}
	if maxAligned(13, 8) != 8 || maxAligned(5, 8) != 5 || maxAligned(13, 1) != 13 {
		t.Fatal("maxAligned wrong")
	}
}
