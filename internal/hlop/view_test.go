package hlop

import (
	"testing"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

func viewVOP(t *testing.T, op vop.Opcode, rows, cols int) *vop.VOP {
	t.Helper()
	inputs := make([]*tensor.Matrix, op.NumInputs())
	for k := range inputs {
		m := tensor.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = float64(i + k)
		}
		inputs[k] = m
	}
	v, err := vop.New(op, inputs...)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPartitionAliasesInputs(t *testing.T) {
	v := viewVOP(t, vop.OpRelu, 32, 16)
	hs, err := Partition(v, Spec{TargetPartitions: 4, MinVectorElems: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if !h.Inputs[0].IsView() {
			t.Fatalf("HLOP %d input is not a view", h.ID)
		}
	}
	// A write to the parent must be visible through the partition's view.
	v.Inputs[0].Set(hs[1].Region.Row, 0, -42)
	if hs[1].Inputs[0].At(0, 0) != -42 {
		t.Fatal("partition view does not alias the parent tensor")
	}
}

func TestPartitionForceCopyMaterializes(t *testing.T) {
	v := viewVOP(t, vop.OpRelu, 32, 16)
	hs, err := Partition(v, Spec{TargetPartitions: 4, MinVectorElems: 8, ForceCopy: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if h.Inputs[0].IsView() {
			t.Fatalf("ForceCopy HLOP %d still aliases", h.ID)
		}
	}
	v.Inputs[0].Set(hs[1].Region.Row, 0, -42)
	if hs[1].Inputs[0].At(0, 0) == -42 {
		t.Fatal("ForceCopy block aliases the parent tensor")
	}
}

func TestPartitionGEMMBandView(t *testing.T) {
	a := tensor.NewMatrix(24, 6)
	b := tensor.NewMatrix(6, 10)
	for i := range a.Data {
		a.Data[i] = float64(i)
	}
	v, err := vop.New(vop.OpGEMM, a, b)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := Partition(v, Spec{TargetPartitions: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if !h.Inputs[0].IsView() {
			t.Fatalf("GEMM band %d not a view", h.ID)
		}
		if h.Inputs[1] != b {
			t.Fatal("B matrix should ship aliased whole")
		}
		if h.Inputs[0].Cols != a.Cols {
			t.Fatal("band width must cover all of A's columns")
		}
	}
}

func TestHaloPartitionsStayMaterialized(t *testing.T) {
	v := viewVOP(t, vop.OpSobel, 32, 32)
	hs, err := Partition(v, Spec{TargetPartitions: 4, MinTile: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if h.Inputs[0].IsView() {
			t.Fatalf("halo HLOP %d must materialize its block", h.ID)
		}
	}
}

func TestSplitPreservesRepresentation(t *testing.T) {
	for _, forceCopy := range []bool{false, true} {
		v := viewVOP(t, vop.OpRelu, 64, 16)
		hs, err := Partition(v, Spec{TargetPartitions: 2, MinVectorElems: 8, ForceCopy: forceCopy})
		if err != nil {
			t.Fatal(err)
		}
		a, b, err := Split(hs[0], 100)
		if err != nil {
			t.Fatal(err)
		}
		if a.Inputs[0].IsView() == forceCopy || b.Inputs[0].IsView() == forceCopy {
			t.Fatalf("split halves changed representation (forceCopy=%v)", forceCopy)
		}
		if a.Region.Height+b.Region.Height != hs[0].Region.Height {
			t.Fatal("split halves do not cover the parent region")
		}
	}
}

func TestSplitDerivesOutputSubViews(t *testing.T) {
	v := viewVOP(t, vop.OpRelu, 64, 16)
	hs, err := Partition(v, Spec{TargetPartitions: 2, MinVectorElems: 8})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewMatrix(64, 16)
	vw, err := out.View(hs[0].Region)
	if err != nil {
		t.Fatal(err)
	}
	hs[0].Out = vw
	a, b, err := Split(hs[0], 100)
	if err != nil {
		t.Fatal(err)
	}
	if a.Out == nil || b.Out == nil {
		t.Fatal("split halves lost their output views")
	}
	// Writing through each half's Out view must land at its absolute region
	// in the VOP output.
	a.Out.Set(0, 0, 1)
	b.Out.Set(0, 0, 2)
	if out.At(a.Region.Row, a.Region.Col) != 1 || out.At(b.Region.Row, b.Region.Col) != 2 {
		t.Fatal("output sub-views misaligned with absolute regions")
	}
}

func TestSplitGEMMOutputSubViews(t *testing.T) {
	a := tensor.NewMatrix(16, 4)
	b := tensor.NewMatrix(4, 6)
	v, err := vop.New(vop.OpGEMM, a, b)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := Partition(v, Spec{TargetPartitions: 1})
	if err != nil {
		t.Fatal(err)
	}
	out := tensor.NewMatrix(16, 6)
	vw, err := out.View(hs[0].Region)
	if err != nil {
		t.Fatal(err)
	}
	hs[0].Out = vw
	x, y, err := Split(hs[0], 7)
	if err != nil {
		t.Fatal(err)
	}
	if !x.Inputs[0].IsView() || !y.Inputs[0].IsView() {
		t.Fatal("GEMM split bands should stay views")
	}
	y.Out.Set(0, 0, 9)
	if out.At(y.Region.Row, 0) != 9 {
		t.Fatal("GEMM split output view misaligned")
	}
}
