// Package hlop defines high-level operations (HLOPs): the device-sized
// partitions of a VOP that form SHMT's basic scheduling identity (§3.2.2).
//
// An HLOP shares its opcode with the parent VOP but fixes the data size and
// granularity a hardware device can support. The partitioner in this package
// implements §3.3.1's template-based dataset partition: element-wise VOPs
// split into page-aligned row bands, tile-wise VOPs into square tiles
// (≥1024×1024 at the paper's default 8192×8192 input), stencil VOPs carry a
// halo so partitions stay independent, and GEMM row-bands pair with the full
// right-hand matrix.
package hlop

import (
	"fmt"

	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// HLOP is one schedulable partition of a VOP.
type HLOP struct {
	// ID indexes the HLOP within its VOP (stable across policies).
	ID int
	// Op is the opcode, shared with the parent VOP.
	Op vop.Opcode
	// Parent is the VOP this HLOP was partitioned from; Split re-extracts
	// from it.
	Parent *vop.VOP
	// Region locates this partition's interior in the parent's input space
	// (and, except for GEMM/reductions, in the output space too).
	Region tensor.Region
	// Inputs are the partition's data blocks, halo included where the
	// opcode needs one.
	Inputs []*tensor.Matrix
	// Interior locates the halo-free block inside Inputs[0]; for halo-less
	// opcodes it covers Inputs[0] entirely.
	Interior tensor.Region
	// Attrs are the parent VOP's scalar attributes.
	Attrs map[string]float64
	// Elems is the cost basis for ExecTime: the interior element count,
	// multiplied by the VOP's iteration work factor (vop.VOP.WorkFactor).
	Elems int

	// Criticality is the sampled criticality score (set by the policy).
	Criticality float64
	// Critical marks partitions the policy classified as critical.
	Critical bool
	// AssignedQueue is the initial device-queue index chosen by the policy.
	AssignedQueue int

	// Out, when non-nil, is a strided view into the VOP's output tensor
	// covering Region. Shared-memory devices write their result through it
	// (ExecuteInto returns Out itself), letting aggregation skip the CopyIn
	// scatter. Devices that ignore it return a fresh buffer instead, which
	// aggregation detects by Result != Out.
	Out *tensor.Matrix
	// Result holds the computed partition output after execution.
	Result *tensor.Matrix
	// ExecQueue is the queue index of the device that actually executed the
	// HLOP (differs from AssignedQueue when stolen).
	ExecQueue int
	// Finish is the virtual completion time, stamped by the engine when the
	// HLOP enters its device's completion queue.
	Finish float64
	// ReadyAt is the virtual time the HLOP became available on its current
	// queue: the scheduling overhead for the initial assignment, the
	// rerouting device's clock after a failure or quarantine. The two-stage
	// lane model uses it as the earliest instant the input transfer may
	// start. Transient like Finish — never captured into a plan.
	ReadyAt float64
}

// InputRegion returns the region of Inputs[0] a scheduler samples for
// criticality. For most opcodes that is the halo-free Interior; GEMM's
// Interior describes the *output* band (B-columns wide), so its sampling
// region is the whole A band instead.
func (h *HLOP) InputRegion() tensor.Region {
	if h.Op == vop.OpGEMM {
		return tensor.Region{Row: 0, Col: 0, Height: h.Inputs[0].Rows, Width: h.Inputs[0].Cols}
	}
	return h.Interior
}

// InputBytes returns the total payload the HLOP ships to a device with the
// given element width.
func (h *HLOP) InputBytes(elemSize int) int64 {
	var n int64
	for _, in := range h.Inputs {
		n += in.Bytes(elemSize)
	}
	return n
}

// OutputBytes returns the payload the HLOP ships back.
func (h *HLOP) OutputBytes(elemSize int) int64 {
	if h.Op.IsReduction() {
		r, c := kernelPartialShape(h.Op)
		return int64(r*c) * int64(elemSize)
	}
	if h.Op == vop.OpGEMM {
		return int64(h.Region.Height*h.Parent.Inputs[1].Cols) * int64(elemSize)
	}
	return h.Region.Bytes(elemSize)
}

func kernelPartialShape(op vop.Opcode) (int, int) {
	switch op {
	case vop.OpReduceHist256:
		return 1, 256
	case vop.OpReduceAverage:
		return 1, 2
	default:
		return 1, 1
	}
}

func (h *HLOP) String() string {
	return fmt.Sprintf("hlop{%d %s %v}", h.ID, h.Op, h.Region)
}

// Spec configures the partitioner.
type Spec struct {
	// TargetPartitions is the desired HLOP count (default 64, a few per
	// device queue times the stealing depth the paper's runtime
	// oversubscribes with).
	TargetPartitions int
	// MinVectorElems floors the size of vector-model partitions; the paper
	// requires page multiples — "each partition of floating-point data
	// inputs in the vector processing model should contain at least 1,024
	// consecutive elements" (§3.4). Default 1024.
	MinVectorElems int
	// MinTile floors tile edges (default 64; tiles grow toward 1024 with
	// input size as in §3.4). DCT8x8 tiles stay multiples of 8 regardless.
	MinTile int
	// ForceCopy disables zero-copy view aliasing: every partition
	// materializes its input blocks with strided copies, as if no device
	// shared host memory. Used by the bit-identity property tests and the
	// datapath benchmarks to compare both paths.
	ForceCopy bool
}

func (s Spec) withDefaults() Spec {
	if s.TargetPartitions <= 0 {
		s.TargetPartitions = 64
	}
	if s.MinVectorElems <= 0 {
		s.MinVectorElems = 1024
	}
	if s.MinTile <= 0 {
		s.MinTile = 64
	}
	return s
}

// Partition decomposes a VOP into HLOPs per its parallelization model.
func Partition(v *vop.VOP, spec Spec) ([]*HLOP, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	switch {
	case v.Op == vop.OpGEMM:
		return partitionGEMM(v, spec)
	case v.Op == vop.OpFFT:
		return partitionRows(v, spec, 1) // per-row transform: bands of whole rows
	case v.Op.Model() == vop.Vector:
		return partitionRows(v, spec, 1)
	default:
		return partitionTiles(v, spec)
	}
}

// partitionRows splits into full-width row bands of at least minRows rows
// and at least MinVectorElems elements.
func partitionRows(v *vop.VOP, spec Spec, minRows int) ([]*HLOP, error) {
	in := v.Inputs[0]
	rowsPer := in.Rows / spec.TargetPartitions
	if rowsPer < minRows {
		rowsPer = minRows
	}
	for rowsPer*in.Cols < spec.MinVectorElems && rowsPer < in.Rows {
		rowsPer++
	}
	var hs []*HLOP
	for r := 0; r < in.Rows; r += rowsPer {
		h := rowsPer
		if r+h > in.Rows {
			h = in.Rows - r
		}
		reg := tensor.Region{Row: r, Col: 0, Height: h, Width: in.Cols}
		hl, err := extract(v, reg, len(hs), spec.ForceCopy)
		if err != nil {
			return nil, err
		}
		hs = append(hs, hl)
	}
	return hs, nil
}

// partitionTiles splits into square-ish tiles honouring opcode alignment.
func partitionTiles(v *vop.VOP, spec Spec) ([]*HLOP, error) {
	in := v.Inputs[0]
	total := in.Rows * in.Cols
	targetElems := total / spec.TargetPartitions
	if targetElems < spec.MinTile*spec.MinTile {
		targetElems = spec.MinTile * spec.MinTile
	}
	t := intSqrt(targetElems)
	align := 1
	if v.Op == vop.OpDCT8x8 {
		align = 8
	}
	t = (t / align) * align
	if t < align {
		t = align
	}
	if t < spec.MinTile && spec.MinTile%align == 0 {
		t = spec.MinTile
	}
	if t > in.Rows {
		t = maxAligned(in.Rows, align)
	}
	if t > in.Cols {
		t = maxAligned(in.Cols, align)
	}
	if t < 1 {
		t = 1
	}
	var hs []*HLOP
	for r := 0; r < in.Rows; r += t {
		h := t
		if r+h > in.Rows {
			h = in.Rows - r
		}
		for c := 0; c < in.Cols; c += t {
			w := t
			if c+w > in.Cols {
				w = in.Cols - c
			}
			reg := tensor.Region{Row: r, Col: c, Height: h, Width: w}
			hl, err := extract(v, reg, len(hs), spec.ForceCopy)
			if err != nil {
				return nil, err
			}
			hs = append(hs, hl)
		}
	}
	return hs, nil
}

func partitionGEMM(v *vop.VOP, spec Spec) ([]*HLOP, error) {
	a := v.Inputs[0]
	rowsPer := a.Rows / spec.TargetPartitions
	if rowsPer < 1 {
		rowsPer = 1
	}
	var hs []*HLOP
	for r := 0; r < a.Rows; r += rowsPer {
		h := rowsPer
		if r+h > a.Rows {
			h = a.Rows - r
		}
		hl, err := gemmBand(v, r, h, len(hs), spec.ForceCopy)
		if err != nil {
			return nil, err
		}
		hs = append(hs, hl)
	}
	return hs, nil
}

// gemmBand builds the GEMM HLOP for rows [row, row+height) of A paired with
// the whole right-hand matrix. Its Region lives in *output* space (B-columns
// wide); the input band is A-columns wide.
func gemmBand(v *vop.VOP, row, height, id int, forceCopy bool) (*HLOP, error) {
	a, b := v.Inputs[0], v.Inputs[1]
	band, err := bandOf(a, tensor.Region{Row: row, Col: 0, Height: height, Width: a.Cols}, forceCopy)
	if err != nil {
		return nil, err
	}
	return &HLOP{
		ID:       id,
		Op:       v.Op,
		Parent:   v,
		Region:   tensor.Region{Row: row, Col: 0, Height: height, Width: b.Cols},
		Inputs:   []*tensor.Matrix{band, b},
		Interior: tensor.Region{Row: 0, Col: 0, Height: height, Width: b.Cols},
		Attrs:    v.Attrs,
		Elems:    height * b.Cols,
	}, nil
}

// bandOf returns region reg of src either as a zero-copy strided view or,
// when forceCopy is set, as a materialized block — and charges the
// corresponding datapath counter.
func bandOf(src *tensor.Matrix, reg tensor.Region, forceCopy bool) (*tensor.Matrix, error) {
	if forceCopy {
		blk, err := tensor.CopyOut(src, reg)
		if err != nil {
			return nil, err
		}
		telemetry.DatapathBytesCopied.Add(reg.Bytes(tensor.ElemSize))
		return blk, nil
	}
	blk, err := src.View(reg)
	if err != nil {
		return nil, err
	}
	telemetry.DatapathBytesAliased.Add(reg.Bytes(tensor.ElemSize))
	telemetry.DatapathCopiesAvoided.Add(1)
	return blk, nil
}

// extract builds the HLOP covering region reg of VOP v, shipping halos for
// stencil opcodes. Halo-free inputs alias the parent tensor through strided
// views unless forceCopy is set; halo blocks are always materialized because
// their clamped borders have no in-place representation.
func extract(v *vop.VOP, reg tensor.Region, id int, forceCopy bool) (*HLOP, error) {
	halo := v.HaloWidth()
	inputs := make([]*tensor.Matrix, len(v.Inputs))
	interior := tensor.Region{Row: 0, Col: 0, Height: reg.Height, Width: reg.Width}
	for i, src := range v.Inputs {
		if v.Op == vop.OpConv && i == 1 {
			inputs[i] = src // the convolution kernel ships whole
			continue
		}
		if halo > 0 {
			blk, inner, err := tensor.CopyOutHalo(src, reg, halo)
			if err != nil {
				return nil, err
			}
			telemetry.DatapathBytesCopied.Add(blk.Bytes(tensor.ElemSize))
			inputs[i] = blk
			interior = inner
		} else {
			blk, err := bandOf(src, reg, forceCopy)
			if err != nil {
				return nil, err
			}
			inputs[i] = blk
		}
	}
	return &HLOP{
		ID:       id,
		Op:       v.Op,
		Parent:   v,
		Region:   reg,
		Inputs:   inputs,
		Interior: interior,
		Attrs:    v.Attrs,
		Elems:    int(float64(reg.Len()) * v.WorkFactor()),
	}, nil
}

// Planned is one HLOP's entry in a captured execution plan: the partition
// geometry plus everything the scheduling policy decided. Data blocks are
// deliberately absent — a replay re-extracts them from the new inputs — so a
// plan stays valid across Execute calls that reuse a shape but carry
// different data.
type Planned struct {
	// Region is the partition's region (output space for GEMM, input space
	// otherwise), exactly as Partition produced it.
	Region tensor.Region
	// AssignedQueue, Criticality and Critical are the policy's decisions.
	AssignedQueue int
	Criticality   float64
	Critical      bool
}

// Capture records the replayable part of a freshly planned HLOP list.
func Capture(hs []*HLOP) []Planned {
	ps := make([]Planned, len(hs))
	for i, h := range hs {
		ps[i] = Planned{
			Region:        h.Region,
			AssignedQueue: h.AssignedQueue,
			Criticality:   h.Criticality,
			Critical:      h.Critical,
		}
	}
	return ps
}

// Replay rebuilds HLOPs from a captured plan against v's (possibly new)
// input tensors: partition geometry and the policy's assignment come from
// the plan, while data blocks — views or materialized halo copies — are
// re-extracted exactly as Partition would produce them. The caller
// guarantees the plan was captured for the same opcode, input shapes, and
// Spec (the plan cache's key pins all three).
func Replay(v *vop.VOP, spec Spec, parts []Planned) ([]*HLOP, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	spec = spec.withDefaults()
	if !spec.ForceCopy && v.Op != vop.OpGEMM && v.HaloWidth() == 0 && len(v.Inputs) <= 2 {
		return replayViews(v, parts)
	}
	hs := make([]*HLOP, len(parts))
	for i, p := range parts {
		var h *HLOP
		var err error
		if v.Op == vop.OpGEMM {
			h, err = gemmBand(v, p.Region.Row, p.Region.Height, i, spec.ForceCopy)
		} else {
			h, err = extract(v, p.Region, i, spec.ForceCopy)
		}
		if err != nil {
			return nil, fmt.Errorf("hlop: replaying partition %d: %w", i, err)
		}
		h.AssignedQueue = p.AssignedQueue
		h.Criticality = p.Criticality
		h.Critical = p.Critical
		hs[i] = h
	}
	return hs, nil
}

// replayViews is Replay's fast path for halo-free opcodes in zero-copy view
// mode — the common case on the serving path. Replay cost is dominated not by
// arithmetic but by per-partition allocation (one HLOP, one input slice, one
// view header per input), so this path lays all partitions out in one shared
// slab and rebinds views in place with ViewInto. The HLOPs it returns are
// interchangeable with extract's: engines mutate only their own slot of the
// slab, and Split re-extracts from the parent VOP.
func replayViews(v *vop.VOP, parts []Planned) ([]*HLOP, error) {
	n, k := len(parts), len(v.Inputs)
	// One slab holds every partition's HLOP, view headers and input-pointer
	// array: one allocation and one contiguous clear for the whole replay
	// (halo-free opcodes take at most two inputs).
	type slot struct {
		h    HLOP
		view [2]tensor.Matrix
		ins  [2]*tensor.Matrix
	}
	slab := make([]slot, n)
	hs := make([]*HLOP, n)
	wf := v.WorkFactor()
	var aliased int64
	for i := range parts {
		p := &parts[i]
		s := &slab[i]
		h := &s.h
		h.ID = i
		h.Op = v.Op
		h.Parent = v
		h.Region = p.Region
		h.Interior = tensor.Region{Height: p.Region.Height, Width: p.Region.Width}
		h.Attrs = v.Attrs
		h.Elems = int(float64(p.Region.Len()) * wf)
		h.AssignedQueue = p.AssignedQueue
		h.Criticality = p.Criticality
		h.Critical = p.Critical
		for j, src := range v.Inputs {
			dst := &s.view[j]
			if err := src.ViewInto(dst, p.Region); err != nil {
				return nil, fmt.Errorf("hlop: replaying partition %d: %w", i, err)
			}
			s.ins[j] = dst
			aliased += p.Region.Bytes(tensor.ElemSize)
		}
		h.Inputs = s.ins[:k:k]
		hs[i] = h
	}
	telemetry.DatapathBytesAliased.Add(aliased)
	telemetry.DatapathCopiesAvoided.Add(int64(n * k))
	return hs, nil
}

// Split halves an HLOP along its taller axis, re-extracting both halves from
// the parent VOP — the runtime's response to a device-memory overflow or a
// granularity mismatch (§3.4). The returned HLOPs reuse the original ID for
// the first half and take newID for the second. Splitting a 1-element HLOP
// fails.
func Split(h *HLOP, newID int) (*HLOP, *HLOP, error) {
	if h.Op == vop.OpGEMM {
		return splitGEMM(h, newID)
	}
	r := h.Region
	var r1, r2 tensor.Region
	align := 1
	if h.Op == vop.OpDCT8x8 {
		align = 8
	}
	// Per-row transforms must keep whole rows together.
	if h.Op == vop.OpFFT && r.Height < 2 {
		return nil, nil, fmt.Errorf("hlop: cannot split single FFT row %v", r)
	}
	if h.Op == vop.OpFFT || r.Height >= r.Width && r.Height >= 2*align {
		half := alignDown(r.Height/2, align)
		r1 = tensor.Region{Row: r.Row, Col: r.Col, Height: half, Width: r.Width}
		r2 = tensor.Region{Row: r.Row + half, Col: r.Col, Height: r.Height - half, Width: r.Width}
	} else if r.Width >= 2*align {
		half := alignDown(r.Width/2, align)
		r1 = tensor.Region{Row: r.Row, Col: r.Col, Height: r.Height, Width: half}
		r2 = tensor.Region{Row: r.Row, Col: r.Col + half, Height: r.Height, Width: r.Width - half}
	} else {
		return nil, nil, fmt.Errorf("hlop: cannot split %v further", r)
	}
	// Re-extract in the same representation the parent used: view-mode
	// partitions (halo-free, Inputs[0] is a view) stay zero-copy, forced
	// copies stay copies. Halo extraction materializes regardless.
	forceCopy := len(h.Inputs) == 0 || !h.Inputs[0].IsView()
	a, err := extract(h.Parent, r1, h.ID, forceCopy)
	if err != nil {
		return nil, nil, err
	}
	b, err := extract(h.Parent, r2, newID, forceCopy)
	if err != nil {
		return nil, nil, err
	}
	if h.Out != nil {
		// The halves' output views are sub-views of the parent's, located
		// relative to its region.
		if a.Out, err = h.Out.View(relativeTo(r1, r)); err != nil {
			return nil, nil, err
		}
		if b.Out, err = h.Out.View(relativeTo(r2, r)); err != nil {
			return nil, nil, err
		}
	}
	inheritPolicy(h, a)
	inheritPolicy(h, b)
	return a, b, nil
}

// relativeTo re-bases sub (an absolute region inside outer) to coordinates
// relative to outer's origin.
func relativeTo(sub, outer tensor.Region) tensor.Region {
	return tensor.Region{
		Row:    sub.Row - outer.Row,
		Col:    sub.Col - outer.Col,
		Height: sub.Height,
		Width:  sub.Width,
	}
}

func splitGEMM(h *HLOP, newID int) (*HLOP, *HLOP, error) {
	if h.Region.Height < 2 {
		return nil, nil, fmt.Errorf("hlop: cannot split GEMM band %v further", h.Region)
	}
	a := h.Parent.Inputs[0]
	half := h.Region.Height / 2
	forceCopy := len(h.Inputs) == 0 || !h.Inputs[0].IsView()
	mk := func(row, height, id int) (*HLOP, error) {
		reg := tensor.Region{Row: row, Col: 0, Height: height, Width: a.Cols}
		band, err := bandOf(a, reg, forceCopy)
		if err != nil {
			return nil, err
		}
		bcols := h.Parent.Inputs[1].Cols
		return &HLOP{
			ID:       id,
			Op:       h.Op,
			Parent:   h.Parent,
			Region:   tensor.Region{Row: row, Col: 0, Height: height, Width: bcols},
			Inputs:   []*tensor.Matrix{band, h.Parent.Inputs[1]},
			Interior: tensor.Region{Row: 0, Col: 0, Height: height, Width: bcols},
			Attrs:    h.Attrs,
			Elems:    height * bcols,
		}, nil
	}
	x, err := mk(h.Region.Row, half, h.ID)
	if err != nil {
		return nil, nil, err
	}
	y, err := mk(h.Region.Row+half, h.Region.Height-half, newID)
	if err != nil {
		return nil, nil, err
	}
	if h.Out != nil {
		if x.Out, err = h.Out.View(relativeTo(x.Region, h.Region)); err != nil {
			return nil, nil, err
		}
		if y.Out, err = h.Out.View(relativeTo(y.Region, h.Region)); err != nil {
			return nil, nil, err
		}
	}
	inheritPolicy(h, x)
	inheritPolicy(h, y)
	return x, y, nil
}

func inheritPolicy(from, to *HLOP) {
	to.Criticality = from.Criticality
	to.Critical = from.Critical
	to.AssignedQueue = from.AssignedQueue
}

func alignDown(v, align int) int {
	if align <= 1 {
		return v
	}
	return (v / align) * align
}

func maxAligned(v, align int) int {
	if align <= 1 {
		return v
	}
	a := (v / align) * align
	if a == 0 {
		a = v
	}
	return a
}

func intSqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x, y := n, (n+1)/2
	for y < x {
		x, y = y, (y+n/y)/2
	}
	return x
}
