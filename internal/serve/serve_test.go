package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"shmt"
)

// fakeBackend records batch sizes (and each request's tenant, in dispatch
// order) and can be gated to hold rounds open.
type fakeBackend struct {
	mu      sync.Mutex
	sizes   []int
	tenants []string            // per request, in dispatch order
	reqs    []shmt.BatchRequest // per request, in dispatch order
	gate    chan struct{}       // when non-nil, each round blocks until a receive
	quar    []string
	err     error
}

func (f *fakeBackend) ExecuteBatch(reqs []shmt.BatchRequest) (*shmt.BatchResult, error) {
	if f.gate != nil {
		<-f.gate
	}
	f.mu.Lock()
	f.sizes = append(f.sizes, len(reqs))
	for _, r := range reqs {
		f.tenants = append(f.tenants, r.Tenant)
		f.reqs = append(f.reqs, r)
	}
	f.mu.Unlock()
	if f.err != nil {
		return nil, f.err
	}
	br := &shmt.BatchResult{}
	for range reqs {
		br.Reports = append(br.Reports, &shmt.Report{Output: shmt.NewMatrix(1, 1), HLOPs: 1})
	}
	return br, nil
}

func (f *fakeBackend) QuarantinedDevices() []string { return f.quar }

func (f *fakeBackend) batchSizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.sizes...)
}

func (f *fakeBackend) tenantOrder() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.tenants...)
}

func (f *fakeBackend) requests() []shmt.BatchRequest {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]shmt.BatchRequest(nil), f.reqs...)
}

func testReq() shmt.BatchRequest {
	return shmt.BatchRequest{Op: shmt.OpAdd, Inputs: []*shmt.Matrix{shmt.NewMatrix(2, 2), shmt.NewMatrix(2, 2)}}
}

// TestBatcherCoalesces: concurrent submissions against a gated backend must
// land in one multi-request round once the first round's gate opens.
func TestBatcherCoalesces(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{})}
	b := NewBatcher(be, Config{MaxBatch: 8, MaxLinger: 20 * time.Millisecond, QueueDepth: 32})

	const n = 6
	var wg sync.WaitGroup
	results := make([]Result, n)
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = b.Submit(context.Background(), testReq())
		}(i)
	}
	// First submitter becomes round 1 (held at the gate); the rest pile up
	// and must coalesce into round 2. Open the gate for both rounds.
	go func() {
		be.gate <- struct{}{}
		be.gate <- struct{}{}
	}()
	wg.Wait()

	for i, err := range errs {
		if err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	sizes := be.batchSizes()
	if len(sizes) == 0 || len(sizes) > 3 {
		t.Fatalf("batch sizes = %v, want 6 requests in at most 3 rounds", sizes)
	}
	maxSize := 0
	for _, s := range sizes {
		if s > maxSize {
			maxSize = s
		}
	}
	if maxSize < 2 {
		t.Fatalf("batch sizes = %v, no round coalesced more than one request", sizes)
	}
	for i, r := range results {
		if r.Report == nil || r.BatchSize < 1 {
			t.Fatalf("result %d incomplete: %+v", i, r)
		}
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherLingerFlushesPartialRound: a lone request must not wait for a
// full batch — the linger timer flushes it.
func TestBatcherLingerFlushesPartialRound(t *testing.T) {
	be := &fakeBackend{}
	b := NewBatcher(be, Config{MaxBatch: 64, MaxLinger: 5 * time.Millisecond})
	start := time.Now()
	res, err := b.Submit(context.Background(), testReq())
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 1 {
		t.Fatalf("BatchSize = %d, want 1", res.BatchSize)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("lone request waited %v; linger did not flush", waited)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherShedsWhenQueueFull: with the dispatcher wedged and the queue at
// capacity, the next Submit must fail fast with ErrQueueFull.
func TestBatcherShedsWhenQueueFull(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{})}
	b := NewBatcher(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 2})

	// One request occupies the dispatcher (gated); give it time to be taken
	// off the queue, then fill the two queue slots.
	first := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), testReq())
		first <- err
	}()
	time.Sleep(20 * time.Millisecond)
	queued := make(chan error, 2)
	for i := 0; i < 2; i++ {
		go func() {
			_, err := b.Submit(context.Background(), testReq())
			queued <- err
		}()
	}
	time.Sleep(20 * time.Millisecond)

	if _, err := b.Submit(context.Background(), testReq()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("overflow submit: err = %v, want ErrQueueFull", err)
	}

	close(be.gate) // release every round
	for i := 0; i < 3; i++ {
		var err error
		if i == 0 {
			err = <-first
		} else {
			err = <-queued
		}
		if err != nil {
			t.Fatalf("queued submit %d failed after release: %v", i, err)
		}
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherDeadlineWhileQueued: a request whose context expires before its
// round starts is answered with the context error and skipped at gather.
func TestBatcherDeadlineWhileQueued(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{})}
	b := NewBatcher(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 8})

	go b.Submit(context.Background(), testReq()) // wedges the dispatcher
	time.Sleep(20 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	_, err := b.Submit(ctx, testReq())
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}

	close(be.gate)
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The expired request must not have occupied a batch slot.
	for _, s := range be.batchSizes() {
		if s != 1 {
			t.Fatalf("batch sizes = %v; expired request executed", be.batchSizes())
		}
	}
}

// TestBatcherDrain: Close refuses new work, finishes queued work, and is
// idempotent.
func TestBatcherDrain(t *testing.T) {
	be := &fakeBackend{}
	b := NewBatcher(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond})

	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = b.Submit(context.Background(), testReq())
		}(i)
	}
	wg.Wait()
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
	for i, err := range errs {
		if err != nil {
			t.Fatalf("pre-drain submit %d: %v", i, err)
		}
	}
	if _, err := b.Submit(context.Background(), testReq()); !errors.Is(err, ErrDraining) {
		t.Fatalf("post-drain submit: err = %v, want ErrDraining", err)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err) // second Close is a no-op
	}
}

// TestBatcherBackendError: a failed round propagates the error to every
// member request.
func TestBatcherBackendError(t *testing.T) {
	boom := errors.New("boom")
	be := &fakeBackend{err: boom}
	b := NewBatcher(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond})
	if _, err := b.Submit(context.Background(), testReq()); !errors.Is(err, boom) {
		t.Fatalf("err = %v, want backend error", err)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
