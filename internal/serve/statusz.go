package serve

import (
	"html/template"
	"net/http"
	"runtime"
	"strings"
	"time"

	"shmt"
	"shmt/internal/parallel"
	"shmt/internal/telemetry"
)

// Optional backend introspection. The serving layer only requires Backend,
// but a real shmt.Session answers more; /statusz surfaces whatever the
// backend can via these narrow type assertions, and omits the rest.
type deviceLister interface{ Devices() []string }
type planCacheStatser interface{ PlanCacheStats() shmt.PlanCacheStats }
type policyNamer interface{ PolicyName() string }

// statuszResponse is the GET /statusz document: a point-in-time snapshot of
// the serving process for operators — health, topology, admission queue,
// worker pool, and trace retention in one read.
type statuszResponse struct {
	// Status mirrors /healthz: "ok", "degraded" (breakers open), or
	// "draining" (shutdown in progress).
	Status        string  `json:"status"`
	UptimeSeconds float64 `json:"uptime_seconds"`
	GoVersion     string  `json:"go_version"`
	NumGoroutine  int     `json:"num_goroutine"`
	GOMAXPROCS    int     `json:"gomaxprocs"`

	// Backend topology (absent when the backend cannot answer).
	Policy      string   `json:"policy,omitempty"`
	Devices     []string `json:"devices,omitempty"`
	Quarantined []string `json:"quarantined,omitempty"`

	PlanCache *shmt.PlanCacheStats `json:"plan_cache,omitempty"`

	// Admission queue and micro-batcher.
	QueueLen       int     `json:"queue_len"`
	QueueCap       int     `json:"queue_cap"`
	InFlightRounds int64   `json:"inflight_rounds"`
	MaxBatch       int     `json:"max_batch"`
	MaxLingerMs    float64 `json:"max_linger_ms"`
	// Tenants lists every tenant admission queue seen so far (weight, depth,
	// backlog and lifetime dispatch/shed counters).
	Tenants []TenantStatus `json:"tenants,omitempty"`

	// Host worker pool (busy/chunks are zero unless telemetry is enabled).
	Workers           int     `json:"workers"`
	WorkerBusySeconds float64 `json:"worker_busy_seconds"`
	WorkerChunks      int64   `json:"worker_chunks"`
	BatchRounds       int64   `json:"batch_rounds"`

	// Observability switches and retention.
	Tracing        bool                           `json:"tracing"`
	FlightRecorder *telemetry.FlightRecorderStats `json:"flight_recorder,omitempty"`
	PprofEnabled   bool                           `json:"pprof_enabled"`
}

func (s *Server) statusSnapshot() statuszResponse {
	st := statuszResponse{
		Status:         "ok",
		UptimeSeconds:  time.Since(s.started).Seconds(),
		GoVersion:      runtime.Version(),
		NumGoroutine:   runtime.NumGoroutine(),
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Quarantined:    s.be.QuarantinedDevices(),
		QueueLen:       s.batcher.QueueLen(),
		QueueCap:       s.batcher.QueueCap(),
		InFlightRounds: s.batcher.InFlight(),
		Tenants:        s.batcher.Tenants(),
		MaxBatch:       s.cfg.MaxBatch,
		MaxLingerMs:    float64(s.cfg.MaxLinger) / float64(time.Millisecond),
		Workers:        parallel.Workers(),
		WorkerBusySeconds: float64(telemetry.WorkerBusyNanos.Value()) /
			float64(time.Second),
		WorkerChunks: telemetry.WorkerChunks.Value(),
		BatchRounds:  telemetry.ServeBatchRounds.Value(),
		Tracing:      s.cfg.Tracing,
		PprofEnabled: s.cfg.EnablePprof,
	}
	if s.draining.Load() {
		st.Status = "draining"
	} else if len(st.Quarantined) > 0 {
		st.Status = "degraded"
	}
	if dl, ok := s.be.(deviceLister); ok {
		st.Devices = dl.Devices()
	}
	if pn, ok := s.be.(policyNamer); ok {
		st.Policy = pn.PolicyName()
	}
	if pc, ok := s.be.(planCacheStatser); ok {
		stats := pc.PlanCacheStats()
		st.PlanCache = &stats
	}
	if s.flight != nil {
		fr := s.flight.Stats()
		st.FlightRecorder = &fr
	}
	return st
}

var statuszHTML = template.Must(template.New("statusz").Parse(`<!DOCTYPE html>
<html><head><title>shmt statusz</title><style>
body{font-family:monospace;margin:2em}table{border-collapse:collapse}
td,th{border:1px solid #999;padding:4px 10px;text-align:left}
.ok{color:#070}.degraded{color:#b60}.draining{color:#b00}
</style></head><body>
<h1>shmt serving status</h1>
<p>status: <b class="{{.Status}}">{{.Status}}</b> &mdash; up {{printf "%.1f" .UptimeSeconds}}s &mdash; {{.GoVersion}} &mdash; {{.NumGoroutine}} goroutines</p>
<table>
<tr><th>policy</th><td>{{.Policy}}</td></tr>
<tr><th>devices</th><td>{{range .Devices}}{{.}} {{end}}</td></tr>
<tr><th>quarantined</th><td>{{range .Quarantined}}{{.}} {{end}}</td></tr>
<tr><th>queue</th><td>{{.QueueLen}} / {{.QueueCap}}</td></tr>
{{range .Tenants}}<tr><th>tenant {{.Name}}</th><td>w{{.Weight}} &mdash; {{.Queued}}/{{.QueueDepth}} queued, {{.Dispatched}} dispatched, {{.Shed}} shed</td></tr>
{{end}}
<tr><th>in-flight rounds</th><td>{{.InFlightRounds}}</td></tr>
<tr><th>batch rounds</th><td>{{.BatchRounds}}</td></tr>
<tr><th>max batch / linger</th><td>{{.MaxBatch}} / {{.MaxLingerMs}}ms</td></tr>
<tr><th>workers</th><td>{{.Workers}} ({{printf "%.3f" .WorkerBusySeconds}}s busy, {{.WorkerChunks}} chunks)</td></tr>
{{if .PlanCache}}<tr><th>plan cache</th><td>{{.PlanCache.Hits}} hits, {{.PlanCache.Misses}} misses, {{.PlanCache.Entries}} entries</td></tr>{{end}}
<tr><th>tracing</th><td>{{.Tracing}}</td></tr>
{{if .FlightRecorder}}<tr><th>flight recorder</th><td>{{.FlightRecorder.Retained}}/{{.FlightRecorder.Capacity}} retained, {{.FlightRecorder.Slow}} slow (SLO {{.FlightRecorder.SLOMillis}}ms) &mdash; <a href="/debug/requests">recent</a>, <a href="/debug/requests?slow=1">slow</a></td></tr>{{end}}
<tr><th>pprof</th><td>{{.PprofEnabled}}</td></tr>
</table></body></html>
`))

// handleStatusz serves the live process snapshot, as JSON by default and as
// an HTML table when the client asks for it (Accept: text/html, or
// ?format=html).
func (s *Server) handleStatusz(w http.ResponseWriter, r *http.Request) {
	st := s.statusSnapshot()
	wantHTML := r.URL.Query().Get("format") == "html" ||
		strings.Contains(r.Header.Get("Accept"), "text/html")
	if !wantHTML {
		writeJSON(w, http.StatusOK, st)
		return
	}
	w.Header().Set("Content-Type", "text/html; charset=utf-8")
	_ = statuszHTML.Execute(w, st)
}

// debugRequestsResponse is the GET /debug/requests document: the flight
// recorder's retained traces, newest first.
type debugRequestsResponse struct {
	SLOMillis float64                  `json:"slo_ms"`
	SlowOnly  bool                     `json:"slow_only"`
	Count     int                      `json:"count"`
	Traces    []telemetry.RequestTrace `json:"traces"`
}

// handleDebugRequests dumps the flight recorder. ?slow=1 restricts the dump
// to the SLO-violation ring. 404 when tracing is disabled.
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.flight == nil {
		http.Error(w, "tracing disabled; start with Config.Tracing", http.StatusNotFound)
		return
	}
	slowOnly := r.URL.Query().Get("slow") == "1"
	traces := s.flight.Snapshot(slowOnly)
	writeJSON(w, http.StatusOK, debugRequestsResponse{
		SLOMillis: float64(s.flight.SLO()) / float64(time.Millisecond),
		SlowOnly:  slowOnly,
		Count:     len(traces),
		Traces:    traces,
	})
}
