package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shmt"
)

// TestHTTPTenantRoundTrip: the X-SHMT-Tenant header is parsed at admission,
// echoed on the response, recorded in the trace block and visible in the
// flight recorder's /debug/requests dump.
func TestHTTPTenantRoundTrip(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, Tracing: true})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/execute",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "acme")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(TenantHeader); got != "acme" {
		t.Fatalf("tenant header echo %q, want \"acme\"", got)
	}
	var body executeResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Trace == nil || body.Trace.Tenant != "acme" {
		t.Fatalf("trace block %+v, want tenant \"acme\"", body.Trace)
	}

	// The backend saw the tenant on the BatchRequest.
	reqs := be.requests()
	if len(reqs) != 1 || reqs[0].Tenant != "acme" {
		t.Fatalf("backend saw %+v, want one request with Tenant \"acme\"", reqs)
	}

	// And the flight recorder retained it.
	dr, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	raw, err := io.ReadAll(dr.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(raw), `"tenant":"acme"`) {
		t.Fatalf("/debug/requests missing tenant attribution: %s", raw)
	}
}

// TestHTTPTenantHeaderSanitized: a malformed tenant header falls back to the
// default tenant instead of minting an arbitrary metric label.
func TestHTTPTenantHeaderSanitized(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	req, err := http.NewRequest(http.MethodPost, ts.URL+"/v1/execute",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(TenantHeader, "bad tenant!")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d, want 200", resp.StatusCode)
	}
	if got := resp.Header.Get(TenantHeader); got != "" {
		t.Fatalf("sanitized tenant echoed %q, want no echo", got)
	}
	reqs := be.requests()
	if len(reqs) != 1 || reqs[0].Tenant != DefaultTenant {
		t.Fatalf("backend saw %+v, want Tenant %q", reqs, DefaultTenant)
	}
}

// TestHTTPDeadlinePressureRaisesCriticality drives a real session: a request
// with a deadline far tighter than CriticalDeadline must report most of its
// HLOPs critical (kept on high-accuracy devices), while the same request
// with no deadline keeps the policy's default critical fraction.
func TestHTTPDeadlinePressureRaisesCriticality(t *testing.T) {
	sess, err := shmt.NewSession(shmt.Config{Seed: 1, TargetPartitions: 16})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	srv := New(sess, Config{
		MaxBatch: 1, MaxLinger: time.Millisecond,
		Tracing: true, CriticalDeadline: 2 * time.Second,
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	post := func(body string) executeResponse {
		t.Helper()
		resp, err := http.Post(ts.URL+"/v1/execute", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d, want 200", resp.StatusCode)
		}
		var out executeResponse
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatal(err)
		}
		if out.Trace == nil {
			t.Fatal("no trace block")
		}
		return out
	}
	inputs := `"inputs":[{"rows":8,"cols":8,"data":[` +
		strings.TrimSuffix(strings.Repeat("1,", 64), ",") + `]},{"rows":8,"cols":8,"data":[` +
		strings.TrimSuffix(strings.Repeat("2,", 64), ",") + `]}]`

	relaxed := post(`{"op":"add",` + inputs + `}`)
	if relaxed.Trace.DeadlinePressure != 0 {
		t.Fatalf("no-deadline request has pressure %v, want 0", relaxed.Trace.DeadlinePressure)
	}
	if relaxed.Trace.CriticalHLOPs*2 >= relaxed.HLOPs {
		t.Fatalf("relaxed request already critical-heavy (%d of %d) — baseline broken",
			relaxed.Trace.CriticalHLOPs, relaxed.HLOPs)
	}

	tight := post(`{"op":"add","timeout_ms":200,` + inputs + `}`)
	if tight.Trace.DeadlinePressure < 0.8 {
		t.Fatalf("tight-deadline pressure %v, want >= 0.8", tight.Trace.DeadlinePressure)
	}
	if tight.Trace.CriticalHLOPs*2 < tight.HLOPs {
		t.Fatalf("tight-deadline request kept only %d of %d HLOPs critical — pressure not applied",
			tight.Trace.CriticalHLOPs, tight.HLOPs)
	}
	if len(tight.Trace.DeviceHLOPs) == 0 {
		t.Fatal("trace block missing device placement")
	}
}

// TestRetryAfterSeconds pins the shared helper's rounding: ceil with a floor
// of one second.
func TestRetryAfterSeconds(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{300 * time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{2 * time.Second, "2"},
		{3 * time.Second, "3"},
	}
	for _, c := range cases {
		if got := RetryAfterSeconds(c.d); got != c.want {
			t.Fatalf("RetryAfterSeconds(%v) = %q, want %q", c.d, got, c.want)
		}
	}
}
