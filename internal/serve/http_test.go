package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"shmt"
)

func execBody(a, b []float64) string {
	j1, _ := json.Marshal(a)
	j2, _ := json.Marshal(b)
	return fmt.Sprintf(`{"op":"add","inputs":[{"rows":2,"cols":2,"data":%s},{"rows":2,"cols":2,"data":%s}]}`, j1, j2)
}

// TestHTTPExecuteEndToEnd drives the full stack — handler, batcher, real
// session — with concurrent clients and checks outputs and headers.
func TestHTTPExecuteEndToEnd(t *testing.T) {
	sess, err := shmt.NewSession(shmt.Config{Seed: 1, TargetPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	srv := New(sess, Config{MaxBatch: 8, MaxLinger: 20 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	const n = 6
	var wg sync.WaitGroup
	type reply struct {
		status int
		body   executeResponse
		batch  string
	}
	replies := make([]reply, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			base := float64(i)
			body := execBody(
				[]float64{base, base + 1, base + 2, base + 3},
				[]float64{10, 10, 10, 10},
			)
			resp, err := http.Post(ts.URL+"/v1/execute", "application/json", strings.NewReader(body))
			if err != nil {
				t.Errorf("request %d: %v", i, err)
				return
			}
			defer resp.Body.Close()
			replies[i].status = resp.StatusCode
			replies[i].batch = resp.Header.Get("X-SHMT-Batch-Size")
			if err := json.NewDecoder(resp.Body).Decode(&replies[i].body); err != nil {
				t.Errorf("request %d: decode: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	for i, r := range replies {
		if r.status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, r.status)
		}
		base := float64(i)
		want := []float64{base + 10, base + 11, base + 12, base + 13}
		got := r.body.Output.Data
		if len(got) != 4 {
			t.Fatalf("request %d: output %v", i, got)
		}
		// Devices compute approximately (see ops_test.go MAPE bounds); 2% is
		// loose enough for that yet far below the ≥10% error a cross-request
		// result mixup would produce here.
		for k := range want {
			if math.Abs(got[k]-want[k])/want[k] > 0.02 {
				t.Fatalf("request %d: output %v, want ≈%v — cross-request result mixup?", i, got, want)
			}
		}
		if r.batch == "" || r.body.BatchSize < 1 {
			t.Fatalf("request %d: missing batch-size accounting (header %q, body %d)", i, r.batch, r.body.BatchSize)
		}
	}
}

// TestHTTPBadRequests covers the 400 paths: bad JSON, unknown op, shape
// mismatch, no inputs.
func TestHTTPBadRequests(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	cases := []string{
		`{not json`,
		`{"op":"frobnicate","inputs":[{"rows":1,"cols":1,"data":[1]}]}`,
		`{"op":"add","inputs":[{"rows":2,"cols":2,"data":[1,2,3]}]}`,
		`{"op":"add","inputs":[]}`,
	}
	for i, body := range cases {
		resp, err := http.Post(ts.URL+"/v1/execute", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("case %d: status %d, want 400", i, resp.StatusCode)
		}
	}
}

// TestHTTPHealthz walks healthz through its three states: ok, degraded
// (breakers open), draining.
func TestHTTPHealthz(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	check := func(wantStatus int, wantState string, wantQuar string) {
		t.Helper()
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != wantStatus {
			t.Fatalf("healthz status %d, want %d", resp.StatusCode, wantStatus)
		}
		var h healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		if h.Status != wantState {
			t.Fatalf("healthz state %q, want %q", h.Status, wantState)
		}
		if got := resp.Header.Get("X-SHMT-Quarantined"); got != wantQuar {
			t.Fatalf("quarantined header %q, want %q", got, wantQuar)
		}
	}

	check(http.StatusOK, "ok", "")
	be.quar = []string{"tpu"}
	check(http.StatusOK, "degraded", "tpu")
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	check(http.StatusServiceUnavailable, "draining", "")
}

// TestHTTPMetricsEndpoint: the serving mux exposes the process registry.
func TestHTTPMetricsEndpoint(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 4, MaxLinger: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Post(ts.URL+"/v1/execute", "application/json",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("execute status %d", resp.StatusCode)
	}

	mr, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mr.Body.Close()
	raw, err := io.ReadAll(mr.Body)
	if err != nil {
		t.Fatal(err)
	}
	expo := string(raw)
	for _, name := range []string{"shmt_serve_requests_total", "shmt_serve_batches_total", "shmt_serve_batch_size"} {
		if !strings.Contains(expo, name) {
			t.Fatalf("exposition missing %s", name)
		}
	}
}

// TestHTTP429OnOverflow: with the dispatcher wedged and the admission queue
// full, the next request is shed with 429 + Retry-After instead of queueing.
func TestHTTP429OnOverflow(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{})}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 1, RetryAfter: 2 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	post := func() (*http.Response, error) {
		return http.Post(ts.URL+"/v1/execute", "application/json",
			strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	}
	// One request wedges the dispatcher at the gate, one fills the queue slot.
	inflight := make(chan struct{}, 2)
	for i := 0; i < 2; i++ {
		go func() {
			if resp, err := post(); err == nil {
				resp.Body.Close()
			}
			inflight <- struct{}{}
		}()
	}
	// Retry until both are in place and an overflow request gets shed (the
	// two goroutines race the dispatcher, so poll rather than sleep-and-hope).
	// Poll requests carry a short deadline: one may win the queue slot before
	// the wedge request does, and must not hang behind the gated dispatcher —
	// it times out, and its expired entry keeps the queue full for the next
	// poll.
	pollBody := `{"op":"add","timeout_ms":100,"inputs":[{"rows":2,"cols":2,"data":[1,2,3,4]},{"rows":2,"cols":2,"data":[5,6,7,8]}]}`
	var got *http.Response
	for i := 0; i < 200; i++ {
		resp, err := http.Post(ts.URL+"/v1/execute", "application/json", strings.NewReader(pollBody))
		if err != nil {
			t.Fatal(err)
		}
		if resp.StatusCode == http.StatusTooManyRequests {
			got = resp
			break
		}
		resp.Body.Close()
		time.Sleep(5 * time.Millisecond)
	}
	if got == nil {
		t.Fatal("no overflow request was shed with 429")
	}
	got.Body.Close()
	if got.Header.Get("Retry-After") != "2" {
		t.Fatalf("Retry-After = %q, want \"2\"", got.Header.Get("Retry-After"))
	}

	close(be.gate)
	<-inflight
	<-inflight
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestHTTPDrainingRefusesExecute: after Shutdown, execute answers 503 with a
// Retry-After hint.
func TestHTTPDrainingRefusesExecute(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, RetryAfter: 3 * time.Second})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}

	resp, err := http.Post(ts.URL+"/v1/execute", "application/json",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") != "3" {
		t.Fatalf("Retry-After = %q, want \"3\"", resp.Header.Get("Retry-After"))
	}
}
