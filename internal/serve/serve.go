// Package serve is the concurrent serving layer in front of a shmt.Session:
// an admission queue plus dynamic micro-batcher that coalesces concurrent
// VOP requests into ExecuteBatch rounds, and an HTTP/JSON front-end
// (http.go) that speaks it.
//
// Request flow: Submit enqueues into a bounded admission queue (overflow is
// shed immediately — the HTTP layer answers 429 + Retry-After rather than
// letting the queue grow without bound). A single dispatcher goroutine
// gathers a round: it takes the first waiting request, then keeps gathering
// until either MaxBatch requests are in hand or the first request has
// lingered MaxLinger, whichever comes first — under load rounds fill to
// MaxBatch back-to-back, and a lone request never waits more than the
// linger. Each round becomes one Session.ExecuteBatch call, so the engine
// co-schedules the requests' HLOPs over shared device queues — the
// oversubscription §5.6 of the paper credits for hiding data-exchange
// latency. Requests whose deadline expired while queued are dropped at
// gather time instead of wasting a batch slot.
//
// A single dispatcher is deliberate: the engine serializes runs anyway (see
// shmt.Session), so more dispatchers would only contend; the parallelism
// that matters is inside the round.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"shmt"
	"shmt/internal/telemetry"
)

// Errors the admission path surfaces; the HTTP layer maps them to statuses.
var (
	// ErrQueueFull sheds a request because the admission queue is at
	// capacity (HTTP 429 + Retry-After).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining refuses a request because the server is shutting down
	// (HTTP 503 + Retry-After).
	ErrDraining = errors.New("serve: server is draining")
)

// Backend is the slice of shmt.Session the serving layer needs; the
// indirection keeps the batcher testable against fakes.
type Backend interface {
	ExecuteBatch(reqs []shmt.BatchRequest) (*shmt.BatchResult, error)
	QuarantinedDevices() []string
}

// Config tunes the serving layer. The zero value serves with the defaults
// noted per field.
type Config struct {
	// MaxBatch is the most requests one micro-batch round may coalesce
	// (default 16).
	MaxBatch int
	// MaxLinger is the longest the dispatcher holds an admitted request
	// open for company before flushing a partial round (default 2ms).
	MaxLinger time.Duration
	// QueueDepth bounds the admission queue; requests beyond it are shed
	// with ErrQueueFull (default 4×MaxBatch).
	QueueDepth int
	// DefaultTimeout is the per-request deadline applied when the client
	// does not send one (default 30s).
	DefaultTimeout time.Duration
	// RetryAfter is the Retry-After hint attached to shed and draining
	// responses (default 1s).
	RetryAfter time.Duration
	// Spans, when non-nil, receives one wall-clock span per micro-batch
	// round (wire it to Session.TelemetryRecorder).
	Spans *telemetry.Recorder
	// Tracing enables request-scoped tracing: trace IDs assigned at HTTP
	// admission (honouring inbound X-SHMT-Trace-Id), per-request stage
	// breakdowns, flight-recorder retention, request lanes in the Perfetto
	// export, and exemplars on the latency histogram. Off by default; the
	// disabled request path performs no clock reads or allocations beyond
	// the untraced baseline.
	//
	// Engine-stage attribution (the plan/quantize_transfer/execute/aggregate
	// stages) additionally requires telemetry to be enabled on the backend
	// session (shmt.Config.Telemetry.Enabled, or telemetry.Enable plus an
	// attached recorder) — the engine only reads its stage clocks when its
	// run telemetry is active. With Tracing on but session telemetry off,
	// traces still carry queue_wait and batch_linger but the engine stages
	// report zero. shmtserved force-enables session telemetry whenever
	// tracing is on; library embedders must do the same.
	Tracing bool
	// FlightRecorderSize caps the flight recorder's rings (default
	// telemetry.DefaultFlightRecorderSize). Only meaningful with Tracing.
	FlightRecorderSize int
	// SlowSLO is the latency threshold above which a trace is retained in
	// the flight recorder's slow ring (0 disables slow retention). Only
	// meaningful with Tracing.
	SlowSLO time.Duration
	// Logger, when non-nil, receives one structured line per request
	// outcome plus server lifecycle events. Nil keeps the serving layer
	// silent.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/ on
	// the serving mux. Off by default — profiling endpoints are opt-in.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 16
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 2 * time.Millisecond
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Result is one request's share of a completed micro-batch round.
type Result struct {
	// Report is the request's own report (output, makespan, HLOP count).
	Report *shmt.Report
	// BatchSize is how many requests the round coalesced.
	BatchSize int
	// Degraded is the round's batch-wide degradation report (nil when the
	// round saw no device failures).
	Degraded *shmt.Degraded
	// Stages is the request's stage breakdown when tracing is on (zero
	// otherwise). Queue wait and batch linger are per request; the
	// plan/transfer/execute/aggregate stages are the round's, shared by
	// every request it coalesced.
	Stages telemetry.StageBreakdown
}

// pending is one admitted request waiting for its round.
type pending struct {
	req  shmt.BatchRequest
	ctx  context.Context
	done chan outcome // buffered(1); the dispatcher never blocks on it

	// Tracing-only timestamps (zero when Config.Tracing is off, so the
	// untraced path never reads the clock): admission into the queue,
	// pickup by the dispatcher, and admission on the span recorder's
	// timeline for the request-lane stage slices.
	admitted    time.Time
	gathered    time.Time
	admittedRel float64
}

type outcome struct {
	res Result
	err error
}

// Batcher is the admission queue + dispatcher pair.
type Batcher struct {
	cfg Config
	be  Backend

	// mu makes the draining check-and-enqueue atomic against Close, so the
	// queue channel can be closed without racing an in-flight send.
	mu       sync.Mutex
	draining bool
	queue    chan *pending

	// inflight counts rounds currently inside ExecuteBatch. Unlike the
	// telemetry gauges it is not gated on the enable switch, so /statusz
	// reads it even with telemetry off.
	inflight atomic.Int64

	done chan struct{} // closed when the dispatcher has drained and exited
}

// NewBatcher starts the dispatcher; callers own exactly one Close.
func NewBatcher(be Backend, cfg Config) *Batcher {
	b := &Batcher{
		cfg:   cfg.withDefaults(),
		be:    be,
		queue: make(chan *pending, cfg.withDefaults().QueueDepth),
		done:  make(chan struct{}),
	}
	go b.run()
	return b
}

// Submit admits one request and blocks until its round completes or ctx
// expires. It never blocks on admission: a full queue sheds immediately with
// ErrQueueFull, and after Close it refuses with ErrDraining.
func (b *Batcher) Submit(ctx context.Context, req shmt.BatchRequest) (Result, error) {
	p := &pending{req: req, ctx: ctx, done: make(chan outcome, 1)}
	if b.cfg.Tracing {
		p.admitted = time.Now()
		if b.cfg.Spans != nil {
			p.admittedRel = b.cfg.Spans.Now()
		}
	}

	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return Result{}, ErrDraining
	}
	telemetry.ServeQueueDepth.Add(1)
	select {
	case b.queue <- p:
		b.mu.Unlock()
	default:
		telemetry.ServeQueueDepth.Add(-1)
		b.mu.Unlock()
		return Result{}, ErrQueueFull
	}

	select {
	case out := <-p.done:
		return out.res, out.err
	case <-ctx.Done():
		// Abandoned while queued (or mid-round): the dispatcher drops
		// expired requests at gather time; an outcome racing in here lands
		// in the buffered channel and is garbage-collected with it.
		return Result{}, ctx.Err()
	}
}

// Close stops admission and waits — bounded by ctx — for the dispatcher to
// drain every queued request. Safe to call more than once.
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	already := b.draining
	b.draining = true
	b.mu.Unlock()
	if !already {
		// No Submit can be between its draining check and the send now, so
		// closing the channel is race-free; buffered requests still drain.
		close(b.queue)
	}
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// run is the dispatcher: one micro-batch round per iteration until the
// queue is closed and empty.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		first, ok := <-b.queue
		if !ok {
			return
		}
		telemetry.ServeQueueDepth.Add(-1)
		if b.cfg.Tracing {
			first.gathered = time.Now()
		}
		b.flush(b.gather(first))
	}
}

// QueueLen returns how many requests are waiting in the admission queue.
func (b *Batcher) QueueLen() int { return len(b.queue) }

// QueueCap returns the admission queue's capacity.
func (b *Batcher) QueueCap() int { return cap(b.queue) }

// InFlight returns how many micro-batch rounds are currently executing.
func (b *Batcher) InFlight() int64 { return b.inflight.Load() }

// gather assembles one round: the first request plus whatever arrives until
// MaxBatch is reached or the first request has lingered MaxLinger.
func (b *Batcher) gather(first *pending) []*pending {
	batch := []*pending{first}
	if b.cfg.MaxBatch == 1 {
		return batch
	}
	linger := time.NewTimer(b.cfg.MaxLinger)
	defer linger.Stop()
	for len(batch) < b.cfg.MaxBatch {
		select {
		case p, ok := <-b.queue:
			if !ok {
				return batch // draining: take what is buffered and go
			}
			telemetry.ServeQueueDepth.Add(-1)
			if b.cfg.Tracing {
				p.gathered = time.Now()
			}
			batch = append(batch, p)
		case <-linger.C:
			return batch
		}
	}
	return batch
}

// flush runs one round: expired requests are answered without occupying a
// batch slot, the rest execute as one ExecuteBatch call and each gets its
// own report back.
func (b *Batcher) flush(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			p.done <- outcome{err: err}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}

	reqs := make([]shmt.BatchRequest, len(live))
	for i, p := range live {
		reqs[i] = p.req
	}
	var start float64
	if b.cfg.Spans != nil {
		start = b.cfg.Spans.Now()
	}
	var flushAt time.Time
	if b.cfg.Tracing {
		flushAt = time.Now()
	}
	b.inflight.Add(1)
	res, err := b.be.ExecuteBatch(reqs)
	b.inflight.Add(-1)
	if b.cfg.Spans != nil {
		b.cfg.Spans.RecordSpan(telemetry.Span{
			Track: "serve", Name: fmt.Sprintf("batch(%d)", len(reqs)),
			Clock: telemetry.ClockWall, Start: start, End: b.cfg.Spans.Now(),
		})
	}
	telemetry.ServeBatchRounds.Inc()
	telemetry.ServeBatchSize.Observe(float64(len(reqs)))

	if err != nil {
		for _, p := range live {
			p.done <- outcome{err: err}
		}
		return
	}
	for i, p := range live {
		out := outcome{res: Result{
			Report:    res.Reports[i],
			BatchSize: len(reqs),
			Degraded:  res.Degraded,
		}}
		if b.cfg.Tracing {
			out.res.Stages = b.stages(p, flushAt, res)
		}
		p.done <- out
	}
}

// stages assembles one request's stage breakdown from its admission/pickup
// timestamps and the round's engine stage wall times, and — when a span
// recorder is attached — lays the stages out as consecutive slices on the
// request's Perfetto lane.
func (b *Batcher) stages(p *pending, flushAt time.Time, res *shmt.BatchResult) telemetry.StageBreakdown {
	st := telemetry.StageBreakdown{
		QueueWait:   p.gathered.Sub(p.admitted).Seconds(),
		BatchLinger: flushAt.Sub(p.gathered).Seconds(),
		Plan:        res.StageWall.Plan,
		Transfer:    res.StageWall.Transfer,
		Execute:     res.StageWall.Execute,
		Aggregate:   res.StageWall.Aggregate,
	}
	if b.cfg.Spans != nil && p.req.TraceID != "" {
		at := p.admittedRel
		for _, sl := range [...]struct {
			name string
			dur  float64
		}{
			{"queue_wait", st.QueueWait},
			{"batch_linger", st.BatchLinger},
			{"plan", st.Plan},
			{"quantize_transfer", st.Transfer},
			{"execute", st.Execute},
			{"aggregate", st.Aggregate},
		} {
			if sl.dur <= 0 {
				continue
			}
			b.cfg.Spans.RecordSpan(telemetry.Span{
				Name: sl.name, Clock: telemetry.ClockWall,
				Start: at, End: at + sl.dur,
				TraceID: p.req.TraceID, Root: true,
			})
			at += sl.dur
		}
	}
	return st
}
