// Package serve is the concurrent serving layer in front of a shmt.Session:
// tenant-aware admission queues plus a dynamic micro-batcher that coalesces
// concurrent VOP requests into ExecuteBatch rounds, and an HTTP/JSON
// front-end (http.go) that speaks it.
//
// Request flow: Submit enqueues into the request's tenant queue (overflow is
// shed immediately — the HTTP layer answers 429 + Retry-After rather than
// letting any tenant's queue grow without bound). A single dispatcher
// goroutine gathers a round: it drains the tenant queues by deficit-weighted
// round-robin — each tenant earns quantum proportional to its configured
// Weight, so a bursting tenant cannot starve the others — then keeps
// gathering until either MaxBatch requests are in hand or the first request
// has lingered MaxLinger, whichever comes first. Under load rounds fill to
// MaxBatch back-to-back, and a lone request never waits more than the
// linger. With a single tenant (or no Tenants config) the deficit rotation
// degenerates to exactly the old shared FIFO: one queue, popped in arrival
// order. Each round becomes one Session.ExecuteBatch call, so the engine
// co-schedules the requests' HLOPs over shared device queues — the
// oversubscription §5.6 of the paper credits for hiding data-exchange
// latency. Requests whose deadline expired while queued are dropped at
// flush time instead of wasting a batch slot.
//
// A single dispatcher is deliberate: the engine serializes runs anyway (see
// shmt.Session), so more dispatchers would only contend; the parallelism
// that matters is inside the round.
package serve

import (
	"context"
	"errors"
	"fmt"
	"log/slog"
	"sync"
	"sync/atomic"
	"time"

	"shmt"
	"shmt/internal/telemetry"
)

// Errors the admission path surfaces; the HTTP layer maps them to statuses.
var (
	// ErrQueueFull sheds a request because its tenant's admission queue is at
	// capacity (HTTP 429 + Retry-After). The error message names the shedding
	// tenant so 429s are attributable.
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrDraining refuses a request because the server is shutting down
	// (HTTP 503 + Retry-After).
	ErrDraining = errors.New("serve: server is draining")
)

// Backend is the slice of shmt.Session the serving layer needs; the
// indirection keeps the batcher testable against fakes.
type Backend interface {
	ExecuteBatch(reqs []shmt.BatchRequest) (*shmt.BatchResult, error)
	QuarantinedDevices() []string
}

// DefaultTenant is the queue a request with no X-SHMT-Tenant header lands in.
const DefaultTenant = "default"

// TenantConfig sets one tenant's admission QoS.
type TenantConfig struct {
	// Weight is the tenant's deficit-round-robin drain weight: with queues
	// backed up, a tenant drains Weight requests per rotation, so drain
	// shares track the weight ratio. Values below 1 mean the default of 1.
	Weight int
	// QueueDepth bounds this tenant's own admission queue; 0 inherits the
	// global Config.QueueDepth.
	QueueDepth int
}

// Config tunes the serving layer. The zero value serves with the defaults
// noted per field.
type Config struct {
	// MaxBatch is the most requests one micro-batch round may coalesce
	// (default 16).
	MaxBatch int
	// MaxLinger is the longest the dispatcher holds an admitted request
	// open for company before flushing a partial round (default 2ms).
	MaxLinger time.Duration
	// QueueDepth bounds each tenant's admission queue (per tenant, not
	// shared); requests beyond it are shed with ErrQueueFull (default
	// 4×MaxBatch). Tenants may override it via Tenants.
	QueueDepth int
	// Tenants configures per-tenant drain weights and queue depths, keyed by
	// tenant name (the X-SHMT-Tenant header value; requests without one map
	// to DefaultTenant). Tenants not listed here get weight 1 and the global
	// QueueDepth, so with no entries at all admission behaves exactly like
	// the old single shared FIFO.
	Tenants map[string]TenantConfig
	// DefaultTimeout is the per-request deadline applied when the client
	// does not send one (default 30s).
	DefaultTimeout time.Duration
	// CriticalDeadline, when positive, converts per-request deadlines into
	// QAWS criticality pressure: a request whose timeout is below this
	// threshold carries DeadlinePressure = 1 − timeout/CriticalDeadline into
	// the engine, raising the fraction of its partitions routed to the most
	// accurate device. 0 (the default) disables deadline pressure entirely.
	CriticalDeadline time.Duration
	// RetryAfter is the Retry-After hint attached to shed and draining
	// responses (default 1s).
	RetryAfter time.Duration
	// Spans, when non-nil, receives one wall-clock span per micro-batch
	// round (wire it to Session.TelemetryRecorder).
	Spans *telemetry.Recorder
	// Tracing enables request-scoped tracing: trace IDs assigned at HTTP
	// admission (honouring inbound X-SHMT-Trace-Id), per-request stage
	// breakdowns, flight-recorder retention, request lanes in the Perfetto
	// export, and exemplars on the latency histogram. Off by default; the
	// disabled request path performs no clock reads or allocations beyond
	// the untraced baseline.
	//
	// Engine-stage attribution (the plan/quantize_transfer/execute/aggregate
	// stages) additionally requires telemetry to be enabled on the backend
	// session (shmt.Config.Telemetry.Enabled, or telemetry.Enable plus an
	// attached recorder) — the engine only reads its stage clocks when its
	// run telemetry is active. With Tracing on but session telemetry off,
	// traces still carry queue_wait and batch_linger but the engine stages
	// report zero. shmtserved force-enables session telemetry whenever
	// tracing is on; library embedders must do the same.
	Tracing bool
	// FlightRecorderSize caps the flight recorder's rings (default
	// telemetry.DefaultFlightRecorderSize). Only meaningful with Tracing.
	FlightRecorderSize int
	// SlowSLO is the latency threshold above which a trace is retained in
	// the flight recorder's slow ring (0 disables slow retention). Only
	// meaningful with Tracing.
	SlowSLO time.Duration
	// Logger, when non-nil, receives one structured line per request
	// outcome plus server lifecycle events. Nil keeps the serving layer
	// silent.
	Logger *slog.Logger
	// EnablePprof mounts net/http/pprof's handlers under /debug/pprof/ on
	// the serving mux. Off by default — profiling endpoints are opt-in.
	EnablePprof bool
}

func (c Config) withDefaults() Config {
	if c.MaxBatch < 1 {
		c.MaxBatch = 16
	}
	if c.MaxLinger <= 0 {
		c.MaxLinger = 2 * time.Millisecond
	}
	if c.QueueDepth < 1 {
		c.QueueDepth = 4 * c.MaxBatch
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 30 * time.Second
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	return c
}

// Result is one request's share of a completed micro-batch round.
type Result struct {
	// Report is the request's own report (output, makespan, HLOP count).
	Report *shmt.Report
	// BatchSize is how many requests the round coalesced.
	BatchSize int
	// Degraded is the round's batch-wide degradation report (nil when the
	// round saw no device failures).
	Degraded *shmt.Degraded
	// Stages is the request's stage breakdown when tracing is on (zero
	// otherwise). Queue wait and batch linger are per request; the
	// plan/transfer/execute/aggregate stages are the round's, shared by
	// every request it coalesced.
	Stages telemetry.StageBreakdown
}

// pending is one admitted request waiting for its round.
type pending struct {
	req  shmt.BatchRequest
	ctx  context.Context
	done chan outcome // buffered(1); the dispatcher never blocks on it

	// Tracing-only timestamps (zero when Config.Tracing is off, so the
	// untraced path never reads the clock): admission into the queue,
	// pickup by the dispatcher, and admission on the span recorder's
	// timeline for the request-lane stage slices.
	admitted    time.Time
	gathered    time.Time
	admittedRel float64
}

type outcome struct {
	res Result
	err error
}

// tenantQueue is one tenant's FIFO admission queue plus its deficit
// round-robin state. Guarded by Batcher.mu.
type tenantQueue struct {
	name    string
	weight  int
	depth   int
	deficit float64
	q       []*pending

	dispatched uint64 // requests popped by the dispatcher
	shed       uint64 // requests refused with ErrQueueFull
}

// TenantStatus is one tenant queue's point-in-time snapshot (for /statusz).
type TenantStatus struct {
	Name       string `json:"name"`
	Weight     int    `json:"weight"`
	QueueDepth int    `json:"queue_depth"`
	Queued     int    `json:"queued"`
	Dispatched uint64 `json:"dispatched"`
	Shed       uint64 `json:"shed"`
}

// Batcher is the tenant-aware admission queue + dispatcher pair.
type Batcher struct {
	cfg Config
	be  Backend

	// mu guards the tenant queues, rotation state and the draining flag, so
	// admission, the deficit round-robin pop and Close are mutually atomic.
	mu       sync.Mutex
	draining bool
	tenants  map[string]*tenantQueue
	order    []*tenantQueue // rotation order = first-submission order
	rrIdx    int            // current rotation position in order
	queued   int            // total requests across all tenant queues

	// notify wakes the dispatcher after an enqueue (buffered 1: concurrent
	// submits coalesce into one token; the dispatcher re-pops until empty).
	notify chan struct{}
	// drainCh is closed by the first Close, unblocking the dispatcher's
	// waits so it drains the queues and exits.
	drainCh chan struct{}

	// inflight counts rounds currently inside ExecuteBatch. Unlike the
	// telemetry gauges it is not gated on the enable switch, so /statusz
	// reads it even with telemetry off.
	inflight atomic.Int64

	done chan struct{} // closed when the dispatcher has drained and exited
}

// NewBatcher starts the dispatcher; callers own exactly one Close.
func NewBatcher(be Backend, cfg Config) *Batcher {
	b := &Batcher{
		cfg:     cfg.withDefaults(),
		be:      be,
		tenants: map[string]*tenantQueue{},
		notify:  make(chan struct{}, 1),
		drainCh: make(chan struct{}),
		done:    make(chan struct{}),
	}
	go b.run()
	return b
}

// tenantQueueLocked returns (creating on first use) the named tenant's
// queue. Caller holds b.mu.
func (b *Batcher) tenantQueueLocked(name string) *tenantQueue {
	tq, ok := b.tenants[name]
	if !ok {
		tc := b.cfg.Tenants[name]
		w := tc.Weight
		if w < 1 {
			w = 1
		}
		d := tc.QueueDepth
		if d < 1 {
			d = b.cfg.QueueDepth
		}
		tq = &tenantQueue{name: name, weight: w, depth: d}
		b.tenants[name] = tq
		b.order = append(b.order, tq)
	}
	return tq
}

// popLocked removes and returns the next request under deficit-weighted
// round-robin, or nil when every queue is empty. Each rotation stop grants
// the tenant `weight` units of deficit and drains one unit per pop, so over
// a backlog the drain shares converge to the weight ratio; a lone tenant is
// popped strictly FIFO. Caller holds b.mu.
func (b *Batcher) popLocked() *pending {
	if b.queued == 0 {
		return nil
	}
	for {
		if b.rrIdx >= len(b.order) {
			b.rrIdx = 0
		}
		tq := b.order[b.rrIdx]
		if len(tq.q) == 0 {
			// An emptied queue forfeits unused deficit: credit must not
			// accumulate while a tenant is idle.
			tq.deficit = 0
			b.rrIdx++
			continue
		}
		if tq.deficit < 1 {
			tq.deficit += float64(tq.weight)
		}
		p := tq.q[0]
		tq.q[0] = nil
		tq.q = tq.q[1:]
		tq.deficit--
		tq.dispatched++
		b.queued--
		if len(tq.q) == 0 {
			tq.q = nil // release the drained backing array
		}
		if tq.deficit < 1 {
			b.rrIdx++
		}
		telemetry.ServeQueueDepth.Add(-1)
		telemetry.ServeTenantQueueDepth.With(tq.name).Add(-1)
		telemetry.ServeTenantDispatched.With(tq.name).Inc()
		return p
	}
}

// Submit admits one request and blocks until its round completes or ctx
// expires. It never blocks on admission: a full tenant queue sheds
// immediately with ErrQueueFull (wrapped with the tenant name), and after
// Close it refuses with ErrDraining.
func (b *Batcher) Submit(ctx context.Context, req shmt.BatchRequest) (Result, error) {
	tenant := req.Tenant
	if tenant == "" {
		tenant = DefaultTenant
	}
	p := &pending{req: req, ctx: ctx, done: make(chan outcome, 1)}
	if b.cfg.Tracing {
		p.admitted = time.Now()
		if b.cfg.Spans != nil {
			p.admittedRel = b.cfg.Spans.Now()
		}
	}

	b.mu.Lock()
	if b.draining {
		b.mu.Unlock()
		return Result{}, ErrDraining
	}
	tq := b.tenantQueueLocked(tenant)
	if len(tq.q) >= tq.depth {
		tq.shed++
		b.mu.Unlock()
		telemetry.ServeTenantShed.With(tenant).Inc()
		return Result{}, fmt.Errorf("%w: tenant %q at queue depth %d", ErrQueueFull, tenant, tq.depth)
	}
	tq.q = append(tq.q, p)
	b.queued++
	b.mu.Unlock()
	telemetry.ServeQueueDepth.Add(1)
	telemetry.ServeTenantQueueDepth.With(tenant).Add(1)
	select {
	case b.notify <- struct{}{}:
	default:
	}

	select {
	case out := <-p.done:
		return out.res, out.err
	case <-ctx.Done():
		// Abandoned while queued (or mid-round): the dispatcher drops
		// expired requests at flush time; an outcome racing in here lands
		// in the buffered channel and is garbage-collected with it.
		return Result{}, ctx.Err()
	}
}

// Close stops admission and waits — bounded by ctx — for the dispatcher to
// drain every queued request. Safe to call more than once.
func (b *Batcher) Close(ctx context.Context) error {
	b.mu.Lock()
	already := b.draining
	b.draining = true
	b.mu.Unlock()
	if !already {
		// No Submit can be between its draining check and its enqueue now,
		// so the dispatcher drains a frozen backlog and exits.
		close(b.drainCh)
	}
	select {
	case <-b.done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: drain interrupted: %w", ctx.Err())
	}
}

// run is the dispatcher: one micro-batch round per iteration until draining
// has been requested and the queues are empty.
func (b *Batcher) run() {
	defer close(b.done)
	for {
		first := b.waitPop()
		if first == nil {
			return
		}
		if b.cfg.Tracing {
			first.gathered = time.Now()
		}
		b.flush(b.gather(first))
	}
}

// waitPop blocks until a request is available (returning it) or draining
// begins with nothing queued (returning nil).
func (b *Batcher) waitPop() *pending {
	for {
		b.mu.Lock()
		p := b.popLocked()
		draining := b.draining
		b.mu.Unlock()
		if p != nil {
			return p
		}
		if draining {
			return nil
		}
		select {
		case <-b.notify:
		case <-b.drainCh:
		}
	}
}

// QueueLen returns how many requests are waiting across all tenant queues.
func (b *Batcher) QueueLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.queued
}

// QueueCap returns the default per-tenant admission queue bound.
func (b *Batcher) QueueCap() int { return b.cfg.QueueDepth }

// InFlight returns how many micro-batch rounds are currently executing.
func (b *Batcher) InFlight() int64 { return b.inflight.Load() }

// Tenants snapshots every tenant queue seen so far, in first-submission
// order.
func (b *Batcher) Tenants() []TenantStatus {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make([]TenantStatus, 0, len(b.order))
	for _, tq := range b.order {
		out = append(out, TenantStatus{
			Name:       tq.name,
			Weight:     tq.weight,
			QueueDepth: tq.depth,
			Queued:     len(tq.q),
			Dispatched: tq.dispatched,
			Shed:       tq.shed,
		})
	}
	return out
}

// gather assembles one round: the first request plus whatever the deficit
// rotation yields until MaxBatch is reached or the first request has
// lingered MaxLinger.
func (b *Batcher) gather(first *pending) []*pending {
	batch := []*pending{first}
	if b.cfg.MaxBatch == 1 {
		return batch
	}
	linger := time.NewTimer(b.cfg.MaxLinger)
	defer linger.Stop()
	for len(batch) < b.cfg.MaxBatch {
		b.mu.Lock()
		p := b.popLocked()
		b.mu.Unlock()
		if p != nil {
			if b.cfg.Tracing {
				p.gathered = time.Now()
			}
			batch = append(batch, p)
			continue
		}
		select {
		case <-b.notify:
		case <-linger.C:
			return batch
		case <-b.drainCh:
			// Draining: take what is queued (the backlog is frozen) and go.
			for len(batch) < b.cfg.MaxBatch {
				b.mu.Lock()
				p := b.popLocked()
				b.mu.Unlock()
				if p == nil {
					return batch
				}
				if b.cfg.Tracing {
					p.gathered = time.Now()
				}
				batch = append(batch, p)
			}
			return batch
		}
	}
	return batch
}

// flush runs one round: expired requests are answered without occupying a
// batch slot, the rest execute as one ExecuteBatch call and each gets its
// own report back.
func (b *Batcher) flush(batch []*pending) {
	live := batch[:0]
	for _, p := range batch {
		if err := p.ctx.Err(); err != nil {
			p.done <- outcome{err: err}
			continue
		}
		live = append(live, p)
	}
	if len(live) == 0 {
		return
	}

	reqs := make([]shmt.BatchRequest, len(live))
	for i, p := range live {
		reqs[i] = p.req
	}
	var start float64
	if b.cfg.Spans != nil {
		start = b.cfg.Spans.Now()
	}
	var flushAt time.Time
	if b.cfg.Tracing {
		flushAt = time.Now()
	}
	b.inflight.Add(1)
	res, err := b.be.ExecuteBatch(reqs)
	b.inflight.Add(-1)
	if b.cfg.Spans != nil {
		b.cfg.Spans.RecordSpan(telemetry.Span{
			Track: "serve", Name: fmt.Sprintf("batch(%d)", len(reqs)),
			Clock: telemetry.ClockWall, Start: start, End: b.cfg.Spans.Now(),
		})
	}
	telemetry.ServeBatchRounds.Inc()
	telemetry.ServeBatchSize.Observe(float64(len(reqs)))

	if err != nil {
		for _, p := range live {
			p.done <- outcome{err: err}
		}
		return
	}
	for i, p := range live {
		out := outcome{res: Result{
			Report:    res.Reports[i],
			BatchSize: len(reqs),
			Degraded:  res.Degraded,
		}}
		if b.cfg.Tracing {
			out.res.Stages = b.stages(p, flushAt, res)
		}
		p.done <- out
	}
}

// stages assembles one request's stage breakdown from its admission/pickup
// timestamps and the round's engine stage wall times, and — when a span
// recorder is attached — lays the stages out as consecutive slices on the
// request's Perfetto lane.
func (b *Batcher) stages(p *pending, flushAt time.Time, res *shmt.BatchResult) telemetry.StageBreakdown {
	st := telemetry.StageBreakdown{
		QueueWait:   p.gathered.Sub(p.admitted).Seconds(),
		BatchLinger: flushAt.Sub(p.gathered).Seconds(),
		Plan:        res.StageWall.Plan,
		Transfer:    res.StageWall.Transfer,
		Execute:     res.StageWall.Execute,
		Aggregate:   res.StageWall.Aggregate,
	}
	if b.cfg.Spans != nil && p.req.TraceID != "" {
		at := p.admittedRel
		for _, sl := range [...]struct {
			name string
			dur  float64
		}{
			{"queue_wait", st.QueueWait},
			{"batch_linger", st.BatchLinger},
			{"plan", st.Plan},
			{"quantize_transfer", st.Transfer},
			{"execute", st.Execute},
			{"aggregate", st.Aggregate},
		} {
			if sl.dur <= 0 {
				continue
			}
			b.cfg.Spans.RecordSpan(telemetry.Span{
				Name: sl.name, Clock: telemetry.ClockWall,
				Start: at, End: at + sl.dur,
				TraceID: p.req.TraceID, Root: true,
			})
			at += sl.dur
		}
	}
	return st
}
