package serve

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"shmt"
)

// tenantReq is testReq with a tenant and a sequence marker.
func tenantReq(tenant string, i int) shmt.BatchRequest {
	r := testReq()
	r.Tenant = tenant
	r.Attrs = map[string]float64{"seq": float64(i)}
	return r
}

// wedge occupies the gated dispatcher with one default-tenant request so
// subsequent submissions pile up in the tenant queues. It returns the
// submit's error channel.
func wedge(t *testing.T, b *Batcher) chan error {
	t.Helper()
	done := make(chan error, 1)
	go func() {
		_, err := b.Submit(context.Background(), testReq())
		done <- err
	}()
	// Wait until the dispatcher has popped the request (it then blocks at
	// the backend's gate; with MaxBatch 1 it cannot pop another).
	deadline := time.Now().Add(2 * time.Second)
	for {
		total := uint64(0)
		for _, ts := range b.Tenants() {
			total += ts.Dispatched
		}
		if total >= 1 {
			return done
		}
		if time.Now().After(deadline) {
			t.Fatal("dispatcher never picked up the wedge request")
		}
		time.Sleep(time.Millisecond)
	}
}

// waitQueued polls until the batcher's total backlog reaches n.
func waitQueued(t *testing.T, b *Batcher, n int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for b.QueueLen() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queue length %d never reached %d", b.QueueLen(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestBatcherWFQFairness: with two tenants backed up behind a wedged
// dispatcher, drain shares must track the configured weights — weight 1 vs
// weight 3 yields a 1:3 dispatch ratio over any aligned window.
func TestBatcherWFQFairness(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{})}
	b := NewBatcher(be, Config{
		MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 64,
		Tenants: map[string]TenantConfig{
			"light": {Weight: 1},
			"heavy": {Weight: 3},
		},
	})
	first := wedge(t, b)

	const nLight, nHeavy = 8, 24
	errs := make(chan error, nLight+nHeavy)
	submit := func(tenant string, i int) {
		go func() {
			_, err := b.Submit(context.Background(), tenantReq(tenant, i))
			errs <- err
		}()
	}
	// Queue deterministically: every light request is in before any heavy
	// one, so FIFO would drain all 8 light requests first — the weighted
	// interleave below can only come from the deficit rotation.
	for i := 0; i < nLight; i++ {
		submit("light", i)
		waitQueued(t, b, i+1)
	}
	for i := 0; i < nHeavy; i++ {
		submit("heavy", i)
		waitQueued(t, b, nLight+i+1)
	}

	close(be.gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < nLight+nHeavy; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}

	order := be.tenantOrder()
	if len(order) != 1+nLight+nHeavy {
		t.Fatalf("dispatched %d requests, want %d", len(order), 1+nLight+nHeavy)
	}
	// Drop the wedge request; over the first 24 weighted pops the shares
	// must track 1:3 (6 light, 18 heavy), give or take rotation phase.
	window := order[1 : 1+24]
	light := 0
	for _, tn := range window {
		if tn == "light" {
			light++
		}
	}
	if light < 5 || light > 7 {
		t.Fatalf("light drained %d of first 24 (order %v), want ~6 — weights not honored", light, window)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherSingleTenantFIFO: with one tenant the deficit rotation must be
// bit-identical to a FIFO — requests drain in exact arrival order.
func TestBatcherSingleTenantFIFO(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{})}
	b := NewBatcher(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 32})
	first := wedge(t, b)

	const n = 10
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		req := testReq()
		req.Attrs = map[string]float64{"seq": float64(i)}
		go func(r shmt.BatchRequest) {
			_, err := b.Submit(context.Background(), r)
			errs <- err
		}(req)
		waitQueued(t, b, i+1)
	}

	close(be.gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		if err := <-errs; err != nil {
			t.Fatalf("submit %d: %v", i, err)
		}
	}
	reqs := be.requests()
	if len(reqs) != n+1 {
		t.Fatalf("dispatched %d, want %d", len(reqs), n+1)
	}
	for i, r := range reqs[1:] {
		if got := r.Attrs["seq"]; got != float64(i) {
			t.Fatalf("dispatch %d has seq %v, want %d — not FIFO", i, got, i)
		}
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestBatcherTenantQueueDepthSheds: a tenant at its own queue depth sheds
// with an error naming the tenant, while other tenants keep queueing.
func TestBatcherTenantQueueDepthSheds(t *testing.T) {
	be := &fakeBackend{gate: make(chan struct{})}
	b := NewBatcher(be, Config{
		MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 8,
		Tenants: map[string]TenantConfig{"small": {Weight: 1, QueueDepth: 1}},
	})
	first := wedge(t, b)

	queued := make(chan error, 2)
	go func() {
		_, err := b.Submit(context.Background(), tenantReq("small", 0))
		queued <- err
	}()
	waitQueued(t, b, 1)

	_, err := b.Submit(context.Background(), tenantReq("small", 1))
	if !errors.Is(err, ErrQueueFull) {
		t.Fatalf("over-depth submit: err = %v, want ErrQueueFull", err)
	}
	if !strings.Contains(err.Error(), `"small"`) {
		t.Fatalf("shed error %q does not name the tenant", err)
	}

	// The other tenant is unaffected by small's full queue.
	go func() {
		_, err := b.Submit(context.Background(), tenantReq("other", 0))
		queued <- err
	}()
	waitQueued(t, b, 2)

	close(be.gate)
	if err := <-first; err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if err := <-queued; err != nil {
			t.Fatalf("queued submit %d: %v", i, err)
		}
	}

	var small *TenantStatus
	for _, ts := range b.Tenants() {
		if ts.Name == "small" {
			s := ts
			small = &s
		}
	}
	if small == nil || small.Shed != 1 || small.QueueDepth != 1 {
		t.Fatalf("tenant status %+v, want small with Shed=1 QueueDepth=1", small)
	}
	if err := b.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
