package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"shmt"
	"shmt/internal/telemetry"
)

// tracedSession builds a real session with telemetry enabled plus a traced
// server in front of it.
func tracedSession(t *testing.T, cfg Config) (*shmt.Session, *Server, *httptest.Server) {
	t.Helper()
	scfg := shmt.Config{Seed: 1, TargetPartitions: 8}
	scfg.Telemetry.Enabled = true
	sess, err := shmt.NewSession(scfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { sess.Close() })
	cfg.Spans = sess.TelemetryRecorder()
	cfg.Tracing = true
	srv := New(sess, cfg)
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(func() { srv.Shutdown(context.Background()) })
	return sess, srv, ts
}

// TestHTTPTraceRoundTrip: an inbound X-SHMT-Trace-Id must come back on the
// response, appear in the trace block with a non-empty stage breakdown that
// sums to at most the total, and be retrievable from /debug/requests.
func TestHTTPTraceRoundTrip(t *testing.T) {
	_, _, ts := tracedSession(t, Config{MaxBatch: 4, MaxLinger: time.Millisecond})

	const inbound = "router-7f.42"
	req, _ := http.NewRequest("POST", ts.URL+"/v1/execute",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	req.Header.Set(TraceHeader, inbound)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	if got := resp.Header.Get(TraceHeader); got != inbound {
		t.Fatalf("trace header = %q, want round-tripped %q", got, inbound)
	}
	var body executeResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Trace == nil || body.Trace.TraceID != inbound {
		t.Fatalf("trace block = %+v, want trace_id %q", body.Trace, inbound)
	}
	if body.Trace.TotalSeconds <= 0 {
		t.Fatalf("trace total = %g", body.Trace.TotalSeconds)
	}
	sum := body.Trace.Stages.Sum()
	if sum <= 0 {
		t.Fatalf("empty stage breakdown: %+v", body.Trace.Stages)
	}
	// Stages are disjoint sub-intervals of the request, so their sum cannot
	// exceed the total (the remainder is JSON decode/encode overhead).
	if sum > body.Trace.TotalSeconds {
		t.Fatalf("stages sum %g > total %g: %+v", sum, body.Trace.TotalSeconds, body.Trace.Stages)
	}
	if body.Trace.Stages.Execute <= 0 {
		t.Fatalf("request that executed reports no execute stage: %+v", body.Trace.Stages)
	}

	// The flight recorder has it, newest first, with the same breakdown shape.
	dr, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	var dump debugRequestsResponse
	if err := json.NewDecoder(dr.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if dump.Count == 0 {
		t.Fatal("flight recorder is empty after a traced request")
	}
	var found *telemetry.RequestTrace
	for i := range dump.Traces {
		if dump.Traces[i].TraceID == inbound {
			found = &dump.Traces[i]
			break
		}
	}
	if found == nil {
		t.Fatalf("trace %q not in /debug/requests: %+v", inbound, dump.Traces)
	}
	if found.Op != "add" || found.Status != "ok" || found.BatchSize < 1 {
		t.Fatalf("retained trace = %+v", found)
	}
	if s := found.Stages.Sum(); s <= 0 || s > found.TotalSeconds {
		t.Fatalf("retained stage sum %g vs total %g", s, found.TotalSeconds)
	}
}

// TestHTTPTraceGeneratedAndSanitized: without an inbound ID the server mints
// one; an inbound ID with forbidden characters is replaced, not echoed.
func TestHTTPTraceGeneratedAndSanitized(t *testing.T) {
	_, _, ts := tracedSession(t, Config{MaxBatch: 1, MaxLinger: time.Millisecond})

	post := func(traceHeader string) string {
		req, _ := http.NewRequest("POST", ts.URL+"/v1/execute",
			strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
		if traceHeader != "" {
			req.Header.Set(TraceHeader, traceHeader)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		io.Copy(io.Discard, resp.Body)
		return resp.Header.Get(TraceHeader)
	}

	if got := post(""); got == "" {
		t.Fatal("no generated trace ID on the response")
	}
	// HTTP-legal (no control bytes) but fails the trace-ID charset.
	evil := `x"} malicious{label="injected`
	if got := post(evil); got == evil || got == "" {
		t.Fatalf("unsanitized inbound ID echoed: %q", got)
	}
	if got := post("ok-id.42:a_b"); got != "ok-id.42:a_b" {
		t.Fatalf("valid inbound ID replaced: %q", got)
	}
}

// TestTracingDisabledOmitsEverything: with Tracing off there is no trace
// header, no trace block, and /debug/requests 404s.
func TestTracingDisabledOmitsEverything(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Post(ts.URL+"/v1/execute", "application/json",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if got := resp.Header.Get(TraceHeader); got != "" {
		t.Fatalf("tracing disabled but trace header %q present", got)
	}
	var body executeResponse
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.Trace != nil {
		t.Fatalf("tracing disabled but trace block present: %+v", body.Trace)
	}
	dr, err := http.Get(ts.URL + "/debug/requests")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	if dr.StatusCode != http.StatusNotFound {
		t.Fatalf("/debug/requests without tracing: status %d, want 404", dr.StatusCode)
	}
}

// TestSlowSLOFlightRecorder: with a sub-microsecond SLO every request is
// slow, so the slow-only dump is non-empty and marked.
func TestSlowSLOFlightRecorder(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond,
		Tracing: true, SlowSLO: time.Nanosecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Post(ts.URL+"/v1/execute", "application/json",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	dr, err := http.Get(ts.URL + "/debug/requests?slow=1")
	if err != nil {
		t.Fatal(err)
	}
	defer dr.Body.Close()
	var dump debugRequestsResponse
	if err := json.NewDecoder(dr.Body).Decode(&dump); err != nil {
		t.Fatal(err)
	}
	if !dump.SlowOnly || dump.Count == 0 || !dump.Traces[0].Slow {
		t.Fatalf("slow dump = %+v", dump)
	}
}

// TestStatusz checks the JSON snapshot against a real session (topology
// fields present) and the HTML rendering.
func TestStatusz(t *testing.T) {
	_, _, ts := tracedSession(t, Config{MaxBatch: 4, MaxLinger: time.Millisecond})

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statuszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" {
		t.Fatalf("status = %q", st.Status)
	}
	if st.Policy == "" || len(st.Devices) == 0 {
		t.Fatalf("missing backend topology: %+v", st)
	}
	if st.PlanCache == nil {
		t.Fatal("missing plan-cache stats for a real session")
	}
	if st.QueueCap < 1 || st.MaxBatch != 4 {
		t.Fatalf("queue/batch config: %+v", st)
	}
	if !st.Tracing || st.FlightRecorder == nil {
		t.Fatalf("tracing fields: %+v", st)
	}
	if st.GoVersion == "" || st.UptimeSeconds < 0 {
		t.Fatalf("process fields: %+v", st)
	}

	html, err := http.Get(ts.URL + "/statusz?format=html")
	if err != nil {
		t.Fatal(err)
	}
	defer html.Body.Close()
	page, _ := io.ReadAll(html.Body)
	if ct := html.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/html") {
		t.Fatalf("html content-type = %q", ct)
	}
	for _, want := range []string{"<html", "shmt serving status", "flight recorder", "/debug/requests"} {
		if !strings.Contains(string(page), want) {
			t.Fatalf("html page missing %q:\n%s", want, page)
		}
	}
}

// TestStatuszFakeBackendOmitsTopology: a minimal Backend (no optional
// interfaces) still gets a statusz, just without the topology fields.
func TestStatuszFakeBackendOmitsTopology(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st statuszResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Status != "ok" || st.Policy != "" || st.Devices != nil || st.PlanCache != nil {
		t.Fatalf("fake-backend statusz = %+v", st)
	}
}

// TestHealthzTransitions drives the full health state machine over the fake
// backend: ok → degraded (breaker open) → ok (re-admitted), and draining
// takes precedence over degraded during shutdown.
func TestHealthzTransitions(t *testing.T) {
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	health := func() (int, healthResponse) {
		resp, err := http.Get(ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var h healthResponse
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, h
	}

	if code, h := health(); code != http.StatusOK || h.Status != "ok" {
		t.Fatalf("healthy: %d %+v", code, h)
	}
	be.quar = []string{"tpu"}
	if code, h := health(); code != http.StatusOK || h.Status != "degraded" || len(h.Quarantined) != 1 {
		t.Fatalf("degraded: %d %+v", code, h)
	}
	be.quar = nil
	if code, h := health(); code != http.StatusOK || h.Status != "ok" || h.Quarantined != nil {
		t.Fatalf("re-admitted: %d %+v", code, h)
	}

	// Draining beats degraded: even with open breakers the status must be
	// draining (and 503) so load balancers stop routing.
	be.quar = []string{"tpu"}
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	if code, h := health(); code != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("draining: %d %+v", code, h)
	}
}

// TestHealthzChaosBreakerCycle runs the real stack through a chaos outage:
// the breaker opens mid-round (observed by querying /healthz from inside the
// breaker-open callback — the only deterministic window), the probe
// re-admits the device, and /healthz is back to ok afterwards.
func TestHealthzChaosBreakerCycle(t *testing.T) {
	// BreakerThreshold 1 so the single chunk the planner routes to the
	// chaotic tpu is enough to open the breaker; FailFirstOps 1 so the probe
	// (the next tpu op) succeeds and re-admits within the same round.
	scfg := shmt.Config{Seed: 5, TargetPartitions: 16,
		Chaos:      map[string]shmt.ChaosConfig{"tpu": {FailFirstOps: 1}},
		Resilience: shmt.Resilience{BreakerThreshold: 1, MaxRetries: 16},
	}
	sess, err := shmt.NewSession(scfg)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	srv := New(sess, Config{MaxBatch: 1, MaxLinger: time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	defer srv.Shutdown(context.Background())

	var events []string
	var midOutage healthResponse
	sess.OnBreakerEvent(func(device, event string) {
		events = append(events, device+":"+event)
		if event == "open" && midOutage.Status == "" {
			// The breaker is open right now; /healthz must say degraded.
			resp, err := http.Get(ts.URL + "/healthz")
			if err != nil {
				t.Errorf("healthz during outage: %v", err)
				return
			}
			defer resp.Body.Close()
			json.NewDecoder(resp.Body).Decode(&midOutage)
		}
	})

	// The payload must be large enough that the planner spreads partitions
	// over every device — a tiny matrix never routes work to the chaotic tpu.
	const dim = 64
	va, vb := make([]float64, dim*dim), make([]float64, dim*dim)
	for i := range va {
		va[i], vb[i] = float64(i), float64(2*i)
	}
	ja, _ := json.Marshal(va)
	jb, _ := json.Marshal(vb)
	body := fmt.Sprintf(`{"op":"add","inputs":[{"rows":%d,"cols":%d,"data":%s},{"rows":%d,"cols":%d,"data":%s}]}`,
		dim, dim, ja, dim, dim, jb)
	resp, err := http.Post(ts.URL+"/v1/execute", "application/json",
		strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("outage round should survive: %d %s", resp.StatusCode, body)
	}
	if resp.Header.Get("X-SHMT-Degraded") != "true" {
		t.Fatal("outage round not flagged degraded")
	}

	if len(events) < 2 || !strings.HasSuffix(events[0], ":open") {
		t.Fatalf("breaker events = %v, want open then readmitted", events)
	}
	sawReadmit := false
	for _, e := range events {
		if strings.HasSuffix(e, ":readmitted") {
			sawReadmit = true
		}
	}
	if !sawReadmit {
		t.Fatalf("no re-admission event: %v", events)
	}
	if midOutage.Status != "degraded" || len(midOutage.Quarantined) == 0 {
		t.Fatalf("mid-outage healthz = %+v, want degraded", midOutage)
	}

	// After probe re-admission the cycle closes: ok again, nothing quarantined.
	after, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer after.Body.Close()
	var h healthResponse
	if err := json.NewDecoder(after.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	if h.Status != "ok" || h.Quarantined != nil {
		t.Fatalf("post-recovery healthz = %+v, want ok", h)
	}
}

// TestRequestLogLine: the per-request slog line carries the trace ID, op,
// outcome and stage timings, at Warn for shed/draining outcomes.
func TestRequestLogLine(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewJSONHandler(&buf, nil))
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond,
		Tracing: true, Logger: logger})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := http.Post(ts.URL+"/v1/execute", "application/json",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var line map[string]any
	dec := json.NewDecoder(&buf)
	for {
		var l map[string]any
		if err := dec.Decode(&l); err != nil {
			break
		}
		if l["msg"] == "request" {
			line = l
			break
		}
	}
	if line == nil {
		t.Fatalf("no request log line in:\n%s", buf.String())
	}
	for _, k := range []string{"trace_id", "op", "outcome", "batch_size", "total_ms", "queue_wait_ms", "execute_ms"} {
		if _, ok := line[k]; !ok {
			t.Fatalf("request line missing %q: %v", k, line)
		}
	}
	if line["op"] != "add" || line["outcome"] != "ok" || line["trace_id"] == "" {
		t.Fatalf("request line = %v", line)
	}

	// Drain, then a refused request must log at WARN with outcome draining.
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	resp2, err := http.Post(ts.URL+"/v1/execute", "application/json",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(buf.String(), `"outcome":"draining"`) || !strings.Contains(buf.String(), `"level":"WARN"`) {
		t.Fatalf("draining refusal not logged at WARN:\n%s", buf.String())
	}
}

// TestLifecycleLogLines: Shutdown emits drain begin/end.
func TestLifecycleLogLines(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	be := &fakeBackend{}
	srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, Logger: logger})
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "drain begin") || !strings.Contains(out, "drain end") {
		t.Fatalf("missing drain lifecycle lines:\n%s", out)
	}
}

// TestPprofOptIn: the pprof index mounts only with EnablePprof.
func TestPprofOptIn(t *testing.T) {
	be := &fakeBackend{}
	for _, enabled := range []bool{false, true} {
		srv := New(be, Config{MaxBatch: 1, MaxLinger: time.Millisecond, EnablePprof: enabled})
		ts := httptest.NewServer(srv.Handler())
		resp, err := http.Get(ts.URL + "/debug/pprof/")
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		wantOK := enabled
		if gotOK := resp.StatusCode == http.StatusOK; gotOK != wantOK {
			t.Fatalf("pprof enabled=%v: status %d", enabled, resp.StatusCode)
		}
		ts.Close()
		srv.Shutdown(context.Background())
	}
}

// TestExecuteEmitsRequestLaneSpans: a traced request leaves root spans (the
// request interval plus its stage slices) on the session recorder, rendered
// under the request process in the Perfetto export.
func TestExecuteEmitsRequestLaneSpans(t *testing.T) {
	sess, _, ts := tracedSession(t, Config{MaxBatch: 1, MaxLinger: time.Millisecond})

	req, _ := http.NewRequest("POST", ts.URL+"/v1/execute",
		strings.NewReader(execBody([]float64{1, 2, 3, 4}, []float64{5, 6, 7, 8})))
	req.Header.Set(TraceHeader, "lane-test-1")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	var roots, engineTagged int
	for _, s := range sess.TelemetryRecorder().Spans() {
		if s.TraceID != "lane-test-1" {
			continue
		}
		if s.Root {
			roots++
		} else {
			engineTagged++
		}
	}
	// At minimum the handler's request span plus the batcher's stage slices.
	if roots < 2 {
		t.Fatalf("root spans for the trace = %d, want request + stage slices", roots)
	}
	if engineTagged == 0 {
		t.Fatal("no engine spans attributed to the trace")
	}

	var buf bytes.Buffer
	if err := sess.WriteTrace(&buf); err != nil {
		t.Fatal(err)
	}
	var tf telemetry.TraceFile
	if err := json.Unmarshal(buf.Bytes(), &tf); err != nil {
		t.Fatal(err)
	}
	var lane, arrows bool
	for _, ev := range tf.TraceEvents {
		if ev.Ph == "M" && ev.Name == "thread_name" && ev.PID == 3 {
			if name, _ := ev.Args["name"].(string); name == "lane-test-1" {
				lane = true
			}
		}
		if ev.Name == "request" && ev.Ph == "s" {
			arrows = true
		}
	}
	if !lane || !arrows {
		t.Fatalf("Perfetto export missing request lane (%v) or flow arrows (%v)", lane, arrows)
	}
}

// BenchmarkServeTraceOverhead measures Batcher.Submit against an immediate
// fake backend with tracing off vs on — the serving layer's per-request
// tracing cost, isolated from engine work. The numbers behind
// BENCH_serve.json; the disabled path is the PR 5 baseline and must not
// regress.
func BenchmarkServeTraceOverhead(b *testing.B) {
	run := func(b *testing.B, tracing bool) {
		be := &fakeBackend{}
		cfg := Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 64, Tracing: tracing}
		if tracing {
			cfg.Spans = telemetry.NewRecorder()
			cfg.SlowSLO = time.Second
		}
		batcher := NewBatcher(be, cfg)
		defer batcher.Close(context.Background())
		req := testReq()
		ctx := context.Background()
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if tracing {
				req.TraceID = "bench-trace"
			}
			if _, err := batcher.Submit(ctx, req); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("disabled", func(b *testing.B) { run(b, false) })
	b.Run("enabled", func(b *testing.B) { run(b, true) })
}

var _ = fmt.Sprintf // keep fmt imported for debug helpers
