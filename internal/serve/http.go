package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"shmt"
	"shmt/internal/telemetry"
)

// The wire format. A request is one VOP: opcode by name, dense row-major
// inputs, optional scalar attrs and deadline.
//
//	POST /v1/execute
//	{"op":"add","inputs":[{"rows":2,"cols":2,"data":[1,2,3,4]},
//	                      {"rows":2,"cols":2,"data":[5,6,7,8]}],
//	 "attrs":{},"timeout_ms":1000}
//
// Responses carry the output matrix plus the round's accounting, and the
// degradation headers X-SHMT-Batch-Size, X-SHMT-Degraded and (when breakers
// are open) X-SHMT-Quarantined.
type matrixJSON struct {
	Rows int       `json:"rows"`
	Cols int       `json:"cols"`
	Data []float64 `json:"data"`
}

type executeRequest struct {
	Op        string             `json:"op"`
	Inputs    []matrixJSON       `json:"inputs"`
	Attrs     map[string]float64 `json:"attrs,omitempty"`
	TimeoutMs int                `json:"timeout_ms,omitempty"`
}

type executeResponse struct {
	Output          matrixJSON     `json:"output"`
	HLOPs           int            `json:"hlops"`
	MakespanSeconds float64        `json:"makespan_seconds"`
	BatchSize       int            `json:"batch_size"`
	Degraded        *shmt.Degraded `json:"degraded,omitempty"`
	// Trace carries the request's ID and stage breakdown when tracing is
	// enabled (Config.Tracing); absent otherwise.
	Trace *traceBlock `json:"trace,omitempty"`
}

// traceBlock is the response's optional tracing annex.
type traceBlock struct {
	TraceID      string                   `json:"trace_id"`
	Tenant       string                   `json:"tenant,omitempty"`
	TotalSeconds float64                  `json:"total_seconds"`
	Stages       telemetry.StageBreakdown `json:"stages"`
	// DeadlinePressure is the QAWS criticality boost the request's deadline
	// earned (0 when Config.CriticalDeadline is off or the deadline is
	// loose); CriticalHLOPs/DeviceHLOPs show where its partitions actually
	// ran, so a tight-deadline request can verify it kept accurate devices.
	DeadlinePressure float64        `json:"deadline_pressure,omitempty"`
	CriticalHLOPs    int            `json:"critical_hlops"`
	DeviceHLOPs      map[string]int `json:"device_hlops,omitempty"`
}

type healthResponse struct {
	Status      string   `json:"status"` // "ok" | "degraded" | "draining"
	Quarantined []string `json:"quarantined,omitempty"`
}

type errorResponse struct {
	Error string `json:"error"`
}

// Server ties the batcher to an HTTP listener: POST /v1/execute for work,
// GET /healthz for health (degraded while breakers are open, draining — and
// 503 — during shutdown), GET /metrics for Prometheus exposition of the
// process registry.
type Server struct {
	cfg      Config
	be       Backend
	batcher  *Batcher
	hs       *http.Server
	ln       net.Listener
	draining atomic.Bool
	started  time.Time
	flight   *telemetry.FlightRecorder
	logger   *slog.Logger
}

// New builds a server around be. Call Listen then Serve; Shutdown drains.
func New(be Backend, cfg Config) *Server {
	s := &Server{cfg: cfg.withDefaults(), be: be, started: time.Now(), logger: cfg.Logger}
	s.batcher = NewBatcher(be, s.cfg)
	if s.cfg.Tracing {
		s.flight = telemetry.NewFlightRecorder(s.cfg.FlightRecorderSize, s.cfg.SlowSLO)
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/execute", s.handleExecute)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /statusz", s.handleStatusz)
	mux.HandleFunc("GET /debug/requests", s.handleDebugRequests)
	mux.HandleFunc("GET /metrics", telemetry.ExpositionHandler(telemetry.Default))
	if s.cfg.EnablePprof {
		mux.HandleFunc("GET /debug/pprof/", pprof.Index)
		mux.HandleFunc("GET /debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("GET /debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("GET /debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("GET /debug/pprof/trace", pprof.Trace)
	}
	s.hs = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return s
}

// FlightRecorder returns the server's trace retention buffer (nil unless
// Config.Tracing).
func (s *Server) FlightRecorder() *telemetry.FlightRecorder { return s.flight }

// Handler exposes the mux (httptest-friendly).
func (s *Server) Handler() http.Handler { return s.hs.Handler }

// Listen binds addr (host:port; port 0 picks a free port).
func (s *Server) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("serve: listen: %w", err)
	}
	s.ln = ln
	return nil
}

// Addr returns the bound address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve accepts connections until Shutdown; it returns nil on a clean
// drain-initiated stop.
func (s *Server) Serve() error {
	if s.ln == nil {
		return errors.New("serve: Serve before Listen")
	}
	err := s.hs.Serve(s.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains gracefully: new requests are refused with 503 +
// Retry-After, queued requests finish their rounds, in-flight handlers
// complete, then the listener closes — all bounded by ctx. The backend
// session is the caller's to close afterwards.
func (s *Server) Shutdown(ctx context.Context) error {
	s.draining.Store(true)
	if s.logger != nil {
		s.logger.Info("drain begin", "queued", s.batcher.QueueLen())
	}
	err := s.batcher.Close(ctx)
	if herr := s.hs.Shutdown(ctx); err == nil {
		err = herr
	}
	if s.logger != nil {
		if err != nil {
			s.logger.Error("drain end", "err", err)
		} else {
			s.logger.Info("drain end")
		}
	}
	return err
}

// TraceHeader is the header carrying a request's trace ID, inbound (a
// router tier propagating its own ID) and outbound (the echo).
const TraceHeader = "X-SHMT-Trace-Id"

// TenantHeader names the tenant a request is billed and queued under. The
// router tier keys placement on it and forwards it verbatim; the backend
// maps requests without one to DefaultTenant.
const TenantHeader = "X-SHMT-Tenant"

// SanitizeTenant accepts a tenant name if it is non-empty, at most 64
// bytes, and contains only [A-Za-z0-9._:-] (the trace-ID charset); anything
// else returns "" and the request is queued under DefaultTenant.
func SanitizeTenant(t string) string {
	if t == "" || len(t) > 64 {
		return ""
	}
	for i := 0; i < len(t); i++ {
		c := t[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
		default:
			return ""
		}
	}
	return t
}

// SanitizeTraceID accepts an inbound trace ID if it is non-empty, at most
// 128 bytes, and contains only [A-Za-z0-9._:-]; anything else returns ""
// (and a fresh ID is generated instead). The router tier applies the same
// rule at cluster admission so one charset governs the whole request path.
func SanitizeTraceID(id string) string {
	if id == "" || len(id) > 128 {
		return ""
	}
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9',
			c == '.', c == '_', c == ':', c == '-':
		default:
			return ""
		}
	}
	return id
}

func (s *Server) handleExecute(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := "error"

	tenant := SanitizeTenant(r.Header.Get(TenantHeader))
	tenantLabel := tenant
	if tenantLabel == "" {
		tenantLabel = DefaultTenant
	}
	telemetry.ServeTenantRequests.With(tenantLabel).Inc()
	if tenant != "" {
		w.Header().Set(TenantHeader, tenant)
	}

	// Tracing-only request state. With Config.Tracing off none of this is
	// touched: no trace ID, no clock reads beyond `start`, no allocations.
	var traceID, opName, errMsg string
	var stages telemetry.StageBreakdown
	var startRel float64
	batchSize := 0
	if s.cfg.Tracing {
		if traceID = SanitizeTraceID(r.Header.Get(TraceHeader)); traceID == "" {
			traceID = telemetry.NewTraceID()
		}
		w.Header().Set(TraceHeader, traceID)
		if s.cfg.Spans != nil {
			startRel = s.cfg.Spans.Now()
		}
	}

	defer func() {
		telemetry.ServeRequests.With(outcome).Inc()
		total := time.Since(start).Seconds()
		if !s.cfg.Tracing {
			telemetry.ServeRequestSeconds.Observe(total)
		} else {
			telemetry.ServeRequestSeconds.ObserveExemplar(total, traceID)
			if s.cfg.Spans != nil {
				s.cfg.Spans.RecordSpan(telemetry.Span{
					Name: "request " + opName, Clock: telemetry.ClockWall,
					Start: startRel, End: startRel + total,
					TraceID: traceID, Root: true,
				})
			}
			if s.flight != nil {
				s.flight.Record(telemetry.RequestTrace{
					TraceID: traceID, Op: opName, Tenant: tenantLabel, Status: outcome,
					BatchSize: batchSize, Start: start,
					TotalSeconds: total, Stages: stages, Error: errMsg,
				})
			}
		}
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), logLevel(outcome), "request",
				slog.String("trace_id", traceID),
				slog.String("op", opName),
				slog.String("tenant", tenantLabel),
				slog.String("outcome", outcome),
				slog.Int("batch_size", batchSize),
				slog.Float64("total_ms", total*1e3),
				slog.Float64("queue_wait_ms", stages.QueueWait*1e3),
				slog.Float64("batch_linger_ms", stages.BatchLinger*1e3),
				slog.Float64("plan_ms", stages.Plan*1e3),
				slog.Float64("quantize_transfer_ms", stages.Transfer*1e3),
				slog.Float64("execute_ms", stages.Execute*1e3),
				slog.Float64("aggregate_ms", stages.Aggregate*1e3),
				slog.String("err", errMsg),
			)
		}
	}()

	var req executeRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		outcome, errMsg = "invalid", err.Error()
		writeError(w, http.StatusBadRequest, fmt.Errorf("bad request body: %w", err))
		return
	}
	opName = req.Op
	op, ok := shmt.ParseOp(req.Op)
	if !ok {
		outcome, errMsg = "invalid", "unknown op"
		writeError(w, http.StatusBadRequest, fmt.Errorf("unknown op %q", req.Op))
		return
	}
	if len(req.Inputs) == 0 {
		outcome, errMsg = "invalid", "no inputs"
		writeError(w, http.StatusBadRequest, errors.New("no inputs"))
		return
	}
	inputs := make([]*shmt.Matrix, len(req.Inputs))
	for i, m := range req.Inputs {
		mat, err := shmt.FromSlice(m.Rows, m.Cols, m.Data)
		if err != nil {
			outcome, errMsg = "invalid", err.Error()
			writeError(w, http.StatusBadRequest, fmt.Errorf("input %d: %w", i, err))
			return
		}
		inputs[i] = mat
	}

	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMs > 0 {
		timeout = time.Duration(req.TimeoutMs) * time.Millisecond
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	defer cancel()

	// A deadline tighter than CriticalDeadline translates into QAWS
	// criticality pressure: the engine routes more of the request's
	// partitions to the most accurate devices so it doesn't pay the NPU
	// quality/repair tax while the clock runs out.
	pressure := 0.0
	if cd := s.cfg.CriticalDeadline; cd > 0 && timeout < cd {
		pressure = 1 - float64(timeout)/float64(cd)
	}

	res, err := s.batcher.Submit(ctx, shmt.BatchRequest{
		Op: op, Inputs: inputs, Attrs: req.Attrs,
		TraceID: traceID, Tenant: tenantLabel, DeadlinePressure: pressure,
	})
	switch {
	case err == nil:
	case errors.Is(err, ErrQueueFull):
		outcome, errMsg = "shed", err.Error()
		w.Header().Set("Retry-After", RetryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusTooManyRequests, err)
		return
	case errors.Is(err, ErrDraining), errors.Is(err, shmt.ErrSessionClosed):
		outcome, errMsg = "draining", err.Error()
		w.Header().Set("Retry-After", RetryAfterSeconds(s.cfg.RetryAfter))
		writeError(w, http.StatusServiceUnavailable, err)
		return
	case errors.Is(err, context.DeadlineExceeded):
		outcome, errMsg = "timeout", err.Error()
		writeError(w, http.StatusGatewayTimeout, err)
		return
	case errors.Is(err, context.Canceled):
		outcome, errMsg = "canceled", err.Error()
		// Client went away; 499 matches the common reverse-proxy convention.
		writeError(w, 499, err)
		return
	default:
		errMsg = err.Error()
		writeError(w, http.StatusInternalServerError, err)
		return
	}
	outcome = "ok"
	batchSize, stages = res.BatchSize, res.Stages

	w.Header().Set("X-SHMT-Batch-Size", strconv.Itoa(res.BatchSize))
	w.Header().Set("X-SHMT-Degraded", strconv.FormatBool(res.Degraded != nil))
	if quar := s.be.QuarantinedDevices(); len(quar) > 0 {
		w.Header().Set("X-SHMT-Quarantined", strings.Join(quar, ","))
	}
	out := res.Report.Output
	resp := executeResponse{
		HLOPs:           res.Report.HLOPs,
		MakespanSeconds: res.Report.Makespan,
		BatchSize:       res.BatchSize,
		Degraded:        res.Degraded,
	}
	if s.cfg.Tracing {
		resp.Trace = &traceBlock{
			TraceID:          traceID,
			Tenant:           tenantLabel,
			TotalSeconds:     time.Since(start).Seconds(),
			Stages:           res.Stages,
			DeadlinePressure: pressure,
			CriticalHLOPs:    res.Report.CriticalHLOPs,
			DeviceHLOPs:      res.Report.DeviceHLOPs,
		}
	}
	if out != nil {
		resp.Output = matrixJSON{Rows: out.Rows, Cols: out.Cols, Data: out.Data}
	}
	writeJSON(w, http.StatusOK, resp)
}

// logLevel maps a request outcome to its log severity: client-side endings
// stay informational, server-side refusals warn, hard failures error.
func logLevel(outcome string) slog.Level {
	switch outcome {
	case "ok", "canceled", "invalid":
		return slog.LevelInfo
	case "shed", "draining", "timeout":
		return slog.LevelWarn
	default:
		return slog.LevelError
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if s.draining.Load() {
		writeJSON(w, http.StatusServiceUnavailable, healthResponse{Status: "draining"})
		return
	}
	if quar := s.be.QuarantinedDevices(); len(quar) > 0 {
		// Still serving (work reroutes around open breakers), so the status
		// stays 200 — load balancers should keep routing — but the body and
		// header flag the degradation for operators and smart clients.
		w.Header().Set("X-SHMT-Quarantined", strings.Join(quar, ","))
		writeJSON(w, http.StatusOK, healthResponse{Status: "degraded", Quarantined: quar})
		return
	}
	writeJSON(w, http.StatusOK, healthResponse{Status: "ok"})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, err error) {
	writeJSON(w, code, errorResponse{Error: err.Error()})
}

// RetryAfterSeconds renders a Retry-After hint as whole seconds, rounding
// up with a floor of 1 so sub-second hints never advertise "0". Both the
// backend and the router tier use it, so the hint can't drift between
// tiers.
func RetryAfterSeconds(d time.Duration) string {
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return strconv.Itoa(secs)
}
