package sampling

import (
	"math"
	"testing"
	"testing/quick"

	"shmt/internal/tensor"
)

func seq(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = float64(i)
	}
	return out
}

func TestMethodNamesAndSuffixes(t *testing.T) {
	if Striding.String() != "striding" || Striding.Suffix() != "S" {
		t.Fatal("striding labels wrong")
	}
	if UniformRandom.String() != "uniform" || UniformRandom.Suffix() != "U" {
		t.Fatal("uniform labels wrong")
	}
	if Reduction.String() != "reduction" || Reduction.Suffix() != "R" {
		t.Fatal("reduction labels wrong")
	}
	if Method(99).Suffix() != "?" {
		t.Fatal("unknown suffix wrong")
	}
}

func TestNewClampsRate(t *testing.T) {
	if s := New(Striding, -1, 1); s.Rate != 1.0/(1<<15) {
		t.Fatalf("default rate = %g", s.Rate)
	}
	if s := New(Striding, 2, 1); s.Rate != 1 {
		t.Fatalf("clamped rate = %g", s.Rate)
	}
}

func TestSampleVecCounts(t *testing.T) {
	s := New(Striding, 0.25, 1)
	got := s.SampleVec(seq(100))
	if len(got) != 25 {
		t.Fatalf("striding samples = %d want 25", len(got))
	}
	u := New(UniformRandom, 0.1, 1)
	if got := u.SampleVec(seq(100)); len(got) != 10 {
		t.Fatalf("uniform samples = %d want 10", len(got))
	}
	if got := s.SampleVec(nil); got != nil {
		t.Fatal("empty input should yield nil")
	}
	// Rate below 1/n still yields one sample.
	tiny := New(Striding, 1e-9, 1)
	if got := tiny.SampleVec(seq(10)); len(got) != 1 {
		t.Fatalf("minimum samples = %d want 1", len(got))
	}
}

func TestStridingSamplesAreRealElements(t *testing.T) {
	s := New(Striding, 0.1, 1)
	data := seq(50)
	for _, v := range s.SampleVec(data) {
		if v < 0 || v > 49 || v != math.Trunc(v) {
			t.Fatalf("sampled value %g not from input", v)
		}
	}
}

func TestUniformDeterministicPerSeed(t *testing.T) {
	a := New(UniformRandom, 0.2, 7).SampleVec(seq(100))
	b := New(UniformRandom, 0.2, 7).SampleVec(seq(100))
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed should reproduce samples")
		}
	}
}

func TestSampleRegionStridingCoversBothDimensions(t *testing.T) {
	// Column-varying matrix: a sampler stuck in one column sees a constant.
	m := tensor.NewMatrix(64, 64)
	for i := 0; i < 64; i++ {
		for j := 0; j < 64; j++ {
			m.Set(i, j, float64(j))
		}
	}
	s := New(Striding, 8.0/(64*64), 1) // 8 samples
	vals := s.SampleRegion(m, tensor.Region{Height: 64, Width: 64})
	st := tensor.Summarize(vals)
	if st.Range() == 0 {
		t.Fatal("striding locked onto a single column (degenerate stride)")
	}
}

func TestSampleRegionReductionLattice(t *testing.T) {
	m := tensor.NewMatrix(32, 32)
	s := New(Reduction, 4.0/(32*32), 1)
	vals := s.SampleRegion(m, tensor.Region{Height: 32, Width: 32})
	if len(vals) == 0 {
		t.Fatal("reduction produced no samples")
	}
}

func TestCostSamplesOrdering(t *testing.T) {
	n := 1 << 16
	str := New(Striding, 1.0/(1<<11), 1)
	red := New(Reduction, 1.0/(1<<11), 1)
	if red.CostSamples(n) <= str.CostSamples(n) {
		t.Fatalf("reduction cost %d should exceed striding %d (the paper's slowest mechanism)",
			red.CostSamples(n), str.CostSamples(n))
	}
}

func TestCriticalityMonotone(t *testing.T) {
	narrow := []float64{1, 1.1, 0.9, 1.05}
	wide := []float64{1, 9, -7, 1.05}
	if Criticality(wide) <= Criticality(narrow) {
		t.Fatal("wider distribution should rank more critical")
	}
	if Criticality(nil) != 0 {
		t.Fatal("empty criticality should be 0")
	}
}

func TestOddStepProperties(t *testing.T) {
	f := func(n, k int) bool {
		if n <= 0 || k <= 0 {
			return true
		}
		n, k = n%100000+1, k%1000+1
		s := oddStep(n, k)
		return s >= 1 && (s == 1 || s%2 == 1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: sample count never exceeds the data size, and criticality of
// samples is bounded by the criticality of the full data (range of a subset
// cannot exceed the range of the set; 2σ subset can exceed σ-wise, so check
// range only).
func TestPropertySubsetRange(t *testing.T) {
	f := func(seed int64) bool {
		s := New(Striding, 0.3, seed)
		data := seq(200)
		vals := s.SampleVec(data)
		if len(vals) > len(data) {
			return false
		}
		st := tensor.Summarize(vals)
		full := tensor.Summarize(data)
		return st.Range() <= full.Range()+1e-12
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
