// Package sampling implements QAWS's input-criticality sampling: the three
// sampling mechanisms of Algorithms 3–5 (striding, uniform random,
// reduction) and the two criticality metrics the paper adopts from IRA's
// input evaluation — data range and standard deviation within the sampled
// region (§3.5).
package sampling

import (
	"fmt"
	"math/rand"

	"shmt/internal/tensor"
)

// Method selects one of the paper's three sampling mechanisms.
type Method int

const (
	// Striding samples every s-th element (Algorithm 3). Suffix "S" in the
	// paper's QAWS-XS policy names.
	Striding Method = iota
	// UniformRandom samples N uniformly random elements (Algorithm 4).
	// Suffix "U".
	UniformRandom
	// Reduction walks every dimension with step s (Algorithm 5). Suffix "R";
	// the highest-overhead mechanism.
	Reduction
)

func (m Method) String() string {
	switch m {
	case Striding:
		return "striding"
	case UniformRandom:
		return "uniform"
	case Reduction:
		return "reduction"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// Suffix returns the single-letter policy suffix the paper uses (S/U/R).
func (m Method) Suffix() string {
	switch m {
	case Striding:
		return "S"
	case UniformRandom:
		return "U"
	case Reduction:
		return "R"
	default:
		return "?"
	}
}

// Sampler draws samples from data partitions at a configured rate.
type Sampler struct {
	Method Method
	// Rate is the portion of the raw dataset taken as samples (the paper
	// sweeps 2^-21 … 2^-14 in Fig. 9; 2^-15 is the recommended knee).
	Rate float64
	// Scale ≥ 1 is the virtual-platform factor: a partition of n real
	// elements stands in for n×Scale virtual elements, so the sampler draws
	// n×Rate×Scale samples (capped at n) and the cost model charges the
	// virtual touch count. 0 or 1 means unscaled.
	Scale float64
	rng   *rand.Rand
}

// New creates a sampler. Rate is clamped to (0, 1]; seed feeds the uniform
// random mechanism so runs are reproducible.
func New(m Method, rate float64, seed int64) *Sampler {
	if rate <= 0 {
		rate = 1.0 / (1 << 15)
	}
	if rate > 1 {
		rate = 1
	}
	return &Sampler{Method: m, Rate: rate, rng: rand.New(rand.NewSource(seed))}
}

func (s *Sampler) scale() float64 {
	if s.Scale < 1 {
		return 1
	}
	return s.Scale
}

// numSamples returns how many samples the rate implies for n real elements
// (standing in for n×Scale virtual ones), at least 1 and at most n.
func (s *Sampler) numSamples(n int) int {
	k := int(float64(n) * s.Rate * s.scale())
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	return k
}

// SampleVec draws from a flat data slice per the configured method.
func (s *Sampler) SampleVec(data []float64) []float64 {
	n := len(data)
	if n == 0 {
		return nil
	}
	k := s.numSamples(n)
	out := make([]float64, 0, k)
	switch s.Method {
	case Striding:
		// Algorithm 3: S_i = D[i*s]. The step is forced odd so that strides
		// through 2-D data do not lock onto one column (a power-of-two step
		// over a power-of-two row width visits a single column forever).
		step := oddStep(n, k)
		for i := 0; i < k; i++ {
			out = append(out, data[(i*step)%n])
		}
	case UniformRandom:
		// Algorithm 4: S_i = D[random()].
		for i := 0; i < k; i++ {
			out = append(out, data[s.rng.Intn(n)])
		}
	case Reduction:
		// Algorithm 5 on one dimension degenerates to a full strided walk.
		step := n / k
		if step < 1 {
			step = 1
		}
		for i := 0; i < n; i += step {
			out = append(out, data[i])
		}
	}
	return out
}

// SampleRegion draws from region reg of matrix m. Striding and uniform
// sampling treat the region as a flat sequence; reduction (Algorithm 5)
// walks both dimensions with the same step, which visits more points and is
// the paper's costliest mechanism.
func (s *Sampler) SampleRegion(m *tensor.Matrix, reg tensor.Region) []float64 {
	n := reg.Len()
	if n == 0 {
		return nil
	}
	k := s.numSamples(n)
	out := make([]float64, 0, k)
	switch s.Method {
	case Striding:
		step := oddStep(n, k)
		for i := 0; i < k; i++ {
			idx := (i * step) % n
			out = append(out, m.At(reg.Row+idx/reg.Width, reg.Col+idx%reg.Width))
		}
	case UniformRandom:
		for i := 0; i < k; i++ {
			idx := s.rng.Intn(n)
			out = append(out, m.At(reg.Row+idx/reg.Width, reg.Col+idx%reg.Width))
		}
	case Reduction:
		// Two-dimensional strided walk: step chosen so ~k points are kept
		// per dimension pass; the paper's reduction pass touches the full
		// lattice, so the cost model charges it more (see CostSamples).
		step := intSqrt(n / k)
		if step < 1 {
			step = 1
		}
		for i := 0; i < reg.Height; i += step {
			for j := 0; j < reg.Width; j += step {
				out = append(out, m.At(reg.Row+i, reg.Col+j))
			}
		}
	}
	return out
}

// CostSamples returns how many memory touches the sampling pass performs for
// a region of n elements — the input to the scheduler's overhead accounting.
// Reduction touches a denser lattice than it keeps, which is why the paper
// finds it the slowest (QAWS-?R bars in Fig. 6).
func (s *Sampler) CostSamples(n int) int {
	k := s.numSamples(n)
	if s.Method == Reduction {
		// The virtual lattice walk touches ~sqrt(virtualN x k) points.
		virtN := float64(n) * s.scale()
		c := intSqrt(int(virtN * float64(k)))
		if c < k {
			c = k
		}
		return c
	}
	return k
}

// Criticality summarises sampled values into the scalar criticality QAWS
// ranks by: the paper uses data range and standard deviation; we combine
// them as range + 2*std so either wide outliers or broad spread raise
// criticality. Empty samples yield zero.
func Criticality(samples []float64) float64 {
	st := tensor.Summarize(samples)
	return st.Range() + 2*st.Std
}

// oddStep derives the striding step for k samples over n elements, forced
// odd (and ≥1) to avoid column lock-in on power-of-two widths.
func oddStep(n, k int) int {
	step := n / k
	if step < 1 {
		return 1
	}
	if step%2 == 0 {
		step--
	}
	if step < 1 {
		step = 1
	}
	return step
}

func intSqrt(n int) int {
	if n <= 0 {
		return 0
	}
	x := n
	y := (x + 1) / 2
	for y < x {
		x = y
		y = (x + n/x) / 2
	}
	return x
}
