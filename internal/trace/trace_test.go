package trace

import (
	"strings"
	"sync"
	"testing"
)

func TestCountsAndBusy(t *testing.T) {
	tr := New()
	tr.Record(Event{HLOP: 0, Device: "gpu", Start: 0, End: 2})
	tr.Record(Event{HLOP: 1, Device: "tpu", Start: 0, End: 3, Stolen: true})
	tr.Record(Event{HLOP: 2, Device: "gpu", Start: 2, End: 5})
	counts := tr.CountByDevice()
	if counts["gpu"] != 2 || counts["tpu"] != 1 {
		t.Fatalf("counts = %v", counts)
	}
	busy := tr.BusyByDevice()
	if busy["gpu"] != 5 || busy["tpu"] != 3 {
		t.Fatalf("busy = %v", busy)
	}
	if tr.StolenCount() != 1 {
		t.Fatalf("stolen = %d", tr.StolenCount())
	}
}

func TestFootprintAccounting(t *testing.T) {
	tr := New()
	tr.AddBase(1000)
	tr.AllocStaging(200)
	tr.AllocStaging(300)
	if tr.PeakBytes() != 1500 {
		t.Fatalf("peak = %d", tr.PeakBytes())
	}
	tr.FreeStaging(300)
	tr.AllocStaging(100)
	if tr.PeakBytes() != 1500 {
		t.Fatalf("peak should remember the max, got %d", tr.PeakBytes())
	}
	if tr.BaseBytes() != 1000 {
		t.Fatalf("base = %d", tr.BaseBytes())
	}
	// Over-freeing clamps to zero rather than going negative.
	tr.FreeStaging(10_000)
	tr.AllocStaging(1)
	if tr.PeakBytes() != 1500 {
		t.Fatalf("peak moved after clamped free: %d", tr.PeakBytes())
	}
}

func TestEventsReturnsCopy(t *testing.T) {
	tr := New()
	tr.Record(Event{HLOP: 0, Device: "gpu"})
	events := tr.Events()
	events[0].Device = "mutated"
	if tr.Events()[0].Device != "gpu" {
		t.Fatal("Events must return a copy, not the backing slice")
	}
	if tr.Len() != 1 {
		t.Fatalf("Len = %d", tr.Len())
	}
}

// TestConcurrentRecording exercises the trace's internal locking the way the
// concurrent engine does: per-device workers record events and staging
// allocations directly, with no caller-side mutex. Under -race this verifies
// the "safe for concurrent use" contract.
func TestConcurrentRecording(t *testing.T) {
	tr := New()
	const workers, perWorker = 8, 200
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWorker; i++ {
				tr.Record(Event{HLOP: w*perWorker + i, Device: "gpu"})
				tr.AllocStaging(64)
				_ = tr.Len()
				tr.FreeStaging(64)
			}
		}(w)
	}
	wg.Wait()
	if tr.Len() != workers*perWorker {
		t.Fatalf("Len = %d, want %d", tr.Len(), workers*perWorker)
	}
	seen := map[int]bool{}
	for _, e := range tr.Events() {
		if seen[e.HLOP] {
			t.Fatalf("HLOP %d recorded twice", e.HLOP)
		}
		seen[e.HLOP] = true
	}
}

func TestSummary(t *testing.T) {
	tr := New()
	tr.Record(Event{Device: "gpu", Start: 0, End: 1})
	tr.Record(Event{Device: "tpu", Start: 0, End: 2, Stolen: true})
	s := tr.Summary()
	if !strings.Contains(s, "gpu") || !strings.Contains(s, "tpu") || !strings.Contains(s, "stolen") {
		t.Fatalf("summary = %q", s)
	}
}

func TestGantt(t *testing.T) {
	tr := New()
	tr.Record(Event{HLOP: 0, Device: "gpu", Start: 0, End: 0.5})
	tr.Record(Event{HLOP: 1, Device: "tpu", Start: 0, End: 0.3})
	tr.Record(Event{HLOP: 2, Device: "tpu", Start: 0.3, End: 0.6, Stolen: true})
	g := tr.Gantt(40)
	if !strings.Contains(g, "gpu") || !strings.Contains(g, "tpu") {
		t.Fatalf("gantt missing devices:\n%s", g)
	}
	if !strings.Contains(g, "▒") {
		t.Fatal("stolen work not marked")
	}
	if !strings.Contains(g, "(1 stolen)") {
		t.Fatal("stolen count missing")
	}
	// Idle tail on the gpu row (gpu finishes at 0.5 of 0.6).
	if !strings.Contains(g, "░") {
		t.Fatal("idle time not marked")
	}
	if New().Gantt(10) != "(no events)\n" {
		t.Fatal("empty trace rendering wrong")
	}
	// Default width path.
	if tr.Gantt(0) == "" {
		t.Fatal("default width failed")
	}
}
