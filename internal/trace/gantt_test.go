package trace

import (
	"strings"
	"testing"
)

// ganttRows splits a rendering into device rows and the axis line, and
// returns the timeline cell runes per device.
func ganttRows(t *testing.T, g string, width int) (map[string][]rune, string) {
	t.Helper()
	lines := strings.Split(strings.TrimRight(g, "\n"), "\n")
	if len(lines) < 2 {
		t.Fatalf("rendering too short:\n%s", g)
	}
	rows := map[string][]rune{}
	for _, line := range lines[:len(lines)-1] {
		open := strings.IndexByte(line, '|')
		shut := strings.LastIndexByte(line, '|')
		if open < 0 || shut <= open {
			t.Fatalf("row without timeline cells: %q", line)
		}
		name := strings.TrimSpace(line[:open])
		cells := []rune(line[open+1 : shut])
		if len(cells) != width {
			t.Fatalf("row %q has %d cells, want %d", name, len(cells), width)
		}
		rows[name] = cells
	}
	return rows, lines[len(lines)-1]
}

func TestGanttLayout(t *testing.T) {
	tr := New()
	// gpu busy for the first half, tpu busy throughout with the second HLOP
	// stolen; total timeline 1.0s.
	tr.Record(Event{HLOP: 0, Device: "gpu", Start: 0, End: 0.5})
	tr.Record(Event{HLOP: 1, Device: "tpu", Start: 0, End: 0.5})
	tr.Record(Event{HLOP: 2, Device: "tpu", Start: 0.5, End: 1.0, Stolen: true})

	const width = 20
	rows, axis := ganttRows(t, tr.Gantt(width), width)
	if len(rows) != 2 {
		t.Fatalf("rows = %v", rows)
	}

	gpu := rows["gpu"]
	// First half busy, tail idle.
	if gpu[0] != '█' || gpu[width/2-1] != '█' {
		t.Fatalf("gpu head should be busy: %q", string(gpu))
	}
	if gpu[width-1] != '░' {
		t.Fatalf("gpu tail should be idle: %q", string(gpu))
	}

	tpu := rows["tpu"]
	if tpu[0] != '█' {
		t.Fatalf("tpu head should be own work: %q", string(tpu))
	}
	if tpu[width-1] != '▒' {
		t.Fatalf("tpu tail should be stolen work: %q", string(tpu))
	}
	for _, c := range tpu {
		if c == '░' {
			t.Fatalf("tpu has no idle time: %q", string(tpu))
		}
	}

	// Axis line spans 0 .. tEnd.
	if !strings.HasSuffix(axis, "1s") || !strings.Contains(axis, "0") {
		t.Fatalf("axis = %q", axis)
	}
}

func TestGanttCountsPerRow(t *testing.T) {
	tr := New()
	tr.Record(Event{HLOP: 0, Device: "gpu", Start: 0, End: 1})
	tr.Record(Event{HLOP: 1, Device: "gpu", Start: 1, End: 2})
	tr.Record(Event{HLOP: 2, Device: "tpu", Start: 0, End: 2, Stolen: true})
	g := tr.Gantt(30)
	if !strings.Contains(g, "2 hlops") {
		t.Fatalf("gpu row should report 2 hlops:\n%s", g)
	}
	if !strings.Contains(g, "1 hlops (1 stolen)") {
		t.Fatalf("tpu row should report its stolen count:\n%s", g)
	}
	// The gpu row (no steals) must not carry a stolen annotation.
	for _, line := range strings.Split(g, "\n") {
		if strings.HasPrefix(line, "gpu") && strings.Contains(line, "stolen") {
			t.Fatalf("gpu row wrongly annotated: %q", line)
		}
	}
}

func TestGanttDefaultWidth(t *testing.T) {
	tr := New()
	tr.Record(Event{HLOP: 0, Device: "gpu", Start: 0, End: 1})
	rows, _ := ganttRows(t, tr.Gantt(0), 60)
	if _, ok := rows["gpu"]; !ok {
		t.Fatal("default-width rendering lost the gpu row")
	}
}

func TestGanttClampsOverflow(t *testing.T) {
	// An event ending exactly at tEnd maps to the last cell, not one past it.
	tr := New()
	tr.Record(Event{HLOP: 0, Device: "gpu", Start: 0.9, End: 1.0})
	rows, _ := ganttRows(t, tr.Gantt(10), 10)
	if rows["gpu"][9] != '█' {
		t.Fatalf("last cell should be busy: %q", string(rows["gpu"]))
	}
}

func TestGanttZeroDurationTimeline(t *testing.T) {
	// All-zero event times must not divide by zero.
	tr := New()
	tr.Record(Event{HLOP: 0, Device: "gpu", Start: 0, End: 0})
	if g := tr.Gantt(10); !strings.Contains(g, "gpu") {
		t.Fatalf("zero-duration rendering broken:\n%s", g)
	}
}
