// Package trace records what the SHMT engine did during a run: per-HLOP
// execution events, per-device busy time, data-movement accounting, and the
// memory-footprint bookkeeping behind Fig. 11.
package trace

import (
	"fmt"
	"sort"
	"strings"
	"sync"
)

// Event is one HLOP execution on a device.
type Event struct {
	HLOP     int     // HLOP index within the VOP
	Device   string  // executing device name
	Op       string  // opcode
	Start    float64 // virtual seconds
	End      float64
	BytesIn  int64
	BytesOut int64
	Stolen   bool // true if the HLOP ran on a device other than its initial assignment
	Critical bool // true if the policy classified the partition critical
}

// Trace accumulates a run's events and resource accounting. All methods are
// safe for concurrent use: the concurrent engine's per-device workers record
// events and staging allocations directly, without caller-side locking.
type Trace struct {
	mu     sync.Mutex
	events []Event

	// Footprint accounting (bytes).
	baseBytes    int64 // application input+output buffers
	stagingBytes int64 // currently live staging (device copies, quantized buffers)
	peakBytes    int64
}

// New returns an empty trace.
func New() *Trace { return &Trace{} }

// Record appends an event.
func (t *Trace) Record(e Event) {
	t.mu.Lock()
	t.events = append(t.events, e)
	t.mu.Unlock()
}

// Events returns a copy of the recorded events.
func (t *Trace) Events() []Event {
	t.mu.Lock()
	defer t.mu.Unlock()
	return append([]Event(nil), t.events...)
}

// Len returns how many events have been recorded.
func (t *Trace) Len() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	return len(t.events)
}

// AddBase registers long-lived application buffers (inputs, outputs).
func (t *Trace) AddBase(bytes int64) {
	t.mu.Lock()
	t.baseBytes += bytes
	t.sampleLocked()
	t.mu.Unlock()
}

// AllocStaging registers a transient staging buffer coming alive.
func (t *Trace) AllocStaging(bytes int64) {
	t.mu.Lock()
	t.stagingBytes += bytes
	t.sampleLocked()
	t.mu.Unlock()
}

// FreeStaging releases a staging buffer.
func (t *Trace) FreeStaging(bytes int64) {
	t.mu.Lock()
	t.stagingBytes -= bytes
	if t.stagingBytes < 0 {
		t.stagingBytes = 0
	}
	t.mu.Unlock()
}

func (t *Trace) sampleLocked() {
	if cur := t.baseBytes + t.stagingBytes; cur > t.peakBytes {
		t.peakBytes = cur
	}
}

// PeakBytes returns the peak of base+staging bytes observed.
func (t *Trace) PeakBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.peakBytes
}

// BaseBytes returns the registered long-lived buffer total.
func (t *Trace) BaseBytes() int64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.baseBytes
}

// CountByDevice returns how many HLOPs each device executed.
func (t *Trace) CountByDevice() map[string]int {
	out := map[string]int{}
	for _, e := range t.Events() {
		out[e.Device]++
	}
	return out
}

// StolenCount returns how many HLOPs ran on a device other than their
// initial assignment.
func (t *Trace) StolenCount() int {
	var n int
	for _, e := range t.Events() {
		if e.Stolen {
			n++
		}
	}
	return n
}

// BusyByDevice sums execution time per device.
func (t *Trace) BusyByDevice() map[string]float64 {
	out := map[string]float64{}
	for _, e := range t.Events() {
		out[e.Device] += e.End - e.Start
	}
	return out
}

// Summary renders a short human-readable digest (device -> count/busy).
func (t *Trace) Summary() string {
	counts := t.CountByDevice()
	busy := t.BusyByDevice()
	names := make([]string, 0, len(counts))
	for n := range counts {
		names = append(names, n)
	}
	sort.Strings(names)
	var b strings.Builder
	for i, n := range names {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(&b, "%s: %d hlops %.3gs", n, counts[n], busy[n])
	}
	if s := t.StolenCount(); s > 0 {
		fmt.Fprintf(&b, " (%d stolen)", s)
	}
	return b.String()
}
