package trace

import (
	"fmt"
	"sort"
	"strings"
)

// Gantt renders the trace as a fixed-width ASCII timeline, one row per
// device, so a run's overlap structure — who worked when, where stealing
// rebalanced, how long a device idled at the tail — is visible at a glance:
//
//	gpu  |██████████████████████████░░░|  22 hlops
//	tpu  |████████████████████████████▒|  42 hlops (6 stolen)
//
// '█' marks executed HLOPs, '▒' stolen ones, '░' idle time. width is the
// number of timeline columns (default 60 when ≤ 0).
func (t *Trace) Gantt(width int) string {
	if width <= 0 {
		width = 60
	}
	events := t.Events()
	if len(events) == 0 {
		return "(no events)\n"
	}

	var tEnd float64
	devices := map[string][]Event{}
	for _, e := range events {
		devices[e.Device] = append(devices[e.Device], e)
		if e.End > tEnd {
			tEnd = e.End
		}
	}
	if tEnd <= 0 {
		tEnd = 1
	}
	names := make([]string, 0, len(devices))
	nameW := 0
	for n := range devices {
		names = append(names, n)
		if len(n) > nameW {
			nameW = len(n)
		}
	}
	sort.Strings(names)

	var b strings.Builder
	for _, n := range names {
		cells := make([]rune, width)
		for i := range cells {
			cells[i] = '░'
		}
		var stolen int
		for _, e := range devices[n] {
			if e.Stolen {
				stolen++
			}
			lo := int(e.Start / tEnd * float64(width))
			hi := int(e.End / tEnd * float64(width))
			if hi >= width {
				hi = width - 1
			}
			for i := lo; i <= hi; i++ {
				if e.Stolen {
					cells[i] = '▒'
				} else if cells[i] != '▒' {
					cells[i] = '█'
				}
			}
		}
		fmt.Fprintf(&b, "%-*s |%s|  %d hlops", nameW, n, string(cells), len(devices[n]))
		if stolen > 0 {
			fmt.Fprintf(&b, " (%d stolen)", stolen)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "%-*s  0%s%.3gs\n", nameW, "", strings.Repeat(" ", width-len(fmt.Sprintf("%.3gs", tEnd))), tEnd)
	return b.String()
}
