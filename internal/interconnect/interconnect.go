// Package interconnect models the system interconnect of the prototype
// platform: CPU, GPU and Edge TPU exchange data through shared LPDDR4 main
// memory (25.6 GB/s) and the on-board PCIe link to the M.2 Edge TPU (§4.1).
//
// The model captures the two behaviours the evaluation depends on:
//
//   - Per-transfer cost = latency + bytes/bandwidth (Table 3's communication
//     overhead).
//   - Double buffering: when a policy overlaps transfers with computation,
//     only the part of the transfer not hidden behind the previous HLOP's
//     execution is exposed (§5.6 reason 2: "double buffering to hide the
//     latency").
package interconnect

// Link describes one path between host memory and a device.
type Link struct {
	// BandwidthBps is sustained bandwidth in bytes per second.
	BandwidthBps float64
	// LatencySec is the fixed per-transfer setup cost.
	LatencySec float64
}

// TransferTime returns the modelled duration to move n bytes.
func (l Link) TransferTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	if l.BandwidthBps <= 0 {
		return l.LatencySec
	}
	return l.LatencySec + float64(n)/l.BandwidthBps
}

// Default links for the prototype platform.
var (
	// HostDRAM: LPDDR4 at 25.6 GB/s, on-chip access for CPU and the
	// integrated Maxwell GPU.
	HostDRAM = Link{BandwidthBps: 25.6e9, LatencySec: 2e-6}
	// PCIeTPU: the M.2 Edge TPU's effective DMA path. The raw PCIe Gen2 x1
	// lane is slower, but INT8 activations are 4-8x smaller than host FP32
	// data and the runtime pipelines descriptor submission; the effective
	// aggregate rate is calibrated so Table 3's measured <1% communication
	// overhead holds — the paper's own measurement implies the link does
	// not bottleneck the Edge TPU at the evaluated granularities.
	PCIeTPU = Link{BandwidthBps: 4e9, LatencySec: 20e-6}
	// ClusterNet: the network tier between a router and a shmtserved backend
	// node — modelled as 10 GbE (1.25 GB/s effective) with a
	// request/response setup cost covering connection reuse, HTTP framing
	// and JSON marshalling. The router's scatter-gather planner prices
	// cross-node HLOP placement with this link exactly the way the
	// in-process scheduler prices device transfers with HostDRAM/PCIeTPU.
	ClusterNet = Link{BandwidthBps: 1.25e9, LatencySec: 200e-6}
)

// Exposure computes the exposed (non-hidden) portion of a transfer given the
// compute time it can hide behind. With double buffering the next HLOP's
// input moves while the current one executes, so only max(0, transfer -
// compute) is exposed; without overlap the full transfer is exposed.
//
// Deprecated: the engines now model the true serialization between a
// device's transfer and compute stages with Lane.Admit; this scalar
// approximation remains for cost estimates that have no lane state.
func Exposure(transfer, computeToHideBehind float64, doubleBuffered bool) float64 {
	if !doubleBuffered {
		return transfer
	}
	if transfer <= computeToHideBehind {
		return 0
	}
	return transfer - computeToHideBehind
}

// Lane is one device's two-stage pipeline in virtual time: a transfer stage
// (the DMA engine, with independent inbound and outbound queues — links are
// full duplex) and a compute stage. Each clock holds the virtual time at
// which that stage next becomes free. Exposure is no longer an approximation
// against the previous HLOP's execution time: an input transfer occupies the
// inbound clock, and only the part of it that the compute stage actually has
// to wait for is exposed.
type Lane struct {
	// In is the inbound (host→device) transfer clock.
	In float64
	// Out is the outbound (device→host) transfer clock.
	Out float64
	// Compute is the compute-stage clock.
	Compute float64

	// Double buffering is double, not unbounded: the device owns BufferDepth
	// staging slots per direction, so the k-th admission's input transfer
	// cannot begin before admission k−BufferDepth released its input slot
	// (compute consumed it), and its compute cannot begin before admission
	// k−BufferDepth's output transfer released its output slot. The rings
	// hold those release times; idx is the admission counter mod BufferDepth.
	inFree  [BufferDepth]float64
	outFree [BufferDepth]float64
	idx     int
}

// BufferDepth is the per-direction staging-slot count of the double buffer:
// one slot in flight, one being filled/drained.
const BufferDepth = 2

// Admission is the schedule Lane.Admit produced for one HLOP.
type Admission struct {
	// XferStart/XferEnd bound the input transfer on the inbound lane.
	XferStart, XferEnd float64
	// Start is when the device's slot for this HLOP begins: the later of the
	// compute stage freeing and the HLOP becoming available. End is when the
	// compute stage finishes (dispatch + execution). Busy time for the HLOP
	// is End - Start; it includes any exposed input stall.
	Start, End float64
	// OutStart/OutEnd bound the output transfer on the outbound lane.
	OutStart, OutEnd float64
	// Exposed is the transfer time the compute stage stalled for: the gap
	// between when it could have started (Start) and when the input actually
	// arrived. Outbound transfers never stall the next HLOP's compute (the
	// double buffer decouples them); whatever outbound time the final compute
	// does not hide surfaces through Drain.
	Exposed float64
}

// Reset rewinds every stage clock to t (the start-of-run scheduling
// overhead) and empties the staging slots.
func (l *Lane) Reset(t float64) {
	l.In, l.Out, l.Compute = t, t, t
	l.inFree = [BufferDepth]float64{}
	l.outFree = [BufferDepth]float64{}
	l.idx = 0
}

// Admit schedules one HLOP through the lane and advances the stage clocks.
// ready is when the HLOP became available to this device: enqueue time for
// own-queue work, the thief's clock for a steal — a stolen HLOP's input
// belonged to the victim's queue, so its transfer cannot have been issued
// ahead of the steal decision and serializes in full.
//
// With overlap (double buffering) the input transfer runs on the inbound
// clock, possibly ahead of the compute stage; compute waits for whichever of
// its own clock and the data is later; the output occupies the outbound
// clock behind the compute. Without overlap the three stages serialize on
// the compute clock, reproducing the conventional baseline.
func (l *Lane) Admit(ready, dispatch, inT, exec, outT float64, overlap bool) Admission {
	if !overlap {
		start := max(l.Compute, ready)
		a := Admission{Start: start}
		a.XferStart = start + dispatch
		a.XferEnd = a.XferStart + inT
		a.End = a.XferEnd + exec + outT
		a.OutStart = a.XferEnd + exec
		a.OutEnd = a.End
		a.Exposed = inT + outT
		l.In, l.Out, l.Compute = a.End, a.End, a.End
		l.inFree[l.idx], l.outFree[l.idx] = a.End, a.End
		l.idx = (l.idx + 1) % BufferDepth
		return a
	}
	a := Admission{XferStart: max(l.In, ready, l.inFree[l.idx])}
	a.XferEnd = a.XferStart + inT
	a.Start = max(l.Compute, ready)
	// Compute waits for its input and for an output slot: with every slot
	// holding an undrained result, running ahead would overwrite one — the
	// backpressure that keeps an out-link-bound device from looking free.
	compStart := max(a.Start, a.XferEnd, l.outFree[l.idx])
	a.Exposed = compStart - a.Start
	a.End = compStart + dispatch + exec
	a.OutStart = max(l.Out, a.End)
	a.OutEnd = a.OutStart + outT
	l.In, l.Compute, l.Out = a.XferEnd, a.End, a.OutEnd
	l.inFree[l.idx], l.outFree[l.idx] = a.End, a.OutEnd
	l.idx = (l.idx + 1) % BufferDepth
	return a
}

// Drain returns the outbound-transfer tail still in flight after the
// compute stage went idle — the only outbound exposure the pipeline cannot
// hide. Call it once per device at end of run and account the result as
// exposed communication time.
func (l *Lane) Drain() float64 {
	if l.Out > l.Compute {
		return l.Out - l.Compute
	}
	return 0
}

// Makespan returns the lane's completion time: the later of the compute
// stage and the last outbound transfer.
func (l *Lane) Makespan() float64 { return max(l.Compute, l.Out) }

// Tracker accumulates transfer accounting for Table 3.
type Tracker struct {
	Bytes        int64   // payload moved
	TransferTime float64 // raw link time
	ExposedTime  float64 // portion not hidden by double buffering
}

// Add records one transfer.
func (t *Tracker) Add(bytes int64, transfer, exposed float64) {
	t.Bytes += bytes
	t.TransferTime += transfer
	t.ExposedTime += exposed
}

// Merge folds another tracker into this one.
func (t *Tracker) Merge(o Tracker) {
	t.Bytes += o.Bytes
	t.TransferTime += o.TransferTime
	t.ExposedTime += o.ExposedTime
}

// OverheadFraction returns exposed communication time as a fraction of
// total busy time (Table 3's "Communication Overhead (%)"), 0 when busy is 0.
func (t *Tracker) OverheadFraction(totalBusy float64) float64 {
	if totalBusy <= 0 {
		return 0
	}
	return t.ExposedTime / totalBusy
}
