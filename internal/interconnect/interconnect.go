// Package interconnect models the system interconnect of the prototype
// platform: CPU, GPU and Edge TPU exchange data through shared LPDDR4 main
// memory (25.6 GB/s) and the on-board PCIe link to the M.2 Edge TPU (§4.1).
//
// The model captures the two behaviours the evaluation depends on:
//
//   - Per-transfer cost = latency + bytes/bandwidth (Table 3's communication
//     overhead).
//   - Double buffering: when a policy overlaps transfers with computation,
//     only the part of the transfer not hidden behind the previous HLOP's
//     execution is exposed (§5.6 reason 2: "double buffering to hide the
//     latency").
package interconnect

// Link describes one path between host memory and a device.
type Link struct {
	// BandwidthBps is sustained bandwidth in bytes per second.
	BandwidthBps float64
	// LatencySec is the fixed per-transfer setup cost.
	LatencySec float64
}

// TransferTime returns the modelled duration to move n bytes.
func (l Link) TransferTime(n int64) float64 {
	if n <= 0 {
		return 0
	}
	if l.BandwidthBps <= 0 {
		return l.LatencySec
	}
	return l.LatencySec + float64(n)/l.BandwidthBps
}

// Default links for the prototype platform.
var (
	// HostDRAM: LPDDR4 at 25.6 GB/s, on-chip access for CPU and the
	// integrated Maxwell GPU.
	HostDRAM = Link{BandwidthBps: 25.6e9, LatencySec: 2e-6}
	// PCIeTPU: the M.2 Edge TPU's effective DMA path. The raw PCIe Gen2 x1
	// lane is slower, but INT8 activations are 4-8x smaller than host FP32
	// data and the runtime pipelines descriptor submission; the effective
	// aggregate rate is calibrated so Table 3's measured <1% communication
	// overhead holds — the paper's own measurement implies the link does
	// not bottleneck the Edge TPU at the evaluated granularities.
	PCIeTPU = Link{BandwidthBps: 4e9, LatencySec: 20e-6}
)

// Exposure computes the exposed (non-hidden) portion of a transfer given the
// compute time it can hide behind. With double buffering the next HLOP's
// input moves while the current one executes, so only max(0, transfer -
// compute) is exposed; without overlap the full transfer is exposed.
func Exposure(transfer, computeToHideBehind float64, doubleBuffered bool) float64 {
	if !doubleBuffered {
		return transfer
	}
	if transfer <= computeToHideBehind {
		return 0
	}
	return transfer - computeToHideBehind
}

// Tracker accumulates transfer accounting for Table 3.
type Tracker struct {
	Bytes        int64   // payload moved
	TransferTime float64 // raw link time
	ExposedTime  float64 // portion not hidden by double buffering
}

// Add records one transfer.
func (t *Tracker) Add(bytes int64, transfer, exposed float64) {
	t.Bytes += bytes
	t.TransferTime += transfer
	t.ExposedTime += exposed
}

// Merge folds another tracker into this one.
func (t *Tracker) Merge(o Tracker) {
	t.Bytes += o.Bytes
	t.TransferTime += o.TransferTime
	t.ExposedTime += o.ExposedTime
}

// OverheadFraction returns exposed communication time as a fraction of
// total busy time (Table 3's "Communication Overhead (%)"), 0 when busy is 0.
func (t *Tracker) OverheadFraction(totalBusy float64) float64 {
	if totalBusy <= 0 {
		return 0
	}
	return t.ExposedTime / totalBusy
}
