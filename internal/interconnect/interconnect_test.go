package interconnect

import (
	"math"
	"testing"
)

func TestTransferTime(t *testing.T) {
	l := Link{BandwidthBps: 1e9, LatencySec: 1e-6}
	got := l.TransferTime(1e6)
	want := 1e-6 + 1e6/1e9
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("transfer = %g want %g", got, want)
	}
	if l.TransferTime(0) != 0 || l.TransferTime(-5) != 0 {
		t.Fatal("non-positive payloads should cost nothing")
	}
	zero := Link{LatencySec: 2e-6}
	if zero.TransferTime(100) != 2e-6 {
		t.Fatal("zero-bandwidth link should cost latency only")
	}
}

func TestExposure(t *testing.T) {
	// Without double buffering the full transfer is exposed.
	if Exposure(3, 10, false) != 3 {
		t.Fatal("non-overlapped exposure wrong")
	}
	// Fully hidden behind compute.
	if Exposure(3, 10, true) != 0 {
		t.Fatal("hidden transfer should expose 0")
	}
	// Partially hidden.
	if Exposure(10, 3, true) != 7 {
		t.Fatal("partial exposure wrong")
	}
}

func TestLaneSerialMatchesLegacyBaseline(t *testing.T) {
	// Without overlap the three stages serialize on the compute clock and the
	// full transfer time is exposed — the conventional-baseline numbers.
	var l Lane
	l.Reset(1)
	a := l.Admit(1, 0.5, 2, 4, 3, false)
	if a.Start != 1 || a.XferStart != 1.5 || a.XferEnd != 3.5 {
		t.Fatalf("serial schedule wrong: %+v", a)
	}
	if a.End != 10.5 || a.OutStart != 7.5 || a.OutEnd != 10.5 {
		t.Fatalf("serial completion wrong: %+v", a)
	}
	if a.Exposed != 5 {
		t.Fatalf("serial exposure = %g, want inT+outT = 5", a.Exposed)
	}
	if l.Makespan() != 10.5 || l.Drain() != 0 {
		t.Fatalf("serial lane state: makespan %g drain %g", l.Makespan(), l.Drain())
	}
}

func TestLaneOverlapHidesTransfers(t *testing.T) {
	var l Lane
	l.Reset(0)
	// First admission: nothing to hide behind, input fully exposed.
	a := l.Admit(0, 0, 2, 10, 1, true)
	if a.Exposed != 2 {
		t.Fatalf("first input should be fully exposed: %+v", a)
	}
	if a.End != 12 || a.OutEnd != 13 {
		t.Fatalf("first admission schedule: %+v", a)
	}
	// Second admission: its input transferred [2,4) while the first computed
	// until 12, so the compute stage never stalls.
	b := l.Admit(0, 0, 2, 10, 1, true)
	if b.Exposed != 0 {
		t.Fatalf("pipelined input should be hidden: %+v", b)
	}
	if b.Start != 12 || b.End != 22 {
		t.Fatalf("second admission schedule: %+v", b)
	}
	// The final output transfer is the one cost overlap cannot hide.
	if d := l.Drain(); d != 1 {
		t.Fatalf("drain = %g, want the out tail 1", d)
	}
	if l.Makespan() != 23 {
		t.Fatalf("makespan = %g, want compute 22 + out tail 1", l.Makespan())
	}
}

func TestLaneStolenInputSerializes(t *testing.T) {
	var l Lane
	l.Reset(0)
	l.Admit(0, 0, 1, 10, 0, true)
	// A stolen HLOP's ready is the thief's compute clock (the engines pass
	// lane.Compute): its input belonged to the victim's queue, so the
	// transfer cannot predate the steal decision and serializes in full.
	a := l.Admit(l.Compute, 0, 3, 5, 0, true)
	if a.XferStart != 11 {
		t.Fatalf("stolen input transferred before the steal: %+v", a)
	}
	if a.Exposed != 3 {
		t.Fatalf("stolen input should serialize in full: %+v", a)
	}
}

func TestLaneBoundedBuffersBackpressure(t *testing.T) {
	// Output transfers three times slower than compute: after BufferDepth
	// admissions every output slot holds an undrained result, so compute
	// stalls for the out lane instead of running ahead unboundedly.
	var l Lane
	l.Reset(0)
	var exposed float64
	for i := 0; i < 6; i++ {
		a := l.Admit(0, 0, 0, 1, 3, true)
		exposed += a.Exposed
	}
	// 6 outputs at 3s each serialize on the out lane: makespan ≈ 19 (first
	// compute ends at 1, then 6×3 of outbound), not 6×1 compute + tail.
	if l.Out != 19 {
		t.Fatalf("out clock = %g, want 19", l.Out)
	}
	if exposed == 0 {
		t.Fatal("out-slot backpressure should surface as exposure")
	}
	if l.Compute+l.Drain() != l.Makespan() {
		t.Fatalf("drain inconsistent: compute %g drain %g makespan %g", l.Compute, l.Drain(), l.Makespan())
	}
	// Compute may run ahead of the out lane by at most BufferDepth slots.
	if ahead := l.Out - l.Compute; ahead > 3*(BufferDepth+1) {
		t.Fatalf("compute ran %g ahead of the out lane", ahead)
	}
}

func TestLaneExposedNeverExceedsTransfer(t *testing.T) {
	// Structural invariant behind Report.Comm: summed exposure (including the
	// drain tail) never exceeds summed transfer time, for any admission mix.
	seq := []struct{ ready, dispatch, inT, exec, outT float64 }{
		{0, 0.1, 5, 1, 4}, {0, 0.1, 0.5, 2, 0}, {3, 0, 2, 0.1, 2},
		{3, 0.2, 0, 3, 1}, {9, 0.1, 4, 0.5, 4}, {9, 0, 1, 1, 1},
	}
	for _, overlap := range []bool{false, true} {
		var l Lane
		l.Reset(0)
		var exposed, xfer float64
		for _, s := range seq {
			a := l.Admit(s.ready, s.dispatch, s.inT, s.exec, s.outT, overlap)
			exposed += a.Exposed
			xfer += s.inT + s.outT
		}
		exposed += l.Drain()
		if exposed > xfer+1e-12 {
			t.Fatalf("overlap=%v: exposed %g > transfer %g", overlap, exposed, xfer)
		}
	}
}

func TestTracker(t *testing.T) {
	var tr Tracker
	tr.Add(100, 2, 1)
	tr.Add(50, 3, 0.5)
	if tr.Bytes != 150 || tr.TransferTime != 5 || tr.ExposedTime != 1.5 {
		t.Fatalf("tracker = %+v", tr)
	}
	var other Tracker
	other.Add(10, 1, 1)
	tr.Merge(other)
	if tr.Bytes != 160 || tr.ExposedTime != 2.5 {
		t.Fatalf("merged tracker = %+v", tr)
	}
	if got := tr.OverheadFraction(10); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("overhead = %g", got)
	}
	if tr.OverheadFraction(0) != 0 {
		t.Fatal("zero busy should yield zero overhead")
	}
}

func TestDefaultLinksSane(t *testing.T) {
	if HostDRAM.BandwidthBps != 25.6e9 {
		t.Fatalf("host DRAM bandwidth = %g, want the paper's 25.6 GB/s", HostDRAM.BandwidthBps)
	}
	if PCIeTPU.BandwidthBps <= 0 || PCIeTPU.LatencySec <= 0 {
		t.Fatal("PCIe link not configured")
	}
	if PCIeTPU.BandwidthBps >= HostDRAM.BandwidthBps {
		t.Fatal("PCIe should be slower than host DRAM")
	}
}
