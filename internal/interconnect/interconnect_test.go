package interconnect

import (
	"math"
	"testing"
)

func TestTransferTime(t *testing.T) {
	l := Link{BandwidthBps: 1e9, LatencySec: 1e-6}
	got := l.TransferTime(1e6)
	want := 1e-6 + 1e6/1e9
	if math.Abs(got-want) > 1e-15 {
		t.Fatalf("transfer = %g want %g", got, want)
	}
	if l.TransferTime(0) != 0 || l.TransferTime(-5) != 0 {
		t.Fatal("non-positive payloads should cost nothing")
	}
	zero := Link{LatencySec: 2e-6}
	if zero.TransferTime(100) != 2e-6 {
		t.Fatal("zero-bandwidth link should cost latency only")
	}
}

func TestExposure(t *testing.T) {
	// Without double buffering the full transfer is exposed.
	if Exposure(3, 10, false) != 3 {
		t.Fatal("non-overlapped exposure wrong")
	}
	// Fully hidden behind compute.
	if Exposure(3, 10, true) != 0 {
		t.Fatal("hidden transfer should expose 0")
	}
	// Partially hidden.
	if Exposure(10, 3, true) != 7 {
		t.Fatal("partial exposure wrong")
	}
}

func TestTracker(t *testing.T) {
	var tr Tracker
	tr.Add(100, 2, 1)
	tr.Add(50, 3, 0.5)
	if tr.Bytes != 150 || tr.TransferTime != 5 || tr.ExposedTime != 1.5 {
		t.Fatalf("tracker = %+v", tr)
	}
	var other Tracker
	other.Add(10, 1, 1)
	tr.Merge(other)
	if tr.Bytes != 160 || tr.ExposedTime != 2.5 {
		t.Fatalf("merged tracker = %+v", tr)
	}
	if got := tr.OverheadFraction(10); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("overhead = %g", got)
	}
	if tr.OverheadFraction(0) != 0 {
		t.Fatal("zero busy should yield zero overhead")
	}
}

func TestDefaultLinksSane(t *testing.T) {
	if HostDRAM.BandwidthBps != 25.6e9 {
		t.Fatalf("host DRAM bandwidth = %g, want the paper's 25.6 GB/s", HostDRAM.BandwidthBps)
	}
	if PCIeTPU.BandwidthBps <= 0 || PCIeTPU.LatencySec <= 0 {
		t.Fatal("PCIe link not configured")
	}
	if PCIeTPU.BandwidthBps >= HostDRAM.BandwidthBps {
		t.Fatal("PCIe should be slower than host DRAM")
	}
}
