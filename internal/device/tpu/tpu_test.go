package tpu

import (
	"errors"
	"math"
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/kernels"
	"shmt/internal/npu"
	"shmt/internal/tensor"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

func TestIdentity(t *testing.T) {
	d := New(Config{})
	if d.Name() != "tpu" || d.Kind() != device.TPU {
		t.Fatal("identity wrong")
	}
	if d.AccuracyRank() <= 0 {
		t.Fatal("TPU must rank below exact devices")
	}
	if d.ElemBytes() != 1 {
		t.Fatal("INT8 element width expected")
	}
	if d.MemoryBytes() != 8<<20 {
		t.Fatalf("default memory = %d want 8 MiB", d.MemoryBytes())
	}
	for _, op := range vop.All() {
		if !d.Supports(op) {
			t.Fatalf("TPU should support %s (NPU mode)", op)
		}
	}
}

func TestExecuteIntroducesBoundedError(t *testing.T) {
	d := New(Config{})
	ref := cpu.New(1)
	in := workload.Uniform(64, 64, 0, 1, 3)
	got, err := d.Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	var maxd, diffs float64
	for i := range got.Data {
		dd := math.Abs(got.Data[i] - want.Data[i])
		if dd > maxd {
			maxd = dd
		}
		diffs += dd
	}
	if diffs == 0 {
		t.Fatal("INT8 execution should differ from exact")
	}
	// Error must stay commensurate with the quantization grid, not blow up.
	if maxd > 0.5 {
		t.Fatalf("max error %g implausibly large for unit-range input", maxd)
	}
}

func TestMatrixModeMoreAccurateThanNPUStages(t *testing.T) {
	// DCT runs matrix mode (single output requant); forcing the same kernel
	// through an NPU model with per-stage requantization must be worse.
	d := New(Config{})
	ref := cpu.New(1)
	in := workload.Uniform(64, 64, 0, 1, 5)
	matrix, err := d.Execute(vop.OpDCT8x8, []*tensor.Matrix{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	model := npu.Model{Op: vop.OpDCT8x8, Layers: kernels.Stages(vop.OpDCT8x8)}
	staged, err := model.Run([]*tensor.Matrix{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Execute(vop.OpDCT8x8, []*tensor.Matrix{in}, nil)
	var eMatrix, eStaged float64
	for i := range want.Data {
		eMatrix += math.Abs(matrix.Data[i] - want.Data[i])
		eStaged += math.Abs(staged.Data[i] - want.Data[i])
	}
	if eMatrix >= eStaged {
		t.Fatalf("matrix mode error %g should undercut staged NPU error %g", eMatrix, eStaged)
	}
}

func TestMemoryLimitTriggersErrTooLarge(t *testing.T) {
	d := New(Config{MemoryBytes: 1024})
	in := tensor.NewMatrix(64, 64) // 4096 B int8 > 1024 after buffers
	_, err := d.Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	if !errors.Is(err, device.ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestQuantAwareImprovesQuality(t *testing.T) {
	plain := New(Config{})
	qat := New(Config{QuantAware: true})
	ref := cpu.New(1)
	in := workload.Mixed(64, 64, workload.Profile{CriticalFraction: 0.95, TileSize: 32}, 7)
	want, _ := ref.Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	a, _ := plain.Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	b, _ := qat.Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	var ea, eb float64
	for i := range want.Data {
		ea += math.Abs(a.Data[i] - want.Data[i])
		eb += math.Abs(b.Data[i] - want.Data[i])
	}
	if eb >= ea {
		t.Fatalf("QAT error %g should undercut PTQ error %g", eb, ea)
	}
}

func TestSetModel(t *testing.T) {
	d := New(Config{})
	d.SetModel(npu.Model{Op: vop.OpSobel, Layers: 1, QuantAware: true})
	if got := d.model(vop.OpSobel); !got.QuantAware {
		t.Fatal("SetModel ignored")
	}
}

func TestExecTimeScalesWithSlowdown(t *testing.T) {
	fast := New(Config{})
	slow := New(Config{Slowdown: 4})
	f := fast.ExecTime(vop.OpFFT, 1000)
	s := slow.ExecTime(vop.OpFFT, 1000)
	if math.Abs(s-4*f) > 1e-12*s {
		t.Fatalf("slowdown not applied: %g vs %g", s, f)
	}
	if slow.Link().BandwidthBps*4 != fast.Link().BandwidthBps {
		t.Fatal("link bandwidth not scaled")
	}
}

func TestDispatchOverheadPositive(t *testing.T) {
	if New(Config{}).DispatchOverhead() <= 0 {
		t.Fatal("dispatch overhead must be positive")
	}
}

func TestReduceSumRunsMatrixMode(t *testing.T) {
	// Summation accumulates wide (TCUSCAN-style), so the only error is the
	// input quantization: relative error well under 1% on uniform data.
	d := New(Config{})
	in := workload.Uniform(64, 64, 0, 1, 9)
	got, err := d.Execute(vop.OpReduceSum, []*tensor.Matrix{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	var want float64
	for _, v := range in.Data {
		want += v
	}
	rel := math.Abs(got.Data[0]-want) / want
	if rel > 0.01 {
		t.Fatalf("matrix-mode sum error %g too large", rel)
	}
	if rel == 0 {
		t.Fatal("INT8 input quantization should leave a trace")
	}
}
