// Package tpu implements the simulated Edge TPU of the prototype platform
// (§4.1–4.2): an INT8 matrix accelerator reached over a PCIe M.2 link, with
// 8 MB of private device memory.
//
// The device runs HLOPs in one of two modes, mirroring §4.2:
//
//   - Matrix mode ("use Edge TPU as matrix accelerators", §2.2.1): for
//     natively matrix-shaped opcodes (GEMM, conv) the hardware executes one
//     systolic pass — inputs quantize at the boundary, accumulation is wide.
//   - NPU mode (§2.2.2): every other opcode runs as a pre-built quantized
//     approximator from internal/npu, whose per-layer requantization is
//     where the quality loss the QAWS policies manage comes from.
package tpu

import (
	"fmt"
	"sync"

	"shmt/internal/device"
	"shmt/internal/interconnect"
	"shmt/internal/kernels"
	"shmt/internal/npu"
	"shmt/internal/quant"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Config tunes the simulated Edge TPU.
type Config struct {
	// QuantAware builds all NPU models in quantization-aware mode
	// immediately (instead of the accuracy-gated fallback of §4.2).
	QuantAware bool
	// ThroughputScale multiplies modelled throughputs (default 1).
	ThroughputScale float64
	// Slowdown ≥ 1 scales the virtual platform down (throughput and link
	// bandwidth divide by it) so reduced-size experiments reproduce the
	// full-size timeline. Default 1.
	Slowdown float64
	// MemoryBytes overrides the device-memory capacity (default 8 MB).
	MemoryBytes int64
}

// Device is the simulated Edge TPU.
type Device struct {
	name string
	cfg  Config

	mu     sync.Mutex
	models map[vop.Opcode]npu.Model // lazily built per-HLOP models
}

// New returns an Edge TPU device named "tpu".
func New(cfg Config) *Device {
	if cfg.ThroughputScale <= 0 {
		cfg.ThroughputScale = 1
	}
	if cfg.Slowdown < 1 {
		cfg.Slowdown = 1
	}
	if cfg.MemoryBytes == 0 {
		cfg.MemoryBytes = 8 << 20
	}
	return &Device{name: "tpu", cfg: cfg, models: map[vop.Opcode]npu.Model{}}
}

var _ device.Device = (*Device)(nil)

// Name implements device.Device.
func (d *Device) Name() string { return d.name }

// Kind implements device.Device.
func (d *Device) Kind() device.Kind { return device.TPU }

// AccuracyRank implements device.Device: INT8 is the least accurate class.
func (d *Device) AccuracyRank() int { return 3 }

// Supports implements device.Device. The Edge TPU covers every VOP in the
// table: matrix ops natively, the rest through NPU models (§2.2.2 — "we
// intensively used NPUs as our solutions for Edge TPU implementations").
func (d *Device) Supports(op vop.Opcode) bool {
	for _, o := range vop.All() {
		if o == op {
			return true
		}
	}
	return false
}

// model returns (building if needed) the NPU model for op.
func (d *Device) model(op vop.Opcode) npu.Model {
	d.mu.Lock()
	defer d.mu.Unlock()
	if m, ok := d.models[op]; ok {
		return m
	}
	m := npu.Model{Op: op, Layers: kernels.Stages(op), QuantAware: d.cfg.QuantAware}
	d.models[op] = m
	return m
}

// SetModel installs a pre-built NPU model (e.g. one produced by npu.Build's
// accuracy-gated workflow) for an opcode.
func (d *Device) SetModel(m npu.Model) {
	d.mu.Lock()
	d.models[m.Op] = m
	d.mu.Unlock()
}

// matrixMode reports whether the opcode runs natively on the systolic array
// (§2.2.1): GEMM and convolution are the hardware's home domain, and the
// blockwise DCT and the lifting DWT are linear transforms that lower to
// fixed-weight matrix multiplications (as TCUSCAN/GPTPU do for reductions
// and transforms). Matrix-mode ops quantize inputs once, accumulate wide
// (INT32, as the real systolic array does), and requantize only the final
// output — which is why the paper's DCT/DWT quality loss is tiny while
// NPU-mode kernels lose precision at every layer.
func matrixMode(op vop.Opcode) bool {
	switch op {
	case vop.OpGEMM, vop.OpConv, vop.OpDCT8x8, vop.OpFDWT97:
		return true
	case vop.OpReduceSum, vop.OpReduceAverage:
		// Summations lower to a matrix-vector product against ones, the
		// TCUSCAN/GPTPU trick the paper cites for reductions (§2.2.1):
		// INT8 inputs, wide INT32 accumulation, one output requant.
		return true
	}
	return false
}

// Execute implements device.Device.
func (d *Device) Execute(op vop.Opcode, inputs []*tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	return d.ExecuteInto(op, inputs, nil, attrs)
}

// ExecuteInto implements device.Device. The TPU sits behind PCIe with
// private memory and quantized staging, so it ignores dst and always
// returns a fresh materialized buffer; the runtime detects result != dst
// and scatters it into the VOP output on the copy path.
//
// Dispatch is staging followed by ExecuteStaged — the same path the input
// prefetcher takes, which is what makes prefetched runs bit-identical.
func (d *Device) ExecuteInto(op vop.Opcode, inputs []*tensor.Matrix, _ *tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	if err := d.checkFits(op, inputs); err != nil {
		return nil, err
	}
	st := &device.Staged{Inputs: make([]*tensor.Matrix, len(inputs))}
	for i, in := range inputs {
		st.Inputs[i] = d.StageInput(op, in)
	}
	return d.ExecuteStaged(op, st, attrs)
}

var _ device.Prestager = (*Device)(nil)

// CanStage implements device.Prestager: an operand set that would overflow
// device memory is left for the dispatch path, whose ErrTooLarge drives the
// runtime's split logic.
func (d *Device) CanStage(op vop.Opcode, inputs []*tensor.Matrix) bool {
	return d.checkFits(op, inputs) == nil
}

// StageInput implements device.Prestager: one operand's boundary staging —
// a stride-aware gather into a dense buffer (inputs may be views) followed
// by quantization to the mode's arithmetic. Matrix-mode opcodes quantize
// INT8 at the boundary and accumulate wide; NPU-mode opcodes quantize with
// the model's rounder.
func (d *Device) StageInput(op vop.Opcode, in *tensor.Matrix) *tensor.Matrix {
	if matrixMode(op) {
		c := tensor.Materialize(in)
		kernels.Int8{}.Round(c.Data)
		return c
	}
	return d.model(op).Stage(in)
}

// ExecuteStaged implements device.Prestager: runs the opcode over operands
// already staged by StageInput, releasing the staged set's owned buffers.
func (d *Device) ExecuteStaged(op vop.Opcode, st *device.Staged, attrs map[string]float64) (*tensor.Matrix, error) {
	var out *tensor.Matrix
	var err error
	if matrixMode(op) {
		out, err = kernels.Exec(op, st.Inputs, attrs, kernels.Exact{})
	} else {
		out, err = d.model(op).RunStaged(st.Inputs, attrs)
	}
	st.Release() // kernels never retain or return their inputs
	if err != nil {
		return nil, err
	}
	if matrixMode(op) {
		requantOutput(op, out) // single output requantization
	}
	return out, nil
}

// requantOutput applies the matrix-mode output requantization. Structured
// transforms use per-channel scales the way the TFLite/Edge-TPU compiler
// assigns per-channel quantization: without this, the DCT's large DC
// coefficients would stretch a tensor-wide scale and crush the AC precision.
func requantOutput(op vop.Opcode, out *tensor.Matrix) {
	switch op {
	case vop.OpDCT8x8:
		// One channel per 8×8 coefficient position.
		requantChannels(out, func(i, j int) int { return (i%8)*8 + j%8 }, 64)
	case vop.OpFDWT97:
		// One channel per wavelet quadrant (LL/HL/LH/HH).
		requantChannels(out, func(i, j int) int {
			ch := 0
			if i >= (out.Rows+1)/2 {
				ch += 2
			}
			if j >= (out.Cols+1)/2 {
				ch++
			}
			return ch
		}, 4)
	default:
		r := kernels.Int8{}
		r.Round(out.Data)
	}
}

// requantChannels groups elements by channel, calibrates an affine INT8
// quantization per channel, and round-trips the data through it.
func requantChannels(out *tensor.Matrix, channel func(i, j int) int, n int) {
	groups := make([][]float64, n)
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < out.Cols; j++ {
			ch := channel(i, j)
			groups[ch] = append(groups[ch], out.Data[i*out.Cols+j])
		}
	}
	params := make([]quant.AffineParams, n)
	for ch, g := range groups {
		params[ch] = quant.CalibrateAffine(g)
	}
	for i := 0; i < out.Rows; i++ {
		for j := 0; j < out.Cols; j++ {
			p := params[channel(i, j)]
			idx := i*out.Cols + j
			out.Data[idx] = p.DequantizeOne(p.QuantizeOne(out.Data[idx]))
		}
	}
}

// checkFits enforces the 8 MB device-memory constraint: an HLOP whose
// buffers exceed it must be split by the runtime before dispatch.
func (d *Device) checkFits(op vop.Opcode, inputs []*tensor.Matrix) error {
	var total int64
	for _, in := range inputs {
		total += in.Bytes(d.ElemBytes())
	}
	// Output plus one double-buffer slot.
	if len(inputs) > 0 {
		total += 2 * inputs[0].Bytes(d.ElemBytes())
	}
	if total > d.cfg.MemoryBytes {
		return fmt.Errorf("tpu: HLOP working set %d B exceeds device memory %d B: %w",
			total, d.cfg.MemoryBytes, device.ErrTooLarge)
	}
	return nil
}

// ExecTime implements device.Device.
func (d *Device) ExecTime(op vop.Opcode, n int) float64 {
	return float64(n) * d.cfg.Slowdown / (device.Throughput(device.TPU, op) * d.cfg.ThroughputScale)
}

// DispatchOverhead implements device.Device: TFLite model invocation.
func (d *Device) DispatchOverhead() float64 { return device.DispatchTPU }

// Link implements device.Device: the M.2 module sits on PCIe.
func (d *Device) Link() interconnect.Link {
	l := interconnect.PCIeTPU
	l.BandwidthBps /= d.cfg.Slowdown
	return l
}

// ElemBytes implements device.Device: INT8 activations.
func (d *Device) ElemBytes() int { return 1 }

// MemoryBytes implements device.Device.
func (d *Device) MemoryBytes() int64 { return d.cfg.MemoryBytes }
