package dsp

import (
	"math"
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/tensor"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

func TestIdentity(t *testing.T) {
	d := New(Config{})
	if d.Name() != "dsp" || d.Kind() != device.DSP {
		t.Fatal("identity wrong")
	}
	if d.MemoryBytes() != 0 || d.ElemBytes() != 4 {
		t.Fatal("memory model wrong")
	}
}

func TestAccuracyOrderBetweenGPUAndTPU(t *testing.T) {
	g := gpu.New(gpu.Config{})
	p := tpu.New(tpu.Config{})
	d := New(Config{})
	if !(g.AccuracyRank() < d.AccuracyRank() && d.AccuracyRank() < p.AccuracyRank()) {
		t.Fatalf("24-bit DSP must rank between FP32 (%d) and INT8 (%d), got %d",
			g.AccuracyRank(), p.AccuracyRank(), d.AccuracyRank())
	}
}

func TestSupportsHomeDomainOnly(t *testing.T) {
	d := New(Config{})
	for _, op := range []vop.Opcode{vop.OpSobel, vop.OpFFT, vop.OpConv, vop.OpStencil} {
		if !d.Supports(op) {
			t.Errorf("%s should be in the DSP's home domain", op)
		}
	}
	for _, op := range []vop.Opcode{vop.OpGEMM, vop.OpParabolicPDE, vop.OpLog, vop.OpReduceHist256} {
		if d.Supports(op) {
			t.Errorf("%s should be outside the DSP's home domain", op)
		}
	}
}

func TestExecuteErrorBetweenGPUAndTPU(t *testing.T) {
	in := workload.Mixed(64, 64, workload.Profile{CriticalFraction: 0.8, TileSize: 32}, 5)
	ref, _ := cpu.New(1).Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	sum := func(d device.Device) float64 {
		out, err := d.Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
		if err != nil {
			t.Fatal(err)
		}
		var e float64
		for i := range ref.Data {
			e += math.Abs(out.Data[i] - ref.Data[i])
		}
		return e
	}
	eGPU := sum(gpu.New(gpu.Config{}))
	eDSP := sum(New(Config{}))
	eTPU := sum(tpu.New(tpu.Config{}))
	if !(eGPU < eDSP && eDSP < eTPU) {
		t.Fatalf("error ordering violated: gpu=%g dsp=%g tpu=%g", eGPU, eDSP, eTPU)
	}
}

func TestFixed24RounderBound(t *testing.T) {
	data := []float64{-2, 0.5, 1.9999, 2}
	orig := append([]float64(nil), data...)
	var r Fixed24
	r.Round(data)
	for i := range data {
		if math.Abs(data[i]-orig[i]) > 2.0/(1<<23) {
			t.Fatalf("fixed24 error too large at %d: %g", i, math.Abs(data[i]-orig[i]))
		}
	}
	if r.Name() != "fixed24" {
		t.Fatal("rounder name wrong")
	}
}

func TestSlowdownScaling(t *testing.T) {
	fast := New(Config{})
	slow := New(Config{Slowdown: 4})
	if slow.ExecTime(vop.OpSobel, 100) != 4*fast.ExecTime(vop.OpSobel, 100) {
		t.Fatal("slowdown not applied")
	}
	if slow.Link().BandwidthBps*4 != fast.Link().BandwidthBps {
		t.Fatal("link bandwidth not scaled")
	}
}

func TestFilterPipelineFasterThanTransforms(t *testing.T) {
	d := New(Config{})
	if d.ExecTime(vop.OpSobel, 1000) >= d.ExecTime(vop.OpSRAD, 1000) {
		t.Fatal("hardwired filters should outpace irregular kernels per element")
	}
}
