// Package dsp implements an image/signal DSP device — the extension the
// paper sketches in §2.1: "as many DSP applications have strong connections
// with AI/ML applications and rely on similar mathematical functions, SHMT
// can easily extend the support to DSPs."
//
// The device models a 24-bit fixed-point image DSP (the paper cites Analog
// Devices and NXP parts computing in 24-bit, and Google Visual Core's
// 16-bit IPU). It registers HLOPs only for its home domain — stencils,
// filters, transforms, and the other signal-flavoured VOPs — and declines
// everything else, which exercises the runtime's per-device HLOP-coverage
// path (§3.3: each driver provides "its list of available HLOPs").
// Accuracy-wise it slots between the FP32 GPU and the INT8 Edge TPU.
package dsp

import (
	"shmt/internal/device"
	"shmt/internal/interconnect"
	"shmt/internal/kernels"
	"shmt/internal/parallel"
	"shmt/internal/quant"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Config tunes the simulated DSP.
type Config struct {
	// ThroughputScale multiplies modelled throughputs (default 1).
	ThroughputScale float64
	// Slowdown ≥ 1 scales the virtual platform down. Default 1.
	Slowdown float64
}

// Device is the simulated 24-bit image DSP.
type Device struct {
	name string
	cfg  Config
}

// New returns a DSP device named "dsp".
func New(cfg Config) *Device {
	if cfg.ThroughputScale <= 0 {
		cfg.ThroughputScale = 1
	}
	if cfg.Slowdown < 1 {
		cfg.Slowdown = 1
	}
	return &Device{name: "dsp", cfg: cfg}
}

var _ device.Device = (*Device)(nil)

// Name implements device.Device.
func (d *Device) Name() string { return d.name }

// Kind implements device.Device.
func (d *Device) Kind() device.Kind { return device.DSP }

// AccuracyRank implements device.Device: 24-bit fixed point sits between
// FP32 (rank 1) and INT8 (rank 3).
func (d *Device) AccuracyRank() int { return 2 }

// homeDomain lists the signal/image VOPs the DSP implements in hardware.
var homeDomain = map[vop.Opcode]bool{
	vop.OpConv:       true,
	vop.OpFFT:        true,
	vop.OpDCT8x8:     true,
	vop.OpFDWT97:     true,
	vop.OpLaplacian:  true,
	vop.OpMeanFilter: true,
	vop.OpSobel:      true,
	vop.OpSRAD:       true,
	vop.OpStencil:    true,
	vop.OpAdd:        true,
	vop.OpSub:        true,
	vop.OpMultiply:   true,
}

// Supports implements device.Device: home-domain VOPs only.
func (d *Device) Supports(op vop.Opcode) bool { return homeDomain[op] }

// Fixed24 rounds every value onto the 24-bit fixed-point grid, recalibrated
// per stage — the DSP's kernels.Rounder.
type Fixed24 struct{}

// Round implements kernels.Rounder. Calibration is a sequential scan (its
// result is order-independent); the per-element round-trip parallelizes.
func (Fixed24) Round(data []float64) {
	p := quant.CalibrateFixed24(data)
	parallel.For(len(data), 4096, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = p.DequantizeOne(p.QuantizeOne(data[i]))
		}
	})
}

// Name implements kernels.Rounder.
func (Fixed24) Name() string { return "fixed24" }

// Execute implements device.Device: 24-bit fixed-point execution.
func (d *Device) Execute(op vop.Opcode, inputs []*tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	return d.ExecuteInto(op, inputs, nil, attrs)
}

// ExecuteInto implements device.Device. The on-SoC DSP shares host memory,
// so when dst is given the fixed-point result is written through it. Note
// Fixed24 calibrates per stage, so it is deliberately not an
// ElementwiseRounder: kernels gather strided destinations before the final
// requant to keep calibration identical to the copy path.
func (d *Device) ExecuteInto(op vop.Opcode, inputs []*tensor.Matrix, dst *tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	var r kernels.Rounder = Fixed24{}
	cast := make([]*tensor.Matrix, len(inputs))
	for i, in := range inputs {
		c := tensor.Materialize(in) // stride-aware gather: inputs may be views
		r.Round(c.Data)
		cast[i] = c
	}
	out, err := kernels.ExecInto(op, cast, dst, attrs, r)
	for _, c := range cast {
		tensor.PutMatrix(c) // kernels never retain or return their inputs
	}
	return out, err
}

// dspRatio scales the GPU throughput: dedicated filter pipelines make the
// DSP strong on its home stencils, weaker elsewhere in the domain.
func dspRatio(op vop.Opcode) float64 {
	switch op {
	case vop.OpConv, vop.OpLaplacian, vop.OpMeanFilter, vop.OpSobel:
		return 1.4 // hardwired filter pipelines
	case vop.OpFFT, vop.OpDCT8x8, vop.OpFDWT97:
		return 1.1 // native transform units
	case vop.OpSRAD, vop.OpStencil:
		return 0.8
	default:
		return 0.6
	}
}

// ExecTime implements device.Device.
func (d *Device) ExecTime(op vop.Opcode, n int) float64 {
	tp := device.Throughput(device.GPU, op) * dspRatio(op) * d.cfg.ThroughputScale
	return float64(n) * d.cfg.Slowdown / tp
}

// DispatchOverhead implements device.Device: command-list submission.
func (d *Device) DispatchOverhead() float64 { return 60e-6 }

// Link implements device.Device: an on-SoC DSP shares host memory.
func (d *Device) Link() interconnect.Link {
	l := interconnect.HostDRAM
	l.BandwidthBps /= d.cfg.Slowdown
	return l
}

// ElemBytes implements device.Device: 24-bit samples occupy 4-byte lanes in
// host memory (packed 3-byte formats exist but DMA engines pad).
func (d *Device) ElemBytes() int { return 4 }

// MemoryBytes implements device.Device: shared host memory.
func (d *Device) MemoryBytes() int64 { return 0 }
