package device

import (
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Staged is a prestaged input set for a private-memory device: every operand
// already materialized into a dense buffer and quantized to the device's
// arithmetic, exactly as the device's dispatch path would have staged it —
// which is what keeps prefetched and unprefetched executions bit-identical.
type Staged struct {
	// Inputs are the device-precision operand buffers, parallel to the
	// HLOP's inputs.
	Inputs []*tensor.Matrix
	// Keep marks operands owned by someone else — device-resident shared
	// operands (a GEMM right-hand matrix, a convolution kernel) staged once
	// and reused across consecutive HLOPs. ExecuteStaged must not release
	// them.
	Keep []bool
	// Bytes is the footprint of the buffers this Staged owns (Keep=false
	// entries), as accounted by the prefetch-buffer gauge.
	Bytes int64
}

// Release returns every owned buffer to the arena. Safe to call after a
// cancelled prefetch or a failed dispatch; shared (Keep) operands stay
// resident for their other consumers.
func (s *Staged) Release() {
	for i, m := range s.Inputs {
		if m != nil && (s.Keep == nil || !s.Keep[i]) {
			tensor.PutMatrix(m)
		}
	}
	s.Inputs = nil
}

// Prestager is implemented by devices whose boundary staging (materialize +
// quantize into private memory) can run ahead of execution. The engines'
// input prefetcher stages HLOP k+1's operands on the worker pool while HLOP
// k executes, then dispatches through ExecuteStaged; devices that stage
// nothing (shared-memory CPU/GPU/DSP) simply don't implement it.
type Prestager interface {
	// CanStage reports whether the operand set fits the device (the staging
	// analogue of the ErrTooLarge check): oversized HLOPs are left for the
	// dispatch path, whose error drives the runtime's split logic.
	CanStage(op vop.Opcode, inputs []*tensor.Matrix) bool
	// StageInput materializes and quantizes one operand exactly as the
	// dispatch path would.
	StageInput(op vop.Opcode, in *tensor.Matrix) *tensor.Matrix
	// ExecuteStaged runs the opcode over a fully prestaged operand set. It
	// consumes st: owned buffers are released, Keep operands are left
	// untouched.
	ExecuteStaged(op vop.Opcode, st *Staged, attrs map[string]float64) (*tensor.Matrix, error)
}
