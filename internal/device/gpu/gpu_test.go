package gpu

import (
	"math"
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/tensor"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

func TestIdentity(t *testing.T) {
	d := New(Config{})
	if d.Name() != "gpu" || d.Kind() != device.GPU {
		t.Fatal("identity wrong")
	}
	if d.AccuracyRank() != 1 {
		t.Fatal("FP32 GPU should rank just below the exact CPU")
	}
	if d.ElemBytes() != 4 {
		t.Fatal("FP32 element width expected")
	}
	if d.MemoryBytes() != 0 {
		t.Fatal("integrated GPU shares host memory")
	}
	for _, op := range vop.All() {
		if !d.Supports(op) {
			t.Fatalf("GPU should support %s", op)
		}
	}
}

func TestFP32ErrorIsTinyButNonzero(t *testing.T) {
	d := New(Config{})
	ref := cpu.New(1)
	in := workload.Uniform(32, 32, 0.1, 1, 2)
	got, err := d.Execute(vop.OpLog, []*tensor.Matrix{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := ref.Execute(vop.OpLog, []*tensor.Matrix{in}, nil)
	var maxd float64
	for i := range got.Data {
		if dd := math.Abs(got.Data[i] - want.Data[i]); dd > maxd {
			maxd = dd
		}
	}
	if maxd == 0 {
		t.Fatal("FP32 should differ from FP64 on transcendental outputs")
	}
	if maxd > 1e-5 {
		t.Fatalf("FP32 error %g too large", maxd)
	}
}

func TestHalfPrecisionMode(t *testing.T) {
	full := New(Config{})
	half := New(Config{HalfPrecision: true})
	if half.AccuracyRank() <= full.AccuracyRank() {
		t.Fatal("FP16 should rank below FP32")
	}
	if half.ElemBytes() != 2 {
		t.Fatal("FP16 element width expected")
	}
	if half.ExecTime(vop.OpAdd, 1000) >= full.ExecTime(vop.OpAdd, 1000) {
		t.Fatal("FP16 should be faster")
	}
	in := workload.Uniform(16, 16, 0, 1, 3)
	ref := cpu.New(1)
	want, _ := ref.Execute(vop.OpSqrt, []*tensor.Matrix{in}, nil)
	a, _ := full.Execute(vop.OpSqrt, []*tensor.Matrix{in}, nil)
	b, _ := half.Execute(vop.OpSqrt, []*tensor.Matrix{in}, nil)
	var ea, eb float64
	for i := range want.Data {
		ea += math.Abs(a.Data[i] - want.Data[i])
		eb += math.Abs(b.Data[i] - want.Data[i])
	}
	if eb <= ea {
		t.Fatalf("FP16 error %g should exceed FP32 error %g", eb, ea)
	}
}

func TestSlowdownScaling(t *testing.T) {
	fast := New(Config{})
	slow := New(Config{Slowdown: 8})
	if got, want := slow.ExecTime(vop.OpFFT, 100), 8*fast.ExecTime(vop.OpFFT, 100); math.Abs(got-want) > 1e-15 {
		t.Fatalf("slowdown not applied: %g want %g", got, want)
	}
	if slow.Link().BandwidthBps*8 != fast.Link().BandwidthBps {
		t.Fatal("link bandwidth not scaled")
	}
}

func TestThroughputScaleAblation(t *testing.T) {
	base := New(Config{})
	boosted := New(Config{ThroughputScale: 2})
	if boosted.ExecTime(vop.OpGEMM, 1000)*2 != base.ExecTime(vop.OpGEMM, 1000) {
		t.Fatal("throughput scale not applied")
	}
}
