// Package gpu implements the simulated 128-core Maxwell-class GPU of the
// prototype platform (§4.1): a vector-processing device that executes every
// HLOP in real single-precision (FP32) arithmetic, with an optional FP16
// AI/ML mode, and a throughput model calibrated to the paper's Fig. 2
// measurements.
//
// The GPU is the paper's performance and accuracy baseline: all speedups
// (Fig. 6, 9, 12), energy (Fig. 10) and footprints (Fig. 11) are reported
// relative to it, and MAPE/SSIM compare against outputs of this precision
// class.
package gpu

import (
	"shmt/internal/device"
	"shmt/internal/interconnect"
	"shmt/internal/kernels"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Config tunes the simulated GPU.
type Config struct {
	// HalfPrecision switches execution to FP16 (the Maxwell FP16 path for
	// AI/ML workloads). Default is native FP32.
	HalfPrecision bool
	// ThroughputScale multiplies all modelled throughputs (default 1);
	// useful for what-if ablations (e.g. the data-center GPU:TPU ratio).
	ThroughputScale float64
	// Slowdown ≥ 1 scales the virtual platform down (throughput and link
	// bandwidth divide by it) so reduced-size experiments reproduce the
	// full-size timeline. Default 1.
	Slowdown float64
}

// Device is the simulated GPU.
type Device struct {
	name string
	cfg  Config
}

// New returns a GPU device named "gpu".
func New(cfg Config) *Device {
	if cfg.ThroughputScale <= 0 {
		cfg.ThroughputScale = 1
	}
	if cfg.Slowdown < 1 {
		cfg.Slowdown = 1
	}
	return &Device{name: "gpu", cfg: cfg}
}

var _ device.Device = (*Device)(nil)

// Name implements device.Device.
func (d *Device) Name() string { return d.name }

// Kind implements device.Device.
func (d *Device) Kind() device.Kind { return device.GPU }

// AccuracyRank implements device.Device: FP32 ranks just below the exact
// CPU; the FP16 mode ranks below that but still above INT8.
func (d *Device) AccuracyRank() int {
	if d.cfg.HalfPrecision {
		return 2
	}
	return 1
}

// Supports implements device.Device: the GPU has a CUDA implementation of
// every VOP in the table (the paper's baselines are all GPU kernels).
func (d *Device) Supports(op vop.Opcode) bool {
	for _, o := range vop.All() {
		if o == op {
			return true
		}
	}
	return false
}

// Execute implements device.Device: the kernel runs with FP32 (or FP16)
// rounding at every stage boundary, and inputs are cast to the native
// precision at the host boundary first — the runtime's data-type casting of
// §3.3.2.
func (d *Device) Execute(op vop.Opcode, inputs []*tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	return d.ExecuteInto(op, inputs, nil, attrs)
}

// ExecuteInto implements device.Device. The integrated GPU shares host
// memory, so when dst is given the FP32/FP16 result lands directly in it
// (the precision cast of the inputs is a modelled device behaviour and is
// kept — stride-aware — even for views).
func (d *Device) ExecuteInto(op vop.Opcode, inputs []*tensor.Matrix, dst *tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	var r kernels.Rounder = kernels.F32{}
	if d.cfg.HalfPrecision {
		r = kernels.F16{}
	}
	cast := make([]*tensor.Matrix, len(inputs))
	for i, in := range inputs {
		c := tensor.Materialize(in) // stride-aware gather: inputs may be views
		r.Round(c.Data)
		cast[i] = c
	}
	out, err := kernels.ExecInto(op, cast, dst, attrs, r)
	for _, c := range cast {
		tensor.PutMatrix(c) // kernels never retain or return their inputs
	}
	return out, err
}

// ExecTime implements device.Device.
func (d *Device) ExecTime(op vop.Opcode, n int) float64 {
	tp := device.Throughput(device.GPU, op) * d.cfg.ThroughputScale / d.cfg.Slowdown
	if d.cfg.HalfPrecision {
		tp *= 1.6 // Maxwell FP16 packs two operands per lane, less than 2x in practice
	}
	return float64(n) / tp
}

// DispatchOverhead implements device.Device: kernel-launch latency.
func (d *Device) DispatchOverhead() float64 { return device.DispatchGPU }

// Link implements device.Device: the integrated GPU shares host LPDDR4.
func (d *Device) Link() interconnect.Link {
	l := interconnect.HostDRAM
	l.BandwidthBps /= d.cfg.Slowdown
	return l
}

// ElemBytes implements device.Device.
func (d *Device) ElemBytes() int {
	if d.cfg.HalfPrecision {
		return 2
	}
	return 4
}

// MemoryBytes implements device.Device: the integrated GPU has no private
// memory; it shares the 4 GB LPDDR4.
func (d *Device) MemoryBytes() int64 { return 0 }
