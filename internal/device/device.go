// Package device defines the processing-resource abstraction of the SHMT
// runtime: every computing resource (CPU, GPU, Edge TPU) registers the HLOP
// implementations it supports, a cost model, its accuracy class, and an
// incoming/completion queue pair — exactly the contract of §3.3: "Upon the
// initialization of the SHMT system, each hardware resource's driver is
// responsible for providing SHMT with its list of available HLOPs operations
// and their implementations."
package device

import (
	"errors"
	"fmt"
	"sort"

	"shmt/internal/interconnect"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Kind classifies a processing resource.
type Kind int

const (
	// CPU is the host processor (exact, slow, orchestrates).
	CPU Kind = iota
	// GPU is the vector-processing accelerator (FP32).
	GPU
	// TPU is the matrix/NPU accelerator (INT8).
	TPU
	// DSP is the signal/image accelerator (24-bit fixed point), the
	// extension device of §2.1.
	DSP
	// Remote is a network-attached executor: another SHMT node (a shmtserved
	// backend behind the router tier) presented through the same Device
	// interface, with the cluster network as its interconnect link.
	Remote
)

func (k Kind) String() string {
	switch k {
	case CPU:
		return "cpu"
	case GPU:
		return "gpu"
	case TPU:
		return "tpu"
	case DSP:
		return "dsp"
	case Remote:
		return "remote"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Device is one processing resource the SHMT runtime can schedule HLOPs on.
// Implementations must be safe for concurrent Execute calls (the concurrent
// engine runs one worker goroutine per device, and stealing can move work
// between workers).
type Device interface {
	// Name uniquely identifies the device instance ("gpu", "tpu", "cpu").
	Name() string
	// Kind returns the device class.
	Kind() Kind
	// AccuracyRank orders devices by result accuracy: 0 is most accurate.
	// QAWS's stealing constraint ("only allows a device with higher accuracy
	// to steal HLOPs from another device with the same or a lower accuracy")
	// compares these ranks.
	AccuracyRank() int
	// Supports reports whether the device registered an HLOP implementation
	// for the opcode.
	Supports(op vop.Opcode) bool
	// Execute runs the opcode over the inputs at the device's native
	// precision and returns the result (restored to float64, as the paper's
	// runtime restores results to the application's precision).
	Execute(op vop.Opcode, inputs []*tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error)
	// ExecuteInto is Execute with an optional destination. Inputs may be
	// strided views. When dst is non-nil, devices that execute out of shared
	// host memory write the result through dst — typically a strided view
	// into the VOP's output tensor — and return dst, eliminating the
	// aggregate scatter copy. Devices with private memory or quantized
	// output staging (the TPU) may ignore dst and return a fresh buffer; the
	// caller detects that by result != dst and falls back to the copy path.
	ExecuteInto(op vop.Opcode, inputs []*tensor.Matrix, dst *tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error)
	// ExecTime returns the modelled execution latency for n elements of the
	// opcode, excluding dispatch and transfers.
	ExecTime(op vop.Opcode, n int) float64
	// DispatchOverhead is the fixed per-HLOP invocation cost (kernel launch,
	// model invocation).
	DispatchOverhead() float64
	// Link is the path data takes between host memory and the device.
	Link() interconnect.Link
	// ElemBytes is the native element width used to size transfers.
	ElemBytes() int
	// MemoryBytes is the private device memory capacity; 0 means the device
	// works out of shared host memory.
	MemoryBytes() int64
}

// MaxPartitionElems returns how many input elements of the given opcode fit
// in the device's private memory at once (inputs + output + double-buffer
// slack), or 0 if the device has no private-memory constraint.
func MaxPartitionElems(d Device, op vop.Opcode) int {
	mem := d.MemoryBytes()
	if mem <= 0 {
		return 0
	}
	// inputs + output + a second buffer for double buffering.
	buffers := int64(op.NumInputs() + 2)
	elems := mem / (buffers * int64(d.ElemBytes()))
	if elems < 1 {
		elems = 1
	}
	if elems > int64(int(^uint(0)>>1)) {
		return 0
	}
	return int(elems)
}

// Registry holds the devices available to a session, ordered by queue index
// (the paper's example: "the GPU queue has an index value of 0, and the Edge
// TPU queue has an index value of 1").
type Registry struct {
	devices []Device
	byName  map[string]int
}

// NewRegistry builds a registry; device names must be unique.
func NewRegistry(devices ...Device) (*Registry, error) {
	r := &Registry{byName: make(map[string]int, len(devices))}
	for _, d := range devices {
		if d == nil {
			return nil, fmt.Errorf("device: nil device")
		}
		if _, dup := r.byName[d.Name()]; dup {
			return nil, fmt.Errorf("device: duplicate device name %q", d.Name())
		}
		r.byName[d.Name()] = len(r.devices)
		r.devices = append(r.devices, d)
	}
	if len(r.devices) == 0 {
		return nil, fmt.Errorf("device: registry needs at least one device")
	}
	return r, nil
}

// Devices returns the devices in queue-index order.
func (r *Registry) Devices() []Device { return r.devices }

// Len returns the number of devices.
func (r *Registry) Len() int { return len(r.devices) }

// Index returns the queue index of the named device, or -1.
func (r *Registry) Index(name string) int {
	if i, ok := r.byName[name]; ok {
		return i
	}
	return -1
}

// Get returns the device at queue index i.
func (r *Registry) Get(i int) Device { return r.devices[i] }

// Supporting returns the queue indices of devices that support op, in
// ascending accuracy-rank order (most accurate first).
func (r *Registry) Supporting(op vop.Opcode) []int {
	var idx []int
	for i, d := range r.devices {
		if d.Supports(op) {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return r.devices[idx[a]].AccuracyRank() < r.devices[idx[b]].AccuracyRank()
	})
	return idx
}

// ErrTooLarge is returned by a device when an HLOP's working set exceeds its
// private memory; the runtime responds by splitting the HLOP (§3.4: "the
// runtime system may need to further fuse or partition HLOPs").
var ErrTooLarge = errors.New("device: HLOP exceeds device memory")
