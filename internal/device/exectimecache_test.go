package device

import (
	"testing"

	"shmt/internal/telemetry"
	"shmt/internal/vop"
)

// costDevice is a fakeDevice whose cost model actually depends on the shape,
// so memoization errors are observable.
type costDevice struct{ fakeDevice }

func (c *costDevice) ExecTime(op vop.Opcode, n int) float64 {
	return float64(op)*1e-6 + float64(n)*1e-9
}

func TestExecTimeCacheMemoizes(t *testing.T) {
	c := NewExecTimeCache()
	dev := &costDevice{fakeDevice{name: "cpu"}}
	a := c.ExecTime(dev, vop.OpSobel, 1024)
	b := c.ExecTime(dev, vop.OpSobel, 1024)
	if a != b {
		t.Fatalf("memoized value changed: %g vs %g", a, b)
	}
	if a != dev.ExecTime(vop.OpSobel, 1024) {
		t.Fatal("cached value differs from the cost model")
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d, want 1", c.Len())
	}
	// Distinct shapes get distinct entries.
	c.ExecTime(dev, vop.OpSobel, 2048)
	c.ExecTime(dev, vop.OpGEMM, 1024)
	if c.Len() != 3 {
		t.Fatalf("Len = %d, want 3", c.Len())
	}
}

// TestExecTimeCacheCapped streams more distinct shapes than the cap and
// checks the epoch flush: the map never exceeds DefaultExecTimeEntries and the
// eviction counter records the dropped entries (satellite: unbounded growth
// fix).
func TestExecTimeCacheCapped(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	base := telemetry.ExecCacheEvictions.Value()

	c := NewExecTimeCache()
	dev := &costDevice{fakeDevice{name: "cpu"}}
	for elems := 1; elems <= DefaultExecTimeEntries+100; elems++ {
		c.ExecTime(dev, vop.OpAdd, elems)
		if c.Len() > DefaultExecTimeEntries {
			t.Fatalf("cache grew past the cap: %d", c.Len())
		}
	}
	// One flush happened: the 4097th insert dropped the full map.
	if got := telemetry.ExecCacheEvictions.Value() - base; got != DefaultExecTimeEntries {
		t.Fatalf("evictions = %d, want %d", got, DefaultExecTimeEntries)
	}
	// Values remain correct across the flush.
	if got, want := c.ExecTime(dev, vop.OpAdd, 7), dev.ExecTime(vop.OpAdd, 7); got != want {
		t.Fatalf("post-flush value %g, want %g", got, want)
	}
}

// TestExecTimeCacheSized checks the configurable entry cap: a small cap
// flushes early, and non-positive caps fall back to the default.
func TestExecTimeCacheSized(t *testing.T) {
	c := NewExecTimeCacheSized(8)
	dev := &costDevice{fakeDevice{name: "cpu"}}
	for elems := 1; elems <= 100; elems++ {
		c.ExecTime(dev, vop.OpAdd, elems)
		if c.Len() > 8 {
			t.Fatalf("cache grew past its configured cap: %d", c.Len())
		}
	}
	if got, want := c.ExecTime(dev, vop.OpAdd, 3), dev.ExecTime(vop.OpAdd, 3); got != want {
		t.Fatalf("post-flush value %g, want %g", got, want)
	}
	for _, bad := range []int{0, -5} {
		if d := NewExecTimeCacheSized(bad); d.max != DefaultExecTimeEntries {
			t.Fatalf("NewExecTimeCacheSized(%d).max = %d, want default %d", bad, d.max, DefaultExecTimeEntries)
		}
	}
}

func TestExecTimeCacheCounters(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	hits0, miss0 := telemetry.ExecCacheHits.Value(), telemetry.ExecCacheMisses.Value()

	c := NewExecTimeCache()
	dev := &costDevice{fakeDevice{name: "cpu"}}
	c.ExecTime(dev, vop.OpSobel, 64) // miss
	c.ExecTime(dev, vop.OpSobel, 64) // hit
	c.ExecTime(dev, vop.OpSobel, 64) // hit

	if got := telemetry.ExecCacheHits.Value() - hits0; got != 2 {
		t.Fatalf("hits = %d, want 2", got)
	}
	if got := telemetry.ExecCacheMisses.Value() - miss0; got != 1 {
		t.Fatalf("misses = %d, want 1", got)
	}
}

// TestTaskQueueInstrumentation checks the depth gauge and wait histogram the
// concurrent engine attaches per device queue.
func TestTaskQueueInstrumentation(t *testing.T) {
	telemetry.Enable()
	defer telemetry.Disable()
	reg := telemetry.NewRegistry()
	depth := reg.NewGauge("q_depth", "d")
	wait := reg.NewHistogram("q_wait", "w", telemetry.ExpBuckets(1e-9, 10, 12))

	q := NewTaskQueue[int]()
	q.Instrument(depth, wait)
	q.Push(1)
	q.Push(2)
	q.Push(3)
	if depth.Value() != 3 {
		t.Fatalf("depth after pushes = %d", depth.Value())
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = %d, %v", v, ok)
	}
	if v, ok := q.Steal(); !ok || v != 3 {
		t.Fatalf("Steal = %d, %v (steals take the tail)", v, ok)
	}
	if depth.Value() != 1 {
		t.Fatalf("depth after pop+steal = %d", depth.Value())
	}
	if wait.Count() != 2 {
		t.Fatalf("wait observations = %d, want 2", wait.Count())
	}
	q.PushFront(0)
	if v, ok := q.Pop(); !ok || v != 0 {
		t.Fatalf("PushFront not at head: %d, %v", v, ok)
	}
	if wait.Count() != 3 {
		t.Fatalf("wait observations = %d, want 3", wait.Count())
	}
	if depth.Value() != 1 {
		t.Fatalf("depth = %d, want 1", depth.Value())
	}
}

// TestTaskQueueUninstrumented checks the plain path still works and keeps no
// timestamp bookkeeping.
func TestTaskQueueUninstrumented(t *testing.T) {
	q := NewTaskQueue[int]()
	q.Push(1)
	q.Push(2)
	if len(q.enqueued) != 0 {
		t.Fatal("uninstrumented queue kept timestamps")
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("Pop = %d, %v", v, ok)
	}
	if q.Pending() != 1 {
		t.Fatalf("Pending = %d", q.Pending())
	}
}
