package device

import (
	"sync"
	"testing"

	"shmt/internal/interconnect"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// fakeDevice is a minimal Device for registry tests.
type fakeDevice struct {
	name string
	kind Kind
	rank int
	mem  int64
	ops  map[vop.Opcode]bool
}

func (f *fakeDevice) Name() string      { return f.name }
func (f *fakeDevice) Kind() Kind        { return f.kind }
func (f *fakeDevice) AccuracyRank() int { return f.rank }
func (f *fakeDevice) Supports(op vop.Opcode) bool {
	if f.ops == nil {
		return true
	}
	return f.ops[op]
}
func (f *fakeDevice) Execute(vop.Opcode, []*tensor.Matrix, map[string]float64) (*tensor.Matrix, error) {
	return tensor.NewMatrix(1, 1), nil
}
func (f *fakeDevice) ExecuteInto(op vop.Opcode, in []*tensor.Matrix, _ *tensor.Matrix, at map[string]float64) (*tensor.Matrix, error) {
	return f.Execute(op, in, at)
}
func (f *fakeDevice) ExecTime(vop.Opcode, int) float64 { return 1 }
func (f *fakeDevice) DispatchOverhead() float64        { return 0 }
func (f *fakeDevice) Link() interconnect.Link          { return interconnect.HostDRAM }
func (f *fakeDevice) ElemBytes() int                   { return 4 }
func (f *fakeDevice) MemoryBytes() int64               { return f.mem }

func TestRegistryBasics(t *testing.T) {
	g := &fakeDevice{name: "gpu", kind: GPU, rank: 1}
	p := &fakeDevice{name: "tpu", kind: TPU, rank: 3}
	r, err := NewRegistry(g, p)
	if err != nil {
		t.Fatal(err)
	}
	if r.Len() != 2 || r.Index("gpu") != 0 || r.Index("tpu") != 1 {
		t.Fatal("queue indices wrong")
	}
	if r.Index("dsp") != -1 {
		t.Fatal("unknown device should index -1")
	}
	if r.Get(1).Name() != "tpu" {
		t.Fatal("Get wrong")
	}
}

func TestRegistryRejectsDuplicatesAndEmpty(t *testing.T) {
	a := &fakeDevice{name: "x"}
	if _, err := NewRegistry(a, &fakeDevice{name: "x"}); err == nil {
		t.Fatal("duplicate names should fail")
	}
	if _, err := NewRegistry(); err == nil {
		t.Fatal("empty registry should fail")
	}
	if _, err := NewRegistry(nil); err == nil {
		t.Fatal("nil device should fail")
	}
}

func TestSupportingSortsByAccuracy(t *testing.T) {
	cpu := &fakeDevice{name: "cpu", kind: CPU, rank: 0}
	tpu := &fakeDevice{name: "tpu", kind: TPU, rank: 3}
	gpu := &fakeDevice{name: "gpu", kind: GPU, rank: 1}
	r, _ := NewRegistry(tpu, gpu, cpu) // deliberately shuffled
	idx := r.Supporting(vop.OpSobel)
	if len(idx) != 3 {
		t.Fatalf("supporting = %v", idx)
	}
	// Most accurate first: cpu (rank 0) then gpu then tpu.
	if r.Get(idx[0]).Name() != "cpu" || r.Get(idx[1]).Name() != "gpu" || r.Get(idx[2]).Name() != "tpu" {
		t.Fatalf("accuracy order wrong: %v", idx)
	}
	no := &fakeDevice{name: "n", ops: map[vop.Opcode]bool{}}
	r2, _ := NewRegistry(no)
	if got := r2.Supporting(vop.OpSobel); len(got) != 0 {
		t.Fatal("unsupporting device listed")
	}
}

func TestMaxPartitionElems(t *testing.T) {
	shared := &fakeDevice{name: "gpu", mem: 0}
	if MaxPartitionElems(shared, vop.OpSobel) != 0 {
		t.Fatal("shared-memory device should be unconstrained")
	}
	private := &fakeDevice{name: "tpu", mem: 12}
	// Sobel: 1 input + 2 buffers = 3 buffers x 4 bytes -> 1 elem.
	if got := MaxPartitionElems(private, vop.OpSobel); got != 1 {
		t.Fatalf("max elems = %d want 1", got)
	}
}

func TestKindString(t *testing.T) {
	if CPU.String() != "cpu" || GPU.String() != "gpu" || TPU.String() != "tpu" {
		t.Fatal("kind names wrong")
	}
	if Kind(9).String() == "" {
		t.Fatal("unknown kind should still print")
	}
}

func TestTaskQueueFIFOAndSteal(t *testing.T) {
	q := NewTaskQueue[int]()
	q.Push(1)
	q.Push(2)
	q.Push(3)
	if q.Pending() != 3 {
		t.Fatalf("pending = %d", q.Pending())
	}
	if v, ok := q.Pop(); !ok || v != 1 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	if v, ok := q.Steal(); !ok || v != 3 {
		t.Fatalf("steal = %d,%v (must take the tail)", v, ok)
	}
	if v, ok := q.Pop(); !ok || v != 2 {
		t.Fatalf("pop = %d,%v", v, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("empty pop should fail")
	}
	if _, ok := q.Steal(); ok {
		t.Fatal("empty steal should fail")
	}
}

func TestTaskQueuePushFront(t *testing.T) {
	q := NewTaskQueue[int]()
	q.Push(2)
	q.PushFront(1)
	if v, _ := q.Pop(); v != 1 {
		t.Fatalf("front = %d", v)
	}
}

func TestTaskQueueDrainPending(t *testing.T) {
	q := NewTaskQueue[int]()
	q.Push(1)
	q.Push(2)
	q.PushFront(0)
	got := q.DrainPending()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("drained = %v, want [0 1 2] in queue order", got)
	}
	if q.Pending() != 0 {
		t.Fatalf("pending after drain = %d", q.Pending())
	}
	if len(q.DrainPending()) != 0 {
		t.Fatal("draining an empty queue must return nothing")
	}
	// The queue keeps working after a drain.
	q.Push(7)
	if v, ok := q.Pop(); !ok || v != 7 {
		t.Fatalf("pop after drain = %d,%v", v, ok)
	}
}

func TestTaskQueueCompletion(t *testing.T) {
	q := NewTaskQueue[string]()
	q.Complete("a")
	q.Complete("b")
	got := q.DrainCompleted()
	if len(got) != 2 || got[0] != "a" {
		t.Fatalf("drained = %v", got)
	}
	if len(q.DrainCompleted()) != 0 {
		t.Fatal("drain should empty the completion queue")
	}
}

func TestTaskQueueClose(t *testing.T) {
	q := NewTaskQueue[int]()
	if q.Closed() {
		t.Fatal("fresh queue closed")
	}
	q.Close()
	if !q.Closed() {
		t.Fatal("Close did not stick")
	}
}

func TestTaskQueueConcurrentSafety(t *testing.T) {
	q := NewTaskQueue[int]()
	const n = 1000
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			q.Push(i)
		}
	}()
	var popped, stolen int
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, ok := q.Pop(); ok {
				popped++
			}
		}
	}()
	go func() {
		defer wg.Done()
		for i := 0; i < n; i++ {
			if _, ok := q.Steal(); ok {
				stolen++
			}
		}
	}()
	wg.Wait()
	// Whatever remains plus what was taken must equal what was pushed.
	if popped+stolen+q.Pending() != n {
		t.Fatalf("items lost: popped=%d stolen=%d pending=%d", popped, stolen, q.Pending())
	}
}
