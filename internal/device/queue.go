package device

import (
	"sync"
	"time"

	"shmt/internal/telemetry"
)

// TaskQueue is the incoming/outgoing queue pair the SHMT kernel driver
// maintains per hardware resource (§3.3: "a pair of queues for each
// SHMT-compatible hardware resource; one serves as the incoming queue and
// the other as the completion queue").
//
// It is a mutex-guarded deque rather than a channel because work stealing
// needs to remove items from the *tail* of a victim's queue while the owner
// pops from the head, and the scheduler needs to observe queue depths.
//
// Instrument attaches optional telemetry: a depth gauge updated on every
// push/pop and a wall-clock residency histogram (Push → Pop/Steal wait
// time). Uninstrumented queues carry no extra cost.
type TaskQueue[T any] struct {
	mu       sync.Mutex
	incoming []T
	enqueued []int64 // per-item Push wall ns, parallel to incoming; nil unless wait != nil
	complete []T
	closed   bool

	depth *telemetry.Gauge
	wait  *telemetry.Histogram
}

// NewTaskQueue returns an empty queue pair.
func NewTaskQueue[T any]() *TaskQueue[T] { return &TaskQueue[T]{} }

// Instrument attaches a depth gauge and/or wait-time histogram. Call before
// the queue is shared between goroutines.
func (q *TaskQueue[T]) Instrument(depth *telemetry.Gauge, wait *telemetry.Histogram) {
	q.depth = depth
	q.wait = wait
}

func (q *TaskQueue[T]) noteDepthLocked() {
	if q.depth != nil {
		q.depth.Set(int64(len(q.incoming)))
	}
}

// Push appends a task to the incoming queue.
func (q *TaskQueue[T]) Push(t T) {
	q.mu.Lock()
	q.incoming = append(q.incoming, t)
	if q.wait != nil {
		q.enqueued = append(q.enqueued, time.Now().UnixNano())
	}
	q.noteDepthLocked()
	q.mu.Unlock()
}

// PushFront prepends a task (used when re-queueing after a failure so the
// task keeps its priority). The shift reuses the slice's backing array via
// append+copy instead of allocating a fresh slice on every call.
func (q *TaskQueue[T]) PushFront(t T) {
	q.mu.Lock()
	var zero T
	q.incoming = append(q.incoming, zero)
	copy(q.incoming[1:], q.incoming)
	q.incoming[0] = t
	if q.wait != nil {
		q.enqueued = append(q.enqueued, 0)
		copy(q.enqueued[1:], q.enqueued)
		q.enqueued[0] = time.Now().UnixNano()
	}
	q.noteDepthLocked()
	q.mu.Unlock()
}

// observeWaitLocked records the residency of the item enqueued at index i.
// The caller removes the timestamp by mirroring its incoming-slice edit
// (head advance on Pop, tail truncation on Steal), so the bookkeeping stays
// O(1) under the queue lock — no mid-slice deletes.
func (q *TaskQueue[T]) observeWaitLocked(i int) {
	if q.wait == nil || i >= len(q.enqueued) {
		return
	}
	q.wait.Observe(float64(time.Now().UnixNano()-q.enqueued[i]) / 1e9)
}

// Pop removes the head of the incoming queue (owner side).
func (q *TaskQueue[T]) Pop() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if len(q.incoming) == 0 {
		return zero, false
	}
	t := q.incoming[0]
	q.observeWaitLocked(0)
	q.incoming = q.incoming[1:]
	if len(q.enqueued) > 0 {
		q.enqueued = q.enqueued[1:]
	}
	q.noteDepthLocked()
	return t, true
}

// Steal removes the tail of the incoming queue (thief side).
func (q *TaskQueue[T]) Steal() (T, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	var zero T
	if len(q.incoming) == 0 {
		return zero, false
	}
	last := len(q.incoming) - 1
	t := q.incoming[last]
	q.observeWaitLocked(last)
	q.incoming = q.incoming[:last]
	if len(q.enqueued) > last {
		q.enqueued = q.enqueued[:last]
	}
	q.noteDepthLocked()
	return t, true
}

// DrainPending empties and returns the incoming queue in order. The engines
// use it when a device's circuit breaker opens: the quarantined device's
// backlog is redistributed to healthy queues instead of waiting out the
// cooldown.
func (q *TaskQueue[T]) DrainPending() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.incoming
	q.incoming = nil
	q.enqueued = nil
	q.noteDepthLocked()
	return out
}

// Peek returns up to n head items of the incoming queue without removing
// them. The input prefetcher reads ahead of the owner's Pop with it; the
// copy means a racing Pop/Steal invalidates the snapshot, not the caller's
// slice.
func (q *TaskQueue[T]) Peek(n int) []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	if n > len(q.incoming) {
		n = len(q.incoming)
	}
	if n <= 0 {
		return nil
	}
	return append([]T(nil), q.incoming[:n]...)
}

// Pending returns the incoming-queue depth, the signal the paper's stealing
// trigger reads ("the incoming queue of a hardware device has more pending
// items than others").
func (q *TaskQueue[T]) Pending() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.incoming)
}

// Complete appends a finished task to the completion queue.
func (q *TaskQueue[T]) Complete(t T) {
	q.mu.Lock()
	q.complete = append(q.complete, t)
	q.mu.Unlock()
}

// DrainCompleted empties and returns the completion queue (the runtime
// dequeues it "for data aggregation and synchronization purposes").
func (q *TaskQueue[T]) DrainCompleted() []T {
	q.mu.Lock()
	defer q.mu.Unlock()
	out := q.complete
	q.complete = nil
	return out
}

// Close marks the queue closed; Closed lets workers distinguish "empty for
// now" from "no more work will arrive".
func (q *TaskQueue[T]) Close() {
	q.mu.Lock()
	q.closed = true
	q.mu.Unlock()
}

// Closed reports whether Close was called.
func (q *TaskQueue[T]) Closed() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.closed
}
