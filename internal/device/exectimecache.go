package device

import (
	"shmt/internal/telemetry"
	"shmt/internal/vop"
)

// ExecTimeCache memoizes Device.ExecTime lookups. The cost model is a pure
// function of (device, opcode, element count), but the scheduling loops ask
// for the same triple O(devices²) times per step — every steal decision
// scores each victim's tail HLOP against both devices — so the engines keep
// one cache per run (per worker in the concurrent engine; the cache is not
// safe for concurrent use) and hit the model once per distinct shape.
//
// Growth is capped: a long session streaming continually varying shapes
// (ExecuteBatch over ragged inputs) would otherwise grow the map without
// bound. On overflow the cache drops the whole map — an epoch flush keeps
// the common case (few distinct shapes, hit after hit) at zero bookkeeping
// cost, and a full rebuild is just a few thousand cost-model calls.
// Hit/miss/eviction totals feed the shmt_exec_cache_* telemetry counters.
type ExecTimeCache struct {
	m   map[execTimeKey]float64
	max int
}

// DefaultExecTimeEntries is the default memo size cap; beyond it the map is
// flushed. Tune per session via shmt.Config.ExecTimeCacheEntries.
const DefaultExecTimeEntries = 4096

type execTimeKey struct {
	dev   string
	op    vop.Opcode
	elems int
}

// NewExecTimeCache returns an empty cache with the default entry cap.
func NewExecTimeCache() *ExecTimeCache {
	return NewExecTimeCacheSized(DefaultExecTimeEntries)
}

// NewExecTimeCacheSized returns an empty cache flushed once it exceeds max
// entries; max ≤ 0 selects DefaultExecTimeEntries.
func NewExecTimeCacheSized(max int) *ExecTimeCache {
	if max <= 0 {
		max = DefaultExecTimeEntries
	}
	return &ExecTimeCache{m: make(map[execTimeKey]float64), max: max}
}

// ExecTime returns dev.ExecTime(op, elems), memoized.
func (c *ExecTimeCache) ExecTime(dev Device, op vop.Opcode, elems int) float64 {
	k := execTimeKey{dev.Name(), op, elems}
	if t, ok := c.m[k]; ok {
		telemetry.ExecCacheHits.Inc()
		return t
	}
	telemetry.ExecCacheMisses.Inc()
	t := dev.ExecTime(op, elems)
	if len(c.m) >= c.max {
		telemetry.ExecCacheEvictions.Add(int64(len(c.m)))
		c.m = make(map[execTimeKey]float64)
	}
	c.m[k] = t
	return t
}

// Len returns how many entries the cache currently holds.
func (c *ExecTimeCache) Len() int { return len(c.m) }
