package device

import "shmt/internal/vop"

// ExecTimeCache memoizes Device.ExecTime lookups. The cost model is a pure
// function of (device, opcode, element count), but the scheduling loops ask
// for the same triple O(devices²) times per step — every steal decision
// scores each victim's tail HLOP against both devices — so the engines keep
// one cache per run (per worker in the concurrent engine; the cache is not
// safe for concurrent use) and hit the model once per distinct shape.
type ExecTimeCache struct {
	m map[execTimeKey]float64
}

type execTimeKey struct {
	dev   string
	op    vop.Opcode
	elems int
}

// NewExecTimeCache returns an empty cache.
func NewExecTimeCache() *ExecTimeCache {
	return &ExecTimeCache{m: make(map[execTimeKey]float64)}
}

// ExecTime returns dev.ExecTime(op, elems), memoized.
func (c *ExecTimeCache) ExecTime(dev Device, op vop.Opcode, elems int) float64 {
	k := execTimeKey{dev.Name(), op, elems}
	if t, ok := c.m[k]; ok {
		return t
	}
	t := dev.ExecTime(op, elems)
	c.m[k] = t
	return t
}
