package device

import "shmt/internal/vop"

// OpCost calibrates the relative performance landscape of one opcode across
// the three devices. All downstream timing derives from these three numbers
// per opcode.
//
// GPUThroughput is in elements/second on the simulated Maxwell-class GPU.
// TPURatio and CPURatio scale it: device throughput = GPUThroughput × ratio.
//
// The TPU ratios for the ten benchmark kernels are the paper's own
// measurements (Fig. 2: Edge TPU speedup over the GPU baseline per kernel);
// the remaining primitive-op ratios follow the same hardware logic — the
// Edge TPU's systolic array is strong on matrix-shaped work (GEMM, conv) and
// competitive-to-weak on irregular or element-wise work. CPU ratios reflect
// a quad-core A57 against 128 Maxwell cores.
type OpCost struct {
	GPUThroughput float64
	TPURatio      float64
	CPURatio      float64
	// StageFactor scales the host-memory staging traffic of the opcode
	// relative to its raw input+output payload: multi-pass kernels (FFT)
	// re-stream data, while in-place stencils (Hotspot) stage almost
	// nothing. Calibrated against the paper's software-pipelining speedups
	// (Fig. 6), which measure exactly how much staging a kernel can overlap.
	StageFactor float64
}

// DefaultCosts is the calibration table. GPU throughputs are set so the
// 8192×8192 default input lands in the hundreds-of-milliseconds range the
// prototype's kernels run in; what the evaluation depends on is the ratios.
var DefaultCosts = map[vop.Opcode]OpCost{
	// The ten benchmark kernels (TPURatio from Fig. 2; StageFactor from the
	// software-pipelining column of Fig. 6).
	vop.OpParabolicPDE:  {GPUThroughput: 9.0e8, TPURatio: 0.84, CPURatio: 0.030, StageFactor: 0.86},
	vop.OpDCT8x8:        {GPUThroughput: 7.5e8, TPURatio: 1.99, CPURatio: 0.025, StageFactor: 0.56},
	vop.OpFDWT97:        {GPUThroughput: 6.0e8, TPURatio: 0.31, CPURatio: 0.030, StageFactor: 0.75},
	vop.OpFFT:           {GPUThroughput: 5.0e8, TPURatio: 3.22, CPURatio: 0.020, StageFactor: 5.95},
	vop.OpReduceHist256: {GPUThroughput: 1.4e9, TPURatio: 1.55, CPURatio: 0.060, StageFactor: 0.37},
	vop.OpStencil:       {GPUThroughput: 1.1e9, TPURatio: 0.77, CPURatio: 0.035, StageFactor: 0.06},
	vop.OpLaplacian:     {GPUThroughput: 1.2e9, TPURatio: 0.58, CPURatio: 0.035, StageFactor: 0.45},
	vop.OpMeanFilter:    {GPUThroughput: 1.0e9, TPURatio: 0.31, CPURatio: 0.035, StageFactor: 0.93},
	vop.OpSobel:         {GPUThroughput: 1.0e9, TPURatio: 0.71, CPURatio: 0.035, StageFactor: 1.38},
	vop.OpSRAD:          {GPUThroughput: 4.5e8, TPURatio: 2.30, CPURatio: 0.025, StageFactor: 0.85},

	// Matrix primitives: native territory for the TPU's systolic array.
	vop.OpGEMM: {GPUThroughput: 2.0e8, TPURatio: 4.00, CPURatio: 0.015, StageFactor: 0.50},
	vop.OpConv: {GPUThroughput: 6.0e8, TPURatio: 3.00, CPURatio: 0.020, StageFactor: 0.50},

	// Element-wise vector primitives: GPU territory.
	vop.OpAdd:      {GPUThroughput: 3.0e9, TPURatio: 0.90, CPURatio: 0.080, StageFactor: 0.8},
	vop.OpSub:      {GPUThroughput: 3.0e9, TPURatio: 0.90, CPURatio: 0.080, StageFactor: 0.8},
	vop.OpMultiply: {GPUThroughput: 3.0e9, TPURatio: 0.90, CPURatio: 0.080, StageFactor: 0.8},
	vop.OpMax:      {GPUThroughput: 3.0e9, TPURatio: 0.90, CPURatio: 0.080, StageFactor: 0.8},
	vop.OpMin:      {GPUThroughput: 3.0e9, TPURatio: 0.90, CPURatio: 0.080, StageFactor: 0.8},
	vop.OpRelu:     {GPUThroughput: 3.2e9, TPURatio: 1.10, CPURatio: 0.080, StageFactor: 0.8},
	vop.OpTanh:     {GPUThroughput: 1.8e9, TPURatio: 1.20, CPURatio: 0.050, StageFactor: 0.5},
	vop.OpLog:      {GPUThroughput: 1.6e9, TPURatio: 0.80, CPURatio: 0.045, StageFactor: 0.5},
	vop.OpSqrt:     {GPUThroughput: 2.2e9, TPURatio: 0.85, CPURatio: 0.060, StageFactor: 0.6},
	vop.OpRsqrt:    {GPUThroughput: 2.2e9, TPURatio: 0.85, CPURatio: 0.060, StageFactor: 0.6},

	// Reductions: bandwidth-bound on both.
	vop.OpReduceSum:     {GPUThroughput: 2.6e9, TPURatio: 1.30, CPURatio: 0.090, StageFactor: 0.4},
	vop.OpReduceAverage: {GPUThroughput: 2.6e9, TPURatio: 1.30, CPURatio: 0.090, StageFactor: 0.4},
	vop.OpReduceMax:     {GPUThroughput: 2.6e9, TPURatio: 1.30, CPURatio: 0.090, StageFactor: 0.4},
	vop.OpReduceMin:     {GPUThroughput: 2.6e9, TPURatio: 1.30, CPURatio: 0.090, StageFactor: 0.4},
}

// Cost returns the calibration entry for op, falling back to a conservative
// default for opcodes missing from the table.
func Cost(op vop.Opcode) OpCost {
	if c, ok := DefaultCosts[op]; ok {
		return c
	}
	return OpCost{GPUThroughput: 1e9, TPURatio: 1.0, CPURatio: 0.05, StageFactor: 0.5}
}

// hostBandwidth is the LPDDR4 bandwidth the staging model divides by; it
// must match interconnect.HostDRAM.
const hostBandwidth = 25.6e9

// stagedBytesPerElem returns the raw input+output payload per element at
// FP32 width (what the GPU baseline stages through host memory).
func stagedBytesPerElem(op vop.Opcode) float64 {
	in := float64(op.NumInputs()) * 4
	out := 4.0
	if op.IsReduction() {
		out = 0 // reduction outputs are negligible
	}
	return in + out
}

// baselineSecPerElem is the GPU baseline's end-to-end per-element cost:
// execution plus un-overlapped host staging. Fig. 2's Edge-TPU ratios are
// measured against exactly this quantity, so the TPU's effective throughput
// derives from it (see Throughput).
func baselineSecPerElem(op vop.Opcode) float64 {
	c := Cost(op)
	return 1/c.GPUThroughput + c.StageFactor*stagedBytesPerElem(op)/hostBandwidth
}

// Throughput returns elements/second of kind for op.
//
// The GPU and CPU rates come straight from the table. The Edge TPU's rate is
// derived so that (GPU baseline time) / (TPU time) equals the paper's
// measured Fig. 2 ratio at the default problem size — i.e. the ratio is
// honoured end-to-end, as measured, not just kernel-core to kernel-core.
func Throughput(k Kind, op vop.Opcode) float64 {
	c := Cost(op)
	switch k {
	case GPU:
		return c.GPUThroughput
	case TPU:
		return c.TPURatio / baselineSecPerElem(op)
	case CPU:
		return c.GPUThroughput * c.CPURatio
	default:
		return c.GPUThroughput
	}
}

// Dispatch overheads: fixed per-HLOP invocation costs. The Edge TPU's
// covers the TFLite interpreter invocation and descriptor DMA (with the
// runtime's pipelined submission amortizing the raw driver round-trip); the
// GPU's is kernel launch; the CPU's a function call through the queue.
const (
	DispatchCPU = 5e-6
	DispatchGPU = 40e-6
	DispatchTPU = 100e-6
)

// StageBytes returns the host-memory staging payload the opcode incurs for
// an HLOP moving rawBytes of input+output, for devices working out of
// shared host memory. Devices with private memory (the Edge TPU) move raw
// bytes over their link instead and compute out of on-chip SRAM.
func StageBytes(op vop.Opcode, rawBytes int64) int64 {
	return int64(float64(rawBytes) * Cost(op).StageFactor)
}
