package device

import (
	"testing"

	"shmt/internal/vop"
)

func TestCalibrationCoversAllBenchmarkOps(t *testing.T) {
	benchOps := []vop.Opcode{
		vop.OpParabolicPDE, vop.OpDCT8x8, vop.OpFDWT97, vop.OpFFT,
		vop.OpReduceHist256, vop.OpStencil, vop.OpLaplacian,
		vop.OpMeanFilter, vop.OpSobel, vop.OpSRAD,
	}
	for _, op := range benchOps {
		if _, ok := DefaultCosts[op]; !ok {
			t.Errorf("no calibration entry for %s", op)
		}
	}
}

func TestFig2RatiosEncoded(t *testing.T) {
	// The Edge TPU ratios are the paper's Fig. 2 measurements.
	want := map[vop.Opcode]float64{
		vop.OpParabolicPDE:  0.84,
		vop.OpDCT8x8:        1.99,
		vop.OpFDWT97:        0.31,
		vop.OpFFT:           3.22,
		vop.OpReduceHist256: 1.55,
		vop.OpStencil:       0.77,
		vop.OpLaplacian:     0.58,
		vop.OpMeanFilter:    0.31,
		vop.OpSobel:         0.71,
		vop.OpSRAD:          2.30,
	}
	for op, ratio := range want {
		if got := DefaultCosts[op].TPURatio; got != ratio {
			t.Errorf("%s TPU ratio = %g want %g (Fig. 2)", op, got, ratio)
		}
	}
}

func TestThroughputRelationship(t *testing.T) {
	for op, c := range DefaultCosts {
		gpu := Throughput(GPU, op)
		tpu := Throughput(TPU, op)
		cpu := Throughput(CPU, op)
		if gpu <= 0 || tpu <= 0 || cpu <= 0 {
			t.Fatalf("%s has non-positive throughput", op)
		}
		if cpu >= gpu {
			t.Errorf("%s: CPU (%g) should be slower than GPU (%g)", op, cpu, gpu)
		}
		// The TPU:baseline ratio must hold end-to-end: TPU throughput x
		// baseline sec/elem == the Fig. 2 ratio.
		if got := tpu * baselineSecPerElem(op); got < c.TPURatio*0.999 || got > c.TPURatio*1.001 {
			t.Errorf("%s: derived TPU ratio %g want %g", op, got, c.TPURatio)
		}
	}
}

func TestCostFallback(t *testing.T) {
	c := Cost(vop.OpInvalid)
	if c.GPUThroughput <= 0 || c.TPURatio <= 0 {
		t.Fatal("fallback cost not sane")
	}
}

func TestStageBytes(t *testing.T) {
	got := StageBytes(vop.OpStencil, 1000)
	if got != int64(1000*DefaultCosts[vop.OpStencil].StageFactor) {
		t.Fatalf("stage bytes = %d", got)
	}
}

func TestDispatchOrdering(t *testing.T) {
	if !(DispatchCPU < DispatchGPU && DispatchGPU < DispatchTPU) {
		t.Fatal("dispatch overheads should order CPU < GPU < TPU")
	}
}
