package cpu

import (
	"testing"

	"shmt/internal/device"
	"shmt/internal/kernels"
	"shmt/internal/tensor"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

func TestIdentity(t *testing.T) {
	d := New(1)
	if d.Name() != "cpu" || d.Kind() != device.CPU {
		t.Fatal("identity wrong")
	}
	if d.AccuracyRank() != 0 {
		t.Fatal("CPU must be the accuracy reference (rank 0)")
	}
	if d.ElemBytes() != 8 || d.MemoryBytes() != 0 {
		t.Fatal("CPU memory model wrong")
	}
	for _, op := range vop.All() {
		if !d.Supports(op) {
			t.Fatalf("CPU should support %s", op)
		}
	}
}

func TestExecuteIsExact(t *testing.T) {
	d := New(1)
	in := workload.Uniform(16, 16, 0, 1, 4)
	got, err := d.Execute(vop.OpSobel, []*tensor.Matrix{in}, nil)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := kernels.Exec(vop.OpSobel, []*tensor.Matrix{in}, nil, kernels.Exact{})
	if !got.Equal(want) {
		t.Fatal("CPU execution must be bit-identical to the exact kernel")
	}
}

func TestCPUIsSlowest(t *testing.T) {
	d := New(1)
	if d.ExecTime(vop.OpFFT, 1000) <= 1000/device.Throughput(device.GPU, vop.OpFFT) {
		t.Fatal("CPU should be slower than the GPU")
	}
}

func TestSlowdownClamped(t *testing.T) {
	d := New(0) // below 1 clamps to 1
	ref := New(1)
	if d.ExecTime(vop.OpAdd, 10) != ref.ExecTime(vop.OpAdd, 10) {
		t.Fatal("slowdown below 1 should clamp")
	}
}

func TestLinkAndDispatch(t *testing.T) {
	d := New(1)
	if d.DispatchOverhead() <= 0 {
		t.Fatal("dispatch must cost something")
	}
	if d.Link().BandwidthBps != 25.6e9 {
		t.Fatalf("link bandwidth = %g", d.Link().BandwidthBps)
	}
	slow := New(4)
	if slow.Link().BandwidthBps*4 != d.Link().BandwidthBps {
		t.Fatal("slowdown should scale the link")
	}
	if d.Supports(vop.Opcode(999)) {
		t.Fatal("unknown opcode should be unsupported")
	}
}
