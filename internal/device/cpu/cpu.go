// Package cpu implements the host-processor device: a quad-core ARM
// A57-class resource that executes every HLOP exactly in float64. It is the
// accuracy reference and the slowest executor, mirroring the prototype's
// Cortex-A57 (§4.1).
package cpu

import (
	"shmt/internal/device"
	"shmt/internal/interconnect"
	"shmt/internal/kernels"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Device is the simulated CPU.
type Device struct {
	name     string
	slowdown float64
}

// New returns a CPU device named "cpu". slowdown ≥ 1 scales the virtual
// platform down so that reduced-size experiments reproduce the full-size
// timeline (throughput and link bandwidth divide by it); pass 1 for the
// real platform.
func New(slowdown float64) *Device {
	if slowdown < 1 {
		slowdown = 1
	}
	return &Device{name: "cpu", slowdown: slowdown}
}

var _ device.Device = (*Device)(nil)

// Name implements device.Device.
func (d *Device) Name() string { return d.name }

// Kind implements device.Device.
func (d *Device) Kind() device.Kind { return device.CPU }

// AccuracyRank implements device.Device: the CPU is exact (rank 0).
func (d *Device) AccuracyRank() int { return 0 }

// Supports implements device.Device: the CPU supports every VOP.
func (d *Device) Supports(op vop.Opcode) bool {
	for _, o := range vop.All() {
		if o == op {
			return true
		}
	}
	return false
}

// Execute implements device.Device: exact float64 execution.
func (d *Device) Execute(op vop.Opcode, inputs []*tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	return d.ExecuteInto(op, inputs, nil, attrs)
}

// ExecuteInto implements device.Device. The CPU works directly out of shared
// host memory: strided input views are read in place and, when dst is given,
// the result is written through it — no staging copies on either side.
func (d *Device) ExecuteInto(op vop.Opcode, inputs []*tensor.Matrix, dst *tensor.Matrix, attrs map[string]float64) (*tensor.Matrix, error) {
	return kernels.ExecInto(op, inputs, dst, attrs, kernels.Exact{})
}

// ExecTime implements device.Device.
func (d *Device) ExecTime(op vop.Opcode, n int) float64 {
	return float64(n) * d.slowdown / device.Throughput(device.CPU, op)
}

// DispatchOverhead implements device.Device.
func (d *Device) DispatchOverhead() float64 { return device.DispatchCPU }

// Link implements device.Device: the CPU reads host DRAM directly.
func (d *Device) Link() interconnect.Link {
	l := interconnect.HostDRAM
	l.BandwidthBps /= d.slowdown
	return l
}

// ElemBytes implements device.Device: float64.
func (d *Device) ElemBytes() int { return 8 }

// MemoryBytes implements device.Device: shared host memory.
func (d *Device) MemoryBytes() int64 { return 0 }
