package kernels

import (
	"fmt"
	"math"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// dct8Basis[k][x] = c(k) * cos((2x+1)kπ/16): the 1-D 8-point DCT-II basis
// with the orthonormal scaling used by the CUDA SDK's dct8x8 sample.
var dct8Basis = func() [8][8]float64 {
	var b [8][8]float64
	for k := 0; k < 8; k++ {
		c := math.Sqrt(2.0 / 8.0)
		if k == 0 {
			c = math.Sqrt(1.0 / 8.0)
		}
		for x := 0; x < 8; x++ {
			b[k][x] = c * math.Cos(float64(2*x+1)*float64(k)*math.Pi/16)
		}
	}
	return b
}()

// execDCT8x8 computes the blockwise 8x8 2-D DCT-II of the input (rows and
// cols must be multiples of 8), as separable row then column passes — the
// two stage boundaries of the kernel.
func execDCT8x8(inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpDCT8x8, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	if in.Rows%8 != 0 || in.Cols%8 != 0 {
		return nil, fmt.Errorf("kernels: DCT8x8 input %dx%d not a multiple of 8", in.Rows, in.Cols)
	}
	// Row pass: for each 8-wide strip of each row, tmp[k] = Σx basis[k][x]*v[x].
	// Rows are independent, so the sweep parallelizes bit-identically. The
	// input may be a strided tile view; tmp is always dense.
	inS := in.RowStride()
	tmp := tensor.GetMatrixUninit(in.Rows, in.Cols)
	parallel.For(in.Rows, parallel.RowGrain(in.Cols), func(lo, hi int) {
		for row := lo; row < hi; row++ {
			baseIn := row * inS
			baseT := row * in.Cols
			for bc := 0; bc < in.Cols; bc += 8 {
				for k := 0; k < 8; k++ {
					var s float64
					for x := 0; x < 8; x++ {
						s += dct8Basis[k][x] * in.Data[baseIn+bc+x]
					}
					tmp.Data[baseT+bc+k] = s
				}
			}
		}
	})
	r.Round(tmp.Data) // stage 1

	// Column pass within each 8-tall block; blocks are independent. The
	// destination may be a strided view into the VOP output.
	out, err := outFor(dst, in.Rows, in.Cols)
	if err != nil {
		tensor.PutMatrix(tmp)
		return nil, err
	}
	outS := out.RowStride()
	parallel.For(in.Rows/8, parallel.RowGrain(8*in.Cols), func(lo, hi int) {
		for blk := lo; blk < hi; blk++ {
			br := blk * 8
			for col := 0; col < in.Cols; col++ {
				for k := 0; k < 8; k++ {
					var s float64
					for y := 0; y < 8; y++ {
						s += dct8Basis[k][y] * tmp.Data[(br+y)*in.Cols+col]
					}
					out.Data[(br+k)*outS+col] = s
				}
			}
		}
	})
	RoundMatrix(r, out) // stage 2
	tensor.PutMatrix(tmp)
	return out, nil
}

// IDCT8x8 inverts execDCT8x8 exactly (orthonormal basis transpose); used by
// tests to validate the transform.
func IDCT8x8(in *tensor.Matrix) (*tensor.Matrix, error) {
	if in.Rows%8 != 0 || in.Cols%8 != 0 {
		return nil, fmt.Errorf("kernels: IDCT8x8 input %dx%d not a multiple of 8", in.Rows, in.Cols)
	}
	tmp := tensor.NewMatrix(in.Rows, in.Cols)
	// Inverse column pass: v[y] = Σk basis[k][y]*c[k].
	for br := 0; br < in.Rows; br += 8 {
		for col := 0; col < in.Cols; col++ {
			for y := 0; y < 8; y++ {
				var s float64
				for k := 0; k < 8; k++ {
					s += dct8Basis[k][y] * in.Data[(br+k)*in.Cols+col]
				}
				tmp.Data[(br+y)*in.Cols+col] = s
			}
		}
	}
	// Inverse row pass: v[x] = Σk basis[k][x]*c[k].
	out := tensor.NewMatrix(in.Rows, in.Cols)
	for row := 0; row < in.Rows; row++ {
		base := row * in.Cols
		for bc := 0; bc < in.Cols; bc += 8 {
			for x := 0; x < 8; x++ {
				var s float64
				for k := 0; k < 8; k++ {
					s += dct8Basis[k][x] * tmp.Data[base+bc+k]
				}
				out.Data[base+bc+x] = s
			}
		}
	}
	return out, nil
}
