package kernels

import (
	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// CDF 9/7 lifting coefficients (the biorthogonal wavelet of JPEG 2000 and
// Rodinia's DWT benchmark).
const (
	dwtAlpha = -1.586134342059924
	dwtBeta  = -0.052980118572961
	dwtGamma = 0.882911075530934
	dwtDelta = 0.443506852043971
	dwtKappa = 1.230174104914001
)

// execFDWT97 computes the 2-D forward discrete wavelet transform with the
// CDF 9/7 lifting scheme: per level, a horizontal pass over every row, then
// a vertical pass over every column (two stage boundaries per level).
// Output layout is the conventional [LL|HL;LH|HH] quadrant arrangement,
// recursing on the LL quadrant for the "levels" attribute (default 1, as in
// Rodinia's multi-level DWT). Odd-length rows or columns place the extra
// sample in the low-pass half.
func execFDWT97(inputs []*tensor.Matrix, dst *tensor.Matrix, a attrs, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpFDWT97, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	levels := int(a.get("levels", 1))
	if levels < 1 {
		levels = 1
	}
	out, err := outFor(dst, in.Rows, in.Cols)
	if err != nil {
		return nil, err
	}
	// The lifting passes transform a dense buffer in place: use dst directly
	// when it is gap-free, otherwise run in scratch and scatter once at the
	// end.
	work := out
	if !out.IsContiguous() {
		work = tensor.GetMatrixUninit(in.Rows, in.Cols)
	}
	work.CopyFrom(in)

	rows, cols := in.Rows, in.Cols
	for lvl := 0; lvl < levels && rows >= 2 && cols >= 2; lvl++ {
		dwtLevel(work, rows, cols, r)
		rows = (rows + 1) / 2
		cols = (cols + 1) / 2
	}
	if work != out {
		out.CopyFrom(work)
		tensor.PutMatrix(work)
	}
	return out, nil
}

// dwtLevel transforms the top-left rows×cols block of m in place. Rows
// (then columns) are independent 1-D lifts, so each pass fans out over the
// worker pool with per-chunk scratch; every row/column is produced by
// exactly one worker in the sequential order, keeping results bit-identical.
func dwtLevel(m *tensor.Matrix, rows, cols int, r Rounder) {
	// Horizontal pass.
	parallel.For(rows, parallel.RowGrain(cols), func(lo, hi int) {
		scratch := tensor.GetFloats(2 * cols)
		row, buf := scratch[:cols], scratch[cols:]
		for i := lo; i < hi; i++ {
			copy(row, m.Data[i*m.Cols:i*m.Cols+cols])
			lift97Scratch(row, buf)
			copy(m.Data[i*m.Cols:i*m.Cols+cols], row)
		}
		tensor.PutFloats(scratch)
	})
	r.Round(m.Data) // stage 1

	// Vertical pass.
	parallel.For(cols, parallel.RowGrain(rows), func(lo, hi int) {
		scratch := tensor.GetFloats(2 * rows)
		col, buf := scratch[:rows], scratch[rows:]
		for j := lo; j < hi; j++ {
			for i := 0; i < rows; i++ {
				col[i] = m.Data[i*m.Cols+j]
			}
			lift97Scratch(col, buf)
			for i := 0; i < rows; i++ {
				m.Data[i*m.Cols+j] = col[i]
			}
		}
		tensor.PutFloats(scratch)
	})
	r.Round(m.Data) // stage 2
}

// lift97Scratch runs the forward 9/7 lifting steps in place and
// deinterleaves the result into [low | high] halves using buf (len ≥ len(x))
// as scratch. Boundaries use symmetric extension.
func lift97Scratch(x, buf []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	at := func(i int) float64 { // symmetric (mirror) extension
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
		return x[i]
	}
	// Predict 1: odd += alpha * (left + right even)
	for i := 1; i < n; i += 2 {
		x[i] += dwtAlpha * (at(i-1) + at(i+1))
	}
	// Update 1: even += beta * (left + right odd)
	for i := 0; i < n; i += 2 {
		x[i] += dwtBeta * (at(i-1) + at(i+1))
	}
	// Predict 2.
	for i := 1; i < n; i += 2 {
		x[i] += dwtGamma * (at(i-1) + at(i+1))
	}
	// Update 2.
	for i := 0; i < n; i += 2 {
		x[i] += dwtDelta * (at(i-1) + at(i+1))
	}
	// Scale.
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x[i] *= dwtKappa
		} else {
			x[i] /= dwtKappa
		}
	}
	// Deinterleave: evens (low) first, odds (high) second.
	half := (n + 1) / 2
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			buf[i/2] = x[i]
		} else {
			buf[half+i/2] = x[i]
		}
	}
	copy(x, buf[:n])
}

// lift97 is the allocating convenience form of lift97Scratch.
func lift97(x []float64) {
	lift97Scratch(x, make([]float64, len(x)))
}

// unlift97 inverts lift97 exactly; used by tests.
func unlift97(x []float64) {
	n := len(x)
	if n < 2 {
		return
	}
	// Re-interleave.
	buf := make([]float64, n)
	half := (n + 1) / 2
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			buf[i] = x[i/2]
		} else {
			buf[i] = x[half+i/2]
		}
	}
	copy(x, buf)
	at := func(i int) float64 {
		if i < 0 {
			i = -i
		}
		if i >= n {
			i = 2*(n-1) - i
		}
		return x[i]
	}
	for i := 0; i < n; i++ {
		if i%2 == 0 {
			x[i] /= dwtKappa
		} else {
			x[i] *= dwtKappa
		}
	}
	for i := 0; i < n; i += 2 {
		x[i] -= dwtDelta * (at(i-1) + at(i+1))
	}
	for i := 1; i < n; i += 2 {
		x[i] -= dwtGamma * (at(i-1) + at(i+1))
	}
	for i := 0; i < n; i += 2 {
		x[i] -= dwtBeta * (at(i-1) + at(i+1))
	}
	for i := 1; i < n; i += 2 {
		x[i] -= dwtAlpha * (at(i-1) + at(i+1))
	}
}

// IDWT97Row inverts one row transformed by lift97; exported for tests.
func IDWT97Row(x []float64) { unlift97(x) }

// FDWT97Row forward-transforms one row with lift97; exported for tests.
func FDWT97Row(x []float64) { lift97(x) }
