package kernels

import (
	"fmt"
	"math"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execBinary evaluates the element-wise two-operand vector VOPs. Chunks are
// disjoint index ranges, so the parallel sweep writes each element exactly
// once and the result is bit-identical at any worker count.
func execBinary(op vop.Opcode, inputs []*tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(op, inputs, 2); err != nil {
		return nil, err
	}
	a, b := inputs[0], inputs[1]
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("kernels: %s shapes %dx%d and %dx%d differ", op, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := tensor.GetMatrixUninit(a.Rows, a.Cols)
	var fn func(lo, hi int)
	switch op {
	case vop.OpAdd:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = a.Data[i] + b.Data[i]
			}
		}
	case vop.OpSub:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = a.Data[i] - b.Data[i]
			}
		}
	case vop.OpMultiply:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = a.Data[i] * b.Data[i]
			}
		}
	case vop.OpMax:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = math.Max(a.Data[i], b.Data[i])
			}
		}
	case vop.OpMin:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = math.Min(a.Data[i], b.Data[i])
			}
		}
	default:
		tensor.PutMatrix(out)
		return nil, fmt.Errorf("kernels: %s is not a binary op", op)
	}
	parallel.For(len(out.Data), parGrain, fn)
	r.Round(out.Data)
	return out, nil
}

// execUnary evaluates the element-wise one-operand vector VOPs.
func execUnary(op vop.Opcode, inputs []*tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(op, inputs, 1); err != nil {
		return nil, err
	}
	a := inputs[0]
	out := tensor.GetMatrixUninit(a.Rows, a.Cols)
	var fn func(lo, hi int)
	switch op {
	case vop.OpLog:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = math.Log(a.Data[i])
			}
		}
	case vop.OpSqrt:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = math.Sqrt(a.Data[i])
			}
		}
	case vop.OpRsqrt:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = 1 / math.Sqrt(a.Data[i])
			}
		}
	case vop.OpTanh:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = math.Tanh(a.Data[i])
			}
		}
	case vop.OpRelu:
		fn = func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = math.Max(0, a.Data[i])
			}
		}
	default:
		tensor.PutMatrix(out)
		return nil, fmt.Errorf("kernels: %s is not a unary op", op)
	}
	parallel.For(len(out.Data), parGrain, fn)
	r.Round(out.Data)
	return out, nil
}
