package kernels

import (
	"fmt"
	"math"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execBinary evaluates the element-wise two-operand vector VOPs. Spans are
// disjoint index ranges, so the parallel sweep writes each element exactly
// once and the result is bit-identical at any worker count.
func execBinary(op vop.Opcode, inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(op, inputs, 2); err != nil {
		return nil, err
	}
	a, b := inputs[0], inputs[1]
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("kernels: %s shapes %dx%d and %dx%d differ", op, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	var fn func(d, x, y []float64)
	switch op {
	case vop.OpAdd:
		fn = func(d, x, y []float64) {
			for i := range d {
				d[i] = x[i] + y[i]
			}
		}
	case vop.OpSub:
		fn = func(d, x, y []float64) {
			for i := range d {
				d[i] = x[i] - y[i]
			}
		}
	case vop.OpMultiply:
		fn = func(d, x, y []float64) {
			for i := range d {
				d[i] = x[i] * y[i]
			}
		}
	case vop.OpMax:
		fn = func(d, x, y []float64) {
			for i := range d {
				d[i] = math.Max(x[i], y[i])
			}
		}
	case vop.OpMin:
		fn = func(d, x, y []float64) {
			for i := range d {
				d[i] = math.Min(x[i], y[i])
			}
		}
	default:
		return nil, fmt.Errorf("kernels: %s is not a binary op", op)
	}
	out, err := outFor(dst, a.Rows, a.Cols)
	if err != nil {
		return nil, err
	}
	forSpans2(out, a, b, fn)
	RoundMatrix(r, out)
	return out, nil
}

// execUnary evaluates the element-wise one-operand vector VOPs.
func execUnary(op vop.Opcode, inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(op, inputs, 1); err != nil {
		return nil, err
	}
	a := inputs[0]
	var fn func(d, x []float64)
	switch op {
	case vop.OpLog:
		fn = func(d, x []float64) {
			for i := range d {
				d[i] = math.Log(x[i])
			}
		}
	case vop.OpSqrt:
		fn = func(d, x []float64) {
			for i := range d {
				d[i] = math.Sqrt(x[i])
			}
		}
	case vop.OpRsqrt:
		fn = func(d, x []float64) {
			for i := range d {
				d[i] = 1 / math.Sqrt(x[i])
			}
		}
	case vop.OpTanh:
		fn = func(d, x []float64) {
			for i := range d {
				d[i] = math.Tanh(x[i])
			}
		}
	case vop.OpRelu:
		fn = func(d, x []float64) {
			for i := range d {
				d[i] = math.Max(0, x[i])
			}
		}
	default:
		return nil, fmt.Errorf("kernels: %s is not a unary op", op)
	}
	out, err := outFor(dst, a.Rows, a.Cols)
	if err != nil {
		return nil, err
	}
	forSpans1(out, a, fn)
	RoundMatrix(r, out)
	return out, nil
}
