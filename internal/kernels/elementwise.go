package kernels

import (
	"fmt"
	"math"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execBinary evaluates the element-wise two-operand vector VOPs.
func execBinary(op vop.Opcode, inputs []*tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(op, inputs, 2); err != nil {
		return nil, err
	}
	a, b := inputs[0], inputs[1]
	if a.Rows != b.Rows || a.Cols != b.Cols {
		return nil, fmt.Errorf("kernels: %s shapes %dx%d and %dx%d differ", op, a.Rows, a.Cols, b.Rows, b.Cols)
	}
	out := tensor.NewMatrix(a.Rows, a.Cols)
	switch op {
	case vop.OpAdd:
		for i := range out.Data {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
	case vop.OpSub:
		for i := range out.Data {
			out.Data[i] = a.Data[i] - b.Data[i]
		}
	case vop.OpMultiply:
		for i := range out.Data {
			out.Data[i] = a.Data[i] * b.Data[i]
		}
	case vop.OpMax:
		for i := range out.Data {
			out.Data[i] = math.Max(a.Data[i], b.Data[i])
		}
	case vop.OpMin:
		for i := range out.Data {
			out.Data[i] = math.Min(a.Data[i], b.Data[i])
		}
	default:
		return nil, fmt.Errorf("kernels: %s is not a binary op", op)
	}
	r.Round(out.Data)
	return out, nil
}

// execUnary evaluates the element-wise one-operand vector VOPs.
func execUnary(op vop.Opcode, inputs []*tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(op, inputs, 1); err != nil {
		return nil, err
	}
	a := inputs[0]
	out := tensor.NewMatrix(a.Rows, a.Cols)
	switch op {
	case vop.OpLog:
		for i, v := range a.Data {
			out.Data[i] = math.Log(v)
		}
	case vop.OpSqrt:
		for i, v := range a.Data {
			out.Data[i] = math.Sqrt(v)
		}
	case vop.OpRsqrt:
		for i, v := range a.Data {
			out.Data[i] = 1 / math.Sqrt(v)
		}
	case vop.OpTanh:
		for i, v := range a.Data {
			out.Data[i] = math.Tanh(v)
		}
	case vop.OpRelu:
		for i, v := range a.Data {
			out.Data[i] = math.Max(0, v)
		}
	default:
		return nil, fmt.Errorf("kernels: %s is not a unary op", op)
	}
	r.Round(out.Data)
	return out, nil
}
