package kernels

import (
	"math"
	"math/rand"
	"testing"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

func randMatrix(rows, cols int, seed int64, lo, hi float64) *tensor.Matrix {
	rng := rand.New(rand.NewSource(seed))
	m := tensor.NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = lo + (hi-lo)*rng.Float64()
	}
	return m
}

func maxAbsDiff(a, b []float64) float64 {
	var m float64
	for i := range a {
		if d := math.Abs(a[i] - b[i]); d > m {
			m = d
		}
	}
	return m
}

func TestExecUnsupportedOpcode(t *testing.T) {
	if _, err := Exec(vop.OpInvalid, nil, nil, Exact{}); err == nil {
		t.Fatal("invalid opcode should error")
	}
}

func TestExecNilRounderDefaultsToExact(t *testing.T) {
	a := randMatrix(4, 4, 1, 0, 1)
	b := randMatrix(4, 4, 2, 0, 1)
	withNil, err := Exec(vop.OpAdd, []*tensor.Matrix{a, b}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	withExact, _ := Exec(vop.OpAdd, []*tensor.Matrix{a, b}, nil, Exact{})
	if !withNil.Equal(withExact) {
		t.Fatal("nil rounder should behave like Exact")
	}
}

func TestBinaryOps(t *testing.T) {
	a := randMatrix(5, 7, 1, -2, 2)
	b := randMatrix(5, 7, 2, -2, 2)
	cases := []struct {
		op vop.Opcode
		f  func(x, y float64) float64
	}{
		{vop.OpAdd, func(x, y float64) float64 { return x + y }},
		{vop.OpSub, func(x, y float64) float64 { return x - y }},
		{vop.OpMultiply, func(x, y float64) float64 { return x * y }},
		{vop.OpMax, math.Max},
		{vop.OpMin, math.Min},
	}
	for _, c := range cases {
		out, err := Exec(c.op, []*tensor.Matrix{a, b}, nil, Exact{})
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		for i := range out.Data {
			if out.Data[i] != c.f(a.Data[i], b.Data[i]) {
				t.Fatalf("%s element %d wrong", c.op, i)
			}
		}
	}
}

func TestBinaryShapeMismatch(t *testing.T) {
	a := tensor.NewMatrix(2, 2)
	b := tensor.NewMatrix(2, 3)
	if _, err := Exec(vop.OpAdd, []*tensor.Matrix{a, b}, nil, Exact{}); err == nil {
		t.Fatal("shape mismatch should error")
	}
}

func TestUnaryOps(t *testing.T) {
	a := randMatrix(4, 4, 3, 0.1, 3)
	cases := []struct {
		op vop.Opcode
		f  func(x float64) float64
	}{
		{vop.OpLog, math.Log},
		{vop.OpSqrt, math.Sqrt},
		{vop.OpRsqrt, func(x float64) float64 { return 1 / math.Sqrt(x) }},
		{vop.OpTanh, math.Tanh},
		{vop.OpRelu, func(x float64) float64 { return math.Max(0, x) }},
	}
	for _, c := range cases {
		out, err := Exec(c.op, []*tensor.Matrix{a}, nil, Exact{})
		if err != nil {
			t.Fatalf("%s: %v", c.op, err)
		}
		for i := range out.Data {
			if out.Data[i] != c.f(a.Data[i]) {
				t.Fatalf("%s element %d wrong", c.op, i)
			}
		}
	}
}

func TestReluNegative(t *testing.T) {
	a, _ := tensor.FromSlice(1, 3, []float64{-1, 0, 2})
	out, err := Exec(vop.OpRelu, []*tensor.Matrix{a}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 0 || out.Data[1] != 0 || out.Data[2] != 2 {
		t.Fatalf("relu = %v", out.Data)
	}
}

func TestStagesPositive(t *testing.T) {
	for _, op := range vop.All() {
		if Stages(op) < 1 {
			t.Errorf("%s stages = %d", op, Stages(op))
		}
	}
	if Stages(vop.OpParabolicPDE) != 4 {
		t.Fatal("blackscholes should have 4 stages")
	}
}

func TestRounderNames(t *testing.T) {
	for _, r := range []Rounder{Exact{}, F32{}, F16{}, Int8{}} {
		if r.Name() == "" {
			t.Fatal("empty rounder name")
		}
	}
}

func TestF32RounderExactOnSmallInts(t *testing.T) {
	data := []float64{1, 2, 3, -100}
	F32{}.Round(data)
	if data[0] != 1 || data[3] != -100 {
		t.Fatal("small integers should survive fp32")
	}
	data = []float64{1.0000000001}
	F32{}.Round(data)
	if data[0] == 1.0000000001 {
		t.Fatal("fp32 should round sub-epsilon detail away")
	}
}

func TestInt8RounderBoundedError(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	data := make([]float64, 256)
	orig := make([]float64, 256)
	for i := range data {
		data[i] = rng.Float64()*10 - 5
		orig[i] = data[i]
	}
	Int8{}.Round(data)
	// Max error is half a step of the affine grid over [-5,5]: ~10/255/2.
	if d := maxAbsDiff(data, orig); d > 10.0/255 {
		t.Fatalf("int8 error %g too large", d)
	}
}
