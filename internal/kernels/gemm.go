package kernels

import (
	"fmt"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execGEMM computes C = A·B with a cache-blocked triple loop, row-blocks
// fanned out over the host worker pool. Every output row is produced
// entirely by one worker with the same kk/k accumulation order as the
// sequential loop, so the product is bit-identical at any worker count. The
// single stage boundary is the completed product (Edge TPUs execute GEMM
// natively in one systolic pass, so the INT8 path quantizes inputs and the
// final accumulator only — accumulation itself is wide, as in real TPUs).
func execGEMM(inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpGEMM, inputs, 2); err != nil {
		return nil, err
	}
	a, b := inputs[0], inputs[1]
	if a.Cols != b.Rows {
		return nil, fmt.Errorf("kernels: GEMM inner dimensions %d and %d differ", a.Cols, b.Rows)
	}
	var out *tensor.Matrix
	if dst == nil {
		out = tensor.GetMatrix(a.Rows, b.Cols)
	} else {
		var err error
		out, err = outFor(dst, a.Rows, b.Cols)
		if err != nil {
			return nil, err
		}
		// The blocked loop accumulates, so a caller-provided destination —
		// possibly a strided view — must start zeroed too.
		for i := 0; i < out.Rows; i++ {
			row := out.Row(i)
			for j := range row {
				row[j] = 0
			}
		}
	}
	const blk = 64
	rowBlocks := (a.Rows + blk - 1) / blk
	parallel.For(rowBlocks, 1, func(lo, hi int) {
		for rb := lo; rb < hi; rb++ {
			ii := rb * blk
			iMax := min(ii+blk, a.Rows)
			for kk := 0; kk < a.Cols; kk += blk {
				kMax := min(kk+blk, a.Cols)
				for i := ii; i < iMax; i++ {
					arow := a.Row(i)
					crow := out.Row(i)
					for k := kk; k < kMax; k++ {
						av := arow[k]
						if av == 0 {
							continue
						}
						brow := b.Row(k)
						for j := range brow {
							crow[j] += av * brow[j]
						}
					}
				}
			}
		}
	})
	RoundMatrix(r, out)
	return out, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
