package kernels

import (
	"fmt"
	"testing"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Micro-benchmarks for the reference kernels at the three device precisions:
// useful for profiling the host simulation cost and for seeing how much the
// INT8 requantization passes add.
func BenchmarkKernels(b *testing.B) {
	const side = 256
	in := randMatrix(side, side, 1, 0.1, 1)
	in2 := randMatrix(side, side, 2, 0.1, 1)
	kernel3 := tensor.NewMatrix(3, 3)
	kernel3.Set(1, 1, 1)

	cases := []struct {
		op     vop.Opcode
		inputs []*tensor.Matrix
	}{
		{vop.OpAdd, []*tensor.Matrix{in, in2}},
		{vop.OpParabolicPDE, []*tensor.Matrix{in, in2}},
		{vop.OpDCT8x8, []*tensor.Matrix{in}},
		{vop.OpFDWT97, []*tensor.Matrix{in}},
		{vop.OpFFT, []*tensor.Matrix{in}},
		{vop.OpReduceHist256, []*tensor.Matrix{in}},
		{vop.OpStencil, []*tensor.Matrix{in, in2}},
		{vop.OpLaplacian, []*tensor.Matrix{in}},
		{vop.OpMeanFilter, []*tensor.Matrix{in}},
		{vop.OpSobel, []*tensor.Matrix{in}},
		{vop.OpSRAD, []*tensor.Matrix{in}},
		{vop.OpConv, []*tensor.Matrix{in, kernel3}},
	}
	rounders := []Rounder{Exact{}, F32{}, Int8{}}
	for _, c := range cases {
		for _, r := range rounders {
			b.Run(fmt.Sprintf("%s/%s", c.op, r.Name()), func(b *testing.B) {
				b.SetBytes(int64(c.inputs[0].Len() * 8))
				for i := 0; i < b.N; i++ {
					if _, err := Exec(c.op, c.inputs, nil, r); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkGEMM exercises the blocked matrix multiply (output-element
// throughput).
func BenchmarkGEMM(b *testing.B) {
	const n = 128
	x := randMatrix(n, n, 3, -1, 1)
	y := randMatrix(n, n, 4, -1, 1)
	b.SetBytes(int64(n * n * 8))
	for i := 0; i < b.N; i++ {
		if _, err := Exec(vop.OpGEMM, []*tensor.Matrix{x, y}, nil, Exact{}); err != nil {
			b.Fatal(err)
		}
	}
}
