package kernels

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// ---- Black-Scholes ----

func TestBlackScholesKnownValue(t *testing.T) {
	// S=100, K=100, r=0.05, sigma=0.2, t=1 -> call ~ 10.4506 (textbook value).
	s := tensor.NewMatrix(1, 1)
	s.Data[0] = 100
	k := tensor.NewMatrix(1, 1)
	k.Data[0] = 100
	out, err := Exec(vop.OpParabolicPDE, []*tensor.Matrix{s, k},
		map[string]float64{"r": 0.05, "sigma": 0.2, "t": 1}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Data[0]-10.4506) > 0.01 {
		t.Fatalf("call price = %g want ~10.4506", out.Data[0])
	}
}

func TestBlackScholesDeepInAndOutOfMoney(t *testing.T) {
	mk := func(v float64) *tensor.Matrix {
		m := tensor.NewMatrix(1, 1)
		m.Data[0] = v
		return m
	}
	attrs := map[string]float64{"r": 0.0, "sigma": 0.1, "t": 0.5}
	deepITM, _ := Exec(vop.OpParabolicPDE, []*tensor.Matrix{mk(200), mk(100)}, attrs, Exact{})
	if math.Abs(deepITM.Data[0]-100) > 0.5 {
		t.Fatalf("deep ITM call = %g want ~100 (intrinsic)", deepITM.Data[0])
	}
	deepOTM, _ := Exec(vop.OpParabolicPDE, []*tensor.Matrix{mk(50), mk(100)}, attrs, Exact{})
	if deepOTM.Data[0] > 0.01 {
		t.Fatalf("deep OTM call = %g want ~0", deepOTM.Data[0])
	}
}

func TestBlackScholesMonotoneInSpot(t *testing.T) {
	f := func(seed int64) bool {
		m := seed % 100
		if m < 0 {
			m = -m
		}
		s1 := 50 + float64(m)
		s2 := s1 + 10
		mk := func(v float64) *tensor.Matrix {
			m := tensor.NewMatrix(1, 1)
			m.Data[0] = v
			return m
		}
		k := mk(100)
		a, err1 := Exec(vop.OpParabolicPDE, []*tensor.Matrix{mk(s1), k}, nil, Exact{})
		b, err2 := Exec(vop.OpParabolicPDE, []*tensor.Matrix{mk(s2), k}, nil, Exact{})
		return err1 == nil && err2 == nil && b.Data[0] >= a.Data[0]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestCNDProperties(t *testing.T) {
	if math.Abs(cnd(0)-0.5) > 1e-6 {
		t.Fatalf("cnd(0) = %g", cnd(0))
	}
	if cnd(6) < 0.999 || cnd(-6) > 0.001 {
		t.Fatalf("cnd tails wrong: %g / %g", cnd(6), cnd(-6))
	}
	// Symmetry: cnd(-x) = 1 - cnd(x).
	for _, x := range []float64{0.3, 1.1, 2.5} {
		if math.Abs(cnd(-x)-(1-cnd(x))) > 1e-6 {
			t.Fatalf("cnd symmetry broken at %g", x)
		}
	}
}

// ---- Image kernels ----

func TestSobelOfConstantIsZero(t *testing.T) {
	in := tensor.NewMatrix(8, 8)
	for i := range in.Data {
		in.Data[i] = 42
	}
	out, err := Exec(vop.OpSobel, []*tensor.Matrix{in}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if v != 0 {
			t.Fatalf("sobel[%d] = %g want 0", i, v)
		}
	}
}

func TestSobelVerticalEdge(t *testing.T) {
	in := tensor.NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		for j := 4; j < 8; j++ {
			in.Set(i, j, 1)
		}
	}
	out, _ := Exec(vop.OpSobel, []*tensor.Matrix{in}, nil, Exact{})
	// Gradient magnitude peaks along the edge columns 3 and 4.
	if out.At(4, 3) == 0 || out.At(4, 4) == 0 {
		t.Fatal("edge not detected")
	}
	if out.At(4, 0) != 0 {
		t.Fatal("flat region should be zero")
	}
}

func TestLaplacianOfLinearRampIsZero(t *testing.T) {
	in := tensor.NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			in.Set(i, j, float64(2*i+3*j))
		}
	}
	out, err := Exec(vop.OpLaplacian, []*tensor.Matrix{in}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	// The interior of a linear ramp has zero Laplacian (boundaries replicate).
	for i := 1; i < 7; i++ {
		for j := 1; j < 7; j++ {
			if math.Abs(out.At(i, j)) > 1e-12 {
				t.Fatalf("laplacian(%d,%d) = %g", i, j, out.At(i, j))
			}
		}
	}
}

func TestMeanFilterConstantPreserved(t *testing.T) {
	in := tensor.NewMatrix(6, 6)
	for i := range in.Data {
		in.Data[i] = 7
	}
	out, _ := Exec(vop.OpMeanFilter, []*tensor.Matrix{in}, nil, Exact{})
	for i, v := range out.Data {
		if math.Abs(v-7) > 1e-12 {
			t.Fatalf("mf[%d] = %g", i, v)
		}
	}
}

func TestMeanFilterAverages(t *testing.T) {
	in := tensor.NewMatrix(3, 3)
	in.Set(1, 1, 9)
	out, _ := Exec(vop.OpMeanFilter, []*tensor.Matrix{in}, nil, Exact{})
	if math.Abs(out.At(1, 1)-1) > 1e-12 {
		t.Fatalf("center = %g want 1", out.At(1, 1))
	}
}

func TestConvIdentityKernel(t *testing.T) {
	in := randMatrix(6, 6, 5, -1, 1)
	k := tensor.NewMatrix(3, 3)
	k.Set(1, 1, 1)
	out, err := Exec(vop.OpConv, []*tensor.Matrix{in, k}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Equal(in) {
		t.Fatal("identity convolution changed the image")
	}
}

func TestConvBoxKernelMatchesMeanFilter(t *testing.T) {
	in := randMatrix(8, 8, 6, 0, 1)
	k := tensor.NewMatrix(3, 3)
	for i := range k.Data {
		k.Data[i] = 1.0 / 9
	}
	conv, _ := Exec(vop.OpConv, []*tensor.Matrix{in, k}, nil, Exact{})
	mf, _ := Exec(vop.OpMeanFilter, []*tensor.Matrix{in}, nil, Exact{})
	if maxAbsDiff(conv.Data, mf.Data) > 1e-12 {
		t.Fatal("box convolution should equal mean filter")
	}
}

// ---- SRAD ----

func TestSRADConstantImageUnchanged(t *testing.T) {
	in := tensor.NewMatrix(8, 8)
	for i := range in.Data {
		in.Data[i] = 100
	}
	out, err := Exec(vop.OpSRAD, []*tensor.Matrix{in}, map[string]float64{"lambda": 0.5, "q0sqr": 0.05}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(out.Data, in.Data) > 1e-9 {
		t.Fatal("constant image should be a fixed point of SRAD")
	}
}

func TestSRADReducesSpeckleVariance(t *testing.T) {
	in := randMatrix(32, 32, 8, 90, 110) // noisy but positive intensities
	out, err := Exec(vop.OpSRAD, []*tensor.Matrix{in}, map[string]float64{"lambda": 0.5, "q0sqr": 0.05}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	vin := tensor.Summarize(in.Data).Std
	vout := tensor.Summarize(out.Data).Std
	if vout >= vin {
		t.Fatalf("SRAD did not smooth: std %g -> %g", vin, vout)
	}
}

// ---- Hotspot ----

func TestHotspotEquilibrium(t *testing.T) {
	temp := tensor.NewMatrix(8, 8)
	for i := range temp.Data {
		temp.Data[i] = 80 // equals ambient default
	}
	power := tensor.NewMatrix(8, 8)
	out, err := Exec(vop.OpStencil, []*tensor.Matrix{temp, power}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	if maxAbsDiff(out.Data, temp.Data) > 1e-12 {
		t.Fatal("ambient-temperature grid with no power should be steady")
	}
}

func TestHotspotHeatsUnderPower(t *testing.T) {
	temp := tensor.NewMatrix(8, 8)
	for i := range temp.Data {
		temp.Data[i] = 80
	}
	power := tensor.NewMatrix(8, 8)
	power.Set(4, 4, 10)
	out, _ := Exec(vop.OpStencil, []*tensor.Matrix{temp, power}, nil, Exact{})
	if out.At(4, 4) <= 80 {
		t.Fatalf("powered cell should heat: %g", out.At(4, 4))
	}
	if out.At(0, 0) != 80 {
		t.Fatal("unpowered far cell should stay at ambient")
	}
}

func TestHotspotCoolsTowardAmbient(t *testing.T) {
	temp := tensor.NewMatrix(4, 4)
	for i := range temp.Data {
		temp.Data[i] = 100 // hotter than ambient 80
	}
	power := tensor.NewMatrix(4, 4)
	out, _ := Exec(vop.OpStencil, []*tensor.Matrix{temp, power}, nil, Exact{})
	for i, v := range out.Data {
		if v >= 100 || v < 80 {
			t.Fatalf("cell %d = %g, want cooling toward 80", i, v)
		}
	}
}

// ---- GEMM ----

func TestGEMMAgainstNaive(t *testing.T) {
	a := randMatrix(17, 23, 1, -1, 1) // odd sizes cross block boundaries
	b := randMatrix(23, 9, 2, -1, 1)
	out, err := Exec(vop.OpGEMM, []*tensor.Matrix{a, b}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	want := tensor.NewMatrix(17, 9)
	for i := 0; i < 17; i++ {
		for j := 0; j < 9; j++ {
			var s float64
			for k := 0; k < 23; k++ {
				s += a.At(i, k) * b.At(k, j)
			}
			want.Set(i, j, s)
		}
	}
	if maxAbsDiff(out.Data, want.Data) > 1e-9 {
		t.Fatal("GEMM disagrees with naive")
	}
}

func TestGEMMIdentity(t *testing.T) {
	a := randMatrix(8, 8, 3, -2, 2)
	id := tensor.NewMatrix(8, 8)
	for i := 0; i < 8; i++ {
		id.Set(i, i, 1)
	}
	out, _ := Exec(vop.OpGEMM, []*tensor.Matrix{a, id}, nil, Exact{})
	if !out.Equal(a) {
		t.Fatal("A·I != A")
	}
}

func TestGEMMDimensionError(t *testing.T) {
	if _, err := Exec(vop.OpGEMM, []*tensor.Matrix{tensor.NewMatrix(2, 3), tensor.NewMatrix(2, 2)}, nil, Exact{}); err == nil {
		t.Fatal("inner-dimension mismatch should error")
	}
}

// ---- Reductions ----

func TestReduceSum(t *testing.T) {
	in, _ := tensor.FromSlice(1, 4, []float64{1, 2, 3, 4})
	out, err := Exec(vop.OpReduceSum, []*tensor.Matrix{in}, nil, Exact{})
	if err != nil || out.Data[0] != 10 {
		t.Fatalf("sum = %v err %v", out.Data, err)
	}
}

func TestReduceMaxMin(t *testing.T) {
	in, _ := tensor.FromSlice(1, 4, []float64{3, -7, 2, 5})
	mx, _ := Exec(vop.OpReduceMax, []*tensor.Matrix{in}, nil, Exact{})
	mn, _ := Exec(vop.OpReduceMin, []*tensor.Matrix{in}, nil, Exact{})
	if mx.Data[0] != 5 || mn.Data[0] != -7 {
		t.Fatalf("max/min = %g/%g", mx.Data[0], mn.Data[0])
	}
}

func TestReduceAveragePartialAndMerge(t *testing.T) {
	a, _ := tensor.FromSlice(1, 2, []float64{2, 4})
	b, _ := tensor.FromSlice(1, 3, []float64{6, 6, 6})
	pa, _ := Exec(vop.OpReduceAverage, []*tensor.Matrix{a}, nil, Exact{})
	pb, _ := Exec(vop.OpReduceAverage, []*tensor.Matrix{b}, nil, Exact{})
	if pa.Cols != 2 || pa.Data[1] != 2 {
		t.Fatalf("partial = %v", pa.Data)
	}
	out, err := MergePartials(vop.OpReduceAverage, []*tensor.Matrix{pa, pb}, 5)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out.Data[0]-24.0/5) > 1e-12 {
		t.Fatalf("average = %g want %g", out.Data[0], 24.0/5)
	}
}

func TestReduceHistogram(t *testing.T) {
	in, _ := tensor.FromSlice(1, 4, []float64{0.0, 0.5, 0.999, -3})
	out, err := Exec(vop.OpReduceHist256, []*tensor.Matrix{in},
		map[string]float64{"hist_lo": 0, "hist_hi": 1}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	if out.Data[0] != 2 { // 0.0 and the clamped -3
		t.Fatalf("bin0 = %g", out.Data[0])
	}
	if out.Data[128] != 1 || out.Data[255] != 1 {
		t.Fatalf("bins: %g %g", out.Data[128], out.Data[255])
	}
	var total float64
	for _, v := range out.Data {
		total += v
	}
	if total != 4 {
		t.Fatalf("histogram total = %g", total)
	}
}

func TestReduceHistogramBadRange(t *testing.T) {
	in := tensor.NewMatrix(1, 4)
	if _, err := Exec(vop.OpReduceHist256, []*tensor.Matrix{in},
		map[string]float64{"hist_lo": 1, "hist_hi": 1}, Exact{}); err == nil {
		t.Fatal("empty range should error")
	}
}

func TestMergePartialsSumAndHist(t *testing.T) {
	p1 := tensor.NewMatrix(1, 1)
	p1.Data[0] = 3
	p2 := tensor.NewMatrix(1, 1)
	p2.Data[0] = 4
	out, err := MergePartials(vop.OpReduceSum, []*tensor.Matrix{p1, p2}, 0)
	if err != nil || out.Data[0] != 7 {
		t.Fatalf("merged sum = %v err %v", out.Data, err)
	}
	h1 := tensor.NewMatrix(1, 256)
	h1.Data[3] = 2
	h2 := tensor.NewMatrix(1, 256)
	h2.Data[3] = 5
	hm, err := MergePartials(vop.OpReduceHist256, []*tensor.Matrix{h1, h2}, 0)
	if err != nil || hm.Data[3] != 7 {
		t.Fatalf("merged hist = %v err %v", hm.Data[3], err)
	}
	if _, err := MergePartials(vop.OpReduceHist256, []*tensor.Matrix{tensor.NewMatrix(1, 3)}, 0); err == nil {
		t.Fatal("bad histogram partial should error")
	}
	if _, err := MergePartials(vop.OpReduceSum, nil, 0); err == nil {
		t.Fatal("empty partials should error")
	}
	if _, err := MergePartials(vop.OpAdd, []*tensor.Matrix{p1}, 0); err == nil {
		t.Fatal("non-reduction merge should error")
	}
}

// Property: partitioned reduce_sum equals whole-array reduce_sum.
func TestPropertyPartitionedSum(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.NewSource(seed)
		rng := randFrom(r)
		n := 2 + rng.Intn(64)
		data := make([]float64, n)
		for i := range data {
			data[i] = rng.NormFloat64()
		}
		whole, _ := tensor.FromSlice(1, n, data)
		wout, err := Exec(vop.OpReduceSum, []*tensor.Matrix{whole}, nil, Exact{})
		if err != nil {
			return false
		}
		cut := 1 + rng.Intn(n-1)
		a, _ := tensor.FromSlice(1, cut, data[:cut])
		b, _ := tensor.FromSlice(1, n-cut, data[cut:])
		pa, _ := Exec(vop.OpReduceSum, []*tensor.Matrix{a}, nil, Exact{})
		pb, _ := Exec(vop.OpReduceSum, []*tensor.Matrix{b}, nil, Exact{})
		merged, err := MergePartials(vop.OpReduceSum, []*tensor.Matrix{pa, pb}, n)
		if err != nil {
			return false
		}
		return math.Abs(merged.Data[0]-wout.Data[0]) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestKahanSumStability(t *testing.T) {
	// 1 + 1e-16 added many times: naive summation loses the small term.
	vals := make([]float64, 1_000_001)
	vals[0] = 1
	for i := 1; i < len(vals); i++ {
		vals[i] = 1e-16
	}
	got := kahanSum(vals)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Fatalf("kahan = %.18g want %.18g", got, want)
	}
}

func randFrom(src rand.Source) *rand.Rand { return rand.New(src) }

func TestHotspotMultiStepMatchesRepeatedSingleSteps(t *testing.T) {
	temp := randMatrix(12, 12, 20, 75, 85)
	power := randMatrix(12, 12, 21, 0, 1)
	multi, err := Exec(vop.OpStencil, []*tensor.Matrix{temp, power},
		map[string]float64{"steps": 3}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	cur := temp
	for i := 0; i < 3; i++ {
		next, err := Exec(vop.OpStencil, []*tensor.Matrix{cur, power}, nil, Exact{})
		if err != nil {
			t.Fatal(err)
		}
		cur = next
	}
	if maxAbsDiff(multi.Data, cur.Data) > 1e-12 {
		t.Fatal("steps=3 should equal three single steps")
	}
}

func TestDWTMultiLevelRecursesOnLL(t *testing.T) {
	in := randMatrix(16, 16, 22, 0, 1)
	one, err := Exec(vop.OpFDWT97, []*tensor.Matrix{in}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	two, err := Exec(vop.OpFDWT97, []*tensor.Matrix{in},
		map[string]float64{"levels": 2}, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	// The non-LL quadrants of level 1 are untouched by level 2.
	same := func(i, j int) bool { return one.At(i, j) == two.At(i, j) }
	if !same(12, 12) || !same(4, 12) || !same(12, 4) {
		t.Fatal("level 2 must not modify level-1 detail quadrants")
	}
	// The LL quadrant must differ (it was transformed again).
	var diff bool
	for i := 0; i < 8 && !diff; i++ {
		for j := 0; j < 8; j++ {
			if one.At(i, j) != two.At(i, j) {
				diff = true
				break
			}
		}
	}
	if !diff {
		t.Fatal("level 2 should transform the LL quadrant")
	}
}
