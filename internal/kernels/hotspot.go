package kernels

import (
	"fmt"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execHotspot performs one step of Rodinia's Hotspot transient thermal
// simulation: inputs are the temperature grid and the per-cell power grid;
// the update is an explicit 5-point stencil
//
//	T' = T + dt/cap * (P + (T_n + T_s - 2T)/Ry + (T_w + T_e - 2T)/Rx + (Tamb - T)/Rz)
//
// Attributes (all optional, defaults follow Rodinia's 0.5 mm chip
// parameters scaled per cell): "dt_cap" (dt/capacitance, default 0.1),
// "rx", "ry", "rz" (thermal resistances, defaults 1, 1, 4) and "tamb"
// (ambient temperature, default 80.0).
//
// The "steps" attribute (default 1) iterates the update, as Rodinia's
// transient simulation does; the runtime widens the partition halo to match
// (see vop.Opcode.HaloFor), so multi-step partitions remain independent.
//
// Stage boundaries: per step, the neighbour-delta accumulation and the
// update (2 stages). Within a step both sweeps read only the previous
// stage's grids, so the row-parallel fan-out is bit-identical to the
// sequential loops.
func execHotspot(inputs []*tensor.Matrix, dst *tensor.Matrix, a attrs, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpStencil, inputs, 2); err != nil {
		return nil, err
	}
	temp, power := inputs[0], inputs[1]
	if dst != nil && (dst.Rows != temp.Rows || dst.Cols != temp.Cols) {
		return nil, fmt.Errorf("kernels: destination %dx%d does not match output %dx%d", dst.Rows, dst.Cols, temp.Rows, temp.Cols)
	}
	dtCap := a.get("dt_cap", 0.1)
	rx := a.get("rx", 1)
	ry := a.get("ry", 1)
	rz := a.get("rz", 4)
	tamb := a.get("tamb", 80)
	steps := int(a.get("steps", 1))
	if steps < 1 {
		steps = 1
	}

	rows, cols := temp.Rows, temp.Cols
	cur := temp
	delta := tensor.GetMatrixUninit(rows, cols)
	for s := 0; s < steps; s++ {
		src := cur // capture for the closure; cur is reassigned below
		parallel.For(rows, parallel.RowGrain(cols), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < cols; j++ {
					t := src.At(i, j)
					d := power.At(i, j) +
						(atClamp(src, i-1, j)+atClamp(src, i+1, j)-2*t)/ry +
						(atClamp(src, i, j-1)+atClamp(src, i, j+1)-2*t)/rx +
						(tamb-t)/rz
					delta.Set(i, j, d)
				}
			}
		})
		r.Round(delta.Data) // stage 1

		next := tensor.GetMatrixUninit(rows, cols)
		// src may be a strided view on the first step; forSpans2 falls back
		// to whole-row runs in that case.
		forSpans2(next, src, delta, func(d, x, y []float64) {
			for i := range d {
				d[i] = x[i] + dtCap*y[i]
			}
		})
		r.Round(next.Data) // stage 2
		if cur != temp {
			tensor.PutMatrix(cur)
		}
		cur = next
	}
	tensor.PutMatrix(delta)
	if dst == nil {
		return cur, nil
	}
	dst.CopyFrom(cur)
	tensor.PutMatrix(cur)
	return dst, nil
}
