package kernels

import (
	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execHotspot performs one step of Rodinia's Hotspot transient thermal
// simulation: inputs are the temperature grid and the per-cell power grid;
// the update is an explicit 5-point stencil
//
//	T' = T + dt/cap * (P + (T_n + T_s - 2T)/Ry + (T_w + T_e - 2T)/Rx + (Tamb - T)/Rz)
//
// Attributes (all optional, defaults follow Rodinia's 0.5 mm chip
// parameters scaled per cell): "dt_cap" (dt/capacitance, default 0.1),
// "rx", "ry", "rz" (thermal resistances, defaults 1, 1, 4) and "tamb"
// (ambient temperature, default 80.0).
//
// The "steps" attribute (default 1) iterates the update, as Rodinia's
// transient simulation does; the runtime widens the partition halo to match
// (see vop.Opcode.HaloFor), so multi-step partitions remain independent.
//
// Stage boundaries: per step, the neighbour-delta accumulation and the
// update (2 stages). Within a step both sweeps read only the previous
// stage's grids, so the row-parallel fan-out is bit-identical to the
// sequential loops.
func execHotspot(inputs []*tensor.Matrix, a attrs, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpStencil, inputs, 2); err != nil {
		return nil, err
	}
	temp, power := inputs[0], inputs[1]
	dtCap := a.get("dt_cap", 0.1)
	rx := a.get("rx", 1)
	ry := a.get("ry", 1)
	rz := a.get("rz", 4)
	tamb := a.get("tamb", 80)
	steps := int(a.get("steps", 1))
	if steps < 1 {
		steps = 1
	}

	rows, cols := temp.Rows, temp.Cols
	cur := temp
	delta := tensor.GetMatrixUninit(rows, cols)
	for s := 0; s < steps; s++ {
		src := cur // capture for the closure; cur is reassigned below
		parallel.For(rows, parallel.RowGrain(cols), func(lo, hi int) {
			for i := lo; i < hi; i++ {
				for j := 0; j < cols; j++ {
					t := src.At(i, j)
					d := power.At(i, j) +
						(atClamp(src, i-1, j)+atClamp(src, i+1, j)-2*t)/ry +
						(atClamp(src, i, j-1)+atClamp(src, i, j+1)-2*t)/rx +
						(tamb-t)/rz
					delta.Set(i, j, d)
				}
			}
		})
		r.Round(delta.Data) // stage 1

		next := tensor.GetMatrixUninit(rows, cols)
		parallel.For(len(next.Data), parGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				next.Data[i] = src.Data[i] + dtCap*delta.Data[i]
			}
		})
		r.Round(next.Data) // stage 2
		if cur != temp {
			tensor.PutMatrix(cur)
		}
		cur = next
	}
	tensor.PutMatrix(delta)
	return cur, nil
}
