package kernels

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// ---- DCT ----

func TestDCTConstantBlockIsDCOnly(t *testing.T) {
	in := tensor.NewMatrix(8, 8)
	for i := range in.Data {
		in.Data[i] = 3
	}
	out, err := Exec(vop.OpDCT8x8, []*tensor.Matrix{in}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	// Orthonormal DCT of a constant c over an 8x8 block: DC = 8c.
	if math.Abs(out.At(0, 0)-24) > 1e-9 {
		t.Fatalf("DC = %g want 24", out.At(0, 0))
	}
	for i := 0; i < 8; i++ {
		for j := 0; j < 8; j++ {
			if i == 0 && j == 0 {
				continue
			}
			if math.Abs(out.At(i, j)) > 1e-9 {
				t.Fatalf("AC(%d,%d) = %g want 0", i, j, out.At(i, j))
			}
		}
	}
}

func TestDCTInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		in := randMatrix(16, 16, seed, -10, 10)
		out, err := Exec(vop.OpDCT8x8, []*tensor.Matrix{in}, nil, Exact{})
		if err != nil {
			return false
		}
		back, err := IDCT8x8(out)
		if err != nil {
			return false
		}
		return maxAbsDiff(back.Data, in.Data) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestDCTParseval(t *testing.T) {
	in := randMatrix(8, 8, 7, -1, 1)
	out, _ := Exec(vop.OpDCT8x8, []*tensor.Matrix{in}, nil, Exact{})
	var eIn, eOut float64
	for i := range in.Data {
		eIn += in.Data[i] * in.Data[i]
		eOut += out.Data[i] * out.Data[i]
	}
	if math.Abs(eIn-eOut) > 1e-9*eIn {
		t.Fatalf("energy not preserved: %g vs %g", eIn, eOut)
	}
}

func TestDCTAlignmentError(t *testing.T) {
	if _, err := Exec(vop.OpDCT8x8, []*tensor.Matrix{tensor.NewMatrix(12, 8)}, nil, Exact{}); err == nil {
		t.Fatal("unaligned input should error")
	}
	if _, err := IDCT8x8(tensor.NewMatrix(12, 8)); err == nil {
		t.Fatal("unaligned IDCT should error")
	}
}

// ---- DWT ----

func TestDWTRowInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 2 * (2 + r.Intn(30)) // even lengths
		row := make([]float64, n)
		orig := make([]float64, n)
		for i := range row {
			row[i] = r.NormFloat64()
			orig[i] = row[i]
		}
		FDWT97Row(row)
		IDWT97Row(row)
		return maxAbsDiff(row, orig) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestDWTConstantSignalHighPassIsZero(t *testing.T) {
	row := make([]float64, 16)
	for i := range row {
		row[i] = 5
	}
	FDWT97Row(row)
	// High-pass half (second half) of a constant signal must vanish.
	for i := 8; i < 16; i++ {
		if math.Abs(row[i]) > 1e-9 {
			t.Fatalf("high-pass[%d] = %g want 0", i, row[i])
		}
	}
}

func Test2DDWTShapeAndDeterminism(t *testing.T) {
	in := randMatrix(32, 32, 11, 0, 1)
	a, err := Exec(vop.OpFDWT97, []*tensor.Matrix{in}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	b, _ := Exec(vop.OpFDWT97, []*tensor.Matrix{in}, nil, Exact{})
	if !a.Equal(b) {
		t.Fatal("DWT not deterministic")
	}
	if a.Rows != 32 || a.Cols != 32 {
		t.Fatal("DWT changed shape")
	}
}

// ---- FFT ----

func TestFFTImpulseIsFlat(t *testing.T) {
	in := tensor.NewMatrix(1, 16)
	in.Data[0] = 1 // unit impulse
	out, err := Exec(vop.OpFFT, []*tensor.Matrix{in}, nil, Exact{})
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out.Data {
		if math.Abs(v-1) > 1e-9 {
			t.Fatalf("bin %d magnitude %g want 1", i, v)
		}
	}
}

func TestFFTSinePeaksAtBin(t *testing.T) {
	const n, k = 64, 5
	in := tensor.NewMatrix(1, n)
	for i := 0; i < n; i++ {
		in.Data[i] = math.Sin(2 * math.Pi * k * float64(i) / n)
	}
	out, _ := Exec(vop.OpFFT, []*tensor.Matrix{in}, nil, Exact{})
	// A pure sine puts n/2 magnitude at bins k and n-k.
	if math.Abs(out.Data[k]-n/2) > 1e-9 || math.Abs(out.Data[n-k]-n/2) > 1e-9 {
		t.Fatalf("peaks: %g/%g want %d", out.Data[k], out.Data[n-k], n/2)
	}
	for i := range out.Data {
		if i == k || i == n-k {
			continue
		}
		if out.Data[i] > 1e-9 {
			t.Fatalf("leakage at bin %d: %g", i, out.Data[i])
		}
	}
}

func TestFFTInverseProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		n := 1 << (2 + r.Intn(7))
		x := make([]complex128, n)
		orig := make([]complex128, n)
		for i := range x {
			x[i] = complex(r.NormFloat64(), r.NormFloat64())
			orig[i] = x[i]
		}
		FFTInPlace(x)
		IFFTInPlace(x)
		for i := range x {
			if cmplx.Abs(x[i]-orig[i]) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestFFTParseval(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	n := 128
	x := make([]complex128, n)
	var eTime float64
	for i := range x {
		x[i] = complex(r.NormFloat64(), 0)
		eTime += real(x[i]) * real(x[i])
	}
	FFTInPlace(x)
	var eFreq float64
	for i := range x {
		eFreq += cmplx.Abs(x[i]) * cmplx.Abs(x[i])
	}
	if math.Abs(eFreq/float64(n)-eTime) > 1e-9*eTime {
		t.Fatalf("Parseval violated: %g vs %g", eFreq/float64(n), eTime)
	}
}

func TestFFTNonPow2Error(t *testing.T) {
	if _, err := Exec(vop.OpFFT, []*tensor.Matrix{tensor.NewMatrix(2, 12)}, nil, Exact{}); err == nil {
		t.Fatal("non-pow2 FFT should error")
	}
}
