package kernels

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// identityInputs builds a valid input tuple for op, sized so the parallel
// paths genuinely split: > parGrain elements per matrix, > reduceChunk
// elements for the reductions, power-of-two cols for FFT, multiples of 8
// for DCT8x8. Values are positive so Log/Sqrt/Rsqrt and Black-Scholes stay
// in domain.
func identityInputs(t *testing.T, op vop.Opcode, rng *rand.Rand) []*tensor.Matrix {
	t.Helper()
	fill := func(rows, cols int) *tensor.Matrix {
		m := tensor.NewMatrix(rows, cols)
		for i := range m.Data {
			m.Data[i] = 0.1 + 2*rng.Float64()
		}
		return m
	}
	switch op {
	case vop.OpGEMM:
		return []*tensor.Matrix{fill(96, 80), fill(80, 64)}
	case vop.OpConv:
		return []*tensor.Matrix{fill(96, 96), fill(5, 5)}
	case vop.OpReduceSum, vop.OpReduceAverage, vop.OpReduceMax, vop.OpReduceMin, vop.OpReduceHist256:
		// 96*1024 = 98304 > reduceChunk, so the chunked tree has >1 leaf.
		return []*tensor.Matrix{fill(96, 1024)}
	default:
		in := []*tensor.Matrix{fill(96, 128)}
		for i := 1; i < op.NumInputs(); i++ {
			in = append(in, fill(96, 128))
		}
		return in
	}
}

// TestParallelBitIdentity is the determinism contract of internal/parallel:
// for every opcode and every rounder, the kernel output is bit-identical
// whether the host pool runs 1, 2, or NumCPU workers. Chunk boundaries
// derive only from (n, grain), never from the worker count, so this must
// hold exactly — math.Float64bits equality, not a tolerance.
func TestParallelBitIdentity(t *testing.T) {
	rounders := []Rounder{Exact{}, F32{}, F16{}, Int8{}}
	counts := []int{1, 2, runtime.NumCPU()}
	attrs := map[string]float64{
		"hist_lo": 0, "hist_hi": 2.5, // covers the fill range
		"steps": 3, // multi-step Hotspot exercises the grid swap
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	for _, op := range vop.All() {
		for _, r := range rounders {
			rng := rand.New(rand.NewSource(7))
			inputs := identityInputs(t, op, rng)
			var ref *tensor.Matrix
			for _, w := range counts {
				parallel.SetWorkers(w)
				got, err := Exec(op, inputs, attrs, r)
				if err != nil {
					t.Fatalf("%s/%s workers=%d: %v", op, r.Name(), w, err)
				}
				if ref == nil {
					ref = got
					continue
				}
				if got.Rows != ref.Rows || got.Cols != ref.Cols {
					t.Fatalf("%s/%s workers=%d: shape %dx%d, want %dx%d",
						op, r.Name(), w, got.Rows, got.Cols, ref.Rows, ref.Cols)
				}
				for i := range got.Data {
					if math.Float64bits(got.Data[i]) != math.Float64bits(ref.Data[i]) {
						t.Fatalf("%s/%s workers=%d: elem %d = %x, want %x (sequential)",
							op, r.Name(), w, i,
							math.Float64bits(got.Data[i]), math.Float64bits(ref.Data[i]))
					}
				}
			}
		}
	}
}

// TestRounderBitIdentity checks the rounders themselves (also parallelized)
// under the same contract, independent of any kernel.
func TestRounderBitIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	data := make([]float64, 100_000)
	for i := range data {
		data[i] = rng.NormFloat64() * 10
	}
	prev := parallel.SetWorkers(1)
	defer parallel.SetWorkers(prev)

	for _, r := range []Rounder{F32{}, F16{}, Int8{}} {
		ref := append([]float64(nil), data...)
		parallel.SetWorkers(1)
		r.Round(ref)
		for _, w := range []int{2, runtime.NumCPU()} {
			got := append([]float64(nil), data...)
			parallel.SetWorkers(w)
			r.Round(got)
			for i := range got {
				if math.Float64bits(got[i]) != math.Float64bits(ref[i]) {
					t.Fatalf("%s workers=%d: elem %d = %x, want %x",
						r.Name(), w, i, math.Float64bits(got[i]), math.Float64bits(ref[i]))
				}
			}
		}
	}
}
