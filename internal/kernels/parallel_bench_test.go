package kernels

import (
	"fmt"
	"runtime"
	"testing"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// BenchmarkKernelsParallel measures the host-parallel hot kernels at
// 1024×1024 with the worker pool forced to 1 and to NumCPU — the headline
// numbers for the host-execution speedup (ISSUE 1). Outputs are
// bit-identical at both settings (TestParallelBitIdentity), so the ratio is
// pure host throughput. -benchmem also exposes the arena's effect: at
// steady state the kernels allocate only their escaping output matrix.
func BenchmarkKernelsParallel(b *testing.B) {
	const side = 1024
	in := randMatrix(side, side, 1, 0.1, 1)
	in2 := randMatrix(side, side, 2, 0.1, 1)
	gemmA := randMatrix(side, side, 3, -1, 1)
	gemmB := randMatrix(side, side, 4, -1, 1)

	cases := []struct {
		name   string
		op     vop.Opcode
		inputs []*tensor.Matrix
	}{
		{"GEMM", vop.OpGEMM, []*tensor.Matrix{gemmA, gemmB}},
		{"FFT", vop.OpFFT, []*tensor.Matrix{in}},
		{"SRAD", vop.OpSRAD, []*tensor.Matrix{in}},
		{"Sobel", vop.OpSobel, []*tensor.Matrix{in}},
		{"Stencil", vop.OpStencil, []*tensor.Matrix{in, in2}},
		{"DCT8x8", vop.OpDCT8x8, []*tensor.Matrix{in}},
		{"FDWT97", vop.OpFDWT97, []*tensor.Matrix{in}},
		{"ReduceSum", vop.OpReduceSum, []*tensor.Matrix{in}},
		{"Add", vop.OpAdd, []*tensor.Matrix{in, in2}},
		{"BlackScholes", vop.OpParabolicPDE, []*tensor.Matrix{in, in2}},
	}
	counts := []int{1}
	if n := runtime.NumCPU(); n > 1 {
		counts = append(counts, n)
	}
	for _, workers := range counts {
		for _, c := range cases {
			b.Run(fmt.Sprintf("%s/workers=%d", c.name, workers), func(b *testing.B) {
				prev := parallel.SetWorkers(workers)
				defer parallel.SetWorkers(prev)
				b.SetBytes(int64(c.inputs[0].Len() * 8))
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					out, err := Exec(c.op, c.inputs, nil, Exact{})
					if err != nil {
						b.Fatal(err)
					}
					// Recycle the output so the steady-state alloc numbers
					// reflect the hot path, not benchmark-retained garbage.
					tensor.PutMatrix(out)
				}
			})
		}
	}
}
