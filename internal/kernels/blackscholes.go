package kernels

import (
	"math"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execBlackScholes prices European call options with the closed-form
// Black-Scholes solution of the parabolic PDE, the same kernel as the CUDA
// SDK's BlackScholes sample. Inputs: spot prices S and strike prices K;
// attributes: riskfree rate "r" (default 0.02), volatility "sigma" (default
// 0.30), and time to expiry "t" in years (default 1).
//
// The kernel has four stage boundaries (d1, d2, the two CND evaluations fold
// into one stage, and the final combination), which is also the NPU model
// depth used by the Edge TPU cost model.
func execBlackScholes(inputs []*tensor.Matrix, dst *tensor.Matrix, a attrs, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpParabolicPDE, inputs, 2); err != nil {
		return nil, err
	}
	s, k := inputs[0], inputs[1]
	rate := a.get("r", 0.02)
	sigma := a.get("sigma", 0.30)
	t := a.get("t", 1)

	// The staged sweeps index flat payloads; gather strided views once up
	// front (row-band views are contiguous, so this copy is rare).
	if !s.IsContiguous() {
		s = tensor.Materialize(s)
		defer tensor.PutMatrix(s)
	}
	if !k.IsContiguous() {
		k = tensor.Materialize(k)
		defer tensor.PutMatrix(k)
	}

	n := s.Len()
	d1 := tensor.GetFloats(n)
	d2 := tensor.GetFloats(n)
	volSqrtT := sigma * math.Sqrt(t)
	parallel.For(n, parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d1[i] = (math.Log(s.Data[i]/k.Data[i]) + (rate+0.5*sigma*sigma)*t) / volSqrtT
		}
	})
	r.Round(d1) // stage 1

	parallel.For(n, parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			d2[i] = d1[i] - volSqrtT
		}
	})
	r.Round(d2) // stage 2

	nd1 := tensor.GetFloats(n)
	nd2 := tensor.GetFloats(n)
	parallel.For(n, parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			nd1[i] = cnd(d1[i])
			nd2[i] = cnd(d2[i])
		}
	})
	r.Round(nd1) // stage 3 (both CNDs evaluate in the same layer)
	r.Round(nd2)

	out, err := outFor(dst, s.Rows, s.Cols)
	if err != nil {
		tensor.PutFloats(d1)
		tensor.PutFloats(d2)
		tensor.PutFloats(nd1)
		tensor.PutFloats(nd2)
		return nil, err
	}
	expRT := math.Exp(-rate * t)
	if out.IsContiguous() {
		parallel.For(n, parGrain, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				out.Data[i] = s.Data[i]*nd1[i] - k.Data[i]*expRT*nd2[i]
			}
		})
	} else {
		parallel.For(out.Rows, parallel.RowGrain(out.Cols), func(lo, hi int) {
			for ri := lo; ri < hi; ri++ {
				row := out.Row(ri)
				off := ri * out.Cols
				for j := range row {
					row[j] = s.Data[off+j]*nd1[off+j] - k.Data[off+j]*expRT*nd2[off+j]
				}
			}
		})
	}
	RoundMatrix(r, out) // stage 4
	tensor.PutFloats(d1)
	tensor.PutFloats(d2)
	tensor.PutFloats(nd1)
	tensor.PutFloats(nd2)
	return out, nil
}

// cnd is the cumulative normal distribution via the Abramowitz & Stegun
// 5-term polynomial used by the CUDA sample.
func cnd(d float64) float64 {
	const (
		a1 = 0.31938153
		a2 = -0.356563782
		a3 = 1.781477937
		a4 = -1.821255978
		a5 = 1.330274429
	)
	k := 1 / (1 + 0.2316419*math.Abs(d))
	poly := k * (a1 + k*(a2+k*(a3+k*(a4+k*a5))))
	c := (1 / math.Sqrt(2*math.Pi)) * math.Exp(-0.5*d*d) * poly
	if d > 0 {
		return 1 - c
	}
	return c
}
