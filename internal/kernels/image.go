package kernels

import (
	"math"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Image kernels (Laplacian, Sobel, Mean Filter) use replicate boundary
// handling, matching OpenCV's BORDER_REPLICATE default in the paper's
// baselines. Each has a single stage boundary. Rows are independent (inputs
// are read-only, each output row written by exactly one chunk), so the
// row-parallel sweeps are bit-identical to the sequential loops.

func execLaplacian(inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpLaplacian, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	out, err := outFor(dst, in.Rows, in.Cols)
	if err != nil {
		return nil, err
	}
	parallel.For(in.Rows, parallel.RowGrain(in.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < in.Cols; j++ {
				c := in.At(i, j)
				out.Set(i, j, atClamp(in, i-1, j)+atClamp(in, i+1, j)+
					atClamp(in, i, j-1)+atClamp(in, i, j+1)-4*c)
			}
		}
	})
	RoundMatrix(r, out)
	return out, nil
}

func execSobel(inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpSobel, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	out, err := outFor(dst, in.Rows, in.Cols)
	if err != nil {
		return nil, err
	}
	parallel.For(in.Rows, parallel.RowGrain(in.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < in.Cols; j++ {
				gx := -atClamp(in, i-1, j-1) + atClamp(in, i-1, j+1) +
					-2*atClamp(in, i, j-1) + 2*atClamp(in, i, j+1) +
					-atClamp(in, i+1, j-1) + atClamp(in, i+1, j+1)
				gy := -atClamp(in, i-1, j-1) - 2*atClamp(in, i-1, j) - atClamp(in, i-1, j+1) +
					atClamp(in, i+1, j-1) + 2*atClamp(in, i+1, j) + atClamp(in, i+1, j+1)
				out.Set(i, j, math.Hypot(gx, gy))
			}
		}
	})
	RoundMatrix(r, out)
	return out, nil
}

func execMeanFilter(inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpMeanFilter, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	out, err := outFor(dst, in.Rows, in.Cols)
	if err != nil {
		return nil, err
	}
	parallel.For(in.Rows, parallel.RowGrain(in.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < in.Cols; j++ {
				var s float64
				for di := -1; di <= 1; di++ {
					for dj := -1; dj <= 1; dj++ {
						s += atClamp(in, i+di, j+dj)
					}
				}
				out.Set(i, j, s/9)
			}
		}
	})
	RoundMatrix(r, out)
	return out, nil
}

// execConv computes the 2-D cross-correlation of the input with an odd
// square kernel (the conv VOP; matches what a convolution layer computes).
func execConv(inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpConv, inputs, 2); err != nil {
		return nil, err
	}
	in, k := inputs[0], inputs[1]
	rad := k.Rows / 2
	out, err := outFor(dst, in.Rows, in.Cols)
	if err != nil {
		return nil, err
	}
	parallel.For(in.Rows, parallel.RowGrain(in.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < in.Cols; j++ {
				var s float64
				for di := -rad; di <= rad; di++ {
					for dj := -rad; dj <= rad; dj++ {
						s += atClamp(in, i+di, j+dj) * k.At(di+rad, dj+rad)
					}
				}
				out.Set(i, j, s)
			}
		}
	})
	RoundMatrix(r, out)
	return out, nil
}

// atClamp reads in[i,j] with replicate boundary handling.
func atClamp(in *tensor.Matrix, i, j int) float64 {
	if i < 0 {
		i = 0
	}
	if i >= in.Rows {
		i = in.Rows - 1
	}
	if j < 0 {
		j = 0
	}
	if j >= in.Cols {
		j = in.Cols - 1
	}
	return in.Data[i*in.RowStride()+j]
}
