package kernels

import (
	"fmt"
	"math"
	"math/cmplx"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execFFT computes the per-row radix-2 FFT of the real input (row length
// must be a power of two) and returns the magnitude spectrum, matching how
// the CUDA SDK sample post-processes batched 1-D FFTs for comparison. The
// butterfly passes and the magnitude computation form the kernel's two stage
// boundaries. Rows transform independently (each with its own scratch
// buffer), so the parallel fan-out is bit-identical to the sequential loop.
func execFFT(inputs []*tensor.Matrix, dst *tensor.Matrix, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpFFT, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	if in.Cols == 0 || in.Cols&(in.Cols-1) != 0 {
		return nil, fmt.Errorf("kernels: FFT row length %d not a power of two", in.Cols)
	}
	inS := in.RowStride()
	re := tensor.GetMatrixUninit(in.Rows, in.Cols)
	im := tensor.GetMatrixUninit(in.Rows, in.Cols)
	parallel.For(in.Rows, parallel.RowGrain(in.Cols), func(lo, hi int) {
		buf := tensor.GetComplex(in.Cols)
		for row := lo; row < hi; row++ {
			baseIn := row * inS
			base := row * in.Cols
			for j := 0; j < in.Cols; j++ {
				buf[j] = complex(in.Data[baseIn+j], 0)
			}
			FFTInPlace(buf)
			for j := 0; j < in.Cols; j++ {
				re.Data[base+j] = real(buf[j])
				im.Data[base+j] = imag(buf[j])
			}
		}
		tensor.PutComplex(buf)
	})
	r.Round(re.Data) // stage 1: the complex spectrum leaves the butterflies
	r.Round(im.Data)

	out, err := outFor(dst, in.Rows, in.Cols)
	if err != nil {
		tensor.PutMatrix(re)
		tensor.PutMatrix(im)
		return nil, err
	}
	forSpans2(out, re, im, func(d, x, y []float64) {
		for i := range d {
			d[i] = math.Hypot(x[i], y[i])
		}
	})
	RoundMatrix(r, out) // stage 2
	tensor.PutMatrix(re)
	tensor.PutMatrix(im)
	return out, nil
}

// FFTInPlace computes the in-place iterative radix-2 Cooley-Tukey DFT of x;
// len(x) must be a power of two.
func FFTInPlace(x []complex128) {
	n := len(x)
	if n <= 1 {
		return
	}
	// Bit-reversal permutation.
	for i, j := 1, 0; i < n; i++ {
		bit := n >> 1
		for ; j&bit != 0; bit >>= 1 {
			j ^= bit
		}
		j ^= bit
		if i < j {
			x[i], x[j] = x[j], x[i]
		}
	}
	for length := 2; length <= n; length <<= 1 {
		ang := -2 * math.Pi / float64(length)
		wl := cmplx.Exp(complex(0, ang))
		for i := 0; i < n; i += length {
			w := complex(1, 0)
			for j := 0; j < length/2; j++ {
				u := x[i+j]
				v := x[i+j+length/2] * w
				x[i+j] = u + v
				x[i+j+length/2] = u - v
				w *= wl
			}
		}
	}
}

// IFFTInPlace computes the inverse DFT (with 1/n normalization); used by
// tests to validate the transform.
func IFFTInPlace(x []complex128) {
	n := len(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i])
	}
	FFTInPlace(x)
	for i := range x {
		x[i] = cmplx.Conj(x[i]) / complex(float64(n), 0)
	}
}
