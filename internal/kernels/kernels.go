// Package kernels implements the compute kernels of the paper's ten
// benchmark applications (Table 2) and the primitive VOPs of Table 1, in
// pure Go.
//
// Every kernel is written once against float64 data and parameterized by a
// Rounder that is applied in place at each internal stage boundary. Running
// with the Exact rounder gives the reference result (the role of the paper's
// CPU/GPU baseline); the F32 rounder reproduces the GPU's single-precision
// path; the Int8 rounder reproduces the Edge TPU's per-layer requantization
// (NPU mode), so quality loss is genuinely computed arithmetic, not a model.
package kernels

import (
	"fmt"

	"shmt/internal/parallel"
	"shmt/internal/quant"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// parGrain is the elements-per-chunk grain for parallel element-wise
// sweeps. Chunk boundaries derive only from the data length, so outputs are
// bit-identical at every worker count (see internal/parallel).
const parGrain = 4096

// Rounder degrades a stage's intermediate values to a device's native
// precision, in place.
type Rounder interface {
	Round(data []float64)
	Name() string
}

// ElementwiseRounder marks rounders whose Round maps every element
// independently of the rest of the slice — no whole-tensor calibration — so
// rounding a strided view row by row is bit-identical to rounding the same
// values as one contiguous slice. Calibrating rounders (INT8 affine,
// block-wise quantizers) must not implement it.
type ElementwiseRounder interface {
	RoundsElementwise()
}

// RoundMatrix applies r to m's logical elements, stride-aware. Contiguous
// matrices round in one call, exactly like the historical r.Round(m.Data).
// Strided views round per row when r is element-independent; calibrating
// rounders gather the view into a contiguous scratch buffer first, so their
// calibration sees the same distribution as on the materialized-copy path,
// then scatter back.
func RoundMatrix(r Rounder, m *tensor.Matrix) {
	if m.IsContiguous() {
		r.Round(m.Data)
		return
	}
	if _, ok := r.(ElementwiseRounder); ok {
		for i := 0; i < m.Rows; i++ {
			r.Round(m.Row(i))
		}
		return
	}
	tmp := tensor.Materialize(m)
	r.Round(tmp.Data)
	m.CopyFrom(tmp)
	tensor.PutMatrix(tmp)
}

// Exact performs no rounding: full float64 precision (CPU reference path).
type Exact struct{}

// Round is a no-op.
func (Exact) Round([]float64) {}

// Name implements Rounder.
func (Exact) Name() string { return "fp64" }

// RoundsElementwise implements ElementwiseRounder.
func (Exact) RoundsElementwise() {}

// F32 rounds every value to float32, the GPU's native precision.
type F32 struct{}

// Round implements Rounder.
func (F32) Round(data []float64) {
	parallel.For(len(data), parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = float64(float32(data[i]))
		}
	})
}

// Name implements Rounder.
func (F32) Name() string { return "fp32" }

// RoundsElementwise implements ElementwiseRounder.
func (F32) RoundsElementwise() {}

// F16 rounds every value to IEEE binary16, the GPU's AI/ML half-precision
// mode.
type F16 struct{}

// Round implements Rounder.
func (F16) Round(data []float64) {
	parallel.For(len(data), parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = quant.FP16FromFloat(data[i]).Float()
		}
	})
}

// Name implements Rounder.
func (F16) Name() string { return "fp16" }

// RoundsElementwise implements ElementwiseRounder.
func (F16) RoundsElementwise() {}

// Int8 requantizes every value through affine INT8, recalibrating scale and
// zero point on the stage's own distribution — the per-layer requantization
// a TFLite-compiled Edge TPU model performs between operators.
type Int8 struct{}

// Round implements Rounder.
func (Int8) Round(data []float64) {
	// Calibration is a sequential min/max scan (its result is
	// order-independent); the per-element round-trip parallelizes.
	p := quant.CalibrateAffine(data)
	parallel.For(len(data), parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = p.DequantizeOne(p.QuantizeOne(data[i]))
		}
	})
}

// Name implements Rounder.
func (Int8) Name() string { return "int8" }

// attrs provides defaulted access to a VOP's scalar attributes.
type attrs map[string]float64

func (a attrs) get(name string, def float64) float64 {
	if a == nil {
		return def
	}
	if v, ok := a[name]; ok {
		return v
	}
	return def
}

// Exec runs one kernel over whole matrices at the precision of r. For
// stencil opcodes the input is expected to already include any halo the
// caller wants honoured; boundaries replicate edge values.
//
// Reduction opcodes return partial results in the canonical partial shape
// (see ReducePartialShape); MergePartials combines them.
func Exec(op vop.Opcode, inputs []*tensor.Matrix, at map[string]float64, r Rounder) (*tensor.Matrix, error) {
	return ExecInto(op, inputs, nil, at, r)
}

// ExecInto is Exec with an optional destination. When dst is non-nil it must
// have the kernel's natural output shape; the kernel then writes its result
// through dst — which may be a strided view into a larger tensor — and
// returns dst, so shared-memory devices can land partition results directly
// in the VOP output with no staging copy. Inputs may likewise be strided
// views. Reduction opcodes produce partials in their own canonical shape and
// ignore dst.
func ExecInto(op vop.Opcode, inputs []*tensor.Matrix, dst *tensor.Matrix, at map[string]float64, r Rounder) (*tensor.Matrix, error) {
	if r == nil {
		r = Exact{}
	}
	a := attrs(at)
	switch op {
	case vop.OpAdd, vop.OpSub, vop.OpMultiply, vop.OpMax, vop.OpMin:
		return execBinary(op, inputs, dst, r)
	case vop.OpLog, vop.OpSqrt, vop.OpRsqrt, vop.OpTanh, vop.OpRelu:
		return execUnary(op, inputs, dst, r)
	case vop.OpReduceSum, vop.OpReduceAverage, vop.OpReduceMax, vop.OpReduceMin, vop.OpReduceHist256:
		return execReduce(op, inputs, a, r)
	case vop.OpParabolicPDE:
		return execBlackScholes(inputs, dst, a, r)
	case vop.OpGEMM:
		return execGEMM(inputs, dst, r)
	case vop.OpConv:
		return execConv(inputs, dst, r)
	case vop.OpDCT8x8:
		return execDCT8x8(inputs, dst, r)
	case vop.OpFDWT97:
		return execFDWT97(inputs, dst, a, r)
	case vop.OpFFT:
		return execFFT(inputs, dst, r)
	case vop.OpLaplacian:
		return execLaplacian(inputs, dst, r)
	case vop.OpMeanFilter:
		return execMeanFilter(inputs, dst, r)
	case vop.OpSobel:
		return execSobel(inputs, dst, r)
	case vop.OpSRAD:
		return execSRAD(inputs, dst, a, r)
	case vop.OpStencil:
		return execHotspot(inputs, dst, a, r)
	default:
		return nil, fmt.Errorf("kernels: unsupported opcode %s", op)
	}
}

// Stages returns the number of internal stage boundaries (Rounder
// applications) the kernel performs — the "layer count" the NPU topology of
// an Edge TPU model would have. Used by the device cost models.
func Stages(op vop.Opcode) int {
	switch op {
	case vop.OpParabolicPDE:
		return 4
	case vop.OpDCT8x8, vop.OpFDWT97:
		return 2
	case vop.OpFFT:
		return 2
	case vop.OpSRAD:
		return 3
	case vop.OpStencil:
		return 2
	case vop.OpGEMM, vop.OpConv:
		return 1
	case vop.OpLaplacian, vop.OpSobel, vop.OpMeanFilter:
		return 1
	default:
		return 1
	}
}

// outFor returns the buffer a kernel writes its result into: dst when the
// caller provided one (validated against the natural output shape), otherwise
// a fresh arena matrix with unspecified contents.
func outFor(dst *tensor.Matrix, rows, cols int) (*tensor.Matrix, error) {
	if dst == nil {
		return tensor.GetMatrixUninit(rows, cols), nil
	}
	if dst.Rows != rows || dst.Cols != cols {
		return nil, fmt.Errorf("kernels: destination %dx%d does not match output %dx%d", dst.Rows, dst.Cols, rows, cols)
	}
	return dst, nil
}

// putIfScratch releases out back to the arena unless it is the caller's dst.
// (PutMatrix also refuses views, so this is belt and braces on error paths.)
func putIfScratch(out, dst *tensor.Matrix) {
	if out != dst {
		tensor.PutMatrix(out)
	}
}

// forSpans1 applies fn over disjoint row-major spans of two equally shaped
// matrices. When both are gap-free the spans are parGrain-element chunks of
// the flat payload (the historical layout); strided views fall back to
// whole-row spans. Span boundaries derive only from the shape and all
// callers apply element-independent math, so results are bit-identical at
// any worker count and on either span layout.
func forSpans1(out, a *tensor.Matrix, fn func(dst, x []float64)) {
	if out.IsContiguous() && a.IsContiguous() {
		parallel.For(out.Len(), parGrain, func(lo, hi int) {
			fn(out.Data[lo:hi], a.Data[lo:hi])
		})
		return
	}
	parallel.For(out.Rows, parallel.RowGrain(out.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(out.Row(i), a.Row(i))
		}
	})
}

// forSpans2 is forSpans1 over three equally shaped matrices.
func forSpans2(out, a, b *tensor.Matrix, fn func(dst, x, y []float64)) {
	if out.IsContiguous() && a.IsContiguous() && b.IsContiguous() {
		parallel.For(out.Len(), parGrain, func(lo, hi int) {
			fn(out.Data[lo:hi], a.Data[lo:hi], b.Data[lo:hi])
		})
		return
	}
	parallel.For(out.Rows, parallel.RowGrain(out.Cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			fn(out.Row(i), a.Row(i), b.Row(i))
		}
	})
}

func checkInputs(op vop.Opcode, inputs []*tensor.Matrix, want int) error {
	if len(inputs) != want {
		return fmt.Errorf("kernels: %s wants %d inputs, got %d", op, want, len(inputs))
	}
	for i, in := range inputs {
		if in == nil {
			return fmt.Errorf("kernels: %s input %d is nil", op, i)
		}
	}
	return nil
}
