// Package kernels implements the compute kernels of the paper's ten
// benchmark applications (Table 2) and the primitive VOPs of Table 1, in
// pure Go.
//
// Every kernel is written once against float64 data and parameterized by a
// Rounder that is applied in place at each internal stage boundary. Running
// with the Exact rounder gives the reference result (the role of the paper's
// CPU/GPU baseline); the F32 rounder reproduces the GPU's single-precision
// path; the Int8 rounder reproduces the Edge TPU's per-layer requantization
// (NPU mode), so quality loss is genuinely computed arithmetic, not a model.
package kernels

import (
	"fmt"

	"shmt/internal/parallel"
	"shmt/internal/quant"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// parGrain is the elements-per-chunk grain for parallel element-wise
// sweeps. Chunk boundaries derive only from the data length, so outputs are
// bit-identical at every worker count (see internal/parallel).
const parGrain = 4096

// Rounder degrades a stage's intermediate values to a device's native
// precision, in place.
type Rounder interface {
	Round(data []float64)
	Name() string
}

// Exact performs no rounding: full float64 precision (CPU reference path).
type Exact struct{}

// Round is a no-op.
func (Exact) Round([]float64) {}

// Name implements Rounder.
func (Exact) Name() string { return "fp64" }

// F32 rounds every value to float32, the GPU's native precision.
type F32 struct{}

// Round implements Rounder.
func (F32) Round(data []float64) {
	parallel.For(len(data), parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = float64(float32(data[i]))
		}
	})
}

// Name implements Rounder.
func (F32) Name() string { return "fp32" }

// F16 rounds every value to IEEE binary16, the GPU's AI/ML half-precision
// mode.
type F16 struct{}

// Round implements Rounder.
func (F16) Round(data []float64) {
	parallel.For(len(data), parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = quant.FP16FromFloat(data[i]).Float()
		}
	})
}

// Name implements Rounder.
func (F16) Name() string { return "fp16" }

// Int8 requantizes every value through affine INT8, recalibrating scale and
// zero point on the stage's own distribution — the per-layer requantization
// a TFLite-compiled Edge TPU model performs between operators.
type Int8 struct{}

// Round implements Rounder.
func (Int8) Round(data []float64) {
	// Calibration is a sequential min/max scan (its result is
	// order-independent); the per-element round-trip parallelizes.
	p := quant.CalibrateAffine(data)
	parallel.For(len(data), parGrain, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			data[i] = p.DequantizeOne(p.QuantizeOne(data[i]))
		}
	})
}

// Name implements Rounder.
func (Int8) Name() string { return "int8" }

// attrs provides defaulted access to a VOP's scalar attributes.
type attrs map[string]float64

func (a attrs) get(name string, def float64) float64 {
	if a == nil {
		return def
	}
	if v, ok := a[name]; ok {
		return v
	}
	return def
}

// Exec runs one kernel over whole matrices at the precision of r. For
// stencil opcodes the input is expected to already include any halo the
// caller wants honoured; boundaries replicate edge values.
//
// Reduction opcodes return partial results in the canonical partial shape
// (see ReducePartialShape); MergePartials combines them.
func Exec(op vop.Opcode, inputs []*tensor.Matrix, at map[string]float64, r Rounder) (*tensor.Matrix, error) {
	if r == nil {
		r = Exact{}
	}
	a := attrs(at)
	switch op {
	case vop.OpAdd, vop.OpSub, vop.OpMultiply, vop.OpMax, vop.OpMin:
		return execBinary(op, inputs, r)
	case vop.OpLog, vop.OpSqrt, vop.OpRsqrt, vop.OpTanh, vop.OpRelu:
		return execUnary(op, inputs, r)
	case vop.OpReduceSum, vop.OpReduceAverage, vop.OpReduceMax, vop.OpReduceMin, vop.OpReduceHist256:
		return execReduce(op, inputs, a, r)
	case vop.OpParabolicPDE:
		return execBlackScholes(inputs, a, r)
	case vop.OpGEMM:
		return execGEMM(inputs, r)
	case vop.OpConv:
		return execConv(inputs, r)
	case vop.OpDCT8x8:
		return execDCT8x8(inputs, r)
	case vop.OpFDWT97:
		return execFDWT97(inputs, a, r)
	case vop.OpFFT:
		return execFFT(inputs, r)
	case vop.OpLaplacian:
		return execLaplacian(inputs, r)
	case vop.OpMeanFilter:
		return execMeanFilter(inputs, r)
	case vop.OpSobel:
		return execSobel(inputs, r)
	case vop.OpSRAD:
		return execSRAD(inputs, a, r)
	case vop.OpStencil:
		return execHotspot(inputs, a, r)
	default:
		return nil, fmt.Errorf("kernels: unsupported opcode %s", op)
	}
}

// Stages returns the number of internal stage boundaries (Rounder
// applications) the kernel performs — the "layer count" the NPU topology of
// an Edge TPU model would have. Used by the device cost models.
func Stages(op vop.Opcode) int {
	switch op {
	case vop.OpParabolicPDE:
		return 4
	case vop.OpDCT8x8, vop.OpFDWT97:
		return 2
	case vop.OpFFT:
		return 2
	case vop.OpSRAD:
		return 3
	case vop.OpStencil:
		return 2
	case vop.OpGEMM, vop.OpConv:
		return 1
	case vop.OpLaplacian, vop.OpSobel, vop.OpMeanFilter:
		return 1
	default:
		return 1
	}
}

func checkInputs(op vop.Opcode, inputs []*tensor.Matrix, want int) error {
	if len(inputs) != want {
		return fmt.Errorf("kernels: %s wants %d inputs, got %d", op, want, len(inputs))
	}
	for i, in := range inputs {
		if in == nil {
			return fmt.Errorf("kernels: %s input %d is nil", op, i)
		}
	}
	return nil
}
