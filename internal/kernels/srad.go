package kernels

import (
	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// execSRAD performs one iteration of Speckle Reducing Anisotropic Diffusion
// (Yu & Acton 2002), the update used by the Rodinia/CUDA SRAD benchmarks for
// ultrasound/medical-image despeckling.
//
// Attributes: "lambda" — diffusion time step (default 0.5); "q0sqr" — the
// speckle-scale coefficient normally derived from a homogeneous reference
// region each iteration (default 0.05). Passing q0sqr as an attribute keeps
// partitions independent, matching how the paper's HLOP partitioning avoids
// cross-device synchronization inside a VOP.
//
// Stage boundaries: gradient/coefficient computation, coefficient smoothing,
// and the diffusion update (3 stages). Each stage reads only earlier-stage
// grids, so its row-parallel sweep is bit-identical to the sequential loop.
func execSRAD(inputs []*tensor.Matrix, dst *tensor.Matrix, a attrs, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(vop.OpSRAD, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	lambda := a.get("lambda", 0.5)
	q0sqr := a.get("q0sqr", 0.05)

	rows, cols := in.Rows, in.Cols
	// Stage 1: directional derivatives and the diffusion coefficient c.
	c := tensor.GetMatrixUninit(rows, cols)
	dN := tensor.GetMatrixUninit(rows, cols)
	dS := tensor.GetMatrixUninit(rows, cols)
	dW := tensor.GetMatrixUninit(rows, cols)
	dE := tensor.GetMatrixUninit(rows, cols)
	parallel.For(rows, parallel.RowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				jc := in.At(i, j)
				if jc == 0 {
					jc = 1e-12 // guard the division; SRAD inputs are positive intensities
				}
				n := atClamp(in, i-1, j) - jc
				s := atClamp(in, i+1, j) - jc
				w := atClamp(in, i, j-1) - jc
				e := atClamp(in, i, j+1) - jc
				dN.Set(i, j, n)
				dS.Set(i, j, s)
				dW.Set(i, j, w)
				dE.Set(i, j, e)

				g2 := (n*n + s*s + w*w + e*e) / (jc * jc)
				l := (n + s + w + e) / jc
				num := 0.5*g2 - 0.0625*l*l
				den := 1 + 0.25*l
				qsqr := num / (den * den)
				// Diffusion coefficient, clamped to [0,1].
				cv := 1 / (1 + (qsqr-q0sqr)/(q0sqr*(1+q0sqr)))
				if cv < 0 {
					cv = 0
				}
				if cv > 1 {
					cv = 1
				}
				c.Set(i, j, cv)
			}
		}
	})
	r.Round(c.Data) // stage 1

	// Stage 2: divergence using the south/east neighbours' coefficients.
	div := tensor.GetMatrixUninit(rows, cols)
	parallel.For(rows, parallel.RowGrain(cols), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < cols; j++ {
				cN := c.At(i, j)
				cW := c.At(i, j)
				cS := atClamp(c, i+1, j)
				cE := atClamp(c, i, j+1)
				div.Set(i, j, cN*dN.At(i, j)+cS*dS.At(i, j)+cW*dW.At(i, j)+cE*dE.At(i, j))
			}
		}
	})
	r.Round(div.Data) // stage 2
	tensor.PutMatrix(dN)
	tensor.PutMatrix(dS)
	tensor.PutMatrix(dW)
	tensor.PutMatrix(dE)
	tensor.PutMatrix(c)

	// Stage 3: explicit update.
	out, err := outFor(dst, rows, cols)
	if err != nil {
		tensor.PutMatrix(div)
		return nil, err
	}
	forSpans2(out, in, div, func(d, x, y []float64) {
		for i := range d {
			d[i] = x[i] + 0.25*lambda*y[i]
		}
	})
	RoundMatrix(r, out) // stage 3
	tensor.PutMatrix(div)
	return out, nil
}
