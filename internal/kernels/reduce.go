package kernels

import (
	"fmt"
	"math"

	"shmt/internal/parallel"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// reduceChunk is the fixed leaf size of the deterministic reduction tree:
// the input is cut into ⌈n/reduceChunk⌉ chunks, each reduced sequentially,
// and the per-chunk partials are merged in chunk order. The tree's shape
// depends only on n — never on the worker count — so reductions are
// bit-identical at any parallelism, and inputs at or below one chunk take
// exactly the legacy sequential path.
const reduceChunk = 1 << 16

// Reduction kernels produce canonical partial results so that per-partition
// partials from different devices can be merged:
//
//	reduce_sum      -> 1x1  [sum]
//	reduce_average  -> 1x2  [sum, count]   (finalized to 1x1 by MergePartials)
//	reduce_max      -> 1x1  [max]
//	reduce_min      -> 1x1  [min]
//	reduce_hist256  -> 1x256 bin counts over [histLo, histHi)
//
// The histogram range comes from the "hist_lo"/"hist_hi" attributes
// (defaults 0 and 1), mirroring OpenCV's calcHist with fixed ranges.

// ReducePartialShape returns the rows/cols of one partition's partial result.
func ReducePartialShape(op vop.Opcode) (rows, cols int) {
	switch op {
	case vop.OpReduceHist256:
		return 1, 256
	case vop.OpReduceAverage:
		return 1, 2
	default:
		return 1, 1
	}
}

func execReduce(op vop.Opcode, inputs []*tensor.Matrix, a attrs, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(op, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	// The fixed-shape reduction tree walks a flat payload; gather strided
	// views once so the tree (and Kahan merge order) is identical to the
	// copy path. Row-band views are contiguous and skip this.
	if !in.IsContiguous() {
		in = tensor.Materialize(in)
		defer tensor.PutMatrix(in)
	}
	switch op {
	case vop.OpReduceSum:
		out := tensor.GetMatrixUninit(1, 1)
		out.Data[0] = chunkedKahanSum(in.Data)
		r.Round(out.Data)
		return out, nil
	case vop.OpReduceAverage:
		out := tensor.GetMatrixUninit(1, 2)
		out.Data[0] = chunkedKahanSum(in.Data)
		out.Data[1] = float64(in.Len())
		r.Round(out.Data[:1]) // the count is exact bookkeeping, never rounded
		return out, nil
	case vop.OpReduceMax:
		out := tensor.GetMatrixUninit(1, 1)
		out.Data[0] = chunkedExtreme(in.Data, math.Inf(-1), func(a, b float64) bool { return a > b })
		r.Round(out.Data)
		return out, nil
	case vop.OpReduceMin:
		out := tensor.GetMatrixUninit(1, 1)
		out.Data[0] = chunkedExtreme(in.Data, math.Inf(1), func(a, b float64) bool { return a < b })
		r.Round(out.Data)
		return out, nil
	case vop.OpReduceHist256:
		lo := a.get("hist_lo", 0)
		hi := a.get("hist_hi", 1)
		if hi <= lo {
			return nil, fmt.Errorf("kernels: reduce_hist256 range [%g,%g) is empty", lo, hi)
		}
		out := tensor.GetMatrix(1, 256)
		// The Edge TPU path quantizes the *input* before binning (binning
		// itself is integer bookkeeping), so round a working copy.
		data := in.Data
		var scratch []float64
		if _, exact := r.(Exact); !exact {
			scratch = tensor.GetFloats(len(in.Data))
			copy(scratch, in.Data)
			r.Round(scratch)
			data = scratch
		}
		scale := 256 / (hi - lo)
		chunks := (len(data) + reduceChunk - 1) / reduceChunk
		if chunks <= 1 {
			histInto(out.Data, data, lo, scale)
		} else {
			// Bin counts are small-integer adds — exact in float64 and
			// order-free — so per-chunk histograms merged in chunk order
			// equal the sequential scan bit for bit.
			partials := tensor.GetFloats(chunks * 256)
			for i := range partials {
				partials[i] = 0
			}
			parallel.For(len(data), reduceChunk, func(clo, chi int) {
				histInto(partials[(clo/reduceChunk)*256:][:256], data[clo:chi], lo, scale)
			})
			for c := 0; c < chunks; c++ {
				for i, v := range partials[c*256 : (c+1)*256] {
					out.Data[i] += v
				}
			}
			tensor.PutFloats(partials)
		}
		tensor.PutFloats(scratch)
		return out, nil
	default:
		return nil, fmt.Errorf("kernels: %s is not a reduction", op)
	}
}

// histInto bins vals into the 256-entry counts slice.
func histInto(counts, vals []float64, lo, scale float64) {
	for _, v := range vals {
		bin := int((v - lo) * scale)
		if bin < 0 {
			bin = 0
		}
		if bin > 255 {
			bin = 255
		}
		counts[bin]++
	}
}

// chunkedKahanSum reduces vals through the fixed-shape tree: per-chunk Kahan
// sums, merged with Kahan compensation in chunk order. A single chunk
// degenerates to plain kahanSum, preserving the legacy sequential result.
func chunkedKahanSum(vals []float64) float64 {
	chunks := (len(vals) + reduceChunk - 1) / reduceChunk
	if chunks <= 1 {
		return kahanSum(vals)
	}
	partials := tensor.GetFloats(chunks)
	parallel.For(len(vals), reduceChunk, func(lo, hi int) {
		partials[lo/reduceChunk] = kahanSum(vals[lo:hi])
	})
	sum := kahanSum(partials)
	tensor.PutFloats(partials)
	return sum
}

// chunkedExtreme reduces vals with the better predicate (max or min) over
// the same fixed chunk tree; comparison merge is exact at any order.
func chunkedExtreme(vals []float64, id float64, better func(a, b float64) bool) float64 {
	chunks := (len(vals) + reduceChunk - 1) / reduceChunk
	if chunks <= 1 {
		m := id
		for _, v := range vals {
			if better(v, m) {
				m = v
			}
		}
		return m
	}
	partials := tensor.GetFloats(chunks)
	parallel.For(len(vals), reduceChunk, func(lo, hi int) {
		m := id
		for _, v := range vals[lo:hi] {
			if better(v, m) {
				m = v
			}
		}
		partials[lo/reduceChunk] = m
	})
	m := id
	for _, v := range partials {
		if better(v, m) {
			m = v
		}
	}
	tensor.PutFloats(partials)
	return m
}

// MergePartials combines per-partition reduction partials into the final VOP
// output. totalN is the total element count of the VOP input (needed for
// reduce_average).
func MergePartials(op vop.Opcode, partials []*tensor.Matrix, totalN int) (*tensor.Matrix, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("kernels: no partials to merge for %s", op)
	}
	switch op {
	case vop.OpReduceSum:
		out := tensor.NewMatrix(1, 1)
		for _, p := range partials {
			out.Data[0] += p.Data[0]
		}
		return out, nil
	case vop.OpReduceAverage:
		var sum, cnt float64
		for _, p := range partials {
			sum += p.Data[0]
			cnt += p.Data[1]
		}
		if cnt == 0 {
			cnt = float64(totalN)
		}
		out := tensor.NewMatrix(1, 1)
		if cnt > 0 {
			out.Data[0] = sum / cnt
		}
		return out, nil
	case vop.OpReduceMax:
		out := tensor.NewMatrix(1, 1)
		out.Data[0] = math.Inf(-1)
		for _, p := range partials {
			if p.Data[0] > out.Data[0] {
				out.Data[0] = p.Data[0]
			}
		}
		return out, nil
	case vop.OpReduceMin:
		out := tensor.NewMatrix(1, 1)
		out.Data[0] = math.Inf(1)
		for _, p := range partials {
			if p.Data[0] < out.Data[0] {
				out.Data[0] = p.Data[0]
			}
		}
		return out, nil
	case vop.OpReduceHist256:
		out := tensor.NewMatrix(1, 256)
		for _, p := range partials {
			if p.Len() != 256 {
				return nil, fmt.Errorf("kernels: histogram partial has %d bins", p.Len())
			}
			for i, v := range p.Data {
				out.Data[i] += v
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("kernels: %s is not a reduction", op)
	}
}

// kahanSum adds values with compensated summation so the fp64 reference is
// stable on the paper's 64M-element inputs.
func kahanSum(vals []float64) float64 {
	var sum, c float64
	for _, v := range vals {
		y := v - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}
