package kernels

import (
	"fmt"
	"math"

	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// Reduction kernels produce canonical partial results so that per-partition
// partials from different devices can be merged:
//
//	reduce_sum      -> 1x1  [sum]
//	reduce_average  -> 1x2  [sum, count]   (finalized to 1x1 by MergePartials)
//	reduce_max      -> 1x1  [max]
//	reduce_min      -> 1x1  [min]
//	reduce_hist256  -> 1x256 bin counts over [histLo, histHi)
//
// The histogram range comes from the "hist_lo"/"hist_hi" attributes
// (defaults 0 and 1), mirroring OpenCV's calcHist with fixed ranges.

// ReducePartialShape returns the rows/cols of one partition's partial result.
func ReducePartialShape(op vop.Opcode) (rows, cols int) {
	switch op {
	case vop.OpReduceHist256:
		return 1, 256
	case vop.OpReduceAverage:
		return 1, 2
	default:
		return 1, 1
	}
}

func execReduce(op vop.Opcode, inputs []*tensor.Matrix, a attrs, r Rounder) (*tensor.Matrix, error) {
	if err := checkInputs(op, inputs, 1); err != nil {
		return nil, err
	}
	in := inputs[0]
	switch op {
	case vop.OpReduceSum:
		out := tensor.NewMatrix(1, 1)
		out.Data[0] = kahanSum(in.Data)
		r.Round(out.Data)
		return out, nil
	case vop.OpReduceAverage:
		out := tensor.NewMatrix(1, 2)
		out.Data[0] = kahanSum(in.Data)
		out.Data[1] = float64(in.Len())
		r.Round(out.Data[:1]) // the count is exact bookkeeping, never rounded
		return out, nil
	case vop.OpReduceMax:
		out := tensor.NewMatrix(1, 1)
		m := math.Inf(-1)
		for _, v := range in.Data {
			if v > m {
				m = v
			}
		}
		out.Data[0] = m
		r.Round(out.Data)
		return out, nil
	case vop.OpReduceMin:
		out := tensor.NewMatrix(1, 1)
		m := math.Inf(1)
		for _, v := range in.Data {
			if v < m {
				m = v
			}
		}
		out.Data[0] = m
		r.Round(out.Data)
		return out, nil
	case vop.OpReduceHist256:
		lo := a.get("hist_lo", 0)
		hi := a.get("hist_hi", 1)
		if hi <= lo {
			return nil, fmt.Errorf("kernels: reduce_hist256 range [%g,%g) is empty", lo, hi)
		}
		out := tensor.NewMatrix(1, 256)
		// The Edge TPU path quantizes the *input* before binning (binning
		// itself is integer bookkeeping), so round a working copy.
		data := in.Data
		if _, exact := r.(Exact); !exact {
			data = append([]float64(nil), in.Data...)
			r.Round(data)
		}
		scale := 256 / (hi - lo)
		for _, v := range data {
			bin := int((v - lo) * scale)
			if bin < 0 {
				bin = 0
			}
			if bin > 255 {
				bin = 255
			}
			out.Data[bin]++
		}
		return out, nil
	default:
		return nil, fmt.Errorf("kernels: %s is not a reduction", op)
	}
}

// MergePartials combines per-partition reduction partials into the final VOP
// output. totalN is the total element count of the VOP input (needed for
// reduce_average).
func MergePartials(op vop.Opcode, partials []*tensor.Matrix, totalN int) (*tensor.Matrix, error) {
	if len(partials) == 0 {
		return nil, fmt.Errorf("kernels: no partials to merge for %s", op)
	}
	switch op {
	case vop.OpReduceSum:
		out := tensor.NewMatrix(1, 1)
		for _, p := range partials {
			out.Data[0] += p.Data[0]
		}
		return out, nil
	case vop.OpReduceAverage:
		var sum, cnt float64
		for _, p := range partials {
			sum += p.Data[0]
			cnt += p.Data[1]
		}
		if cnt == 0 {
			cnt = float64(totalN)
		}
		out := tensor.NewMatrix(1, 1)
		if cnt > 0 {
			out.Data[0] = sum / cnt
		}
		return out, nil
	case vop.OpReduceMax:
		out := tensor.NewMatrix(1, 1)
		out.Data[0] = math.Inf(-1)
		for _, p := range partials {
			if p.Data[0] > out.Data[0] {
				out.Data[0] = p.Data[0]
			}
		}
		return out, nil
	case vop.OpReduceMin:
		out := tensor.NewMatrix(1, 1)
		out.Data[0] = math.Inf(1)
		for _, p := range partials {
			if p.Data[0] < out.Data[0] {
				out.Data[0] = p.Data[0]
			}
		}
		return out, nil
	case vop.OpReduceHist256:
		out := tensor.NewMatrix(1, 256)
		for _, p := range partials {
			if p.Len() != 256 {
				return nil, fmt.Errorf("kernels: histogram partial has %d bins", p.Len())
			}
			for i, v := range p.Data {
				out.Data[i] += v
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("kernels: %s is not a reduction", op)
	}
}

// kahanSum adds values with compensated summation so the fp64 reference is
// stable on the paper's 64M-element inputs.
func kahanSum(vals []float64) float64 {
	var sum, c float64
	for _, v := range vals {
		y := v - c
		t := sum + y
		c = (t - sum) - y
		sum = t
	}
	return sum
}
