package sched

import (
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/dsp"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sampling"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// fourCtx builds the extended platform: CPU + GPU + DSP + TPU.
func fourCtx(t *testing.T) *Context {
	t.Helper()
	reg, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}),
		dsp.New(dsp.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	return &Context{Reg: reg, Seed: 1}
}

func TestEligibleForFiltersBySupport(t *testing.T) {
	ctx := fourCtx(t)
	// Sobel is in the DSP's home domain: three eligible accelerators,
	// accuracy-ordered gpu < dsp < tpu.
	el := ctx.EligibleFor(vop.OpSobel)
	if len(el) != 3 {
		t.Fatalf("eligible for sobel = %v", el)
	}
	names := []string{"gpu", "dsp", "tpu"}
	for i, want := range names {
		if got := ctx.Reg.Get(el[i]).Name(); got != want {
			t.Fatalf("eligible[%d] = %s want %s", i, got, want)
		}
	}
	// GEMM is outside the DSP's domain.
	el = ctx.EligibleFor(vop.OpGEMM)
	if len(el) != 2 {
		t.Fatalf("eligible for GEMM = %v", el)
	}
	for _, i := range el {
		if ctx.Reg.Get(i).Name() == "dsp" {
			t.Fatal("DSP must not be eligible for GEMM")
		}
	}
}

func TestMultiTierTopK(t *testing.T) {
	ctx := fourCtx(t)
	hs := partitioned(t, 16) // Sobel HLOPs with graded criticality
	p := QAWS{Assignment: TopK, Method: sampling.Striding, Rate: 0.05, W: 16,
		Tiers: []float64{0.25, 0.25}} // top 25% -> gpu, next 25% -> dsp, rest -> tpu
	if _, err := p.Assign(ctx, hs); err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, h := range hs {
		counts[ctx.Reg.Get(h.AssignedQueue).Name()]++
	}
	if counts["gpu"] != 4 || counts["dsp"] != 4 || counts["tpu"] != 8 {
		t.Fatalf("tier split = %v, want gpu:4 dsp:4 tpu:8", counts)
	}
	// Accuracy ordering must follow criticality ordering tier-by-tier.
	rank := func(h *hlop.HLOP) int { return ctx.Reg.Get(h.AssignedQueue).AccuracyRank() }
	for _, a := range hs {
		for _, b := range hs {
			if a.Criticality > b.Criticality && rank(a) > rank(b) {
				t.Fatalf("more critical partition on less accurate device (%g->%d vs %g->%d)",
					a.Criticality, rank(a), b.Criticality, rank(b))
			}
		}
	}
	// Only the top tier carries the Critical flag.
	for _, h := range hs {
		if h.Critical != (ctx.Reg.Get(h.AssignedQueue).Name() == "gpu") {
			t.Fatal("Critical flag should mark exactly the top tier")
		}
	}
}

func TestMultiTierDefaultFractions(t *testing.T) {
	p := QAWS{K: 0.2}
	hs := partitioned(t, 4)
	tiers := p.tierFractions(hs, 3)
	if len(tiers) != 3 {
		t.Fatalf("tiers = %v", tiers)
	}
	if tiers[0] != 0.2 {
		t.Fatalf("top tier = %g want 0.2", tiers[0])
	}
	var sum float64
	for _, f := range tiers {
		sum += f
	}
	if sum < 0.999 || sum > 1.001 {
		t.Fatalf("tier fractions sum to %g", sum)
	}
}

func TestMultiTierStealingRespectsChain(t *testing.T) {
	ctx := fourCtx(t)
	p := QAWS{}
	h := &hlop.HLOP{Op: vop.OpSobel}
	g := ctx.Reg.Index("gpu")
	d := ctx.Reg.Index("dsp")
	tq := ctx.Reg.Index("tpu")
	// Downward accuracy chain: gpu steals from dsp and tpu; dsp from tpu.
	if !p.CanSteal(ctx, g, d, h) || !p.CanSteal(ctx, g, tq, h) || !p.CanSteal(ctx, d, tq, h) {
		t.Fatal("higher-accuracy devices must drain lower-accuracy queues")
	}
	// Never upward.
	if p.CanSteal(ctx, tq, d, h) || p.CanSteal(ctx, tq, g, h) || p.CanSteal(ctx, d, g, h) {
		t.Fatal("lower-accuracy devices must not steal protected work")
	}
	// The DSP must not steal ops outside its domain even from the TPU.
	gemm := &hlop.HLOP{Op: vop.OpGEMM}
	if p.CanSteal(ctx, d, tq, gemm) {
		t.Fatal("a device must not steal an opcode it has no HLOP for")
	}
}

func TestWorkStealingSkipsUnsupportedOps(t *testing.T) {
	ctx := fourCtx(t)
	ws := WorkStealing{}
	gemm := &hlop.HLOP{Op: vop.OpGEMM}
	if ws.CanSteal(ctx, ctx.Reg.Index("dsp"), ctx.Reg.Index("tpu"), gemm) {
		t.Fatal("work stealing must respect HLOP coverage")
	}
}

func TestAssignmentSkipsUnsupportedDevices(t *testing.T) {
	ctx := fourCtx(t)
	// GEMM HLOPs must never be assigned to the DSP by any policy.
	m := partitionedGEMM(t)
	for _, pol := range []Policy{EvenDistribution{}, WorkStealing{},
		QAWS{Rate: 0.05}, Oracle{}} {
		for _, h := range m {
			h.AssignedQueue = 0
		}
		if _, err := pol.Assign(ctx, m); err != nil {
			t.Fatalf("%s: %v", pol.Name(), err)
		}
		for _, h := range m {
			if ctx.Reg.Get(h.AssignedQueue).Name() == "dsp" {
				t.Fatalf("%s assigned GEMM to the DSP", pol.Name())
			}
		}
	}
}

func partitionedGEMM(t *testing.T) []*hlop.HLOP {
	t.Helper()
	a := filledMatrix(64, 32, 1)
	b := filledMatrix(32, 48, 2)
	v, err := vop.New(vop.OpGEMM, a, b)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := hlop.Partition(v, hlop.Spec{TargetPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

func filledMatrix(rows, cols int, seed int64) *tensor.Matrix {
	m := tensor.NewMatrix(rows, cols)
	x := float64(seed)
	for i := range m.Data {
		x = x*1103515245 + 12345
		m.Data[i] = float64(int64(x)%1000) / 1000
	}
	return m
}
