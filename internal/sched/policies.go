package sched

import (
	"fmt"

	"shmt/internal/hlop"
)

// SingleDevice routes every HLOP to one named device: the conventional
// execution model (GPU baseline, Edge-TPU-only) the paper compares against.
type SingleDevice struct {
	// Device is the target device name ("gpu", "tpu", "cpu").
	Device string
}

// Name implements Policy.
func (p SingleDevice) Name() string { return p.Device + "-only" }

// Assign implements Policy.
func (p SingleDevice) Assign(ctx *Context, hs []*hlop.HLOP) (float64, error) {
	q := ctx.Reg.Index(p.Device)
	if q < 0 {
		return 0, fmt.Errorf("sched: no device named %q", p.Device)
	}
	for _, h := range hs {
		h.AssignedQueue = q
	}
	return 0, nil
}

// StealingEnabled implements Policy: a single queue has nothing to steal.
func (p SingleDevice) StealingEnabled() bool { return false }

// CanSteal implements Policy.
func (p SingleDevice) CanSteal(*Context, int, int, *hlop.HLOP) bool { return false }

// EvenDistribution statically round-robins HLOPs across the accelerators
// with no stealing and no quality control — the paper's "even distribution"
// reference, whose performance is "bounded by the slower hardware" (§5.2).
type EvenDistribution struct{}

// Name implements Policy.
func (EvenDistribution) Name() string { return "even-distribution" }

// Assign implements Policy.
func (EvenDistribution) Assign(ctx *Context, hs []*hlop.HLOP) (float64, error) {
	if len(hs) == 0 {
		return 0, nil
	}
	el := ctx.EligibleFor(hs[0].Op)
	for i, h := range hs {
		h.AssignedQueue = el[i%len(el)]
	}
	return 0, validateQueues(ctx, hs)
}

// StealingEnabled implements Policy.
func (EvenDistribution) StealingEnabled() bool { return false }

// CanSteal implements Policy.
func (EvenDistribution) CanSteal(*Context, int, int, *hlop.HLOP) bool { return false }

// WorkStealing is the basic scheduler of §3.4: an even initial plan, then
// unconstrained stealing between accelerators, letting "faster hardware
// perform more HLOPs and slower hardware [act] as an auxiliary device". It
// applies no quality control, so it bounds SHMT's speedup from above
// (Fig. 6) and its quality from below (Fig. 7).
type WorkStealing struct{}

// Name implements Policy.
func (WorkStealing) Name() string { return "work-stealing" }

// Assign implements Policy.
func (WorkStealing) Assign(ctx *Context, hs []*hlop.HLOP) (float64, error) {
	if len(hs) == 0 {
		return 0, nil
	}
	el := ctx.EligibleFor(hs[0].Op)
	for i, h := range hs {
		h.AssignedQueue = el[i%len(el)]
	}
	return 0, validateQueues(ctx, hs)
}

// StealingEnabled implements Policy.
func (WorkStealing) StealingEnabled() bool { return true }

// CanSteal implements Policy: any accelerator may steal from any other (the
// CPU hosts the runtime and does not take kernel work).
func (WorkStealing) CanSteal(ctx *Context, thief, victim int, h *hlop.HLOP) bool {
	return thief != victim && ctx.IsEligible(thief) && ctx.Reg.Get(thief).Supports(h.Op)
}
