package sched

import (
	"math/rand"
	"testing"

	"shmt/internal/device"
	"shmt/internal/device/cpu"
	"shmt/internal/device/gpu"
	"shmt/internal/device/tpu"
	"shmt/internal/hlop"
	"shmt/internal/sampling"
	"shmt/internal/tensor"
	"shmt/internal/vop"
	"shmt/internal/workload"
)

// testCtx builds the standard cpu/gpu/tpu context (queue indices 0/1/2).
func testCtx(t *testing.T) *Context {
	t.Helper()
	reg, err := device.NewRegistry(cpu.New(1), gpu.New(gpu.Config{}), tpu.New(tpu.Config{}))
	if err != nil {
		t.Fatal(err)
	}
	return &Context{Reg: reg, Seed: 1}
}

// partitioned builds HLOPs over a Mixed workload with criticality structure
// (a modest critical fraction keeps the median criticality at background
// level, which the relative device-limit policy depends on).
func partitioned(t *testing.T, parts int) []*hlop.HLOP {
	t.Helper()
	m := workload.Mixed(256, 256, workload.Profile{CriticalFraction: 0.15, TileSize: 64}, 3)
	v, err := vop.New(vop.OpSobel, m)
	if err != nil {
		t.Fatal(err)
	}
	hs, err := hlop.Partition(v, hlop.Spec{TargetPartitions: parts, MinTile: 8})
	if err != nil {
		t.Fatal(err)
	}
	return hs
}

func TestContextEligibleExcludesCPU(t *testing.T) {
	ctx := testCtx(t)
	el := ctx.Eligible()
	if len(el) != 2 {
		t.Fatalf("eligible = %v", el)
	}
	for _, i := range el {
		if ctx.Reg.Get(i).Kind() == device.CPU {
			t.Fatal("CPU must not take kernel work when accelerators exist")
		}
	}
	if ctx.IsEligible(ctx.Reg.Index("cpu")) {
		t.Fatal("CPU should not be eligible")
	}
	if !ctx.IsEligible(ctx.Reg.Index("gpu")) {
		t.Fatal("GPU should be eligible")
	}
}

func TestContextEligibleFallsBackToCPU(t *testing.T) {
	reg, _ := device.NewRegistry(cpu.New(1))
	ctx := &Context{Reg: reg}
	if el := ctx.Eligible(); len(el) != 1 || el[0] != 0 {
		t.Fatalf("cpu-only eligible = %v", el)
	}
}

// TestContextEligibleQuarantineTiers walks the breaker-driven eligibility
// tiers: healthy accelerators, then any healthy device (the CPU absorbs
// kernel work), then — when everything is quarantined — the raw accelerator
// set so assignments still land somewhere.
func TestContextEligibleQuarantineTiers(t *testing.T) {
	ctx := testCtx(t)
	cpuIdx, gpuIdx, tpuIdx := ctx.Reg.Index("cpu"), ctx.Reg.Index("gpu"), ctx.Reg.Index("tpu")
	quar := map[int]bool{}
	ctx.Quarantined = func(i int) bool { return quar[i] }

	if el := ctx.Eligible(); len(el) != 2 {
		t.Fatalf("healthy eligible = %v", el)
	}
	// One accelerator down: the other carries the kernel work alone.
	quar[gpuIdx] = true
	if el := ctx.Eligible(); len(el) != 1 || el[0] != tpuIdx {
		t.Fatalf("eligible with gpu quarantined = %v, want [%d]", el, tpuIdx)
	}
	if ctx.IsEligible(gpuIdx) {
		t.Fatal("quarantined GPU must not be eligible")
	}
	// All accelerators down: the CPU absorbs.
	quar[tpuIdx] = true
	if el := ctx.Eligible(); len(el) != 1 || el[0] != cpuIdx {
		t.Fatalf("eligible with all accelerators quarantined = %v, want cpu", el)
	}
	// Everything down: the raw accelerator set comes back so the dispatch
	// failure surfaces on a real device instead of deadlocking assignment.
	quar[cpuIdx] = true
	if el := ctx.Eligible(); len(el) != 2 {
		t.Fatalf("eligible with everything quarantined = %v, want raw accelerators", el)
	}

	// StealableVictim mirrors the hook: quarantined queues keep their
	// backlog as probe fodder.
	if ctx.StealableVictim(gpuIdx) {
		t.Fatal("quarantined queue must not be stolen from")
	}
	delete(quar, gpuIdx)
	if !ctx.StealableVictim(gpuIdx) {
		t.Fatal("healthy queue must be stealable")
	}
	// A nil hook means nothing is quarantined.
	ctx.Quarantined = nil
	if !ctx.StealableVictim(tpuIdx) || !ctx.IsEligible(tpuIdx) {
		t.Fatal("nil Quarantined hook must quarantine nothing")
	}
}

func TestAccuracyExtremes(t *testing.T) {
	ctx := testCtx(t)
	if ctx.Reg.Get(ctx.MostAccurate()).Name() != "gpu" {
		t.Fatal("GPU should be the most accurate accelerator")
	}
	if ctx.Reg.Get(ctx.LeastAccurate()).Name() != "tpu" {
		t.Fatal("TPU should be the least accurate accelerator")
	}
}

func TestSingleDevice(t *testing.T) {
	ctx := testCtx(t)
	hs := partitioned(t, 8)
	p := SingleDevice{Device: "tpu"}
	if p.Name() != "tpu-only" {
		t.Fatalf("name = %q", p.Name())
	}
	ovh, err := p.Assign(ctx, hs)
	if err != nil || ovh != 0 {
		t.Fatalf("assign: %v / %g", err, ovh)
	}
	tq := ctx.Reg.Index("tpu")
	for _, h := range hs {
		if h.AssignedQueue != tq {
			t.Fatal("not all HLOPs on the tpu queue")
		}
	}
	if p.StealingEnabled() || p.CanSteal(ctx, 1, 2, hs[0]) {
		t.Fatal("single-device policy must not steal")
	}
	if _, err := (SingleDevice{Device: "dsp"}).Assign(ctx, hs); err == nil {
		t.Fatal("unknown device should error")
	}
}

func TestEvenDistribution(t *testing.T) {
	ctx := testCtx(t)
	hs := partitioned(t, 8)
	p := EvenDistribution{}
	if _, err := p.Assign(ctx, hs); err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, h := range hs {
		counts[h.AssignedQueue]++
	}
	g, tq := ctx.Reg.Index("gpu"), ctx.Reg.Index("tpu")
	if d := counts[g] - counts[tq]; d < -1 || d > 1 {
		t.Fatalf("uneven split: %v", counts)
	}
	if counts[ctx.Reg.Index("cpu")] != 0 {
		t.Fatal("CPU must not receive kernel HLOPs")
	}
	if p.StealingEnabled() {
		t.Fatal("even distribution must not steal")
	}
}

func TestWorkStealingPermissions(t *testing.T) {
	ctx := testCtx(t)
	hs := partitioned(t, 8)
	p := WorkStealing{}
	if _, err := p.Assign(ctx, hs); err != nil {
		t.Fatal(err)
	}
	c, g, tq := ctx.Reg.Index("cpu"), ctx.Reg.Index("gpu"), ctx.Reg.Index("tpu")
	if !p.CanSteal(ctx, g, tq, hs[0]) || !p.CanSteal(ctx, tq, g, hs[0]) {
		t.Fatal("accelerators should steal freely under basic work stealing")
	}
	if p.CanSteal(ctx, c, g, hs[0]) {
		t.Fatal("the CPU must not steal kernel work")
	}
	if p.CanSteal(ctx, g, g, hs[0]) {
		t.Fatal("self-steal should be forbidden")
	}
}

func TestQAWSNames(t *testing.T) {
	cases := map[string]QAWS{
		"QAWS-TS": {Assignment: TopK, Method: sampling.Striding},
		"QAWS-TU": {Assignment: TopK, Method: sampling.UniformRandom},
		"QAWS-TR": {Assignment: TopK, Method: sampling.Reduction},
		"QAWS-LS": {Assignment: DeviceLimits, Method: sampling.Striding},
		"QAWS-LU": {Assignment: DeviceLimits, Method: sampling.UniformRandom},
		"QAWS-LR": {Assignment: DeviceLimits, Method: sampling.Reduction},
	}
	for want, p := range cases {
		if p.Name() != want {
			t.Errorf("name = %q want %q", p.Name(), want)
		}
	}
}

func TestQAWSTopKRoutesCriticalToGPU(t *testing.T) {
	ctx := testCtx(t)
	hs := partitioned(t, 16)
	p := QAWS{Assignment: TopK, Method: sampling.Striding, Rate: 0.01, K: 0.25, W: 16}
	ovh, err := p.Assign(ctx, hs)
	if err != nil {
		t.Fatal(err)
	}
	if ovh <= 0 {
		t.Fatal("sampling must cost something")
	}
	g, tq := ctx.Reg.Index("gpu"), ctx.Reg.Index("tpu")
	var nCrit int
	for _, h := range hs {
		if h.Critical {
			nCrit++
			if h.AssignedQueue != g {
				t.Fatal("critical partition not on the accurate device")
			}
		} else if h.AssignedQueue != tq {
			t.Fatal("non-critical partition not on the TPU queue")
		}
	}
	if want := 4; nCrit != want { // 25% of 16
		t.Fatalf("critical count = %d want %d", nCrit, want)
	}
	// Ranking correctness: every critical partition must out-rank every
	// non-critical one within the (single) window.
	minCrit, maxNon := 1e300, -1e300
	for _, h := range hs {
		if h.Critical && h.Criticality < minCrit {
			minCrit = h.Criticality
		}
		if !h.Critical && h.Criticality > maxNon {
			maxNon = h.Criticality
		}
	}
	if minCrit < maxNon {
		t.Fatalf("top-K ranking violated: %g < %g", minCrit, maxNon)
	}
}

func TestQAWSDeviceLimits(t *testing.T) {
	// Exercise Algorithm 1 directly on known criticalities: 12 background
	// partitions (criticality ~1) and 4 wide ones (~10); the derived limit
	// is 4x the median, so the wide ones must land on the GPU.
	ctx := testCtx(t)
	var hs []*hlop.HLOP
	for i := 0; i < 16; i++ {
		h := &hlop.HLOP{ID: i, Criticality: 1}
		if i%4 == 0 {
			h.Criticality = 10
		}
		hs = append(hs, h)
	}
	p := QAWS{Assignment: DeviceLimits, DefaultTPULimit: 4}
	p.assignLimits(ctx, hs)
	g, tq := ctx.Reg.Index("gpu"), ctx.Reg.Index("tpu")
	for _, h := range hs {
		if h.Criticality == 10 && h.AssignedQueue != g {
			t.Fatal("wide partition not routed to the accurate device")
		}
		if h.Criticality == 1 && h.AssignedQueue != tq {
			t.Fatal("background partition not routed to the TPU")
		}
	}
}

func TestQAWSDeviceLimitsEndToEnd(t *testing.T) {
	// The full sampled path must still be monotone: anything on the GPU
	// ranks at or above anything on the TPU.
	ctx := testCtx(t)
	hs := partitioned(t, 16)
	p := QAWS{Assignment: DeviceLimits, Method: sampling.Striding, Rate: 0.01, DefaultTPULimit: 4}
	if _, err := p.Assign(ctx, hs); err != nil {
		t.Fatal(err)
	}
	g, tq := ctx.Reg.Index("gpu"), ctx.Reg.Index("tpu")
	for _, a := range hs {
		if a.AssignedQueue != g {
			continue
		}
		for _, b := range hs {
			if b.AssignedQueue == tq && a.Criticality < b.Criticality {
				t.Fatal("limit threshold not monotone")
			}
		}
	}
}

func TestQAWSExplicitLimits(t *testing.T) {
	ctx := testCtx(t)
	hs := partitioned(t, 8)
	p := QAWS{Assignment: DeviceLimits, Method: sampling.Striding, Rate: 0.01,
		Limits: []Limit{{Max: 1e12, Queue: ctx.Reg.Index("tpu")}}}
	if _, err := p.Assign(ctx, hs); err != nil {
		t.Fatal(err)
	}
	for _, h := range hs {
		if h.AssignedQueue != ctx.Reg.Index("tpu") {
			t.Fatal("an unbounded explicit limit should route everything to the TPU")
		}
	}
}

func TestQAWSStealOnlyTowardAccuracy(t *testing.T) {
	ctx := testCtx(t)
	p := QAWS{}
	h := &hlop.HLOP{Op: vop.OpSobel}
	g, tq := ctx.Reg.Index("gpu"), ctx.Reg.Index("tpu")
	if !p.CanSteal(ctx, g, tq, h) {
		t.Fatal("the GPU must be able to drain the TPU's queue")
	}
	if p.CanSteal(ctx, tq, g, h) {
		t.Fatal("the TPU must never steal GPU-protected work")
	}
	if p.CanSteal(ctx, ctx.Reg.Index("cpu"), tq, h) {
		t.Fatal("the CPU must not steal kernel work")
	}
}

func TestQAWSSamplingOverheadOrdering(t *testing.T) {
	ctx := testCtx(t)
	rate := 1.0 / (1 << 8)
	var overheads []float64
	for _, m := range []sampling.Method{sampling.Striding, sampling.UniformRandom, sampling.Reduction} {
		hs := partitioned(t, 16)
		p := QAWS{Assignment: TopK, Method: m, Rate: rate}
		ovh, err := p.Assign(ctx, hs)
		if err != nil {
			t.Fatal(err)
		}
		overheads = append(overheads, ovh)
	}
	if !(overheads[0] < overheads[1]) {
		t.Fatalf("striding %g should be cheaper than uniform %g", overheads[0], overheads[1])
	}
	if !(overheads[1] < overheads[2]) {
		t.Fatalf("uniform %g should be cheaper than reduction %g (the paper's slowest)", overheads[1], overheads[2])
	}
}

func TestIRAOverheadDominates(t *testing.T) {
	// At the paper's scale (virtual slowdown 64 standing in for full-size
	// partitions), IRA's canary computation dwarfs QAWS's sampling.
	reg, err := device.NewRegistry(cpu.New(64), gpu.New(gpu.Config{Slowdown: 64}), tpu.New(tpu.Config{Slowdown: 64}))
	if err != nil {
		t.Fatal(err)
	}
	ctx := &Context{Reg: reg, Seed: 1, HostScale: 64}
	hs := partitioned(t, 16)
	ira := IRASampling{}
	iraOvh, err := ira.Assign(ctx, hs)
	if err != nil {
		t.Fatal(err)
	}
	hs2 := partitioned(t, 16)
	qaws := QAWS{Assignment: TopK, Method: sampling.Striding}
	qawsOvh, _ := qaws.Assign(ctx, hs2)
	if iraOvh <= 5*qawsOvh {
		t.Fatalf("IRA canary computation (%g) should dwarf QAWS sampling (%g)", iraOvh, qawsOvh)
	}
	if !ira.StealingEnabled() {
		t.Fatal("IRA schedules on top of work stealing")
	}
}

func TestOracleUsesFullScanAndChargesNothing(t *testing.T) {
	ctx := testCtx(t)
	hs := partitioned(t, 16)
	o := Oracle{K: 0.25}
	ovh, err := o.Assign(ctx, hs)
	if err != nil {
		t.Fatal(err)
	}
	if ovh != 0 {
		t.Fatalf("oracle overhead = %g want 0", ovh)
	}
	if o.StealingEnabled() {
		t.Fatal("oracle fixes the mapping")
	}
	// Global top-K by exact criticality must be on the GPU.
	g := ctx.Reg.Index("gpu")
	var critOnGPU int
	for _, h := range hs {
		if h.Critical {
			critOnGPU++
			if h.AssignedQueue != g {
				t.Fatal("oracle-critical partition not on GPU")
			}
		}
	}
	if critOnGPU != 4 {
		t.Fatalf("oracle critical count = %d", critOnGPU)
	}
}

func TestValidateQueuesRejectsBadAssignment(t *testing.T) {
	ctx := testCtx(t)
	hs := partitioned(t, 4)
	hs[0].AssignedQueue = 99
	if err := validateQueues(ctx, hs); err == nil {
		t.Fatal("invalid queue index should be rejected")
	}
}

func TestEmptyAssignments(t *testing.T) {
	ctx := testCtx(t)
	for _, p := range []Policy{QAWS{}, IRASampling{}, Oracle{}} {
		if ovh, err := p.Assign(ctx, nil); err != nil || ovh != 0 {
			t.Fatalf("%s empty assign: %g, %v", p.Name(), ovh, err)
		}
	}
}

func TestHostScaleMultipliesOverhead(t *testing.T) {
	base := testCtx(t)
	scaled := testCtx(t)
	scaled.HostScale = 16
	p := QAWS{Assignment: TopK, Method: sampling.Striding, Rate: 0.01}
	a, _ := p.Assign(base, partitioned(t, 8))
	b, _ := p.Assign(scaled, partitioned(t, 8))
	if b <= a {
		t.Fatalf("host scale should inflate overhead: %g vs %g", a, b)
	}
}

func TestRandDeterministic(t *testing.T) {
	ctx := testCtx(t)
	a, b := ctx.Rand(), ctx.Rand()
	for i := 0; i < 10; i++ {
		if a.Int63() != b.Int63() {
			t.Fatal("context RNG should be reproducible")
		}
	}
	_ = rand.Int // keep the import honest if helpers change
	_ = tensor.Region{}
}
