package sched

import (
	"fmt"
	"sort"

	"shmt/internal/hlop"
	"shmt/internal/sampling"
)

// Assignment selects which of QAWS's two criticality-to-device mappings to
// use (§3.5).
type Assignment int

const (
	// TopK ranks criticality within a window of partitions and routes the
	// top K% to the most accurate device (Algorithm 2). Policy prefix "T".
	TopK Assignment = iota
	// DeviceLimits compares sampled criticality against per-device hardware
	// limits (Algorithm 1). Policy prefix "L".
	DeviceLimits
)

func (a Assignment) Prefix() string {
	if a == DeviceLimits {
		return "L"
	}
	return "T"
}

// Limit pairs a criticality ceiling with the queue index that accepts
// partitions below it — one entry of Algorithm 1's `limits` input.
type Limit struct {
	Max   float64
	Queue int
}

// QAWS is the quality-aware work-stealing policy family: QAWS-{T,L}{S,U,R}
// in the paper's naming (assignment × sampling mechanism).
type QAWS struct {
	// Assignment picks Algorithm 1 (DeviceLimits) or Algorithm 2 (TopK).
	Assignment Assignment
	// Method is the sampling mechanism (Algorithms 3–5).
	Method sampling.Method
	// Rate is the sampling rate (portion of elements sampled); default
	// 2^-15, the knee of Fig. 9.
	Rate float64
	// K is the top-K fraction for Algorithm 2; zero uses the VOP's
	// CriticalFraction hint, falling back to 0.25.
	K float64
	// W is Algorithm 2's ranking window in partitions (default 16).
	W int
	// Tiers optionally gives Algorithm 2's per-device window fractions in
	// accuracy order ("top-K% ... second-L% ... and so on", §3.5); the last
	// eligible device absorbs any remainder. Empty derives a default from K.
	Tiers []float64
	// Limits is Algorithm 1's device-limit table. Empty derives a default:
	// the least accurate device accepts criticality below DefaultTPULimit
	// and everything else routes to the most accurate device.
	Limits []Limit
	// DefaultTPULimit is the derived criticality ceiling for the least
	// accurate device when Limits is empty, as a multiple of the VOP's
	// median partition criticality (default 2: the INT8 device only accepts
	// partitions whose value spread stays within 1.5x the typical spread,
	// a more conservative gate than Top-K ranking — which is why the
	// paper finds the L-variants slower but comparably accurate).
	DefaultTPULimit float64
}

// Name implements Policy, producing the paper's labels (QAWS-TS … QAWS-LR).
func (p QAWS) Name() string {
	return "QAWS-" + p.Assignment.Prefix() + p.Method.Suffix()
}

func (p QAWS) rate() float64 {
	if p.Rate > 0 {
		return p.Rate
	}
	return 1.0 / (1 << 15)
}

// Assign implements Policy: sample every partition (charging the modelled
// host overhead), then run the selected assignment algorithm.
func (p QAWS) Assign(ctx *Context, hs []*hlop.HLOP) (float64, error) {
	if len(hs) == 0 {
		return 0, nil
	}
	s := sampling.New(p.Method, p.rate(), ctx.Seed)
	overhead := samplePartitions(ctx, s, hs)

	switch p.Assignment {
	case TopK:
		p.assignTopK(ctx, hs)
	case DeviceLimits:
		p.assignLimits(ctx, hs)
	default:
		return 0, fmt.Errorf("sched: unknown QAWS assignment %d", int(p.Assignment))
	}
	return overhead, validateQueues(ctx, hs)
}

// assignTopK is Algorithm 2 in its general multi-tier form: within each
// window of W partitions, the top K% by criticality go to the most accurate
// device, "second-L% to the second-most accurate device, and so on" (§3.5);
// whatever remains lands on the least accurate one. With the default
// two-device accelerator set this degenerates to the paper's binary GPU/TPU
// split.
func (p QAWS) assignTopK(ctx *Context, hs []*hlop.HLOP) {
	w := p.W
	if w <= 0 {
		w = 16
	}
	ordered := ctx.EligibleFor(hs[0].Op) // most accurate first
	tiers := p.tierFractions(hs, len(ordered))

	for start := 0; start < len(hs); start += w {
		end := start + w
		if end > len(hs) {
			end = len(hs)
		}
		window := make([]*hlop.HLOP, end-start)
		copy(window, hs[start:end])
		sort.SliceStable(window, func(a, b int) bool {
			return window[a].Criticality > window[b].Criticality
		})
		j := 0
		for tier, frac := range tiers {
			take := len(window) - j // the final tier absorbs the remainder
			if tier < len(tiers)-1 {
				take = int(float64(len(window))*frac + 0.5)
				if take > len(window)-j {
					take = len(window) - j
				}
			}
			for n := 0; n < take; n++ {
				window[j].AssignedQueue = ordered[tier]
				window[j].Critical = tier == 0
				j++
			}
		}
		for ; j < len(window); j++ { // numeric slack lands on the last tier
			window[j].AssignedQueue = ordered[len(ordered)-1]
			window[j].Critical = false
		}
	}
}

// tierFractions resolves the per-device window fractions for Algorithm 2:
// explicit Tiers win; otherwise the top-K hint feeds the first tier, middle
// devices share half the remainder, and the least accurate device takes the
// rest.
func (p QAWS) tierFractions(hs []*hlop.HLOP, devices int) []float64 {
	if devices < 1 {
		return nil
	}
	if len(p.Tiers) > 0 {
		tiers := make([]float64, devices)
		copy(tiers, p.Tiers)
		return tiers
	}
	k := p.K
	if k <= 0 {
		if cf := hs[0].Parent.CriticalFraction; cf > 0 {
			k = cf
		} else {
			k = 0.25
		}
	}
	if k > 1 {
		k = 1
	}
	// Deadline pressure widens the top tier toward 1: at full pressure every
	// partition in the window lands on the most accurate device, so a
	// tight-deadline request never pays the NPU quality/repair tax.
	if pr := deadlinePressure(hs); pr > 0 {
		k += (1 - k) * pr
	}
	tiers := make([]float64, devices)
	tiers[0] = k
	if devices > 2 {
		mid := (1 - k) / 2 / float64(devices-2)
		for i := 1; i < devices-1; i++ {
			tiers[i] = mid
		}
	}
	if devices > 1 {
		var used float64
		for _, f := range tiers[:devices-1] {
			used += f
		}
		tiers[devices-1] = 1 - used
	}
	return tiers
}

// assignLimits is Algorithm 1: walk the limit table in ascending-ceiling
// order and place the partition on the first queue whose limit exceeds its
// criticality; partitions over every limit default to the most accurate
// queue.
//
// When no explicit table is given, the default limit is *relative*: INT8
// quantization error scales with a partition's value spread relative to the
// data's typical spread, so the Edge TPU's hardware limit is expressed as a
// multiple (DefaultTPULimit) of the VOP's median partition
// criticality. An explicit Limits table is taken as absolute ceilings.
func (p QAWS) assignLimits(ctx *Context, hs []*hlop.HLOP) {
	ordered := ctx.EligibleFor(hs[0].Op)
	limits := p.Limits
	if len(limits) == 0 {
		lim := p.DefaultTPULimit
		if lim <= 0 {
			lim = 1.5
		}
		limits = []Limit{{Max: lim * medianCriticality(hs), Queue: ordered[len(ordered)-1]}}
	}
	sorted := append([]Limit(nil), limits...)
	sort.SliceStable(sorted, func(a, b int) bool { return sorted[a].Max < sorted[b].Max })
	// Deadline pressure shrinks every ceiling: partitions that cleared a
	// limit at leisure exceed it under pressure and fall through to the
	// most accurate queue (at full pressure all of them do).
	if pr := deadlinePressure(hs); pr > 0 {
		for i := range sorted {
			sorted[i].Max *= 1 - pr
		}
	}
	def := ordered[0]

	for _, h := range hs {
		h.AssignedQueue = def
		h.Critical = true
		for _, l := range sorted {
			if h.Criticality < l.Max {
				h.AssignedQueue = l.Queue
				h.Critical = l.Queue == def
				break
			}
		}
	}
}

// deadlinePressure reads the partitions' parent VOP's clamped deadline
// pressure (0 when there is no parent or no pressure). All of a VOP's
// partitions share one parent, so hs[0] speaks for the batch.
func deadlinePressure(hs []*hlop.HLOP) float64 {
	if len(hs) == 0 || hs[0].Parent == nil {
		return 0
	}
	pr := hs[0].Parent.DeadlinePressure
	if pr <= 0 {
		return 0
	}
	if pr > 1 {
		pr = 1
	}
	return pr
}

// medianCriticality returns the median sampled criticality (0 for no HLOPs).
func medianCriticality(hs []*hlop.HLOP) float64 {
	if len(hs) == 0 {
		return 0
	}
	vals := make([]float64, len(hs))
	for i, h := range hs {
		vals[i] = h.Criticality
	}
	sort.Float64s(vals)
	return vals[len(vals)/2]
}

// StealingEnabled implements Policy.
func (QAWS) StealingEnabled() bool { return true }

// CanSteal implements Policy: a device may only steal work routed to devices
// of equal or lower accuracy ("QAWS only allows a device with higher
// accuracy to steal HLOPs from another device with the same or a lower
// accuracy", §3.5) — so the GPU drains the TPU's backlog but never the
// reverse.
func (p QAWS) CanSteal(ctx *Context, thief, victim int, h *hlop.HLOP) bool {
	if thief == victim || !ctx.IsEligible(thief) || !ctx.Reg.Get(thief).Supports(h.Op) {
		return false
	}
	return ctx.Reg.Get(thief).AccuracyRank() <= ctx.Reg.Get(victim).AccuracyRank()
}
