package sched

import (
	"sort"

	"shmt/internal/device"
	"shmt/internal/hlop"
	"shmt/internal/sampling"
)

// IRACanaryRate is the fraction of each partition IRA actually computes as
// its canary input. Calibrated so the full IRA-sampling baseline lands near
// the paper's measurement ("implementing the full features of IRA-sampling
// will result in a 45% slowdown and render SHMT unusable", §5.2): the canary
// runs serially on the host before any HLOP dispatches.
const IRACanaryRate = 1.0 / 24

// IRASampling reproduces the input-responsiveness-approximation baseline
// (Laurenzano et al., PLDI'16) the paper compares QAWS against: it runs the
// actual kernel on a canary subset of every partition to judge quality
// impact, then assigns like Top-K. Quality is excellent (Fig. 7's best
// non-oracle MAPE) but the canary computation makes it slower than the GPU
// baseline.
type IRASampling struct {
	// K is the critical fraction (default: the VOP hint, then 0.25).
	K float64
}

// Name implements Policy.
func (IRASampling) Name() string { return "IRA-sampling" }

// Assign implements Policy.
func (p IRASampling) Assign(ctx *Context, hs []*hlop.HLOP) (float64, error) {
	if len(hs) == 0 {
		return 0, nil
	}
	// IRA evaluates the canary with a dense strided read of the partition,
	// then computes on it; criticality is exact over the canary subset.
	s := sampling.New(sampling.Striding, IRACanaryRate, ctx.Seed)
	var overhead float64
	var cpu device.Device
	for _, d := range ctx.Reg.Devices() {
		if d.Kind() == device.CPU {
			cpu = d
			break
		}
	}
	// Equal-size partitions yield the same canary size, so memoize the cost
	// model instead of re-evaluating it per HLOP.
	etc := device.NewExecTimeCache()
	for _, h := range hs {
		vals := s.SampleRegion(h.Inputs[0], h.InputRegion())
		h.Criticality = sampling.Criticality(vals)
		canaryElems := len(vals)
		if cpu != nil {
			// The canary *computation* is the expensive part: the kernel
			// itself runs over the canary subset on the host.
			overhead += etc.ExecTime(cpu, h.Op, canaryElems) + cpu.DispatchOverhead()
		} else {
			overhead += float64(canaryElems) * TouchCostStriding * 50 * ctx.hostScale()
		}
		overhead += float64(canaryElems)*TouchCostStriding*ctx.hostScale() + PerPartitionCost
	}

	k := p.K
	if k <= 0 {
		if cf := hs[0].Parent.CriticalFraction; cf > 0 {
			k = cf
		} else {
			k = 0.25
		}
	}
	ordered := ctx.EligibleFor(hs[0].Op)
	accurate, loose := ordered[0], ordered[len(ordered)-1]
	ranked := make([]*hlop.HLOP, len(hs))
	copy(ranked, hs)
	sort.SliceStable(ranked, func(a, b int) bool {
		return ranked[a].Criticality > ranked[b].Criticality
	})
	topK := int(float64(len(ranked))*k + 0.5)
	for i, h := range ranked {
		if i < topK {
			h.AssignedQueue = accurate
			h.Critical = true
		} else {
			h.AssignedQueue = loose
		}
	}
	return overhead, validateQueues(ctx, hs)
}

// StealingEnabled implements Policy.
func (IRASampling) StealingEnabled() bool { return true }

// CanSteal implements Policy: same accuracy-ordered constraint as QAWS.
func (IRASampling) CanSteal(ctx *Context, thief, victim int, h *hlop.HLOP) bool {
	if thief == victim || !ctx.IsEligible(thief) || !ctx.Reg.Get(thief).Supports(h.Op) {
		return false
	}
	return ctx.Reg.Get(thief).AccuracyRank() <= ctx.Reg.Get(victim).AccuracyRank()
}

// Oracle assigns criticality from a full, free scan of every partition —
// the paper's "oracle" scenario "where we manually identify critical input
// data regions and assign HLOPs accordingly without considering the
// performance" (§5.3). No overhead is charged; it exists to bound quality.
type Oracle struct {
	// K is the critical fraction (default: the VOP hint, then 0.25).
	K float64
}

// Name implements Policy.
func (Oracle) Name() string { return "oracle" }

// Assign implements Policy.
func (p Oracle) Assign(ctx *Context, hs []*hlop.HLOP) (float64, error) {
	if len(hs) == 0 {
		return 0, nil
	}
	for _, h := range hs {
		// Full-scan criticality: exact range and deviation of the input.
		reg := h.InputRegion()
		vals := make([]float64, 0, reg.Len())
		for i := 0; i < reg.Height; i++ {
			row := (reg.Row + i) * h.Inputs[0].Cols
			vals = append(vals, h.Inputs[0].Data[row+reg.Col:row+reg.Col+reg.Width]...)
		}
		h.Criticality = sampling.Criticality(vals)
	}
	k := p.K
	if k <= 0 {
		if cf := hs[0].Parent.CriticalFraction; cf > 0 {
			k = cf
		} else {
			k = 0.25
		}
	}
	ordered := ctx.EligibleFor(hs[0].Op)
	accurate, loose := ordered[0], ordered[len(ordered)-1]
	ranked := make([]*hlop.HLOP, len(hs))
	copy(ranked, hs)
	sort.SliceStable(ranked, func(a, b int) bool {
		return ranked[a].Criticality > ranked[b].Criticality
	})
	topK := int(float64(len(ranked))*k + 0.5)
	for i, h := range ranked {
		if i < topK {
			h.AssignedQueue = accurate
			h.Critical = true
		} else {
			h.AssignedQueue = loose
		}
	}
	return 0, validateQueues(ctx, hs)
}

// StealingEnabled implements Policy: the oracle fixes the mapping outright.
func (Oracle) StealingEnabled() bool { return false }

// CanSteal implements Policy.
func (Oracle) CanSteal(*Context, int, int, *hlop.HLOP) bool { return false }
