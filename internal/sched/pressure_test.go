package sched

import "testing"

// TestQAWSTopKDeadlinePressure: raising the parent VOP's DeadlinePressure
// must monotonically widen the top tier, and at full pressure every
// partition lands critical on the most accurate device.
func TestQAWSTopKDeadlinePressure(t *testing.T) {
	ctx := testCtx(t)
	pol := QAWS{Assignment: TopK, K: 0.25}

	criticalAt := func(pr float64) int {
		hs := partitioned(t, 64)
		hs[0].Parent.DeadlinePressure = pr
		if _, err := pol.Assign(ctx, hs); err != nil {
			t.Fatal(err)
		}
		n := 0
		for _, h := range hs {
			if h.Critical {
				n++
			}
		}
		return n
	}

	base := criticalAt(0)
	mid := criticalAt(0.5)
	full := criticalAt(1)
	if base >= mid || mid >= full {
		t.Fatalf("critical counts not monotone in pressure: base %d, mid %d, full %d", base, mid, full)
	}

	hs := partitioned(t, 64)
	hs[0].Parent.DeadlinePressure = 1
	if _, err := pol.Assign(ctx, hs); err != nil {
		t.Fatal(err)
	}
	top := ctx.EligibleFor(hs[0].Op)[0]
	for i, h := range hs {
		if !h.Critical || h.AssignedQueue != top {
			t.Fatalf("partition %d at full pressure: critical=%v queue=%d, want critical on queue %d",
				i, h.Critical, h.AssignedQueue, top)
		}
	}
}

// TestQAWSLimitsDeadlinePressure: under DeviceLimits, full pressure shrinks
// every ceiling to zero so all partitions fall through to the most accurate
// queue; without pressure the default relative limit still splits the work.
func TestQAWSLimitsDeadlinePressure(t *testing.T) {
	ctx := testCtx(t)
	pol := QAWS{Assignment: DeviceLimits, Rate: 0.01, DefaultTPULimit: 4}

	hs := partitioned(t, 64)
	if _, err := pol.Assign(ctx, hs); err != nil {
		t.Fatal(err)
	}
	ordered := ctx.EligibleFor(hs[0].Op)
	low := 0
	for _, h := range hs {
		if h.AssignedQueue == ordered[len(ordered)-1] {
			low++
		}
	}
	if low == 0 {
		t.Fatal("baseline: no partition landed on the least accurate device — limit policy inert")
	}

	hs = partitioned(t, 64)
	hs[0].Parent.DeadlinePressure = 1
	if _, err := pol.Assign(ctx, hs); err != nil {
		t.Fatal(err)
	}
	for i, h := range hs {
		if h.AssignedQueue != ordered[0] || !h.Critical {
			t.Fatalf("partition %d at full pressure on queue %d (critical=%v), want critical on most accurate queue %d",
				i, h.AssignedQueue, h.Critical, ordered[0])
		}
	}
}
