// Package sched implements SHMT's scheduling policies (§3.4–3.5): even
// distribution, the basic work-stealing scheduler, the six QAWS variants
// (two assignment algorithms × three sampling mechanisms), and the
// IRA-sampling and oracle reference policies the evaluation compares
// against.
//
// A policy does two things: it produces the initial HLOP→queue assignment
// (possibly after sampling partition criticality), and it constrains work
// stealing so a less-accurate device never takes over work the policy routed
// to a more-accurate one.
package sched

import (
	"fmt"
	"math/rand"
	"sort"

	"shmt/internal/device"
	"shmt/internal/hlop"
	"shmt/internal/sampling"
	"shmt/internal/telemetry"
	"shmt/internal/vop"
)

// Context gives policies access to the device registry and reproducible
// randomness.
type Context struct {
	Reg  *device.Registry
	Seed int64
	// HostScale ≥ 1 multiplies host-side constant sampling costs, matching
	// the virtual-platform slowdown of the devices (see the engine's
	// HostScale). Zero is treated as 1.
	HostScale float64
	// Quarantined, when non-nil, reports whether the device at a queue index
	// is quarantined by the engine's circuit breaker (see internal/core).
	// Eligible filters quarantined devices out so new work routes around
	// them; nil means no device is quarantined.
	Quarantined func(i int) bool
}

// quarantined reports queue i's breaker state, tolerating a nil hook.
func (c *Context) quarantined(i int) bool {
	return c.Quarantined != nil && c.Quarantined(i)
}

func (c *Context) hostScale() float64 {
	if c.HostScale < 1 {
		return 1
	}
	return c.HostScale
}

// Rand returns a seeded RNG (fresh per call so policies stay independent).
func (c *Context) Rand() *rand.Rand { return rand.New(rand.NewSource(c.Seed)) }

// Eligible returns the queue indices a policy distributes kernel work
// across: the accelerators (GPU, TPU). The CPU hosts the runtime — it
// samples, aggregates and orchestrates, as on the prototype platform — and
// only receives kernel HLOPs when it is the sole device.
//
// Quarantined devices are filtered out in tiers: healthy accelerators first,
// then any healthy device (the CPU absorbs kernel work when every
// accelerator is quarantined), and only when everything is quarantined does
// the unfiltered set come back — assignments must land somewhere, and the
// dispatch failure there surfaces the real error.
func (c *Context) Eligible() []int {
	var accel, accelOK, anyOK []int
	for i, d := range c.Reg.Devices() {
		q := c.quarantined(i)
		if d.Kind() != device.CPU {
			accel = append(accel, i)
			if !q {
				accelOK = append(accelOK, i)
			}
		}
		if !q {
			anyOK = append(anyOK, i)
		}
	}
	switch {
	case len(accelOK) > 0:
		return accelOK
	case len(anyOK) > 0:
		return anyOK
	case len(accel) > 0:
		return accel
	}
	idx := make([]int, c.Reg.Len())
	for i := range idx {
		idx[i] = i
	}
	return idx
}

// EligibleFor returns the eligible queues whose device registered an HLOP
// implementation for op, in ascending accuracy-rank order (most accurate
// first). A device that never advertised the opcode must not be assigned or
// steal its HLOPs (§3.3: drivers provide "its list of available HLOPs").
func (c *Context) EligibleFor(op vop.Opcode) []int {
	var idx []int
	for _, i := range c.Eligible() {
		if c.Reg.Get(i).Supports(op) {
			idx = append(idx, i)
		}
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return c.Reg.Get(idx[a]).AccuracyRank() < c.Reg.Get(idx[b]).AccuracyRank()
	})
	if len(idx) == 0 {
		return c.Eligible() // let execution surface the unsupported-op error
	}
	return idx
}

// StealableVictim reports whether queue v may be stolen from. A quarantined
// device's remaining backlog is reserved as its re-admission probe (see the
// engine's circuit breaker): stealing it would leave a recovered device
// quarantined forever with nothing left to probe.
func (c *Context) StealableVictim(v int) bool { return !c.quarantined(v) }

// IsEligible reports whether queue i belongs to the kernel-eligible device
// set (see Eligible).
func (c *Context) IsEligible(i int) bool {
	for _, e := range c.Eligible() {
		if e == i {
			return true
		}
	}
	return false
}

// MostAccurate returns the eligible queue with the lowest accuracy rank.
func (c *Context) MostAccurate() int {
	el := c.Eligible()
	best := el[0]
	for _, i := range el[1:] {
		if c.Reg.Get(i).AccuracyRank() < c.Reg.Get(best).AccuracyRank() {
			best = i
		}
	}
	return best
}

// LeastAccurate returns the eligible queue with the highest accuracy rank.
func (c *Context) LeastAccurate() int {
	el := c.Eligible()
	best := el[0]
	for _, i := range el[1:] {
		if c.Reg.Get(i).AccuracyRank() > c.Reg.Get(best).AccuracyRank() {
			best = i
		}
	}
	return best
}

// Policy is one scheduling policy.
type Policy interface {
	// Name is the label used in reports (matches the paper's legend:
	// "work-stealing", "QAWS-TS", ...).
	Name() string
	// Assign sets AssignedQueue (and criticality fields) on every HLOP and
	// returns the scheduling overhead in seconds to charge before dispatch
	// (sampling cost, IRA's canary computation, ...).
	Assign(ctx *Context, hs []*hlop.HLOP) (overheadSec float64, err error)
	// StealingEnabled reports whether idle devices may steal at all.
	StealingEnabled() bool
	// CanSteal reports whether the device at thief queue may take over an
	// HLOP currently assigned to victim queue.
	CanSteal(ctx *Context, thief, victim int, h *hlop.HLOP) bool
}

// Host sampling cost calibration (seconds per touched element). Striding
// walks sequentially; uniform random touches scattered cache lines;
// reduction's multi-dimensional strided lattice is the most cache-hostile —
// the paper finds it the slowest mechanism (§5.2: "reduction performs the
// worst due to the relatively higher sampling overhead").
const (
	TouchCostStriding  = 15e-9
	TouchCostUniform   = 25e-9
	TouchCostReduction = 30e-9
	// PerPartitionCost covers the fixed per-partition scheduling work beyond
	// the raw sampling touches: criticality statistics, the ranking insert,
	// and the queue-assignment round trip through the virtual-device driver
	// interface (a kernel-module call on the prototype). Calibrated so the
	// total quality-control overhead lands near the paper's measured
	// work-stealing -> QAWS-TS gap (2.07x -> 1.95x).
	PerPartitionCost = 50e-6
)

func touchCost(m sampling.Method) float64 {
	switch m {
	case sampling.UniformRandom:
		return TouchCostUniform
	case sampling.Reduction:
		return TouchCostReduction
	default:
		return TouchCostStriding
	}
}

// samplePartitions runs the sampler over every HLOP, fills Criticality, and
// returns the modelled host-side sampling overhead. The sampler inherits
// the context's virtual-platform scale so touch counts (and therefore the
// charged cost) match the full-size run; the partition count itself is
// scale-invariant, so the per-partition bookkeeping cost is not scaled.
func samplePartitions(ctx *Context, s *sampling.Sampler, hs []*hlop.HLOP) float64 {
	s.Scale = ctx.hostScale()
	var overhead float64
	var touches int64
	cost := touchCost(s.Method)
	record := telemetry.On()
	for _, h := range hs {
		reg := h.InputRegion()
		vals := s.SampleRegion(h.Inputs[0], reg)
		h.Criticality = sampling.Criticality(vals)
		overhead += float64(s.CostSamples(reg.Len()))*cost + PerPartitionCost
		if record {
			touches += int64(s.CostSamples(reg.Len()))
			telemetry.Criticality.Observe(h.Criticality)
		}
	}
	if record {
		telemetry.SampledPartitions.Add(int64(len(hs)))
		telemetry.SampleTouches.Add(touches)
	}
	return overhead
}

// validateQueues checks every assignment lands on an existing queue.
func validateQueues(ctx *Context, hs []*hlop.HLOP) error {
	n := ctx.Reg.Len()
	for _, h := range hs {
		if h.AssignedQueue < 0 || h.AssignedQueue >= n {
			return fmt.Errorf("sched: HLOP %d assigned to invalid queue %d", h.ID, h.AssignedQueue)
		}
	}
	return nil
}
