// Package simclock provides the deterministic virtual-time substrate the
// SHMT engine schedules on.
//
// The paper measures end-to-end latency on a physical Jetson Nano + Edge
// TPU board. This reproduction replaces the board's wall clock with
// discrete-event virtual time: each processing resource owns a Timeline that
// advances by modelled execution and transfer costs. Scheduling decisions
// (queue depths, stealing) read these timelines, so the dynamics the paper's
// runtime exhibits — faster devices draining more HLOPs, stealing from the
// most-loaded queue — play out identically, just against modelled instead of
// measured durations.
package simclock

import "fmt"

// Seconds is virtual time in seconds.
type Seconds = float64

// Interval is a half-open busy span [Start, End) on a timeline.
type Interval struct {
	Start, End Seconds
	Label      string
}

// Duration returns End-Start.
func (iv Interval) Duration() Seconds { return iv.End - iv.Start }

// Timeline is one resource's clock. The zero value is ready to use.
type Timeline struct {
	name      string
	now       Seconds
	busy      Seconds
	intervals []Interval
	record    bool
}

// NewTimeline names a fresh timeline. If record is true every busy interval
// is kept for tracing.
func NewTimeline(name string, record bool) *Timeline {
	return &Timeline{name: name, record: record}
}

// Name returns the resource name.
func (t *Timeline) Name() string { return t.name }

// Now returns the resource's current virtual time.
func (t *Timeline) Now() Seconds { return t.now }

// BusyTime returns the total time the resource spent executing.
func (t *Timeline) BusyTime() Seconds { return t.busy }

// Intervals returns recorded busy intervals (nil unless recording).
func (t *Timeline) Intervals() []Interval { return t.intervals }

// Advance executes work of duration d starting now, returning the busy
// interval. Negative durations panic: the engine must never model negative
// cost.
func (t *Timeline) Advance(d Seconds, label string) Interval {
	if d < 0 {
		panic(fmt.Sprintf("simclock: negative duration %g on %s", d, t.name))
	}
	iv := Interval{Start: t.now, End: t.now + d, Label: label}
	t.now = iv.End
	t.busy += d
	if t.record {
		t.intervals = append(t.intervals, iv)
	}
	return iv
}

// WaitUntil idles the resource until at least ts (no-op if already past).
func (t *Timeline) WaitUntil(ts Seconds) {
	if ts > t.now {
		t.now = ts
	}
}

// Reset rewinds the timeline to zero, discarding history.
func (t *Timeline) Reset() {
	t.now, t.busy, t.intervals = 0, 0, nil
}

// Makespan returns the latest Now() across timelines — the end-to-end
// virtual latency of the run.
func Makespan(ts []*Timeline) Seconds {
	var m Seconds
	for _, t := range ts {
		if t.Now() > m {
			m = t.Now()
		}
	}
	return m
}
