package simclock

import "testing"

func TestAdvance(t *testing.T) {
	tl := NewTimeline("gpu", false)
	iv := tl.Advance(2.5, "kernel")
	if iv.Start != 0 || iv.End != 2.5 || iv.Duration() != 2.5 {
		t.Fatalf("interval = %+v", iv)
	}
	if tl.Now() != 2.5 || tl.BusyTime() != 2.5 {
		t.Fatalf("now=%g busy=%g", tl.Now(), tl.BusyTime())
	}
	tl.Advance(1, "next")
	if tl.Now() != 3.5 {
		t.Fatalf("now = %g", tl.Now())
	}
}

func TestWaitUntil(t *testing.T) {
	tl := NewTimeline("tpu", false)
	tl.WaitUntil(5)
	if tl.Now() != 5 || tl.BusyTime() != 0 {
		t.Fatal("WaitUntil should idle, not work")
	}
	tl.WaitUntil(3) // no going backwards
	if tl.Now() != 5 {
		t.Fatal("WaitUntil moved time backwards")
	}
}

func TestRecordingIntervals(t *testing.T) {
	tl := NewTimeline("cpu", true)
	tl.Advance(1, "a")
	tl.Advance(2, "b")
	ivs := tl.Intervals()
	if len(ivs) != 2 || ivs[0].Label != "a" || ivs[1].Label != "b" {
		t.Fatalf("intervals = %+v", ivs)
	}
	if ivs[1].Start != 1 || ivs[1].End != 3 {
		t.Fatalf("second interval = %+v", ivs[1])
	}
	off := NewTimeline("x", false)
	off.Advance(1, "a")
	if off.Intervals() != nil {
		t.Fatal("non-recording timeline kept intervals")
	}
}

func TestNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on negative duration")
		}
	}()
	NewTimeline("bad", false).Advance(-1, "x")
}

func TestReset(t *testing.T) {
	tl := NewTimeline("gpu", true)
	tl.Advance(4, "x")
	tl.Reset()
	if tl.Now() != 0 || tl.BusyTime() != 0 || tl.Intervals() != nil {
		t.Fatal("reset incomplete")
	}
	if tl.Name() != "gpu" {
		t.Fatal("reset lost the name")
	}
}

func TestMakespan(t *testing.T) {
	a := NewTimeline("a", false)
	b := NewTimeline("b", false)
	a.Advance(3, "x")
	b.Advance(7, "y")
	if Makespan([]*Timeline{a, b}) != 7 {
		t.Fatalf("makespan = %g", Makespan([]*Timeline{a, b}))
	}
	if Makespan(nil) != 0 {
		t.Fatal("empty makespan should be 0")
	}
}
