// Package tensor provides the dense numeric containers that SHMT moves
// between devices: 1-D vectors and 2-D row-major matrices of float64, plus
// the strided region copies the runtime uses to scatter and gather HLOP
// partitions (the role cudaMemcpy2D plays in the paper's prototype).
//
// All SHMT-visible data is held in float64 on the host; devices convert to
// their native precision (FP32 on the GPU, INT8 on the Edge TPU) at the
// boundary, exactly as the paper's runtime performs data-type casting before
// distributing input data.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense row-major 2-D array. The zero value is an empty matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64
}

// NewMatrix allocates a Rows×Cols matrix of zeros.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying.
// len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if rows*cols != len(data) {
		return nil, fmt.Errorf("tensor: %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.Cols+c] }

// Set stores v at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.Cols+c] = v }

// Len returns the number of elements.
func (m *Matrix) Len() int { return m.Rows * m.Cols }

// Bytes returns the footprint of the matrix payload in bytes at the given
// element width (8 for FP64, 4 for FP32, 1 for INT8).
func (m *Matrix) Bytes(elemSize int) int64 { return int64(m.Len()) * int64(elemSize) }

// Clone returns a deep copy.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	copy(out.Data, m.Data)
	return out
}

// Equal reports whether two matrices have identical shape and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i, v := range m.Data {
		if v != o.Data[i] && !(math.IsNaN(v) && math.IsNaN(o.Data[i])) {
			return false
		}
	}
	return true
}

// Region identifies a rectangular sub-block of a matrix.
type Region struct {
	Row, Col      int // top-left corner
	Height, Width int
}

// Len returns the number of elements covered by the region.
func (r Region) Len() int { return r.Height * r.Width }

// Bytes returns the payload size of the region at elemSize bytes per element.
func (r Region) Bytes(elemSize int) int64 { return int64(r.Len()) * int64(elemSize) }

// In reports whether the region lies entirely inside an rows×cols matrix.
func (r Region) In(rows, cols int) bool {
	return r.Row >= 0 && r.Col >= 0 && r.Height >= 0 && r.Width >= 0 &&
		r.Row+r.Height <= rows && r.Col+r.Width <= cols
}

func (r Region) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d]", r.Row, r.Row+r.Height, r.Col, r.Col+r.Width)
}

// ErrRegionBounds is returned when a region does not fit in its matrix.
var ErrRegionBounds = errors.New("tensor: region out of bounds")

// CopyOut extracts region r of src into a Height×Width matrix drawn from
// the scratch arena (every element is overwritten, so no zeroing pass is
// needed). It is the gather half of the runtime's cudaMemcpy2D equivalent;
// callers on the steady-state path return the block with PutMatrix.
func CopyOut(src *Matrix, r Region) (*Matrix, error) {
	if !r.In(src.Rows, src.Cols) {
		return nil, fmt.Errorf("%w: %v in %dx%d", ErrRegionBounds, r, src.Rows, src.Cols)
	}
	dst := GetMatrixUninit(r.Height, r.Width)
	for i := 0; i < r.Height; i++ {
		srcOff := (r.Row+i)*src.Cols + r.Col
		copy(dst.Data[i*r.Width:(i+1)*r.Width], src.Data[srcOff:srcOff+r.Width])
	}
	return dst, nil
}

// CopyIn writes block into region r of dst. Block must be exactly
// r.Height×r.Width. It is the scatter half used during aggregation.
func CopyIn(dst *Matrix, r Region, block *Matrix) error {
	if !r.In(dst.Rows, dst.Cols) {
		return fmt.Errorf("%w: %v in %dx%d", ErrRegionBounds, r, dst.Rows, dst.Cols)
	}
	if block.Rows != r.Height || block.Cols != r.Width {
		return fmt.Errorf("tensor: block %dx%d does not match region %v", block.Rows, block.Cols, r)
	}
	for i := 0; i < r.Height; i++ {
		dstOff := (r.Row+i)*dst.Cols + r.Col
		copy(dst.Data[dstOff:dstOff+r.Width], block.Data[i*r.Width:(i+1)*r.Width])
	}
	return nil
}

// CopyOutHalo extracts region r of src expanded by up to halo real cells on
// every side, truncating at the matrix edges. Stencil kernels (Hotspot,
// Sobel, Laplacian, MeanFilter, SRAD) need neighbouring rows and columns
// from adjacent partitions; the runtime ships them along with the partition,
// which is also how the paper's data distribution avoids inter-device
// synchronization within a VOP.
//
// Truncation (rather than replicate padding) makes the block's edges
// coincide with the true matrix edges wherever the region touches them, so a
// clamp-boundary kernel run over the block computes exactly the
// whole-matrix semantics on the interior — including for iterated stencils,
// where replicated padding rows would evolve divergently.
//
// The returned region locates the interior block inside the returned matrix.
func CopyOutHalo(src *Matrix, r Region, halo int) (*Matrix, Region, error) {
	if !r.In(src.Rows, src.Cols) {
		return nil, Region{}, fmt.Errorf("%w: %v in %dx%d", ErrRegionBounds, r, src.Rows, src.Cols)
	}
	if halo < 0 {
		return nil, Region{}, fmt.Errorf("tensor: negative halo %d", halo)
	}
	top := min(halo, r.Row)
	left := min(halo, r.Col)
	bottom := min(halo, src.Rows-(r.Row+r.Height))
	right := min(halo, src.Cols-(r.Col+r.Width))
	big := Region{
		Row: r.Row - top, Col: r.Col - left,
		Height: r.Height + top + bottom, Width: r.Width + left + right,
	}
	blk, err := CopyOut(src, big)
	if err != nil {
		return nil, Region{}, err
	}
	return blk, Region{Row: top, Col: left, Height: r.Height, Width: r.Width}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ToFloat32 converts the matrix payload to float32, the GPU's native
// precision.
func (m *Matrix) ToFloat32() []float32 {
	out := make([]float32, len(m.Data))
	for i, v := range m.Data {
		out[i] = float32(v)
	}
	return out
}

// FromFloat32 builds a float64 matrix from FP32 device output.
func FromFloat32(rows, cols int, data []float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i, v := range data {
		m.Data[i] = float64(v)
	}
	return m
}

// Stats summarises the value distribution of a slice: the two criticality
// metrics QAWS uses (data range and standard deviation) plus the mean.
type Stats struct {
	Min, Max, Mean, Std float64
	N                   int
}

// Range returns Max-Min.
func (s Stats) Range() float64 { return s.Max - s.Min }

// Summarize computes Stats over data. Empty input yields a zero Stats.
func Summarize(data []float64) Stats {
	if len(data) == 0 {
		return Stats{}
	}
	s := Stats{Min: data[0], Max: data[0], N: len(data)}
	var sum float64
	for _, v := range data {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(data))
	var ss float64
	for _, v := range data {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(data)))
	return s
}
