// Package tensor provides the dense numeric containers that SHMT moves
// between devices: 1-D vectors and 2-D row-major matrices of float64, plus
// the strided region copies the runtime uses to scatter and gather HLOP
// partitions (the role cudaMemcpy2D plays in the paper's prototype).
//
// All SHMT-visible data is held in float64 on the host; devices convert to
// their native precision (FP32 on the GPU, INT8 on the Edge TPU) at the
// boundary, exactly as the paper's runtime performs data-type casting before
// distributing input data.
package tensor

import (
	"errors"
	"fmt"
	"math"
)

// ElemSize is the width in bytes of the host element type (float64). All
// host-side footprint accounting is in units of ElemSize; devices narrow to
// their native width at the boundary via Device.ElemBytes.
const ElemSize = 8

// Matrix is a dense row-major 2-D array. The zero value is an empty matrix.
//
// A Matrix is either an owner (dense, contiguous storage) or a view carved
// out of another matrix by View: same element type, but consecutive rows may
// be separated by a row stride larger than Cols. Owners always have
// Stride == 0.
type Matrix struct {
	Rows, Cols int
	// Stride is the distance in elements between the starts of consecutive
	// rows. Zero means dense: the effective stride equals Cols. Only views
	// ever carry a non-zero stride.
	Stride int
	Data   []float64
	view   bool
}

// NewMatrix allocates a Rows×Cols matrix of zeros.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("tensor: negative dimensions %dx%d", rows, cols))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// FromSlice wraps data as a rows×cols matrix without copying.
// len(data) must equal rows*cols.
func FromSlice(rows, cols int, data []float64) (*Matrix, error) {
	if rows*cols != len(data) {
		return nil, fmt.Errorf("tensor: %dx%d needs %d elements, got %d", rows, cols, rows*cols, len(data))
	}
	return &Matrix{Rows: rows, Cols: cols, Data: data}, nil
}

// RowStride returns the distance in elements between consecutive row starts:
// Stride for views that carry one, Cols otherwise.
func (m *Matrix) RowStride() int {
	if m.Stride > 0 {
		return m.Stride
	}
	return m.Cols
}

// IsView reports whether the matrix aliases storage owned by another matrix.
// Views must never be recycled into the arena; PutMatrix refuses them.
func (m *Matrix) IsView() bool { return m.view }

// IsContiguous reports whether the logical elements occupy one gap-free run
// of Data, i.e. Data[0:Rows*Cols] is exactly the row-major payload. Matrices
// with at most one row are always contiguous regardless of stride.
func (m *Matrix) IsContiguous() bool {
	return m.Rows <= 1 || m.Stride == 0 || m.Stride == m.Cols
}

// View returns a strided window onto region r of m without copying. The view
// aliases m's storage: writes through the view land in m. Views compose —
// taking a view of a view yields a view into the original storage.
func (m *Matrix) View(r Region) (*Matrix, error) {
	if !r.In(m.Rows, m.Cols) {
		return nil, fmt.Errorf("%w: view %v in %dx%d", ErrRegionBounds, r, m.Rows, m.Cols)
	}
	s := m.RowStride()
	v := &Matrix{Rows: r.Height, Cols: r.Width, Stride: s, view: true}
	if r.Height > 0 && r.Width > 0 {
		off := r.Row*s + r.Col
		n := (r.Height-1)*s + r.Width
		v.Data = m.Data[off : off+n : off+n]
	}
	return v, nil
}

// ViewInto writes the strided window onto region r of m into dst, with the
// same semantics as View but no per-view heap allocation. Callers that build
// many views at once (plan replay rebinds every partition of a VOP) point dst
// at slots of one backing array. dst is fully overwritten.
func (m *Matrix) ViewInto(dst *Matrix, r Region) error {
	if !r.In(m.Rows, m.Cols) {
		return fmt.Errorf("%w: view %v in %dx%d", ErrRegionBounds, r, m.Rows, m.Cols)
	}
	s := m.RowStride()
	*dst = Matrix{Rows: r.Height, Cols: r.Width, Stride: s, view: true}
	if r.Height > 0 && r.Width > 0 {
		off := r.Row*s + r.Col
		n := (r.Height-1)*s + r.Width
		dst.Data = m.Data[off : off+n : off+n]
	}
	return nil
}

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) []float64 {
	off := i * m.RowStride()
	return m.Data[off : off+m.Cols]
}

// At returns the element at row r, column c.
func (m *Matrix) At(r, c int) float64 { return m.Data[r*m.RowStride()+c] }

// Set stores v at row r, column c.
func (m *Matrix) Set(r, c int, v float64) { m.Data[r*m.RowStride()+c] = v }

// Len returns the number of elements.
func (m *Matrix) Len() int { return m.Rows * m.Cols }

// Bytes returns the footprint of the matrix payload in bytes at the given
// element width (8 for FP64, 4 for FP32, 1 for INT8).
func (m *Matrix) Bytes(elemSize int) int64 { return int64(m.Len()) * int64(elemSize) }

// Clone returns a deep copy. The clone is always dense, even when m is a
// strided view.
func (m *Matrix) Clone() *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// CopyFrom copies src's elements into m. Shapes must match exactly; either
// side may be a strided view. Contiguous-to-contiguous copies collapse to a
// single memmove; otherwise whole row runs are copied with copy, never an
// element loop.
func (m *Matrix) CopyFrom(src *Matrix) error {
	if m.Rows != src.Rows || m.Cols != src.Cols {
		return fmt.Errorf("tensor: cannot copy %dx%d into %dx%d", src.Rows, src.Cols, m.Rows, m.Cols)
	}
	if m.Len() == 0 {
		return nil
	}
	if m.IsContiguous() && src.IsContiguous() {
		copy(m.Data[:m.Len()], src.Data[:src.Len()])
		return nil
	}
	for i := 0; i < m.Rows; i++ {
		copy(m.Row(i), src.Row(i))
	}
	return nil
}

// Materialize returns a dense copy of m drawn from the scratch arena. The
// caller owns the result and returns it with PutMatrix; m is left untouched.
func Materialize(m *Matrix) *Matrix {
	out := GetMatrixUninit(m.Rows, m.Cols)
	out.CopyFrom(m)
	return out
}

// Equal reports whether two matrices have identical shape and elements.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.Rows != o.Rows || m.Cols != o.Cols {
		return false
	}
	for i := 0; i < m.Rows; i++ {
		mr, or := m.Row(i), o.Row(i)
		for j, v := range mr {
			if v != or[j] && !(math.IsNaN(v) && math.IsNaN(or[j])) {
				return false
			}
		}
	}
	return true
}

// Region identifies a rectangular sub-block of a matrix.
type Region struct {
	Row, Col      int // top-left corner
	Height, Width int
}

// Len returns the number of elements covered by the region.
func (r Region) Len() int { return r.Height * r.Width }

// Bytes returns the payload size of the region at elemSize bytes per element.
func (r Region) Bytes(elemSize int) int64 { return int64(r.Len()) * int64(elemSize) }

// In reports whether the region lies entirely inside an rows×cols matrix.
func (r Region) In(rows, cols int) bool {
	return r.Row >= 0 && r.Col >= 0 && r.Height >= 0 && r.Width >= 0 &&
		r.Row+r.Height <= rows && r.Col+r.Width <= cols
}

func (r Region) String() string {
	return fmt.Sprintf("[%d:%d,%d:%d]", r.Row, r.Row+r.Height, r.Col, r.Col+r.Width)
}

// ErrRegionBounds is returned when a region does not fit in its matrix.
var ErrRegionBounds = errors.New("tensor: region out of bounds")

// CopyOut extracts region r of src into a Height×Width matrix drawn from
// the scratch arena (every element is overwritten, so no zeroing pass is
// needed). It is the gather half of the runtime's cudaMemcpy2D equivalent;
// callers on the steady-state path return the block with PutMatrix.
func CopyOut(src *Matrix, r Region) (*Matrix, error) {
	if !r.In(src.Rows, src.Cols) {
		return nil, fmt.Errorf("%w: %v in %dx%d", ErrRegionBounds, r, src.Rows, src.Cols)
	}
	dst := GetMatrixUninit(r.Height, r.Width)
	if r.Len() == 0 {
		return dst, nil
	}
	s := src.RowStride()
	if r.Col == 0 && r.Width == s {
		// Full-width band of a gap-free source: one memmove instead of a
		// row loop.
		off := r.Row * s
		copy(dst.Data, src.Data[off:off+r.Len()])
		return dst, nil
	}
	for i := 0; i < r.Height; i++ {
		srcOff := (r.Row+i)*s + r.Col
		copy(dst.Data[i*r.Width:(i+1)*r.Width], src.Data[srcOff:srcOff+r.Width])
	}
	return dst, nil
}

// CopyIn writes block into region r of dst. Block must be exactly
// r.Height×r.Width. It is the scatter half used during aggregation.
func CopyIn(dst *Matrix, r Region, block *Matrix) error {
	if !r.In(dst.Rows, dst.Cols) {
		return fmt.Errorf("%w: %v in %dx%d", ErrRegionBounds, r, dst.Rows, dst.Cols)
	}
	if block.Rows != r.Height || block.Cols != r.Width {
		return fmt.Errorf("tensor: block %dx%d does not match region %v", block.Rows, block.Cols, r)
	}
	if r.Len() == 0 {
		return nil
	}
	s := dst.RowStride()
	if r.Col == 0 && r.Width == s && block.IsContiguous() {
		// Full-width band into a gap-free destination: one memmove.
		off := r.Row * s
		copy(dst.Data[off:off+r.Len()], block.Data)
		return nil
	}
	for i := 0; i < r.Height; i++ {
		dstOff := (r.Row+i)*s + r.Col
		copy(dst.Data[dstOff:dstOff+r.Width], block.Row(i))
	}
	return nil
}

// CopyOutHalo extracts region r of src expanded by up to halo real cells on
// every side, truncating at the matrix edges. Stencil kernels (Hotspot,
// Sobel, Laplacian, MeanFilter, SRAD) need neighbouring rows and columns
// from adjacent partitions; the runtime ships them along with the partition,
// which is also how the paper's data distribution avoids inter-device
// synchronization within a VOP.
//
// Truncation (rather than replicate padding) makes the block's edges
// coincide with the true matrix edges wherever the region touches them, so a
// clamp-boundary kernel run over the block computes exactly the
// whole-matrix semantics on the interior — including for iterated stencils,
// where replicated padding rows would evolve divergently.
//
// The returned region locates the interior block inside the returned matrix.
func CopyOutHalo(src *Matrix, r Region, halo int) (*Matrix, Region, error) {
	if !r.In(src.Rows, src.Cols) {
		return nil, Region{}, fmt.Errorf("%w: %v in %dx%d", ErrRegionBounds, r, src.Rows, src.Cols)
	}
	if halo < 0 {
		return nil, Region{}, fmt.Errorf("tensor: negative halo %d", halo)
	}
	top := min(halo, r.Row)
	left := min(halo, r.Col)
	bottom := min(halo, src.Rows-(r.Row+r.Height))
	right := min(halo, src.Cols-(r.Col+r.Width))
	big := Region{
		Row: r.Row - top, Col: r.Col - left,
		Height: r.Height + top + bottom, Width: r.Width + left + right,
	}
	blk, err := CopyOut(src, big)
	if err != nil {
		return nil, Region{}, err
	}
	return blk, Region{Row: top, Col: left, Height: r.Height, Width: r.Width}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func clamp(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// ToFloat32 converts the matrix payload to float32, the GPU's native
// precision.
func (m *Matrix) ToFloat32() []float32 {
	out := make([]float32, m.Len())
	for i := 0; i < m.Rows; i++ {
		row := m.Row(i)
		for j, v := range row {
			out[i*m.Cols+j] = float32(v)
		}
	}
	return out
}

// FromFloat32 builds a float64 matrix from FP32 device output.
func FromFloat32(rows, cols int, data []float32) *Matrix {
	m := NewMatrix(rows, cols)
	for i, v := range data {
		m.Data[i] = float64(v)
	}
	return m
}

// Stats summarises the value distribution of a slice: the two criticality
// metrics QAWS uses (data range and standard deviation) plus the mean.
type Stats struct {
	Min, Max, Mean, Std float64
	N                   int
}

// Range returns Max-Min.
func (s Stats) Range() float64 { return s.Max - s.Min }

// Summarize computes Stats over data. Empty input yields a zero Stats.
func Summarize(data []float64) Stats {
	if len(data) == 0 {
		return Stats{}
	}
	s := Stats{Min: data[0], Max: data[0], N: len(data)}
	var sum float64
	for _, v := range data {
		if v < s.Min {
			s.Min = v
		}
		if v > s.Max {
			s.Max = v
		}
		sum += v
	}
	s.Mean = sum / float64(len(data))
	var ss float64
	for _, v := range data {
		d := v - s.Mean
		ss += d * d
	}
	s.Std = math.Sqrt(ss / float64(len(data)))
	return s
}
