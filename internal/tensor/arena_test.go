package tensor

import "testing"

func TestArenaMatrixRoundTrip(t *testing.T) {
	m := GetMatrix(5, 7)
	if m.Rows != 5 || m.Cols != 7 || len(m.Data) != 35 {
		t.Fatalf("shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("GetMatrix not zeroed at %d: %g", i, v)
		}
	}
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	PutMatrix(m)

	// A fresh zeroed Get must never expose the previous contents.
	m2 := GetMatrix(5, 7)
	for i, v := range m2.Data {
		if v != 0 {
			t.Fatalf("recycled matrix not zeroed at %d: %g", i, v)
		}
	}
	PutMatrix(m2)
}

func TestArenaReusesCapacityAcrossSizes(t *testing.T) {
	m := GetMatrixUninit(8, 8) // bucket 6 (64 elements)
	base := &m.Data[0]
	PutMatrix(m)
	m2 := GetMatrixUninit(5, 9) // 45 elements, same bucket
	if len(m2.Data) != 45 {
		t.Fatalf("len = %d", len(m2.Data))
	}
	if &m2.Data[0] != base {
		t.Log("arena did not reuse the buffer (GC or another pool user); not fatal")
	}
	PutMatrix(m2)
}

func TestArenaZeroAndNil(t *testing.T) {
	PutMatrix(nil)
	PutMatrix(&Matrix{})
	m := GetMatrixUninit(0, 4)
	if m.Rows != 0 || m.Cols != 4 || len(m.Data) != 0 {
		t.Fatalf("empty matrix shape %dx%d len %d", m.Rows, m.Cols, len(m.Data))
	}
	PutFloats(nil)
	if s := GetFloats(0); s != nil {
		t.Fatalf("GetFloats(0) = %v", s)
	}
	PutComplex(nil)
	if s := GetComplex(0); s != nil {
		t.Fatalf("GetComplex(0) = %v", s)
	}
}

func TestArenaSlices(t *testing.T) {
	f := GetFloats(100)
	if len(f) != 100 || cap(f) < 100 {
		t.Fatalf("floats len %d cap %d", len(f), cap(f))
	}
	PutFloats(f)
	c := GetComplex(33)
	if len(c) != 33 {
		t.Fatalf("complex len %d", len(c))
	}
	PutComplex(c)
}

func TestPutMatrixAcceptsForeignAllocations(t *testing.T) {
	// NewMatrix capacities are exact (not power-of-two); the floor bucket
	// must still guarantee capacity ≥ bucket size on the way out.
	m := NewMatrix(3, 33) // 99 elements, floor bucket 6 (64)
	PutMatrix(m)
	got := GetMatrixUninit(8, 8) // bucket 6 wants cap ≥ 64
	if cap(got.Data) < 64 {
		t.Fatalf("recycled capacity %d < 64", cap(got.Data))
	}
	PutMatrix(got)
}

func TestCopyOutStillCorrectFromArena(t *testing.T) {
	src := NewMatrix(4, 4)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	blk, err := CopyOut(src, Region{Row: 1, Col: 1, Height: 2, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{5, 6, 9, 10}
	for i, v := range want {
		if blk.Data[i] != v {
			t.Fatalf("blk.Data[%d] = %g want %g", i, blk.Data[i], v)
		}
	}
	PutMatrix(blk)
}
