package tensor

import "testing"

func fill(m *Matrix) *Matrix {
	for i := range m.Data {
		m.Data[i] = float64(i)
	}
	return m
}

func TestViewBasics(t *testing.T) {
	m := fill(NewMatrix(6, 8))
	v, err := m.View(Region{Row: 1, Col: 2, Height: 3, Width: 4})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsView() || v.IsContiguous() {
		t.Fatalf("interior view: IsView=%v IsContiguous=%v", v.IsView(), v.IsContiguous())
	}
	if v.Rows != 3 || v.Cols != 4 || v.RowStride() != 8 {
		t.Fatalf("view shape %dx%d stride %d", v.Rows, v.Cols, v.RowStride())
	}
	for i := 0; i < v.Rows; i++ {
		for j := 0; j < v.Cols; j++ {
			if v.At(i, j) != m.At(i+1, j+2) {
				t.Fatalf("At(%d,%d) = %g", i, j, v.At(i, j))
			}
		}
	}
	// Writes through the view land in the parent.
	v.Set(2, 3, -1)
	if m.At(3, 5) != -1 {
		t.Fatal("view write did not reach parent")
	}
}

func TestViewFullWidthBandIsContiguous(t *testing.T) {
	m := fill(NewMatrix(8, 5))
	v, err := m.View(Region{Row: 2, Col: 0, Height: 3, Width: 5})
	if err != nil {
		t.Fatal(err)
	}
	if !v.IsContiguous() {
		t.Fatal("full-width row band should be contiguous")
	}
	if &v.Data[0] != &m.Data[2*5] {
		t.Fatal("band does not alias parent storage")
	}
}

func TestViewCompose(t *testing.T) {
	m := fill(NewMatrix(10, 10))
	outer, err := m.View(Region{Row: 2, Col: 2, Height: 6, Width: 6})
	if err != nil {
		t.Fatal(err)
	}
	inner, err := outer.View(Region{Row: 1, Col: 1, Height: 3, Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	if inner.RowStride() != 10 {
		t.Fatalf("nested view stride %d", inner.RowStride())
	}
	if inner.At(0, 0) != m.At(3, 3) {
		t.Fatal("nested view misaligned")
	}
}

func TestViewEdgesAndErrors(t *testing.T) {
	m := fill(NewMatrix(4, 4))
	if _, err := m.View(Region{Row: 2, Col: 2, Height: 3, Width: 1}); err == nil {
		t.Fatal("out-of-bounds view must fail")
	}
	empty, err := m.View(Region{Row: 4, Col: 0, Height: 0, Width: 4})
	if err != nil {
		t.Fatalf("empty view at the boundary: %v", err)
	}
	if empty.Len() != 0 {
		t.Fatal("empty view should have no elements")
	}
	one, err := m.View(Region{Row: 3, Col: 3, Height: 1, Width: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !one.IsContiguous() || one.At(0, 0) != 15 {
		t.Fatal("1x1 view wrong")
	}
	// Single-row views are contiguous whatever the stride says.
	row, err := m.View(Region{Row: 1, Col: 1, Height: 1, Width: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !row.IsContiguous() {
		t.Fatal("single-row view should be contiguous")
	}
}

func TestCopyFromAndMaterialize(t *testing.T) {
	m := fill(NewMatrix(6, 6))
	v, err := m.View(Region{Row: 1, Col: 1, Height: 4, Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	dense := Materialize(v)
	defer PutMatrix(dense)
	if dense.IsView() || !dense.IsContiguous() {
		t.Fatal("Materialize must return a dense owned matrix")
	}
	if !dense.Equal(v) {
		t.Fatal("Materialize lost data")
	}
	// CopyFrom scatters dense data back through a strided destination.
	for i := range dense.Data {
		dense.Data[i] = -dense.Data[i]
	}
	if err := v.CopyFrom(dense); err != nil {
		t.Fatal(err)
	}
	if m.At(1, 1) != -7 {
		t.Fatalf("CopyFrom through view: m(1,1)=%g", m.At(1, 1))
	}
	if err := v.CopyFrom(NewMatrix(2, 2)); err == nil {
		t.Fatal("shape mismatch must fail")
	}
}

func TestArenaRefusesViews(t *testing.T) {
	m := fill(NewMatrix(8, 8))
	v, err := m.View(Region{Row: 0, Col: 0, Height: 8, Width: 8})
	if err != nil {
		t.Fatal(err)
	}
	PutMatrix(v) // must be a no-op, not a recycle of the parent's storage
	fresh := GetMatrixUninit(8, 8)
	defer PutMatrix(fresh)
	if &fresh.Data[0] == &m.Data[0] {
		t.Fatal("arena recycled aliased storage from a view")
	}
	if m.At(0, 0) != 0 || m.Rows != 8 {
		t.Fatal("PutMatrix of a view corrupted the parent")
	}
}

func TestCopyOutInViewFastPaths(t *testing.T) {
	src := fill(NewMatrix(9, 7))
	// Full-width region: single memmove path.
	band, err := CopyOut(src, Region{Row: 3, Col: 0, Height: 2, Width: 7})
	if err != nil {
		t.Fatal(err)
	}
	defer PutMatrix(band)
	for j := 0; j < 7; j++ {
		if band.At(0, j) != src.At(3, j) {
			t.Fatalf("band(0,%d)", j)
		}
	}
	// Strided source block into a full-width destination region.
	vsrc, err := src.View(Region{Row: 1, Col: 2, Height: 4, Width: 3})
	if err != nil {
		t.Fatal(err)
	}
	dst := NewMatrix(4, 3)
	if err := CopyIn(dst, Region{Row: 0, Col: 0, Height: 4, Width: 3}, vsrc); err != nil {
		t.Fatal(err)
	}
	if !dst.Equal(vsrc) {
		t.Fatal("CopyIn from strided block lost data")
	}
	// Empty region round-trips without touching anything.
	if err := CopyIn(dst, Region{Row: 4, Col: 0, Height: 0, Width: 3}, NewMatrix(0, 3)); err != nil {
		t.Fatal(err)
	}
}
