package tensor

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeroed(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows != 3 || m.Cols != 4 || m.Len() != 12 {
		t.Fatalf("shape = %dx%d len %d", m.Rows, m.Cols, m.Len())
	}
	for i, v := range m.Data {
		if v != 0 {
			t.Fatalf("element %d = %g, want 0", i, v)
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	NewMatrix(-1, 4)
}

func TestFromSlice(t *testing.T) {
	m, err := FromSlice(2, 3, []float64{1, 2, 3, 4, 5, 6})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 2) != 6 {
		t.Fatalf("At(1,2) = %g", m.At(1, 2))
	}
	if _, err := FromSlice(2, 3, []float64{1}); err == nil {
		t.Fatal("expected length-mismatch error")
	}
}

func TestAtSet(t *testing.T) {
	m := NewMatrix(4, 5)
	m.Set(2, 3, 7.5)
	if got := m.At(2, 3); got != 7.5 {
		t.Fatalf("At = %g", got)
	}
	if m.Data[2*5+3] != 7.5 {
		t.Fatal("row-major layout broken")
	}
}

func TestCloneIndependent(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 0, 1)
	c := m.Clone()
	c.Set(0, 0, 9)
	if m.At(0, 0) != 1 {
		t.Fatal("clone shares storage")
	}
	if !m.Equal(m.Clone()) {
		t.Fatal("clone not equal to source")
	}
}

func TestEqual(t *testing.T) {
	a := NewMatrix(2, 2)
	b := NewMatrix(2, 2)
	if !a.Equal(b) {
		t.Fatal("zero matrices should be equal")
	}
	b.Set(1, 1, 1)
	if a.Equal(b) {
		t.Fatal("different matrices reported equal")
	}
	if a.Equal(NewMatrix(2, 3)) {
		t.Fatal("different shapes reported equal")
	}
	a.Set(0, 0, math.NaN())
	c := a.Clone()
	if !a.Equal(c) {
		t.Fatal("NaN should compare equal to itself under Equal")
	}
}

func TestBytes(t *testing.T) {
	m := NewMatrix(10, 10)
	if m.Bytes(8) != 800 || m.Bytes(1) != 100 {
		t.Fatalf("Bytes = %d / %d", m.Bytes(8), m.Bytes(1))
	}
}

func TestRegionBasics(t *testing.T) {
	r := Region{Row: 1, Col: 2, Height: 3, Width: 4}
	if r.Len() != 12 || r.Bytes(4) != 48 {
		t.Fatalf("Len=%d Bytes=%d", r.Len(), r.Bytes(4))
	}
	if !r.In(4, 6) {
		t.Fatal("region should fit in 4x6")
	}
	if r.In(3, 6) {
		t.Fatal("region should not fit in 3x6")
	}
	if r.String() == "" {
		t.Fatal("empty String()")
	}
}

func TestCopyOutCopyInRoundTrip(t *testing.T) {
	src := NewMatrix(6, 7)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	r := Region{Row: 1, Col: 2, Height: 3, Width: 4}
	blk, err := CopyOut(src, r)
	if err != nil {
		t.Fatal(err)
	}
	if blk.At(0, 0) != src.At(1, 2) || blk.At(2, 3) != src.At(3, 5) {
		t.Fatal("CopyOut extracted wrong values")
	}
	dst := NewMatrix(6, 7)
	if err := CopyIn(dst, r, blk); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if dst.At(1+i, 2+j) != src.At(1+i, 2+j) {
				t.Fatalf("round trip mismatch at %d,%d", i, j)
			}
		}
	}
}

func TestCopyOutBounds(t *testing.T) {
	src := NewMatrix(3, 3)
	if _, err := CopyOut(src, Region{Row: 2, Col: 2, Height: 2, Width: 2}); err == nil {
		t.Fatal("expected out-of-bounds error")
	}
}

func TestCopyInShapeMismatch(t *testing.T) {
	dst := NewMatrix(4, 4)
	blk := NewMatrix(2, 3)
	if err := CopyIn(dst, Region{Height: 2, Width: 2}, blk); err == nil {
		t.Fatal("expected block-shape error")
	}
}

func TestCopyOutHalo(t *testing.T) {
	src := NewMatrix(4, 4)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	blk, inner, err := CopyOutHalo(src, Region{Row: 1, Col: 1, Height: 2, Width: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if blk.Rows != 4 || blk.Cols != 4 {
		t.Fatalf("halo block %dx%d", blk.Rows, blk.Cols)
	}
	if inner != (Region{Row: 1, Col: 1, Height: 2, Width: 2}) {
		t.Fatalf("inner = %v", inner)
	}
	// Interior values preserved.
	if blk.At(1, 1) != src.At(1, 1) || blk.At(2, 2) != src.At(2, 2) {
		t.Fatal("interior values wrong")
	}
	// Halo of an interior region comes from real neighbours.
	if blk.At(0, 1) != src.At(0, 1) {
		t.Fatal("halo should read the neighbouring row")
	}
}

func TestCopyOutHaloTruncatesAtEdges(t *testing.T) {
	src := NewMatrix(3, 3)
	for i := range src.Data {
		src.Data[i] = float64(i)
	}
	blk, inner, err := CopyOutHalo(src, Region{Row: 0, Col: 0, Height: 2, Width: 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	// No rows/cols exist above or left of the region: the halo truncates
	// there and only extends down/right.
	if blk.Rows != 3 || blk.Cols != 3 {
		t.Fatalf("block %dx%d want 3x3", blk.Rows, blk.Cols)
	}
	if inner.Row != 0 || inner.Col != 0 {
		t.Fatalf("inner = %v", inner)
	}
	if blk.At(2, 2) != src.At(2, 2) {
		t.Fatal("halo should carry the real down-right neighbours")
	}
}

func TestCopyOutHaloNegative(t *testing.T) {
	src := NewMatrix(3, 3)
	if _, _, err := CopyOutHalo(src, Region{Height: 1, Width: 1}, -1); err == nil {
		t.Fatal("expected error for negative halo")
	}
}

func TestFloat32Conversions(t *testing.T) {
	m := NewMatrix(1, 3)
	m.Data[0], m.Data[1], m.Data[2] = 1.5, -2.25, 1e-8
	f := m.ToFloat32()
	back := FromFloat32(1, 3, f)
	for i := range m.Data {
		if back.Data[i] != float64(float32(m.Data[i])) {
			t.Fatalf("fp32 conversion mismatch at %d", i)
		}
	}
}

func TestSummarize(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Min != 1 || s.Max != 4 || s.Mean != 2.5 || s.N != 4 {
		t.Fatalf("stats = %+v", s)
	}
	want := math.Sqrt(1.25)
	if math.Abs(s.Std-want) > 1e-12 {
		t.Fatalf("std = %g want %g", s.Std, want)
	}
	if s.Range() != 3 {
		t.Fatalf("range = %g", s.Range())
	}
	if z := Summarize(nil); z != (Stats{}) {
		t.Fatalf("empty stats = %+v", z)
	}
}

// Property: CopyOut then CopyIn into a zero matrix reproduces exactly the
// region and nothing else.
func TestPropertyCopyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 1+r.Intn(20), 1+r.Intn(20)
		src := NewMatrix(rows, cols)
		for i := range src.Data {
			src.Data[i] = rng.NormFloat64()
		}
		h, w := 1+r.Intn(rows), 1+r.Intn(cols)
		reg := Region{Row: r.Intn(rows - h + 1), Col: r.Intn(cols - w + 1), Height: h, Width: w}
		blk, err := CopyOut(src, reg)
		if err != nil {
			return false
		}
		dst := NewMatrix(rows, cols)
		if err := CopyIn(dst, reg, blk); err != nil {
			return false
		}
		for i := 0; i < rows; i++ {
			for j := 0; j < cols; j++ {
				inside := i >= reg.Row && i < reg.Row+h && j >= reg.Col && j < reg.Col+w
				if inside && dst.At(i, j) != src.At(i, j) {
					return false
				}
				if !inside && dst.At(i, j) != 0 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: halo extraction interior always equals the plain extraction.
func TestPropertyHaloInterior(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		rows, cols := 2+r.Intn(16), 2+r.Intn(16)
		src := NewMatrix(rows, cols)
		for i := range src.Data {
			src.Data[i] = r.NormFloat64()
		}
		h, w := 1+r.Intn(rows), 1+r.Intn(cols)
		reg := Region{Row: r.Intn(rows - h + 1), Col: r.Intn(cols - w + 1), Height: h, Width: w}
		halo := 1 + r.Intn(3)
		blk, inner, err := CopyOutHalo(src, reg, halo)
		if err != nil {
			return false
		}
		plain, err := CopyOut(src, reg)
		if err != nil {
			return false
		}
		got, err := CopyOut(blk, inner)
		if err != nil {
			return false
		}
		return got.Equal(plain)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
