package tensor

import (
	"math/bits"
	"sync"

	"shmt/internal/telemetry"
)

// The scratch arena: size-bucketed sync.Pools for the float64, complex128
// and Matrix buffers the runtime churns through on its hot path. The
// partition → execute → aggregate loop allocates a partition block, a device
// cast copy, kernel stage intermediates, and the result for every HLOP; at
// steady state all of them cycle through these pools instead of the garbage
// collector.
//
// Ownership rules are strict and simple: Get* transfers exclusive ownership
// to the caller; Put* transfers it back and the buffer must not be touched
// afterwards. Buffers that escape to user code (Report.Output, results a
// test holds on to) are simply never Put — the pools treat them as ordinary
// garbage, so forgetting to Put is always safe, double-Putting never is.
//
// Buckets are powers of two: bucket b serves requests of up to 1<<b
// elements and every pooled buffer in it has capacity ≥ 1<<b, so a Get can
// always reslice a pooled buffer to the requested length.

const arenaBuckets = 48 // 1<<47 elements ≫ any addressable tensor

var (
	floatPools   [arenaBuckets]sync.Pool // holds []float64
	complexPools [arenaBuckets]sync.Pool // holds []complex128
	matrixPools  [arenaBuckets]sync.Pool // holds *Matrix
)

// Arena hit/miss accounting. The label pointers are resolved once here so the
// hot path is a single gated atomic add per Get.
var (
	arenaFloatHits    = telemetry.ArenaHits.With("float64")
	arenaFloatMisses  = telemetry.ArenaMisses.With("float64")
	arenaCplxHits     = telemetry.ArenaHits.With("complex128")
	arenaCplxMisses   = telemetry.ArenaMisses.With("complex128")
	arenaMatrixHits   = telemetry.ArenaHits.With("matrix")
	arenaMatrixMisses = telemetry.ArenaMisses.With("matrix")
)

func arenaHit(c *telemetry.Counter, bytes int64) {
	c.Inc()
	telemetry.ArenaHitBytes.Add(bytes)
}

func arenaMiss(c *telemetry.Counter, bytes int64) {
	c.Inc()
	telemetry.ArenaMissBytes.Add(bytes)
}

// bucketCeil returns the smallest b with 1<<b ≥ n (n ≥ 1).
func bucketCeil(n int) int { return bits.Len(uint(n - 1)) }

// bucketFloor returns the largest b with 1<<b ≤ c (c ≥ 1).
func bucketFloor(c int) int { return bits.Len(uint(c)) - 1 }

// GetFloats returns a length-n float64 scratch slice with unspecified
// contents. The caller owns it until PutFloats.
func GetFloats(n int) []float64 {
	if n <= 0 {
		return nil
	}
	b := bucketCeil(n)
	if b >= arenaBuckets {
		arenaMiss(arenaFloatMisses, int64(n)*8)
		return make([]float64, n)
	}
	if v := floatPools[b].Get(); v != nil {
		arenaHit(arenaFloatHits, int64(n)*8)
		return v.([]float64)[:n]
	}
	arenaMiss(arenaFloatMisses, int64(n)*8)
	return make([]float64, n, 1<<b)
}

// PutFloats returns a slice obtained from GetFloats (or any float64 slice
// the caller exclusively owns) to the arena.
func PutFloats(s []float64) {
	c := cap(s)
	if c == 0 {
		return
	}
	if b := bucketFloor(c); b < arenaBuckets {
		floatPools[b].Put(s[:0:c])
	}
}

// GetComplex returns a length-n complex128 scratch slice with unspecified
// contents.
func GetComplex(n int) []complex128 {
	if n <= 0 {
		return nil
	}
	b := bucketCeil(n)
	if b >= arenaBuckets {
		arenaMiss(arenaCplxMisses, int64(n)*16)
		return make([]complex128, n)
	}
	if v := complexPools[b].Get(); v != nil {
		arenaHit(arenaCplxHits, int64(n)*16)
		return v.([]complex128)[:n]
	}
	arenaMiss(arenaCplxMisses, int64(n)*16)
	return make([]complex128, n, 1<<b)
}

// PutComplex returns a slice obtained from GetComplex to the arena.
func PutComplex(s []complex128) {
	c := cap(s)
	if c == 0 {
		return
	}
	if b := bucketFloor(c); b < arenaBuckets {
		complexPools[b].Put(s[:0:c])
	}
}

// GetMatrix returns a zeroed rows×cols matrix from the arena — the pooled
// equivalent of NewMatrix.
func GetMatrix(rows, cols int) *Matrix {
	m := GetMatrixUninit(rows, cols)
	clearFloats(m.Data)
	return m
}

// GetMatrixUninit returns a rows×cols matrix whose contents are
// unspecified; the caller must write every element before reading any.
func GetMatrixUninit(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		return NewMatrix(rows, cols) // panics with the canonical message
	}
	n := rows * cols
	if n == 0 {
		return &Matrix{Rows: rows, Cols: cols}
	}
	b := bucketCeil(n)
	if b >= arenaBuckets {
		arenaMiss(arenaMatrixMisses, int64(n)*8)
		return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, n)}
	}
	if v := matrixPools[b].Get(); v != nil {
		m := v.(*Matrix)
		m.Rows, m.Cols = rows, cols
		m.Data = m.Data[:n]
		arenaHit(arenaMatrixHits, int64(n)*8)
		return m
	}
	arenaMiss(arenaMatrixMisses, int64(n)*8)
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, n, 1<<b)}
}

// PutMatrix returns a matrix to the arena. The matrix (and any alias of its
// Data) must not be used afterwards. Matrices from NewMatrix or FromSlice
// may also be Put; nil and empty matrices are ignored.
//
// Views are refused: their Data aliases storage owned by another matrix, and
// recycling it would hand the owner's bytes to an unrelated Get (or recycle
// the same buffer twice). Dropping them here makes Put safe to call on mixed
// view/materialized results.
func PutMatrix(m *Matrix) {
	if m == nil || m.view {
		return
	}
	c := cap(m.Data)
	if c == 0 {
		return
	}
	if b := bucketFloor(c); b < arenaBuckets {
		m.Data = m.Data[:0:c]
		m.Rows, m.Cols, m.Stride = 0, 0, 0
		matrixPools[b].Put(m)
	}
}

// clearFloats zeroes s (compiles to a memclr).
func clearFloats(s []float64) {
	for i := range s {
		s[i] = 0
	}
}
