package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"shmt/internal/serve"
)

// fakeBackend is a minimal shmtserved stand-in: /v1/execute computes "add"
// locally, /healthz follows the shmtserved status contract. Failure modes
// are switchable at runtime.
type fakeBackend struct {
	ts       *httptest.Server
	requests atomic.Int64
	fail     atomic.Bool // 500 every execute
	sick     atomic.Bool // 503 every healthz
}

func newFakeBackend(t *testing.T) *fakeBackend {
	t.Helper()
	fb := &fakeBackend{}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/execute", func(w http.ResponseWriter, r *http.Request) {
		fb.requests.Add(1)
		if fb.fail.Load() {
			writeJSON(w, http.StatusInternalServerError, wireError{Error: "injected failure"})
			return
		}
		var req wireExecuteRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil || req.Op != "add" || len(req.Inputs) != 2 {
			writeJSON(w, http.StatusBadRequest, wireError{Error: "fake backend only adds"})
			return
		}
		a, b := req.Inputs[0], req.Inputs[1]
		out := wireMatrix{Rows: a.Rows, Cols: a.Cols, Data: make([]float64, len(a.Data))}
		for i := range a.Data {
			out.Data[i] = a.Data[i] + b.Data[i]
		}
		if id := r.Header.Get(serve.TraceHeader); id != "" {
			w.Header().Set(serve.TraceHeader, id)
		}
		writeJSON(w, http.StatusOK, wireExecuteResponse{Output: out, HLOPs: 1, BatchSize: 1})
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, _ *http.Request) {
		if fb.sick.Load() {
			writeJSON(w, http.StatusServiceUnavailable, map[string]string{"status": "draining"})
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	fb.ts = httptest.NewServer(mux)
	t.Cleanup(fb.ts.Close)
	return fb
}

func (fb *fakeBackend) addr() string { return strings.TrimPrefix(fb.ts.URL, "http://") }

func newTestRouter(t *testing.T, cfg RouterConfig) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		ts.Close()
		rt.pool.Close()
	})
	return rt, ts
}

func addBody(n int) string {
	a := make([]float64, n*n)
	for i := range a {
		a[i] = float64(i)
	}
	j, _ := json.Marshal(a)
	return fmt.Sprintf(`{"op":"add","inputs":[{"rows":%d,"cols":%d,"data":%s},{"rows":%d,"cols":%d,"data":%s}]}`,
		n, n, j, n, n, j)
}

func postExecute(t *testing.T, url, body string, hdr map[string]string) (*http.Response, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url+"/v1/execute", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestRouterProxyAffinity: the same key lands on the same backend every
// time, the output is correct, and the router's trace ID round-trips.
func TestRouterProxyAffinity(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	_, ts := newTestRouter(t, RouterConfig{
		Seeds:            []string{b1.addr(), b2.addr()},
		ScatterThreshold: -1,
		Pool:             PoolConfig{ProbeInterval: time.Hour},
	})

	var served string
	for i := 0; i < 8; i++ {
		resp, body := postExecute(t, ts.URL, addBody(2), map[string]string{
			TenantHeader:      "tenant-a",
			serve.TraceHeader: "trace-affinity-1",
		})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get(serve.TraceHeader); got != "trace-affinity-1" {
			t.Fatalf("trace ID not threaded: %q", got)
		}
		be := resp.Header.Get(BackendHeader)
		if be == "" {
			t.Fatal("no backend header")
		}
		if served == "" {
			served = be
		} else if served != be {
			t.Fatalf("same key moved backends: %s then %s", served, be)
		}
		var out wireExecuteResponse
		if err := json.Unmarshal(body, &out); err != nil {
			t.Fatal(err)
		}
		if out.Output.Data[3] != 6 { // 3 + 3
			t.Fatalf("bad output: %v", out.Output.Data)
		}
	}
	if b1.requests.Load()+b2.requests.Load() != 8 {
		t.Fatalf("backends saw %d+%d requests, want 8 total", b1.requests.Load(), b2.requests.Load())
	}
	if b1.requests.Load() != 0 && b2.requests.Load() != 0 {
		t.Fatal("one key spread over both backends")
	}
}

// TestRouterFailover: when a key's backend starts failing, the request
// retries on the replica and still succeeds; the repeat offender's breaker
// opens and subsequent picks avoid it.
func TestRouterFailover(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	byAddr := map[string]*fakeBackend{b1.addr(): b1, b2.addr(): b2}
	rt, ts := newTestRouter(t, RouterConfig{
		Seeds:            []string{b1.addr(), b2.addr()},
		ScatterThreshold: -1,
		Pool: PoolConfig{
			ProbeInterval: time.Hour, // breaker driven by dispatch failures only
			Breaker:       BreakerConfig{Threshold: 2, Cooldown: time.Hour},
		},
	})

	resp, body := postExecute(t, ts.URL, addBody(2), nil)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warmup: status %d: %s", resp.StatusCode, body)
	}
	owner := resp.Header.Get(BackendHeader)
	byAddr[owner].fail.Store(true)

	for i := 0; i < 3; i++ {
		resp, body = postExecute(t, ts.URL, addBody(2), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("failover request %d: status %d: %s", i, resp.StatusCode, body)
		}
		if got := resp.Header.Get(BackendHeader); got == owner {
			t.Fatalf("request %d served by the failing backend", i)
		}
	}
	quar := rt.Pool().Quarantined()
	if len(quar) != 1 || quar[0] != owner {
		t.Fatalf("quarantined = %v, want [%s]", quar, owner)
	}
	// With the breaker open, picks skip the offender entirely: no new
	// requests land on it.
	before := byAddr[owner].requests.Load()
	for i := 0; i < 3; i++ {
		resp, _ = postExecute(t, ts.URL, addBody(2), nil)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("post-quarantine request %d: status %d", i, resp.StatusCode)
		}
	}
	if got := byAddr[owner].requests.Load(); got != before {
		t.Fatalf("quarantined backend still receiving traffic (%d new requests)", got-before)
	}
}

// TestRouterRegister: a router with no seeds is unavailable; a backend
// registering over HTTP brings it to ok, idempotently.
func TestRouterRegister(t *testing.T) {
	fb := newFakeBackend(t)
	rt, ts := newTestRouter(t, RouterConfig{
		ScatterThreshold: -1,
		Pool:             PoolConfig{ProbeInterval: time.Hour},
	})

	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("empty fleet healthz = %d, want 503", resp.StatusCode)
	}

	for i := 0; i < 2; i++ { // twice: registration is idempotent
		resp, err = http.Post(ts.URL+"/v1/register", "application/json",
			strings.NewReader(fmt.Sprintf(`{"addr":%q}`, fb.addr())))
		if err != nil {
			t.Fatal(err)
		}
		var reg registerResponse
		if err := json.NewDecoder(resp.Body).Decode(&reg); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !reg.OK || reg.Backends != 1 {
			t.Fatalf("register attempt %d: status %d, resp %+v", i, resp.StatusCode, reg)
		}
	}
	if rt.Pool().Len() != 1 {
		t.Fatalf("pool size %d after idempotent registration", rt.Pool().Len())
	}

	resp, err = http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h routerHealth
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Healthy != 1 {
		t.Fatalf("healthz after register: %d %+v", resp.StatusCode, h)
	}

	if resp, body := postExecute(t, ts.URL, addBody(2), nil); resp.StatusCode != http.StatusOK {
		t.Fatalf("execute after register: %d: %s", resp.StatusCode, body)
	}
}

// TestRouterRejectsBadRequests: malformed bodies and unknown ops answer 400
// without touching any backend.
func TestRouterRejectsBadRequests(t *testing.T) {
	fb := newFakeBackend(t)
	_, ts := newTestRouter(t, RouterConfig{
		Seeds:            []string{fb.addr()},
		ScatterThreshold: -1,
		Pool:             PoolConfig{ProbeInterval: time.Hour},
	})
	for _, body := range []string{
		`{not json`,
		`{"op":"frobnicate","inputs":[{"rows":1,"cols":1,"data":[1]}]}`,
		`{"op":"add","inputs":[]}`,
	} {
		resp, _ := postExecute(t, ts.URL, body, nil)
		if resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, resp.StatusCode)
		}
	}
	if fb.requests.Load() != 0 {
		t.Fatalf("backend saw %d requests for invalid bodies", fb.requests.Load())
	}
}

// TestRouterDrain: after Shutdown the router answers 503 draining on both
// the execute and health endpoints.
func TestRouterDrain(t *testing.T) {
	fb := newFakeBackend(t)
	rt, ts := newTestRouter(t, RouterConfig{
		Seeds:            []string{fb.addr()},
		ScatterThreshold: -1,
		Pool:             PoolConfig{ProbeInterval: time.Hour},
	})
	if err := rt.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, _ := postExecute(t, ts.URL, addBody(2), nil)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("execute while draining = %d, want 503", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("draining response missing Retry-After")
	}
	hresp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h routerHealth
	if err := json.NewDecoder(hresp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if hresp.StatusCode != http.StatusServiceUnavailable || h.Status != "draining" {
		t.Fatalf("healthz while draining: %d %+v", hresp.StatusCode, h)
	}
	// Load balancers keying off /healthz need the same back-off hint the
	// execute path gives; a bare 503 reads as "dead", not "draining".
	if hresp.Header.Get("Retry-After") == "" {
		t.Fatal("draining healthz missing Retry-After")
	}
}

// TestPoolProbeLifecycle: a backend that goes sick is quarantined by the
// prober, and re-admitted — through a successful half-open probe — once it
// recovers.
func TestPoolProbeLifecycle(t *testing.T) {
	fb := newFakeBackend(t)
	pool, err := NewPool(PoolConfig{
		ProbeInterval: 10 * time.Millisecond,
		ProbeTimeout:  time.Second,
		Breaker:       BreakerConfig{Threshold: 2, Cooldown: 30 * time.Millisecond},
	}, []string{fb.addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	fb.sick.Store(true)
	waitFor(t, time.Second, func() bool { return len(pool.Quarantined()) == 1 })

	fb.sick.Store(false)
	waitFor(t, 2*time.Second, func() bool { return len(pool.Quarantined()) == 0 })
	if len(pool.Healthy()) != 1 {
		t.Fatal("recovered backend not healthy")
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatal("condition not reached in time")
}

// TestRouterStatusz: the snapshot lists every backend with its breaker
// state.
func TestRouterStatusz(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	_, ts := newTestRouter(t, RouterConfig{
		Seeds:            []string{b1.addr(), b2.addr()},
		ScatterThreshold: -1,
		Pool:             PoolConfig{ProbeInterval: time.Hour},
	})
	resp, err := http.Get(ts.URL + "/statusz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var st routerStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	if st.Service != "shmtrouterd" || len(st.Backends) != 2 {
		t.Fatalf("statusz: %+v", st)
	}
	for _, b := range st.Backends {
		if b.Breaker != "closed" {
			t.Fatalf("backend %s breaker %q at startup", b.Addr, b.Breaker)
		}
	}
}
