package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"shmt"
	"shmt/internal/serve"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

func TestScatterEligibleSet(t *testing.T) {
	for _, op := range []vop.Opcode{vop.OpAdd, vop.OpMultiply, vop.OpGEMM, vop.OpFFT, vop.OpDCT8x8, vop.OpParabolicPDE} {
		if !ScatterEligible(op) {
			t.Errorf("%s should be scatter-eligible", op)
		}
	}
	// Halo opcodes, reductions and the cross-coupled wavelet must not
	// scatter: standalone partition execution changes their semantics.
	for _, op := range []vop.Opcode{vop.OpSobel, vop.OpStencil, vop.OpSRAD, vop.OpLaplacian, vop.OpMeanFilter, vop.OpConv, vop.OpReduceSum, vop.OpReduceHist256, vop.OpFDWT97} {
		if ScatterEligible(op) {
			t.Errorf("%s must not be scatter-eligible", op)
		}
	}
}

// TestPlanScatterDeterministic: partition geometry is a pure function of
// (op, shape, fanout) — two plans for equal-shaped VOPs coincide region by
// region, and the pricing is stable.
func TestPlanScatterDeterministic(t *testing.T) {
	mk := func() *vop.VOP {
		a := tensor.NewMatrix(96, 64)
		b := tensor.NewMatrix(64, 48)
		for i := range a.Data {
			a.Data[i] = float64(i%23) - 11
		}
		for i := range b.Data {
			b.Data[i] = float64(i%19) - 9
		}
		v, err := vop.New(vop.OpGEMM, a, b)
		if err != nil {
			t.Fatal(err)
		}
		return v
	}
	p1, err := PlanScatter(mk(), 4)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := PlanScatter(mk(), 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Parts) != len(p2.Parts) || len(p1.Parts) < 2 {
		t.Fatalf("plans split into %d and %d parts", len(p1.Parts), len(p2.Parts))
	}
	for i := range p1.Parts {
		if p1.Parts[i].Region != p2.Parts[i].Region {
			t.Fatalf("partition %d region %v vs %v", i, p1.Parts[i].Region, p2.Parts[i].Region)
		}
	}
	if p1.Bytes != p2.Bytes || p1.Bytes <= 0 {
		t.Fatalf("plan bytes %d vs %d", p1.Bytes, p2.Bytes)
	}
	if p1.TransferSeconds != p2.TransferSeconds || p1.TransferSeconds <= 0 {
		t.Fatalf("plan transfer %g vs %g", p1.TransferSeconds, p2.TransferSeconds)
	}
}

func TestPlanScatterRefusesIneligible(t *testing.T) {
	in := tensor.NewMatrix(64, 64)
	v, err := vop.New(vop.OpSobel, in)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := PlanScatter(v, 4); err == nil {
		t.Fatal("PlanScatter accepted a halo opcode")
	}
}

// newSessionBackend boots a real shmtserved stack (session + serve mux) and
// returns its host:port. MaxBatch 1 keeps every partition its own scheduling
// round, so results depend only on the partition's own content — the
// determinism the placement-invariance property rides on.
func newSessionBackend(t *testing.T) string {
	t.Helper()
	sess, err := shmt.NewSession(shmt.Config{Seed: 1, TargetPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	srv := serve.New(sess, serve.Config{MaxBatch: 1, MaxLinger: time.Millisecond, QueueDepth: 64})
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Shutdown(context.Background())
		sess.Close()
	})
	return strings.TrimPrefix(ts.URL, "http://")
}

func quietPool(t *testing.T, seeds ...string) *Pool {
	t.Helper()
	p, err := NewPool(PoolConfig{ProbeInterval: time.Hour}, seeds)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(p.Close)
	return p
}

// TestScatterPlacementInvariance: the same scatter plan executed across two
// backends, on one backend, and partition-by-partition through a local
// session produces bit-identical outputs — cross-node placement does not
// change numerics, because partition geometry (not placement) determines
// them.
func TestScatterPlacementInvariance(t *testing.T) {
	a := tensor.NewMatrix(96, 64)
	b := tensor.NewMatrix(64, 48)
	for i := range a.Data {
		a.Data[i] = float64(i%23) - 11
	}
	for i := range b.Data {
		b.Data[i] = float64(i%19)/4 - 2
	}
	v, err := vop.New(vop.OpGEMM, a, b)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanScatter(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(plan.Parts) != 4 {
		t.Fatalf("plan split into %d parts, want 4", len(plan.Parts))
	}

	pool2 := quietPool(t, newSessionBackend(t), newSessionBackend(t))
	pool1 := quietPool(t, newSessionBackend(t))

	out2, oc2, err := scatterExecute(context.Background(), pool2, plan, v, "trace-scatter-2", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if oc2.partitions != 4 || oc2.backends != 2 {
		t.Fatalf("two-node scatter used %d backends over %d partitions", oc2.backends, oc2.partitions)
	}
	out1, oc1, err := scatterExecute(context.Background(), pool1, plan, v, "trace-scatter-1", 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if oc1.backends != 1 {
		t.Fatalf("one-node scatter used %d backends", oc1.backends)
	}
	if !out2.Equal(out1) {
		t.Fatal("scatter across 2 nodes differs from the same plan on 1 node")
	}

	// Local reference: the identical partition list through a fresh local
	// session, gathered the same way.
	sess, err := shmt.NewSession(shmt.Config{Seed: 1, TargetPartitions: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	rows, cols := v.OutputShape()
	local := tensor.NewMatrix(rows, cols)
	for i, h := range plan.Parts {
		rep, err := sess.Execute(h.Op, h.Inputs, h.Attrs)
		if err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
		if err := tensor.CopyIn(local, h.Region, rep.Output); err != nil {
			t.Fatalf("partition %d gather: %v", i, err)
		}
	}
	if !out2.Equal(local) {
		t.Fatal("scattered execution differs from the local session running the same partitions")
	}
}

// TestScatterFailover: a partition whose round-robin home is failing lands
// on the other backend and the gather still completes.
func TestScatterFailover(t *testing.T) {
	good, bad := newFakeBackend(t), newFakeBackend(t)
	bad.fail.Store(true)
	pool, err := NewPool(PoolConfig{
		ProbeInterval: time.Hour,
		Breaker:       BreakerConfig{Threshold: 100}, // stay closed; exercise in-flight failover
	}, []string{good.addr(), bad.addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer pool.Close()

	a := tensor.NewMatrix(64, 64)
	b := tensor.NewMatrix(64, 64)
	for i := range a.Data {
		a.Data[i] = float64(i)
		b.Data[i] = 1
	}
	v, err := vop.New(vop.OpAdd, a, b)
	if err != nil {
		t.Fatal(err)
	}
	plan, err := PlanScatter(v, 4)
	if err != nil {
		t.Fatal(err)
	}
	out, oc, err := scatterExecute(context.Background(), pool, plan, v, "trace-failover", 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if oc.backends != 1 {
		t.Fatalf("scatter used %d backends, want only the healthy one", oc.backends)
	}
	for i, got := range out.Data {
		if got != float64(i)+1 {
			t.Fatalf("element %d = %g, want %g", i, got, float64(i)+1)
		}
	}
}

// TestRouterScatterEndToEnd: a large eligible VOP entering the router
// scatters across both backends and reassembles correctly on the wire.
func TestRouterScatterEndToEnd(t *testing.T) {
	b1, b2 := newFakeBackend(t), newFakeBackend(t)
	_, ts := newTestRouter(t, RouterConfig{
		Seeds:            []string{b1.addr(), b2.addr()},
		ScatterThreshold: 1024,
		MaxFanout:        4,
		Pool:             PoolConfig{ProbeInterval: time.Hour},
	})

	resp, body := postExecute(t, ts.URL, addBody(64), nil)
	if resp.StatusCode != 200 {
		t.Fatalf("scatter request: status %d: %s", resp.StatusCode, body)
	}
	parts, err := strconv.Atoi(resp.Header.Get(ScatterHeader))
	if err != nil || parts < 2 {
		t.Fatalf("scatter header %q, want >= 2 partitions", resp.Header.Get(ScatterHeader))
	}
	var out wireExecuteResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatal(err)
	}
	if out.Output.Rows != 64 || out.Output.Cols != 64 {
		t.Fatalf("output shape %dx%d", out.Output.Rows, out.Output.Cols)
	}
	for i, got := range out.Output.Data {
		if got != 2*float64(i) {
			t.Fatalf("element %d = %g, want %g", i, got, 2*float64(i))
		}
	}
	if b1.requests.Load() == 0 || b2.requests.Load() == 0 {
		t.Fatalf("scatter did not fan out: backends saw %d and %d partitions",
			b1.requests.Load(), b2.requests.Load())
	}
}

// TestKeyString is a tiny guard on the statusz/debug formatting.
func TestKeyString(t *testing.T) {
	k := Key{Tenant: "acme", Op: "GEMM", Rows: 1024, Cols: 512}
	if got, want := k.String(), "acme/GEMM/1024x512"; got != want {
		t.Fatalf("Key.String() = %q, want %q", got, want)
	}
	_ = fmt.Sprintf("%v", k)
}
