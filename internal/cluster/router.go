package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"shmt/internal/serve"
	"shmt/internal/telemetry"
	"shmt/internal/tensor"
	"shmt/internal/vop"
)

// TenantHeader carries the client's tenant identity; it is the first
// component of the placement key, so one tenant's working set stays on the
// backends that already hold its plan and exec-time caches. The backend
// tier reads the same header into its per-tenant admission queues, so one
// name governs the whole request path.
const TenantHeader = serve.TenantHeader

// BackendHeader names the backend that served a proxied request — smoke
// tests and operators use it to see placement without scraping metrics.
const BackendHeader = "X-SHMT-Backend"

// ScatterHeader carries the partition count of a scatter-gathered response.
const ScatterHeader = "X-SHMT-Scatter"

// RouterConfig tunes the router front-end. Zero values select the defaults
// noted per field.
type RouterConfig struct {
	// Pool tunes backend membership, probing and breakers.
	Pool PoolConfig
	// Seeds are backends known at startup (host:port); more may register at
	// runtime via POST /v1/register.
	Seeds []string
	// MaxAttempts bounds dispatch attempts per proxied request: the primary
	// plus failovers to ring replicas (default 3).
	MaxAttempts int
	// BackendTimeout bounds one backend round-trip (default 30s).
	BackendTimeout time.Duration
	// ScatterThreshold is the first-input element count at or above which an
	// eligible VOP is scatter-gathered across backends instead of proxied
	// whole (default 1<<21 elements, 16 MB of float64; negative disables
	// scatter entirely).
	ScatterThreshold int
	// MaxFanout caps how many partitions a scattered VOP splits into
	// (default 4).
	MaxFanout int
	// RetryAfter is the Retry-After hint on 503 responses (default 1s).
	RetryAfter time.Duration
	// TenantLimits caps concurrent in-flight requests per tenant at the
	// router, keyed by X-SHMT-Tenant value (requests without the header
	// count under serve.DefaultTenant). A tenant over its cap is shed with
	// 429 + Retry-After before any backend is touched. Absent tenants are
	// unlimited.
	TenantLimits map[string]int
	// Logger, when non-nil, receives request and lifecycle logs.
	Logger *slog.Logger
}

func (c RouterConfig) withDefaults() RouterConfig {
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.BackendTimeout <= 0 {
		c.BackendTimeout = 30 * time.Second
	}
	if c.ScatterThreshold == 0 {
		c.ScatterThreshold = 1 << 21
	}
	if c.MaxFanout <= 0 {
		c.MaxFanout = 4
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.Pool.Logger == nil {
		c.Pool.Logger = c.Logger
	}
	return c
}

// Router is the cluster front-end: it owns the backend pool and serves
//
//	POST /v1/execute  — proxy to the key's backend, failover to replicas,
//	                    scatter-gather for very large eligible VOPs
//	POST /v1/register — backend self-registration
//	GET  /healthz     — ok | degraded | draining (503), mirroring shmtserved
//	GET  /statusz     — backends, breakers, ring and fleet introspection
//	GET  /metrics     — Prometheus exposition of the process registry
type Router struct {
	cfg      RouterConfig
	pool     *Pool
	hs       *http.Server
	ln       net.Listener
	draining atomic.Bool
	started  time.Time
	// tenantInflight tracks concurrent requests for capped tenants only
	// (keys fixed at construction, so concurrent map reads are safe).
	tenantInflight map[string]*atomic.Int64
}

// NewRouter builds a router and starts its backend pool (prober included).
func NewRouter(cfg RouterConfig) (*Router, error) {
	cfg = cfg.withDefaults()
	pool, err := NewPool(cfg.Pool, cfg.Seeds)
	if err != nil {
		return nil, err
	}
	rt := &Router{cfg: cfg, pool: pool, started: time.Now(),
		tenantInflight: map[string]*atomic.Int64{}}
	for tenant, limit := range cfg.TenantLimits {
		if limit > 0 {
			rt.tenantInflight[tenant] = &atomic.Int64{}
		}
	}
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/execute", rt.handleExecute)
	mux.HandleFunc("POST /v1/register", rt.handleRegister)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /statusz", rt.handleStatusz)
	mux.HandleFunc("GET /metrics", telemetry.ExpositionHandler(telemetry.Default))
	rt.hs = &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second}
	return rt, nil
}

// Pool exposes the backend pool (registration from the daemon, tests).
func (rt *Router) Pool() *Pool { return rt.pool }

// Handler exposes the mux (httptest-friendly).
func (rt *Router) Handler() http.Handler { return rt.hs.Handler }

// Listen binds addr (host:port; port 0 picks a free port).
func (rt *Router) Listen(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("cluster: listen: %w", err)
	}
	rt.ln = ln
	return nil
}

// Addr returns the bound address ("" before Listen).
func (rt *Router) Addr() string {
	if rt.ln == nil {
		return ""
	}
	return rt.ln.Addr().String()
}

// Serve accepts connections until Shutdown; nil on a clean stop.
func (rt *Router) Serve() error {
	if rt.ln == nil {
		return errors.New("cluster: Serve before Listen")
	}
	err := rt.hs.Serve(rt.ln)
	if errors.Is(err, http.ErrServerClosed) {
		return nil
	}
	return err
}

// Shutdown drains: new requests get 503 + Retry-After, in-flight proxies
// finish (bounded by ctx), then the listener closes and the prober stops —
// the same discipline as shmtserved.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.draining.Store(true)
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Info("drain begin")
	}
	err := rt.hs.Shutdown(ctx)
	rt.pool.Close()
	if rt.cfg.Logger != nil {
		rt.cfg.Logger.Info("drain end")
	}
	return err
}

type registerRequest struct {
	Addr string `json:"addr"`
}

type registerResponse struct {
	OK       bool   `json:"ok"`
	Addr     string `json:"addr"`
	Backends int    `json:"backends"`
}

// handleRegister admits a backend into the pool. Idempotent: a restarted
// backend re-announcing itself is fine. A blank or wildcard host in the
// announced addr is replaced with the peer address the registration came
// from, so backends listening on 0.0.0.0 register reachable endpoints.
func (rt *Router) handleRegister(w http.ResponseWriter, r *http.Request) {
	var req registerRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<12)).Decode(&req); err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "bad register body: " + err.Error()})
		return
	}
	host, port, err := net.SplitHostPort(req.Addr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: "addr must be host:port: " + err.Error()})
		return
	}
	if host == "" || host == "0.0.0.0" || host == "::" {
		if peer, _, perr := net.SplitHostPort(r.RemoteAddr); perr == nil {
			host = peer
		}
	}
	addr := net.JoinHostPort(host, port)
	added, err := rt.pool.Add(addr)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wireError{Error: err.Error()})
		return
	}
	if added && rt.cfg.Logger != nil {
		rt.cfg.Logger.Info("backend self-registered", "backend", addr)
	}
	writeJSON(w, http.StatusOK, registerResponse{OK: true, Addr: addr, Backends: rt.pool.Len()})
}

type routerHealth struct {
	Status      string   `json:"status"` // "ok" | "degraded" | "draining" | "unavailable"
	Backends    int      `json:"backends"`
	Healthy     int      `json:"healthy"`
	Quarantined []string `json:"quarantined,omitempty"`
}

func (rt *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	if rt.draining.Load() {
		// Same contract as the execute path's draining 503 (and shmtserved's
		// healthz): tell pollers when to come back.
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(rt.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, routerHealth{Status: "draining"})
		return
	}
	total := rt.pool.Len()
	healthy := len(rt.pool.Healthy())
	quar := rt.pool.Quarantined()
	h := routerHealth{Backends: total, Healthy: healthy, Quarantined: quar}
	switch {
	case healthy == 0:
		// Nothing can serve: unlike a degraded node, the router really is
		// down for work, so load balancers should route away.
		h.Status = "unavailable"
		writeJSON(w, http.StatusServiceUnavailable, h)
	case len(quar) > 0:
		h.Status = "degraded"
		writeJSON(w, http.StatusOK, h)
	default:
		h.Status = "ok"
		writeJSON(w, http.StatusOK, h)
	}
}

type routerStatus struct {
	Service       string          `json:"service"`
	UptimeSeconds float64         `json:"uptime_seconds"`
	Draining      bool            `json:"draining"`
	Vnodes        int             `json:"vnodes"`
	LoadFactor    float64         `json:"load_factor"`
	MaxAttempts   int             `json:"max_attempts"`
	ScatterElems  int             `json:"scatter_threshold_elems"`
	MaxFanout     int             `json:"max_fanout"`
	Backends      []BackendStatus `json:"backends"`
}

func (rt *Router) handleStatusz(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, routerStatus{
		Service:       "shmtrouterd",
		UptimeSeconds: time.Since(rt.started).Seconds(),
		Draining:      rt.draining.Load(),
		Vnodes:        rt.cfg.Pool.withDefaults().Vnodes,
		LoadFactor:    rt.pool.LoadFactor(),
		MaxAttempts:   rt.cfg.MaxAttempts,
		ScatterElems:  rt.cfg.ScatterThreshold,
		MaxFanout:     rt.cfg.MaxFanout,
		Backends:      rt.pool.Statuses(),
	})
}

func (rt *Router) handleExecute(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	outcome := "error"
	defer func() {
		telemetry.RouterRequests.With(outcome).Inc()
		telemetry.RouterRequestSeconds.Observe(time.Since(start).Seconds())
	}()

	traceID := serve.SanitizeTraceID(r.Header.Get(serve.TraceHeader))
	if traceID == "" {
		traceID = telemetry.NewTraceID()
	}
	w.Header().Set(serve.TraceHeader, traceID)

	if rt.draining.Load() {
		outcome = "draining"
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(rt.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, wireError{Error: "router draining"})
		return
	}

	tenant := serve.SanitizeTenant(r.Header.Get(TenantHeader))
	tenantLabel := tenant
	if tenantLabel == "" {
		tenantLabel = serve.DefaultTenant
	}
	telemetry.RouterTenantRequests.With(tenantLabel).Inc()
	if inflight, capped := rt.tenantInflight[tenantLabel]; capped {
		if inflight.Add(1) > int64(rt.cfg.TenantLimits[tenantLabel]) {
			inflight.Add(-1)
			outcome = "shed"
			telemetry.RouterTenantShed.With(tenantLabel).Inc()
			w.Header().Set("Retry-After", serve.RetryAfterSeconds(rt.cfg.RetryAfter))
			writeJSON(w, http.StatusTooManyRequests, wireError{
				Error: fmt.Sprintf("tenant %q over in-flight limit %d", tenantLabel, rt.cfg.TenantLimits[tenantLabel])})
			return
		}
		// handleExecute is synchronous through response relay, so the
		// in-flight count drops as soon as the tenant's request is answered.
		defer inflight.Add(-1)
	}

	body, err := io.ReadAll(r.Body)
	if err != nil {
		outcome = "invalid"
		writeJSON(w, http.StatusBadRequest, wireError{Error: "read body: " + err.Error()})
		return
	}
	var req wireExecuteRequest
	if err := json.Unmarshal(body, &req); err != nil {
		outcome = "invalid"
		writeJSON(w, http.StatusBadRequest, wireError{Error: "bad request body: " + err.Error()})
		return
	}
	op, ok := vop.Parse(req.Op)
	if !ok {
		outcome = "invalid"
		writeJSON(w, http.StatusBadRequest, wireError{Error: fmt.Sprintf("unknown op %q", req.Op)})
		return
	}
	if len(req.Inputs) == 0 {
		outcome = "invalid"
		writeJSON(w, http.StatusBadRequest, wireError{Error: "no inputs"})
		return
	}
	key := Key{
		Tenant: r.Header.Get(TenantHeader),
		Op:     op.String(),
		Rows:   req.Inputs[0].Rows,
		Cols:   req.Inputs[0].Cols,
	}

	if rt.shouldScatter(op, key.Rows, key.Cols) {
		if done := rt.executeScatter(w, r, &req, op, traceID, &outcome); done {
			rt.logRequest(r.Context(), traceID, key, "scatter", outcome, start)
			return
		}
		// Scatter declined late (e.g. inputs failed VOP validation in a way
		// the backend should report): fall through to the proxy path.
	}
	rt.executeProxy(w, r, body, key, traceID, &outcome)
	rt.logRequest(r.Context(), traceID, key, "proxy", outcome, start)
}

func (rt *Router) logRequest(ctx context.Context, traceID string, key Key, path, outcome string, start time.Time) {
	if rt.cfg.Logger == nil {
		return
	}
	rt.cfg.Logger.LogAttrs(ctx, routeLogLevel(outcome), "route",
		slog.String("trace_id", traceID),
		slog.String("key", key.String()),
		slog.String("path", path),
		slog.String("outcome", outcome),
		slog.Float64("total_ms", time.Since(start).Seconds()*1e3),
	)
}

func routeLogLevel(outcome string) slog.Level {
	switch outcome {
	case "ok", "failover_ok", "invalid":
		return slog.LevelInfo
	case "draining", "unavailable", "shed":
		return slog.LevelWarn
	default:
		return slog.LevelError
	}
}

// shouldScatter decides the scatter path: an eligible opcode, a first input
// at or above the threshold, and at least two healthy backends to spread
// over (with one, whole-VOP proxying is strictly cheaper — no gather).
func (rt *Router) shouldScatter(op vop.Opcode, rows, cols int) bool {
	if rt.cfg.ScatterThreshold < 0 || !ScatterEligible(op) {
		return false
	}
	// Compare in int64: rows*cols can exceed MaxInt32 on 32-bit platforms
	// (exactly the shapes scatter exists for), and the wrapped product
	// would silently flip the decision. Negative dimensions never scatter.
	if rows < 0 || cols < 0 {
		return false
	}
	if int64(rows)*int64(cols) < int64(rt.cfg.ScatterThreshold) {
		return false
	}
	return len(rt.pool.Healthy()) >= 2
}

// executeScatter runs the scatter-gather path; it reports whether it wrote a
// response (false = caller should fall back to proxying).
func (rt *Router) executeScatter(w http.ResponseWriter, r *http.Request, req *wireExecuteRequest, op vop.Opcode, traceID string, outcome *string) bool {
	inputs := make([]*tensor.Matrix, len(req.Inputs))
	for i, m := range req.Inputs {
		mat, err := tensor.FromSlice(m.Rows, m.Cols, m.Data)
		if err != nil {
			// Let the backend produce the canonical 400; proxy it whole.
			return false
		}
		inputs[i] = mat
	}
	v := &vop.VOP{Op: op, Inputs: inputs, Attrs: req.Attrs, TraceID: traceID}
	if err := v.Validate(); err != nil {
		return false
	}
	fanout := rt.cfg.MaxFanout
	if n := len(rt.pool.Healthy()); fanout > n {
		fanout = n
	}
	plan, err := PlanScatter(v, fanout)
	if err != nil {
		return false
	}
	// Honor the client's timeout_ms exactly as the single-node path does:
	// it bounds the whole scatter (the context) and tightens the per-
	// partition dispatch timeout forwarded to backends.
	ctx := r.Context()
	timeout := rt.cfg.BackendTimeout
	if req.TimeoutMs > 0 {
		ct := time.Duration(req.TimeoutMs) * time.Millisecond
		if timeout <= 0 || ct < timeout {
			timeout = ct
		}
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, ct)
		defer cancel()
	}
	out, oc, err := scatterExecute(ctx, rt.pool, plan, v, traceID, timeout)
	switch {
	case err == nil:
	case errors.Is(err, errNoBackends):
		*outcome = "unavailable"
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(rt.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, wireError{Error: err.Error()})
		return true
	case errors.Is(err, context.DeadlineExceeded):
		*outcome = "error"
		writeJSON(w, http.StatusGatewayTimeout, wireError{Error: err.Error()})
		return true
	default:
		*outcome = "error"
		writeJSON(w, http.StatusBadGateway, wireError{Error: err.Error()})
		return true
	}
	*outcome = "ok"
	w.Header().Set(ScatterHeader, strconv.Itoa(oc.partitions))
	writeJSON(w, http.StatusOK, wireExecuteResponse{
		Output:          wireMatrix{Rows: out.Rows, Cols: out.Cols, Data: out.Data},
		HLOPs:           oc.partitions,
		MakespanSeconds: oc.makespan.Seconds(),
		BatchSize:       1,
	})
	return true
}

// executeProxy relays the request to the key's backend, failing over to ring
// replicas on retryable errors, and streams the winning response through.
func (rt *Router) executeProxy(w http.ResponseWriter, r *http.Request, body []byte, key Key, traceID string, outcome *string) {
	primary, rehashed := rt.pool.Pick(key)
	if primary == nil {
		*outcome = "unavailable"
		w.Header().Set("Retry-After", serve.RetryAfterSeconds(rt.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, wireError{Error: "no healthy backend"})
		return
	}
	if rehashed {
		telemetry.RouterRehashes.Inc()
	}

	// The attempt order: bounded-load pick first, then the key's remaining
	// ring replicas.
	tried := map[string]bool{}
	order := []*Backend{primary}
	for _, b := range rt.pool.Replicas(key) {
		if b.addr != primary.addr {
			order = append(order, b)
		}
	}
	attempts := rt.cfg.MaxAttempts
	if attempts > len(order) {
		attempts = len(order)
	}

	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		b := order[attempt]
		if tried[b.addr] || (attempt > 0 && b.Quarantined()) {
			continue
		}
		tried[b.addr] = true
		if attempt > 0 {
			telemetry.RouterFailovers.Inc()
		}
		resp, err := rt.proxyOnce(r, b, body, traceID)
		if err != nil {
			lastErr = err
			if errors.Is(err, context.Canceled) {
				*outcome = "error"
				writeJSON(w, 499, wireError{Error: err.Error()})
				return
			}
			rt.pool.NoteFailure(b)
			continue
		}
		if retryableStatus(resp.StatusCode) && attempt+1 < attempts {
			lastErr = fmt.Errorf("backend %s: http %d", b.addr, resp.StatusCode)
			if resp.StatusCode != http.StatusTooManyRequests {
				rt.pool.NoteFailure(b)
			}
			resp.Body.Close()
			continue
		}
		if resp.StatusCode/100 == 2 {
			rt.pool.NoteSuccess(b)
			if attempt == 0 {
				*outcome = "ok"
			} else {
				*outcome = "failover_ok"
			}
		} else {
			*outcome = outcomeForStatus(resp.StatusCode)
		}
		relayResponse(w, resp, b.addr, traceID)
		return
	}
	*outcome = "unavailable"
	w.Header().Set("Retry-After", serve.RetryAfterSeconds(rt.cfg.RetryAfter))
	msg := "all backends failed"
	if lastErr != nil {
		msg = fmt.Sprintf("all backends failed: %v", lastErr)
	}
	writeJSON(w, http.StatusServiceUnavailable, wireError{Error: msg})
}

// proxyOnce sends one dispatch attempt to b. The caller owns resp.Body.
func (rt *Router) proxyOnce(r *http.Request, b *Backend, body []byte, traceID string) (*http.Response, error) {
	ctx, cancel := context.WithTimeout(r.Context(), rt.cfg.BackendTimeout)
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, b.base+"/v1/execute", bytes.NewReader(body))
	if err != nil {
		cancel()
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(serve.TraceHeader, traceID)
	if t := r.Header.Get(TenantHeader); t != "" {
		req.Header.Set(TenantHeader, t)
	}
	release := rt.pool.Acquire(b)
	resp, err := rt.pool.Client().Do(req)
	if err != nil {
		release()
		cancel()
		return nil, err
	}
	// Wrap the body so in-flight accounting and the context live until the
	// response is fully relayed.
	resp.Body = &bodyCloser{ReadCloser: resp.Body, done: func() { release(); cancel() }}
	return resp, nil
}

type bodyCloser struct {
	io.ReadCloser
	done func()
}

func (bc *bodyCloser) Close() error {
	err := bc.ReadCloser.Close()
	if bc.done != nil {
		bc.done()
		bc.done = nil
	}
	return err
}

// retryableStatus: responses worth re-trying on a replica. 5xx covers a
// draining (503) or dying backend; 429 means that backend's queue is full —
// a replica may have room. 4xx client errors and 200s pass through.
func retryableStatus(code int) bool {
	return code >= 500 || code == http.StatusTooManyRequests
}

func outcomeForStatus(code int) string {
	switch {
	case code == http.StatusTooManyRequests:
		return "unavailable"
	case code >= 500:
		return "error"
	case code >= 400:
		return "invalid"
	default:
		return "ok"
	}
}

// relayResponse streams a backend response to the client, preserving the
// degradation and accounting headers and stamping the router's own metadata.
func relayResponse(w http.ResponseWriter, resp *http.Response, backend, traceID string) {
	defer resp.Body.Close()
	for _, h := range []string{
		"Content-Type", "Retry-After", TenantHeader,
		"X-SHMT-Batch-Size", "X-SHMT-Degraded", "X-SHMT-Quarantined",
	} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(serve.TraceHeader, traceID)
	w.Header().Set(BackendHeader, backend)
	w.WriteHeader(resp.StatusCode)
	_, _ = io.Copy(w, resp.Body)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}
