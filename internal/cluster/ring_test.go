package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []Key {
	ks := make([]Key, 0, n)
	ops := []string{"add", "GEMM", "FFT", "Sobel"}
	for i := 0; i < n; i++ {
		ks = append(ks, Key{
			Tenant: fmt.Sprintf("tenant-%d", i%7),
			Op:     ops[i%len(ops)],
			Rows:   64 << (i % 5),
			Cols:   64 + i%13,
		})
	}
	return ks
}

// TestRingDeterministic: assignment is a pure function of the member set —
// insertion order, duplicates and rebuilds do not change it.
func TestRingDeterministic(t *testing.T) {
	a := NewRing([]string{"n1:1", "n2:1", "n3:1"}, 64)
	b := NewRing([]string{"n3:1", "n1:1", "n2:1", "n1:1"}, 64)
	for _, k := range testKeys(2000) {
		ga, gb := a.Lookup(k, 1), b.Lookup(k, 1)
		if len(ga) != 1 || len(gb) != 1 || ga[0] != gb[0] {
			t.Fatalf("key %v: order-dependent assignment %v vs %v", k, ga, gb)
		}
	}
	// Rebuilding the identical set yields the identical ring.
	c := NewRing([]string{"n1:1", "n2:1", "n3:1"}, 64)
	for _, k := range testKeys(500) {
		if a.Lookup(k, 3)[2] != c.Lookup(k, 3)[2] {
			t.Fatalf("key %v: rebuild changed replica order", k)
		}
	}
}

// TestRingReplicaOrder: Lookup returns distinct members, primary first, and
// never more than the member count.
func TestRingReplicaOrder(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1", "d:1"}, 32)
	for _, k := range testKeys(200) {
		got := r.Lookup(k, 10)
		if len(got) != 4 {
			t.Fatalf("key %v: want all 4 members, got %v", k, got)
		}
		seen := map[string]bool{}
		for _, m := range got {
			if seen[m] {
				t.Fatalf("key %v: duplicate member in %v", k, got)
			}
			seen[m] = true
		}
		if got[0] != r.Lookup(k, 1)[0] {
			t.Fatalf("key %v: primary changed with n", k)
		}
	}
}

// TestRingBalance: 128 vnodes keep the per-backend share within a factor of
// two of uniform at a realistic key population.
func TestRingBalance(t *testing.T) {
	members := []string{"10.0.0.1:8080", "10.0.0.2:8080", "10.0.0.3:8080", "10.0.0.4:8080"}
	r := NewRing(members, DefaultVnodes)
	counts := map[string]int{}
	keys := testKeys(20000)
	for _, k := range keys {
		counts[r.Lookup(k, 1)[0]]++
	}
	want := len(keys) / len(members)
	for m, c := range counts {
		if c < want/2 || c > want*2 {
			t.Fatalf("backend %s holds %d of %d keys (uniform %d): spread too skewed", m, c, len(keys), want)
		}
	}
}

// TestRingMinimalDisruption: growing the fleet from N to N+1 moves only
// ~K/(N+1) of the keys, and every moved key moves TO the new member — the
// defining consistent-hashing property.
func TestRingMinimalDisruption(t *testing.T) {
	old := []string{"n1:1", "n2:1", "n3:1", "n4:1", "n5:1"}
	grown := append(append([]string{}, old...), "n6:1")
	before := NewRing(old, DefaultVnodes)
	after := NewRing(grown, DefaultVnodes)

	keys := testKeys(20000)
	moved := 0
	for _, k := range keys {
		was, is := before.Lookup(k, 1)[0], after.Lookup(k, 1)[0]
		if was == is {
			continue
		}
		moved++
		if is != "n6:1" {
			t.Fatalf("key %v moved %s -> %s, not to the new member", k, was, is)
		}
	}
	frac := float64(moved) / float64(len(keys))
	ideal := 1.0 / float64(len(grown))
	if frac < ideal/2 || frac > ideal*2 {
		t.Fatalf("moved %.1f%% of keys; want ~%.1f%% (K/N)", frac*100, ideal*100)
	}
}

// TestPickBoundedQuarantine: an unhealthy primary rehashes the key to its
// first healthy replica, reported via a positive position; a fully
// quarantined fleet returns no backend.
func TestPickBoundedQuarantine(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"}, 32)
	k := Key{Tenant: "t", Op: "add", Rows: 128, Cols: 128}
	order := r.Lookup(k, 3)
	primary := order[0]

	noLoad := func(string) int64 { return 0 }
	got, pos := r.PickBounded(k, 1.25, func(string) bool { return true }, noLoad, 0)
	if got != primary || pos != 0 {
		t.Fatalf("all healthy: got (%s,%d), want (%s,0)", got, pos, primary)
	}

	got, pos = r.PickBounded(k, 1.25, func(m string) bool { return m != primary }, noLoad, 0)
	if got != order[1] || pos != 1 {
		t.Fatalf("quarantined primary: got (%s,%d), want (%s,1)", got, pos, order[1])
	}

	got, pos = r.PickBounded(k, 1.25, func(string) bool { return false }, noLoad, 0)
	if got != "" || pos != -1 {
		t.Fatalf("all quarantined: got (%s,%d), want (\"\",-1)", got, pos)
	}
}

// TestPickBoundedLoad: a primary over the bounded-load ceiling spills the
// key to a replica; when every backend is over, the first healthy one takes
// the overflow rather than refusing.
func TestPickBoundedLoad(t *testing.T) {
	r := NewRing([]string{"a:1", "b:1", "c:1"}, 32)
	k := Key{Tenant: "t", Op: "GEMM", Rows: 512, Cols: 512}
	order := r.Lookup(k, 3)
	healthy := func(string) bool { return true }

	// total=9 over 3 backends, factor 1.0: ceiling = floor(10/3)+1 = 4.
	// Primary at 7 is over; replica at 1 is under.
	loads := map[string]int64{order[0]: 7, order[1]: 1, order[2]: 1}
	got, pos := r.PickBounded(k, 1.0, healthy, func(m string) int64 { return loads[m] }, 9)
	if got != order[1] || pos != 1 {
		t.Fatalf("overloaded primary: got (%s,%d), want (%s,1)", got, pos, order[1])
	}

	// Everyone over the ceiling: overflow lands on the first healthy.
	got, pos = r.PickBounded(k, 1.0, healthy, func(string) int64 { return 100 }, 300)
	if got != order[0] || pos != 0 {
		t.Fatalf("all overloaded: got (%s,%d), want (%s,0)", got, pos, order[0])
	}
}

// TestRingEmpty: lookups on an empty ring are nil, picks report no backend.
func TestRingEmpty(t *testing.T) {
	r := NewRing(nil, 0)
	if got := r.Lookup(Key{Op: "add"}, 1); got != nil {
		t.Fatalf("empty ring Lookup = %v", got)
	}
	if got, pos := r.PickBounded(Key{Op: "add"}, 1.25, func(string) bool { return true }, func(string) int64 { return 0 }, 0); got != "" || pos != -1 {
		t.Fatalf("empty ring PickBounded = (%s,%d)", got, pos)
	}
}
